/// Intrusion pursuit: several non-cooperative intruders tracked at once,
/// with persistent per-label state surviving leader handoffs.
///
/// Two intruders cross a border strip on different paths and speeds. Each
/// gets its own `intruder` context label. The attached object keeps a
/// running report counter in persistent state (the paper's setState
/// mechanism — state rides in heartbeats, so the count survives leadership
/// changes) and reports label, position, and count to the pursuer, which
/// maintains one track per label.
///
/// Build & run:  ./build/examples/intrusion_pursuit

#include <cstdio>
#include <map>
#include <vector>

#include "core/system.hpp"
#include "env/environment.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace et;

  sim::Simulator sim(/*seed=*/11);
  env::Environment environment(sim.make_rng("env"));
  const env::Field field = env::Field::grid(4, 24);  // a 24-hop border strip

  auto add_intruder = [&](Vec2 from, Vec2 to, double speed, Time enters) {
    env::Target intruder;
    intruder.type = "intruder";
    intruder.trajectory =
        std::make_unique<env::LinearTrajectory>(from, to, speed);
    intruder.radius = env::RadiusProfile::constant(1.2);
    intruder.appears = enters;
    return environment.add_target(std::move(intruder));
  };
  add_intruder({-1.5, 0.8}, {24.5, 1.4}, 0.12, Time::origin());
  add_intruder({24.5, 2.4}, {-1.5, 1.8}, 0.20, Time::seconds(30));

  core::EnviroTrackSystem system(sim, environment, field);
  system.senses().add("intruder_detector", core::sense_target("intruder"));

  core::ContextTypeSpec spec;
  spec.name = "intruder";
  spec.activation = "intruder_detector";
  spec.variables.push_back(core::AggregateVarSpec{
      "position", "avg", "position", Duration::seconds(1), 2});

  const NodeId pursuer{0};
  core::ObjectSpec shadow;
  shadow.name = "shadow";
  core::MethodSpec report;
  report.name = "report";
  report.invocation.kind = core::InvocationSpec::Kind::kTimer;
  report.invocation.period = Duration::seconds(3);
  report.body = [pursuer](core::TrackingContext& ctx) {
    auto position = ctx.read_vector("position");
    if (!position) return;  // siting not confirmed: stay silent
    // Persistent state: the report sequence number survives handovers.
    const double seq = ctx.get_state("reports").value_or(0.0) + 1.0;
    ctx.set_state("reports", seq);
    ctx.send_to_node(pursuer, "sighting",
                     {position->x, position->y, seq});
  };
  shadow.methods.push_back(std::move(report));
  spec.objects.push_back(std::move(shadow));

  system.add_context_type(std::move(spec));
  system.start();

  // Pursuer: one track per context label.
  struct Track {
    std::vector<Vec2> points;
    double last_seq = 0.0;
    int seq_resets = 0;  // would indicate lost persistent state
  };
  std::map<LabelId, Track> tracks;
  system.stack(pursuer).on_user_message(
      [&](const core::UserMessagePayload& msg, NodeId) {
        if (msg.tag != "sighting" || msg.data.size() < 3) return;
        Track& track = tracks[msg.src_label];
        track.points.push_back({msg.data[0], msg.data[1]});
        if (msg.data[2] <= track.last_seq) ++track.seq_resets;
        track.last_seq = msg.data[2];
        std::printf(
            "%7.1f  label %-12llu sighting #%3.0f at (%5.2f, %5.2f)\n",
            sim.now().to_seconds(),
            static_cast<unsigned long long>(msg.src_label.value()),
            msg.data[2], msg.data[0], msg.data[1]);
      });

  std::printf("time(s)  sighting\n-------  --------\n");
  sim.run_for(Duration::seconds(240));

  std::printf("\n%zu distinct tracks:\n", tracks.size());
  for (const auto& [label, track] : tracks) {
    std::printf(
        "  label %-12llu %3zu sightings, final seq %.0f, seq resets %d\n",
        static_cast<unsigned long long>(label.value()), track.points.size(),
        track.last_seq, track.seq_resets);
  }
  return tracks.empty() ? 1 : 0;
}
