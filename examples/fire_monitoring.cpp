/// Fire monitoring: multiple concurrent context labels + the directory
/// service ("where are all the fires?", §5.3).
///
/// Two fires ignite at different times in a 15 x 15 mote field and grow.
/// A `fire` context type — activation (temperature > 180), aggregate
/// intensity and heat-weighted centroid — is instantiated once per fire.
/// A ranger station periodically queries the directory object of type
/// `fire` and prints every active fire's label and last known location; a
/// condition-invoked `alarm` method fires when a blaze crosses an intensity
/// threshold.
///
/// Build & run:  ./build/examples/fire_monitoring

#include <cstdio>

#include "core/system.hpp"
#include "env/environment.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace et;

  sim::Simulator sim(/*seed=*/7);
  env::Environment environment(sim.make_rng("env"));
  const env::Field field = env::Field::grid(15, 15);

  // Two growing fires; the second ignites at t = 40 s and is extinguished
  // at t = 150 s.
  auto add_fire = [&](Vec2 seat, Time ignites, Time extinguished) {
    env::Target fire;
    fire.type = "fire";
    fire.trajectory = std::make_unique<env::StationaryTrajectory>(seat);
    fire.radius = env::RadiusProfile::growing(1.0, 0.01, 2.5);
    fire.emissions["temperature"] = 400.0;  // reads >180 within the radius
    fire.appears = ignites;
    fire.disappears = extinguished;
    return environment.add_target(std::move(fire));
  };
  add_fire({3.5, 3.5}, Time::origin(), Time::max());
  add_fire({11.0, 10.0}, Time::seconds(40), Time::seconds(150));

  core::SystemConfig config;
  config.middleware.enable_directory = true;
  config.middleware.enable_transport = true;
  core::EnviroTrackSystem system(sim, environment, field, config);

  // sense_fire() = (temperature > 180) — the §3.1 example condition. The
  // binary-disc model stands in for the thermometer threshold here.
  system.senses().add("fire_sensor", core::sense_target("fire"));

  core::ContextTypeSpec fire_ctx;
  fire_ctx.name = "fire";
  fire_ctx.activation = "fire_sensor";
  fire_ctx.variables.push_back(core::AggregateVarSpec{
      "intensity", "avg", "temperature", Duration::seconds(3), 3});
  fire_ctx.variables.push_back(core::AggregateVarSpec{
      "seat", "centroid", "temperature", Duration::seconds(3), 3});

  core::ObjectSpec monitor;
  monitor.name = "monitor";
  core::MethodSpec alarm;
  alarm.name = "alarm";
  alarm.invocation.kind = core::InvocationSpec::Kind::kCondition;
  alarm.invocation.condition = [](core::TrackingContext& ctx) {
    auto intensity = ctx.read_scalar("intensity");
    return intensity && *intensity > 120.0;
  };
  alarm.body = [&sim](core::TrackingContext& ctx) {
    const auto seat = ctx.read_vector("seat");
    std::printf("%7.1f  ALARM  label %-12llu intense fire near %s\n",
                sim.now().to_seconds(),
                static_cast<unsigned long long>(ctx.label().value()),
                seat ? seat->to_string().c_str() : "(unconfirmed)");
  };
  monitor.methods.push_back(std::move(alarm));
  fire_ctx.objects.push_back(std::move(monitor));

  const core::TypeIndex fire_type =
      system.add_context_type(std::move(fire_ctx));
  system.start();

  // Ranger station: directory sweep every 20 s.
  const NodeId ranger{0};
  auto* directory = system.stack(ranger).directory();
  sim.schedule_periodic(Duration::seconds(20), Duration::seconds(20), [&] {
    directory->query(fire_type, [&](bool ok,
                                    const std::vector<core::DirectoryEntry>&
                                        fires) {
      if (!ok) {
        std::printf("%7.1f  QUERY  directory timeout\n",
                    sim.now().to_seconds());
        return;
      }
      std::printf("%7.1f  QUERY  %zu fire(s):", sim.now().to_seconds(),
                  fires.size());
      for (const auto& fire : fires) {
        std::printf("  [label %llu at %s]",
                    static_cast<unsigned long long>(fire.label.value()),
                    fire.location.to_string().c_str());
      }
      std::printf("\n");
    });
  });

  std::printf("time(s)  event\n-------  -----\n");
  sim.run_for(Duration::seconds(200));

  std::printf("\nDone. %zu motes, %llu events simulated.\n", field.size(),
              static_cast<unsigned long long>(sim.events_fired()));
  return 0;
}
