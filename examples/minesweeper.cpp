/// Minesweeper: local actuation in the tracked entity's locale (§3.2).
///
/// "A mine-locator object sensing a nearby mine can cause its node to
/// detonate itself thereby clearing the threat in a mine-sweeping
/// application." Mines are scattered in the field; a `mine` context forms
/// around each. Once the siting is confirmed (critical mass of 2 detectors
/// within 2 s), the attached object triggers the actuation: the leader node
/// "detonates" (crashes) and the mine is cleared from the environment.
///
/// Build & run:  ./build/examples/minesweeper

#include <cstdio>
#include <vector>

#include "core/system.hpp"
#include "env/environment.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace et;

  sim::Simulator sim(/*seed=*/5);
  env::Environment environment(sim.make_rng("env"));
  const env::Field field =
      env::Field::perturbed_grid(10, 10, 0.2, sim.make_rng("deploy"));

  std::vector<TargetId> mines;
  const Vec2 mine_sites[] = {{2.3, 7.1}, {5.8, 2.4}, {8.2, 8.6}, {4.1, 5.0}};
  for (const Vec2& site : mine_sites) {
    env::Target mine;
    mine.type = "mine";
    mine.trajectory = std::make_unique<env::StationaryTrajectory>(site);
    mine.radius = env::RadiusProfile::constant(1.5);
    mines.push_back(environment.add_target(std::move(mine)));
  }

  core::EnviroTrackSystem system(sim, environment, field);
  system.senses().add("mine_detector", core::sense_target("mine"));

  int detonations = 0;
  core::ContextTypeSpec spec;
  spec.name = "mine";
  spec.activation = "mine_detector";
  spec.variables.push_back(core::AggregateVarSpec{
      "confirmations", "count", "magnetic", Duration::seconds(2), 2});

  core::ObjectSpec locator;
  locator.name = "locator";
  core::MethodSpec detonate;
  detonate.name = "detonate";
  detonate.invocation.kind = core::InvocationSpec::Kind::kCondition;
  detonate.invocation.condition = [](core::TrackingContext& ctx) {
    return ctx.read_scalar("confirmations").has_value();  // >= 2 detectors
  };
  detonate.body = [&](core::TrackingContext& ctx) {
    // Local actuation: the object runs on a node physically next to the
    // mine, so it can act on the locale directly.
    const NodeId node = ctx.node();
    const Vec2 at = ctx.node_position();
    // Find which mine this label is attached to (nearest sensed).
    for (TargetId mine : mines) {
      const env::Target& target = environment.target(mine);
      if (target.active_at(sim.now()) &&
          target.sensed_from(at, sim.now())) {
        std::printf(
            "%6.1fs  label %-12llu node %2llu at %s detonates, mine %llu "
            "cleared\n",
            sim.now().to_seconds(),
            static_cast<unsigned long long>(ctx.label().value()),
            static_cast<unsigned long long>(node.value()),
            at.to_string().c_str(),
            static_cast<unsigned long long>(mine.value()));
        environment.remove_target_at(mine, sim.now());
        system.crash_node(node);  // the node is consumed by the blast
        ++detonations;
        return;
      }
    }
  };
  locator.methods.push_back(std::move(detonate));
  spec.objects.push_back(std::move(locator));

  system.add_context_type(std::move(spec));
  system.start();

  std::printf("sweeping %zu mines with %zu motes...\n", mines.size(),
              field.size());
  sim.run_for(Duration::seconds(60));

  int remaining = 0;
  for (TargetId mine : mines) {
    if (environment.target(mine).active_at(sim.now())) ++remaining;
  }
  std::printf("\n%d detonations, %d mine(s) remaining\n", detonations,
              remaining);
  return remaining == 0 ? 0 : 1;
}
