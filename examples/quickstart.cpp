/// Quickstart: the paper's Fig. 2 vehicle tracker, written in the
/// EnviroTrack language and run on a simulated mote grid.
///
/// A vehicle crosses a 3 x 12 grid of magnetometer motes. Sensors detecting
/// it form a group abstracted by a context label of type `tracker`; the
/// attached `reporter` object periodically sends the aggregate position
/// (avg of at least 2 member positions, no staler than 1 s) to a pursuer
/// base station, which prints the track.
///
/// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/system.hpp"
#include "env/environment.hpp"
#include "etl/compiler.hpp"
#include "scenario/units.hpp"
#include "sim/simulator.hpp"

namespace {

constexpr const char* kProgram = R"etl(
# Fig. 2 of the paper, almost verbatim.
begin context tracker
  activation: magnetic_sensor_reading();
  location : avg(position) confidence=2, freshness=1s;

  begin object reporter
    invocation: TIMER(5s)
    report() {
      send(pursuer, self.label, location);
    }
  end
end context
)etl";

}  // namespace

int main() {
  using namespace et;

  // --- The world: a 3 x 12 grid and one vehicle crossing it at 33 km/hr.
  sim::Simulator sim(/*seed=*/2024);
  env::Environment environment(sim.make_rng("env"));
  const env::Field field = env::Field::grid(3, 12);

  env::Target vehicle;
  vehicle.type = "tracker";
  vehicle.trajectory = std::make_unique<env::LinearTrajectory>(
      Vec2{-1.5, 0.5}, Vec2{12.5, 0.5},
      scenario::kmh_to_hops_per_s(scenario::kTankSlowKmh));
  vehicle.radius =
      env::RadiusProfile::constant(scenario::kTankSensingRadius);
  environment.add_target(std::move(vehicle));

  // --- The system: EnviroTrack middleware on every mote.
  core::EnviroTrackSystem system(sim, environment, field);
  system.senses().add("magnetic_sensor_reading",
                      core::sense_target("tracker"));

  // Compile the context declaration. The pursuer's identity is resolved at
  // compile time, exactly as in the paper's example.
  const NodeId pursuer{0};
  etl::CompileOptions options;
  options.destinations["pursuer"] = pursuer;
  auto specs = etl::compile_source(kProgram, system.senses(),
                                   system.aggregations(), options);
  if (!specs.ok()) {
    std::fprintf(stderr, "compile error: %s\n",
                 specs.error().to_string().c_str());
    return 1;
  }
  for (auto& spec : specs.value()) {
    system.add_context_type(std::move(spec));
  }
  system.start();

  // --- The pursuer: print every received report.
  std::printf("time(s)  label                 reported (x, y)\n");
  std::printf("-------  --------------------  ---------------\n");
  int reports = 0;
  system.stack(pursuer).on_user_message(
      [&](const core::UserMessagePayload& msg, NodeId) {
        if (msg.data.size() < 2) return;
        std::printf("%7.1f  %-20llu  (%5.2f, %5.2f)\n",
                    sim.now().to_seconds(),
                    static_cast<unsigned long long>(msg.src_label.value()),
                    msg.data[0], msg.data[1]);
        ++reports;
      });

  sim.run_for(Duration::seconds(160));

  std::printf("\n%d reports; channel used %.2f%% of the 50 kb/s link\n",
              reports,
              100.0 * system.medium().stats().link_utilization(
                          sim.now() - Time::origin(),
                          system.config().radio.bitrate_bps));
  return reports > 0 ? 0 : 1;
}
