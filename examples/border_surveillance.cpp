/// Border surveillance: the full EnviroTrack loop on one deployment —
/// duty-cycled motes, a language-declared tracker with a remote-command
/// port, a static command-center object, and MTP tasking.
///
/// A 4 x 20 strip of motes watches a border. Motes duty-cycle their radios
/// (80% asleep while unengaged) to stretch the mission's energy budget.
/// When an intruder crosses, a `watcher` context forms and reports
/// sightings to the command center — a *static object* pinned to mote 0.
/// After three sightings of the same label the center tasks that context
/// over MTP (a `message`-invoked port) to switch into high-rate "pursuit"
/// mode, which the tracking object honours via persistent state.
///
/// Build & run:  ./build/examples/border_surveillance

#include <cstdio>
#include <map>

#include "core/system.hpp"
#include "etl/compiler.hpp"
#include "metrics/energy.hpp"
#include "sim/simulator.hpp"

namespace {

constexpr const char* kProgram = R"etl(
begin context watcher
  activation: intruder_detector();
  position : avg(position) confidence=2, freshness=1s;

  begin object shadow
    # Report every 3s by default, every 1.5s once tasked into pursuit mode.
    # (TIMER phase restarts on leadership handover, so the period should
    # stay below the typical leader tenure.)
    invocation: TIMER(3s)
    sighting() {
      if (not state("pursuit")) { send(center, self.label, position); }
    }
    invocation: TIMER(1500ms)
    pursuit_sighting() {
      if (state("pursuit")) { send(center, self.label, position); }
    }
    invocation: message
    task() {
      setState("pursuit", arg(0));
      log("tasked: pursuit =", arg(0));
    }
  end
end context
)etl";

}  // namespace

int main() {
  using namespace et;

  sim::Simulator sim(/*seed=*/17);
  env::Environment environment(sim.make_rng("env"));
  const env::Field field = env::Field::grid(4, 20);

  // Two intruders at different times and speeds.
  auto add_intruder = [&](Vec2 from, Vec2 to, double speed, double at_s) {
    env::Target intruder;
    intruder.type = "watcher";
    intruder.trajectory =
        std::make_unique<env::LinearTrajectory>(from, to, speed);
    intruder.radius = env::RadiusProfile::constant(1.2);
    intruder.appears = Time::seconds(at_s);
    environment.add_target(std::move(intruder));
  };
  // Distinct rows, > 2 sensing radii apart: the labels must never merge
  // even when the intruders pass each other.
  add_intruder({-1.5, 0.4}, {20.5, 0.4}, 0.15, 0.0);
  add_intruder({20.5, 3.4}, {-1.5, 3.4}, 0.25, 60.0);

  core::SystemConfig config;
  config.middleware.enable_directory = true;
  config.middleware.enable_transport = true;
  config.middleware.enable_duty_cycle = true;
  config.middleware.duty_cycle.awake_fraction = 0.4;
  // Low-power-listening style persistence: per-hop retransmissions span a
  // whole duty cycle, so a sleeping relay is retried once it wakes.
  config.middleware.routing.hop_attempts = 10;
  config.middleware.routing.ack_timeout = Duration::millis(150);
  core::EnviroTrackSystem system(sim, environment, field, config);
  system.senses().add("intruder_detector", core::sense_target("watcher"));

  const NodeId center_node{0};
  etl::CompileOptions options;
  options.destinations["center"] = center_node;
  options.log_sink = [&](const std::string& line) {
    std::printf("%7.1f  [context] %s\n", sim.now().to_seconds(),
                line.c_str());
  };
  auto specs = etl::compile_source(kProgram, system.senses(),
                                   system.aggregations(), options);
  if (!specs.ok()) {
    std::fprintf(stderr, "compile error: %s\n",
                 specs.error().to_string().c_str());
    return 1;
  }
  const core::TypeIndex watcher_type = system.add_context_type(
      std::move(specs.value()[0]));
  const auto task_port =
      system.specs()[watcher_type].port_of("shadow", "task");
  system.start();

  // The command center: a static object counting sightings per label and
  // tasking persistent intruders into pursuit mode over MTP.
  struct TrackState {
    int sightings = 0;
    bool tasked = false;
  };
  std::map<LabelId, TrackState> tracks;
  auto* center_transport = system.stack(center_node).transport();

  core::StaticObjectSpec center;
  center.name = "command-center";
  center.on_message = [&](core::StaticContext&,
                          const core::UserMessagePayload& msg, NodeId) {
    if (msg.data.size() < 2) return;
    TrackState& track = tracks[msg.src_label];
    track.sightings++;
    std::printf("%7.1f  [center ] label %-12llu sighting #%d at "
                "(%5.2f, %5.2f)%s\n",
                sim.now().to_seconds(),
                static_cast<unsigned long long>(msg.src_label.value()),
                track.sightings, msg.data[0], msg.data[1],
                track.tasked ? " [pursuit]" : "");
    if (track.sightings >= 3 && !track.tasked) {
      track.tasked = true;
      std::printf("         [center ] tasking label %llu into pursuit\n",
                  static_cast<unsigned long long>(msg.src_label.value()));
      center_transport->invoke(watcher_type, msg.src_label,
                               PortId{*task_port}, {1.0});
    }
  };
  system.stack(center_node).add_static_object(std::move(center));

  std::printf("time(s)  event\n-------  -----\n");
  sim.run_for(Duration::seconds(220));

  // Mission report: tracks plus the energy the duty cycling saved.
  const auto energy = metrics::measure_energy(system);
  std::printf("\n%zu track(s):\n", tracks.size());
  int pursuit_rate_confirmed = 0;
  for (const auto& [label, track] : tracks) {
    std::printf("  label %-12llu %3d sightings%s\n",
                static_cast<unsigned long long>(label.value()),
                track.sightings, track.tasked ? "  (pursuit mode)" : "");
    if (track.tasked && track.sightings > 10) ++pursuit_rate_confirmed;
  }
  std::printf(
      "deployment energy: %.1f mJ total, %.2f mJ listen per node mean "
      "(duty-cycled)\n",
      energy.totals.total() * 1e3,
      energy.totals.listen_joules / field.size() * 1e3);
  return tracks.empty() ? 1 : 0;
}
