/// etlc — checker and formatter for EnviroTrack-language files.
///
/// Usage:
///   etlc <file.etl>             check: parse + semantic-validate
///   etlc --format <file.etl>    print the canonically formatted program
///   etlc --dump <file.etl>      print the compiled context inventory
///
/// Checking compiles against a permissive environment: any called sense
/// function and any send destination is accepted (their bindings are
/// application-supplied at runtime), while aggregations, attributes,
/// variable references, and structure are fully validated.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "etl/compiler.hpp"
#include "etl/format.hpp"
#include "etl/parser.hpp"

namespace {

int usage() {
  std::fprintf(stderr, "usage: etlc [--format|--dump] <file.etl>\n");
  return 2;
}

/// Collects every identifier used as a call in sensing conditions and
/// every send destination, so the permissive check can pre-register them.
void collect_bindings(const et::etl::Expr& expr,
                      std::set<std::string>& sense_functions) {
  if (expr.call) sense_functions.insert(expr.call->callee);
  if (expr.unary) collect_bindings(*expr.unary->operand, sense_functions);
  if (expr.binary) {
    collect_bindings(*expr.binary->lhs, sense_functions);
    collect_bindings(*expr.binary->rhs, sense_functions);
  }
}

void collect_destinations(const std::vector<et::etl::StmtPtr>& stmts,
                          std::set<std::string>& destinations) {
  for (const auto& stmt : stmts) {
    if (stmt->send) destinations.insert(stmt->send->destination);
    if (stmt->if_stmt) {
      collect_destinations(stmt->if_stmt->then_body, destinations);
      collect_destinations(stmt->if_stmt->else_body, destinations);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool format = false;
  bool dump = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--format") == 0) {
      format = true;
    } else if (std::strcmp(argv[i], "--dump") == 0) {
      dump = true;
    } else if (argv[i][0] == '-') {
      return usage();
    } else if (path) {
      return usage();
    } else {
      path = argv[i];
    }
  }
  if (!path) return usage();

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "etlc: cannot open '%s'\n", path);
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string source = buffer.str();

  auto program = et::etl::parse(source);
  if (!program.ok()) {
    std::fprintf(stderr, "%s: %s\n", path,
                 program.error().to_string().c_str());
    return 1;
  }

  if (format) {
    std::fputs(et::etl::format_program(program.value()).c_str(), stdout);
    return 0;
  }

  // Permissive semantic check: accept any referenced sense function and
  // destination, validate everything else.
  std::set<std::string> sense_functions;
  std::set<std::string> destinations;
  for (const auto& context : program.value().contexts) {
    collect_bindings(*context.activation, sense_functions);
    if (context.deactivation) {
      collect_bindings(*context.deactivation, sense_functions);
    }
    for (const auto& object : context.objects) {
      for (const auto& method : object.methods) {
        collect_destinations(method.body, destinations);
      }
    }
  }

  et::core::SenseRegistry senses;
  for (const std::string& name : sense_functions) {
    senses.add(name, [](const et::node::Mote&) { return false; });
  }
  et::etl::CompileOptions options;
  for (const std::string& name : destinations) {
    options.destinations[name] = et::NodeId{0};
  }
  const auto aggregations = et::core::AggregationRegistry::with_builtins();
  auto specs = et::etl::compile(std::move(program).value(), senses,
                                aggregations, options);
  if (!specs.ok()) {
    std::fprintf(stderr, "%s: %s\n", path,
                 specs.error().to_string().c_str());
    return 1;
  }

  if (dump) {
    for (const auto& spec : specs.value()) {
      std::printf("context %s\n", spec.name.c_str());
      for (const auto& var : spec.variables) {
        std::printf("  var %-16s %s(%s)  N=%zu  L=%s\n", var.name.c_str(),
                    var.aggregation.c_str(), var.sensor.c_str(),
                    var.critical_mass, var.freshness.to_string().c_str());
      }
      std::size_t port = 0;
      for (const auto& object : spec.objects) {
        for (const auto& method : object.methods) {
          const char* kind =
              method.invocation.kind ==
                      et::core::InvocationSpec::Kind::kTimer
                  ? "timer"
                  : (method.invocation.kind ==
                             et::core::InvocationSpec::Kind::kCondition
                         ? "condition"
                         : "message");
          std::printf("  port %zu: %s.%s (%s)\n", port++,
                      object.name.c_str(), method.name.c_str(), kind);
        }
      }
    }
  }

  std::printf("%s: OK (%zu context type%s", path, specs.value().size(),
              specs.value().size() == 1 ? "" : "s");
  if (!sense_functions.empty()) {
    std::printf("; requires sense functions:");
    for (const auto& name : sense_functions) {
      std::printf(" %s", name.c_str());
    }
  }
  if (!destinations.empty()) {
    std::printf("; requires destinations:");
    for (const auto& name : destinations) std::printf(" %s", name.c_str());
  }
  std::printf(")\n");
  return 0;
}
