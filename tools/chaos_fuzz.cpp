/// chaos_fuzz — seeded chaos fuzzing over the tank scenario.
///
/// Fuzz mode (default): generates `--trials` randomized chaos trials
/// starting at `--seed` (trial N uses seed base+N, so any trial can be
/// regenerated independently) and executes each under the stacked oracles
/// (src/fuzz/trial.hpp): protocol invariants, serial-vs-parallel
/// differential digest diff, serve-answer validation, livelock watchdog.
/// A violation writes a self-contained JSON repro artifact, delta-debugs
/// it down to a minimal still-failing repro, and writes both into the
/// corpus directory. Exit code 1 when any trial failed.
///
/// Replay mode (`--replay artifact.json`): re-runs one artifact
/// deterministically and checks it against its `expect_failure` contract
/// (absent = must pass every oracle). Exit 0 on contract match. The
/// verdict JSON printed for a deterministic failure is itself
/// deterministic, so two replays diff byte-for-byte.
///
/// The machine-readable campaign summary (`--summary file.json`) carries
/// trials, violations, trials/hour, and per-violation shrink factors — CI
/// uploads it as a job artifact.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "fuzz/generator.hpp"
#include "fuzz/shrink.hpp"
#include "fuzz/trial.hpp"

namespace {

using namespace et;

struct Options {
  std::uint64_t trials = 100;
  std::uint64_t seed = 1;
  unsigned threads = 2;
  std::string replay_path;
  std::string out_dir;
  std::string summary_path;
  double time_budget_s = 0.0;  // 0 = unbounded
  std::size_t max_shrink_attempts = 160;
  std::uint64_t emit = 0;
  bool shrink = true;
  bool verbose = false;
};

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--trials N] [--seed S] [--threads N] [--out DIR]\n"
      "          [--summary FILE] [--time-budget-s SEC]\n"
      "          [--max-shrink-attempts N] [--no-shrink] [--verbose]\n"
      "       %s --replay ARTIFACT.json [--threads N] [--verbose]\n",
      argv0, argv0);
}

bool parse_u64(const char* text, std::uint64_t* out) {
  if (text == nullptr || *text == '\0') return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

bool parse_options(int argc, char** argv, Options* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    std::uint64_t u = 0;
    if (arg == "--trials" && parse_u64(next(), &u)) {
      options->trials = u;
    } else if (arg == "--seed" && parse_u64(next(), &u)) {
      options->seed = u;
    } else if (arg == "--threads" && parse_u64(next(), &u) && u >= 1 &&
               u <= 64) {
      options->threads = static_cast<unsigned>(u);
    } else if (arg == "--replay") {
      const char* path = next();
      if (path == nullptr) return false;
      options->replay_path = path;
    } else if (arg == "--out") {
      const char* path = next();
      if (path == nullptr) return false;
      options->out_dir = path;
    } else if (arg == "--summary") {
      const char* path = next();
      if (path == nullptr) return false;
      options->summary_path = path;
    } else if (arg == "--time-budget-s" && parse_u64(next(), &u)) {
      options->time_budget_s = static_cast<double>(u);
    } else if (arg == "--max-shrink-attempts" && parse_u64(next(), &u)) {
      options->max_shrink_attempts = u;
    } else if (arg == "--emit" && parse_u64(next(), &u)) {
      options->emit = u;
    } else if (arg == "--no-shrink") {
      options->shrink = false;
    } else if (arg == "--verbose") {
      options->verbose = true;
    } else {
      std::fprintf(stderr, "unrecognized or malformed argument: %s\n",
                   arg.c_str());
      return false;
    }
  }
  return true;
}

/// Default corpus directory: tests/chaos_corpus when invoked from the
/// repo root (the committed corpus), else the working directory.
std::string default_out_dir() {
  struct stat st{};
  if (stat("tests/chaos_corpus", &st) == 0 && S_ISDIR(st.st_mode)) {
    return "tests/chaos_corpus";
  }
  return ".";
}

bool write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << contents;
  return static_cast<bool>(out);
}

/// Oracle name of the verdict's first failure, kernel prefix stripped —
/// filenames and step summaries stay kernel-agnostic.
std::string failure_name(const metrics::ChaosVerdict& verdict) {
  const metrics::OracleFinding* first = verdict.first_failure();
  if (first == nullptr) return "clean";
  std::string name = first->oracle;
  for (const char* prefix : {"serial/", "parallel/"}) {
    const std::string p(prefix);
    if (name.rfind(p, 0) == 0) {
      name = name.substr(p.size());
      break;
    }
  }
  for (char& c : name) {
    if (c == '/' || c == ':' || c == ' ') c = '-';
  }
  return name;
}

int run_replay(const Options& options) {
  std::ifstream in(options.replay_path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "chaos_fuzz: cannot read %s\n",
                 options.replay_path.c_str());
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const Expected<fuzz::ReproArtifact> artifact =
      fuzz::ReproArtifact::from_json_string(buffer.str());
  if (!artifact.ok()) {
    std::fprintf(stderr, "chaos_fuzz: %s: %s\n",
                 options.replay_path.c_str(),
                 artifact.error().message.c_str());
    return 2;
  }

  fuzz::TrialOptions trial_options;
  trial_options.threads = options.threads;
  const fuzz::TrialResult result =
      run_trial(artifact.value(), trial_options);
  std::printf("%s\n", result.verdict.to_json().dump(2).c_str());
  const bool matched =
      fuzz::matches_expectation(artifact.value(), result.verdict);
  std::printf("REPLAY %s seed=%llu faults=%llu verdict=%s\n",
              matched ? "ok" : "MISMATCH",
              static_cast<unsigned long long>(artifact.value().seed),
              static_cast<unsigned long long>(result.faults_scheduled),
              result.verdict.summary().c_str());
  if (!matched && !result.verdict.ok()) {
    std::printf("CHAOS_ORACLE_VIOLATION oracle=%s\n",
                failure_name(result.verdict).c_str());
  }
  return matched ? 0 : 1;
}

/// Corpus seeding: writes the first N generated artifacts to the corpus
/// directory without judging them (run them through --replay or the
/// corpus-replay tests afterwards to confirm they hold clean on HEAD).
int run_emit(const Options& options) {
  const std::string out_dir =
      options.out_dir.empty() ? default_out_dir() : options.out_dir;
  for (std::uint64_t t = 0; t < options.emit; ++t) {
    const std::uint64_t seed = options.seed + t;
    const fuzz::ReproArtifact artifact = fuzz::generate_artifact(seed);
    const std::string path =
        out_dir + "/corpus-seed" + std::to_string(seed) + ".json";
    if (!write_file(path, artifact.to_json_string())) {
      std::fprintf(stderr, "chaos_fuzz: cannot write %s\n", path.c_str());
      return 2;
    }
    std::printf("emitted %s (motes=%zu faults=%zu)\n", path.c_str(),
                artifact.scenario.node_count(),
                artifact.plan.events().size());
  }
  return 0;
}

int run_fuzz(const Options& options) {
  const std::string out_dir =
      options.out_dir.empty() ? default_out_dir() : options.out_dir;
  const auto started = std::chrono::steady_clock::now();
  const auto elapsed_s = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         started)
        .count();
  };

  fuzz::TrialOptions trial_options;
  trial_options.threads = options.threads;

  std::uint64_t executed = 0;
  std::uint64_t violations = 0;
  double sim_seconds = 0.0;
  std::vector<std::string> violation_lines;
  std::vector<double> shrink_factors;

  for (std::uint64_t t = 0; t < options.trials; ++t) {
    if (options.time_budget_s > 0.0 && elapsed_s() > options.time_budget_s) {
      std::printf("time budget (%0.fs) reached after %llu trials\n",
                  options.time_budget_s,
                  static_cast<unsigned long long>(executed));
      break;
    }
    const std::uint64_t seed = options.seed + t;
    const fuzz::ReproArtifact artifact = fuzz::generate_artifact(seed);
    const fuzz::TrialResult result = run_trial(artifact, trial_options);
    ++executed;
    sim_seconds += result.sim_seconds;
    if (options.verbose) {
      std::printf("trial %llu seed=%llu motes=%zu faults=%llu %s\n",
                  static_cast<unsigned long long>(t),
                  static_cast<unsigned long long>(seed),
                  artifact.scenario.node_count(),
                  static_cast<unsigned long long>(result.faults_scheduled),
                  result.verdict.summary().c_str());
    }
    if (result.verdict.ok()) continue;

    ++violations;
    const std::string name = failure_name(result.verdict);
    std::printf("CHAOS_ORACLE_VIOLATION oracle=%s seed=%llu %s\n",
                name.c_str(), static_cast<unsigned long long>(seed),
                result.verdict.summary().c_str());
    violation_lines.push_back("oracle=" + name +
                              " seed=" + std::to_string(seed));

    const std::string stem =
        out_dir + "/repro-" + name + "-seed" + std::to_string(seed);
    fuzz::ReproArtifact original = artifact;
    original.note += "; failed: " + result.verdict.summary();
    if (!write_file(stem + ".json", original.to_json_string())) {
      std::fprintf(stderr, "chaos_fuzz: cannot write %s.json\n",
                   stem.c_str());
    }

    if (!options.shrink) continue;
    // Shrink preserving the first failing oracle. The predicate re-runs
    // the full trial; names are compared kernel-prefix-stripped so a
    // failure may migrate between serial and parallel runs while
    // shrinking.
    const auto still_fails = [&](const fuzz::ReproArtifact& candidate) {
      const fuzz::TrialResult replay = run_trial(candidate, trial_options);
      if (replay.verdict.ok()) return false;
      return failure_name(replay.verdict) == name;
    };
    fuzz::ShrinkOptions shrink_options;
    shrink_options.max_attempts = options.max_shrink_attempts;
    fuzz::ShrinkStats shrink_stats;
    fuzz::ReproArtifact shrunk = fuzz::shrink_artifact(
        original, still_fails, shrink_options, &shrink_stats);
    const double before = static_cast<double>(
        original.plan.events().size() + original.scenario.node_count());
    const double after = static_cast<double>(
        shrunk.plan.events().size() + shrunk.scenario.node_count());
    const double factor = after > 0.0 ? before / after : 1.0;
    shrink_factors.push_back(factor);
    shrunk.note += "; shrunk from " +
                   std::to_string(original.plan.events().size()) +
                   " fault events / " +
                   std::to_string(original.scenario.node_count()) +
                   " motes in " + std::to_string(shrink_stats.attempts) +
                   " attempts";
    std::printf(
        "  shrunk: %zu -> %zu fault events, %zu -> %zu motes "
        "(%zu attempts, %zu accepted)\n",
        original.plan.events().size(), shrunk.plan.events().size(),
        original.scenario.node_count(), shrunk.scenario.node_count(),
        shrink_stats.attempts, shrink_stats.accepted);
    if (!write_file(stem + "-shrunk.json", shrunk.to_json_string())) {
      std::fprintf(stderr, "chaos_fuzz: cannot write %s-shrunk.json\n",
                   stem.c_str());
    }
  }

  const double wall_s = elapsed_s();
  const double trials_per_hour =
      wall_s > 0.0 ? static_cast<double>(executed) * 3600.0 / wall_s : 0.0;
  double mean_shrink = 0.0;
  for (const double f : shrink_factors) mean_shrink += f;
  if (!shrink_factors.empty()) {
    mean_shrink /= static_cast<double>(shrink_factors.size());
  }

  std::printf(
      "chaos_fuzz: %llu trials, %llu violations, %.1f simulated s, "
      "%.1f wall s (%.0f trials/hour)\n",
      static_cast<unsigned long long>(executed),
      static_cast<unsigned long long>(violations), sim_seconds, wall_s,
      trials_per_hour);
  if (!shrink_factors.empty()) {
    std::printf("mean shrink factor: %.2fx\n", mean_shrink);
  }

  if (!options.summary_path.empty()) {
    util::Json summary = util::Json::object();
    summary.set("seed", static_cast<std::int64_t>(options.seed));
    summary.set("trials", static_cast<std::int64_t>(executed));
    summary.set("violations", static_cast<std::int64_t>(violations));
    summary.set("sim_seconds", sim_seconds);
    summary.set("wall_seconds", wall_s);
    summary.set("trials_per_hour", trials_per_hour);
    summary.set("violation_rate",
                executed > 0
                    ? static_cast<double>(violations) /
                          static_cast<double>(executed)
                    : 0.0);
    summary.set("mean_shrink_factor", mean_shrink);
    util::Json lines = util::Json::array();
    for (const std::string& line : violation_lines) lines.push_back(line);
    summary.set("violation_seeds", std::move(lines));
    if (!write_file(options.summary_path, summary.dump(2) + "\n")) {
      std::fprintf(stderr, "chaos_fuzz: cannot write %s\n",
                   options.summary_path.c_str());
    }
  }
  return violations == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse_options(argc, argv, &options)) {
    usage(argv[0]);
    return 2;
  }
  if (!options.replay_path.empty()) return run_replay(options);
  if (options.emit > 0) return run_emit(options);
  return run_fuzz(options);
}
