# gnuplot script for Figure 5 (timers vs max trackable speed).
# Generate data:  ET_BENCH_CSV_DIR=docs/plots build/bench/fig5_timers
set datafile separator ","
set key top right
set logscale x 2
set xlabel "heartbeat period (s)"
set ylabel "max trackable speed (hops/s)"
set title "Effect of timers on maximum trackable speed (Fig. 5)"
plot "fig5_timers.csv" using 1:2 with linespoints title "takeover, SR=1", \
     "fig5_timers.csv" using 1:3 with linespoints title "takeover, SR=2", \
     "fig5_timers.csv" using 1:4 with linespoints title "relinquish, SR=1", \
     "fig5_timers.csv" using 1:5 with linespoints title "cross traffic, SR=1"
