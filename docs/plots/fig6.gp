# gnuplot script for Figure 6 (CR:SR ratio vs max trackable speed).
# Generate data:  ET_BENCH_CSV_DIR=docs/plots build/bench/fig6_ratio
set datafile separator ","
set key top left
set xlabel "communication radius : sensing radius"
set ylabel "max trackable speed (hops/s)"
set title "Effect of sensory radius on maximum trackable speed (Fig. 6)"
plot "fig6_ratio.csv" using 1:2 with linespoints title "SR=1", \
     "fig6_ratio.csv" using 1:3 with linespoints title "SR=2"
