# gnuplot script for Figure 3 (real vs tracked trajectory).
# Generate data:  ET_BENCH_CSV_DIR=docs/plots build/bench/fig3_trajectory
set datafile separator ","
set key left top
set xlabel "x (grid units)"
set ylabel "y (grid units)"
set yrange [-1:2]
set title "Tracked tank trajectory (Fig. 3)"
plot "fig3_track.csv" using 5:6 with lines lw 2 title "real", \
     "fig3_track.csv" using 3:4 with linespoints pt 7 title "reported"
