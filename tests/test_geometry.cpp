#include "util/geometry.hpp"

#include <gtest/gtest.h>

namespace et {
namespace {

TEST(Vec2, Arithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -1.0};
  EXPECT_EQ((a + b), (Vec2{4.0, 1.0}));
  EXPECT_EQ((a - b), (Vec2{-2.0, 3.0}));
  EXPECT_EQ((a * 2.0), (Vec2{2.0, 4.0}));
  EXPECT_EQ((2.0 * a), (Vec2{2.0, 4.0}));
  EXPECT_EQ((a / 2.0), (Vec2{0.5, 1.0}));
}

TEST(Vec2, DotAndNorm) {
  const Vec2 a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.dot({1.0, 1.0}), 7.0);
  EXPECT_DOUBLE_EQ(a.norm_sq(), 25.0);
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
}

TEST(Vec2, Normalized) {
  const Vec2 v = Vec2{3.0, 4.0}.normalized();
  EXPECT_NEAR(v.x, 0.6, 1e-12);
  EXPECT_NEAR(v.y, 0.8, 1e-12);
  EXPECT_EQ(Vec2{}.normalized(), Vec2{});
}

TEST(Geometry, Distance) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance_sq({0, 0}, {3, 4}), 25.0);
}

TEST(Geometry, WithinRadius) {
  EXPECT_TRUE(within_radius({0, 0}, {3, 4}, 5.0));   // boundary inclusive
  EXPECT_TRUE(within_radius({0, 0}, {1, 1}, 2.0));
  EXPECT_FALSE(within_radius({0, 0}, {3, 4}, 4.999));
}

TEST(Geometry, Lerp) {
  const Vec2 mid = lerp({0, 0}, {10, 20}, 0.5);
  EXPECT_EQ(mid, (Vec2{5, 10}));
  EXPECT_EQ(lerp({1, 1}, {2, 2}, 0.0), (Vec2{1, 1}));
  EXPECT_EQ(lerp({1, 1}, {2, 2}, 1.0), (Vec2{2, 2}));
}

TEST(Rect, ContainsAndClamp) {
  const Rect r{{0, 0}, {10, 5}};
  EXPECT_DOUBLE_EQ(r.width(), 10.0);
  EXPECT_DOUBLE_EQ(r.height(), 5.0);
  EXPECT_TRUE(r.contains({5, 2}));
  EXPECT_TRUE(r.contains({0, 0}));
  EXPECT_TRUE(r.contains({10, 5}));
  EXPECT_FALSE(r.contains({-0.1, 2}));
  EXPECT_FALSE(r.contains({5, 5.1}));
  EXPECT_EQ(r.clamp({-3, 2}), (Vec2{0, 2}));
  EXPECT_EQ(r.clamp({12, 9}), (Vec2{10, 5}));
  EXPECT_EQ(r.clamp({4, 4}), (Vec2{4, 4}));
}

TEST(Vec2, ToString) {
  EXPECT_EQ((Vec2{1.5, -2.25}).to_string(), "(1.500, -2.250)");
}

}  // namespace
}  // namespace et
