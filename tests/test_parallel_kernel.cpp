#include <gtest/gtest.h>

#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "metrics/invariants.hpp"
#include "scenario/fire.hpp"
#include "scenario/tank.hpp"
#include "scenario/units.hpp"
#include "sim/parallel.hpp"
#include "test_world.hpp"

/// Parallel-kernel equivalence suite.
///
/// The contract under test: with `canonical_order` on, the serial engine is
/// a bit-exact oracle for the tiled parallel engine — same seed, same
/// scenario, same per-mote event order, same metrics — for every thread
/// count and tile granularity. Each test digests all deterministic
/// observables of a run into one string and compares it byte for byte.
namespace et::test {
namespace {

using scenario::TankRunResult;

sim::KernelConfig serial_oracle() {
  sim::KernelConfig k;
  k.canonical_order = true;
  return k;
}

sim::KernelConfig parallel(int threads, int tiles_per_thread = 1) {
  sim::KernelConfig k;
  k.use_parallel_kernel = true;
  k.threads = threads;
  k.tiles_per_thread = tiles_per_thread;
  return k;
}

/// The (threads, tiles-per-thread) grid every equivalence test sweeps.
const std::vector<sim::KernelConfig>& parallel_grid() {
  static const std::vector<sim::KernelConfig> grid = {
      parallel(1, 1),  // single worker: exercises windowing alone
      parallel(2, 1),
      parallel(4, 1),
      parallel(4, 4),  // fine tiles: heavy cross-tile traffic
  };
  return grid;
}

std::string describe(const sim::KernelConfig& k) {
  if (!k.use_parallel_kernel) return "serial-canonical";
  std::ostringstream os;
  os << "parallel(threads=" << k.threads
     << ", tiles_per_thread=" << k.tiles_per_thread << ")";
  return os.str();
}

void append_medium(std::ostringstream& os, const radio::MediumStats& m) {
  os << "medium bits=" << m.bits_sent << " airtime=" << m.airtime.to_micros();
  const radio::TypeStats t = m.totals();
  os << " offered=" << t.offered << " transmitted=" << t.transmitted
     << " mac_dropped=" << t.mac_dropped << " lost=" << t.lost
     << " pair_attempts=" << t.pair_attempts
     << " pair_delivered=" << t.pair_delivered
     << " coll=" << t.pair_lost_collision << " rand=" << t.pair_lost_random
     << " burst=" << t.pair_lost_burst
     << " part=" << t.pair_blocked_partition << "\n";
}

void append_events(std::ostringstream& os, const metrics::EventLog& log) {
  os << "events total=" << log.total() << "\n";
  for (const core::GroupEvent& e : log.events()) {
    os << e.to_string() << "\n";
  }
}

/// Every deterministic observable of a tank run (excludes wall-clock).
std::string digest(const TankRunResult& r) {
  std::ostringstream os;
  os << "tracking handovers=" << r.tracking.successful_handovers << "/"
     << r.tracking.failed_handovers
     << " labels=" << r.tracking.distinct_labels
     << " replicated=" << r.tracking.replicated_samples
     << " tracked=" << r.tracking.tracked_samples << "/"
     << r.tracking.total_samples
     << " latency=" << r.tracking.detection_latency.to_micros() << "\n";
  append_medium(os, r.medium);
  os << "groups hb=" << r.groups.heartbeats_sent << "/"
     << r.groups.heartbeats_relayed << " reports=" << r.groups.reports_sent
     << "/" << r.groups.reports_received
     << " labels=" << r.groups.labels_created
     << " takeovers=" << r.groups.takeovers
     << " relinquishes=" << r.groups.relinquishes
     << " yields=" << r.groups.yields
     << " suppressions=" << r.groups.suppressions
     << " joins=" << r.groups.joins << "\n";
  os << "cpu posted=" << r.cpu.posted << " executed=" << r.cpu.executed
     << " dropped=" << r.cpu.dropped << " busy=" << r.cpu.busy.to_micros()
     << "\n";
  os << "track points=" << r.track.size() << " labels=" << r.track_labels
     << "\n";
  for (const metrics::TrackPoint& p : r.track) {
    os << "  t=" << (p.time - Time::origin()).to_micros()
       << " label=" << p.label.value() << " reported=(" << p.reported.x << ","
       << p.reported.y << ") actual=(" << p.actual.x << "," << p.actual.y
       << ")\n";
  }
  os << "elapsed=" << r.elapsed.to_micros() << "\n";
  return os.str();
}

std::string run_tank(const scenario::TankScenarioParams& base,
                     const sim::KernelConfig& kernel) {
  scenario::TankScenarioParams params = base;
  params.kernel = kernel;
  scenario::TankScenario scenario(params);
  const TankRunResult result = scenario.run();
  std::ostringstream os;
  os << digest(result);
  append_events(os, scenario.events());
  return os.str();
}

TEST(ParallelKernel, TankBitExactAcrossThreadsAndTiles) {
  scenario::TankScenarioParams params;
  params.seed = 42;
  const std::string oracle = run_tank(params, serial_oracle());
  for (const sim::KernelConfig& k : parallel_grid()) {
    EXPECT_EQ(run_tank(params, k), oracle) << describe(k);
  }
}

TEST(ParallelKernel, TankWithLossyRadioBitExact) {
  // Collisions, random loss, and burst loss exercise the per-mote RNG
  // forks; tile placement must not perturb any draw.
  scenario::TankScenarioParams params;
  params.seed = 7;
  params.radio.loss_probability = 0.05;
  params.radio.model_collisions = true;
  params.radio.carrier_sense_miss = 0.1;
  const std::string oracle = run_tank(params, serial_oracle());
  for (const sim::KernelConfig& k : parallel_grid()) {
    EXPECT_EQ(run_tank(params, k), oracle) << describe(k);
  }
}

TEST(ParallelKernel, PursuitBitExact) {
  // The pursuit configuration: fast target, directory + transport on, and
  // background cross-traffic saturating the channel.
  scenario::TankScenarioParams params;
  params.seed = 99;
  params.speed_hops_per_s = scenario::kmh_to_hops_per_s(scenario::kTankFastKmh);
  params.enable_directory = true;
  params.enable_transport = true;
  params.cross_traffic = scenario::CrossTrafficConfig{};
  const std::string oracle = run_tank(params, serial_oracle());
  for (const sim::KernelConfig& k : parallel_grid()) {
    EXPECT_EQ(run_tank(params, k), oracle) << describe(k);
  }
}

std::string run_fire(const sim::KernelConfig& kernel) {
  scenario::FireScenarioParams params;
  params.seed = 11;
  params.kernel = kernel;
  scenario::FireScenario scenario(params);
  scenario.ignite({3.0, 3.0}, Time::origin() + Duration::seconds(1));
  scenario.ignite({11.0, 10.0}, Time::origin() + Duration::seconds(4));
  scenario.run(12);
  std::ostringstream os;
  os << "alarms=" << scenario.alarms().size() << "\n";
  for (const scenario::FireEvent& a : scenario.alarms()) {
    os << "  t=" << (a.time - Time::origin()).to_micros()
       << " label=" << a.label.value() << " seat=(" << a.seat.x << ","
       << a.seat.y << ") intensity=" << a.intensity << "\n";
  }
  const auto entries = scenario.where_are_the_fires(NodeId{0});
  os << "directory=" << entries.size() << "\n";
  for (const core::DirectoryEntry& e : entries) {
    os << "  label=" << e.label.value() << " leader=" << e.leader.value()
       << " loc=(" << e.location.x << "," << e.location.y
       << ") updated=" << (e.updated - Time::origin()).to_micros()
       << " epoch=" << e.epoch << "\n";
  }
  append_medium(os, scenario.system().medium().stats());
  append_events(os, scenario.events());
  return os.str();
}

TEST(ParallelKernel, FireScenarioBitExact) {
  const std::string oracle = run_fire(serial_oracle());
  for (const sim::KernelConfig& k : parallel_grid()) {
    EXPECT_EQ(run_fire(k), oracle) << describe(k);
  }
}

/// Simultaneous timestamps: N motes arm a timer for the *same* instant
/// (registered in descending mote order); canonical keys must fire them in
/// ascending mote-rank order on every kernel, with the op journal
/// preserving that order across tiles.
std::vector<std::size_t> same_instant_firing_order(
    const sim::KernelConfig& kernel) {
  TestWorld::Options options;
  options.kernel = kernel;
  TestWorld world(options);
  std::vector<std::size_t> order;
  const std::size_t n = world.system().node_count();
  for (std::size_t i = n; i-- > 0;) {
    auto& mote = world.system().network().mote(NodeId{i});
    sim::ExecutingOwnerScope scope(world.sim(),
                                   static_cast<std::uint32_t>(i));
    mote.after(Duration::seconds(1), [&world, &order, i] {
      world.sim().post_op([&order, i] { order.push_back(i); });
    });
  }
  world.run(2);
  return order;
}

TEST(ParallelKernel, SimultaneousEventsKeepSerialTieBreakOrder) {
  const std::vector<std::size_t> oracle =
      same_instant_firing_order(serial_oracle());
  ASSERT_EQ(oracle.size(), TestWorld::Options{}.rows * TestWorld::Options{}.cols);
  // The serial tie-break is ascending mote rank, not registration order.
  for (std::size_t i = 0; i + 1 < oracle.size(); ++i) {
    EXPECT_LT(oracle[i], oracle[i + 1]);
  }
  for (const sim::KernelConfig& k : parallel_grid()) {
    EXPECT_EQ(same_instant_firing_order(k), oracle) << describe(k);
  }
}

/// Chaos under the parallel kernel: crashes, reboots, and a partition with
/// the protocol-invariant oracle attached. The violation report, fault
/// record stream, and event log must match the serial oracle exactly.
std::string run_chaos(const sim::KernelConfig& kernel,
                      const std::function<void(TestWorld&)>& inspect = {},
                      bool force_fanout = false) {
  TestWorld::Options options;
  options.rows = 3;
  options.cols = 10;
  options.enable_transport = true;
  options.kernel = kernel;
  options.seed = 5;
  if (force_fanout) options.fanout_min_receivers = 1;
  TestWorld world(options);
  metrics::InvariantOracle oracle(world.system());
  fault::FaultInjector injector(world.system());

  world.add_blob({4.5, 1.0}, 1.8);
  world.run(3);

  fault::FaultPlan plan;
  const Time t0 = world.sim().now();
  plan.crash_for(t0 + Duration::seconds(1), NodeId{13}, Duration::seconds(3));
  plan.crash_for(t0 + Duration::seconds(2), NodeId{14}, Duration::seconds(3));
  std::vector<NodeId> island;
  for (std::size_t i = 0; i < 30; ++i) {
    if (i % 10 >= 5) island.push_back(NodeId{i});
  }
  plan.partition_start(t0 + Duration::seconds(4),
                       fault::PartitionSpec{{island}});
  plan.partition_heal(t0 + Duration::seconds(8));
  injector.schedule(plan);
  world.run(12);

  std::ostringstream os;
  os << "checks=" << oracle.checks_run() << "\n" << oracle.report() << "\n";
  os << "faults=" << injector.records().size() << "\n";
  for (const fault::FaultRecord& r : injector.records()) {
    os << "  t=" << (r.at - Time::origin()).to_micros() << " "
       << fault::fault_kind_name(r.kind) << " node="
       << (r.node.is_valid() ? static_cast<long long>(r.node.value()) : -1)
       << " was_leader=" << r.was_leader << "\n";
  }
  append_medium(os, world.system().medium().stats());
  append_events(os, world.events());
  if (inspect) inspect(world);
  return os.str();
}

TEST(ParallelKernel, ChaosRunWithInvariantOracleBitExact) {
  const std::string oracle = run_chaos(serial_oracle());
  for (const sim::KernelConfig& k : parallel_grid()) {
    EXPECT_EQ(run_chaos(k), oracle) << describe(k);
  }
}

TEST(ParallelKernel, CanonicalSerialStillTracks) {
  // The canonical ordering (rx handoff latency, deferred channel ops) is a
  // different — but equally valid — schedule; the middleware must still
  // meet the paper's trackability criterion under it.
  scenario::TankScenarioParams params;
  params.seed = 1;
  params.kernel = serial_oracle();
  const TankRunResult result = scenario::run_tank_scenario(params);
  EXPECT_TRUE(result.trackable())
      << "labels=" << result.tracking.distinct_labels
      << " tracked=" << result.tracking.tracked_fraction();
}

sim::KernelConfig narrow(sim::KernelConfig k) {
  k.wide_windows = false;
  return k;
}

/// Wide-window suite: the adaptive per-tile planner (tile-pair lookahead
/// matrix + pending-send/channel constraints) against the serial oracle,
/// and the legacy fixed-lookahead mode it must keep reproducing.
TEST(WideWindow, NarrowModeStillBitExact) {
  // wide_windows off reverts to the original global-min-airtime windows;
  // serial and parallel must still agree byte for byte there (this is the
  // PR 7 baseline configuration).
  scenario::TankScenarioParams params;
  params.seed = 42;
  const std::string oracle = run_tank(params, narrow(serial_oracle()));
  for (const sim::KernelConfig& k : parallel_grid()) {
    EXPECT_EQ(run_tank(params, narrow(k)), oracle)
        << describe(k) << " narrow";
  }
}

TEST(WideWindow, ChaosLookaheadAdmitsNoLateReceptions) {
  // The windowing proof, stated as a runtime property: once a tile's
  // window bound is published, no cross-tile effect (reception handoff,
  // replayed op) may be inserted at or before it. Every engine counts such
  // insertions; a wide-window chaos run — crashes, reboots, a partition,
  // world events cutting windows — must end with all counters at zero, on
  // every thread/tile grid.
  for (const sim::KernelConfig& k : parallel_grid()) {
    run_chaos(k, [&](TestWorld& world) {
      sim::ParallelKernel* kernel = world.system().kernel();
      ASSERT_NE(kernel, nullptr) << describe(k);
      EXPECT_GT(kernel->stats().windows, 0u) << describe(k);
      for (sim::Simulator* engine : kernel->all_sims()) {
        EXPECT_EQ(engine->late_insertions(), 0u) << describe(k);
      }
    });
  }
  // The serial canonical oracle trivially satisfies the same property.
  run_chaos(serial_oracle(), [](TestWorld& world) {
    EXPECT_EQ(world.sim().late_insertions(), 0u);
  });
}

/// Parallel delivery fan-out: broadcasts sharded across the worker pool by
/// receiving tile, with per-receiver RNG streams and pre-assigned
/// reception keys.
TEST(ParallelFanout, ForcedFanoutBitExactUnderLoss) {
  // fanout_min_receivers = 1 routes every delivery through the fan-out
  // executor; loss + collisions + bursts exercise the per-receiver RNG
  // forks, whose draws must not depend on sampling order or tile layout.
  scenario::TankScenarioParams params;
  params.seed = 7;
  params.radio.fanout_min_receivers = 1;
  params.radio.loss_probability = 0.05;
  params.radio.model_collisions = true;
  params.radio.carrier_sense_miss = 0.1;
  params.radio.burst_loss.enabled = true;
  const std::string oracle = run_tank(params, serial_oracle());
  for (const sim::KernelConfig& k : parallel_grid()) {
    EXPECT_EQ(run_tank(params, k), oracle) << describe(k);
  }
}

TEST(ParallelFanout, ForcedFanoutChaosBitExact) {
  // Fan-out under faults: partitions toggle per-pair blocking mid-run; the
  // sharded attempt loop must observe exactly the serial partition state.
  const std::string oracle =
      run_chaos(serial_oracle(), {}, /*force_fanout=*/true);
  for (const sim::KernelConfig& k : parallel_grid()) {
    EXPECT_EQ(run_chaos(k, {}, /*force_fanout=*/true), oracle)
        << describe(k);
  }
}

TEST(ParallelFanout, ForcedFanoutPopulatesTelemetry) {
  scenario::TankScenarioParams params;
  params.seed = 7;
  params.kernel = parallel(2, 2);
  params.radio.fanout_min_receivers = 1;
  scenario::TankScenario scenario(params);
  scenario.run();
  sim::ParallelKernel* kernel = scenario.system().kernel();
  ASSERT_NE(kernel, nullptr);
  const sim::ParallelKernelStats& stats = kernel->stats();
  EXPECT_GT(stats.fanout_batches, 0u)
      << "with the threshold at 1 every multi-candidate broadcast must "
         "dispatch a fan-out batch";
  EXPECT_GE(stats.fanout_receivers, stats.fanout_batches)
      << "each batch carries at least one receiver attempt";
}

/// Kernel telemetry: the counters BM_ScalingTank publishes into
/// BENCH_micro.json must be internally consistent and actually measure the
/// windowing.
TEST(KernelTelemetry, WindowAccountingIsConsistent) {
  scenario::TankScenarioParams params;
  params.seed = 42;
  params.kernel = parallel(2, 1);
  scenario::TankScenario scenario(params);
  scenario.run();
  const sim::ParallelKernelStats& stats =
      scenario.system().kernel()->stats();
  EXPECT_GT(stats.windows, 0u);
  EXPECT_EQ(stats.windows,
            stats.windows_cut_world + stats.windows_full + stats.windows_final)
      << "every window is cut at a world event, a planner bound, or the "
         "deadline";
  EXPECT_GT(stats.window_width_total, Duration::zero());
  EXPECT_GT(stats.mean_window_width_us(), 0.0);
  EXPECT_GE(stats.window_width_max.to_seconds() * 1e6,
            stats.mean_window_width_us());
  EXPECT_GE(stats.serial_fraction(), 0.0);
  EXPECT_LE(stats.serial_fraction(), 1.0);
}

TEST(KernelTelemetry, WideWindowsNeedFewerBarriers) {
  // The point of the adaptive planner: same workload, same seed, strictly
  // fewer (and wider) barrier windows than the global-min-airtime
  // baseline.
  auto stats_for = [](bool wide) {
    scenario::TankScenarioParams params;
    params.seed = 42;
    params.kernel = parallel(2, 1);
    params.kernel.wide_windows = wide;
    scenario::TankScenario scenario(params);
    scenario.run();
    return scenario.system().kernel()->stats();
  };
  const sim::ParallelKernelStats wide = stats_for(true);
  const sim::ParallelKernelStats narrow = stats_for(false);
  EXPECT_LT(wide.windows, narrow.windows);
  EXPECT_GT(wide.mean_window_width_us(), narrow.mean_window_width_us());
}

TEST(ParallelKernel, LookaheadDerivedFromRadioConstants) {
  // The conservative window is the minimum frame airtime: header-only
  // frame at the configured bitrate. Guard the derivation — a zero or
  // hardcoded lookahead would silently break the windowing proof.
  sim::Simulator sim(1);
  radio::Medium medium(sim, radio::RadioConfig{});
  const radio::RadioConfig defaults;
  const auto expected_us = static_cast<std::int64_t>(
      defaults.header_bytes * 8 * 1e6 / defaults.bitrate_bps);
  EXPECT_GT(medium.min_airtime(), Duration::zero());
  EXPECT_EQ(medium.min_airtime().to_micros(), expected_us);
}

}  // namespace
}  // namespace et::test
