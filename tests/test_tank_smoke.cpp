#include "scenario/tank.hpp"

#include <gtest/gtest.h>

/// End-to-end integration smoke test: the Fig. 2 application on the §6.1
/// testbed. A single tank crossing the grid must produce exactly one
/// coherent context label, successful leadership handovers, and position
/// reports at the base station.
namespace et::scenario {
namespace {

TEST(TankSmoke, SlowTankIsTrackedCoherently) {
  TankScenarioParams params;
  params.cols = 10;
  params.rows = 3;
  params.speed_hops_per_s = kmh_to_hops_per_s(kTankSlowKmh);
  params.group.heartbeat_period = Duration::seconds(0.5);
  params.seed = 7;

  const TankRunResult result = run_tank_scenario(params);

  // Coherence: one label for the whole traverse (Fig. 4's 100% case).
  EXPECT_EQ(result.tracking.distinct_labels, 1u)
      << "failed handovers: " << result.tracking.failed_handovers;
  EXPECT_GT(result.tracking.tracked_fraction(), 0.8);
  // The label moved across nodes as the tank moved.
  EXPECT_GE(result.tracking.successful_handovers, 3u);
  EXPECT_EQ(result.tracking.failed_handovers, 0u);

  // Protocol actually ran.
  EXPECT_GT(result.groups.heartbeats_sent, 10u);
  EXPECT_GT(result.groups.reports_received, 10u);
  EXPECT_GE(result.groups.relinquishes, 1u);

  // The pursuer received reports from a single label, with bounded error.
  EXPECT_GE(result.track.size(), 5u);
  EXPECT_EQ(result.track_labels, 1u);
  for (const auto& point : result.track) {
    EXPECT_LT(point.error, 2.5) << "report wildly off target";
  }

  // Channel load stays a tiny fraction of capacity (Table 1: ~2-3%).
  EXPECT_LT(result.channel.link_utilization_pct, 15.0);
}

TEST(TankSmoke, ReportsCarryAveragedPositions) {
  TankScenarioParams params;
  params.cols = 8;
  params.speed_hops_per_s = 0.1;
  params.seed = 21;
  const TankRunResult result = run_tank_scenario(params);
  ASSERT_GE(result.track.size(), 3u);
  // Reported y must hover around the mote rows adjacent to the track, i.e.
  // within the field; reported x must progress forward over time.
  double last_x = -10.0;
  int regressions = 0;
  for (const auto& point : result.track) {
    EXPECT_GE(point.reported.y, -0.5);
    EXPECT_LE(point.reported.y, 2.5);
    if (point.reported.x < last_x - 1.0) ++regressions;
    last_x = point.reported.x;
  }
  EXPECT_LE(regressions, 1);  // loss-induced anomalies are rare, not the norm
}

}  // namespace
}  // namespace et::scenario
