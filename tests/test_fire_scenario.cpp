#include "scenario/fire.hpp"

#include <gtest/gtest.h>

/// Integration tests of the fire-monitoring application: growing
/// stationary phenomena, concurrent labels, condition-invoked alarms, the
/// directory's global view, and extinction.
namespace et::scenario {
namespace {

TEST(FireScenario, SingleFireRaisesOneAlarm) {
  FireScenarioParams params;
  params.seed = 3;
  FireScenario world(params);
  world.ignite({7.0, 7.0}, Time::origin());
  world.run(30);

  ASSERT_GE(world.alarms().size(), 1u);
  EXPECT_LE(world.alarms().size(), 3u) << "edge-triggered, not periodic";
  const FireEvent& alarm = world.alarms().front();
  EXPECT_GT(alarm.intensity, 120.0);
  EXPECT_NEAR(alarm.seat.x, 7.0, 1.5);
  EXPECT_NEAR(alarm.seat.y, 7.0, 1.5);
}

TEST(FireScenario, GrowingFireGrowsItsGroup) {
  FireScenarioParams params;
  params.seed = 5;
  FireScenario world(params);
  world.ignite({7.0, 7.0}, Time::origin(), 1.0, 0.05, 3.0);
  world.run(5);
  std::size_t involved_early = 0;
  for (std::size_t i = 0; i < world.system().node_count(); ++i) {
    if (world.system().stack(NodeId{i}).groups().role(0) !=
        core::Role::kIdle) {
      ++involved_early;
    }
  }
  world.run(35);  // radius 1 -> 3
  std::size_t involved_late = 0;
  for (std::size_t i = 0; i < world.system().node_count(); ++i) {
    if (world.system().stack(NodeId{i}).groups().role(0) !=
        core::Role::kIdle) {
      ++involved_late;
    }
  }
  EXPECT_GT(involved_late, involved_early * 2)
      << "the sensor group must grow with the phenomenon";
  // Still one label despite the growth.
  EXPECT_EQ(world.events().count(core::GroupEvent::Kind::kLabelCreated), 1u);
}

TEST(FireScenario, DirectoryListsAllActiveFires) {
  FireScenarioParams params;
  params.seed = 7;
  FireScenario world(params);
  world.ignite({3.0, 3.0}, Time::origin());
  world.ignite({11.0, 10.0}, Time::seconds(5));
  // Run past the directory TTL so entries of any short-lived spurious
  // label (created in the ignition race, then suppressed) have expired.
  world.run(40);

  const auto fires = world.where_are_the_fires(NodeId{0});
  ASSERT_EQ(fires.size(), 2u);
  // Locations near the two seats, in some order.
  const bool first_near_a = distance(fires[0].location, {3, 3}) < 2.5;
  const auto& near_a = first_near_a ? fires[0] : fires[1];
  const auto& near_b = first_near_a ? fires[1] : fires[0];
  EXPECT_LT(distance(near_a.location, {3, 3}), 2.5);
  EXPECT_LT(distance(near_b.location, {11, 10}), 2.5);
  EXPECT_NE(near_a.label, near_b.label);
}

TEST(FireScenario, ExtinguishedFireLeavesTheDirectory) {
  FireScenarioParams params;
  params.seed = 9;
  FireScenario world(params);
  const TargetId fire = world.ignite({7.0, 7.0}, Time::origin());
  world.run(15);
  ASSERT_EQ(world.where_are_the_fires(NodeId{0}).size(), 1u);

  world.extinguish(fire);
  world.run(30);  // past the directory entry TTL (20 s)
  EXPECT_TRUE(world.where_are_the_fires(NodeId{0}).empty());
  // The group itself dissolved.
  std::size_t involved = 0;
  for (std::size_t i = 0; i < world.system().node_count(); ++i) {
    if (world.system().stack(NodeId{i}).groups().role(0) !=
        core::Role::kIdle) {
      ++involved;
    }
  }
  EXPECT_EQ(involved, 0u);
}

TEST(FireScenario, ReignitionMintsAFreshLabel) {
  FireScenarioParams params;
  params.seed = 11;
  FireScenario world(params);

  auto current_label = [&]() -> std::optional<LabelId> {
    for (std::size_t i = 0; i < world.system().node_count(); ++i) {
      auto& groups = world.system().stack(NodeId{i}).groups();
      if (groups.role(0) == core::Role::kLeader &&
          groups.leader_weight(0) > 0) {
        return groups.current_label(0);
      }
    }
    return std::nullopt;
  };

  const TargetId first = world.ignite({7.0, 7.0}, Time::origin());
  world.run(10);
  const auto label_before = current_label();
  ASSERT_TRUE(label_before.has_value());

  world.extinguish(first);
  world.run(15);  // group dissolves, wait memories expire
  EXPECT_FALSE(current_label().has_value());

  world.ignite({7.0, 7.0}, world.sim().now());
  world.run(10);
  const auto label_after = current_label();
  ASSERT_TRUE(label_after.has_value());
  EXPECT_NE(*label_after, *label_before)
      << "a re-appearing phenomenon is a new entity, not the old label";
}

TEST(FireScenario, AlarmRespectsThreshold) {
  FireScenarioParams params;
  params.alarm_threshold = 1e9;  // unreachable
  params.seed = 13;
  FireScenario world(params);
  world.ignite({7.0, 7.0}, Time::origin());
  world.run(20);
  EXPECT_TRUE(world.alarms().empty());
}

}  // namespace
}  // namespace et::scenario
