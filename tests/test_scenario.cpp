#include <gtest/gtest.h>

#include "scenario/speed_search.hpp"
#include "scenario/tank.hpp"
#include "scenario/units.hpp"

namespace et::scenario {
namespace {

TEST(Units, SpeedConversions) {
  // §6.1: 50 km/hr ≈ 10 s/hop, 33 km/hr ≈ 15 s/hop at 140 m per hop.
  EXPECT_NEAR(seconds_per_hop(kmh_to_hops_per_s(50.0)), 10.08, 0.01);
  EXPECT_NEAR(seconds_per_hop(kmh_to_hops_per_s(33.0)), 15.27, 0.01);
  EXPECT_NEAR(hops_per_s_to_kmh(kmh_to_hops_per_s(45.0)), 45.0, 1e-9);
  EXPECT_NEAR(kmh_to_hops_per_s(1.0) * kMetersPerHop * 3.6, 1.0, 1e-9);
}

TEST(TankScenario, DeterministicForSameSeed) {
  TankScenarioParams params;
  params.cols = 8;
  params.speed_hops_per_s = 0.2;
  params.seed = 77;
  const TankRunResult a = run_tank_scenario(params);
  const TankRunResult b = run_tank_scenario(params);
  EXPECT_EQ(a.groups.heartbeats_sent, b.groups.heartbeats_sent);
  EXPECT_EQ(a.medium.bits_sent, b.medium.bits_sent);
  EXPECT_EQ(a.tracking.successful_handovers,
            b.tracking.successful_handovers);
  EXPECT_EQ(a.track.size(), b.track.size());
}

TEST(TankScenario, DifferentSeedsDifferentChannels) {
  TankScenarioParams params;
  params.cols = 8;
  params.speed_hops_per_s = 0.2;
  params.seed = 1;
  const auto a = run_tank_scenario(params);
  params.seed = 2;
  const auto b = run_tank_scenario(params);
  EXPECT_NE(a.medium.bits_sent, b.medium.bits_sent);
}

TEST(TankScenario, ElapsedCoversTraverse) {
  TankScenarioParams params;
  params.cols = 8;
  params.speed_hops_per_s = 0.5;
  const TankRunResult result = run_tank_scenario(params);
  // Path length: field width + 2 margins = 7 + 2*1.5 = 10 units at 0.5 u/s
  // plus 3 s cooldown.
  EXPECT_NEAR(result.elapsed.to_seconds(), 10.0 / 0.5 + 3.0, 0.5);
}

TEST(TankScenario, TrackableCriterion) {
  TankRunResult result;
  result.tracking.distinct_labels = 1;
  result.tracking.tracked_samples = 80;
  result.tracking.total_samples = 100;
  EXPECT_TRUE(result.trackable());
  result.tracking.distinct_labels = 2;
  EXPECT_FALSE(result.trackable());
  result.tracking.distinct_labels = 1;
  result.tracking.tracked_samples = 20;
  EXPECT_FALSE(result.trackable(0.5));
  EXPECT_TRUE(result.trackable(0.1));
}

TEST(TankScenario, CrossTrafficRaisesUtilizationNotEnviroTrackCpu) {
  TankScenarioParams base;
  base.cols = 10;
  base.speed_hops_per_s = 0.2;
  base.seed = 5;
  const TankRunResult quiet = run_tank_scenario(base);

  TankScenarioParams noisy = base;
  CrossTrafficConfig noise;
  noise.senders = 8;
  noise.period = Duration::millis(200);
  noisy.cross_traffic = noise;
  const TankRunResult loud = run_tank_scenario(noisy);

  EXPECT_GT(loud.channel.link_utilization_pct,
            quiet.channel.link_utilization_pct * 2)
      << "cross traffic must load the channel";
  // Cross-traffic frames carry no EnviroTrack handler: they are filtered
  // before the CPU task queue (§6.2's bottleneck-identification logic).
  EXPECT_LT(static_cast<double>(loud.cpu.posted),
            static_cast<double>(quiet.cpu.posted) * 1.3);
}

TEST(TankScenario, AverageChannelReportAverages) {
  TankScenarioParams params;
  params.cols = 8;
  params.speed_hops_per_s = 0.2;
  params.radio.loss_probability = 0.1;
  const auto report = average_channel_report(params, 3);
  EXPECT_GT(report.link_utilization_pct, 0.0);
  EXPECT_GT(report.heartbeat_loss_pct, 0.0);
  EXPECT_LT(report.heartbeat_loss_pct, 60.0);
}

TEST(SpeedSearch, SlowIsTrackableAbsurdIsNot) {
  SpeedSearchParams search;
  search.base.cols = 10;
  search.seeds = 1;
  EXPECT_TRUE(speed_trackable(search, 0.1));
  EXPECT_FALSE(speed_trackable(search, 50.0))
      << "a target faster than any timer can react to must fail";
}

TEST(SpeedSearch, FindsABoundedMaximum) {
  SpeedSearchParams search;
  search.base.cols = 10;
  search.seeds = 1;
  search.lo = 0.1;
  search.hi = 8.0;
  search.resolution = 0.5;
  const double max_speed = find_max_trackable_speed(search);
  EXPECT_GE(max_speed, 0.1);
  EXPECT_LT(max_speed, 8.0);
  // The found maximum should itself be trackable.
  EXPECT_TRUE(speed_trackable(search, max_speed));
}

TEST(SpeedSearch, ZeroWhenEvenLowFails) {
  SpeedSearchParams search;
  search.base.cols = 10;
  search.base.comm_radius = 0.4;  // radio can't even reach neighbours
  search.seeds = 1;
  EXPECT_DOUBLE_EQ(find_max_trackable_speed(search), 0.0);
}

TEST(CrossTraffic, SendersSpreadAcrossField) {
  TankScenarioParams params;
  params.cols = 10;
  params.speed_hops_per_s = 0.3;
  TankScenario scenario(params);
  CrossTrafficConfig config;
  config.senders = 5;
  const auto senders = start_cross_traffic(scenario.system(), config);
  ASSERT_EQ(senders.size(), 5u);
  scenario.run_for(Duration::seconds(5));
  EXPECT_GT(scenario.system()
                .medium()
                .stats()
                .of(radio::MsgType::kCrossTraffic)
                .transmitted,
            50u);
}

}  // namespace
}  // namespace et::scenario
