#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "serve/track_store.hpp"

/// Concurrency contract of the sharded store: one writer applying batches
/// while reader threads query. Run under TSan in CI. Readers assert
/// *semantic* consistency — a snapshot is for the label asked, its seq
/// never regresses, history is time-ordered — since with a live writer
/// exact values are racy by design. Readers run a fixed number of sweeps
/// and the writer keeps writing until they are done, so the two sides are
/// guaranteed to overlap.
namespace et::test {
namespace {

metrics::DecodedTrack report(LabelId label, double x, double y,
                             std::int64_t at_micros) {
  metrics::DecodedTrack d;
  d.time = Time::origin() + Duration::micros(at_micros);
  d.label = label;
  d.source = NodeId{1};
  d.position = {x, y};
  d.epoch = 1;
  return d;
}

TEST(ServeConcurrency, WriterAndReadersStaySane) {
  serve::StoreConfig config;
  config.shard_count = 8;
  config.ring_capacity = 32;
  serve::ShardedTrackStore store(config);

  constexpr int kLabels = 24;
  constexpr int kReaders = 4;
  constexpr int kSweepsPerReader = 300;
  std::vector<LabelId> labels;
  for (int i = 0; i < kLabels; ++i) {
    labels.push_back(LabelId::make(NodeId{static_cast<std::uint64_t>(i)}, 1));
  }

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::vector<metrics::DecodedTrack> batch;
    // Rounds advance monotonically until the readers are done: position.x
    // and time both encode the round, so served values stay monotone.
    for (std::int64_t round = 0; !stop.load(std::memory_order_acquire);
         ++round) {
      batch.clear();
      for (int i = 0; i < kLabels; ++i) {
        batch.push_back(report(labels[static_cast<std::size_t>(i)],
                               static_cast<double>(round),
                               static_cast<double>(i), round * 1000));
      }
      store.apply_batch(batch);
    }
  });

  std::vector<std::thread> readers;
  std::vector<std::uint64_t> reads(kReaders, 0);
  std::atomic<int> failures{0};
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::vector<std::uint64_t> last_seq(kLabels, 0);
      for (int sweep = 0; sweep < kSweepsPerReader; ++sweep) {
        for (int i = 0; i < kLabels; ++i) {
          const LabelId label = labels[static_cast<std::size_t>(i)];
          if (const auto snap = store.latest(label)) {
            if (snap->label != label) failures.fetch_add(1);
            // seq is monotone: a served track never goes backwards.
            if (snap->seq < last_seq[static_cast<std::size_t>(i)]) {
              failures.fetch_add(1);
            }
            last_seq[static_cast<std::size_t>(i)] = snap->seq;
          }
          const auto points = store.history(label, Duration::seconds(1));
          for (std::size_t p = 1; p < points.size(); ++p) {
            if (points[p].time < points[p - 1].time) failures.fetch_add(1);
            if (points[p].seq <= points[p - 1].seq) failures.fetch_add(1);
          }
          reads[static_cast<std::size_t>(r)]++;
        }
        const auto region =
            store.tracks_in_region(Rect{{-1.0, -1.0}, {1e9, 1e9}});
        for (std::size_t p = 1; p < region.size(); ++p) {
          if (!(region[p - 1].label < region[p].label)) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& t : readers) t.join();
  stop.store(true, std::memory_order_release);
  writer.join();

  EXPECT_EQ(failures.load(), 0);
  for (int r = 0; r < kReaders; ++r) {
    EXPECT_EQ(reads[static_cast<std::size_t>(r)],
              static_cast<std::uint64_t>(kSweepsPerReader) * kLabels);
  }
  // Quiescent state: every label saw every round, in order.
  const std::uint64_t rounds =
      store.stats().reports_applied / static_cast<std::uint64_t>(kLabels);
  EXPECT_GT(rounds, 0u);
  for (int i = 0; i < kLabels; ++i) {
    const auto snap = store.latest(labels[static_cast<std::size_t>(i)]);
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->seq, rounds);
    EXPECT_DOUBLE_EQ(snap->position.x, static_cast<double>(rounds - 1));
  }
  EXPECT_EQ(store.stats().reports_applied,
            static_cast<std::uint64_t>(kLabels) * rounds);
}

}  // namespace
}  // namespace et::test
