#include "etl/token.hpp"

#include <gtest/gtest.h>

namespace et::etl {
namespace {

std::vector<Token> lex_ok(std::string_view source) {
  auto tokens = tokenize(source);
  EXPECT_TRUE(tokens.ok()) << (tokens.ok() ? "" : tokens.error().to_string());
  return tokens.ok() ? tokens.value() : std::vector<Token>{};
}

TEST(Lexer, EmptyInputYieldsEof) {
  const auto tokens = lex_ok("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kEndOfFile);
}

TEST(Lexer, Keywords) {
  const auto tokens =
      lex_ok("begin end context object activation invocation");
  ASSERT_EQ(tokens.size(), 7u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kBegin);
  EXPECT_EQ(tokens[1].kind, TokenKind::kEnd);
  EXPECT_EQ(tokens[2].kind, TokenKind::kContext);
  EXPECT_EQ(tokens[3].kind, TokenKind::kObject);
  EXPECT_EQ(tokens[4].kind, TokenKind::kActivation);
  EXPECT_EQ(tokens[5].kind, TokenKind::kInvocation);
}

TEST(Lexer, IdentifiersVsKeywords) {
  const auto tokens = lex_ok("tracker begins TIMER timer");
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdent);
  EXPECT_EQ(tokens[0].text, "tracker");
  EXPECT_EQ(tokens[1].kind, TokenKind::kIdent);  // 'begins' != 'begin'
  EXPECT_EQ(tokens[2].kind, TokenKind::kTimer);
  EXPECT_EQ(tokens[3].kind, TokenKind::kIdent);  // case-sensitive
}

TEST(Lexer, Numbers) {
  const auto tokens = lex_ok("42 3.5 0.125");
  EXPECT_EQ(tokens[0].kind, TokenKind::kNumber);
  EXPECT_DOUBLE_EQ(tokens[0].number, 42.0);
  EXPECT_DOUBLE_EQ(tokens[1].number, 3.5);
  EXPECT_DOUBLE_EQ(tokens[2].number, 0.125);
}

TEST(Lexer, Durations) {
  const auto tokens = lex_ok("1s 250ms 10us 0.5s");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kDuration);
  EXPECT_EQ(tokens[0].duration, Duration::seconds(1));
  EXPECT_EQ(tokens[1].duration, Duration::millis(250));
  EXPECT_EQ(tokens[2].duration, Duration::micros(10));
  EXPECT_EQ(tokens[3].duration, Duration::millis(500));
}

TEST(Lexer, DurationSuffixDoesNotEatIdentifiers) {
  // "5 seconds" must not parse "5s" out of "5 se..."; and "3sigma" is a
  // number followed by an identifier, not a duration.
  const auto tokens = lex_ok("3sigma");
  EXPECT_EQ(tokens[0].kind, TokenKind::kNumber);
  EXPECT_EQ(tokens[1].kind, TokenKind::kIdent);
  EXPECT_EQ(tokens[1].text, "sigma");
}

TEST(Lexer, Strings) {
  const auto tokens = lex_ok("\"hello world\"");
  EXPECT_EQ(tokens[0].kind, TokenKind::kString);
  EXPECT_EQ(tokens[0].text, "hello world");
}

TEST(Lexer, UnterminatedStringFails) {
  EXPECT_FALSE(tokenize("\"oops").ok());
  EXPECT_FALSE(tokenize("\"multi\nline\"").ok());
}

TEST(Lexer, OperatorsAndPunctuation) {
  const auto tokens = lex_ok("( ) { } : ; , . = == != < <= > >= + - * /");
  const TokenKind expected[] = {
      TokenKind::kLParen, TokenKind::kRParen,  TokenKind::kLBrace,
      TokenKind::kRBrace, TokenKind::kColon,   TokenKind::kSemicolon,
      TokenKind::kComma,  TokenKind::kDot,     TokenKind::kAssign,
      TokenKind::kEq,     TokenKind::kNe,      TokenKind::kLt,
      TokenKind::kLe,     TokenKind::kGt,      TokenKind::kGe,
      TokenKind::kPlus,   TokenKind::kMinus,   TokenKind::kStar,
      TokenKind::kSlash,
  };
  ASSERT_EQ(tokens.size(), std::size(expected) + 1);
  for (std::size_t i = 0; i < std::size(expected); ++i) {
    EXPECT_EQ(tokens[i].kind, expected[i]) << "token " << i;
  }
}

TEST(Lexer, Comments) {
  const auto tokens = lex_ok(
      "# a hash comment\n"
      "begin // a slash comment\n"
      "end");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kBegin);
  EXPECT_EQ(tokens[1].kind, TokenKind::kEnd);
}

TEST(Lexer, LineAndColumnTracking) {
  const auto tokens = lex_ok("begin\n  context");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[0].column, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[1].column, 3);
}

TEST(Lexer, BadCharacterReportsPosition) {
  const auto result = tokenize("begin\n  @");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("2:3"), std::string::npos)
      << result.error().message;
}

TEST(Lexer, StrayBangFails) {
  EXPECT_FALSE(tokenize("!flag").ok());
  EXPECT_TRUE(tokenize("a != b").ok());
}

TEST(Lexer, BooleanLiterals) {
  const auto tokens = lex_ok("true false and or not");
  EXPECT_EQ(tokens[0].kind, TokenKind::kTrue);
  EXPECT_EQ(tokens[1].kind, TokenKind::kFalse);
  EXPECT_EQ(tokens[2].kind, TokenKind::kAnd);
  EXPECT_EQ(tokens[3].kind, TokenKind::kOr);
  EXPECT_EQ(tokens[4].kind, TokenKind::kNot);
}

}  // namespace
}  // namespace et::etl
