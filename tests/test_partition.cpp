#include <gtest/gtest.h>

#include <vector>

#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "metrics/invariants.hpp"
#include "test_world.hpp"

/// Network-partition faults: the medium split into reachability components,
/// leadership divergence across the split, and epoch-fenced convergence
/// after the heal — all watched by the runtime invariant oracle.
namespace et::test {
namespace {

using fault::FaultKind;
using fault::FaultPlan;
using fault::PartitionSpec;
using metrics::InvariantOracle;
using metrics::InvariantViolation;

/// Nodes whose x coordinate is strictly left of `boundary`.
std::vector<NodeId> nodes_left_of(TestWorld& world, double boundary) {
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < world.system().node_count(); ++i) {
    const NodeId id{i};
    if (world.system().network().mote(id).position().x < boundary) {
      out.push_back(id);
    }
  }
  return out;
}

PartitionSpec split_at(TestWorld& world, double boundary) {
  PartitionSpec spec;
  spec.components.push_back(nodes_left_of(world, boundary));
  return spec;
}

bool has_violation(const InvariantOracle& oracle,
                   InvariantViolation::Kind kind) {
  for (const auto& violation : oracle.violations()) {
    if (violation.kind == kind) return true;
  }
  return false;
}

TEST(Partition, BlocksFramesUntilHealed) {
  TestWorld world;
  world.add_blob({3.5, 1.0}, 1.8);  // group straddles the split boundary
  world.run(3);
  ASSERT_TRUE(world.sole_leader().has_value());

  fault::FaultInjector injector(world.system());
  injector.set_partition(split_at(world, 3.5));
  EXPECT_TRUE(world.system().medium().partitioned());
  EXPECT_FALSE(world.system().medium().same_partition(NodeId{0},
                                                      NodeId{7}));
  world.run(3);
  EXPECT_GT(world.system().medium().stats().totals().pair_blocked_partition,
            0u)
      << "in-range cross-component pairs must be suppressed";

  injector.heal_partition();
  EXPECT_FALSE(world.system().medium().partitioned());
  EXPECT_TRUE(world.system().medium().same_partition(NodeId{0}, NodeId{7}));
  world.run(4);
  EXPECT_TRUE(world.sole_leader().has_value())
      << "tracking must survive a partition/heal cycle";
  EXPECT_EQ(injector.stats().partitions, 1u);
  EXPECT_EQ(injector.stats().partition_heals, 1u);
}

TEST(Partition, SplitGroupConvergesAfterHealWithFencing) {
  TestWorld world;
  world.add_blob({3.5, 1.0}, 1.8);
  InvariantOracle oracle(world.system());
  world.run(3);
  const auto original = world.sole_leader();
  ASSERT_TRUE(original.has_value());
  const LabelId label = world.groups(*original).current_label(0);

  fault::FaultInjector injector(world.system());
  injector.set_partition(split_at(world, 3.5));
  world.run(8);  // the leaderless side must take over under its own epoch
  EXPECT_GE(world.leaders().size(), 2u)
      << "both components should track the (still sensed) blob";

  injector.heal_partition();
  world.run(10);
  const auto survivor = world.sole_leader();
  ASSERT_TRUE(survivor.has_value())
      << "exactly one leader must remain after the heal converges";
  EXPECT_EQ(world.groups(*survivor).current_label(0), label)
      << "the label must survive the partition";
  EXPECT_TRUE(oracle.ok()) << oracle.report();
  EXPECT_GT(oracle.checks_run(), 0u);
}

TEST(Partition, BurstPartitionComposesWithBurstLoss) {
  // Chaos composition smoke: square-wave partitions over a Gilbert–Elliott
  // burst-loss channel, with the oracle watching the whole run.
  TestWorld::Options options;
  options.burst_loss.enabled = true;
  options.burst_loss.mean_good = Duration::seconds(2);
  options.burst_loss.mean_bad = Duration::millis(400);
  options.burst_loss.loss_good = 0.02;
  options.burst_loss.loss_bad = 0.6;
  TestWorld world(options);
  world.add_blob({3.5, 1.0}, 1.8);
  InvariantOracle oracle(world.system());

  fault::FaultInjector injector(world.system());
  FaultPlan plan;
  plan.burst_partition(Time::seconds(2), split_at(world, 3.5),
                       Duration::seconds(1), Duration::seconds(1), 3);
  injector.schedule(plan);
  world.run(12);

  EXPECT_EQ(injector.stats().partitions, 3u);
  EXPECT_EQ(injector.stats().partition_heals, 3u);
  EXPECT_FALSE(world.system().medium().partitioned());
  EXPECT_TRUE(oracle.ok()) << oracle.report();
}

TEST(Partition, FaultPlanRecordsPartitionTimeline) {
  TestWorld world;
  fault::FaultInjector injector(world.system());

  int partition_records = 0;
  int heal_records = 0;
  injector.add_listener([&](const fault::FaultRecord& record) {
    if (record.kind == FaultKind::kPartitionStart) {
      ++partition_records;
      EXPECT_FALSE(record.node.is_valid())
          << "partitions are network-wide, not per-node";
    }
    if (record.kind == FaultKind::kPartitionHeal) ++heal_records;
  });

  FaultPlan plan;
  plan.partition(Time::seconds(1), split_at(world, 3.5),
                 Duration::seconds(2));
  injector.schedule(plan);

  world.run(0.5);
  EXPECT_FALSE(world.system().medium().partitioned());
  world.run(1.0);
  EXPECT_TRUE(world.system().medium().partitioned());
  world.run(2.0);
  EXPECT_FALSE(world.system().medium().partitioned());

  EXPECT_EQ(partition_records, 1);
  EXPECT_EQ(heal_records, 1);
  EXPECT_EQ(injector.stats().partitions, 1u);
  EXPECT_EQ(injector.stats().partition_heals, 1u);

  // Healing an already-whole medium is a no-op, not a second record.
  injector.heal_partition();
  EXPECT_EQ(injector.stats().partition_heals, 1u);
}

}  // namespace
}  // namespace et::test
