#include "metrics/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace et::metrics {
namespace {

TEST(Trace, TrackCsvFormat) {
  std::vector<TrackPoint> points;
  points.push_back(TrackPoint{Time::seconds(1.5),
                              LabelId::make(NodeId{2}, 3),
                              {1.25, 0.5},
                              {1.0, 0.5},
                              0.25});
  const std::string csv = track_csv(points);
  std::istringstream in(csv);
  std::string header;
  std::string row;
  std::getline(in, header);
  std::getline(in, row);
  EXPECT_EQ(header,
            "time_s,label,reported_x,reported_y,actual_x,actual_y,error");
  EXPECT_EQ(row, "1.500," +
                     std::to_string(LabelId::make(NodeId{2}, 3).value()) +
                     ",1.2500,0.5000,1.0000,0.5000,0.2500");
}

TEST(Trace, EventsCsvFormat) {
  std::vector<core::GroupEvent> events(1);
  events[0].kind = core::GroupEvent::Kind::kTakeover;
  events[0].time = Time::seconds(2);
  events[0].node = NodeId{4};
  events[0].label = LabelId::make(NodeId{1}, 0);
  events[0].peer = NodeId{9};
  events[0].weight = 7;
  const std::string csv = events_csv(events);
  EXPECT_NE(csv.find("takeover"), std::string::npos);
  EXPECT_NE(csv.find("2.000,4,"), std::string::npos);
  EXPECT_EQ(csv.find("\n"), csv.find("time_s,node,kind,label,peer,weight") +
                                std::string("time_s,node,kind,label,peer,"
                                            "weight")
                                    .size());
}

TEST(Trace, SeriesCsv) {
  const std::string csv =
      series_csv("hb_period", {0.25, 0.5},
                 {{"sr1", {0.7, 0.5}}, {"sr2", {1.2, 0.9}}});
  std::istringstream in(csv);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "hb_period,sr1,sr2");
  std::getline(in, line);
  EXPECT_EQ(line, "0.25,0.7,1.2");
  std::getline(in, line);
  EXPECT_EQ(line, "0.5,0.5,0.9");
}

TEST(Trace, EmptyInputsYieldHeaderOnly) {
  EXPECT_EQ(track_csv({}).find('\n'), track_csv({}).size() - 1);
  EXPECT_EQ(series_csv("x", {}, {}), "x\n");
}

TEST(Trace, WriteFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "et_trace_test.csv";
  ASSERT_TRUE(write_file(path, "a,b\n1,2\n"));
  std::ifstream in(path);
  std::stringstream read;
  read << in.rdbuf();
  EXPECT_EQ(read.str(), "a,b\n1,2\n");
  std::remove(path.c_str());
}

TEST(Trace, WriteFileFailsGracefully) {
  EXPECT_FALSE(write_file("/nonexistent-dir/x/y.csv", "data"));
}

}  // namespace
}  // namespace et::metrics
