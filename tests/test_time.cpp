#include "util/time.hpp"

#include <gtest/gtest.h>

namespace et {
namespace {

TEST(Duration, ConstructionAndConversion) {
  EXPECT_EQ(Duration::micros(1500).to_micros(), 1500);
  EXPECT_EQ(Duration::millis(3).to_micros(), 3000);
  EXPECT_EQ(Duration::seconds(2.5).to_micros(), 2'500'000);
  EXPECT_DOUBLE_EQ(Duration::seconds(0.25).to_seconds(), 0.25);
  EXPECT_DOUBLE_EQ(Duration::millis(250).to_millis(), 250.0);
}

TEST(Duration, Arithmetic) {
  const Duration a = Duration::millis(300);
  const Duration b = Duration::millis(200);
  EXPECT_EQ((a + b).to_micros(), 500'000);
  EXPECT_EQ((a - b).to_micros(), 100'000);
  EXPECT_EQ((a * 2.0).to_micros(), 600'000);
  EXPECT_EQ((2.0 * a).to_micros(), 600'000);
  EXPECT_EQ((a / 2.0).to_micros(), 150'000);
  EXPECT_DOUBLE_EQ(a / b, 1.5);
  EXPECT_EQ((-a).to_micros(), -300'000);
}

TEST(Duration, CompoundAssignment) {
  Duration d = Duration::millis(100);
  d += Duration::millis(50);
  EXPECT_EQ(d.to_micros(), 150'000);
  d -= Duration::millis(150);
  EXPECT_TRUE(d.is_zero());
}

TEST(Duration, Predicates) {
  EXPECT_TRUE(Duration::zero().is_zero());
  EXPECT_TRUE(Duration::micros(-1).is_negative());
  EXPECT_TRUE(Duration::micros(1).is_positive());
  EXPECT_FALSE(Duration::micros(1).is_negative());
}

TEST(Duration, Ordering) {
  EXPECT_LT(Duration::millis(1), Duration::millis(2));
  EXPECT_GE(Duration::seconds(1), Duration::millis(1000));
  EXPECT_EQ(Duration::seconds(1), Duration::micros(1'000'000));
}

TEST(Duration, ToString) {
  EXPECT_EQ(Duration::seconds(1.5).to_string(), "1.500s");
  EXPECT_EQ(Duration::millis(250).to_string(), "250.000ms");
  EXPECT_EQ(Duration::micros(42).to_string(), "42us");
}

TEST(Time, PointArithmetic) {
  const Time t = Time::seconds(10);
  EXPECT_EQ((t + Duration::seconds(5)).to_seconds(), 15.0);
  EXPECT_EQ((t - Duration::seconds(5)).to_seconds(), 5.0);
  EXPECT_EQ((Time::seconds(12) - t).to_seconds(), 2.0);
  Time u = t;
  u += Duration::seconds(1);
  EXPECT_EQ(u.to_seconds(), 11.0);
}

TEST(Time, Ordering) {
  EXPECT_LT(Time::origin(), Time::micros(1));
  EXPECT_LT(Time::seconds(1), Time::max());
}

}  // namespace
}  // namespace et
