#include "net/geo_routing.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "node/network.hpp"

namespace et::net {
namespace {

class DataPayload final : public radio::Payload {
 public:
  explicit DataPayload(int value) : value_(value) {}
  std::size_t size_bytes() const override { return 8; }
  int value() const { return value_; }

 private:
  int value_;
};

/// A grid of motes, each with a routing service, short radio range so
/// multi-hop relaying is exercised.
struct RoutingTest : public ::testing::Test {
  RoutingTest() { build(); }

  void build(double loss = 0.0, double comm_radius = 1.5,
             RoutingConfig routing_config = {}) {
    sim.emplace(11);
    env.emplace(sim->make_rng("env"));
    field.emplace(env::Field::grid(5, 8));
    radio::RadioConfig config;
    config.loss_probability = loss;
    config.model_collisions = false;
    config.comm_radius = comm_radius;
    medium.emplace(*sim, config);
    network.emplace(*sim, *medium, *env, *field);
    routers.clear();
    routers.reserve(field->size());
    for (std::size_t i = 0; i < field->size(); ++i) {
      routers.push_back(std::make_unique<GeoRouting>(
          network->mote(NodeId{i}), routing_config));
    }
  }

  GeoRouting& router(std::size_t i) { return *routers[i]; }

  std::optional<sim::Simulator> sim;
  std::optional<env::Environment> env;
  std::optional<env::Field> field;
  std::optional<radio::Medium> medium;
  std::optional<node::MoteNetwork> network;
  std::vector<std::unique_ptr<GeoRouting>> routers;
};

TEST_F(RoutingTest, DeliversAcrossMultipleHops) {
  // Node 0 sits at (0,0); route to the far corner (7,4) = node 39.
  int received = -1;
  NodeId origin_seen;
  router(39).on_delivery(radio::MsgType::kUser,
                         [&](const RouteEnvelope& envelope) {
                           received = static_cast<const DataPayload*>(
                                          envelope.inner.get())
                                          ->value();
                           origin_seen = envelope.origin;
                         });
  router(0).send({7.0, 4.0}, radio::MsgType::kUser,
                 std::make_shared<DataPayload>(123));
  sim->run_for(Duration::seconds(2));
  EXPECT_EQ(received, 123);
  EXPECT_EQ(origin_seen, NodeId{0});
  EXPECT_EQ(router(0).stats().originated, 1u);
  EXPECT_EQ(router(39).stats().delivered, 1u);
}

TEST_F(RoutingTest, ConsumesAtNearestNodeWithoutFinalDst) {
  // Destination coordinate between nodes: the closest node consumes.
  int consumer = -1;
  for (std::size_t i = 0; i < routers.size(); ++i) {
    router(i).on_delivery(radio::MsgType::kUser,
                          [&, i](const RouteEnvelope&) {
                            consumer = static_cast<int>(i);
                          });
  }
  router(0).send({5.2, 2.1}, radio::MsgType::kUser,
                 std::make_shared<DataPayload>(1));
  sim->run_for(Duration::seconds(2));
  // Nearest node to (5.2, 2.1) is (5,2) = row 2 * 8 + 5 = 21.
  EXPECT_EQ(consumer, 21);
}

TEST_F(RoutingTest, FinalDstOnlyConsumedByThatNode) {
  int wrong = 0;
  int right = 0;
  router(20).on_delivery(radio::MsgType::kUser,
                         [&](const RouteEnvelope&) { ++wrong; });
  router(21).on_delivery(radio::MsgType::kUser,
                         [&](const RouteEnvelope&) { ++right; });
  router(0).send({5.0, 2.0}, radio::MsgType::kUser,
                 std::make_shared<DataPayload>(1), NodeId{21});
  sim->run_for(Duration::seconds(2));
  EXPECT_EQ(right, 1);
  EXPECT_EQ(wrong, 0);
}

TEST_F(RoutingTest, SelfDeliveryWhenOriginIsNearest) {
  int received = 0;
  router(0).on_delivery(radio::MsgType::kUser,
                        [&](const RouteEnvelope&) { ++received; });
  router(0).send({0.1, 0.1}, radio::MsgType::kUser,
                 std::make_shared<DataPayload>(1));
  sim->run_for(Duration::seconds(1));
  EXPECT_EQ(received, 1);
  EXPECT_EQ(medium->stats().totals().transmitted, 0u)
      << "local consumption needs no radio";
}

TEST_F(RoutingTest, ArqRecoversFromLoss) {
  build(/*loss=*/0.3, /*comm_radius=*/1.5);
  int received = 0;
  router(39).on_delivery(radio::MsgType::kUser,
                         [&](const RouteEnvelope&) { ++received; });
  for (int i = 0; i < 10; ++i) {
    router(0).send({7.0, 4.0}, radio::MsgType::kUser,
                   std::make_shared<DataPayload>(i));
    sim->run_for(Duration::seconds(2));
  }
  // 30% per-hop loss over ~11 hops would pass ~2% of frames without ARQ;
  // with 3 attempts per hop most envelopes arrive.
  EXPECT_GE(received, 6);
  EXPECT_GT(router(0).stats().retries + router(8).stats().retries +
                router(9).stats().retries,
            0u);
}

TEST_F(RoutingTest, TtlDropsOverlongRoutes) {
  RoutingConfig config;
  config.max_hops = 3;  // the corner-to-corner path needs ~7 hops
  build(0.0, 1.5, config);
  int received = 0;
  router(39).on_delivery(radio::MsgType::kUser,
                         [&](const RouteEnvelope&) { ++received; });
  router(0).send({7.0, 4.0}, radio::MsgType::kUser,
                 std::make_shared<DataPayload>(1));
  sim->run_for(Duration::seconds(2));
  EXPECT_EQ(received, 0);
  std::uint64_t ttl_drops = 0;
  for (const auto& r : routers) ttl_drops += r->stats().dropped_ttl;
  EXPECT_EQ(ttl_drops, 1u);
}

TEST_F(RoutingTest, DuplicateSuppression) {
  int received = 0;
  router(2).on_delivery(radio::MsgType::kUser,
                        [&](const RouteEnvelope&) { ++received; });
  router(0).send({2.0, 0.0}, radio::MsgType::kUser,
                 std::make_shared<DataPayload>(7));
  sim->run_for(Duration::seconds(2));
  EXPECT_EQ(received, 1);
  EXPECT_EQ(router(1).stats().duplicates +
                router(2).stats().duplicates,
            0u)
      << "no duplicates on a lossless channel";
}

TEST_F(RoutingTest, StatsAccounting) {
  router(39).on_delivery(radio::MsgType::kUser,
                         [](const RouteEnvelope&) {});
  router(0).send({7.0, 4.0}, radio::MsgType::kUser,
                 std::make_shared<DataPayload>(1));
  sim->run_for(Duration::seconds(2));
  // Every intermediate hop forwarded exactly once on a lossless channel.
  std::uint64_t forwarded = 0;
  for (const auto& r : routers) forwarded += r->stats().forwarded;
  EXPECT_GE(forwarded, 7u);  // at least the Chebyshev-path length
  EXPECT_EQ(router(39).stats().delivered, 1u);
}

}  // namespace
}  // namespace et::net
