#include "sim/simulator.hpp"

#include <gtest/gtest.h>

/// The no-progress/livelock watchdog: event-count and wall-clock budgets
/// per simulated second. A tripped watchdog freezes event firing but still
/// advances the clock, so scenario drivers (run_for loops) wind down
/// instead of spinning on a wedged queue.
namespace et::sim {
namespace {

/// Schedules an event every `period` that re-schedules itself forever.
void self_reschedule(Simulator& sim, Duration period, std::uint64_t* fired) {
  sim.schedule(period, [&sim, period, fired] {
    ++*fired;
    self_reschedule(sim, period, fired);
  });
}

TEST(SimWatchdog, EventBudgetTripsOnStorm) {
  Simulator sim(1);
  WatchdogConfig config;
  config.enabled = true;
  config.max_events_per_sim_second = 100;
  sim.set_watchdog(config);

  std::uint64_t fired = 0;
  self_reschedule(sim, Duration::millis(1), &fired);  // 1000 events/sim-s
  sim.run_for(Duration::seconds(2));

  const WatchdogReport& report = sim.watchdog_report();
  ASSERT_TRUE(report.tripped);
  EXPECT_NE(report.reason.find("event"), std::string::npos);
  EXPECT_GE(report.events_in_window, 100u);
  EXPECT_LT(report.at, Time::seconds(1)) << "the storm starts immediately";
  EXPECT_LE(fired, 105u) << "firing must stop at the budget, not run on";
  EXPECT_EQ(sim.now(), Time::seconds(2))
      << "a tripped run still advances the clock to the deadline";
}

TEST(SimWatchdog, TrippedSimulatorStaysFrozen) {
  Simulator sim(1);
  WatchdogConfig config;
  config.enabled = true;
  config.max_events_per_sim_second = 50;
  sim.set_watchdog(config);

  std::uint64_t fired = 0;
  self_reschedule(sim, Duration::millis(1), &fired);
  sim.run_for(Duration::seconds(1));
  ASSERT_TRUE(sim.watchdog_report().tripped);
  const std::uint64_t fired_at_trip = fired;

  sim.run_for(Duration::seconds(1));
  EXPECT_EQ(fired, fired_at_trip) << "no events fire after the trip";
  EXPECT_EQ(sim.now(), Time::seconds(2));
}

TEST(SimWatchdog, HealthyRunDoesNotTrip) {
  Simulator sim(1);
  WatchdogConfig config;
  config.enabled = true;
  config.max_events_per_sim_second = 100;
  sim.set_watchdog(config);

  std::uint64_t fired = 0;
  self_reschedule(sim, Duration::millis(50), &fired);  // 20 events/sim-s
  sim.run_for(Duration::seconds(3));

  const WatchdogReport& report = sim.watchdog_report();
  EXPECT_FALSE(report.tripped);
  EXPECT_EQ(fired, 60u);
  EXPECT_GE(report.peak_events_per_sim_second, 20u);
  EXPECT_LE(report.peak_events_per_sim_second, 21u);
}

TEST(SimWatchdog, DisabledWatchdogNeverTrips) {
  Simulator sim(1);
  // Budgets set but enabled false: the run must be unaffected.
  WatchdogConfig config;
  config.max_events_per_sim_second = 1;
  sim.set_watchdog(config);

  std::uint64_t fired = 0;
  self_reschedule(sim, Duration::millis(1), &fired);
  sim.run_for(Duration::millis(100));
  EXPECT_FALSE(sim.watchdog_report().tripped);
  EXPECT_EQ(fired, 100u);
}

TEST(SimWatchdog, ZeroEventBudgetMeansUnbounded) {
  Simulator sim(1);
  WatchdogConfig config;
  config.enabled = true;  // armed, but only for telemetry
  sim.set_watchdog(config);

  std::uint64_t fired = 0;
  self_reschedule(sim, Duration::millis(1), &fired);
  sim.run_for(Duration::seconds(2));
  EXPECT_FALSE(sim.watchdog_report().tripped);
  EXPECT_EQ(fired, 2000u);
  EXPECT_GE(sim.watchdog_report().peak_events_per_sim_second, 999u);
}

TEST(SimWatchdog, ReArmingClearsTheReport) {
  Simulator sim(1);
  WatchdogConfig config;
  config.enabled = true;
  config.max_events_per_sim_second = 10;
  sim.set_watchdog(config);
  std::uint64_t fired = 0;
  self_reschedule(sim, Duration::millis(1), &fired);
  sim.run_for(Duration::seconds(1));
  ASSERT_TRUE(sim.watchdog_report().tripped);

  sim.set_watchdog(config);
  EXPECT_FALSE(sim.watchdog_report().tripped);
  EXPECT_TRUE(sim.watchdog_report().reason.empty());
}

}  // namespace
}  // namespace et::sim
