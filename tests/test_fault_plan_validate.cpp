#include "fault/fault_plan.hpp"

#include <gtest/gtest.h>

#include "fault/fault_injector.hpp"
#include "test_world.hpp"

/// Fault-plan input validation: every malformed input is rejected with a
/// clear, specific error — at construction where possible, at
/// schedule-time range checks otherwise — and a rejected plan schedules
/// nothing.
namespace et::test {
namespace {

using fault::FaultInjector;
using fault::FaultKind;
using fault::FaultPlan;
using fault::PartitionSpec;

bool mentions(const std::vector<std::string>& problems,
              const std::string& needle) {
  for (const std::string& problem : problems) {
    if (problem.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(FaultPlanValidate, CleanPlanHasNoProblems) {
  FaultPlan plan;
  plan.crash_for(Time::seconds(1), NodeId{3}, Duration::seconds(2))
      .radio_blackout(Time::seconds(2), NodeId{4}, Duration::seconds(1))
      .sensor_dropout(Time::seconds(3), NodeId{5}, Duration::millis(300));
  PartitionSpec spec;
  spec.components.push_back({NodeId{1}, NodeId{2}});
  plan.partition(Time::seconds(4), spec, Duration::seconds(1));
  EXPECT_TRUE(plan.construction_problems().empty());
  EXPECT_TRUE(plan.validate(24).empty());
  EXPECT_EQ(plan.events().size(), 8u);
}

TEST(FaultPlanValidate, NegativeTimeRejected) {
  FaultPlan plan;
  plan.crash(Time::seconds(-1), NodeId{2});
  EXPECT_TRUE(plan.events().empty()) << "the bogus event must not land";
  ASSERT_FALSE(plan.construction_problems().empty());
  EXPECT_TRUE(mentions(plan.construction_problems(), "must not be negative"));
}

TEST(FaultPlanValidate, InvertedAndZeroWindowsRejected) {
  FaultPlan plan;
  plan.radio_blackout(Time::seconds(1), NodeId{2}, Duration::seconds(-2));
  plan.sensor_dropout(Time::seconds(1), NodeId{2}, Duration::zero());
  plan.crash_for(Time::seconds(1), NodeId{2}, Duration::zero());
  PartitionSpec spec;
  spec.components.push_back({NodeId{1}});
  plan.partition(Time::seconds(1), spec, Duration::seconds(-1));
  plan.burst_partition(Time::seconds(1), spec, Duration::zero(),
                       Duration::seconds(1), 2);
  plan.burst_partition(Time::seconds(1), spec, Duration::seconds(1),
                       Duration::seconds(1), 0);
  EXPECT_TRUE(plan.events().empty());
  EXPECT_EQ(plan.construction_problems().size(), 6u);
  EXPECT_TRUE(mentions(plan.construction_problems(), "window must be"));
  EXPECT_TRUE(mentions(plan.construction_problems(), "downtime must be"));
  EXPECT_TRUE(mentions(plan.construction_problems(), "cycles >= 1"));
}

TEST(FaultPlanValidate, OutOfRangeVictimCaughtAtValidate) {
  FaultPlan plan;
  plan.crash(Time::seconds(1), NodeId{99});
  EXPECT_TRUE(plan.construction_problems().empty())
      << "range depends on the deployment, not the plan";
  const std::vector<std::string> problems = plan.validate(24);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems.front().find("out of range"), std::string::npos);
  EXPECT_TRUE(plan.validate(128).empty());
}

TEST(FaultPlanValidate, PartitionNamingMoteTwiceRejected) {
  FaultPlan plan;
  PartitionSpec spec;
  spec.components.push_back({NodeId{1}, NodeId{2}});
  spec.components.push_back({NodeId{2}, NodeId{3}});
  plan.partition_start(Time::seconds(1), spec);
  ASSERT_FALSE(plan.construction_problems().empty());
  EXPECT_TRUE(
      mentions(plan.construction_problems(), "more than one component"));
}

TEST(FaultPlanValidate, EmptyPartitionComponentRejected) {
  FaultPlan plan;
  PartitionSpec spec;
  spec.components.push_back({});
  plan.partition_start(Time::seconds(1), spec);
  EXPECT_TRUE(mentions(plan.construction_problems(), "is empty"));
}

TEST(FaultPlanValidate, PartitionMemberOutOfRangeCaughtAtValidate) {
  FaultPlan plan;
  PartitionSpec spec;
  spec.components.push_back({NodeId{500}});
  plan.partition(Time::seconds(1), spec, Duration::seconds(1));
  EXPECT_TRUE(plan.construction_problems().empty());
  EXPECT_TRUE(mentions(plan.validate(24), "out of range"));
}

TEST(FaultPlanValidate, RawPartitionStartWithoutSpecRejected) {
  FaultPlan plan;
  plan.add(Time::seconds(1), NodeId{}, FaultKind::kPartitionStart);
  EXPECT_TRUE(plan.events().empty());
  EXPECT_TRUE(mentions(plan.construction_problems(), "partition_start"));
}

TEST(FaultPlanValidate, InjectorRefusesInvalidPlanAndSchedulesNothing) {
  TestWorld world;
  FaultInjector injector(world.system());
  FaultPlan plan;
  plan.crash(Time::seconds(1), NodeId{0});     // fine
  plan.crash(Time::seconds(2), NodeId{999});   // out of range
  const Expected<std::size_t> result = injector.schedule(plan);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "invalid_fault_plan");
  EXPECT_NE(result.error().message.find("out of range"), std::string::npos);
  world.run(3);
  EXPECT_EQ(injector.stats().crashes, 0u)
      << "a rejected plan must schedule none of its events, not just the "
         "bad ones";
}

TEST(FaultPlanValidate, InjectorAcceptsValidPlan) {
  TestWorld world;
  FaultInjector injector(world.system());
  FaultPlan plan;
  plan.crash_for(Time::seconds(0.1), NodeId{1}, Duration::millis(200));
  const Expected<std::size_t> result = injector.schedule(plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 2u);
  world.run(1);
  EXPECT_EQ(injector.stats().crashes, 1u);
  EXPECT_EQ(injector.stats().reboots, 1u);
}

TEST(FaultPlanValidate, ZeroPeriodHarassmentRejected) {
  TestWorld world;
  FaultInjector injector(world.system());
  const Expected<std::size_t> zero_period =
      injector.harass_leaders(0, Duration::zero(), Duration::millis(100));
  ASSERT_FALSE(zero_period.ok());
  EXPECT_EQ(zero_period.error().code, "invalid_harassment");
  const Expected<std::size_t> zero_downtime =
      injector.harass_leaders(0, Duration::seconds(1), Duration::zero());
  EXPECT_FALSE(zero_downtime.ok());
}

TEST(FaultPlanValidate, JsonRoundTripIsExact) {
  FaultPlan plan;
  plan.crash_for(Time::micros(1234567), NodeId{3}, Duration::millis(500));
  plan.radio_blackout(Time::seconds(2), NodeId{7}, Duration::millis(250));
  PartitionSpec spec;
  spec.components.push_back({NodeId{0}, NodeId{4}});
  plan.burst_partition(Time::seconds(3), spec, Duration::millis(400),
                       Duration::millis(600), 2);

  const util::Json doc = plan.to_json();
  const Expected<FaultPlan> round = FaultPlan::from_json(doc);
  ASSERT_TRUE(round.ok());
  const FaultPlan& back = round.value();
  ASSERT_EQ(back.events().size(), plan.events().size());
  for (std::size_t i = 0; i < plan.events().size(); ++i) {
    EXPECT_EQ(back.events()[i].at, plan.events()[i].at);
    EXPECT_EQ(back.events()[i].kind, plan.events()[i].kind);
    EXPECT_EQ(back.events()[i].node.value(), plan.events()[i].node.value());
  }
  // Serialize -> parse -> serialize is byte-stable (replay artifacts diff
  // cleanly).
  EXPECT_EQ(back.to_json().dump(2), doc.dump(2));
}

TEST(FaultPlanValidate, FromJsonRejectsMalformedDocuments) {
  const auto reject = [](const char* text) {
    const Expected<util::Json> doc = util::parse_json(text);
    ASSERT_TRUE(doc.ok()) << text;
    const Expected<FaultPlan> plan = FaultPlan::from_json(doc.value());
    EXPECT_FALSE(plan.ok()) << text;
    if (!plan.ok()) EXPECT_EQ(plan.error().code, "fault_plan_json");
  };
  reject("[]");
  reject("{}");
  reject("{\"events\": [{\"kind\": \"crash\", \"node\": 1}]}");
  reject("{\"events\": [{\"at_us\": 1.5, \"kind\": \"crash\", \"node\": "
         "1}]}");
  reject("{\"events\": [{\"at_us\": 1, \"kind\": \"meteor\", \"node\": "
         "1}]}");
  reject("{\"events\": [{\"at_us\": 1, \"kind\": \"crash\", \"node\": "
         "-2}]}");
  reject("{\"events\": [{\"at_us\": 1, \"kind\": \"partition-start\", "
         "\"partition\": 0}]}");
}

}  // namespace
}  // namespace et::test
