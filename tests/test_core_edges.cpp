#include <gtest/gtest.h>

#include "core/transport.hpp"
#include "etl/compiler.hpp"
#include "test_world.hpp"

/// Edge-case tests of core-protocol paths not covered by the behavioural
/// suites: yield tie-breaks, heartbeat estimates, immediate timers,
/// MTP forward limits, and language-declared deactivation end-to-end.
namespace et::test {
namespace {

using core::GroupEvent;

TEST(CoreEdges, ImmediateTimerFiresOnEveryHandover) {
  int slow_calls = 0;
  int immediate_calls = 0;
  TestWorld::Options options;
  options.cols = 12;
  options.mutate_spec = [&](core::ContextTypeSpec& spec) {
    core::ObjectSpec probe;
    probe.name = "probe";

    core::MethodSpec slow;
    slow.name = "slow";
    slow.invocation.kind = core::InvocationSpec::Kind::kTimer;
    slow.invocation.period = Duration::seconds(30);  // >> leader tenure
    slow.body = [&](core::TrackingContext&) { ++slow_calls; };
    probe.methods.push_back(std::move(slow));

    core::MethodSpec eager;
    eager.name = "eager";
    eager.invocation.kind = core::InvocationSpec::Kind::kTimer;
    eager.invocation.period = Duration::seconds(30);
    eager.invocation.immediate = true;
    eager.body = [&](core::TrackingContext&) { ++immediate_calls; };
    probe.methods.push_back(std::move(eager));
    spec.objects.push_back(std::move(probe));
  };
  TestWorld world(options);
  world.add_moving_blob({-0.5, 1.0}, {12.5, 1.0}, 0.4);
  world.run(35);

  EXPECT_EQ(slow_calls, 0)
      << "period exceeds every tenure: phase restarts eat all firings";
  EXPECT_GE(immediate_calls, 4)
      << "immediate timers fire once per leadership tenure";
}

TEST(CoreEdges, YieldTieBreakIsDeterministic) {
  // Force two equal-weight leaders of the same label by crashing a leader
  // and letting two members take over near-simultaneously under a lossy
  // start... Simpler deterministic route: same label via takeover race is
  // hard to stage; instead verify the rule directly through event counts
  // across seeds — after any yield storm exactly one leader remains.
  // At 15% loss, spurious receive-timer takeovers still happen every now
  // and then (P(two consecutive heartbeats lost) ~ 2% per member-window);
  // the id-based yield must resolve each within a couple of heartbeat
  // exchanges, so duplicates are a transient minority condition.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    TestWorld::Options options;
    options.loss_probability = 0.15;
    options.model_collisions = true;
    options.sensing_radius = 1.8;  // identity radii must match event size
    options.seed = seed;
    TestWorld world(options);
    world.add_blob({3.5, 1.0}, 1.8);
    world.run(4);
    int duplicate_samples = 0;
    const int samples = 32;
    for (int s = 0; s < samples; ++s) {
      world.run(0.5);
      if (world.leaders().size() > 1) ++duplicate_samples;
    }
    EXPECT_LT(duplicate_samples, samples / 4)
        << "seed " << seed << ": duplicates must be transient, "
        << duplicate_samples << "/" << samples << " samples had two leaders";
  }
}

TEST(CoreEdges, HeartbeatEstimateTracksEntity) {
  TestWorld world;
  world.add_blob({4.5, 1.0});
  world.run(5);
  const auto leader = world.sole_leader();
  ASSERT_TRUE(leader.has_value());
  const Vec2 estimate = world.groups(*leader).entity_estimate(0);
  EXPECT_NEAR(estimate.x, 4.5, 1.0);
  EXPECT_NEAR(estimate.y, 1.0, 1.0);
}

TEST(CoreEdges, EstimateFallsBackToLeaderPosition) {
  // Critical mass 99 is never met: the position aggregate stays null and
  // the estimate must fall back to the leader's own location.
  TestWorld::Options options;
  options.critical_mass = 99;
  TestWorld world(options);
  world.add_blob({4.5, 1.0});
  world.run(5);
  const auto leader = world.sole_leader();
  ASSERT_TRUE(leader.has_value());
  const Vec2 estimate = world.groups(*leader).entity_estimate(0);
  EXPECT_EQ(estimate, world.field().position(*leader));
}

TEST(CoreEdges, TransportForwardLimitDropsCircularChains) {
  TestWorld::Options options;
  options.enable_directory = true;
  options.enable_transport = true;
  TestWorld world(options);
  world.add_blob({3.5, 1.0});
  world.run(5);
  const auto leader = world.sole_leader();
  ASSERT_TRUE(leader.has_value());
  const LabelId label = world.groups(*leader).current_label(0);

  // Poison a non-leader node's table: A thinks B leads, B thinks A leads.
  const NodeId a{world.system().node_count() - 1};
  const NodeId b{world.system().node_count() - 2};
  auto* ta = world.system().stack(a).transport();
  auto* tb = world.system().stack(b).transport();
  ta->on_leader_observed(0, label, b, world.field().position(b));
  tb->on_leader_observed(0, label, a, world.field().position(a));

  ta->invoke(0, label, PortId{0}, {});
  world.run(5);
  std::uint64_t limit_drops = 0;
  for (std::size_t i = 0; i < world.system().node_count(); ++i) {
    limit_drops += world.system()
                       .stack(NodeId{i})
                       .transport()
                       ->stats()
                       .dropped_forward_limit;
  }
  // The ping-pong forwarding chain must terminate at the hop limit...
  // unless a snooped heartbeat corrected one table first (also fine); in
  // either case the system must not livelock, which reaching this line
  // within bounded simulated work demonstrates.
  EXPECT_LE(limit_drops, 1u);
}

TEST(CoreEdges, DslDeactivationKeepsGroupAliveEndToEnd) {
  // A context whose deactivation requires the reading to drop below a
  // lower threshold (hysteresis): removing the target does not
  // immediately disband the group if readings linger... with binary-disc
  // sensing the reading vanishes with the target, so exercise the inverse:
  // activation threshold high, deactivation threshold low, target with a
  // weak-but-nonzero emission keeps the group alive.
  sim::Simulator sim(21);
  env::Environment environment(sim.make_rng("env"));
  const env::Field field = env::Field::grid(3, 8);
  core::SystemConfig config;
  config.radio.loss_probability = 0.0;
  config.radio.model_collisions = false;
  core::EnviroTrackSystem system(sim, environment, field, config);

  etl::CompileOptions copts;
  auto specs = etl::compile_source(R"(
    begin context hot
      activation: magnetic > 8;
      deactivation: magnetic < 1;
      level : max(magnetic) confidence=1, freshness=1s;
    end context
  )", system.senses(), system.aggregations(), copts);
  ASSERT_TRUE(specs.ok()) << specs.error().to_string();
  system.add_context_type(std::move(specs.value()[0]));
  system.start();

  // Strong source: readings ~10 at distance 1. Activates.
  env::Target strong;
  strong.type = "x";
  strong.trajectory =
      std::make_unique<env::StationaryTrajectory>(Vec2{3.0, 1.0});
  strong.radius = env::RadiusProfile::constant(0.1);
  strong.emissions["magnetic"] = 10.0;
  const TargetId id = environment.add_target(std::move(strong));
  sim.run_for(Duration::seconds(4));

  auto leaders = [&] {
    std::size_t n = 0;
    for (std::size_t i = 0; i < system.node_count(); ++i) {
      if (system.stack(NodeId{i}).groups().role(0) == core::Role::kLeader) {
        ++n;
      }
    }
    return n;
  };
  ASSERT_GE(leaders(), 1u);

  // Replace with a weak source (reading ~2): below activation, above
  // deactivation — the group must persist (hysteresis).
  environment.remove_target_at(id, sim.now());
  env::Target weak;
  weak.type = "x";
  weak.trajectory =
      std::make_unique<env::StationaryTrajectory>(Vec2{3.0, 1.0});
  weak.radius = env::RadiusProfile::constant(0.1);
  weak.emissions["magnetic"] = 2.0;
  environment.add_target(std::move(weak));
  sim.run_for(Duration::seconds(4));
  EXPECT_GE(leaders(), 1u) << "hysteresis: group persists between thresholds";
}

}  // namespace
}  // namespace et::test
