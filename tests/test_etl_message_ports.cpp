#include <gtest/gtest.h>

#include "core/transport.hpp"
#include "etl/compiler.hpp"
#include "etl/parser.hpp"
#include "test_world.hpp"

/// Language-level transport ports: methods with `invocation: message` run
/// only when remotely invoked over MTP, and access the invocation's
/// arguments through arg(i).
namespace et::test {
namespace {

TEST(EtlMessagePorts, ParserAcceptsMessageInvocation) {
  auto program = etl::parse(R"(
    begin context c
      activation: s();
      begin object o
        invocation: message
        handle() { log("got", arg(0), arg(1)); }
      end
    end context
  )");
  ASSERT_TRUE(program.ok()) << program.error().to_string();
  EXPECT_EQ(program.value().contexts[0].objects[0].methods[0].invocation.kind,
            etl::InvocationDecl::Kind::kMessage);
}

TEST(EtlMessagePorts, CompilerMapsToMessageKind) {
  core::SenseRegistry senses;
  senses.add("s", [](const node::Mote&) { return false; });
  const auto registry = core::AggregationRegistry::with_builtins();
  auto specs = etl::compile_source(R"(
    begin context c
      activation: s();
      begin object o
        invocation: message
        handle() { setState("last", arg(0)); }
      end
    end context
  )", senses, registry, {});
  ASSERT_TRUE(specs.ok()) << specs.error().to_string();
  EXPECT_EQ(specs.value()[0].objects[0].methods[0].invocation.kind,
            core::InvocationSpec::Kind::kMessage);
}

TEST(EtlMessagePorts, ArgValidation) {
  core::SenseRegistry senses;
  senses.add("s", [](const node::Mote&) { return false; });
  const auto registry = core::AggregationRegistry::with_builtins();
  auto bad = etl::compile_source(R"(
    begin context c
      activation: s();
      begin object o
        invocation: message
        handle() { log(arg("zero")); }
      end
    end context
  )", senses, registry, {});
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.error().message.find("arg(...)"), std::string::npos);
}

TEST(EtlMessagePorts, EndToEndRemoteInvocation) {
  // A DSL-declared message port on the blob context, invoked over MTP
  // from another node; the handler commits arg(0) to persistent state.
  std::vector<std::string> logs;
  TestWorld::Options options;
  options.enable_directory = true;
  options.enable_transport = true;
  TestWorld world = [&] {
    etl::CompileOptions copts;
    copts.log_sink = [&logs](const std::string& line) {
      logs.push_back(line);
    };
    options.mutate_spec = [copts](core::ContextTypeSpec& spec) {
      // Attach a DSL-compiled object onto the C++-declared context by
      // compiling a twin context and stealing its object.
      core::SenseRegistry scratch;
      scratch.add("s", [](const node::Mote&) { return false; });
      auto registry = core::AggregationRegistry::with_builtins();
      auto twin = etl::compile_source(R"(
        begin context twin
          activation: s();
          begin object o
            invocation: message
            handle() {
              setState("last", arg(0));
              log("invoked", arg(0));
            }
          end
        end context
      )", scratch, registry, copts);
      ASSERT_TRUE(twin.ok()) << twin.error().to_string();
      spec.objects = std::move(twin.value()[0].objects);
    };
    return TestWorld(options);
  }();

  world.add_blob({3.5, 1.0});
  world.run(6);
  const auto leader = world.sole_leader();
  ASSERT_TRUE(leader.has_value());
  const LabelId label = world.groups(*leader).current_label(0);

  // Invoke port 0 from the far corner.
  const NodeId caller{world.system().node_count() - 1};
  world.system().stack(caller).transport()->invoke(0, label, PortId{0},
                                                   {7.5});
  world.run(5);

  ASSERT_EQ(logs.size(), 1u);
  EXPECT_EQ(logs[0], "invoked 7.5");
  const auto current = world.sole_leader();
  ASSERT_TRUE(current.has_value());
  const auto& state = world.groups(*current).persistent_state(0);
  ASSERT_TRUE(state.count("last"));
  EXPECT_DOUBLE_EQ(state.at("last"), 7.5);
}

TEST(EtlMessagePorts, MessageMethodNeverSelfFires) {
  std::vector<std::string> logs;
  TestWorld::Options options;
  etl::CompileOptions copts;
  copts.log_sink = [&logs](const std::string& line) {
    logs.push_back(line);
  };
  options.mutate_spec = [copts](core::ContextTypeSpec& spec) {
    core::SenseRegistry scratch;
    scratch.add("s", [](const node::Mote&) { return false; });
    auto registry = core::AggregationRegistry::with_builtins();
    auto twin = etl::compile_source(R"(
      begin context twin
        activation: s();
        begin object o
          invocation: message
          handle() { log("should not happen"); }
        end
      end context
    )", scratch, registry, copts);
    ASSERT_TRUE(twin.ok());
    spec.objects = std::move(twin.value()[0].objects);
  };
  TestWorld world(options);
  world.add_blob({3.5, 1.0});
  world.run(10);
  EXPECT_TRUE(logs.empty())
      << "message-invoked methods must not run on timers or conditions";
}

}  // namespace
}  // namespace et::test
