#include "metrics/invariants.hpp"

#include <gtest/gtest.h>

#include "test_world.hpp"

/// Unit tests for the runtime protocol-invariant oracle: each detector is
/// driven with synthetic events so violations (and legal near-misses) are
/// exercised deterministically. End-to-end oracle coverage lives in
/// test_partition.cpp and test_reliable_transport.cpp.
namespace et::test {
namespace {

using core::GroupEvent;
using core::TransportEvent;
using metrics::InvariantOracle;
using metrics::InvariantViolation;

TestWorld::Options transport_options() {
  TestWorld::Options options;
  options.enable_directory = true;
  options.enable_transport = true;
  return options;
}

TransportEvent delivered(TestWorld& world, NodeId node, LabelId label,
                         NodeId origin, std::uint32_t seq) {
  return TransportEvent{TransportEvent::Kind::kDelivered,
                        world.sim().now(),
                        node,
                        label,
                        origin,
                        seq,
                        0};
}

GroupEvent became_leader(TestWorld& world, NodeId node, LabelId label,
                         std::uint64_t epoch) {
  GroupEvent event{GroupEvent::Kind::kBecameLeader,
                   world.sim().now(),
                   node,
                   0,
                   label,
                   NodeId{},
                   0,
                   epoch};
  return event;
}

TEST(Invariants, CleanRunReportsAllHeld) {
  TestWorld world(transport_options());
  InvariantOracle oracle(world.system());
  world.add_blob({3.5, 1.0});
  world.run(3);
  EXPECT_TRUE(oracle.ok());
  EXPECT_GT(oracle.checks_run(), 0u);
  EXPECT_NE(oracle.report().find("all invariants held"), std::string::npos);
}

TEST(Invariants, DuplicateDeliveryFlagged) {
  TestWorld world(transport_options());
  InvariantOracle oracle(world.system());
  const LabelId label = LabelId::make(NodeId{1}, 1);

  const TransportEvent event =
      delivered(world, NodeId{3}, label, NodeId{1}, 7);
  oracle.on_transport_event(NodeId{3}, event);
  EXPECT_TRUE(oracle.ok()) << "first delivery is legal";
  oracle.on_transport_event(NodeId{3}, event);

  ASSERT_FALSE(oracle.ok());
  ASSERT_EQ(oracle.violations().size(), 1u);
  const InvariantViolation& violation = oracle.violations().front();
  EXPECT_EQ(violation.kind, InvariantViolation::Kind::kDuplicateDelivery);
  EXPECT_EQ(violation.label, label);
  EXPECT_FALSE(violation.trace.empty())
      << "a violation must carry its event trace";
  EXPECT_NE(oracle.report().find("duplicate-delivery"), std::string::npos);
}

TEST(Invariants, DistinctReceiversAndSequencesAreLegal) {
  TestWorld world(transport_options());
  InvariantOracle oracle(world.system());
  const LabelId label = LabelId::make(NodeId{1}, 1);

  // Same transfer on two receivers (leadership migrated mid-flight) and
  // two sequences on one receiver: both at-least-once outcomes, not bugs.
  oracle.on_transport_event(
      NodeId{3}, delivered(world, NodeId{3}, label, NodeId{1}, 7));
  oracle.on_transport_event(
      NodeId{4}, delivered(world, NodeId{4}, label, NodeId{1}, 7));
  oracle.on_transport_event(
      NodeId{3}, delivered(world, NodeId{3}, label, NodeId{1}, 8));
  EXPECT_TRUE(oracle.ok()) << oracle.report();
}

TEST(Invariants, FireAndForgetDeliveriesNotDeduped) {
  TestWorld world(transport_options());
  InvariantOracle oracle(world.system());
  const LabelId label = LabelId::make(NodeId{1}, 1);

  // seq 0 = fire-and-forget: no uniqueness promise, repeated dispatch of
  // indistinguishable sends must not be flagged.
  const TransportEvent event =
      delivered(world, NodeId{3}, label, NodeId{1}, 0);
  oracle.on_transport_event(NodeId{3}, event);
  oracle.on_transport_event(NodeId{3}, event);
  EXPECT_TRUE(oracle.ok()) << oracle.report();
}

TEST(Invariants, RetryBudgetOverrunFlagged) {
  TestWorld world(transport_options());
  InvariantOracle oracle(world.system());
  const LabelId label = LabelId::make(NodeId{1}, 1);
  const int budget = world.system()
                         .stack(NodeId{0})
                         .transport()
                         ->config()
                         .max_retries;

  TransportEvent event{TransportEvent::Kind::kRetransmit,
                       world.sim().now(),
                       NodeId{0},
                       label,
                       NodeId{0},
                       5,
                       budget};
  oracle.on_transport_event(NodeId{0}, event);
  EXPECT_TRUE(oracle.ok()) << "the budget itself is legal";

  event.attempt = budget + 1;
  oracle.on_transport_event(NodeId{0}, event);
  ASSERT_FALSE(oracle.ok());
  EXPECT_EQ(oracle.violations().front().kind,
            InvariantViolation::Kind::kRetryBudgetExceeded);
}

TEST(Invariants, EpochRegressionFlaggedOnWholeNetwork) {
  TestWorld world(transport_options());
  InvariantOracle oracle(world.system());
  const LabelId label = LabelId::make(NodeId{1}, 1);

  oracle.on_group_event(became_leader(world, NodeId{2}, label, 5));
  oracle.on_group_event(became_leader(world, NodeId{3}, label, 5));
  EXPECT_TRUE(oracle.ok()) << "same-epoch succession is legal";

  oracle.on_group_event(became_leader(world, NodeId{4}, label, 3));
  EXPECT_TRUE(oracle.ok())
      << "a stale election while the high water is being contested is "
         "concurrent takeover churn, not a regression";

  world.run(3.5);  // churn window over; the high water is settled
  oracle.on_group_event(became_leader(world, NodeId{4}, label, 3));
  ASSERT_FALSE(oracle.ok());
  const InvariantViolation& violation = oracle.violations().front();
  EXPECT_EQ(violation.kind, InvariantViolation::Kind::kEpochRegression);
  EXPECT_NE(violation.detail.find("high-water epoch 5"), std::string::npos);
}

TEST(Invariants, EpochRegressionSuppressedWhilePartitioned) {
  TestWorld world(transport_options());
  InvariantOracle oracle(world.system());
  const LabelId label = LabelId::make(NodeId{1}, 1);

  oracle.on_group_event(became_leader(world, NodeId{2}, label, 5));

  // During a split, the minority side legitimately elects at a stale
  // epoch; the check stays suspended until one settle window post-heal.
  std::vector<std::uint32_t> component_of(world.system().node_count(), 0);
  component_of[0] = 1;
  world.system().medium().set_partition(component_of);
  world.run(0.5);  // scans observe the split
  oracle.on_group_event(became_leader(world, NodeId{4}, label, 3));
  EXPECT_TRUE(oracle.ok()) << oracle.report();

  world.system().medium().clear_partition();
  world.run(0.5);  // scans observe the heal; settle window opens
  oracle.on_group_event(became_leader(world, NodeId{5}, label, 3));
  EXPECT_TRUE(oracle.ok())
      << "convergence churn right after the heal is the fence's job";

  world.run(2.5);  // settle window over
  oracle.on_group_event(became_leader(world, NodeId{6}, label, 3));
  EXPECT_FALSE(oracle.ok())
      << "a stale takeover on a settled, whole network is a real bug";
}

}  // namespace
}  // namespace et::test
