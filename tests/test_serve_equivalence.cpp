#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "fault/fault_injector.hpp"
#include "metrics/invariants.hpp"
#include "scenario/tank.hpp"
#include "serve/ingest.hpp"
#include "serve/track_store.hpp"
#include "test_world.hpp"

/// The serving tier must be a deterministic function of the run, not of
/// the kernel: `latest`, `history`, and the ingest counters must answer
/// byte-identically whether the simulation ran on the legacy serial
/// engine, the canonical serial oracle, or the parallel tiled kernel.
/// Ingest hands each decoded report to the master engine via
/// Simulator::post_op, so batching and fencing replay in canonical key
/// order regardless of which tile thread delivered the message.
namespace et::test {
namespace {

sim::KernelConfig serial_oracle() {
  sim::KernelConfig k;
  k.canonical_order = true;
  return k;
}

sim::KernelConfig parallel(int threads, int tiles_per_thread = 1) {
  sim::KernelConfig k;
  k.use_parallel_kernel = true;
  k.threads = threads;
  k.tiles_per_thread = tiles_per_thread;
  return k;
}

const std::vector<sim::KernelConfig>& parallel_grid() {
  static const std::vector<sim::KernelConfig> grid = {
      parallel(1, 1),
      parallel(2, 1),
      parallel(4, 1),
      parallel(4, 4),
  };
  return grid;
}

std::string describe(const sim::KernelConfig& k) {
  if (!k.use_parallel_kernel) return "serial-canonical";
  std::ostringstream os;
  os << "parallel(threads=" << k.threads
     << ", tiles_per_thread=" << k.tiles_per_thread << ")";
  return os.str();
}

void append_snapshot(std::ostringstream& os,
                     const serve::TrackSnapshot& s) {
  // Hexfloat: byte-identical means bit-identical positions, not
  // same-to-six-digits.
  os << "label=" << s.label.value() << " pos=(" << std::hexfloat
     << s.position.x << "," << s.position.y << std::defaultfloat
     << ") t=" << (s.time - Time::origin()).to_micros()
     << " epoch=" << s.epoch << " seq=" << s.seq << "\n";
}

/// Every observable of the serving tier after a run: per-label latest
/// snapshot, full history window, and the ingest counters.
std::string digest_store(const serve::ShardedTrackStore& store,
                         const serve::TrackIngest& ingest) {
  std::ostringstream os;
  const auto ingest_stats = ingest.stats();
  os << "ingest seen=" << ingest_stats.reports_seen
     << " stale=" << ingest_stats.stale_discarded
     << " batches=" << ingest_stats.batches_flushed
     << " stored=" << ingest_stats.reports_stored << "\n";
  const auto store_stats = store.stats();
  os << "store reports=" << store_stats.reports_applied
     << " evicted=" << store_stats.points_evicted
     << " labels=" << store_stats.labels << "\n";
  // tracks_in_region over an everything-rect enumerates labels sorted.
  const Rect everything{{-1e9, -1e9}, {1e9, 1e9}};
  for (const serve::TrackSnapshot& snap :
       store.tracks_in_region(everything)) {
    os << "latest ";
    append_snapshot(os, snap);
    for (const serve::TrackSnapshot& point :
         store.history(snap.label, Duration::seconds(3600))) {
      os << "  point ";
      append_snapshot(os, point);
    }
  }
  return os.str();
}

std::string run_tank_with_store(const sim::KernelConfig& kernel) {
  scenario::TankScenarioParams params;
  params.rows = 3;
  params.cols = 8;
  params.speed_hops_per_s = 0.75;
  params.report_period = Duration::millis(500);
  params.seed = 42;
  params.kernel = kernel;
  scenario::TankScenario scenario(params);
  serve::ShardedTrackStore store;
  serve::IngestConfig config;
  config.max_batch = 4;  // small batches: exercise both flush paths
  serve::TrackIngest ingest(scenario.system(), NodeId{0}, store, config);
  scenario.run();
  ingest.flush();
  return digest_store(store, ingest);
}

TEST(ServeEquivalence, TankStoreBitExactAcrossKernels) {
  const std::string oracle = run_tank_with_store(serial_oracle());
  EXPECT_NE(oracle.find("latest "), std::string::npos)
      << "the run must actually serve at least one track:\n" << oracle;
  for (const sim::KernelConfig& k : parallel_grid()) {
    EXPECT_EQ(run_tank_with_store(k), oracle) << describe(k);
  }
}

/// Chaos variant: crashes and a partition while the serving tier ingests.
/// The protocol-invariant oracle must stay clean with the store attached,
/// and the served answers must still be kernel-independent.
std::string run_chaos_with_store(const sim::KernelConfig& kernel,
                                 bool& oracle_ok, std::string& oracle_report) {
  TestWorld::Options options;
  options.rows = 3;
  options.cols = 10;
  options.enable_transport = true;
  options.kernel = kernel;
  options.seed = 5;
  options.mutate_spec = [](core::ContextTypeSpec& spec) {
    core::ObjectSpec reporter;
    reporter.name = "r";
    core::MethodSpec track;
    track.name = "track";
    track.invocation.kind = core::InvocationSpec::Kind::kTimer;
    track.invocation.period = Duration::millis(500);
    track.body = [](core::TrackingContext& ctx) {
      if (auto where = ctx.read_vector("where")) {
        ctx.send_to_node(NodeId{0}, "track", {where->x, where->y});
      }
    };
    reporter.methods.push_back(std::move(track));
    spec.objects.push_back(std::move(reporter));
  };
  TestWorld world(options);
  metrics::InvariantOracle invariants(world.system());
  fault::FaultInjector injector(world.system());
  serve::ShardedTrackStore store;
  serve::TrackIngest ingest(world.system(), NodeId{0}, store);

  world.add_blob({4.5, 1.0}, 1.8);
  world.run(3);

  fault::FaultPlan plan;
  const Time t0 = world.sim().now();
  plan.crash_for(t0 + Duration::seconds(1), NodeId{13},
                 Duration::seconds(3));
  plan.crash_for(t0 + Duration::seconds(2), NodeId{14},
                 Duration::seconds(3));
  std::vector<NodeId> island;
  for (std::size_t i = 0; i < 30; ++i) {
    if (i % 10 >= 5) island.push_back(NodeId{i});
  }
  plan.partition_start(t0 + Duration::seconds(4),
                       fault::PartitionSpec{{island}});
  plan.partition_heal(t0 + Duration::seconds(8));
  injector.schedule(plan);
  world.run(12);
  ingest.flush();

  oracle_ok = invariants.ok();
  oracle_report = invariants.report();
  return digest_store(store, ingest);
}

TEST(ServeEquivalence, ChaosStoreBitExactAndInvariantClean) {
  bool ok = false;
  std::string report;
  const std::string oracle = run_chaos_with_store(serial_oracle(), ok, report);
  EXPECT_TRUE(ok) << report;
  for (const sim::KernelConfig& k : parallel_grid()) {
    EXPECT_EQ(run_chaos_with_store(k, ok, report), oracle) << describe(k);
    EXPECT_TRUE(ok) << describe(k) << "\n" << report;
  }
}

/// The legacy (non-canonical) serial engine is a different valid schedule:
/// not bit-equal to the oracle, but the serving tier must still work.
TEST(ServeEquivalence, LegacySerialStillServes) {
  const std::string legacy = run_tank_with_store(sim::KernelConfig{});
  EXPECT_NE(legacy.find("latest "), std::string::npos) << legacy;
}

}  // namespace
}  // namespace et::test
