#include "metrics/coherence.hpp"

#include <gtest/gtest.h>

#include "test_world.hpp"

/// Tests of the coherence monitor itself and of the system's coherence
/// behaviour under a lossy channel.
namespace et::test {
namespace {

TEST(CoherenceMonitor, CleanRunScoresPerfect) {
  TestWorld::Options options;
  options.cols = 12;
  TestWorld world(options);
  metrics::CoherenceMonitor monitor(world.system(), Duration::millis(100));
  const TargetId target =
      world.add_moving_blob({-0.5, 1.0}, {12.0, 1.0}, 0.3);
  world.run(45);

  const auto& stats = monitor.stats_for(target);
  EXPECT_EQ(stats.distinct_labels, 1u);
  EXPECT_EQ(stats.failed_handovers, 0u);
  EXPECT_GE(stats.successful_handovers, 3u);
  EXPECT_DOUBLE_EQ(stats.handover_success_rate(), 1.0);
  EXPECT_GT(stats.tracked_fraction(), 0.7);
  EXPECT_TRUE(stats.coherent());
  EXPECT_TRUE(monitor.all_coherent());
}

TEST(CoherenceMonitor, UntrackedTargetScoresZero) {
  TestWorld world;
  metrics::CoherenceMonitor monitor(world.system(), Duration::millis(100));
  // A target of a type no context tracks.
  env::Target ghost;
  ghost.type = "ghost";
  ghost.trajectory =
      std::make_unique<env::StationaryTrajectory>(Vec2{3, 1});
  ghost.radius = env::RadiusProfile::constant(1.0);
  const TargetId id = world.env().add_target(std::move(ghost));
  world.run(5);

  const auto& stats = monitor.stats_for(id);
  EXPECT_GT(stats.total_samples, 0u);
  EXPECT_EQ(stats.tracked_samples, 0u);
  EXPECT_DOUBLE_EQ(stats.tracked_fraction(), 0.0);
  // Vacuously coherent (no labels to conflict); trackability checks use
  // tracked_fraction to rule this case out.
  EXPECT_TRUE(stats.coherent());
  EXPECT_EQ(stats.distinct_labels, 0u);
}

TEST(CoherenceMonitor, CombinedAggregatesTargets) {
  TestWorld::Options options;
  options.cols = 12;
  TestWorld world(options);
  metrics::CoherenceMonitor monitor(world.system(), Duration::millis(100));
  world.add_blob({2.0, 1.0});
  world.add_blob({9.0, 1.0});
  world.run(6);

  const auto combined = monitor.combined();
  EXPECT_EQ(combined.distinct_labels, 2u);
  EXPECT_GT(combined.tracked_samples, 0u);
  EXPECT_TRUE(monitor.all_coherent());
}

TEST(CoherenceMonitor, CoherenceHeldUnderModerateLoss) {
  // The paper's central robustness claim: "our system operates correctly
  // in the presence of message loss."
  TestWorld::Options options;
  options.cols = 12;
  options.loss_probability = 0.15;
  options.model_collisions = true;
  TestWorld world(options);
  metrics::CoherenceMonitor monitor(world.system(), Duration::millis(100));
  const TargetId target =
      world.add_moving_blob({-0.5, 1.0}, {12.0, 1.0}, 0.2);
  world.run(70);

  const auto& stats = monitor.stats_for(target);
  EXPECT_TRUE(stats.coherent())
      << "distinct labels: " << stats.distinct_labels;
  EXPECT_GT(stats.tracked_fraction(), 0.6);
}

/// Seed sweep: coherence of the slow-tank scenario must hold across many
/// random channels (property-style regression of the headline result).
class CoherenceSeedSweep : public ::testing::TestWithParam<int> {};

TEST_P(CoherenceSeedSweep, SlowTankAlwaysCoherent) {
  TestWorld::Options options;
  options.cols = 10;
  options.loss_probability = 0.05;
  options.model_collisions = true;
  options.seed = static_cast<std::uint64_t>(GetParam());
  TestWorld world(options);
  metrics::CoherenceMonitor monitor(world.system(), Duration::millis(100));
  const TargetId target =
      world.add_moving_blob({-0.5, 1.0}, {10.0, 1.0}, 0.1);
  world.run(115);
  const auto& stats = monitor.stats_for(target);
  EXPECT_TRUE(stats.coherent())
      << "seed " << GetParam() << ": " << stats.distinct_labels
      << " labels, " << stats.failed_handovers << " failed handovers";
  EXPECT_EQ(stats.failed_handovers, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoherenceSeedSweep,
                         ::testing::Range(1, 11));

}  // namespace
}  // namespace et::test
