#include <gtest/gtest.h>

#include "metrics/coherence.hpp"
#include "test_world.hpp"

/// Multi-target identity tests: "groups formed around different entities
/// of the same type remain distinct and do not merge as long as the
/// tracked entities are physically separated" (§3.2.1). Since heartbeats
/// reach everyone within the communication radius (6 grids), label
/// identity must be decided by the *entities'* separation, not the radio's
/// reach — the estimate-gated suppression rule under test here.
namespace et::test {
namespace {

using core::GroupEvent;

TEST(MultiTarget, NearbyButDistinctTargetsKeepDistinctLabels) {
  // Two stationary targets 4 units apart: well inside radio range (6),
  // well outside each other's sensing discs (1.2).
  TestWorld::Options options;
  options.cols = 10;
  TestWorld world(options);
  world.add_blob({2.5, 1.0});
  world.add_blob({6.5, 1.0});
  world.run(15);  // long enough for weights to diverge

  const auto leaders = world.leaders();
  ASSERT_EQ(leaders.size(), 2u)
      << "radio reach must not merge physically separated entities";
  EXPECT_NE(world.groups(leaders[0]).current_label(0),
            world.groups(leaders[1]).current_label(0));
  EXPECT_EQ(world.events().count(GroupEvent::Kind::kLabelSuppressed), 0u);
}

TEST(MultiTarget, ParallelConvoysTrackIndependently) {
  // Two same-type targets crossing the field in parallel rows, separated
  // by more than two sensing radii the whole way.
  TestWorld::Options options;
  options.rows = 7;
  options.cols = 14;
  options.sensing_radius = 1.0;
  TestWorld world(options);
  metrics::CoherenceMonitor monitor(world.system(), Duration::millis(100));
  // Rows separated by more than SR + wait_radius: unambiguously distinct.
  const TargetId a =
      world.add_moving_blob({-1.0, 0.5}, {14.5, 0.5}, 0.25, 1.0);
  const TargetId b =
      world.add_moving_blob({-1.0, 5.5}, {14.5, 5.5}, 0.25, 1.0);
  world.run(70);

  EXPECT_TRUE(monitor.stats_for(a).coherent());
  EXPECT_TRUE(monitor.stats_for(b).coherent());
  EXPECT_EQ(monitor.stats_for(a).failed_handovers, 0u);
  EXPECT_EQ(monitor.stats_for(b).failed_handovers, 0u);
  // Exactly two labels ever existed.
  EXPECT_EQ(world.events().count(GroupEvent::Kind::kLabelCreated), 2u);
}

TEST(MultiTarget, OpposingConvoysPassEachOther) {
  // Opposite directions in rows 2 x SR + 1 apart: sensing discs never
  // overlap, so the labels must survive the pass-by intact.
  TestWorld::Options options;
  options.rows = 7;
  options.cols = 14;
  options.sensing_radius = 1.0;
  TestWorld world(options);
  metrics::CoherenceMonitor monitor(world.system(), Duration::millis(100));
  const TargetId east =
      world.add_moving_blob({-1.0, 0.5}, {14.5, 0.5}, 0.3, 1.0);
  const TargetId west =
      world.add_moving_blob({14.5, 5.5}, {-1.0, 5.5}, 0.3, 1.0);
  world.run(60);

  EXPECT_TRUE(monitor.stats_for(east).coherent());
  EXPECT_TRUE(monitor.stats_for(west).coherent());
  EXPECT_EQ(world.events().count(GroupEvent::Kind::kLabelSuppressed), 0u);
}

TEST(MultiTarget, PhysicallyMergingTargetsShareOneLabel) {
  // When the entities themselves converge (sensing discs overlapping), a
  // single label SHOULD win — that is the spurious-label rule working.
  TestWorld::Options options;
  options.cols = 14;
  TestWorld world(options);
  world.add_moving_blob({0.0, 1.0}, {7.0, 1.0}, 0.3);
  world.add_moving_blob({13.0, 1.0}, {7.0, 1.0}, 0.3);
  world.run(40);
  EXPECT_EQ(world.leaders().size(), 1u);
  EXPECT_GE(world.events().count(GroupEvent::Kind::kLabelSuppressed) +
                world.events().count(GroupEvent::Kind::kYield),
            1u);
}

TEST(MultiTarget, SeparatingTargetsGetASecondLabel) {
  // Two targets start co-located (one label) and then separate: the system
  // must re-discover the departing entity under a fresh label.
  TestWorld::Options options;
  options.cols = 16;
  TestWorld world(options);
  world.add_blob({3.0, 1.0});  // stays put
  world.add_moving_blob({3.0, 1.0}, {14.5, 1.0}, 0.25);  // drives away
  world.run(6);
  EXPECT_EQ(world.leaders().size(), 1u) << "co-located: one label";

  world.run(40);  // mover is now far away
  const auto leaders = world.leaders();
  EXPECT_EQ(leaders.size(), 2u)
      << "separated entities must end up with separate labels";
}

TEST(MultiTarget, ThreeSimultaneousTargets) {
  TestWorld::Options options;
  options.rows = 5;
  options.cols = 16;
  options.sensing_radius = 1.0;
  TestWorld world(options);
  world.add_blob({2.0, 0.5}, 1.0);
  world.add_blob({8.0, 2.0}, 1.0);
  world.add_blob({14.0, 3.5}, 1.0);
  world.run(10);
  EXPECT_EQ(world.leaders().size(), 3u);
  // All three aggregate independently.
  for (NodeId leader : world.leaders()) {
    auto* agg = world.groups(leader).aggregates(0);
    ASSERT_NE(agg, nullptr);
    EXPECT_TRUE(agg->read("where", world.sim().now()).has_value());
  }
}

}  // namespace
}  // namespace et::test
