#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "metrics/track_decode.hpp"
#include "metrics/track_recorder.hpp"
#include "serve/ingest.hpp"
#include "serve/track_store.hpp"
#include "test_world.hpp"

/// Serving-tier data plane: the sharded track store's query semantics
/// (latest slot, history window, ring eviction, region scans) and the
/// ingest path's fencing/batching, driven through a real simulated base
/// station.
namespace et::test {
namespace {

metrics::DecodedTrack report(LabelId label, double x, double y,
                             double at_seconds, std::uint64_t epoch = 1) {
  metrics::DecodedTrack d;
  d.time = Time::origin() + Duration::seconds(at_seconds);
  d.label = label;
  d.source = NodeId{7};
  d.position = {x, y};
  d.epoch = epoch;
  return d;
}

TEST(ServeStore, UnknownLabelIsEmpty) {
  serve::ShardedTrackStore store;
  EXPECT_FALSE(store.latest(LabelId{42}).has_value());
  EXPECT_TRUE(store.history(LabelId{42}, Duration::seconds(10)).empty());
  EXPECT_EQ(store.stats().labels, 0u);
}

TEST(ServeStore, LatestTracksNewestReportAndSequence) {
  serve::ShardedTrackStore store;
  const LabelId label = LabelId::make(NodeId{3}, 1);
  store.apply_batch({report(label, 1.0, 2.0, 0.0),
                     report(label, 1.5, 2.0, 0.5),
                     report(label, 2.0, 2.5, 1.0)});

  const auto snap = store.latest(label);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->label, label);
  EXPECT_DOUBLE_EQ(snap->position.x, 2.0);
  EXPECT_DOUBLE_EQ(snap->position.y, 2.5);
  EXPECT_EQ(snap->time, Time::origin() + Duration::seconds(1));
  EXPECT_EQ(snap->seq, 3u) << "seq counts updates to the label";
  EXPECT_EQ(store.stats().reports_applied, 3u);
  EXPECT_EQ(store.stats().labels, 1u);
}

TEST(ServeStore, HistoryWindowIsAnchoredAtTheNewestPoint) {
  serve::ShardedTrackStore store;
  const LabelId label = LabelId::make(NodeId{3}, 1);
  for (int i = 0; i < 5; ++i) {
    store.apply_batch({report(label, static_cast<double>(i), 0.0,
                              static_cast<double>(i))});
  }
  // Newest point is t=4s; a 2 s window keeps t in [2s, 4s], oldest first.
  const auto window = store.history(label, Duration::seconds(2));
  ASSERT_EQ(window.size(), 3u);
  EXPECT_DOUBLE_EQ(window[0].position.x, 2.0);
  EXPECT_DOUBLE_EQ(window[1].position.x, 3.0);
  EXPECT_DOUBLE_EQ(window[2].position.x, 4.0);
  // A window wider than the retained span returns everything.
  EXPECT_EQ(store.history(label, Duration::seconds(100)).size(), 5u);
}

TEST(ServeStore, RingEvictsOldestPoints) {
  serve::StoreConfig config;
  config.ring_capacity = 4;
  serve::ShardedTrackStore store(config);
  const LabelId label = LabelId::make(NodeId{3}, 1);
  std::vector<metrics::DecodedTrack> batch;
  for (int i = 0; i < 6; ++i) {
    batch.push_back(
        report(label, static_cast<double>(i), 0.0, static_cast<double>(i)));
  }
  store.apply_batch(batch);

  const auto all = store.history(label, Duration::seconds(100));
  ASSERT_EQ(all.size(), 4u) << "ring keeps the newest ring_capacity points";
  EXPECT_DOUBLE_EQ(all.front().position.x, 2.0);
  EXPECT_DOUBLE_EQ(all.back().position.x, 5.0);
  EXPECT_EQ(store.stats().points_evicted, 2u);
  // The latest slot is unaffected by eviction.
  EXPECT_DOUBLE_EQ(store.latest(label)->position.x, 5.0);
}

TEST(ServeStore, RegionQueryFiltersAndSortsByLabel) {
  serve::ShardedTrackStore store;
  const LabelId a = LabelId::make(NodeId{9}, 1);
  const LabelId b = LabelId::make(NodeId{2}, 5);
  const LabelId c = LabelId::make(NodeId{4}, 2);
  store.apply_batch({report(a, 1.0, 1.0, 0.0), report(b, 2.0, 2.0, 0.0),
                     report(c, 9.0, 9.0, 0.0)});

  const auto in_region =
      store.tracks_in_region(Rect{{0.0, 0.0}, {3.0, 3.0}});
  ASSERT_EQ(in_region.size(), 2u) << "c is outside the rect";
  EXPECT_LT(in_region[0].label, in_region[1].label)
      << "region answers are sorted by label id";
  // Only the *latest* position matters: move a out of the rect.
  store.apply_batch({report(a, 8.0, 8.0, 1.0)});
  EXPECT_EQ(store.tracks_in_region(Rect{{0.0, 0.0}, {3.0, 3.0}}).size(), 1u);
}

TEST(ServeStore, ShardCountRoundsUpToPowerOfTwo) {
  serve::StoreConfig config;
  config.shard_count = 5;
  serve::ShardedTrackStore store(config);
  EXPECT_EQ(store.shard_count(), 8u);
}

TEST(ServeStore, EpochFenceDiscardsStaleLeaderReports) {
  metrics::EpochFence fence;
  const LabelId label = LabelId::make(NodeId{1}, 1);
  EXPECT_TRUE(fence.admit(label, 3));
  EXPECT_FALSE(fence.admit(label, 2)) << "older epoch must be fenced";
  EXPECT_TRUE(fence.admit(label, 3)) << "same epoch is fine";
  EXPECT_TRUE(fence.admit(label, 4));
  EXPECT_EQ(fence.stale_discarded(), 1u);
}

/// End-to-end ingest: a reporter object on the blob leader streams `track`
/// messages to node 0; the serving tier must see them all, batch them, and
/// serve the newest position.
TEST(ServeIngest, SimulatedReportsReachTheStore) {
  TestWorld::Options options;
  options.mutate_spec = [](core::ContextTypeSpec& spec) {
    core::ObjectSpec reporter;
    reporter.name = "r";
    core::MethodSpec track;
    track.name = "track";
    track.invocation.kind = core::InvocationSpec::Kind::kTimer;
    track.invocation.period = Duration::seconds(1);
    track.body = [](core::TrackingContext& ctx) {
      if (auto where = ctx.read_vector("where")) {
        ctx.send_to_node(NodeId{0}, "track", {where->x, where->y});
      }
    };
    core::MethodSpec noise;
    noise.name = "noise";
    noise.invocation.kind = core::InvocationSpec::Kind::kTimer;
    noise.invocation.period = Duration::seconds(1);
    noise.body = [](core::TrackingContext& ctx) {
      ctx.send_to_node(NodeId{0}, "chatter", {1.0});
    };
    reporter.methods.push_back(std::move(track));
    reporter.methods.push_back(std::move(noise));
    spec.objects.push_back(std::move(reporter));
  };
  TestWorld world(options);
  serve::ShardedTrackStore store;
  serve::IngestConfig config;
  config.record_tape = true;
  serve::TrackIngest ingest(world.system(), NodeId{0}, store, config);

  world.add_blob({3.5, 1.0});
  world.run(8);
  ingest.flush();

  const auto stats = ingest.stats();
  EXPECT_GE(stats.reports_seen, 5u);
  EXPECT_EQ(stats.reports_stored, stats.reports_seen - stats.stale_discarded);
  EXPECT_EQ(store.stats().reports_applied, stats.reports_stored);
  EXPECT_GE(stats.batches_flushed, 1u);
  EXPECT_EQ(ingest.tape().size(), stats.reports_stored);

  ASSERT_EQ(store.stats().labels, 1u) << "one blob, one served track";
  const auto in_region =
      store.tracks_in_region(Rect{{0.0, 0.0}, {7.0, 2.0}});
  ASSERT_EQ(in_region.size(), 1u);
  const auto snap = store.latest(in_region.front().label);
  ASSERT_TRUE(snap.has_value());
  EXPECT_NEAR(snap->position.x, 3.5, 1.2) << "served position is the blob's";
  EXPECT_EQ(snap->seq, stats.reports_stored);
  // The history ring holds the whole (short) run.
  EXPECT_EQ(store.history(snap->label, Duration::seconds(100)).size(),
            stats.reports_stored);
}

/// Registering the serving tier must not detach other base-station
/// consumers: handlers fan out, so a TrackRecorder and a TrackIngest can
/// observe the same message stream side by side.
TEST(ServeIngest, CoexistsWithTrackRecorder) {
  TestWorld::Options options;
  options.mutate_spec = [](core::ContextTypeSpec& spec) {
    core::ObjectSpec reporter;
    reporter.name = "r";
    core::MethodSpec track;
    track.name = "track";
    track.invocation.kind = core::InvocationSpec::Kind::kTimer;
    track.invocation.period = Duration::seconds(1);
    track.body = [](core::TrackingContext& ctx) {
      if (auto where = ctx.read_vector("where")) {
        ctx.send_to_node(NodeId{0}, "track", {where->x, where->y});
      }
    };
    reporter.methods.push_back(std::move(track));
    spec.objects.push_back(std::move(reporter));
  };
  TestWorld world(options);
  const TargetId target = world.add_blob({3.5, 1.0});
  metrics::TrackRecorder recorder(world.system(), NodeId{0}, target,
                                  "track");
  serve::ShardedTrackStore store;
  serve::TrackIngest ingest(world.system(), NodeId{0}, store);

  world.run(8);
  ingest.flush();

  EXPECT_GE(recorder.report_count(), 5u) << "recorder still sees reports";
  EXPECT_EQ(ingest.stats().reports_seen, recorder.report_count())
      << "both consumers observe the identical message stream";
  EXPECT_EQ(store.stats().reports_applied, recorder.report_count());
}

}  // namespace
}  // namespace et::test
