#include "baseline/direct_reporting.hpp"

#include <gtest/gtest.h>

namespace et::baseline {
namespace {

struct BaselineTest : public ::testing::Test {
  void build(std::size_t cols = 10, double loss = 0.0,
             std::uint64_t seed = 3) {
    sim.emplace(seed);
    env.emplace(sim->make_rng("env"));
    field.emplace(env::Field::grid(3, cols));
    radio::RadioConfig radio;
    radio.loss_probability = loss;
    radio.model_collisions = loss > 0.0;
    system.emplace(*sim, *env, *field, "blob", radio);
  }

  TargetId add_blob(Vec2 at, double radius = 1.2) {
    env::Target blob;
    blob.type = "blob";
    blob.trajectory = std::make_unique<env::StationaryTrajectory>(at);
    blob.radius = env::RadiusProfile::constant(radius);
    blob.emissions["magnetic"] = 10.0;
    return env->add_target(std::move(blob));
  }

  TargetId add_mover(Vec2 from, Vec2 to, double speed) {
    env::Target blob;
    blob.type = "blob";
    blob.trajectory = std::make_unique<env::LinearTrajectory>(from, to, speed);
    blob.radius = env::RadiusProfile::constant(1.2);
    blob.emissions["magnetic"] = 10.0;
    return env->add_target(std::move(blob));
  }

  std::optional<sim::Simulator> sim;
  std::optional<env::Environment> env;
  std::optional<env::Field> field;
  std::optional<DirectReportingSystem> system;
};

TEST_F(BaselineTest, NoTargetNoReports) {
  build();
  sim->run_for(Duration::seconds(10));
  EXPECT_EQ(system->reports_received(), 0u);
  EXPECT_TRUE(system->tracks().empty());
}

TEST_F(BaselineTest, StationaryTargetFormsOneTrack) {
  build();
  add_blob({5.0, 1.0});
  sim->run_for(Duration::seconds(10));
  EXPECT_GT(system->reports_received(), 20u)
      << "every sensing mote streams to the base station";
  EXPECT_EQ(system->open_track_count(), 1u);
  const auto estimate = system->nearest_track_estimate({5.0, 1.0});
  ASSERT_TRUE(estimate.has_value());
  EXPECT_NEAR(estimate->x, 5.0, 1.0);
  EXPECT_NEAR(estimate->y, 1.0, 1.0);
}

TEST_F(BaselineTest, MovingTargetTrackFollows) {
  build(12);
  const TargetId id = add_mover({-1.0, 1.0}, {12.5, 1.0}, 0.25);
  sim->run_for(Duration::seconds(30));
  const Vec2 truth = env->target(id).position_at(sim->now());
  const auto estimate = system->nearest_track_estimate(truth);
  ASSERT_TRUE(estimate.has_value());
  EXPECT_LT(distance(*estimate, truth), 1.8);
}

TEST_F(BaselineTest, TrackClosesWhenTargetVanishes) {
  build();
  const TargetId id = add_blob({5.0, 1.0});
  sim->run_for(Duration::seconds(6));
  ASSERT_EQ(system->open_track_count(), 1u);
  env->remove_target_at(id, sim->now());
  sim->run_for(Duration::seconds(6));
  EXPECT_EQ(system->open_track_count(), 0u);
  EXPECT_EQ(system->tracks().size(), 1u);
  EXPECT_FALSE(system->tracks()[0].open);
}

TEST_F(BaselineTest, TwoSeparatedTargetsTwoTracks) {
  build(14);
  add_blob({2.0, 1.0});
  add_blob({11.0, 1.0});
  sim->run_for(Duration::seconds(8));
  EXPECT_EQ(system->open_track_count(), 2u);
}

TEST_F(BaselineTest, SurvivesModerateLoss) {
  build(10, 0.15, 11);
  add_blob({5.0, 1.0});
  sim->run_for(Duration::seconds(10));
  EXPECT_GT(system->reports_received(), 10u);
  EXPECT_GE(system->open_track_count(), 1u);
}

TEST_F(BaselineTest, TrafficScalesWithSensingSetNotWithAggregation) {
  // The structural difference under test: the baseline's channel load
  // grows with every mote near the target reporting end-to-end across the
  // field, where EnviroTrack sends one aggregate per label.
  build(10);
  add_blob({8.0, 1.0}, 1.6);  // far corner: many hops to base at (0,0)
  sim->run_for(Duration::seconds(10));
  const auto& stats = system->medium().stats();
  // kUser (reports) + kRoute relays dominate; utilization far above what
  // the tank scenario's aggregated reports produce in the same geometry.
  EXPECT_GT(stats.of(radio::MsgType::kRoute).transmitted +
                stats.of(radio::MsgType::kUser).transmitted,
            200u);
}

}  // namespace
}  // namespace et::baseline
