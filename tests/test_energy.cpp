#include "metrics/energy.hpp"

#include <gtest/gtest.h>

#include "test_world.hpp"

namespace et::test {
namespace {

TEST(Energy, IdleDeploymentSpendsOnlyIdlePower) {
  TestWorld world;
  world.run(10);
  const auto report = metrics::measure_energy(world.system());
  for (const auto& node : report.per_node) {
    EXPECT_EQ(node.tx_joules, 0.0);
    EXPECT_EQ(node.rx_joules, 0.0);
    EXPECT_NEAR(node.idle_joules, 10.0 * 0.1e-3, 1e-9);
  }
  EXPECT_GT(report.totals.total(), 0.0);
}

TEST(Energy, TrackingCostsConcentrateNearTheTarget) {
  TestWorld world;
  world.add_blob({3.5, 1.0});
  world.run(20);
  const auto report = metrics::measure_energy(world.system());

  // A node in the group (near the blob) vs a distant idle one.
  const NodeId near = world.field().nearest({3.5, 1.0});
  const NodeId far{world.system().node_count() - 1};
  const auto& near_energy = report.per_node[near.value()];
  const auto& far_energy = report.per_node[far.value()];
  EXPECT_GT(near_energy.tx_joules, 0.0);
  EXPECT_GT(near_energy.total(), far_energy.total());
  // Distant motes still pay reception for overheard heartbeats (CR = 6
  // covers the whole 8-wide field) but transmit nothing.
  EXPECT_EQ(far_energy.tx_joules, 0.0);
}

TEST(Energy, TotalsAreSumOfNodes) {
  TestWorld world;
  world.add_blob({3.5, 1.0});
  world.run(10);
  const auto report = metrics::measure_energy(world.system());
  double sum = 0.0;
  for (const auto& node : report.per_node) sum += node.total();
  EXPECT_NEAR(sum, report.totals.total(), 1e-12);
  EXPECT_GE(report.max_node_joules(), report.mean_node_joules());
}

TEST(Energy, FasterHeartbeatsCostMore) {
  auto joules = [](double period_s) {
    TestWorld::Options options;
    options.group.heartbeat_period = Duration::seconds(period_s);
    TestWorld world(options);
    world.add_blob({3.5, 1.0});
    world.run(20);
    return metrics::measure_energy(world.system()).totals.total();
  };
  EXPECT_GT(joules(0.25), joules(2.0))
      << "the Fig. 5 responsiveness/energy trade-off";
}

TEST(Energy, ModelParametersScaleLinearly) {
  TestWorld world;
  world.add_blob({3.5, 1.0});
  world.run(10);
  metrics::EnergyModel cheap;
  metrics::EnergyModel pricey = cheap;
  pricey.tx_joules_per_bit *= 3.0;
  const auto a = metrics::measure_energy(world.system(), cheap);
  const auto b = metrics::measure_energy(world.system(), pricey);
  EXPECT_NEAR(b.totals.tx_joules, 3.0 * a.totals.tx_joules, 1e-12);
  EXPECT_NEAR(b.totals.rx_joules, a.totals.rx_joules, 1e-12);
}

}  // namespace
}  // namespace et::test
