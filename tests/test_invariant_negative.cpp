#include <gtest/gtest.h>

#include <set>

#include "metrics/invariants.hpp"
#include "test_world.hpp"

/// Negative controls for the invariant oracle: each deliberately-injected
/// protocol failure must trip exactly the invariant built to catch it and
/// no other. Guards against both misses (a violation the oracle waves
/// through) and cross-talk (one failure mode lighting up unrelated
/// detectors, which would make fuzzer verdicts unactionable).
namespace et::test {
namespace {

using metrics::InvariantOracle;
using metrics::InvariantViolation;
using metrics::invariant_kind_name;

std::set<InvariantViolation::Kind> kinds_tripped(
    const InvariantOracle& oracle) {
  std::set<InvariantViolation::Kind> kinds;
  for (const InvariantViolation& violation : oracle.violations()) {
    kinds.insert(violation.kind);
  }
  return kinds;
}

TEST(InvariantNegative, InjectedDualLeaderTripsExactlyDualLeader) {
  // Label fission with epoch fencing disabled: two stimuli start
  // co-located (one group, one label) and drift out of radio range, so two
  // clusters co-lead the inherited label with nothing left to fence them.
  TestWorld::Options options;
  options.rows = 3;
  options.cols = 14;
  options.enable_directory = true;
  options.group.epoch_fencing_enabled = false;
  options.directory.update_period = Duration::millis(500);
  options.cpu.queue_capacity = 64;
  TestWorld world(options);
  InvariantOracle oracle(world.system());

  world.add_moving_blob({5.5, 1.0}, {11.5, 1.0}, 1.0);
  world.add_moving_blob({5.5, 1.0}, {0.5, 1.0}, 1.0);
  world.run(22);

  ASSERT_FALSE(oracle.ok()) << "the injected co-leaders must be caught";
  const std::set<InvariantViolation::Kind> kinds = kinds_tripped(oracle);
  EXPECT_EQ(kinds.size(), 1u) << oracle.report();
  EXPECT_TRUE(kinds.count(InvariantViolation::Kind::kDualLeader))
      << oracle.report();
  EXPECT_STREQ(invariant_kind_name(*kinds.begin()), "dual-leader")
      << "the chaos verdict name the fuzzer reports";
}

TEST(InvariantNegative, InjectedEpochRegressionTripsExactlyThat) {
  // A takeover announced below the label's high-water epoch on a healthy,
  // unpartitioned network — the exact stale-incarnation resurrection the
  // fencing machinery exists to prevent.
  TestWorld::Options options;
  options.enable_directory = true;
  options.enable_transport = true;
  TestWorld world(options);
  InvariantOracle oracle(world.system());
  const LabelId label = LabelId::make(NodeId{1}, 1);

  const auto became_leader = [&](NodeId node, std::uint64_t epoch) {
    core::GroupEvent event{core::GroupEvent::Kind::kBecameLeader,
                           world.sim().now(),
                           node,
                           0,
                           label,
                           NodeId{},
                           0,
                           epoch};
    oracle.on_group_event(event);
  };

  became_leader(NodeId{2}, 7);
  world.run(3.5);  // past the concurrent-takeover churn window
  became_leader(NodeId{3}, 2);  // the injected regression

  ASSERT_FALSE(oracle.ok());
  const std::set<InvariantViolation::Kind> kinds = kinds_tripped(oracle);
  EXPECT_EQ(kinds.size(), 1u) << oracle.report();
  EXPECT_TRUE(kinds.count(InvariantViolation::Kind::kEpochRegression))
      << oracle.report();
  ASSERT_EQ(oracle.violations().size(), 1u)
      << "exactly one regression was injected, exactly one may be flagged";
  EXPECT_STREQ(invariant_kind_name(oracle.violations().front().kind),
               "epoch-regression");
  EXPECT_EQ(oracle.violations().front().label, label);
}

}  // namespace
}  // namespace et::test
