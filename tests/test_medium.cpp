#include "radio/medium.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/simulator.hpp"

namespace et::radio {
namespace {

class TestPayload final : public Payload {
 public:
  explicit TestPayload(std::size_t bytes = 16) : bytes_(bytes) {}
  std::size_t size_bytes() const override { return bytes_; }

 private:
  std::size_t bytes_;
};

struct MediumTest : public ::testing::Test {
  MediumTest() : sim(99) {}

  Medium& make(RadioConfig config = lossless()) {
    medium.emplace(sim, config);
    return *medium;
  }

  static RadioConfig lossless() {
    RadioConfig config;
    config.loss_probability = 0.0;
    config.model_collisions = false;
    config.carrier_sense_miss = 0.0;
    return config;
  }

  /// Attaches `n` nodes on a line, one grid unit apart, recording receipts.
  void attach_line(Medium& m, std::size_t n) {
    received.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      m.attach(NodeId{i}, {static_cast<double>(i), 0.0},
               [this, i](const Frame&) { received[i]++; });
    }
  }

  sim::Simulator sim;
  std::optional<Medium> medium;
  std::vector<int> received;
};

TEST_F(MediumTest, BroadcastReachesNodesInRange) {
  RadioConfig config = lossless();
  config.comm_radius = 2.5;
  Medium& m = make(config);
  attach_line(m, 6);

  m.send(Frame{NodeId{0}, std::nullopt, MsgType::kUser,
               std::make_shared<TestPayload>()});
  sim.run_for(Duration::millis(100));

  EXPECT_EQ(received[0], 0) << "sender must not hear itself";
  EXPECT_EQ(received[1], 1);
  EXPECT_EQ(received[2], 1);
  EXPECT_EQ(received[3], 0) << "node at distance 3 > radius 2.5";
  EXPECT_EQ(received[5], 0);
}

TEST_F(MediumTest, UnicastDeliversOnlyToDestination) {
  Medium& m = make();
  attach_line(m, 4);
  m.send(Frame{NodeId{0}, NodeId{2}, MsgType::kUser,
               std::make_shared<TestPayload>()});
  sim.run_for(Duration::millis(100));
  EXPECT_EQ(received[1], 0);
  EXPECT_EQ(received[2], 1);
  EXPECT_EQ(received[3], 0);
}

TEST_F(MediumTest, UnicastOutOfRangeIsLost) {
  RadioConfig config = lossless();
  config.comm_radius = 1.5;
  Medium& m = make(config);
  attach_line(m, 5);
  m.send(Frame{NodeId{0}, NodeId{4}, MsgType::kUser,
               std::make_shared<TestPayload>()});
  sim.run_for(Duration::millis(100));
  EXPECT_EQ(received[4], 0);
  EXPECT_EQ(m.stats().of(MsgType::kUser).lost, 1u);
}

TEST_F(MediumTest, RangeLimitReducesReach) {
  RadioConfig config = lossless();
  config.comm_radius = 6.0;
  Medium& m = make(config);
  attach_line(m, 6);
  Frame frame{NodeId{0}, std::nullopt, MsgType::kHeartbeat,
              std::make_shared<TestPayload>()};
  frame.range_limit = 1.5;  // reduced transmit power
  m.send(std::move(frame));
  sim.run_for(Duration::millis(100));
  EXPECT_EQ(received[1], 1);
  EXPECT_EQ(received[2], 0) << "beyond the per-frame range limit";
}

TEST_F(MediumTest, AirtimeMatchesBitrate) {
  // 16 payload + 7 header bytes at 50 kb/s.
  Medium& m = make();
  attach_line(m, 2);
  m.send(Frame{NodeId{0}, NodeId{1}, MsgType::kUser,
               std::make_shared<TestPayload>(16)});
  sim.run_for(Duration::seconds(1));
  const double expected_s = (16 + 7) * 8.0 / 50'000.0;
  EXPECT_EQ(m.stats().airtime, Duration::seconds(expected_s));
}

TEST_F(MediumTest, RandomLossDropsApproximately) {
  RadioConfig config = lossless();
  config.loss_probability = 0.3;
  Medium& m = make(config);
  attach_line(m, 2);
  for (int i = 0; i < 500; ++i) {
    m.send(Frame{NodeId{0}, NodeId{1}, MsgType::kUser,
                 std::make_shared<TestPayload>(4)});
    sim.run_for(Duration::millis(20));
  }
  EXPECT_NEAR(received[1], 350, 40);
  const auto& stats = m.stats().of(MsgType::kUser);
  EXPECT_EQ(stats.pair_delivered + stats.pair_lost_random,
            stats.pair_attempts);
}

TEST_F(MediumTest, CollisionDestroysOverlappingFrames) {
  RadioConfig config = lossless();
  config.model_collisions = true;
  config.carrier_sense_miss = 1.0;  // senders never defer: force overlap
  Medium& m = make(config);
  // Node 0 and node 2 both in range of node 1.
  attach_line(m, 3);
  m.send(Frame{NodeId{0}, std::nullopt, MsgType::kUser,
               std::make_shared<TestPayload>(64)});
  m.send(Frame{NodeId{2}, std::nullopt, MsgType::kUser,
               std::make_shared<TestPayload>(64)});
  sim.run_for(Duration::seconds(1));
  EXPECT_EQ(received[1], 0) << "simultaneous transmissions must collide";
  EXPECT_GE(m.stats().of(MsgType::kUser).pair_lost_collision, 1u);
}

TEST_F(MediumTest, CsmaAvoidsCollisionWhenSensingWorks) {
  RadioConfig config = lossless();
  config.model_collisions = true;
  config.carrier_sense_miss = 0.0;  // perfect carrier sense
  Medium& m = make(config);
  attach_line(m, 3);
  m.send(Frame{NodeId{0}, std::nullopt, MsgType::kUser,
               std::make_shared<TestPayload>(64)});
  // Second sender queues after the first started: must defer, not collide.
  sim.run_for(Duration::millis(1));
  m.send(Frame{NodeId{2}, std::nullopt, MsgType::kUser,
               std::make_shared<TestPayload>(64)});
  sim.run_for(Duration::seconds(1));
  EXPECT_EQ(received[1], 2);
  EXPECT_EQ(m.stats().of(MsgType::kUser).pair_lost_collision, 0u);
}

TEST_F(MediumTest, HiddenTerminalCollides) {
  RadioConfig config = lossless();
  config.model_collisions = true;
  config.comm_radius = 1.5;
  Medium& m = make(config);
  // 0 and 2 cannot hear each other (distance 2 > 1.5) but both reach 1.
  attach_line(m, 3);
  m.send(Frame{NodeId{0}, std::nullopt, MsgType::kUser,
               std::make_shared<TestPayload>(64)});
  m.send(Frame{NodeId{2}, std::nullopt, MsgType::kUser,
               std::make_shared<TestPayload>(64)});
  sim.run_for(Duration::seconds(1));
  EXPECT_EQ(received[1], 0);
}

TEST_F(MediumTest, HalfDuplexReceiverMissesWhileTransmitting) {
  RadioConfig config = lossless();
  config.model_collisions = true;
  config.carrier_sense_miss = 1.0;
  Medium& m = make(config);
  attach_line(m, 2);
  // Both transmit simultaneously: neither receives the other's frame.
  m.send(Frame{NodeId{0}, NodeId{1}, MsgType::kUser,
               std::make_shared<TestPayload>(64)});
  m.send(Frame{NodeId{1}, NodeId{0}, MsgType::kUser,
               std::make_shared<TestPayload>(64)});
  sim.run_for(Duration::seconds(1));
  EXPECT_EQ(received[0], 0);
  EXPECT_EQ(received[1], 0);
}

TEST_F(MediumTest, QueueOverflowDropsFrames) {
  RadioConfig config = lossless();
  config.tx_queue_capacity = 2;
  Medium& m = make(config);
  attach_line(m, 2);
  for (int i = 0; i < 10; ++i) {
    m.send(Frame{NodeId{0}, NodeId{1}, MsgType::kUser,
                 std::make_shared<TestPayload>(200)});
  }
  sim.run_for(Duration::seconds(2));
  EXPECT_GT(m.stats().of(MsgType::kUser).mac_dropped, 0u);
  // Offered = transmitted + dropped.
  const auto& stats = m.stats().of(MsgType::kUser);
  EXPECT_EQ(stats.offered, stats.transmitted + stats.mac_dropped);
}

TEST_F(MediumTest, NeighborsAndRangeQueries) {
  RadioConfig config = lossless();
  config.comm_radius = 2.0;
  Medium& m = make(config);
  attach_line(m, 5);
  const auto neighbors = m.neighbors(NodeId{2});
  ASSERT_EQ(neighbors.size(), 4u);  // 0,1,3,4 all within 2.0
  EXPECT_TRUE(m.in_range(NodeId{0}, NodeId{2}));
  EXPECT_FALSE(m.in_range(NodeId{0}, NodeId{3}));
}

TEST_F(MediumTest, UtilizationAccountsAllBits) {
  Medium& m = make();
  attach_line(m, 2);
  for (int i = 0; i < 10; ++i) {
    m.send(Frame{NodeId{0}, NodeId{1}, MsgType::kUser,
                 std::make_shared<TestPayload>(18)});
    sim.run_for(Duration::millis(100));
  }
  // 10 frames x (18+7) bytes x 8 bits over 1 second at 50 kb/s = 4%.
  EXPECT_EQ(m.stats().bits_sent, 10u * 25u * 8u);
  EXPECT_NEAR(m.stats().link_utilization(Duration::seconds(1), 50'000.0),
              0.04, 0.001);
}

TEST_F(MediumTest, PerTypeStatsAreSeparate) {
  Medium& m = make();
  attach_line(m, 2);
  m.send(Frame{NodeId{0}, NodeId{1}, MsgType::kHeartbeat,
               std::make_shared<TestPayload>()});
  m.send(Frame{NodeId{0}, NodeId{1}, MsgType::kReport,
               std::make_shared<TestPayload>()});
  sim.run_for(Duration::seconds(1));
  EXPECT_EQ(m.stats().of(MsgType::kHeartbeat).transmitted, 1u);
  EXPECT_EQ(m.stats().of(MsgType::kReport).transmitted, 1u);
  EXPECT_EQ(m.stats().of(MsgType::kUser).transmitted, 0u);
  EXPECT_EQ(m.stats().totals().transmitted, 2u);
}

TEST_F(MediumTest, BackoffExhaustionDropsFrame) {
  RadioConfig config = lossless();
  config.model_collisions = true;
  config.max_backoff_attempts = 2;
  config.backoff_slot = Duration::micros(100);
  Medium& m = make(config);
  attach_line(m, 3);
  // Saturate the channel with a giant frame, then offer another: the
  // second sender backs off twice and gives up.
  m.send(Frame{NodeId{0}, std::nullopt, MsgType::kCrossTraffic,
               std::make_shared<TestPayload>(20000)});  // ~3.2 s airtime
  sim.run_for(Duration::millis(1));
  m.send(Frame{NodeId{1}, std::nullopt, MsgType::kUser,
               std::make_shared<TestPayload>()});
  sim.run_for(Duration::seconds(5));
  EXPECT_EQ(m.stats().of(MsgType::kUser).mac_dropped, 1u);
}

TEST_F(MediumTest, BurstLossAccountedSeparatelyAndClustered) {
  // Gilbert–Elliott channel with a perfect good state and a hopeless bad
  // state: every loss is a burst loss, and drops arrive in runs whose
  // length reflects the bad-state sojourn time (~0.5 s here), not as
  // isolated i.i.d. events.
  RadioConfig config = lossless();
  config.burst_loss.enabled = true;
  config.burst_loss.mean_good = Duration::seconds(1);
  config.burst_loss.mean_bad = Duration::seconds(0.5);
  config.burst_loss.loss_good = 0.0;
  config.burst_loss.loss_bad = 1.0;
  Medium& m = make(config);
  attach_line(m, 2);

  std::vector<bool> delivered;
  int before = 0;
  for (int i = 0; i < 600; ++i) {
    m.send(Frame{NodeId{0}, NodeId{1}, MsgType::kUser,
                 std::make_shared<TestPayload>()});
    sim.run_for(Duration::millis(10));
    delivered.push_back(received[1] > before);
    before = received[1];
  }

  const TypeStats& user = m.stats().of(MsgType::kUser);
  EXPECT_GT(user.pair_lost_burst, 0u);
  EXPECT_EQ(user.pair_lost_random, 0u)
      << "with loss_good = 0 every drop must be charged to the burst state";
  EXPECT_GT(user.pair_delivered, 0u);

  // Longest runs of each kind: at 10 ms spacing a 0.5 s mean bad sojourn
  // yields tens of consecutive losses, and vice versa for the good state.
  std::size_t longest_loss = 0, longest_ok = 0, run = 0;
  bool last = delivered.front();
  for (bool ok : delivered) {
    run = (ok == last) ? run + 1 : 1;
    last = ok;
    (ok ? longest_ok : longest_loss) = std::max(ok ? longest_ok : longest_loss, run);
  }
  EXPECT_GE(longest_loss, 10u) << "burst losses must cluster";
  EXPECT_GE(longest_ok, 10u) << "good-state deliveries must cluster";
}

TEST_F(MediumTest, BurstLossDisabledChargesNothingToBurstCounter) {
  RadioConfig config = lossless();
  config.loss_probability = 0.5;
  Medium& m = make(config);
  attach_line(m, 2);
  for (int i = 0; i < 50; ++i) {
    m.send(Frame{NodeId{0}, NodeId{1}, MsgType::kUser,
                 std::make_shared<TestPayload>()});
    sim.run_for(Duration::millis(10));
  }
  EXPECT_GT(m.stats().of(MsgType::kUser).pair_lost_random, 0u);
  EXPECT_EQ(m.stats().of(MsgType::kUser).pair_lost_burst, 0u);
}

TEST_F(MediumTest, BlackoutSilencesNodeBothWays) {
  Medium& m = make();
  attach_line(m, 3);
  m.set_node_blackout(NodeId{1}, true);
  EXPECT_TRUE(m.node_blackout(NodeId{1}));

  // Inbound: node 1 hears nothing while blacked out.
  m.send(Frame{NodeId{0}, std::nullopt, MsgType::kUser,
               std::make_shared<TestPayload>()});
  sim.run_for(Duration::millis(100));
  EXPECT_EQ(received[1], 0);
  EXPECT_EQ(received[2], 1);

  // Outbound: node 1's own transmissions die in the antenna.
  m.send(Frame{NodeId{1}, std::nullopt, MsgType::kUser,
               std::make_shared<TestPayload>()});
  sim.run_for(Duration::millis(100));
  EXPECT_EQ(received[0], 0) << "node 1's broadcast must not leave the node";
  EXPECT_EQ(m.stats().of(MsgType::kUser).mac_dropped, 1u);

  // Lifting the blackout restores both directions.
  m.set_node_blackout(NodeId{1}, false);
  m.send(Frame{NodeId{0}, std::nullopt, MsgType::kUser,
               std::make_shared<TestPayload>()});
  sim.run_for(Duration::millis(100));
  EXPECT_EQ(received[1], 1);
}

}  // namespace
}  // namespace et::radio
