#include <gtest/gtest.h>

#include <algorithm>

#include "fuzz/generator.hpp"
#include "fuzz/shrink.hpp"
#include "fuzz/trial.hpp"

/// The chaos fuzzer's building blocks: artifact JSON round-trips, seeded
/// generator determinism, the stacked-oracle trial runner, and the
/// delta-debugging shrinker (driven by a synthetic predicate so its search
/// behaviour is testable without real failures).
namespace et::fuzz {
namespace {

/// Small, fast artifact for real trial runs: 12 motes, quick traverse.
ReproArtifact tiny_artifact() {
  ReproArtifact artifact;
  artifact.seed = 7;
  artifact.scenario.rows = 2;
  artifact.scenario.cols = 6;
  artifact.scenario.speed_hops_per_s = 2.0;
  artifact.scenario.cooldown = Duration::seconds(2);
  artifact.plan.crash_for(Time::seconds(2), NodeId{4},
                          Duration::seconds(1));
  artifact.plan.radio_blackout(Time::seconds(3), NodeId{7},
                               Duration::millis(800));
  return artifact;
}

TEST(ChaosArtifact, JsonRoundTripIsByteStable) {
  ReproArtifact artifact = generate_artifact(42);
  artifact.expect_failure = "invariant:dual-leader";
  const std::string text = artifact.to_json_string();
  const Expected<ReproArtifact> round =
      ReproArtifact::from_json_string(text);
  if (!round.ok()) FAIL() << round.error().message;
  EXPECT_EQ(round.value().to_json_string(), text);
  EXPECT_EQ(round.value().seed, artifact.seed);
  EXPECT_EQ(round.value().expect_failure, artifact.expect_failure);
  EXPECT_EQ(round.value().plan.events().size(),
            artifact.plan.events().size());
}

TEST(ChaosArtifact, RejectsMalformedDocuments) {
  EXPECT_FALSE(ReproArtifact::from_json_string("not json").ok());
  EXPECT_FALSE(ReproArtifact::from_json_string("{}").ok());
  EXPECT_FALSE(
      ReproArtifact::from_json_string("{\"format\": \"wrong\"}").ok());
  // A plan referencing motes beyond the deployment is rejected at parse.
  ReproArtifact artifact = tiny_artifact();
  artifact.plan.crash(Time::seconds(1), NodeId{400});
  EXPECT_FALSE(
      ReproArtifact::from_json_string(artifact.to_json_string()).ok());
}

TEST(ChaosGenerator, DeterministicPerSeed) {
  const ReproArtifact a = generate_artifact(123);
  const ReproArtifact b = generate_artifact(123);
  const ReproArtifact c = generate_artifact(124);
  EXPECT_EQ(a.to_json_string(), b.to_json_string());
  EXPECT_NE(a.to_json_string(), c.to_json_string());
}

TEST(ChaosGenerator, ArtifactsAreValidAndDiverse) {
  bool saw_partition = false;
  bool saw_per_node = false;
  bool saw_wide = false;
  bool saw_narrow = false;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const ReproArtifact artifact = generate_artifact(seed);
    EXPECT_TRUE(artifact.plan.construction_problems().empty())
        << "seed " << seed;
    EXPECT_TRUE(
        artifact.plan.validate(artifact.scenario.node_count()).empty())
        << "seed " << seed;
    EXPECT_FALSE(artifact.plan.events().empty()) << "seed " << seed;
    for (const fault::FaultEvent& event : artifact.plan.events()) {
      saw_partition |= event.kind == fault::FaultKind::kPartitionStart;
      saw_per_node |= fault_kind_is_per_node(event.kind);
    }
    saw_wide |= artifact.scenario.wide_windows;
    saw_narrow |= !artifact.scenario.wide_windows;
  }
  EXPECT_TRUE(saw_partition) << "40 seeds must cover partitions";
  EXPECT_TRUE(saw_per_node);
  EXPECT_TRUE(saw_wide && saw_narrow)
      << "both window modes must be exercised";
}

TEST(ChaosTrial, CleanArtifactPassesAllOracles) {
  const TrialResult result = run_trial(tiny_artifact());
  EXPECT_TRUE(result.verdict.ok()) << result.verdict.summary();
  EXPECT_EQ(result.faults_scheduled, 4u);
  // All four oracle families ran on the serial run, and the differential
  // compared the kernels.
  const std::vector<std::string>& ran = result.verdict.oracles_run();
  const auto ran_oracle = [&](const std::string& name) {
    return std::find(ran.begin(), ran.end(), name) != ran.end();
  };
  EXPECT_TRUE(ran_oracle("serial/invariants"));
  EXPECT_TRUE(ran_oracle("serial/serve-validate"));
  EXPECT_TRUE(ran_oracle("serial/watchdog"));
  EXPECT_TRUE(ran_oracle("parallel/invariants"));
  EXPECT_TRUE(ran_oracle("differential"));
  EXPECT_FALSE(result.digest.empty());
}

TEST(ChaosTrial, DigestIsDeterministic) {
  const TrialResult a = run_trial(tiny_artifact());
  const TrialResult b = run_trial(tiny_artifact());
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.verdict.to_json().dump(), b.verdict.to_json().dump());
}

TEST(ChaosTrial, ExpectationMatching) {
  ReproArtifact artifact = tiny_artifact();
  metrics::ChaosVerdict clean;
  clean.pass("serial/invariants");
  metrics::ChaosVerdict failed;
  failed.fail("serial/invariant:dual-leader", "nodes 1 2 co-led");

  EXPECT_TRUE(matches_expectation(artifact, clean));
  EXPECT_FALSE(matches_expectation(artifact, failed));

  artifact.expect_failure = "invariant:dual-leader";
  EXPECT_FALSE(matches_expectation(artifact, clean));
  EXPECT_TRUE(matches_expectation(artifact, failed))
      << "kernel prefix must be stripped before matching";

  artifact.expect_failure = "watchdog";
  EXPECT_FALSE(matches_expectation(artifact, failed));
}

// --- Shrinker, driven by a synthetic predicate -------------------------

/// "Fails" iff the plan still crashes node 5 and the grid keeps >= 8
/// columns — everything else is noise the shrinker should strip.
bool synthetic_failure(const ReproArtifact& artifact) {
  if (artifact.scenario.cols < 8) return false;
  for (const fault::FaultEvent& event : artifact.plan.events()) {
    if (event.kind == fault::FaultKind::kCrash &&
        event.node.value() == 5) {
      return true;
    }
  }
  return false;
}

ReproArtifact noisy_failing_artifact() {
  ReproArtifact artifact;
  artifact.seed = 9;
  artifact.scenario.rows = 4;
  artifact.scenario.cols = 12;
  artifact.scenario.harass = true;
  artifact.scenario.ge_loss = true;
  artifact.scenario.duty_cycle_awake_fraction = 0.8;
  artifact.plan.crash(Time::seconds(8), NodeId{5});  // the culprit
  artifact.plan.crash_for(Time::seconds(2), NodeId{11},
                          Duration::seconds(1));
  artifact.plan.radio_blackout(Time::seconds(3), NodeId{17},
                               Duration::seconds(1));
  artifact.plan.sensor_dropout(Time::seconds(4), NodeId{23},
                               Duration::seconds(1));
  fault::PartitionSpec spec;
  spec.components.push_back({NodeId{1}, NodeId{2}, NodeId{3}});
  artifact.plan.burst_partition(Time::seconds(5), spec,
                                Duration::seconds(1),
                                Duration::seconds(1), 2);
  return artifact;
}

TEST(ChaosShrink, MinimizesToTheCulprit) {
  const ReproArtifact original = noisy_failing_artifact();
  ASSERT_TRUE(synthetic_failure(original));

  ShrinkStats stats;
  const ReproArtifact shrunk =
      shrink_artifact(original, synthetic_failure, {}, &stats);

  EXPECT_TRUE(synthetic_failure(shrunk))
      << "the shrunk artifact must still fail";
  EXPECT_EQ(shrunk.plan.events().size(), 1u)
      << "every fault except the culprit crash must be dropped";
  EXPECT_EQ(shrunk.plan.events().front().kind, fault::FaultKind::kCrash);
  EXPECT_EQ(shrunk.plan.events().front().node.value(), 5u);
  EXPECT_EQ(shrunk.scenario.cols, 8u)
      << "columns shrink to the predicate's floor";
  EXPECT_EQ(shrunk.scenario.rows, 2u);
  EXPECT_FALSE(shrunk.scenario.harass);
  EXPECT_FALSE(shrunk.scenario.ge_loss);
  EXPECT_DOUBLE_EQ(shrunk.scenario.duty_cycle_awake_fraction, 1.0);
  EXPECT_LE(shrunk.plan.events().front().at, Time::seconds(2))
      << "fault times are pulled earlier";
  EXPECT_GT(stats.accepted, 0u);
  EXPECT_GE(stats.attempts, stats.accepted);
}

TEST(ChaosShrink, NeverReturnsAPassingArtifact) {
  // A predicate that stops failing once anything is removed: the shrinker
  // must return the original unchanged.
  const ReproArtifact original = noisy_failing_artifact();
  const std::size_t original_events = original.plan.events().size();
  const auto only_original = [&](const ReproArtifact& candidate) {
    return candidate.plan.events().size() == original_events &&
           candidate.scenario.cols == original.scenario.cols &&
           candidate.scenario.harass && candidate.scenario.ge_loss;
  };
  const ReproArtifact shrunk = shrink_artifact(original, only_original);
  EXPECT_EQ(shrunk.plan.events().size(), original_events);
  EXPECT_TRUE(shrunk.scenario.harass);
}

TEST(ChaosShrink, RespectsAttemptBudget) {
  ShrinkOptions options;
  options.max_attempts = 5;
  ShrinkStats stats;
  shrink_artifact(noisy_failing_artifact(), synthetic_failure, options,
                  &stats);
  EXPECT_LE(stats.attempts, 5u);
}

}  // namespace
}  // namespace et::fuzz
