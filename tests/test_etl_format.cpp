#include "etl/format.hpp"

#include <gtest/gtest.h>

#include "etl/parser.hpp"

namespace et::etl {
namespace {

std::string reformat(std::string_view source) {
  auto program = parse(source);
  EXPECT_TRUE(program.ok())
      << (program.ok() ? "" : program.error().to_string());
  return program.ok() ? format_program(program.value()) : "";
}

std::string format_expression(std::string_view source) {
  auto expr = parse_expression(source);
  EXPECT_TRUE(expr.ok());
  return expr.ok() ? format_expr(*expr.value()) : "";
}

TEST(Format, ExpressionCanonicalization) {
  EXPECT_EQ(format_expression("1+2*3"), "1 + 2 * 3");
  EXPECT_EQ(format_expression("(1+2)*3"), "(1 + 2) * 3");
  EXPECT_EQ(format_expression("1*(2+3)"), "1 * (2 + 3)");
  EXPECT_EQ(format_expression("not (a and b)"), "not (a and b)");
  EXPECT_EQ(format_expression("a and b or c"), "a and b or c");
  EXPECT_EQ(format_expression("a and (b or c)"), "a and (b or c)");
  EXPECT_EQ(format_expression("-x + 1"), "-x + 1");
  EXPECT_EQ(format_expression("self.x > state(\"k\")"),
            "self.x > state(\"k\")");
}

TEST(Format, RedundantParenthesesDropped) {
  EXPECT_EQ(format_expression("((1) + (2))"), "1 + 2");
  EXPECT_EQ(format_expression("(a) and ((b))"), "a and b");
}

TEST(Format, LeftAssociativityPreserved) {
  // 2 - 3 - 4 is (2-3)-4; formatting must not turn it into 2-(3-4).
  EXPECT_EQ(format_expression("2 - 3 - 4"), "2 - 3 - 4");
  EXPECT_EQ(format_expression("2 - (3 - 4)"), "2 - (3 - 4)");
  EXPECT_EQ(format_expression("8 / 4 / 2"), "8 / 4 / 2");
  EXPECT_EQ(format_expression("8 / (4 / 2)"), "8 / (4 / 2)");
}

TEST(Format, DurationsRenderInLargestExactUnit) {
  EXPECT_EQ(reformat(R"(
    begin context c
      activation: s();
      begin object o
        invocation: TIMER(1500ms)
        m() { }
      end
    end context
  )").find("TIMER(1500ms)") != std::string::npos, true);
  EXPECT_NE(reformat(R"(
    begin context c
      activation: s();
      begin object o
        invocation: TIMER(2s)
        m() { }
      end
    end context
  )").find("TIMER(2s)"), std::string::npos);
}

TEST(Format, FullProgramStructure) {
  const std::string out = reformat(R"(
    begin context fire
      activation: temperature>180 and light>0.5;
      deactivation: temperature<60;
      heat : max(temperature) confidence=3, freshness=3s;
      begin object monitor
        invocation: when (heat > 100)
        alarm() { if (heat > 200) { log("inferno", heat); }
                  else { setState("level", 1); } }
        invocation: message
        command() { setState("mode", arg(0)); }
      end
    end context
  )");
  EXPECT_NE(out.find("begin context fire"), std::string::npos);
  EXPECT_NE(out.find("activation: temperature > 180 and light > 0.5;"),
            std::string::npos);
  EXPECT_NE(out.find("deactivation: temperature < 60;"), std::string::npos);
  EXPECT_NE(out.find("heat : max(temperature) confidence=3, freshness=3s;"),
            std::string::npos);
  EXPECT_NE(out.find("invocation: when (heat > 100)"), std::string::npos);
  EXPECT_NE(out.find("invocation: message"), std::string::npos);
  EXPECT_NE(out.find("} else {"), std::string::npos);
}

/// The round-trip property: format(parse(s)) reparses to a program that
/// formats identically (format is a fixed point after one pass).
class RoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTrip, FormatParseFormatIsStable) {
  auto first = parse(GetParam());
  ASSERT_TRUE(first.ok()) << first.error().to_string();
  const std::string once = format_program(first.value());
  auto second = parse(once);
  ASSERT_TRUE(second.ok()) << "formatted output failed to parse:\n"
                           << once << "\n"
                           << second.error().to_string();
  EXPECT_EQ(format_program(second.value()), once);
}

TEST(Format, ElseIfChainsResugar) {
  const std::string out = reformat(R"(
    begin context c
      activation: s();
      v : avg(magnetic) confidence=1, freshness=1s;
      begin object o
        invocation: TIMER(1s)
        m() {
          if (v > 10) { log("high"); }
          else { if (v > 5) { log("mid"); } else { log("low"); } }
        }
      end
    end context
  )");
  EXPECT_NE(out.find("} else if (v > 5) {"), std::string::npos) << out;
  EXPECT_NE(out.find("} else {"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    Programs, RoundTrip,
    ::testing::Values(
        R"(begin context t
             activation: m();
             location : avg(position) confidence=2, freshness=1s;
             begin object r
               invocation: TIMER(5s)
               report() { send(base, self.label, location); }
             end
           end context)",
        R"(begin context fire
             activation: temperature > 180;
             deactivation: temperature < 60;
             a : avg(temperature);
             b : centroid(temperature) confidence=4;
           end context
           begin context car
             activation: magnetic > 2 or acoustic > 5;
           end context)",
        R"(begin context x
             activation: s();
             v : sum(light, temperature) freshness=250ms;
             begin object o
               invocation: when (v >= 10 and not (v > 100))
               m() {
                 if (v == 50) { log("mid"); } else { log("other", v / 2); }
                 setState("seen", state("seen") + 1);
               }
             end
           end context)",
        R"(begin context chain
             activation: s();
             v : avg(magnetic);
             begin object o
               invocation: TIMER(1s)
               m() {
                 if (v > 10) { log("a"); }
                 else if (v > 5) { log("b"); }
                 else { log("c"); }
               }
             end
           end context)"));

}  // namespace
}  // namespace et::etl
