#include <gtest/gtest.h>

#include "test_world.hpp"

/// Long-horizon soak: one simulated hour of perpetual handovers on a lossy
/// channel. Guards against resource leaks that only show up over time —
/// growing event queues (uncancelled timers), unbounded dedup caches, or
/// protocol livelock.
namespace et::test {
namespace {

TEST(Soak, OneSimulatedHourStaysBounded) {
  TestWorld::Options options;
  options.cols = 10;
  options.loss_probability = 0.1;
  options.model_collisions = true;
  TestWorld world(options);

  // A target orbiting through the field forever: the group hands over,
  // dissolves (orbit leaves coverage), and re-forms continuously.
  env::Target orbiter;
  orbiter.type = "blob";
  orbiter.trajectory = std::make_unique<env::CircularTrajectory>(
      Vec2{4.5, 1.0}, 3.0, 0.4);
  orbiter.radius = env::RadiusProfile::constant(1.2);
  world.env().add_target(std::move(orbiter));

  std::size_t max_pending = 0;
  for (int block = 0; block < 6; ++block) {
    world.run(600);  // 10 simulated minutes
    max_pending = std::max(max_pending, world.sim().pending_events());
  }

  // The pending-event set must stay O(deployment), not O(time).
  EXPECT_LT(max_pending, 500u) << "event queue grows without bound";
  EXPECT_GT(world.sim().events_fired(), 500'000u);

  // The protocol still functions after an hour: coherent tracking resumes
  // whenever the orbit passes through coverage.
  const auto created =
      world.events().count(core::GroupEvent::Kind::kLabelCreated);
  EXPECT_GT(created, 10u) << "re-forms on every orbital pass";
  EXPECT_GT(world.events().count(core::GroupEvent::Kind::kRelinquish), 10u);
}

}  // namespace
}  // namespace et::test
