#include "etl/compiler.hpp"

#include <gtest/gtest.h>

namespace et::etl {
namespace {

struct CompilerTest : public ::testing::Test {
  CompilerTest() {
    senses.add("magnetic_sensor_reading",
               [](const node::Mote&) { return false; });
    options.destinations["pursuer"] = NodeId{0};
  }

  Expected<std::vector<core::ContextTypeSpec>> run(std::string_view src) {
    return compile_source(src, senses, aggregations, options);
  }

  std::vector<core::ContextTypeSpec> run_ok(std::string_view src) {
    auto specs = run(src);
    EXPECT_TRUE(specs.ok()) << (specs.ok() ? "" : specs.error().to_string());
    return specs.ok() ? std::move(specs).value()
                      : std::vector<core::ContextTypeSpec>{};
  }

  void expect_error(std::string_view src, std::string_view fragment) {
    auto specs = run(src);
    ASSERT_FALSE(specs.ok()) << "expected compile failure";
    EXPECT_NE(specs.error().message.find(fragment), std::string::npos)
        << specs.error().message;
  }

  core::SenseRegistry senses;
  core::AggregationRegistry aggregations =
      core::AggregationRegistry::with_builtins();
  CompileOptions options;
};

constexpr const char* kFig2 = R"(
begin context tracker
  activation: magnetic_sensor_reading();
  location : avg(position) confidence=2, freshness=1s;
  begin object reporter
    invocation: TIMER(5s)
    report() { send(pursuer, self.label, location); }
  end
end context
)";

TEST_F(CompilerTest, Figure2CompilesToSpec) {
  const auto specs = run_ok(kFig2);
  ASSERT_EQ(specs.size(), 1u);
  const core::ContextTypeSpec& spec = specs[0];
  EXPECT_EQ(spec.name, "tracker");
  EXPECT_EQ(spec.activation, "__tracker_activation");
  EXPECT_TRUE(senses.contains("__tracker_activation"));

  ASSERT_EQ(spec.variables.size(), 1u);
  EXPECT_EQ(spec.variables[0].name, "location");
  EXPECT_EQ(spec.variables[0].aggregation, "avg");
  EXPECT_EQ(spec.variables[0].sensor, "position");
  EXPECT_EQ(spec.variables[0].critical_mass, 2u);
  EXPECT_EQ(spec.variables[0].freshness, Duration::seconds(1));

  ASSERT_EQ(spec.objects.size(), 1u);
  ASSERT_EQ(spec.objects[0].methods.size(), 1u);
  const core::MethodSpec& method = spec.objects[0].methods[0];
  EXPECT_EQ(method.invocation.kind, core::InvocationSpec::Kind::kTimer);
  EXPECT_EQ(method.invocation.period, Duration::seconds(5));
  EXPECT_TRUE(static_cast<bool>(method.body));
}

TEST_F(CompilerTest, DefaultsApplied) {
  options.default_confidence = 3;
  options.default_freshness = Duration::seconds(7);
  const auto specs = run_ok(R"(
    begin context c
      activation: magnetic_sensor_reading();
      v : sum(magnetic);
    end context
  )");
  EXPECT_EQ(specs[0].variables[0].critical_mass, 3u);
  EXPECT_EQ(specs[0].variables[0].freshness, Duration::seconds(7));
}

TEST_F(CompilerTest, ThresholdActivationNeedsNoRegisteredFunction) {
  const auto specs = run_ok(R"(
    begin context fire
      activation: temperature > 180 and light > 0.5;
    end context
  )");
  EXPECT_TRUE(senses.contains("__fire_activation"));
  EXPECT_EQ(specs[0].variables.size(), 0u);
}

TEST_F(CompilerTest, DeactivationRegistered) {
  run_ok(R"(
    begin context fire
      activation: temperature > 180;
      deactivation: temperature < 60;
    end context
  )");
  EXPECT_TRUE(senses.contains("__fire_deactivation"));
}

TEST_F(CompilerTest, ConditionMethodCompiles) {
  const auto specs = run_ok(R"(
    begin context c
      activation: magnetic_sensor_reading();
      heat : avg(temperature) confidence=1, freshness=2s;
      begin object o
        invocation: when (heat > 100)
        m() { log("hot", heat); }
      end
    end context
  )");
  const auto& method = specs[0].objects[0].methods[0];
  EXPECT_EQ(method.invocation.kind, core::InvocationSpec::Kind::kCondition);
  EXPECT_TRUE(static_cast<bool>(method.invocation.condition));
}

TEST_F(CompilerTest, PortNumberingAcrossObjects) {
  const auto specs = run_ok(R"(
    begin context c
      activation: magnetic_sensor_reading();
      begin object a
        invocation: TIMER(1s)
        m1() { }
        invocation: TIMER(1s)
        m2() { }
      end
      begin object b
        invocation: TIMER(1s)
        m3() { }
      end
    end context
  )");
  const core::ContextTypeSpec& spec = specs[0];
  EXPECT_EQ(spec.method_count(), 3u);
  EXPECT_EQ(spec.port_of("a", "m2"), 1u);
  EXPECT_EQ(spec.port_of("b", "m3"), 2u);
  EXPECT_EQ(spec.method_at(2)->name, "m3");
  EXPECT_EQ(spec.method_at(9), nullptr);
  EXPECT_FALSE(spec.port_of("b", "nope").has_value());
}

// --- Semantic errors ---

TEST_F(CompilerTest, ErrorUnknownSenseFunction) {
  expect_error(R"(
    begin context c
      activation: nonexistent_sensor();
    end context
  )", "unknown sense function");
}

TEST_F(CompilerTest, ErrorUnknownAggregation) {
  expect_error(R"(
    begin context c
      activation: magnetic_sensor_reading();
      v : trimmed_mean(magnetic);
    end context
  )", "unknown aggregation");
}

TEST_F(CompilerTest, ErrorUnknownSendDestination) {
  expect_error(R"(
    begin context c
      activation: magnetic_sensor_reading();
      begin object o
        invocation: TIMER(1s)
        m() { send(nowhere); }
      end
    end context
  )", "unknown send destination");
}

TEST_F(CompilerTest, ErrorUndeclaredAggregateVariable) {
  expect_error(R"(
    begin context c
      activation: magnetic_sensor_reading();
      begin object o
        invocation: TIMER(1s)
        m() { log(undeclared); }
      end
    end context
  )", "unknown aggregate variable");
}

TEST_F(CompilerTest, ErrorSelfInActivation) {
  expect_error(R"(
    begin context c
      activation: self.x > 2;
    end context
  )", "'self' is not available");
}

TEST_F(CompilerTest, ErrorBadConfidence) {
  expect_error(R"(
    begin context c
      activation: magnetic_sensor_reading();
      v : avg(magnetic) confidence=2.5;
    end context
  )", "positive integer");
}

TEST_F(CompilerTest, ErrorDuplicateContext) {
  expect_error(R"(
    begin context c
      activation: magnetic_sensor_reading();
    end context
    begin context c
      activation: magnetic_sensor_reading();
    end context
  )", "duplicate context");
}

TEST_F(CompilerTest, ErrorDuplicateVariable) {
  expect_error(R"(
    begin context c
      activation: magnetic_sensor_reading();
      v : avg(magnetic);
      v : sum(magnetic);
    end context
  )", "duplicate aggregate variable");
}

TEST_F(CompilerTest, ErrorUnknownBodyFunction) {
  expect_error(R"(
    begin context c
      activation: magnetic_sensor_reading();
      begin object o
        invocation: TIMER(1s)
        m() { log(rand()); }
      end
    end context
  )", "unknown function");
}

TEST_F(CompilerTest, ErrorUnknownSelfMember) {
  expect_error(R"(
    begin context c
      activation: magnetic_sensor_reading();
      begin object o
        invocation: TIMER(1s)
        m() { log(self.altitude); }
      end
    end context
  )", "unknown self member");
}

TEST_F(CompilerTest, ParseErrorsPropagate) {
  expect_error("begin context", "expected");
}

}  // namespace
}  // namespace et::etl
