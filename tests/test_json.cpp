#include "util/json.hpp"

#include <gtest/gtest.h>

/// The JSON document model underpinning chaos repro artifacts: parsing,
/// exact integer round-trips, deterministic serialization, and loud
/// rejection of malformed documents.
namespace et::util {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse_json("null").value().is_null());
  EXPECT_EQ(parse_json("true").value().as_bool(), true);
  EXPECT_EQ(parse_json("false").value().as_bool(true), false);
  EXPECT_DOUBLE_EQ(parse_json("2.5").value().as_double(), 2.5);
  EXPECT_EQ(parse_json("\"hi\"").value().as_string(), "hi");
}

TEST(Json, IntegersStayExact) {
  // Microsecond timestamps must survive a round-trip bit for bit; a
  // double-only model would corrupt values above 2^53.
  const std::int64_t big = (std::int64_t{1} << 62) + 12345;
  const Json parsed = parse_json(std::to_string(big)).value();
  ASSERT_TRUE(parsed.is_int());
  EXPECT_EQ(parsed.as_int(), big);
  EXPECT_EQ(parsed.dump(), std::to_string(big));
}

TEST(Json, FractionalNumbersAreNotInts) {
  const Json parsed = parse_json("1.5").value();
  EXPECT_TRUE(parsed.is_number());
  EXPECT_FALSE(parsed.is_int());
}

TEST(Json, ObjectsPreserveInsertionOrder) {
  Json doc = Json::object();
  doc.set("zebra", 1);
  doc.set("apple", 2);
  doc.set("zebra", 3);  // replaced in place, position kept
  EXPECT_EQ(doc.dump(), "{\"zebra\":3,\"apple\":2}");
}

TEST(Json, NestedRoundTrip) {
  const std::string text =
      "{\"events\": [{\"at_us\": 1500000, \"kind\": \"crash\", \"node\": "
      "7}], \"partitions\": [], \"note\": \"a \\\"quoted\\\" string\"}";
  const Json doc = parse_json(text).value();
  EXPECT_EQ(doc["events"].items()[0]["at_us"].as_int(), 1500000);
  EXPECT_EQ(doc["events"].items()[0]["kind"].as_string(), "crash");
  EXPECT_EQ(doc["note"].as_string(), "a \"quoted\" string");
  // dump -> parse -> dump is a fixed point.
  const std::string once = doc.dump(2);
  EXPECT_EQ(parse_json(once).value().dump(2), once);
}

TEST(Json, MissingMemberIsNullSentinel) {
  const Json doc = parse_json("{\"a\": 1}").value();
  EXPECT_TRUE(doc["missing"].is_null());
  // Lookups chain through the sentinel without crashing.
  EXPECT_TRUE(doc["missing"]["deeper"].is_null());
  EXPECT_FALSE(doc.contains("missing"));
  EXPECT_TRUE(doc.contains("a"));
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_FALSE(parse_json("").ok());
  EXPECT_FALSE(parse_json("{").ok());
  EXPECT_FALSE(parse_json("[1,]").ok());
  EXPECT_FALSE(parse_json("{\"a\" 1}").ok());
  EXPECT_FALSE(parse_json("\"unterminated").ok());
  EXPECT_FALSE(parse_json("nul").ok());
  EXPECT_FALSE(parse_json("1 trailing").ok());
  const auto err = parse_json("{\"a\": }");
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.error().code, "json_parse");
  EXPECT_FALSE(err.error().message.empty());
}

TEST(Json, RejectsRunawayNesting) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += '[';
  for (int i = 0; i < 200; ++i) deep += ']';
  EXPECT_FALSE(parse_json(deep).ok());
}

TEST(Json, EscapesControlCharacters) {
  Json doc = Json::object();
  doc.set("s", std::string("tab\there\nnew"));
  const std::string text = doc.dump();
  EXPECT_NE(text.find("\\t"), std::string::npos);
  EXPECT_NE(text.find("\\n"), std::string::npos);
  EXPECT_EQ(parse_json(text).value()["s"].as_string(), "tab\there\nnew");
}

TEST(Json, NonFiniteNumbersSerializeAsNull) {
  Json doc = Json::array();
  doc.push_back(Json(0.0 / 0.0));
  EXPECT_EQ(doc.dump(), "[null]");
}

TEST(Json, EqualityIsStructural) {
  const Json a = parse_json("{\"x\": [1, 2, {\"y\": true}]}").value();
  const Json b = parse_json("{\"x\": [1, 2, {\"y\": true}]}").value();
  const Json c = parse_json("{\"x\": [1, 2, {\"y\": false}]}").value();
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace et::util
