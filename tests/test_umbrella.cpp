#include "envirotrack/envirotrack.hpp"

#include <gtest/gtest.h>

/// The umbrella header must be self-sufficient: a complete (small)
/// application written against it alone.
namespace {

TEST(Umbrella, EndToEndApplication) {
  et::sim::Simulator sim(1);
  et::env::Environment environment(sim.make_rng("env"));
  const et::env::Field field = et::env::Field::grid(3, 8);

  et::env::Target blob;
  blob.type = "thing";
  blob.trajectory =
      std::make_unique<et::env::StationaryTrajectory>(et::Vec2{3.5, 1.0});
  blob.radius = et::env::RadiusProfile::constant(1.2);
  environment.add_target(std::move(blob));

  et::core::EnviroTrackSystem system(sim, environment, field);
  system.senses().add("thing_sensor", et::core::sense_target("thing"));
  et::core::ContextTypeSpec spec;
  spec.name = "thing";
  spec.activation = "thing_sensor";
  spec.variables.push_back(et::core::AggregateVarSpec{
      "where", "avg", "position", et::Duration::seconds(1), 2});
  system.add_context_type(std::move(spec));
  system.start();

  et::metrics::CoherenceMonitor monitor(system, et::Duration::millis(100));
  sim.run_for(et::Duration::seconds(5));

  EXPECT_TRUE(monitor.all_coherent());
  EXPECT_GT(system.medium().stats().bits_sent, 0u);
  EXPECT_GT(et::metrics::measure_energy(system).totals.total(), 0.0);
}

}  // namespace
