#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "core/system.hpp"
#include "metrics/event_log.hpp"

/// Shared middleware test harness.
///
/// Builds a small grid deployment with one "blob" context type (activation
/// = binary-disc sensing of targets of type "blob", one position aggregate
/// `where`, one scalar aggregate `strength`), a lossless channel by default
/// (deterministic protocol tests), and an attached event log. Tests add
/// stationary or moving blob targets and drive the simulator directly.
namespace et::test {

class TestWorld {
 public:
  struct Options {
    std::size_t rows = 3;
    std::size_t cols = 8;
    double comm_radius = 6.0;
    double sensing_radius = 1.2;
    double loss_probability = 0.0;  // lossless by default
    bool model_collisions = false;  // deterministic by default
    core::GroupConfig group;
    core::TransportConfig transport;
    core::DirectoryConfig directory;
    node::CpuConfig cpu;
    radio::BurstLossConfig burst_loss;
    /// 0 keeps the RadioConfig default; 1 forces every broadcast delivery
    /// through the parallel fan-out path (stress tests).
    std::size_t fanout_min_receivers = 0;
    bool enable_directory = false;
    bool enable_transport = false;
    std::size_t critical_mass = 2;
    Duration freshness = Duration::seconds(1);
    /// Kernel selection (legacy serial / canonical serial / parallel).
    sim::KernelConfig kernel;
    std::uint64_t seed = 1;
    /// Hook to adjust the blob spec (attach objects, tweak variables)
    /// before the system starts.
    std::function<void(core::ContextTypeSpec&)> mutate_spec;
    /// Extra context types to declare after "blob".
    std::vector<core::ContextTypeSpec> extra_specs;
    /// Extra sense predicates, registered before the system starts.
    std::vector<std::pair<std::string, core::SensePredicate>> extra_senses;
  };

  TestWorld() : TestWorld(Options{}) {}

  explicit TestWorld(Options options)
      : options_(options),
        sim_(options.seed),
        env_(sim_.make_rng("env")),
        field_(env::Field::grid(options.rows, options.cols)) {
    core::SystemConfig config;
    config.radio.comm_radius = options.comm_radius;
    config.radio.loss_probability = options.loss_probability;
    config.radio.model_collisions = options.model_collisions;
    config.radio.carrier_sense_miss =
        options.model_collisions ? 0.1 : 0.0;
    config.radio.burst_loss = options.burst_loss;
    if (options.fanout_min_receivers > 0) {
      config.radio.fanout_min_receivers = options.fanout_min_receivers;
    }
    config.cpu = options.cpu;
    config.middleware.group = options.group;
    config.middleware.transport = options.transport;
    config.middleware.directory = options.directory;
    config.middleware.group.suppression_radius =
        std::max(options.group.suppression_radius,
                 2.0 * options.sensing_radius);
    config.middleware.group.wait_radius = std::max(
        options.group.wait_radius, options.sensing_radius + 1.5);
    config.middleware.enable_directory = options.enable_directory;
    config.middleware.enable_transport = options.enable_transport;
    config.kernel = options.kernel;
    system_.emplace(sim_, env_, field_, config);

    system_->senses().add("blob_sensor", core::sense_target("blob"));
    for (auto& [name, predicate] : options.extra_senses) {
      system_->senses().add(name, std::move(predicate));
    }

    core::ContextTypeSpec spec;
    spec.name = "blob";
    spec.activation = "blob_sensor";
    spec.variables.push_back(core::AggregateVarSpec{
        "where", "avg", "position", options.freshness,
        options.critical_mass});
    spec.variables.push_back(core::AggregateVarSpec{
        "strength", "avg", "magnetic", options.freshness,
        options.critical_mass});
    if (options.mutate_spec) options.mutate_spec(spec);
    blob_type_ = system_->add_context_type(std::move(spec));
    for (auto& extra : options.extra_specs) {
      system_->add_context_type(std::move(extra));
    }

    system_->start();
    system_->add_group_observer(&events_);
  }

  TargetId add_blob(Vec2 at, double radius = -1.0) {
    env::Target blob;
    blob.type = "blob";
    blob.trajectory = std::make_unique<env::StationaryTrajectory>(at);
    blob.radius = env::RadiusProfile::constant(
        radius > 0 ? radius : options_.sensing_radius);
    blob.emissions["magnetic"] = 10.0;
    return env_.add_target(std::move(blob));
  }

  TargetId add_moving_blob(Vec2 from, Vec2 to, double speed,
                           double radius = -1.0) {
    env::Target blob;
    blob.type = "blob";
    blob.trajectory =
        std::make_unique<env::LinearTrajectory>(from, to, speed);
    blob.radius = env::RadiusProfile::constant(
        radius > 0 ? radius : options_.sensing_radius);
    blob.emissions["magnetic"] = 10.0;
    return env_.add_target(std::move(blob));
  }

  void run(double seconds) { system_->run_for(Duration::seconds(seconds)); }

  /// Nodes currently leading the blob type.
  std::vector<NodeId> leaders(core::TypeIndex type = 0) {
    std::vector<NodeId> out;
    for (std::size_t i = 0; i < system_->node_count(); ++i) {
      if (system_->stack(NodeId{i}).groups().role(type) ==
          core::Role::kLeader) {
        out.push_back(NodeId{i});
      }
    }
    return out;
  }

  std::vector<NodeId> members(core::TypeIndex type = 0) {
    std::vector<NodeId> out;
    for (std::size_t i = 0; i < system_->node_count(); ++i) {
      if (system_->stack(NodeId{i}).groups().role(type) ==
          core::Role::kMember) {
        out.push_back(NodeId{i});
      }
    }
    return out;
  }

  /// The unique leader, asserting there is exactly one.
  std::optional<NodeId> sole_leader(core::TypeIndex type = 0) {
    auto all = leaders(type);
    if (all.size() != 1) return std::nullopt;
    return all.front();
  }

  sim::Simulator& sim() { return sim_; }
  env::Environment& env() { return env_; }
  const env::Field& field() const { return field_; }
  core::EnviroTrackSystem& system() { return *system_; }
  metrics::EventLog& events() { return events_; }
  core::TypeIndex blob_type() const { return blob_type_; }
  core::GroupManager& groups(NodeId id) {
    return system_->stack(id).groups();
  }

 private:
  Options options_;
  sim::Simulator sim_;
  env::Environment env_;
  env::Field field_;
  std::optional<core::EnviroTrackSystem> system_;
  metrics::EventLog events_;
  core::TypeIndex blob_type_ = 0;
};

}  // namespace et::test
