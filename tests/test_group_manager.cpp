#include "core/group_manager.hpp"

#include <gtest/gtest.h>

#include "test_world.hpp"

/// Protocol-level tests of the §5.2 group-management services on a lossless
/// deterministic channel.
namespace et::test {
namespace {

using core::GroupEvent;
using core::Role;

TEST(GroupManager, NoTargetNoLabels) {
  TestWorld world;
  world.run(10);
  EXPECT_TRUE(world.leaders().empty());
  EXPECT_TRUE(world.members().empty());
  EXPECT_EQ(world.events().count(GroupEvent::Kind::kLabelCreated), 0u);
}

TEST(GroupManager, SingleTargetFormsSingleGroup) {
  TestWorld world;
  world.add_blob({3.5, 1.0});
  world.run(5);

  // Exactly one leader; sensing motes joined it.
  ASSERT_TRUE(world.sole_leader().has_value());
  EXPECT_EQ(world.events().count(GroupEvent::Kind::kLabelCreated), 1u);
  EXPECT_FALSE(world.members().empty());

  // Every node that senses the blob is involved (leader or member).
  const Time now = world.sim().now();
  for (std::size_t i = 0; i < world.system().node_count(); ++i) {
    const NodeId id{i};
    const bool senses = world.env().senses(
        "blob", world.field().position(id), now);
    const Role role = world.groups(id).role(0);
    if (senses) {
      EXPECT_NE(role, Role::kIdle) << "sensing node " << i << " is idle";
    } else {
      EXPECT_EQ(role, Role::kIdle) << "non-sensing node " << i << " active";
    }
  }
}

TEST(GroupManager, LeaderIsAlwaysAMemberOfItsGroup) {
  // Invariant: "The leader of a context label sensor group ... is by
  // definition a member of that group (i.e., sense_e() is true for it)."
  TestWorld world;
  world.add_moving_blob({-1.0, 1.0}, {8.5, 1.0}, 0.4);
  for (int step = 0; step < 60; ++step) {
    world.run(0.5);
    const Time now = world.sim().now();
    for (NodeId leader : world.leaders()) {
      // Allow the one-poll lag between losing the sense and relinquishing.
      const Vec2 pos = world.field().position(leader);
      const bool senses_now = world.env().senses("blob", pos, now);
      const bool sensed_recently = world.env().senses(
          "blob", pos, now - Duration::millis(600));
      EXPECT_TRUE(senses_now || sensed_recently)
          << "leader " << leader.value() << " never sensed the target";
    }
  }
}

TEST(GroupManager, AggregateStateReachesLeader) {
  TestWorld world;
  world.add_blob({3.5, 1.0});
  world.run(5);
  const auto leader = world.sole_leader();
  ASSERT_TRUE(leader.has_value());

  auto* agg = world.groups(*leader).aggregates(0);
  ASSERT_NE(agg, nullptr);
  const auto where = agg->read("where", world.sim().now());
  ASSERT_TRUE(where.has_value());
  EXPECT_EQ(where->kind, core::AggregateValue::Kind::kVector);
  // Average member position approximates the blob location.
  EXPECT_NEAR(where->vector.x, 3.5, 1.0);
  EXPECT_NEAR(where->vector.y, 1.0, 1.0);

  const auto strength = agg->read("strength", world.sim().now());
  ASSERT_TRUE(strength.has_value());
  EXPECT_GT(strength->scalar, 0.0);
}

TEST(GroupManager, LeaderWeightGrowsWithReports) {
  TestWorld world;
  world.add_blob({3.5, 1.0});
  world.run(2);
  const auto leader = world.sole_leader();
  ASSERT_TRUE(leader.has_value());
  const auto w1 = world.groups(*leader).leader_weight(0);
  world.run(5);
  const auto w2 = world.groups(*leader).leader_weight(0);
  EXPECT_GT(w2, w1);
}

TEST(GroupManager, TargetDisappearanceDissolvesGroup) {
  TestWorld world;
  const TargetId blob = world.add_blob({3.5, 1.0});
  world.run(4);
  ASSERT_FALSE(world.leaders().empty());

  world.env().remove_target_at(blob, world.sim().now());
  world.run(4);
  EXPECT_TRUE(world.leaders().empty());
  EXPECT_TRUE(world.members().empty());
  EXPECT_GE(world.events().count(GroupEvent::Kind::kRelinquish), 1u);
}

TEST(GroupManager, LabelPersistsAcrossLeaderCrash) {
  // Receive-timer takeover: crash the leader; a member assumes leadership
  // of the SAME label, carrying its weight.
  TestWorld world;
  world.add_blob({3.5, 1.0});
  world.run(5);
  const auto leader = world.sole_leader();
  ASSERT_TRUE(leader.has_value());
  const LabelId label = world.groups(*leader).current_label(0);
  const auto weight = world.groups(*leader).leader_weight(0);
  EXPECT_GT(weight, 0u);

  world.system().crash_node(*leader);
  // Takeover within ~2.1 heartbeat periods + processing.
  world.run(3);

  const auto successor = world.sole_leader();
  ASSERT_TRUE(successor.has_value());
  EXPECT_NE(*successor, *leader);
  EXPECT_EQ(world.groups(*successor).current_label(0), label)
      << "takeover must continue the same context label";
  EXPECT_GE(world.groups(*successor).leader_weight(0), weight)
      << "leader weight is passed during leadership takeover";
  EXPECT_GE(world.events().count(GroupEvent::Kind::kTakeover), 1u);
  EXPECT_EQ(world.events().count(GroupEvent::Kind::kLabelCreated), 1u)
      << "no new label may be minted for the same target";
}

TEST(GroupManager, RelinquishHandsOverWithoutTimeout) {
  // Explicit relinquish: moving target, leaders hand over as they stop
  // sensing; the label stays unique the whole way.
  TestWorld::Options options;
  options.cols = 12;
  TestWorld world(options);
  world.add_moving_blob({-1.0, 1.0}, {12.5, 1.0}, 0.3);
  world.run(45);

  EXPECT_EQ(world.events().count(GroupEvent::Kind::kLabelCreated), 1u);
  EXPECT_GE(world.events().count(GroupEvent::Kind::kRelinquish), 3u);
  // In relinquish mode, takeovers (timeout path) should be rare to none.
  EXPECT_LE(world.events().count(GroupEvent::Kind::kTakeover),
            world.events().count(GroupEvent::Kind::kRelinquish));
}

TEST(GroupManager, SilentModeRecoversViaTakeover) {
  TestWorld::Options options;
  options.cols = 12;
  options.group.relinquish_enabled = false;
  TestWorld world(options);
  world.add_moving_blob({-1.0, 1.0}, {12.5, 1.0}, 0.3);
  world.run(45);

  EXPECT_EQ(world.events().count(GroupEvent::Kind::kRelinquish), 0u);
  EXPECT_GE(world.events().count(GroupEvent::Kind::kTakeover), 2u);
}

TEST(GroupManager, TwoSeparatedTargetsTwoLabels) {
  // "Groups formed around different entities of the same type remain
  // distinct ... as long as the tracked entities are physically separated."
  TestWorld::Options options;
  options.cols = 12;
  TestWorld world(options);
  world.add_blob({1.0, 1.0});
  world.add_blob({10.0, 1.0});
  world.run(6);

  const auto leaders = world.leaders();
  ASSERT_EQ(leaders.size(), 2u);
  EXPECT_NE(world.groups(leaders[0]).current_label(0),
            world.groups(leaders[1]).current_label(0));
}

TEST(GroupManager, WaitTimerPreventsSpuriousLabelOnJoin) {
  // A node that starts sensing inside an existing group's heartbeat range
  // joins the existing label rather than creating a second one.
  TestWorld world;
  world.add_blob({2.5, 1.0}, 1.2);
  world.run(4);
  ASSERT_EQ(world.events().count(GroupEvent::Kind::kLabelCreated), 1u);

  // Grow the phenomenon: new nodes start sensing and must join.
  world.add_blob({3.5, 1.0}, 1.6);
  world.run(4);
  EXPECT_EQ(world.events().count(GroupEvent::Kind::kLabelCreated), 1u)
      << "nodes that heard heartbeats must join, not fork";
  EXPECT_EQ(world.leaders().size(), 1u);
}

TEST(GroupManager, ConvergingTargetsMergeUnderOneLabel) {
  // Two same-type targets start out of radio range (distinct labels) and
  // converge. Once their sensor groups overlap, exactly one label must
  // win: the lighter leader deletes its label (suppression) or yields.
  TestWorld::Options options;
  options.cols = 16;
  TestWorld world(options);
  world.add_moving_blob({1.0, 1.0}, {8.0, 1.0}, 0.25);
  world.add_moving_blob({14.0, 1.0}, {8.0, 1.0}, 0.25);
  world.run(4);
  ASSERT_EQ(world.leaders().size(), 2u)
      << "separated targets must have separate labels";

  world.run(30);  // both parked at (8, 1): one overlapped group remains
  EXPECT_EQ(world.leaders().size(), 1u);
  EXPECT_GE(world.events().count(GroupEvent::Kind::kLabelSuppressed) +
                world.events().count(GroupEvent::Kind::kYield),
            1u);
}

TEST(GroupManager, PersistentStateSurvivesTakeover) {
  TestWorld world;
  world.add_blob({3.5, 1.0});
  world.run(4);
  const auto leader = world.sole_leader();
  ASSERT_TRUE(leader.has_value());

  // Commit state on the leader; let at least one heartbeat carry it.
  world.groups(*leader).persistent_state(0)["counter"] = 42.0;
  world.run(2);

  world.system().crash_node(*leader);
  world.run(3);
  const auto successor = world.sole_leader();
  ASSERT_TRUE(successor.has_value());
  auto& state = world.groups(*successor).persistent_state(0);
  ASSERT_TRUE(state.count("counter"));
  EXPECT_DOUBLE_EQ(state.at("counter"), 42.0);
}

TEST(GroupManager, ReceiveTimerFactorsRespected) {
  TestWorld::Options options;
  options.group.heartbeat_period = Duration::seconds(0.4);
  TestWorld world(options);
  auto& gm = world.groups(NodeId{0});
  EXPECT_EQ(gm.receive_timeout(), Duration::seconds(0.4) * 2.1);
  EXPECT_EQ(gm.wait_timeout(), Duration::seconds(0.4) * 4.2);
  EXPECT_GT(gm.wait_timeout(), gm.receive_timeout())
      << "wait timer must exceed the receive timer (§6.2)";
}

TEST(GroupManager, CrashedNodeGoesSilent) {
  TestWorld world;
  world.add_blob({3.5, 1.0});
  world.run(3);
  const auto leader = world.sole_leader();
  ASSERT_TRUE(leader.has_value());
  world.system().crash_node(*leader);
  const auto hb_before =
      world.groups(*leader).stats().heartbeats_sent;
  world.run(5);
  EXPECT_EQ(world.groups(*leader).stats().heartbeats_sent, hb_before);
  EXPECT_EQ(world.groups(*leader).role(0), Role::kIdle);
  EXPECT_FALSE(world.groups(*leader).alive());
}

TEST(GroupManager, MemberLeavesWhenSenseCeases) {
  TestWorld world;
  const TargetId blob = world.add_blob({3.5, 1.0}, 1.6);
  world.run(4);
  const std::size_t involved =
      world.members().size() + world.leaders().size();
  ASSERT_GE(involved, 3u);

  // Shrink the phenomenon: outer members must leave.
  world.env().remove_target_at(blob, world.sim().now());
  world.add_blob({3.5, 1.0}, 0.8);
  world.run(4);
  EXPECT_LT(world.members().size() + world.leaders().size(), involved);
  EXPECT_GE(world.events().count(GroupEvent::Kind::kLeft), 1u);
}

TEST(GroupManager, DeactivationConditionOverridesActivation) {
  // With a separate deactivation predicate that never fires, members stay
  // in the group even after the activation condition turns false
  // (§3.2.1, footnote 1).
  TestWorld::Options options;
  options.extra_senses.emplace_back(
      "never", [](const node::Mote&) { return false; });
  options.mutate_spec = [](core::ContextTypeSpec& spec) {
    spec.deactivation = "never";
  };
  TestWorld world(options);
  const TargetId blob = world.add_blob({3.5, 1.0});
  world.run(4);
  const std::size_t involved_before =
      world.members().size() + world.leaders().size();
  ASSERT_GE(involved_before, 2u);

  world.env().remove_target_at(blob, world.sim().now());
  world.run(4);
  // Nobody deactivates: the group persists despite the vanished target.
  EXPECT_EQ(world.members().size() + world.leaders().size(),
            involved_before);
  EXPECT_EQ(world.events().count(GroupEvent::Kind::kLeft), 0u);
  EXPECT_EQ(world.events().count(GroupEvent::Kind::kRelinquish), 0u);
}

TEST(GroupManager, WaitPathJoinerCarriesHeartbeatState) {
  // Regression: a node that joined through the wait path (heard
  // heartbeats while idle, then started sensing) used to wipe its
  // remembered leader state on join. If the leader then died before the
  // joiner heard another heartbeat, takeover restored an *empty*
  // persistent state. The wait-state snapshot must survive the join.
  TestWorld::Options options;
  options.rows = 1;
  options.cols = 4;
  options.group.heartbeat_period = Duration::seconds(1);
  TestWorld world(options);
  // Blob creeps from node 0 toward node 1; radius 0.9 means node 1 only
  // starts sensing around t = 2.8 s, well after state is committed.
  world.add_moving_blob({-0.6, 0.0}, {3.0, 0.0}, 0.25, 0.9);

  world.run(2);
  const auto leader = world.sole_leader();
  ASSERT_TRUE(leader.has_value());
  ASSERT_EQ(*leader, NodeId{0});
  const LabelId label = world.groups(*leader).current_label(0);
  world.groups(*leader).persistent_state(0)["k"] = 7.0;

  // Step finely; the instant node 1 joins (necessarily via the wait path —
  // it has been hearing heartbeats for two seconds), kill the leader
  // before its next heartbeat can deliver the state a second time.
  bool joined = false;
  for (int i = 0; i < 200 && !joined; ++i) {
    world.run(0.01);
    joined = world.groups(NodeId{1}).role(0) == Role::kMember;
  }
  ASSERT_TRUE(joined) << "node 1 should join once it senses the blob";
  world.system().crash_node(*leader);

  world.run(3);  // receive timeout (2.1 s) forces the takeover
  ASSERT_EQ(world.groups(NodeId{1}).role(0), Role::kLeader);
  EXPECT_EQ(world.groups(NodeId{1}).current_label(0), label);
  auto& state = world.groups(NodeId{1}).persistent_state(0);
  ASSERT_TRUE(state.count("k"))
      << "state snapshotted while waiting must survive the wait-path join";
  EXPECT_DOUBLE_EQ(state.at("k"), 7.0);
}

}  // namespace
}  // namespace et::test
