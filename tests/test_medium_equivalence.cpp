/// The spatial index is a pure fast path: runs must be bit-identical with
/// the brute-force O(N)-scan reference. These tests drive both paths with
/// identical seeds and assert exact equality of every statistic and the
/// total event count — any divergence in candidate order, carrier-sense
/// verdicts, or history pruning would desynchronise the RNG stream and show
/// up here.

#include <gtest/gtest.h>

#include "radio/medium.hpp"
#include "scenario/tank.hpp"
#include "sim/simulator.hpp"

namespace et {
namespace {

void expect_type_stats_eq(const radio::TypeStats& a, const radio::TypeStats& b,
                          std::size_t type) {
  EXPECT_EQ(a.offered, b.offered) << "type " << type;
  EXPECT_EQ(a.transmitted, b.transmitted) << "type " << type;
  EXPECT_EQ(a.mac_dropped, b.mac_dropped) << "type " << type;
  EXPECT_EQ(a.lost, b.lost) << "type " << type;
  EXPECT_EQ(a.pair_attempts, b.pair_attempts) << "type " << type;
  EXPECT_EQ(a.pair_delivered, b.pair_delivered) << "type " << type;
  EXPECT_EQ(a.pair_lost_collision, b.pair_lost_collision) << "type " << type;
  EXPECT_EQ(a.pair_lost_random, b.pair_lost_random) << "type " << type;
  EXPECT_EQ(a.pair_lost_burst, b.pair_lost_burst) << "type " << type;
}

void expect_medium_stats_eq(const radio::MediumStats& a,
                            const radio::MediumStats& b) {
  EXPECT_EQ(a.bits_sent, b.bits_sent);
  EXPECT_EQ(a.airtime, b.airtime);
  for (std::size_t t = 0; t < radio::kMsgTypeCount; ++t) {
    expect_type_stats_eq(a.by_type[t], b.by_type[t], t);
  }
}

TEST(MediumEquivalence, TankScenarioRunsBitIdentical) {
  scenario::TankScenarioParams params;
  params.rows = 3;
  params.cols = 14;
  params.speed_hops_per_s = 1.5;
  params.radio.loss_probability = 0.05;
  params.seed = 7;

  scenario::TankScenarioParams brute = params;
  brute.radio.use_spatial_index = false;
  scenario::TankScenarioParams indexed = params;
  indexed.radio.use_spatial_index = true;

  scenario::TankScenario brute_run(brute);
  const scenario::TankRunResult brute_result = brute_run.run();
  const std::uint64_t brute_events = brute_run.sim().events_fired();

  scenario::TankScenario indexed_run(indexed);
  const scenario::TankRunResult indexed_result = indexed_run.run();
  const std::uint64_t indexed_events = indexed_run.sim().events_fired();

  EXPECT_EQ(brute_events, indexed_events);
  expect_medium_stats_eq(brute_result.medium, indexed_result.medium);
  EXPECT_EQ(brute_result.tracking.distinct_labels,
            indexed_result.tracking.distinct_labels);
  EXPECT_EQ(brute_result.tracking.successful_handovers,
            indexed_result.tracking.successful_handovers);
  EXPECT_EQ(brute_result.tracking.failed_handovers,
            indexed_result.tracking.failed_handovers);
  EXPECT_EQ(brute_result.track.size(), indexed_result.track.size());
  EXPECT_EQ(brute_result.track_labels, indexed_result.track_labels);
}

TEST(MediumEquivalence, TankScenarioWithBurstLossBitIdentical) {
  // The Gilbert–Elliott channel samples per-receiver burst state lazily on
  // each delivery attempt; both radio paths must visit receivers in the
  // same order or the RNG stream (and thus every stat) diverges.
  scenario::TankScenarioParams params;
  params.rows = 3;
  params.cols = 12;
  params.speed_hops_per_s = 1.0;
  params.radio.burst_loss.enabled = true;
  params.seed = 13;

  scenario::TankScenarioParams brute = params;
  brute.radio.use_spatial_index = false;
  scenario::TankScenarioParams indexed = params;
  indexed.radio.use_spatial_index = true;

  scenario::TankScenario brute_run(brute);
  const scenario::TankRunResult brute_result = brute_run.run();
  scenario::TankScenario indexed_run(indexed);
  const scenario::TankRunResult indexed_result = indexed_run.run();

  EXPECT_EQ(brute_run.sim().events_fired(), indexed_run.sim().events_fired());
  expect_medium_stats_eq(brute_result.medium, indexed_result.medium);
  EXPECT_EQ(brute_result.tracking.distinct_labels,
            indexed_result.tracking.distinct_labels);
  EXPECT_EQ(brute_result.track_labels, indexed_result.track_labels);
  // The burst channel must actually have fired in this configuration.
  EXPECT_GT(brute_result.medium.totals().pair_lost_burst, 0u);
}

TEST(MediumEquivalence, TankScenarioWithCollisionsAndCrossTraffic) {
  // Heavier channel contention exercises carrier sense, backoff, and the
  // collision window bookkeeping on both paths.
  scenario::TankScenarioParams params;
  params.rows = 3;
  params.cols = 10;
  params.speed_hops_per_s = 2.0;
  params.radio.loss_probability = 0.1;
  params.radio.carrier_sense_miss = 0.2;
  scenario::CrossTrafficConfig noise;
  noise.senders = 6;
  noise.period = Duration::millis(200);
  noise.payload_bytes = 30;
  params.cross_traffic = noise;
  params.seed = 31;

  scenario::TankScenarioParams brute = params;
  brute.radio.use_spatial_index = false;
  scenario::TankScenarioParams indexed = params;
  indexed.radio.use_spatial_index = true;

  scenario::TankScenario brute_run(brute);
  const scenario::TankRunResult brute_result = brute_run.run();
  scenario::TankScenario indexed_run(indexed);
  const scenario::TankRunResult indexed_result = indexed_run.run();

  EXPECT_EQ(brute_run.sim().events_fired(), indexed_run.sim().events_fired());
  expect_medium_stats_eq(brute_result.medium, indexed_result.medium);
  EXPECT_EQ(brute_result.tracking.distinct_labels,
            indexed_result.tracking.distinct_labels);
}

TEST(MediumEquivalence, NeighborsMatchBruteForceOnScatteredField) {
  // Random-ish scatter (deterministic LCG) including nodes with negative
  // coordinates, nodes sharing a grid cell, and nodes exactly on cell
  // boundaries.
  sim::Simulator sim_a(5);
  sim::Simulator sim_b(5);
  radio::RadioConfig indexed;
  indexed.use_spatial_index = true;
  radio::RadioConfig brute;
  brute.use_spatial_index = false;
  radio::Medium medium_a(sim_a, indexed);
  radio::Medium medium_b(sim_b, brute);

  std::uint64_t lcg = 12345;
  auto next_coord = [&lcg] {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    // Spread over [-30, 30); comm radius 6 => many occupied cells.
    return static_cast<double>(static_cast<std::int64_t>(lcg >> 40) % 600) /
               10.0 -
           30.0;
  };
  const std::size_t n = 300;
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2 pos{next_coord(), next_coord()};
    medium_a.attach(NodeId{i}, pos, nullptr);
    medium_b.attach(NodeId{i}, pos, nullptr);
  }

  for (std::size_t i = 0; i < n; ++i) {
    const auto fast = medium_a.neighbors(NodeId{i});
    const auto slow = medium_b.neighbors(NodeId{i});
    ASSERT_EQ(fast.size(), slow.size()) << "node " << i;
    for (std::size_t k = 0; k < fast.size(); ++k) {
      EXPECT_EQ(fast[k], slow[k]) << "node " << i << " neighbor " << k;
    }
  }
}

TEST(MediumEquivalence, SlowBitrateCollisionNotMissedByPruning) {
  // Regression for the prune cutoff: the seed hard-coded a 1 s window, so
  // at slow bitrates an unrelated completion could evict a frame from the
  // history while a long overlapping frame was still on the air, and the
  // collision was silently missed. The cutoff is now derived from the
  // longest observed airtime.
  sim::Simulator sim(3);
  radio::RadioConfig config;
  config.loss_probability = 0.0;
  config.carrier_sense_miss = 1.0;  // never defer: force overlaps
  config.bitrate_bps = 1'000.0;     // 157-byte frame ~ 1.26 s airtime
  radio::Medium medium(sim, config);

  class Junk final : public radio::Payload {
   public:
    explicit Junk(std::size_t bytes) : bytes_(bytes) {}
    std::size_t size_bytes() const override { return bytes_; }

   private:
    std::size_t bytes_;
  };

  int received_at_1 = 0;
  medium.attach(NodeId{0}, {0.0, 0.0}, nullptr);
  medium.attach(NodeId{1}, {1.0, 0.0},
                [&](const radio::Frame&) { ++received_at_1; });
  medium.attach(NodeId{2}, {2.0, 0.0}, nullptr);
  // A far-away pair whose only job is to trigger a prune mid-air.
  medium.attach(NodeId{3}, {100.0, 0.0}, nullptr);
  medium.attach(NodeId{4}, {101.0, 0.0}, nullptr);

  // Frame A: node 0, [0, 1.256 s].
  medium.send(radio::Frame{NodeId{0}, std::nullopt, radio::MsgType::kUser,
                           std::make_shared<Junk>(150)});
  // Frame C: node 2, [1.2, ~2.696 s] — overlaps A's tail at node 1.
  sim.run_for(Duration::millis(1200));
  medium.send(radio::Frame{NodeId{2}, std::nullopt, radio::MsgType::kUser,
                           std::make_shared<Junk>(180)});
  // Frame X: node 3, completes ~2.456 s, between A's end + 1 s and C's
  // delivery — with the old cutoff its prune evicted A and C was delivered
  // collision-free at node 1.
  sim.run_for(Duration::seconds(1));
  medium.send(radio::Frame{NodeId{3}, std::nullopt, radio::MsgType::kUser,
                           std::make_shared<Junk>(25)});
  sim.run_for(Duration::seconds(5));

  EXPECT_EQ(received_at_1, 0)
      << "frame C overlapped frame A at node 1 and must be corrupted";
  EXPECT_GE(medium.stats().of(radio::MsgType::kUser).pair_lost_collision, 2u);
  EXPECT_EQ(medium.active_transmissions(), 0u);
  EXPECT_LE(medium.history_size(), 3u);
}

}  // namespace
}  // namespace et
