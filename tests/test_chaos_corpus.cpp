#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/trial.hpp"

/// Corpus replay: every artifact committed under tests/chaos_corpus/ is
/// parsed, replayed deterministically, and held to its expect_failure
/// contract — artifacts with an empty expectation must pass every oracle
/// (they are regressions pinned against a healthy HEAD), the rest must
/// fail on the recorded oracle. Runs under the sanitizer CI job too, so
/// each corpus entry doubles as a memory-safety probe of the fault paths
/// it exercises.
namespace et::fuzz {
namespace {

std::filesystem::path corpus_dir() {
  return std::filesystem::path(ET_REPO_ROOT) / "tests" / "chaos_corpus";
}

std::vector<std::filesystem::path> corpus_files() {
  std::vector<std::filesystem::path> files;
  const std::filesystem::path dir = corpus_dir();
  if (!std::filesystem::exists(dir)) return files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".json") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(ChaosCorpus, CorpusIsNotEmpty) {
  EXPECT_FALSE(corpus_files().empty())
      << "tests/chaos_corpus/ must ship at least one committed artifact";
}

TEST(ChaosCorpus, EveryArtifactParsesAndSerializesByteIdentically) {
  for (const std::filesystem::path& path : corpus_files()) {
    SCOPED_TRACE(path.filename().string());
    const std::string text = slurp(path);
    const Expected<ReproArtifact> artifact =
        ReproArtifact::from_json_string(text);
    ASSERT_TRUE(artifact.ok())
        << path << ": " << (artifact.ok() ? "" : artifact.error().message);
    // Committed artifacts are normalized: parse -> dump reproduces the
    // file exactly, so replays and shrink lineage diff cleanly.
    EXPECT_EQ(artifact.value().to_json_string(), text);
  }
}

TEST(ChaosCorpus, EveryArtifactReplaysToItsExpectedVerdict) {
  for (const std::filesystem::path& path : corpus_files()) {
    SCOPED_TRACE(path.filename().string());
    const Expected<ReproArtifact> artifact =
        ReproArtifact::from_json_string(slurp(path));
    ASSERT_TRUE(artifact.ok());
    const TrialResult result = run_trial(artifact.value());
    EXPECT_TRUE(matches_expectation(artifact.value(), result.verdict))
        << "expect_failure=\"" << artifact.value().expect_failure
        << "\" but verdict was: " << result.verdict.summary();
  }
}

}  // namespace
}  // namespace et::fuzz
