#include "node/mote.hpp"

#include <gtest/gtest.h>

#include "node/network.hpp"

namespace et::node {
namespace {

class JunkPayload final : public radio::Payload {
 public:
  std::size_t size_bytes() const override { return 8; }
};

struct NodeTest : public ::testing::Test {
  NodeTest()
      : sim(7),
        env(sim.make_rng("env")),
        field(env::Field::grid(1, 4)),
        medium(sim, lossless()) {}

  static radio::RadioConfig lossless() {
    radio::RadioConfig config;
    config.loss_probability = 0.0;
    config.model_collisions = false;
    return config;
  }

  sim::Simulator sim;
  env::Environment env;
  env::Field field;
  radio::Medium medium;
};

TEST_F(NodeTest, CpuExecutesTasksSequentially) {
  Cpu cpu(sim, CpuConfig{Duration::millis(10), Duration::millis(5), 4});
  std::vector<int> order;
  cpu.post(Duration::millis(10), [&] { order.push_back(1); });
  cpu.post(Duration::millis(10), [&] { order.push_back(2); });
  sim.run_for(Duration::millis(15));
  EXPECT_EQ(order, (std::vector<int>{1}));  // second still queued
  sim.run_for(Duration::millis(10));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(cpu.stats().executed, 2u);
  EXPECT_EQ(cpu.stats().busy, Duration::millis(20));
}

TEST_F(NodeTest, CpuQueueOverflowDrops) {
  Cpu cpu(sim, CpuConfig{Duration::millis(10), Duration::millis(5), 2});
  int executed = 0;
  // One runs immediately; capacity 2 queue; the rest drop.
  for (int i = 0; i < 6; ++i) {
    cpu.post(Duration::millis(10), [&] { ++executed; });
  }
  sim.run_for(Duration::seconds(1));
  EXPECT_EQ(executed, 3);
  EXPECT_EQ(cpu.stats().dropped, 3u);
  EXPECT_EQ(cpu.stats().posted, 6u);
}

TEST_F(NodeTest, CpuTasksSeeEffectsAfterServiceTime) {
  Cpu cpu(sim, CpuConfig{});
  Time ran_at;
  cpu.post(Duration::millis(30), [&] { ran_at = sim.now(); });
  sim.run_for(Duration::seconds(1));
  EXPECT_EQ(ran_at, Time::origin() + Duration::millis(30));
}

TEST_F(NodeTest, MoteSensesEnvironment) {
  MoteNetwork network(sim, medium, env, field);
  env::Target blob;
  blob.type = "thing";
  blob.trajectory = std::make_unique<env::StationaryTrajectory>(Vec2{1.0, 0});
  blob.radius = env::RadiusProfile::constant(1.2);
  blob.emissions["magnetic"] = 8.0;
  env.add_target(std::move(blob));

  EXPECT_TRUE(network.mote(NodeId{0}).senses("thing"));   // distance 1
  EXPECT_TRUE(network.mote(NodeId{1}).senses("thing"));   // distance 0
  EXPECT_FALSE(network.mote(NodeId{3}).senses("thing"));  // distance 2
  EXPECT_GT(network.mote(NodeId{1}).read_sensor("magnetic"),
            network.mote(NodeId{3}).read_sensor("magnetic"));
}

TEST_F(NodeTest, FrameDispatchByType) {
  MoteNetwork network(sim, medium, env, field);
  int heartbeats = 0;
  int reports = 0;
  network.mote(NodeId{1}).set_handler(
      radio::MsgType::kHeartbeat,
      [&](const radio::Frame&) { ++heartbeats; });
  network.mote(NodeId{1}).set_handler(
      radio::MsgType::kReport, [&](const radio::Frame&) { ++reports; });

  network.mote(NodeId{0}).broadcast(radio::MsgType::kHeartbeat,
                                    std::make_shared<JunkPayload>());
  network.mote(NodeId{0}).broadcast(radio::MsgType::kUser,
                                    std::make_shared<JunkPayload>());
  sim.run_for(Duration::seconds(1));
  EXPECT_EQ(heartbeats, 1);
  EXPECT_EQ(reports, 0);
}

TEST_F(NodeTest, UnhandledFrameCostsNoCpu) {
  // Frames with no registered handler are filtered before the CPU model —
  // the basis of the paper's cross-traffic result (bandwidth load without
  // CPU load on EnviroTrack motes).
  MoteNetwork network(sim, medium, env, field);
  network.mote(NodeId{0}).broadcast(radio::MsgType::kCrossTraffic,
                                    std::make_shared<JunkPayload>());
  sim.run_for(Duration::seconds(1));
  EXPECT_EQ(network.mote(NodeId{1}).cpu().stats().posted, 0u);
}

TEST_F(NodeTest, HandledFrameCostsCpu) {
  MoteNetwork network(sim, medium, env, field);
  network.mote(NodeId{1}).set_handler(radio::MsgType::kUser,
                                      [](const radio::Frame&) {});
  network.mote(NodeId{0}).broadcast(radio::MsgType::kUser,
                                    std::make_shared<JunkPayload>());
  sim.run_for(Duration::seconds(1));
  EXPECT_EQ(network.mote(NodeId{1}).cpu().stats().posted, 1u);
}

TEST_F(NodeTest, TimersRunThroughCpu) {
  MoteNetwork network(sim, medium, env, field);
  Mote& mote = network.mote(NodeId{0});
  int after_fired = 0;
  int every_fired = 0;
  mote.after(Duration::millis(100), [&] { ++after_fired; });
  mote.every(Duration::millis(200), Duration::millis(200),
             [&] { ++every_fired; });
  sim.run_for(Duration::seconds(1));
  EXPECT_EQ(after_fired, 1);
  // The tick posted at t = 1000 ms is still paying its CPU service time
  // when the deadline hits, so only four of five have executed.
  EXPECT_EQ(every_fired, 4);
  EXPECT_EQ(mote.cpu().stats().posted, 6u);
}

TEST_F(NodeTest, TimerCancellation) {
  MoteNetwork network(sim, medium, env, field);
  Mote& mote = network.mote(NodeId{0});
  int fired = 0;
  auto handle = mote.every(Duration::millis(100), Duration::millis(100),
                           [&] { ++fired; });
  sim.run_for(Duration::millis(250));
  EXPECT_EQ(fired, 2);
  handle.cancel();
  sim.run_for(Duration::seconds(1));
  EXPECT_EQ(fired, 2);
}

TEST_F(NodeTest, DownMoteIsDeaf) {
  MoteNetwork network(sim, medium, env, field);
  int received = 0;
  network.mote(NodeId{1}).set_handler(radio::MsgType::kUser,
                                      [&](const radio::Frame&) {
                                        ++received;
                                      });
  network.mote(NodeId{1}).set_down(true);
  network.mote(NodeId{0}).broadcast(radio::MsgType::kUser,
                                    std::make_shared<JunkPayload>());
  sim.run_for(Duration::seconds(1));
  EXPECT_EQ(received, 0);
}

TEST_F(NodeTest, DownMoteTimersDoNotFire) {
  MoteNetwork network(sim, medium, env, field);
  Mote& mote = network.mote(NodeId{0});
  int fired = 0;
  mote.every(Duration::millis(100), Duration::millis(100), [&] { ++fired; });
  sim.run_for(Duration::millis(250));
  mote.set_down(true);
  sim.run_for(Duration::seconds(1));
  EXPECT_EQ(fired, 2);
}

TEST_F(NodeTest, PerMoteRngStreamsDiffer) {
  MoteNetwork network(sim, medium, env, field);
  auto& a = network.mote(NodeId{0}).rng();
  auto& b = network.mote(NodeId{1}).rng();
  int equal = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace et::node
