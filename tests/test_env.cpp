#include <gtest/gtest.h>

#include "env/environment.hpp"
#include "env/field.hpp"
#include "env/trajectory.hpp"

namespace et::env {
namespace {

// --- Trajectories ---

TEST(Trajectory, Stationary) {
  StationaryTrajectory t({2.0, 3.0});
  EXPECT_EQ(t.position_at(Time::origin()), (Vec2{2, 3}));
  EXPECT_EQ(t.position_at(Time::seconds(1000)), (Vec2{2, 3}));
  EXPECT_FALSE(t.finished(Time::seconds(1000)));
}

TEST(Trajectory, LinearInterpolatesAndClamps) {
  LinearTrajectory t({0, 0}, {10, 0}, 2.0);  // 5 s traverse
  EXPECT_EQ(t.position_at(Time::origin()), (Vec2{0, 0}));
  EXPECT_EQ(t.position_at(Time::seconds(2.5)), (Vec2{5, 0}));
  EXPECT_EQ(t.position_at(Time::seconds(5)), (Vec2{10, 0}));
  EXPECT_EQ(t.position_at(Time::seconds(99)), (Vec2{10, 0}));
  EXPECT_EQ(t.arrival_time(), Time::seconds(5));
  EXPECT_FALSE(t.finished(Time::seconds(4.9)));
  EXPECT_TRUE(t.finished(Time::seconds(5)));
}

TEST(Trajectory, LinearDiagonalSpeed) {
  LinearTrajectory t({0, 0}, {3, 4}, 1.0);  // length 5 at speed 1
  EXPECT_EQ(t.arrival_time(), Time::seconds(5));
  const Vec2 mid = t.position_at(Time::seconds(2.5));
  EXPECT_NEAR(mid.x, 1.5, 1e-9);
  EXPECT_NEAR(mid.y, 2.0, 1e-9);
}

TEST(Trajectory, WaypointVisitsInOrder) {
  WaypointTrajectory t({{0, 0}, {2, 0}, {2, 2}}, 1.0);
  EXPECT_EQ(t.position_at(Time::seconds(1)), (Vec2{1, 0}));
  EXPECT_EQ(t.position_at(Time::seconds(2)), (Vec2{2, 0}));
  EXPECT_EQ(t.position_at(Time::seconds(3)), (Vec2{2, 1}));
  EXPECT_EQ(t.position_at(Time::seconds(4)), (Vec2{2, 2}));
  EXPECT_TRUE(t.finished(Time::seconds(4)));
  EXPECT_EQ(t.arrival_time(), Time::seconds(4));
}

TEST(Trajectory, WaypointSinglePoint) {
  WaypointTrajectory t({{5, 5}}, 1.0);
  EXPECT_EQ(t.position_at(Time::seconds(3)), (Vec2{5, 5}));
  EXPECT_TRUE(t.finished(Time::origin()));
}

TEST(Trajectory, CircularStaysOnCircle) {
  CircularTrajectory t({0, 0}, 2.0, 1.0);
  for (double s : {0.0, 1.0, 3.7, 12.0}) {
    const Vec2 p = t.position_at(Time::seconds(s));
    EXPECT_NEAR(p.norm(), 2.0, 1e-9) << "at t=" << s;
  }
  EXPECT_EQ(t.position_at(Time::origin()), (Vec2{2, 0}));
  EXPECT_FALSE(t.finished(Time::seconds(100)));
}

TEST(Trajectory, RandomWalkStaysInBoundsAndIsDeterministic) {
  const Rect bounds{{0, 0}, {10, 10}};
  RandomWalkTrajectory a(bounds, {5, 5}, 1.0, Rng(42));
  RandomWalkTrajectory b(bounds, {5, 5}, 1.0, Rng(42));
  for (double s = 0; s < 50; s += 0.7) {
    const Vec2 pa = a.position_at(Time::seconds(s));
    EXPECT_TRUE(bounds.contains(pa)) << pa.to_string();
    EXPECT_EQ(pa, b.position_at(Time::seconds(s)));
  }
}

TEST(Trajectory, RandomWalkMovesAtConstantSpeed) {
  RandomWalkTrajectory t({{0, 0}, {20, 20}}, {10, 10}, 2.0, Rng(7));
  const double dt = 0.1;
  for (double s = 0; s < 10; s += dt) {
    const double step = distance(t.position_at(Time::seconds(s)),
                                 t.position_at(Time::seconds(s + dt)));
    EXPECT_LE(step, 2.0 * dt + 1e-4);  // microsecond time quantization
  }
}

// --- Field ---

TEST(Field, GridLayout) {
  const Field field = Field::grid(2, 3);
  EXPECT_EQ(field.size(), 6u);
  EXPECT_EQ(field.position(NodeId{0}), (Vec2{0, 0}));
  EXPECT_EQ(field.position(NodeId{2}), (Vec2{2, 0}));
  EXPECT_EQ(field.position(NodeId{3}), (Vec2{0, 1}));
  EXPECT_EQ(field.bounds().max, (Vec2{2, 1}));
}

TEST(Field, PerturbedGridStaysNearLattice) {
  const Field field = Field::perturbed_grid(4, 4, 0.3, Rng(5));
  EXPECT_EQ(field.size(), 16u);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      const Vec2 p = field.position(NodeId{r * 4 + c});
      EXPECT_LE(std::abs(p.x - static_cast<double>(c)), 0.3);
      EXPECT_LE(std::abs(p.y - static_cast<double>(r)), 0.3);
    }
  }
}

TEST(Field, UniformRandomInBounds) {
  const Rect bounds{{0, 0}, {7, 3}};
  const Field field = Field::uniform_random(50, bounds, Rng(9));
  EXPECT_EQ(field.size(), 50u);
  for (std::size_t i = 0; i < field.size(); ++i) {
    EXPECT_TRUE(bounds.contains(field.position(NodeId{i})));
  }
}

TEST(Field, NodesWithin) {
  const Field field = Field::grid(3, 3);
  const auto close = field.nodes_within({1, 1}, 1.0);
  EXPECT_EQ(close.size(), 5u);  // center + 4 orthogonal
  const auto all = field.nodes_within({1, 1}, 10.0);
  EXPECT_EQ(all.size(), 9u);
  const auto none = field.nodes_within({-5, -5}, 1.0);
  EXPECT_TRUE(none.empty());
}

TEST(Field, Nearest) {
  const Field field = Field::grid(3, 3);
  EXPECT_EQ(field.nearest({1.2, 0.9}), NodeId{4});  // (1,1)
  EXPECT_EQ(field.nearest({-3, -3}), NodeId{0});
  EXPECT_EQ(field.nearest({0.5, 0.0}), NodeId{0}) << "ties: lowest id";
}

// --- Environment ---

TEST(Environment, SensesByTypeAndRadius) {
  Environment env;
  Target car;
  car.type = "car";
  car.trajectory = std::make_unique<StationaryTrajectory>(Vec2{5, 5});
  car.radius = RadiusProfile::constant(2.0);
  env.add_target(std::move(car));

  EXPECT_TRUE(env.senses("car", {5, 5}, Time::origin()));
  EXPECT_TRUE(env.senses("car", {6.9, 5}, Time::origin()));
  EXPECT_FALSE(env.senses("car", {7.1, 5}, Time::origin()));
  EXPECT_FALSE(env.senses("truck", {5, 5}, Time::origin()));
}

TEST(Environment, TargetLifetimeWindow) {
  Environment env;
  Target t;
  t.type = "x";
  t.trajectory = std::make_unique<StationaryTrajectory>(Vec2{0, 0});
  t.radius = RadiusProfile::constant(1.0);
  t.appears = Time::seconds(5);
  t.disappears = Time::seconds(10);
  const TargetId id = env.add_target(std::move(t));

  EXPECT_FALSE(env.senses("x", {0, 0}, Time::seconds(4)));
  EXPECT_TRUE(env.senses("x", {0, 0}, Time::seconds(7)));
  EXPECT_FALSE(env.senses("x", {0, 0}, Time::seconds(10)));
  EXPECT_EQ(env.active_targets(Time::seconds(7)).size(), 1u);
  EXPECT_TRUE(env.active_targets(Time::seconds(12)).empty());
  EXPECT_EQ(env.target(id).type, "x");
}

TEST(Environment, LateTargetsStartTheirPathWhenAppearing) {
  // A vehicle entering at t = 60 s starts from its path's beginning then,
  // not 60 s into the trajectory.
  Environment env;
  Target t;
  t.type = "car";
  t.trajectory = std::make_unique<LinearTrajectory>(Vec2{0, 0},
                                                    Vec2{10, 0}, 1.0);
  t.radius = RadiusProfile::constant(1.0);
  t.appears = Time::seconds(60);
  const TargetId id = env.add_target(std::move(t));

  EXPECT_EQ(env.target(id).position_at(Time::seconds(60)), (Vec2{0, 0}));
  EXPECT_EQ(env.target(id).position_at(Time::seconds(63)), (Vec2{3, 0}));
}

TEST(Environment, LateFiresStartGrowingWhenIgnited) {
  Environment env;
  Target fire;
  fire.type = "fire";
  fire.trajectory = std::make_unique<StationaryTrajectory>(Vec2{0, 0});
  fire.radius = RadiusProfile::growing(1.0, 1.0, 5.0);
  fire.appears = Time::seconds(100);
  const TargetId id = env.add_target(std::move(fire));
  EXPECT_DOUBLE_EQ(env.target(id).radius_at(Time::seconds(100)), 1.0);
  EXPECT_DOUBLE_EQ(env.target(id).radius_at(Time::seconds(102)), 3.0);
}

TEST(Environment, GrowingRadius) {
  Environment env;
  Target fire;
  fire.type = "fire";
  fire.trajectory = std::make_unique<StationaryTrajectory>(Vec2{0, 0});
  fire.radius = RadiusProfile::growing(1.0, 0.5, 3.0);
  env.add_target(std::move(fire));

  EXPECT_FALSE(env.senses("fire", {2, 0}, Time::origin()));
  EXPECT_TRUE(env.senses("fire", {2, 0}, Time::seconds(2)));   // r = 2
  EXPECT_FALSE(env.senses("fire", {3.5, 0}, Time::seconds(100)));  // cap 3
}

TEST(Environment, ScalarReadingFalloff) {
  Environment env;
  Target t;
  t.type = "x";
  t.trajectory = std::make_unique<StationaryTrajectory>(Vec2{0, 0});
  t.radius = RadiusProfile::constant(1.0);
  t.emissions["magnetic"] = 8.0;
  env.add_target(std::move(t));

  // Magnetic falls off with the cube of distance (§6.1).
  const double at1 = env.reading("magnetic", {1, 0}, Time::origin());
  const double at2 = env.reading("magnetic", {2, 0}, Time::origin());
  EXPECT_NEAR(at1, 8.0, 1e-9);
  EXPECT_NEAR(at2, 1.0, 1e-9);
}

TEST(Environment, ReadingsSumOverTargets) {
  Environment env;
  for (double x : {-1.0, 1.0}) {
    Target t;
    t.type = "x";
    t.trajectory = std::make_unique<StationaryTrajectory>(Vec2{x, 0});
    t.radius = RadiusProfile::constant(1.0);
    t.emissions["magnetic"] = 1.0;
    env.add_target(std::move(t));
  }
  EXPECT_NEAR(env.reading("magnetic", {0, 0}, Time::origin()), 2.0, 1e-9);
}

TEST(Environment, AmbientAndUnknownChannels) {
  Environment env;
  EXPECT_NEAR(env.reading("temperature", {0, 0}, Time::origin()), 20.0,
              1e-9);
  EXPECT_NEAR(env.reading("no_such_channel", {0, 0}, Time::origin()), 0.0,
              1e-9);
}

TEST(Environment, SensedTargetsLists) {
  Environment env;
  Target a;
  a.type = "car";
  a.trajectory = std::make_unique<StationaryTrajectory>(Vec2{0, 0});
  a.radius = RadiusProfile::constant(2.0);
  const TargetId ida = env.add_target(std::move(a));
  Target b;
  b.type = "car";
  b.trajectory = std::make_unique<StationaryTrajectory>(Vec2{1, 0});
  b.radius = RadiusProfile::constant(2.0);
  const TargetId idb = env.add_target(std::move(b));

  const auto sensed = env.sensed_targets({0.5, 0}, Time::origin());
  ASSERT_EQ(sensed.size(), 2u);
  EXPECT_EQ(sensed[0], ida);
  EXPECT_EQ(sensed[1], idb);
  EXPECT_EQ(env.active_targets_of("car", Time::origin()).size(), 2u);
  EXPECT_TRUE(env.active_targets_of("bus", Time::origin()).empty());
}

}  // namespace
}  // namespace et::env
