#include "core/aggregate_state.hpp"

#include <gtest/gtest.h>

/// Tests of the §3.2.3 approximate-aggregate-state semantics: a successful
/// read implies (a) fresh samples only, (b) at least N_e distinct
/// reporters, (c) the newest sample per reporter.
namespace et::core {
namespace {

class AggregateStateTest : public ::testing::Test {
 protected:
  AggregateStateTest() {
    spec.name = "test";
    spec.activation = "x";
    spec.variables.push_back(AggregateVarSpec{
        "location", "avg", "position", Duration::seconds(1), 2});
    spec.variables.push_back(AggregateVarSpec{
        "heat", "max", "temperature", Duration::seconds(3), 1});
    table.emplace(spec, registry);
  }

  void report(std::uint64_t node, double x, double heat, double at_s) {
    table->add_report(NodeId{node}, {x, 0.0}, Time::seconds(at_s),
                      {0.0, heat});
  }

  ContextTypeSpec spec;
  AggregationRegistry registry = AggregationRegistry::with_builtins();
  std::optional<AggregateStateTable> table;
};

TEST_F(AggregateStateTest, EmptyTableReadsNull) {
  EXPECT_FALSE(table->read(0u, Time::seconds(1)).has_value());
  EXPECT_FALSE(table->read("location", Time::seconds(1)).has_value());
  EXPECT_FALSE(table->valid(0, Time::seconds(1)));
}

TEST_F(AggregateStateTest, CriticalMassGatesReads) {
  report(0, 1.0, 50.0, 0.5);
  // One reporter < N_e = 2 for location...
  EXPECT_FALSE(table->read("location", Time::seconds(1)).has_value());
  // ...but heat has N_e = 1 and succeeds.
  EXPECT_TRUE(table->read("heat", Time::seconds(1)).has_value());

  report(1, 3.0, 60.0, 0.6);
  const auto location = table->read("location", Time::seconds(1));
  ASSERT_TRUE(location.has_value());
  EXPECT_DOUBLE_EQ(location->vector.x, 2.0);
}

TEST_F(AggregateStateTest, FreshnessExpiresSamples) {
  report(0, 1.0, 50.0, 0.0);
  report(1, 3.0, 60.0, 0.1);
  ASSERT_TRUE(table->read("location", Time::seconds(1)).has_value());
  // At t = 1.2 s the t = 0.0 sample is older than L_e = 1 s.
  EXPECT_FALSE(table->read("location", Time::seconds(1.2)).has_value());
  // heat has a 3 s horizon and still reads.
  EXPECT_TRUE(table->read("heat", Time::seconds(1.2)).has_value());
  // Much later everything is stale.
  EXPECT_FALSE(table->read("heat", Time::seconds(10)).has_value());
}

TEST_F(AggregateStateTest, NewestSamplePerReporterWins) {
  report(0, 0.0, 10.0, 0.1);
  report(1, 2.0, 10.0, 0.2);
  report(0, 4.0, 10.0, 0.5);  // reporter 0 moved its estimate
  const auto location = table->read("location", Time::seconds(1));
  ASSERT_TRUE(location.has_value());
  // avg of newest-per-reporter: (4 + 2) / 2, not (0 + 2 + 4) / 3.
  EXPECT_DOUBLE_EQ(location->vector.x, 3.0);
  EXPECT_EQ(table->fresh_reporter_count(0, Time::seconds(1)), 2u);
}

TEST_F(AggregateStateTest, DuplicateReporterDoesNotMeetCriticalMass) {
  report(0, 1.0, 10.0, 0.1);
  report(0, 2.0, 10.0, 0.2);
  report(0, 3.0, 10.0, 0.3);
  // Three samples but one distinct reporter: below N_e = 2.
  EXPECT_FALSE(table->read("location", Time::seconds(0.5)).has_value());
}

TEST_F(AggregateStateTest, OutOfOrderArrivalHandled) {
  report(0, 1.0, 10.0, 0.8);
  report(1, 3.0, 10.0, 0.2);  // older measurement arrives later
  const auto location = table->read("location", Time::seconds(1));
  ASSERT_TRUE(location.has_value());
  EXPECT_DOUBLE_EQ(location->vector.x, 2.0);
  // Advance so only the newer one is fresh: falls below critical mass.
  EXPECT_FALSE(table->read("location", Time::seconds(1.5)).has_value());
}

TEST_F(AggregateStateTest, ReportsReceivedCountsAll) {
  report(0, 1.0, 10.0, 0.1);
  report(0, 1.0, 10.0, 0.2);
  report(1, 1.0, 10.0, 0.3);
  EXPECT_EQ(table->reports_received(), 3u);
}

TEST_F(AggregateStateTest, ClearDropsWindow) {
  report(0, 1.0, 10.0, 0.1);
  report(1, 3.0, 10.0, 0.2);
  ASSERT_TRUE(table->read("location", Time::seconds(0.5)).has_value());
  table->clear();
  EXPECT_FALSE(table->read("location", Time::seconds(0.5)).has_value());
}

TEST_F(AggregateStateTest, UnknownVariableReadsNull) {
  report(0, 1.0, 10.0, 0.1);
  report(1, 1.0, 10.0, 0.1);
  EXPECT_FALSE(table->read("bogus", Time::seconds(0.5)).has_value());
  EXPECT_FALSE(table->read(7u, Time::seconds(0.5)).has_value());
}

TEST_F(AggregateStateTest, ScalarAggregationUsesSensorColumn) {
  report(0, 1.0, 45.0, 0.1);
  report(1, 2.0, 80.0, 0.2);
  const auto heat = table->read("heat", Time::seconds(1));
  ASSERT_TRUE(heat.has_value());
  EXPECT_DOUBLE_EQ(heat->scalar, 80.0);  // max
}

/// Property sweep: for any (N_e, reporter count) pair, the read succeeds
/// iff reporters >= N_e — the §3.2.3 guarantee.
class CriticalMassSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CriticalMassSweep, ReadSucceedsIffCriticalMassMet) {
  const auto [critical_mass, reporters] = GetParam();
  ContextTypeSpec spec;
  spec.name = "sweep";
  spec.activation = "x";
  spec.variables.push_back(
      AggregateVarSpec{"v", "avg", "magnetic", Duration::seconds(1),
                       static_cast<std::size_t>(critical_mass)});
  const auto registry = AggregationRegistry::with_builtins();
  AggregateStateTable table(spec, registry);
  for (int i = 0; i < reporters; ++i) {
    table.add_report(NodeId{static_cast<std::uint64_t>(i)}, {0, 0},
                     Time::seconds(0.5), {1.0});
  }
  EXPECT_EQ(table.read(0u, Time::seconds(1)).has_value(),
            reporters >= critical_mass);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CriticalMassSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8),
                       ::testing::Values(0, 1, 2, 3, 5, 8, 12)));

}  // namespace
}  // namespace et::core
