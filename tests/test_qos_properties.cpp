#include <gtest/gtest.h>

#include "test_world.hpp"

/// Property tests of the §3.2.3 QoS guarantees on the *live* system (not
/// the isolated table): every successful aggregate read observed during a
/// run must have been computed from (a) at least N_e distinct reporters,
/// (b) samples no staler than L_e, and (c) reporters that were group
/// members. The probe object validates these on every read it performs,
/// across a parameter sweep of (N_e, L_e, loss).
namespace et::test {
namespace {

struct QosParams {
  std::size_t critical_mass;
  double freshness_s;
  double loss;
};

class QosSweep : public ::testing::TestWithParam<QosParams> {};

TEST_P(QosSweep, SuccessfulReadsHonorDeclaredQoS) {
  const QosParams params = GetParam();

  struct Observed {
    int reads = 0;
    int successes = 0;
  };
  auto observed = std::make_shared<Observed>();

  TestWorld::Options options;
  options.cols = 10;
  options.critical_mass = params.critical_mass;
  options.freshness = Duration::seconds(params.freshness_s);
  options.loss_probability = params.loss;
  options.model_collisions = params.loss > 0.0;
  options.seed = 1234 + params.critical_mass;

  TestWorld* world_ptr = nullptr;
  options.mutate_spec = [&observed, &world_ptr,
                         params](core::ContextTypeSpec& spec) {
    core::ObjectSpec checker;
    checker.name = "checker";
    core::MethodSpec probe;
    probe.name = "probe";
    probe.invocation.kind = core::InvocationSpec::Kind::kTimer;
    probe.invocation.period = Duration::millis(400);
    probe.body = [&observed, &world_ptr,
                  params](core::TrackingContext& ctx) {
      observed->reads++;
      auto* agg =
          world_ptr->groups(ctx.node()).aggregates(ctx.type_index());
      ASSERT_NE(agg, nullptr);
      const auto value = ctx.read("where");
      const std::size_t fresh =
          agg->fresh_reporter_count(0, ctx.now());
      if (value.has_value()) {
        observed->successes++;
        // Guarantee (b)+(c): the backing sample set meets critical mass.
        EXPECT_GE(fresh, params.critical_mass)
            << "successful read below critical mass";
      } else {
        EXPECT_LT(fresh, params.critical_mass)
            << "null read despite critical mass being met";
      }
    };
    checker.methods.push_back(std::move(probe));
    spec.objects.push_back(std::move(checker));
  };

  TestWorld world(options);
  world_ptr = &world;
  world.add_blob({4.5, 1.0}, 1.4);
  world.run(15);

  EXPECT_GT(observed->reads, 10);
  if (params.critical_mass <= 4 && params.loss < 0.3) {
    EXPECT_GT(observed->successes, 0)
        << "achievable QoS should produce successful reads";
  }
  if (params.critical_mass >= 50) {
    EXPECT_EQ(observed->successes, 0)
        << "unachievable critical mass must never read";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QosSweep,
    ::testing::Values(QosParams{1, 1.0, 0.0}, QosParams{2, 1.0, 0.0},
                      QosParams{3, 2.0, 0.0}, QosParams{4, 1.5, 0.1},
                      QosParams{2, 0.8, 0.2}, QosParams{2, 3.0, 0.3},
                      QosParams{50, 1.0, 0.0}),
    [](const ::testing::TestParamInfo<QosParams>& info) {
      char name[64];
      std::snprintf(name, sizeof(name), "N%zu_L%dms_loss%d",
                    info.param.critical_mass,
                    static_cast<int>(info.param.freshness_s * 1000),
                    static_cast<int>(info.param.loss * 100));
      return std::string(name);
    });

/// Report-period derivation: P_e = L_e - d, floored at the configured
/// minimum (§3.2.3) — checked indirectly through report traffic rates.
TEST(QosProperties, ReportRateTracksFreshness) {
  auto measure_reports = [](double freshness_s) {
    TestWorld::Options options;
    options.freshness = Duration::seconds(freshness_s);
    options.critical_mass = 1;
    TestWorld world(options);
    world.add_blob({3.5, 1.0});
    world.run(10);
    std::uint64_t reports = 0;
    for (std::size_t i = 0; i < world.system().node_count(); ++i) {
      reports += world.groups(NodeId{i}).stats().reports_sent;
    }
    return reports;
  };
  // Tighter freshness => shorter report period => more report traffic.
  const auto tight = measure_reports(0.6);
  const auto loose = measure_reports(3.0);
  EXPECT_GT(tight, loose * 2);
}

/// Invariant sweep across seeds: at no sampling instant may two leaders of
/// the same label exist once the channel is lossless (yield resolves any
/// transient pair within one heartbeat exchange).
class LeaderUniquenessSweep : public ::testing::TestWithParam<int> {};

TEST_P(LeaderUniquenessSweep, AtMostOneEstablishedLeaderPerLabel) {
  TestWorld::Options options;
  options.cols = 12;
  options.seed = static_cast<std::uint64_t>(GetParam()) * 77 + 5;
  TestWorld world(options);
  world.add_moving_blob({-0.5, 1.0}, {12.0, 1.0}, 0.4);

  int violations = 0;
  for (int step = 0; step < 60; ++step) {
    world.run(0.5);
    std::map<LabelId, int> leaders_per_label;
    for (NodeId leader : world.leaders()) {
      if (world.groups(leader).leader_weight(0) > 0) {
        leaders_per_label[world.groups(leader).current_label(0)]++;
      }
    }
    for (const auto& [label, count] : leaders_per_label) {
      if (count > 1) ++violations;
    }
  }
  EXPECT_EQ(violations, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LeaderUniquenessSweep,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace et::test
