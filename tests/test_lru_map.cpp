#include "util/lru_map.hpp"

#include <gtest/gtest.h>

#include <string>

namespace et {
namespace {

TEST(LruMap, PutAndGet) {
  LruMap<int, std::string> map(3);
  map.put(1, "one");
  map.put(2, "two");
  EXPECT_EQ(map.size(), 2u);
  ASSERT_NE(map.get(1), nullptr);
  EXPECT_EQ(*map.get(1), "one");
  EXPECT_EQ(map.get(9), nullptr);
}

TEST(LruMap, OverwriteKeepsSize) {
  LruMap<int, int> map(2);
  map.put(1, 10);
  map.put(1, 11);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(*map.get(1), 11);
}

TEST(LruMap, EvictsLeastRecentlyUsed) {
  LruMap<int, int> map(2);
  map.put(1, 10);
  map.put(2, 20);
  const auto evicted = map.put(3, 30);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->first, 1);
  EXPECT_EQ(evicted->second, 10);
  EXPECT_FALSE(map.contains(1));
  EXPECT_TRUE(map.contains(2));
  EXPECT_TRUE(map.contains(3));
}

TEST(LruMap, GetRefreshesRecency) {
  LruMap<int, int> map(2);
  map.put(1, 10);
  map.put(2, 20);
  map.get(1);  // 1 becomes most recent; 2 is now LRU
  const auto evicted = map.put(3, 30);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->first, 2);
  EXPECT_TRUE(map.contains(1));
}

TEST(LruMap, PeekDoesNotRefresh) {
  LruMap<int, int> map(2);
  map.put(1, 10);
  map.put(2, 20);
  EXPECT_EQ(*map.peek(1), 10);  // no recency change: 1 stays LRU
  const auto evicted = map.put(3, 30);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->first, 1);
}

TEST(LruMap, PutRefreshesRecency) {
  LruMap<int, int> map(2);
  map.put(1, 10);
  map.put(2, 20);
  map.put(1, 11);  // overwrite refreshes
  const auto evicted = map.put(3, 30);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->first, 2);
}

TEST(LruMap, Erase) {
  LruMap<int, int> map(3);
  map.put(1, 10);
  EXPECT_TRUE(map.erase(1));
  EXPECT_FALSE(map.erase(1));
  EXPECT_TRUE(map.empty());
}

TEST(LruMap, Clear) {
  LruMap<int, int> map(3);
  map.put(1, 10);
  map.put(2, 20);
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.get(1), nullptr);
  map.put(3, 30);  // still usable
  EXPECT_EQ(map.size(), 1u);
}

TEST(LruMap, ForEachOrdersMostRecentFirst) {
  LruMap<int, int> map(3);
  map.put(1, 10);
  map.put(2, 20);
  map.put(3, 30);
  map.get(1);
  std::vector<int> order;
  map.for_each([&](int key, int) { order.push_back(key); });
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(LruMap, CapacityOne) {
  LruMap<int, int> map(1);
  map.put(1, 10);
  const auto evicted = map.put(2, 20);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->first, 1);
  EXPECT_EQ(map.size(), 1u);
}

TEST(LruMap, HeavyChurn) {
  LruMap<int, int> map(16);
  for (int i = 0; i < 1000; ++i) map.put(i, i);
  EXPECT_EQ(map.size(), 16u);
  for (int i = 984; i < 1000; ++i) {
    ASSERT_TRUE(map.contains(i)) << i;
    EXPECT_EQ(*map.get(i), i);
  }
  EXPECT_FALSE(map.contains(983));
}

}  // namespace
}  // namespace et
