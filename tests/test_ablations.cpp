#include <gtest/gtest.h>

#include "test_world.hpp"

/// Ablations of the design choices §5.2 motivates: leader-weight
/// suppression, the wait-timer/receive-timer ratio, heartbeat perimeter
/// flooding (the parameter h left to future work in §6.2 — implemented
/// here), and in-group heartbeat relaying for multi-hop groups.
namespace et::test {
namespace {

using core::GroupEvent;

TEST(Ablation, WeightSuppressionMergesConvergingGroups) {
  auto run = [](bool suppression) {
    TestWorld::Options options;
    options.cols = 16;
    options.group.weight_suppression_enabled = suppression;
    TestWorld world(options);
    world.add_moving_blob({1.0, 1.0}, {8.0, 1.0}, 0.25);
    world.add_moving_blob({14.0, 1.0}, {8.0, 1.0}, 0.25);
    world.run(40);
    return world.leaders().size();
  };
  EXPECT_EQ(run(true), 1u)
      << "with suppression, overlapped groups converge to one label";
  // Without the weight rule the yield rule still merges *identical*
  // labels, but distinct labels of the same type can persist side by side.
  EXPECT_GE(run(false), 1u);
}

TEST(Ablation, WeightSuppressionEventCountsDiffer) {
  auto suppressions = [](bool enabled) {
    TestWorld::Options options;
    options.cols = 16;
    options.group.weight_suppression_enabled = enabled;
    TestWorld world(options);
    world.add_moving_blob({1.0, 1.0}, {8.0, 1.0}, 0.3);
    world.add_moving_blob({14.0, 1.0}, {8.0, 1.0}, 0.3);
    world.run(35);
    return world.events().count(GroupEvent::Kind::kLabelSuppressed);
  };
  EXPECT_EQ(suppressions(false), 0u);
  EXPECT_GE(suppressions(true), 1u);
}

TEST(Ablation, ShortReceiveTimerCausesSpuriousTakeovers) {
  // Receive timer below ~1 heartbeat period: members time out between
  // perfectly healthy heartbeats and usurp leadership constantly.
  auto takeovers = [](double factor) {
    TestWorld::Options options;
    options.group.receive_timer_factor = factor;
    options.group.relinquish_enabled = true;
    TestWorld world(options);
    world.add_blob({3.5, 1.0});
    world.run(20);
    return world.events().count(GroupEvent::Kind::kTakeover) +
           world.events().count(GroupEvent::Kind::kYield);
  };
  const auto healthy = takeovers(2.1);  // the paper's best setting
  const auto twitchy = takeovers(0.6);
  EXPECT_EQ(healthy, 0u) << "no churn for a stationary target";
  EXPECT_GT(twitchy, 3u) << "sub-period receive timers must thrash";
}

TEST(Ablation, WaitTimerShorterThanReceiveTimerForksLabels) {
  // §6.2: "To prevent spurious groups from being formed around the same
  // external stimulus during a leadership takeover, the wait timer must be
  // longer than the receive timer." Invert the ratio and kill the leader:
  // fringe nodes forget the group before the takeover completes.
  auto labels_created = [](double wait_factor, std::uint64_t seed) {
    TestWorld::Options options;
    options.group.wait_timer_factor = wait_factor;
    options.group.relinquish_enabled = false;
    options.group.heartbeat_period = Duration::seconds(1);
    options.seed = seed;
    TestWorld world(options);
    world.add_moving_blob({0.0, 1.0}, {8.0, 1.0}, 0.6);
    world.run(20);
    return world.events().count(GroupEvent::Kind::kLabelCreated);
  };
  std::uint64_t healthy = 0;
  std::uint64_t broken = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    healthy += labels_created(4.2, seed);
    broken += labels_created(0.3, seed);
  }
  EXPECT_GT(broken, healthy)
      << "wait < receive must fork more labels across seeds";
}

TEST(Ablation, PerimeterFloodingExtendsAwareness) {
  // The §6.2 future-work mechanism: with heartbeat transmit power cut to
  // one grid unit, perimeter flooding (h > 0) re-propagates heartbeats
  // through non-members so fringe nodes still learn the label.
  auto labels_created = [](std::uint8_t h, std::uint64_t seed) {
    TestWorld::Options options;
    options.cols = 14;
    options.group.heartbeat_range = 1.0;
    options.group.perimeter_hops = h;
    options.group.heartbeat_period = Duration::seconds(2);
    options.seed = seed;
    TestWorld world(options);
    world.add_moving_blob({-0.5, 1.0}, {14.0, 1.0}, 0.4, 1.0);
    world.run(40);
    return world.events().count(GroupEvent::Kind::kLabelCreated);
  };
  std::uint64_t without = 0;
  std::uint64_t with = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    without += labels_created(0, seed);
    with += labels_created(2, seed);
  }
  EXPECT_LT(with, without)
      << "perimeter flooding should reduce spurious label creation";
}

TEST(Ablation, PerimeterFloodingCostsBandwidth) {
  auto relayed = [](std::uint8_t h) {
    TestWorld::Options options;
    options.group.perimeter_hops = h;
    TestWorld world(options);
    world.add_blob({3.5, 1.0});
    world.run(10);
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < world.system().node_count(); ++i) {
      total += world.groups(NodeId{i}).stats().heartbeats_relayed;
    }
    return total;
  };
  EXPECT_EQ(relayed(0), 0u);
  EXPECT_GT(relayed(1), 10u)
      << "every idle hearer relays once per heartbeat when h = 1";
}

TEST(Ablation, MemberRelayKeepsWideGroupsConnected) {
  // Group diameter (2 x SR = 4) exceeds the radio range (2.5): without
  // member relaying, far-side members never hear the leader and fork; with
  // relaying the group stays coherent.
  auto labels = [](bool relay) {
    TestWorld::Options options;
    options.cols = 12;
    options.rows = 3;
    options.comm_radius = 2.5;
    options.sensing_radius = 2.0;
    options.group.member_relay_heartbeats = relay;
    TestWorld world(options);
    world.add_blob({5.5, 1.0}, 2.0);
    world.run(15);
    return world.leaders().size();
  };
  EXPECT_EQ(labels(true), 1u);
  EXPECT_GE(labels(false), 2u);
}

TEST(Ablation, HeartbeatPeriodDrivesTraffic) {
  auto heartbeats = [](double period_s) {
    TestWorld::Options options;
    options.group.heartbeat_period = Duration::seconds(period_s);
    TestWorld world(options);
    world.add_blob({3.5, 1.0});
    world.run(20);
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < world.system().node_count(); ++i) {
      total += world.groups(NodeId{i}).stats().heartbeats_sent;
    }
    return total;
  };
  const auto fast = heartbeats(0.25);
  const auto slow = heartbeats(1.0);
  EXPECT_NEAR(static_cast<double>(fast) / static_cast<double>(slow), 4.0,
              1.0);
}

}  // namespace
}  // namespace et::test
