#include "core/transport.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "metrics/invariants.hpp"
#include "test_world.hpp"

/// Reliability-layer tests: acked end-to-end delivery, retransmission
/// through connectivity gaps, receiver-side duplicate suppression, the
/// bounded retry budget with its delivery_failed callback, the negative
/// resolution cache, and the fire-and-forget ablation mode.
namespace et::test {
namespace {

/// MtpWorld variant (see test_transport.cpp) with a tweakable Options
/// hook, so individual tests can flip transport knobs (reliable mode off,
/// shorter budgets) before the system starts.
struct RelWorld {
  explicit RelWorld(
      std::function<void(TestWorld::Options&)> tweak = {}) {
    TestWorld::Options options;
    options.rows = 5;
    options.cols = 12;
    options.enable_directory = true;
    options.enable_transport = true;

    core::ContextTypeSpec station;
    station.name = "station";
    station.activation = "station_sensor";
    station.variables.push_back(core::AggregateVarSpec{
        "level", "avg", "magnetic", Duration::seconds(2), 1});
    core::ObjectSpec sink;
    sink.name = "sink";
    core::MethodSpec ping;
    ping.name = "ping";
    ping.invocation.kind = core::InvocationSpec::Kind::kCondition;
    ping.invocation.condition = [](core::TrackingContext&) {
      return false;  // never self-invoked; port-only
    };
    ping.body = [this](core::TrackingContext& ctx) {
      ++pings;
      last_args = ctx.incoming_args();
    };
    sink.methods.push_back(std::move(ping));
    station.objects.push_back(std::move(sink));
    options.extra_specs.push_back(std::move(station));
    options.extra_senses.emplace_back("station_sensor",
                                      core::sense_target("station"));
    if (tweak) tweak(options);
    world.emplace(options);
  }

  TargetId add_station(Vec2 at) {
    env::Target t;
    t.type = "station";
    t.trajectory = std::make_unique<env::StationaryTrajectory>(at);
    t.radius = env::RadiusProfile::constant(1.2);
    t.emissions["magnetic"] = 5.0;
    return world->env().add_target(std::move(t));
  }

  std::optional<NodeId> station_leader() { return world->sole_leader(1); }

  core::Transport* transport(NodeId node) {
    return world->system().stack(node).transport();
  }

  Vec2 position(NodeId node) {
    return world->system().network().mote(node).position();
  }

  /// Cuts `node` off from the rest of the network (component 1 vs 0).
  void isolate(NodeId node) {
    std::vector<std::uint32_t> component_of(world->system().node_count(),
                                            0);
    component_of[node.value()] = 1;
    world->system().medium().set_partition(std::move(component_of));
  }
  void heal() { world->system().medium().clear_partition(); }

  std::optional<TestWorld> world;
  int pings = 0;
  std::vector<double> last_args;
};

TEST(ReliableTransport, AckSettlesPendingTransfer) {
  RelWorld mtp;
  mtp.world->add_blob({2.0, 2.0});
  mtp.add_station({9.0, 2.0});
  mtp.world->run(8);
  const auto blob_leader = mtp.world->sole_leader(0);
  const auto station_leader = mtp.station_leader();
  ASSERT_TRUE(blob_leader && station_leader);
  const LabelId label = mtp.world->groups(*station_leader).current_label(1);
  auto* origin = mtp.transport(*blob_leader);

  origin->invoke(1, label, PortId{0}, {1.0});
  EXPECT_EQ(origin->pending_transfers(), 1u)
      << "a reliable transfer must stay pending until acked";
  mtp.world->run(5);

  EXPECT_EQ(mtp.pings, 1);
  EXPECT_EQ(origin->pending_transfers(), 0u);
  EXPECT_EQ(origin->stats().acks_received, 1u);
  EXPECT_EQ(origin->stats().delivery_failures, 0u);
  EXPECT_GE(mtp.transport(*station_leader)->stats().acks_sent, 1u);
}

TEST(ReliableTransport, RetransmitRecoversAfterPartitionHeals) {
  RelWorld mtp;
  mtp.world->add_blob({2.0, 2.0});
  mtp.add_station({9.0, 2.0});
  mtp.world->run(8);
  const auto blob_leader = mtp.world->sole_leader(0);
  const auto station_leader = mtp.station_leader();
  ASSERT_TRUE(blob_leader && station_leader);
  const LabelId label = mtp.world->groups(*station_leader).current_label(1);
  auto* origin = mtp.transport(*blob_leader);

  // The origin already knows the route (no directory round trip), then
  // gets cut off before it can send.
  origin->on_leader_observed(1, label, *station_leader,
                             mtp.position(*station_leader));
  mtp.isolate(*blob_leader);
  origin->invoke(1, label, PortId{0}, {42.0});
  // Long enough that the routing-layer ARQ (backoff ladder + fallback
  // sweep, ~2.6 s worst case) gives up on the initial send entirely — the
  // recovery must come from a transport-layer retransmit, not a lingering
  // network-layer retry.
  mtp.world->run(3.0);
  EXPECT_EQ(mtp.pings, 0);
  EXPECT_EQ(origin->pending_transfers(), 1u);

  mtp.heal();
  mtp.world->run(8);  // a later retry gets through

  EXPECT_EQ(mtp.pings, 1) << "retransmission must recover the transfer";
  ASSERT_EQ(mtp.last_args.size(), 1u);
  EXPECT_DOUBLE_EQ(mtp.last_args[0], 42.0);
  EXPECT_GE(origin->stats().retransmits, 1u);
  EXPECT_EQ(origin->stats().acks_received, 1u);
  EXPECT_EQ(origin->stats().delivery_failures, 0u);
  EXPECT_EQ(origin->pending_transfers(), 0u);
}

TEST(ReliableTransport, DuplicateRetransmitIsSuppressed) {
  RelWorld mtp;
  mtp.world->add_blob({2.0, 2.0});
  mtp.add_station({9.0, 2.0});
  mtp.world->run(8);
  const auto blob_leader = mtp.world->sole_leader(0);
  const auto station_leader = mtp.station_leader();
  ASSERT_TRUE(blob_leader && station_leader);
  const LabelId label = mtp.world->groups(*station_leader).current_label(1);
  auto* origin = mtp.transport(*blob_leader);
  auto* dest = mtp.transport(*station_leader);

  origin->invoke(1, label, PortId{0}, {});
  // Let the invocation land, then cut the origin off at the instant of
  // delivery so the returning ack cannot reach it.
  for (int i = 0; i < 2500 && mtp.pings == 0; ++i) mtp.world->run(0.002);
  ASSERT_EQ(mtp.pings, 1);
  mtp.isolate(*blob_leader);
  mtp.world->run(3.0);  // ack + early retries die against the partition
  EXPECT_EQ(origin->stats().acks_received, 0u);
  mtp.heal();
  mtp.world->run(10);  // a surviving retry reaches the (served) receiver

  EXPECT_EQ(mtp.pings, 1)
      << "the dedup window must stop the retransmit from re-invoking";
  EXPECT_GE(dest->stats().duplicates_suppressed, 1u);
  EXPECT_GE(dest->stats().acks_sent, 2u) << "duplicates are re-acked";
  EXPECT_GE(origin->stats().retransmits, 1u);
  EXPECT_EQ(origin->stats().acks_received, 1u);
  EXPECT_EQ(origin->stats().delivery_failures, 0u);
  EXPECT_EQ(origin->pending_transfers(), 0u);
}

TEST(ReliableTransport, RetryBudgetExhaustionFiresDeliveryFailed) {
  RelWorld mtp;
  mtp.world->add_blob({2.0, 2.0});
  mtp.add_station({9.0, 2.0});
  mtp.world->run(8);
  const auto blob_leader = mtp.world->sole_leader(0);
  const auto station_leader = mtp.station_leader();
  ASSERT_TRUE(blob_leader && station_leader);
  const LabelId label = mtp.world->groups(*station_leader).current_label(1);
  auto* origin = mtp.transport(*blob_leader);

  metrics::InvariantOracle oracle(mtp.world->system());

  int failures = 0;
  LabelId failed_label;
  std::vector<double> failed_args;
  origin->set_delivery_failed(
      [&](core::TypeIndex type, LabelId dst, PortId port,
          const std::vector<double>& args) {
        ++failures;
        failed_label = dst;
        failed_args = args;
        EXPECT_EQ(type, 1u);
        EXPECT_EQ(port, PortId{0});
      });

  origin->on_leader_observed(1, label, *station_leader,
                             mtp.position(*station_leader));
  mtp.isolate(*blob_leader);  // never healed: the transfer cannot succeed
  origin->invoke(1, label, PortId{0}, {7.0});
  // Past the full ladder: four retransmits plus the final x16 timer before
  // the failure fires — 1.2 s x (1+2+4+8+16) x jitter, up to ~47 s.
  mtp.world->run(48);

  EXPECT_EQ(mtp.pings, 0);
  EXPECT_EQ(failures, 1);
  EXPECT_EQ(failed_label, label);
  ASSERT_EQ(failed_args.size(), 1u);
  EXPECT_DOUBLE_EQ(failed_args[0], 7.0);
  EXPECT_EQ(origin->stats().delivery_failures, 1u);
  EXPECT_EQ(origin->stats().retransmits,
            static_cast<std::uint64_t>(origin->config().max_retries))
      << "the budget bounds retransmissions exactly";
  EXPECT_EQ(origin->pending_transfers(), 0u);
  EXPECT_TRUE(oracle.ok()) << oracle.report();
}

TEST(ReliableTransport, NegativeCacheFailsFastUntilTtlExpires) {
  RelWorld mtp;
  mtp.world->run(3);
  auto* transport = mtp.transport(NodeId{0});
  const LabelId ghost = LabelId::make(NodeId{42}, 9);

  transport->invoke(1, ghost, PortId{0}, {});
  for (int i = 0; i < 400 && transport->stats().dropped_unknown == 0; ++i) {
    mtp.world->run(0.025);
  }
  ASSERT_EQ(transport->stats().dropped_unknown, 1u);
  const auto lookups = transport->stats().directory_lookups;
  EXPECT_GE(lookups, 1u);

  // Within the TTL: the verdict is cached, no new query goes out.
  transport->invoke(1, ghost, PortId{0}, {});
  EXPECT_GE(transport->stats().resolve_failed, 1u)
      << "a recently-unresolvable label must fail fast";
  EXPECT_EQ(transport->stats().directory_lookups, lookups);

  // Past the TTL: the label gets a fresh chance at resolution.
  mtp.world->run(2.5);
  transport->invoke(1, ghost, PortId{0}, {});
  mtp.world->run(0.1);
  EXPECT_EQ(transport->stats().directory_lookups, lookups + 1);
  EXPECT_EQ(mtp.pings, 0);
}

TEST(ReliableTransport, FireAndForgetModeSendsNoAcks) {
  RelWorld mtp([](TestWorld::Options& options) {
    options.transport.reliable = false;
  });
  mtp.world->add_blob({2.0, 2.0});
  mtp.add_station({9.0, 2.0});
  mtp.world->run(8);
  const auto blob_leader = mtp.world->sole_leader(0);
  const auto station_leader = mtp.station_leader();
  ASSERT_TRUE(blob_leader && station_leader);
  const LabelId label = mtp.world->groups(*station_leader).current_label(1);
  auto* origin = mtp.transport(*blob_leader);

  origin->invoke(1, label, PortId{0}, {3.0});
  EXPECT_EQ(origin->pending_transfers(), 0u)
      << "fire-and-forget tracks nothing";
  mtp.world->run(5);

  EXPECT_EQ(mtp.pings, 1);
  EXPECT_EQ(origin->stats().acks_received, 0u);
  EXPECT_EQ(origin->stats().retransmits, 0u);
  EXPECT_EQ(mtp.transport(*station_leader)->stats().acks_sent, 0u);
}

}  // namespace
}  // namespace et::test
