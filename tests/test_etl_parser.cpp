#include "etl/parser.hpp"

#include <gtest/gtest.h>

namespace et::etl {
namespace {

Program parse_ok(std::string_view source) {
  auto program = parse(source);
  EXPECT_TRUE(program.ok())
      << (program.ok() ? "" : program.error().to_string());
  return program.ok() ? std::move(program).value() : Program{};
}

void expect_parse_error(std::string_view source,
                        std::string_view fragment = "") {
  auto program = parse(source);
  ASSERT_FALSE(program.ok()) << "expected failure for: " << source;
  if (!fragment.empty()) {
    EXPECT_NE(program.error().message.find(fragment), std::string::npos)
        << program.error().message;
  }
}

constexpr const char* kFig2 = R"(
begin context tracker
  activation: magnetic_sensor_reading();
  location : avg(position) confidence=2, freshness=1s;
  begin object reporter
    invocation: TIMER(5s)
    report() {
      send(pursuer, self.label, location);
    }
  end
end context
)";

TEST(Parser, Figure2Program) {
  const Program program = parse_ok(kFig2);
  ASSERT_EQ(program.contexts.size(), 1u);
  const ContextDecl& ctx = program.contexts[0];
  EXPECT_EQ(ctx.name, "tracker");
  ASSERT_TRUE(ctx.activation);
  ASSERT_TRUE(ctx.activation->call);
  EXPECT_EQ(ctx.activation->call->callee, "magnetic_sensor_reading");

  ASSERT_EQ(ctx.variables.size(), 1u);
  const AggVarDecl& var = ctx.variables[0];
  EXPECT_EQ(var.name, "location");
  EXPECT_EQ(var.aggregation, "avg");
  ASSERT_EQ(var.sensors.size(), 1u);
  EXPECT_EQ(var.sensors[0], "position");
  ASSERT_TRUE(var.confidence.has_value());
  EXPECT_DOUBLE_EQ(*var.confidence, 2.0);
  ASSERT_TRUE(var.freshness.has_value());
  EXPECT_EQ(*var.freshness, Duration::seconds(1));

  ASSERT_EQ(ctx.objects.size(), 1u);
  const ObjectDecl& object = ctx.objects[0];
  EXPECT_EQ(object.name, "reporter");
  ASSERT_EQ(object.methods.size(), 1u);
  const MethodDecl& method = object.methods[0];
  EXPECT_EQ(method.name, "report");
  EXPECT_EQ(method.invocation.kind, InvocationDecl::Kind::kTimer);
  EXPECT_EQ(method.invocation.period, Duration::seconds(5));
  ASSERT_EQ(method.body.size(), 1u);
  ASSERT_TRUE(method.body[0]->send);
  EXPECT_EQ(method.body[0]->send->destination, "pursuer");
  EXPECT_EQ(method.body[0]->send->args.size(), 2u);
}

TEST(Parser, MultipleContexts) {
  const Program program = parse_ok(R"(
    begin context car
      activation: magnetic();
    end context
    begin context fire
      activation: temperature > 180 and light > 0.5;
      heat : max(temperature) confidence=3, freshness=3s;
    end context
  )");
  ASSERT_EQ(program.contexts.size(), 2u);
  EXPECT_EQ(program.contexts[0].name, "car");
  EXPECT_EQ(program.contexts[1].name, "fire");
  ASSERT_TRUE(program.contexts[1].activation->binary);
  EXPECT_EQ(program.contexts[1].activation->binary->op, BinaryOp::kAnd);
}

TEST(Parser, DeactivationCondition) {
  const Program program = parse_ok(R"(
    begin context fire
      activation: temperature > 180;
      deactivation: temperature < 60;
    end context
  )");
  ASSERT_TRUE(program.contexts[0].deactivation);
  EXPECT_EQ(program.contexts[0].deactivation->binary->op, BinaryOp::kLt);
}

TEST(Parser, ConditionInvocation) {
  const Program program = parse_ok(R"(
    begin context fire
      activation: hot();
      heat : avg(temperature) confidence=2, freshness=2s;
      begin object alarm
        invocation: when (heat > 100)
        ring() { log("alarm", heat); }
      end
    end context
  )");
  const MethodDecl& method = program.contexts[0].objects[0].methods[0];
  EXPECT_EQ(method.invocation.kind, InvocationDecl::Kind::kCondition);
  ASSERT_TRUE(method.invocation.condition);
  EXPECT_EQ(method.invocation.condition->binary->op, BinaryOp::kGt);
}

TEST(Parser, IfElseAndSetState) {
  const Program program = parse_ok(R"(
    begin context c
      activation: s();
      v : avg(magnetic) confidence=1, freshness=1s;
      begin object o
        invocation: TIMER(1s)
        m() {
          if (v > 3) {
            setState("hot", 1);
          } else {
            setState("hot", 0);
            log("cool", v);
          }
        }
      end
    end context
  )");
  const auto& body = program.contexts[0].objects[0].methods[0].body;
  ASSERT_EQ(body.size(), 1u);
  ASSERT_TRUE(body[0]->if_stmt);
  EXPECT_EQ(body[0]->if_stmt->then_body.size(), 1u);
  EXPECT_EQ(body[0]->if_stmt->else_body.size(), 2u);
  EXPECT_TRUE(body[0]->if_stmt->then_body[0]->set_state);
  EXPECT_EQ(body[0]->if_stmt->then_body[0]->set_state->key, "hot");
}

TEST(Parser, ElseIfChains) {
  const Program program = parse_ok(R"(
    begin context c
      activation: s();
      v : avg(magnetic) confidence=1, freshness=1s;
      begin object o
        invocation: TIMER(1s)
        m() {
          if (v > 10) { log("high"); }
          else if (v > 5) { log("mid"); }
          else if (v > 1) { log("low"); }
          else { log("none"); }
        }
      end
    end context
  )");
  const auto& body = program.contexts[0].objects[0].methods[0].body;
  ASSERT_EQ(body.size(), 1u);
  const Stmt* level = body[0].get();
  int depth = 0;
  while (level->if_stmt && level->if_stmt->else_body.size() == 1 &&
         level->if_stmt->else_body[0]->if_stmt) {
    level = level->if_stmt->else_body[0].get();
    ++depth;
  }
  EXPECT_EQ(depth, 2);
  ASSERT_TRUE(level->if_stmt);
  EXPECT_EQ(level->if_stmt->else_body.size(), 1u);  // final else { log }
  EXPECT_TRUE(level->if_stmt->else_body[0]->log.has_value());
}

TEST(Parser, ExpressionPrecedence) {
  auto expr = parse_expression("1 + 2 * 3 > 6 and not false");
  ASSERT_TRUE(expr.ok());
  const Expr& root = *expr.value();
  ASSERT_TRUE(root.binary);
  EXPECT_EQ(root.binary->op, BinaryOp::kAnd);
  const Expr& cmp = *root.binary->lhs;
  ASSERT_TRUE(cmp.binary);
  EXPECT_EQ(cmp.binary->op, BinaryOp::kGt);
  const Expr& sum = *cmp.binary->lhs;
  ASSERT_TRUE(sum.binary);
  EXPECT_EQ(sum.binary->op, BinaryOp::kAdd);
  const Expr& product = *sum.binary->rhs;
  ASSERT_TRUE(product.binary);
  EXPECT_EQ(product.binary->op, BinaryOp::kMul);
}

TEST(Parser, ParenthesesOverridePrecedence) {
  auto expr = parse_expression("(1 + 2) * 3");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ(expr.value()->binary->op, BinaryOp::kMul);
  EXPECT_EQ(expr.value()->binary->lhs->binary->op, BinaryOp::kAdd);
}

TEST(Parser, SelfMember) {
  auto expr = parse_expression("self.label");
  ASSERT_TRUE(expr.ok());
  ASSERT_TRUE(expr.value()->self);
  EXPECT_EQ(expr.value()->self->member, "label");
}

TEST(Parser, MultiSensorAggregates) {
  const Program program = parse_ok(R"(
    begin context c
      activation: s();
      v : avg(magnetic, acoustic) confidence=1, freshness=1s;
    end context
  )");
  EXPECT_EQ(program.contexts[0].variables[0].sensors.size(), 2u);
}

TEST(Parser, DefaultsWhenAttributesOmitted) {
  const Program program = parse_ok(R"(
    begin context c
      activation: s();
      v : avg(magnetic);
    end context
  )");
  EXPECT_FALSE(program.contexts[0].variables[0].confidence.has_value());
  EXPECT_FALSE(program.contexts[0].variables[0].freshness.has_value());
}

// --- Error cases ---

TEST(Parser, ErrorEmptyProgram) { expect_parse_error("", "empty program"); }

TEST(Parser, ErrorMissingActivation) {
  expect_parse_error(R"(
    begin context c
      v : avg(magnetic);
    end context
  )", "no activation");
}

TEST(Parser, ErrorDuplicateActivation) {
  expect_parse_error(R"(
    begin context c
      activation: a();
      activation: b();
    end context
  )", "duplicate activation");
}

TEST(Parser, ErrorUnterminatedContext) {
  expect_parse_error("begin context c activation: a();", "unterminated");
}

TEST(Parser, ErrorUnknownAttribute) {
  expect_parse_error(R"(
    begin context c
      activation: a();
      v : avg(m) flavor=3;
    end context
  )", "unknown attribute");
}

TEST(Parser, ErrorObjectWithoutMethods) {
  expect_parse_error(R"(
    begin context c
      activation: a();
      begin object o
      end
    end context
  )");
}

TEST(Parser, ErrorBadInvocation) {
  expect_parse_error(R"(
    begin context c
      activation: a();
      begin object o
        invocation: WHENEVER(1s)
        m() { }
      end
    end context
  )", "expected TIMER");
}

TEST(Parser, ErrorBadStatement) {
  expect_parse_error(R"(
    begin context c
      activation: a();
      begin object o
        invocation: TIMER(1s)
        m() { explode(); }
      end
    end context
  )", "expected a statement");
}

TEST(Parser, ErrorTimerNeedsDuration) {
  expect_parse_error(R"(
    begin context c
      activation: a();
      begin object o
        invocation: TIMER(5)
        m() { }
      end
    end context
  )", "timer period");
}

TEST(Parser, ErrorReportsLineNumbers) {
  auto result = parse("begin context c\n  activation: a()\nend context");
  ASSERT_FALSE(result.ok());
  // Missing ';' detected on line 3.
  EXPECT_NE(result.error().message.find("line 3"), std::string::npos)
      << result.error().message;
}

}  // namespace
}  // namespace et::etl
