#include <gtest/gtest.h>

#include "metrics/invariants.hpp"
#include "test_world.hpp"

/// Epoch-fencing regression pair, built around *label fission*: two
/// co-located stimuli drift apart until the single group tracking them is
/// torn into two disjoint clusters that inherited the same context label.
/// Once the clusters are beyond radio range the heartbeat duel can never
/// connect them again; the directory rendezvous is the only state both
/// incarnations still share. With fencing disabled both clusters co-lead
/// the label indefinitely — the at-most-one-leader invariant the runtime
/// oracle must flag. With fencing enabled the directory rejects the losing
/// incarnation's refresh (lower epoch, or the heartbeat duel's lower-id
/// tie-break at equal epochs), routes a fence notice back, and the fenced
/// leader dissolves its cluster so the locally sensed entity re-forms
/// under a fresh label instead of resurrecting the fenced one.
namespace et::test {
namespace {

using metrics::InvariantOracle;
using metrics::InvariantViolation;

bool has_violation(const InvariantOracle& oracle,
                   InvariantViolation::Kind kind) {
  for (const auto& violation : oracle.violations()) {
    if (violation.kind == kind) return true;
  }
  return false;
}

TestWorld::Options fission_options(bool fencing) {
  TestWorld::Options options;
  options.rows = 3;
  options.cols = 14;
  options.enable_directory = true;
  options.group.epoch_fencing_enabled = fencing;
  // Fast refreshes so fence evidence reaches the stale incarnation well
  // inside the oracle's leader-overlap grace window.
  options.directory.update_period = Duration::millis(500);
  // These tests probe protocol semantics; a roomier task queue keeps
  // MCU-overload heartbeat drops from perturbing the scenario.
  options.cpu.queue_capacity = 64;
  return options;
}

/// Drives the fission: both blobs start co-located (one group, one label)
/// and separate to opposite ends of the field, out of radio range.
void run_fission(TestWorld& world) {
  world.add_moving_blob({5.5, 1.0}, {11.5, 1.0}, 1.0);
  world.add_moving_blob({5.5, 1.0}, {0.5, 1.0}, 1.0);
  world.run(22);
}

TEST(EpochFencing, DisabledAllowsFissionedCoLeaders) {
  TestWorld world(fission_options(false));
  InvariantOracle oracle(world.system());
  run_fission(world);

  const auto leaders = world.leaders();
  ASSERT_EQ(leaders.size(), 2u)
      << "each fissioned cluster must end with its own leader";
  EXPECT_EQ(world.groups(leaders[0]).current_label(0),
            world.groups(leaders[1]).current_label(0))
      << "both incarnations keep leading the pre-fission label";
  EXPECT_TRUE(has_violation(oracle, InvariantViolation::Kind::kDualLeader))
      << "the oracle must flag the persistent same-label co-leaders\n"
      << oracle.report();

  std::uint64_t fenced = 0;
  for (std::size_t i = 0; i < world.system().node_count(); ++i) {
    fenced += world.groups(NodeId{i}).stats().fenced;
  }
  EXPECT_EQ(fenced, 0u) << "nothing may fence with the feature disabled";
}

TEST(EpochFencing, EnabledRetiresOneIncarnationViaDirectory) {
  TestWorld world(fission_options(true));
  InvariantOracle oracle(world.system());
  run_fission(world);

  const auto leaders = world.leaders();
  ASSERT_EQ(leaders.size(), 2u)
      << "both entities must still be tracked after the fence";
  EXPECT_NE(world.groups(leaders[0]).current_label(0),
            world.groups(leaders[1]).current_label(0))
      << "the fenced cluster must re-form under a fresh label";

  std::uint64_t fenced = 0;
  for (std::size_t i = 0; i < world.system().node_count(); ++i) {
    fenced += world.groups(NodeId{i}).stats().fenced;
  }
  EXPECT_GE(fenced, 1u)
      << "the directory must have fenced the losing incarnation";
  EXPECT_FALSE(has_violation(oracle, InvariantViolation::Kind::kDualLeader))
      << oracle.report();
  EXPECT_TRUE(oracle.ok()) << oracle.report();

  std::uint64_t fences_sent = 0;
  for (std::size_t i = 0; i < world.system().node_count(); ++i) {
    const auto* dir = world.system().stack(NodeId{i}).directory();
    if (dir) fences_sent += dir->stats().fences_sent;
  }
  EXPECT_GE(fences_sent, 1u)
      << "the fence must have traveled through the directory rendezvous";
}

}  // namespace
}  // namespace et::test
