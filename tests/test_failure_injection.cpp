#include <gtest/gtest.h>

#include <tuple>

#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "metrics/recovery.hpp"
#include "scenario/tank.hpp"
#include "test_world.hpp"

/// Fault-injection tests: node crashes at every protocol role, repeated
/// leader assassination, and partial-deployment deaths. The middleware's
/// design goal — "applications must not depend on the correctness or
/// availability of any particular node" (§2) — is the property under test.
namespace et::test {
namespace {

using core::GroupEvent;

TEST(FailureInjection, RepeatedLeaderAssassination) {
  // Kill every leader as soon as it emerges; the label must survive as
  // long as live sensing members remain.
  TestWorld world;
  world.add_blob({3.5, 1.0}, 1.8);  // big group: many members
  world.run(4);

  LabelId label;
  {
    const auto leader = world.sole_leader();
    ASSERT_TRUE(leader.has_value());
    label = world.groups(*leader).current_label(0);
  }

  int kills = 0;
  for (int round = 0; round < 3; ++round) {
    const auto leader = world.sole_leader();
    if (!leader) break;
    world.system().crash_node(*leader);
    ++kills;
    world.run(4);  // takeover window
  }
  ASSERT_EQ(kills, 3);
  const auto survivor = world.sole_leader();
  ASSERT_TRUE(survivor.has_value());
  EXPECT_EQ(world.groups(*survivor).current_label(0), label)
      << "the label must outlive three consecutive leader crashes";
  EXPECT_GE(world.events().count(GroupEvent::Kind::kTakeover), 3u);
  EXPECT_EQ(world.events().count(GroupEvent::Kind::kLabelCreated), 1u);
}

TEST(FailureInjection, MemberCrashOnlyThinsTheGroup) {
  TestWorld world;
  world.add_blob({3.5, 1.0}, 1.8);
  world.run(4);
  const auto leader = world.sole_leader();
  ASSERT_TRUE(leader.has_value());
  const auto members = world.members();
  ASSERT_GE(members.size(), 2u);

  world.system().crash_node(members.front());
  world.run(4);
  // Leadership unaffected; aggregate state still satisfied by the rest.
  EXPECT_EQ(world.sole_leader(), leader);
  auto* agg = world.groups(*leader).aggregates(0);
  ASSERT_NE(agg, nullptr);
  EXPECT_TRUE(agg->read("where", world.sim().now()).has_value());
}

TEST(FailureInjection, CriticalMassLostWhenTooManyDie) {
  TestWorld::Options options;
  options.critical_mass = 3;
  TestWorld world(options);
  world.add_blob({3.5, 1.0}, 1.5);
  world.run(4);
  const auto leader = world.sole_leader();
  ASSERT_TRUE(leader.has_value());
  ASSERT_TRUE(world.groups(*leader)
                  .aggregates(0)
                  ->read("where", world.sim().now())
                  .has_value());

  // Kill all members: the leader alone cannot reach N_e = 3.
  for (NodeId member : world.members()) {
    world.system().crash_node(member);
  }
  world.run(3);
  const auto survivor = world.sole_leader();
  if (survivor) {
    auto* agg = world.groups(*survivor).aggregates(0);
    ASSERT_NE(agg, nullptr);
    EXPECT_FALSE(agg->read("where", world.sim().now()).has_value())
        << "reads must turn null once critical mass is unreachable";
  }
}

TEST(FailureInjection, WholeGroupDeathEndsTracking) {
  TestWorld world;
  world.add_blob({3.5, 1.0});
  world.run(4);
  std::vector<NodeId> involved = world.leaders();
  for (NodeId m : world.members()) involved.push_back(m);
  ASSERT_FALSE(involved.empty());
  for (NodeId node : involved) world.system().crash_node(node);
  world.run(5);
  // Remaining motes do not sense the blob: nothing tracks it, and nothing
  // crashes in the process.
  EXPECT_TRUE(world.leaders().empty());
}

TEST(FailureInjection, RecoveryAfterGroupDeath) {
  // After the whole group dies, a *newly sensing* node (target moves on)
  // legitimately mints a fresh label.
  TestWorld::Options options;
  options.cols = 12;
  TestWorld world(options);
  world.add_moving_blob({-0.5, 1.0}, {12.0, 1.0}, 0.25);
  world.run(6);
  std::vector<NodeId> involved = world.leaders();
  for (NodeId m : world.members()) involved.push_back(m);
  for (NodeId node : involved) world.system().crash_node(node);

  world.run(20);  // the target reaches fresh, living motes
  EXPECT_FALSE(world.leaders().empty())
      << "tracking must resume once living motes sense the target";
  // Either a fringe node with wait-timer memory revives the old label, or
  // a fresh label is minted; both are valid recoveries.
  EXPECT_GE(world.events().count(GroupEvent::Kind::kLabelCreated), 1u);
}

TEST(FailureInjection, CrashDuringTakeoverWindow) {
  // Kill the leader, then kill the first successor mid-handover: the
  // third node in line must still recover the label.
  TestWorld world;
  world.add_blob({3.5, 1.0}, 1.8);
  world.run(4);
  const auto first = world.sole_leader();
  ASSERT_TRUE(first.has_value());
  const LabelId label = world.groups(*first).current_label(0);

  world.system().crash_node(*first);
  world.run(1.2);  // inside the 2.1 x 0.5 s receive-timer window
  // Kill whoever is about to take over (any member).
  const auto members = world.members();
  ASSERT_FALSE(members.empty());
  world.system().crash_node(members.front());
  world.run(6);

  const auto survivor = world.sole_leader();
  ASSERT_TRUE(survivor.has_value());
  EXPECT_EQ(world.groups(*survivor).current_label(0), label);
}

/// Sweep: kill a random subset of the deployment and verify the system
/// neither crashes nor violates label uniqueness afterwards.
class RandomCullSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomCullSweep, SurvivesRandomNodeDeaths) {
  TestWorld::Options options;
  options.cols = 10;
  options.seed = static_cast<std::uint64_t>(GetParam()) * 31 + 7;
  TestWorld world(options);
  world.add_blob({4.5, 1.0}, 1.6);
  world.run(4);

  Rng rng(options.seed);
  for (std::size_t i = 0; i < world.system().node_count(); ++i) {
    if (rng.chance(0.3)) world.system().crash_node(NodeId{i});
  }
  world.run(8);

  // Uniqueness among established leaders.
  std::map<LabelId, int> per_label;
  for (NodeId leader : world.leaders()) {
    if (world.groups(leader).leader_weight(0) > 0) {
      per_label[world.groups(leader).current_label(0)]++;
    }
  }
  for (const auto& [label, count] : per_label) {
    EXPECT_LE(count, 1) << "duplicate established leaders after cull";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCullSweep, ::testing::Range(0, 6));

// ---------------------------------------------------------------------------
// Crash *and reboot*: the fault injector's full round-trip semantics.
// ---------------------------------------------------------------------------

TEST(FailureInjection, CrashThenRebootAtEveryRole) {
  TestWorld world;
  world.add_blob({3.5, 1.0}, 1.8);
  world.run(4);
  fault::FaultInjector injector(world.system());

  const auto first_leader = world.sole_leader();
  ASSERT_TRUE(first_leader.has_value());
  const LabelId label = world.groups(*first_leader).current_label(0);

  // Round 1: the leader. Takeover keeps the label; the rebooted ex-leader
  // still senses the blob, so it must rejoin from a blank slate.
  injector.crash(*first_leader);
  world.run(1.5);
  injector.reboot(*first_leader);
  world.run(4);
  {
    const auto cur = world.sole_leader();
    ASSERT_TRUE(cur.has_value());
    EXPECT_EQ(world.groups(*cur).current_label(0), label);
    EXPECT_TRUE(world.groups(*first_leader).alive());
    EXPECT_NE(world.groups(*first_leader).role(0), core::Role::kIdle)
        << "a rebooted sensing node must rejoin the group";
  }

  // Round 2: a member.
  const auto members = world.members();
  ASSERT_FALSE(members.empty());
  const NodeId member = members.front();
  injector.crash(member);
  world.run(1.5);
  injector.reboot(member);
  world.run(4);
  {
    const auto cur = world.sole_leader();
    ASSERT_TRUE(cur.has_value());
    EXPECT_EQ(world.groups(*cur).current_label(0), label);
    EXPECT_NE(world.groups(member).role(0), core::Role::kIdle);
  }

  // Round 3: an idle bystander — a non-event for the group.
  std::optional<NodeId> idle;
  for (std::size_t i = 0; i < world.system().node_count(); ++i) {
    if (world.groups(NodeId{i}).role(0) == core::Role::kIdle) {
      idle = NodeId{i};
      break;
    }
  }
  ASSERT_TRUE(idle.has_value());
  injector.crash(*idle);
  world.run(1.5);
  injector.reboot(*idle);
  world.run(2);
  {
    const auto cur = world.sole_leader();
    ASSERT_TRUE(cur.has_value());
    EXPECT_EQ(world.groups(*cur).current_label(0), label);
    EXPECT_EQ(world.groups(*idle).role(0), core::Role::kIdle);
    EXPECT_TRUE(world.groups(*idle).alive());
  }

  EXPECT_EQ(injector.stats().crashes, 3u);
  EXPECT_EQ(injector.stats().reboots, 3u);
}

TEST(FailureInjection, RebootDuringRelinquishElection) {
  TestWorld world;
  world.add_blob({3.5, 1.0}, 1.8);
  world.run(4);
  const auto leader = world.sole_leader();
  ASSERT_TRUE(leader.has_value());
  const LabelId label = world.groups(*leader).current_label(0);
  fault::FaultInjector injector(world.system());

  // The leader loses its sensor → deactivation → relinquish broadcast;
  // candidates campaign. A candidate crashes mid-election and comes back.
  injector.set_sensor_dropout(*leader, true);
  world.run(0.4);
  const auto members = world.members();
  ASSERT_FALSE(members.empty());
  const NodeId candidate = members.front();
  injector.crash(candidate);
  world.run(0.5);
  injector.reboot(candidate);
  world.run(4);

  const auto successor = world.sole_leader();
  ASSERT_TRUE(successor.has_value());
  EXPECT_NE(*successor, *leader) << "no sensing, no leading";
  EXPECT_EQ(world.groups(*successor).current_label(0), label)
      << "the label must survive a reboot landing inside the election";
}

TEST(FailureInjection, BlackoutOutlastingReceiveTimerHealsOnReturn) {
  TestWorld world;
  world.add_blob({3.5, 1.0}, 1.8);
  world.run(4);
  const auto leader = world.sole_leader();
  ASSERT_TRUE(leader.has_value());
  const LabelId label = world.groups(*leader).current_label(0);
  fault::FaultInjector injector(world.system());

  // Mute the leader's radio both ways for longer than the members'
  // receive timeout (2.1 x 0.5 s): they must take over. When the radio
  // returns, the duelling leaders must resolve back to one.
  fault::FaultPlan plan;
  plan.radio_blackout(world.sim().now() + Duration::millis(10), *leader,
                      Duration::seconds(3));
  injector.schedule(plan);
  world.run(2);
  EXPECT_GE(world.events().count(GroupEvent::Kind::kTakeover), 1u);

  world.run(6);  // blackout long over; yield-by-weight settles the duel
  const auto survivor = world.sole_leader();
  ASSERT_TRUE(survivor.has_value());
  EXPECT_EQ(world.groups(*survivor).current_label(0), label);
  EXPECT_EQ(injector.stats().blackouts, 1u);
}

TEST(FailureInjection, SensorDropoutRelinquishesAndRecovers) {
  TestWorld world;
  world.add_blob({3.5, 1.0}, 1.8);
  world.run(4);
  const auto leader = world.sole_leader();
  ASSERT_TRUE(leader.has_value());
  const LabelId label = world.groups(*leader).current_label(0);
  fault::FaultInjector injector(world.system());

  fault::FaultPlan plan;
  plan.sensor_dropout(world.sim().now(), *leader, Duration::seconds(3));
  injector.schedule(plan);
  world.run(2);
  EXPECT_NE(world.groups(*leader).role(0), core::Role::kLeader)
      << "a leader that stopped sensing must relinquish";
  EXPECT_GE(world.events().count(GroupEvent::Kind::kRelinquish), 1u);

  world.run(4);  // sensor back after 3 s; the node re-engages
  const auto successor = world.sole_leader();
  ASSERT_TRUE(successor.has_value());
  EXPECT_EQ(world.groups(*successor).current_label(0), label);
  EXPECT_NE(world.groups(*leader).role(0), core::Role::kIdle)
      << "once the sensor recovers the node must rejoin the group";
  EXPECT_EQ(injector.stats().sensor_dropouts, 1u);
}

TEST(FailureInjection, RebootIsIdempotentWithinOneTick) {
  // Two reboot faults landing on the same node at the same instant (easy
  // to produce with overlapping fault plans) must apply exactly once: the
  // second sees a live node and is a no-op, not a double re-init.
  TestWorld world;
  world.add_blob({3.5, 1.0}, 1.8);
  world.run(4);
  const auto leader = world.sole_leader();
  ASSERT_TRUE(leader.has_value());
  const LabelId label = world.groups(*leader).current_label(0);
  fault::FaultInjector injector(world.system());

  injector.crash(*leader);
  world.run(1.5);
  injector.reboot(*leader);
  injector.reboot(*leader);  // same tick: must be swallowed
  EXPECT_EQ(injector.stats().reboots, 1u);
  ASSERT_EQ(injector.records().size(), 2u);  // one crash + one reboot

  world.run(4);
  const auto survivor = world.sole_leader();
  ASSERT_TRUE(survivor.has_value());
  EXPECT_EQ(world.groups(*survivor).current_label(0), label);
  EXPECT_TRUE(world.groups(*leader).alive());
  EXPECT_NE(world.groups(*leader).role(0), core::Role::kIdle)
      << "the doubly-rebooted node must come back exactly like a single "
         "reboot";

  // A reboot aimed at a node that was never down is likewise a no-op.
  injector.reboot(NodeId{0});
  EXPECT_EQ(injector.stats().reboots, 1u);
}

TEST(FailureInjection, RebootDuringBlackoutRecoversAfterRadioReturns) {
  // A node that reboots while its RF is blacked out comes up deaf: it
  // must neither wedge nor corrupt the group, and must rejoin cleanly
  // once the radio returns.
  TestWorld world;
  world.add_blob({3.5, 1.0}, 1.8);
  world.run(4);
  const auto leader = world.sole_leader();
  ASSERT_TRUE(leader.has_value());
  const LabelId label = world.groups(*leader).current_label(0);
  fault::FaultInjector injector(world.system());

  injector.crash(*leader);
  injector.set_radio_blackout(*leader, true);
  world.run(2);  // the rest of the group takes the label over
  injector.reboot(*leader);  // reboots into the blackout
  world.run(2);
  EXPECT_TRUE(world.groups(*leader).alive());

  injector.set_radio_blackout(*leader, false);
  world.run(6);
  const auto survivor = world.sole_leader();
  ASSERT_TRUE(survivor.has_value());
  EXPECT_EQ(world.groups(*survivor).current_label(0), label)
      << "the label must survive a reboot that lands inside a blackout";
  EXPECT_NE(world.groups(*leader).role(0), core::Role::kIdle)
      << "the node must rejoin once it can hear heartbeats again";
  EXPECT_EQ(injector.stats().reboots, 1u);
  EXPECT_EQ(injector.stats().blackouts, 1u);
}

// ---------------------------------------------------------------------------
// Chaos soaks on the tank scenario: burst loss + periodic leader murder.
// ---------------------------------------------------------------------------

TEST(FailureInjection, ChaosTankRunIsDeterministic) {
  auto run_once = [] {
    scenario::TankScenarioParams params;
    params.rows = 3;
    params.cols = 10;
    params.speed_hops_per_s = 1.5;
    params.radio.burst_loss.enabled = true;
    params.seed = 21;
    scenario::TankScenario scenario(params);
    fault::FaultInjector injector(scenario.system());
    metrics::RecoveryMonitor recovery(scenario.system(), injector,
                                      Duration::millis(100));
    injector.harass_leaders(scenario.tracker_type(), Duration::seconds(3),
                            Duration::seconds(1));
    const scenario::TankRunResult result = scenario.run();
    return std::tuple(
        scenario.sim().events_fired(), result.tracking.distinct_labels,
        result.track_labels, injector.stats().crashes,
        injector.stats().reboots, recovery.stats().leader_faults,
        recovery.stats().recoveries, recovery.tracking_gap_seconds(),
        recovery.mean_takeover_seconds());
  };
  EXPECT_EQ(run_once(), run_once())
      << "identical seeds must give bit-identical chaos runs";
}

TEST(FailureInjection, HarassedTankUnderBurstLossKeepsTracking) {
  // The acceptance soak: tank traverse with Gilbert–Elliott loss and the
  // tracker leader crashed (then rebooted) every 6 seconds. The original
  // label must survive every handover and the track must stay useful.
  scenario::TankScenarioParams params;
  params.rows = 3;
  params.cols = 12;
  params.speed_hops_per_s = 1.0;
  params.group.heartbeat_period = Duration::seconds(0.25);
  params.radio.burst_loss.enabled = true;
  params.seed = 11;
  scenario::TankScenario scenario(params);
  fault::FaultInjector injector(scenario.system());
  metrics::RecoveryMonitor recovery(scenario.system(), injector,
                                    Duration::millis(100));
  injector.harass_leaders(scenario.tracker_type(), Duration::seconds(6),
                          Duration::seconds(1));
  const scenario::TankRunResult result = scenario.run();

  EXPECT_GE(recovery.stats().leader_faults, 1u);
  EXPECT_GE(recovery.stats().recoveries, 1u);
  EXPECT_EQ(result.tracking.distinct_labels, 1u)
      << "the original label must survive crash+reboot chaos";
  EXPECT_GT(result.tracking.tracked_fraction(), 0.5);
  EXPECT_LT(recovery.mean_takeover_seconds(), 2.0)
      << "takeover latency is bounded by the 2.1 x HB receive timer";
}

TEST(FailureInjection, ConcurrentLeaderCrashesPairTakeoversByLabel) {
  // Regression: with two leaders of the same context type crashed at once,
  // the recovery monitor used to pair a takeover with the *oldest* open
  // gap of the type, ignoring labels. A takeover that kept target B's
  // label would close target A's gap and grade as "label replaced" —
  // corrupting both continuity and takeover-time statistics.
  //
  // Blob A is sensed by exactly one mote (tiny radius centred on node 1),
  // so once its leader dies nobody can take over: its gap must stay open.
  // Blob B is sensed by exactly two motes — (6,0) and (6,1) — so the crash
  // leaves exactly one member, whose single takeover preserves the label.
  TestWorld world;
  fault::FaultInjector injector(world.system());
  metrics::RecoveryMonitor recovery(world.system(), injector,
                                    Duration::millis(100));
  world.add_blob({1.0, 0.0}, 0.3);
  world.add_blob({6.0, 0.5}, 1.0);
  world.run(3);

  const auto leaders = world.leaders();
  ASSERT_EQ(leaders.size(), 2u) << "one leader per blob";
  NodeId a_leader, b_leader;
  for (const NodeId n : leaders) {
    if (distance(world.field().position(n), Vec2{1.0, 0.0}) < 0.5) {
      a_leader = n;
    } else {
      b_leader = n;
    }
  }
  ASSERT_TRUE(a_leader.is_valid());
  ASSERT_TRUE(b_leader.is_valid());
  const LabelId a_label = world.groups(a_leader).current_label(0);
  const LabelId b_label = world.groups(b_leader).current_label(0);
  ASSERT_NE(a_label, b_label);

  // A's gap opens first (the older gap — the one the buggy pairing ate).
  injector.crash(a_leader);
  world.run(0.2);
  injector.crash(b_leader);
  world.run(4);

  EXPECT_EQ(recovery.stats().leader_faults, 2u);
  ASSERT_EQ(recovery.stats().recoveries, 1u)
      << "only B's group has members able to take over";
  EXPECT_EQ(recovery.stats().label_preserved, 1u)
      << "B's takeover kept B's label and must be paired with B's gap";
  EXPECT_EQ(recovery.stats().label_replaced, 0u)
      << "nothing answered A's gap, so nothing may grade as replaced";
  EXPECT_LT(recovery.mean_takeover_seconds(), 2.0)
      << "takeover time must be measured against B's gap, not A's older one";

  const auto survivor = world.sole_leader();
  ASSERT_TRUE(survivor.has_value());
  EXPECT_EQ(world.groups(*survivor).current_label(0), b_label);
}

}  // namespace
}  // namespace et::test
