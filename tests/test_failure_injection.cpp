#include <gtest/gtest.h>

#include "test_world.hpp"

/// Fault-injection tests: node crashes at every protocol role, repeated
/// leader assassination, and partial-deployment deaths. The middleware's
/// design goal — "applications must not depend on the correctness or
/// availability of any particular node" (§2) — is the property under test.
namespace et::test {
namespace {

using core::GroupEvent;

TEST(FailureInjection, RepeatedLeaderAssassination) {
  // Kill every leader as soon as it emerges; the label must survive as
  // long as live sensing members remain.
  TestWorld world;
  world.add_blob({3.5, 1.0}, 1.8);  // big group: many members
  world.run(4);

  LabelId label;
  {
    const auto leader = world.sole_leader();
    ASSERT_TRUE(leader.has_value());
    label = world.groups(*leader).current_label(0);
  }

  int kills = 0;
  for (int round = 0; round < 3; ++round) {
    const auto leader = world.sole_leader();
    if (!leader) break;
    world.system().crash_node(*leader);
    ++kills;
    world.run(4);  // takeover window
  }
  ASSERT_EQ(kills, 3);
  const auto survivor = world.sole_leader();
  ASSERT_TRUE(survivor.has_value());
  EXPECT_EQ(world.groups(*survivor).current_label(0), label)
      << "the label must outlive three consecutive leader crashes";
  EXPECT_GE(world.events().count(GroupEvent::Kind::kTakeover), 3u);
  EXPECT_EQ(world.events().count(GroupEvent::Kind::kLabelCreated), 1u);
}

TEST(FailureInjection, MemberCrashOnlyThinsTheGroup) {
  TestWorld world;
  world.add_blob({3.5, 1.0}, 1.8);
  world.run(4);
  const auto leader = world.sole_leader();
  ASSERT_TRUE(leader.has_value());
  const auto members = world.members();
  ASSERT_GE(members.size(), 2u);

  world.system().crash_node(members.front());
  world.run(4);
  // Leadership unaffected; aggregate state still satisfied by the rest.
  EXPECT_EQ(world.sole_leader(), leader);
  auto* agg = world.groups(*leader).aggregates(0);
  ASSERT_NE(agg, nullptr);
  EXPECT_TRUE(agg->read("where", world.sim().now()).has_value());
}

TEST(FailureInjection, CriticalMassLostWhenTooManyDie) {
  TestWorld::Options options;
  options.critical_mass = 3;
  TestWorld world(options);
  world.add_blob({3.5, 1.0}, 1.5);
  world.run(4);
  const auto leader = world.sole_leader();
  ASSERT_TRUE(leader.has_value());
  ASSERT_TRUE(world.groups(*leader)
                  .aggregates(0)
                  ->read("where", world.sim().now())
                  .has_value());

  // Kill all members: the leader alone cannot reach N_e = 3.
  for (NodeId member : world.members()) {
    world.system().crash_node(member);
  }
  world.run(3);
  const auto survivor = world.sole_leader();
  if (survivor) {
    auto* agg = world.groups(*survivor).aggregates(0);
    ASSERT_NE(agg, nullptr);
    EXPECT_FALSE(agg->read("where", world.sim().now()).has_value())
        << "reads must turn null once critical mass is unreachable";
  }
}

TEST(FailureInjection, WholeGroupDeathEndsTracking) {
  TestWorld world;
  world.add_blob({3.5, 1.0});
  world.run(4);
  std::vector<NodeId> involved = world.leaders();
  for (NodeId m : world.members()) involved.push_back(m);
  ASSERT_FALSE(involved.empty());
  for (NodeId node : involved) world.system().crash_node(node);
  world.run(5);
  // Remaining motes do not sense the blob: nothing tracks it, and nothing
  // crashes in the process.
  EXPECT_TRUE(world.leaders().empty());
}

TEST(FailureInjection, RecoveryAfterGroupDeath) {
  // After the whole group dies, a *newly sensing* node (target moves on)
  // legitimately mints a fresh label.
  TestWorld::Options options;
  options.cols = 12;
  TestWorld world(options);
  world.add_moving_blob({-0.5, 1.0}, {12.0, 1.0}, 0.25);
  world.run(6);
  std::vector<NodeId> involved = world.leaders();
  for (NodeId m : world.members()) involved.push_back(m);
  for (NodeId node : involved) world.system().crash_node(node);

  world.run(20);  // the target reaches fresh, living motes
  EXPECT_FALSE(world.leaders().empty())
      << "tracking must resume once living motes sense the target";
  // Either a fringe node with wait-timer memory revives the old label, or
  // a fresh label is minted; both are valid recoveries.
  EXPECT_GE(world.events().count(GroupEvent::Kind::kLabelCreated), 1u);
}

TEST(FailureInjection, CrashDuringTakeoverWindow) {
  // Kill the leader, then kill the first successor mid-handover: the
  // third node in line must still recover the label.
  TestWorld world;
  world.add_blob({3.5, 1.0}, 1.8);
  world.run(4);
  const auto first = world.sole_leader();
  ASSERT_TRUE(first.has_value());
  const LabelId label = world.groups(*first).current_label(0);

  world.system().crash_node(*first);
  world.run(1.2);  // inside the 2.1 x 0.5 s receive-timer window
  // Kill whoever is about to take over (any member).
  const auto members = world.members();
  ASSERT_FALSE(members.empty());
  world.system().crash_node(members.front());
  world.run(6);

  const auto survivor = world.sole_leader();
  ASSERT_TRUE(survivor.has_value());
  EXPECT_EQ(world.groups(*survivor).current_label(0), label);
}

/// Sweep: kill a random subset of the deployment and verify the system
/// neither crashes nor violates label uniqueness afterwards.
class RandomCullSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomCullSweep, SurvivesRandomNodeDeaths) {
  TestWorld::Options options;
  options.cols = 10;
  options.seed = static_cast<std::uint64_t>(GetParam()) * 31 + 7;
  TestWorld world(options);
  world.add_blob({4.5, 1.0}, 1.6);
  world.run(4);

  Rng rng(options.seed);
  for (std::size_t i = 0; i < world.system().node_count(); ++i) {
    if (rng.chance(0.3)) world.system().crash_node(NodeId{i});
  }
  world.run(8);

  // Uniqueness among established leaders.
  std::map<LabelId, int> per_label;
  for (NodeId leader : world.leaders()) {
    if (world.groups(leader).leader_weight(0) > 0) {
      per_label[world.groups(leader).current_label(0)]++;
    }
  }
  for (const auto& [label, count] : per_label) {
    EXPECT_LE(count, 1) << "duplicate established leaders after cull";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCullSweep, ::testing::Range(0, 6));

}  // namespace
}  // namespace et::test
