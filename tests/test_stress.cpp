#include <gtest/gtest.h>

#include "metrics/coherence.hpp"
#include "test_world.hpp"

/// Stress and sweep tests: channel-loss tolerance curve, a large
/// deployment, and protocol introspection under load.
namespace et::test {
namespace {

/// Loss sweep: the slow-tank workload must stay coherent through heavy
/// loss; the protocol is designed for "an unreliable environment" (§5.2).
class LossSweep : public ::testing::TestWithParam<int> {};

TEST_P(LossSweep, SlowTargetCoherentUnderLoss) {
  const double loss = GetParam() / 100.0;
  TestWorld::Options options;
  options.cols = 10;
  options.loss_probability = loss;
  options.model_collisions = true;
  options.seed = 500 + GetParam();
  TestWorld world(options);
  metrics::CoherenceMonitor monitor(world.system(), Duration::millis(100));
  const TargetId target =
      world.add_moving_blob({-0.5, 1.0}, {10.5, 1.0}, 0.1);
  world.run(115);

  const auto& stats = monitor.stats_for(target);
  if (loss <= 0.30) {
    EXPECT_TRUE(stats.coherent())
        << "loss " << loss << ": " << stats.distinct_labels << " labels";
    EXPECT_GT(stats.tracked_fraction(), 0.5);
  } else {
    // Beyond the design envelope: only liveness is required.
    EXPECT_GT(stats.total_samples, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(LossPct, LossSweep,
                         ::testing::Values(0, 5, 10, 20, 30, 45));

TEST(Stress, LargeDeploymentRunsAndTracks) {
  // 20 x 40 = 800 motes, one target: system-level scalability smoke.
  TestWorld::Options options;
  options.rows = 20;
  options.cols = 40;
  options.comm_radius = 4.0;
  options.seed = 77;
  TestWorld world(options);
  world.add_moving_blob({-0.5, 10.0}, {40.5, 10.0}, 0.8);
  world.run(30);  // mid-traverse

  EXPECT_EQ(world.leaders().size(), 1u);
  // Only a tiny fraction of the 800 motes is ever involved.
  EXPECT_LT(world.members().size(), 25u);
  world.run(30);  // target exits; group dissolves cleanly
  EXPECT_TRUE(world.leaders().empty());
  EXPECT_GT(world.sim().events_fired(), 100'000u);
}

TEST(Stress, ManySimultaneousPhenomena) {
  TestWorld::Options options;
  options.rows = 12;
  options.cols = 24;
  options.sensing_radius = 1.0;
  options.seed = 13;
  TestWorld world(options);
  // A 2 x 3 lattice of targets, 8 units apart.
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) {
      world.add_blob({4.0 + c * 8.0, 2.5 + r * 6.0}, 1.0);
    }
  }
  world.run(12);
  EXPECT_EQ(world.leaders().size(), 6u);
  // Every leader confirms its own phenomenon.
  for (NodeId leader : world.leaders()) {
    auto* agg = world.groups(leader).aggregates(0);
    ASSERT_NE(agg, nullptr);
    EXPECT_TRUE(agg->read("where", world.sim().now()).has_value());
  }
}

TEST(Stress, EngagedIntrospection) {
  TestWorld world;
  EXPECT_FALSE(world.groups(NodeId{0}).engaged());
  world.add_blob({3.5, 1.0});
  world.run(4);
  const auto leader = world.sole_leader();
  ASSERT_TRUE(leader.has_value());
  EXPECT_TRUE(world.groups(*leader).engaged());
  // A node far from the blob, outside heartbeat wait memory: not engaged.
  bool found_unengaged = false;
  for (std::size_t i = 0; i < world.system().node_count(); ++i) {
    if (!world.groups(NodeId{i}).engaged()) found_unengaged = true;
  }
  EXPECT_TRUE(found_unengaged);
}

TEST(Stress, MediumStatsReset) {
  TestWorld world;
  world.add_blob({3.5, 1.0});
  world.run(4);
  ASSERT_GT(world.system().medium().stats().bits_sent, 0u);
  world.system().medium().reset_stats();
  EXPECT_EQ(world.system().medium().stats().bits_sent, 0u);
  world.run(2);
  EXPECT_GT(world.system().medium().stats().bits_sent, 0u)
      << "accounting resumes after a reset (per-phase measurement)";
}

}  // namespace
}  // namespace et::test
