#include <gtest/gtest.h>

#include "metrics/coherence.hpp"

#include "test_world.hpp"

/// Multi-hop group tests: when a group's diameter exceeds the radio range,
/// heartbeats flood through members and reports relay toward the leader
/// (§3.2.1's connectivity invariant, exercised for data collection).
namespace et::test {
namespace {

TestWorld::Options wide_group_options() {
  TestWorld::Options options;
  options.cols = 12;
  options.rows = 3;
  options.comm_radius = 2.2;     // group diameter 2 x 2.5 = 5 > range
  options.sensing_radius = 2.5;
  options.group.member_relay_heartbeats = true;
  options.group.report_relay_hops = 3;
  options.critical_mass = 2;
  return options;
}

TEST(MultiHopGroup, FarMembersContributeToAggregateState) {
  TestWorld world(wide_group_options());
  world.add_blob({5.5, 1.0}, 2.5);
  world.run(8);

  const auto leader = world.sole_leader();
  ASSERT_TRUE(leader.has_value());
  auto* agg = world.groups(*leader).aggregates(0);
  ASSERT_NE(agg, nullptr);
  // The group spans ~11 motes; the leader must hear well beyond its own
  // radio range through relaying.
  const std::size_t reporters =
      agg->fresh_reporter_count(0, world.sim().now());
  const std::size_t group_size =
      world.members().size() + world.leaders().size();
  EXPECT_GE(group_size, 8u);
  EXPECT_GE(reporters, group_size - 3)
      << "most members (incl. out-of-range ones) must reach the leader";

  const auto where = agg->read("where", world.sim().now());
  ASSERT_TRUE(where.has_value());
  EXPECT_NEAR(where->vector.x, 5.5, 0.8)
      << "centroid built from one radio-side only would be biased";
}

TEST(MultiHopGroup, RelayDisabledLosesFarMembers) {
  auto options = wide_group_options();
  options.group.report_relay_hops = 0;
  TestWorld world(options);
  world.add_blob({5.5, 1.0}, 2.5);
  world.run(8);
  const auto leader = world.sole_leader();
  ASSERT_TRUE(leader.has_value());
  auto* agg = world.groups(*leader).aggregates(0);
  ASSERT_NE(agg, nullptr);
  const std::size_t reporters =
      agg->fresh_reporter_count(0, world.sim().now());
  const std::size_t group_size =
      world.members().size() + world.leaders().size();
  EXPECT_LT(reporters, group_size)
      << "without relaying, out-of-range members cannot report";
}

TEST(MultiHopGroup, RelayedReportsAreNotDoubleCounted) {
  TestWorld world(wide_group_options());
  world.add_blob({5.5, 1.0}, 2.5);
  world.run(8);
  const auto leader = world.sole_leader();
  ASSERT_TRUE(leader.has_value());
  // The leader's weight counts received measurements; with dedup it cannot
  // exceed the total number of measurements members produced.
  std::uint64_t reports_produced = 0;
  for (std::size_t i = 0; i < world.system().node_count(); ++i) {
    reports_produced += world.groups(NodeId{i}).stats().reports_sent;
  }
  EXPECT_LE(world.groups(*leader).leader_weight(0), reports_produced);
}

TEST(MultiHopGroup, WideGroupTracksMovingTarget) {
  auto options = wide_group_options();
  options.cols = 16;
  // Keep CR:SR above 1 — below it the architecture legitimately breaks
  // down (Fig. 6) because disjoint fringes sense the target concurrently.
  options.comm_radius = 2.8;
  TestWorld world(options);
  metrics::CoherenceMonitor monitor(world.system(), Duration::millis(100));
  const TargetId target =
      world.add_moving_blob({-1.0, 1.0}, {16.5, 1.0}, 0.25, 2.5);
  world.run(75);
  const auto& stats = monitor.stats_for(target);
  EXPECT_TRUE(stats.coherent())
      << stats.distinct_labels << " labels for one wide target";
  EXPECT_GT(stats.tracked_fraction(), 0.6);
}

}  // namespace
}  // namespace et::test
