#include "core/duty_cycle.hpp"

#include <gtest/gtest.h>

#include "metrics/coherence.hpp"
#include "metrics/energy.hpp"
#include "test_world.hpp"

/// Duty-cycling extension tests: unengaged motes sleep their receivers,
/// engaged motes never do, targets still get detected and tracked, and the
/// energy savings are real.
namespace et::test {
namespace {

TestWorld::Options cycled_options(double awake_fraction) {
  TestWorld::Options options;
  options.cols = 10;
  core::DutyCycleConfig duty;
  duty.cycle_period = Duration::seconds(1);
  duty.awake_fraction = awake_fraction;
  // TestWorld has no duty knob; configure through a mutate hook? The
  // middleware config flag is plumbed below via a dedicated world.
  (void)duty;
  return options;
}

/// Direct world with duty cycling on, since TestWorld does not expose it.
struct CycledWorld {
  explicit CycledWorld(double awake_fraction, std::uint64_t seed = 1) {
    sim.emplace(seed);
    env.emplace(sim->make_rng("env"));
    field.emplace(env::Field::grid(3, 10));
    core::SystemConfig config;
    config.radio.loss_probability = 0.0;
    config.radio.model_collisions = false;
    config.middleware.enable_duty_cycle = true;
    config.middleware.duty_cycle.cycle_period = Duration::seconds(1);
    config.middleware.duty_cycle.awake_fraction = awake_fraction;
    system.emplace(*sim, *env, *field, config);
    system->senses().add("blob_sensor", core::sense_target("blob"));
    core::ContextTypeSpec spec;
    spec.name = "blob";
    spec.activation = "blob_sensor";
    spec.variables.push_back(core::AggregateVarSpec{
        "where", "avg", "position", Duration::seconds(1), 2});
    system->add_context_type(std::move(spec));
    system->start();
  }

  TargetId add_blob(Vec2 at) {
    env::Target blob;
    blob.type = "blob";
    blob.trajectory = std::make_unique<env::StationaryTrajectory>(at);
    blob.radius = env::RadiusProfile::constant(1.2);
    blob.emissions["magnetic"] = 10.0;
    return env->add_target(std::move(blob));
  }

  std::optional<sim::Simulator> sim;
  std::optional<env::Environment> env;
  std::optional<env::Field> field;
  std::optional<core::EnviroTrackSystem> system;
};

TEST(DutyCycle, IdleMotesSleepMostOfTheTime) {
  CycledWorld world(0.25);
  world.sim->run_for(Duration::seconds(20));
  for (std::size_t i = 0; i < world.system->node_count(); ++i) {
    const Duration off = world.system->medium().radio_off_total(NodeId{i});
    // ~75% of each cycle asleep; allow scheduling slop.
    EXPECT_GT(off.to_seconds(), 10.0) << "node " << i;
    EXPECT_LT(off.to_seconds(), 17.0) << "node " << i;
  }
}

TEST(DutyCycle, EngagedMotesStayAwake) {
  CycledWorld world(0.25);
  world.add_blob({4.5, 1.0});
  world.sim->run_for(Duration::seconds(4));  // group forms
  const Time mark = world.sim->now();
  std::vector<Duration> off_at_mark;
  for (std::size_t i = 0; i < world.system->node_count(); ++i) {
    off_at_mark.push_back(world.system->medium().radio_off_total(NodeId{i}));
  }
  world.sim->run_for(Duration::seconds(10));
  (void)mark;
  for (std::size_t i = 0; i < world.system->node_count(); ++i) {
    const NodeId id{i};
    const auto role = world.system->stack(id).groups().role(0);
    const double slept_since =
        (world.system->medium().radio_off_total(id) - off_at_mark[i])
            .to_seconds();
    if (role != core::Role::kIdle) {
      EXPECT_LT(slept_since, 0.5)
          << "engaged node " << i << " must not sleep";
    }
  }
}

TEST(DutyCycle, TargetStillDetectedAndTracked) {
  CycledWorld world(0.25, 5);
  metrics::CoherenceMonitor monitor(*world.system, Duration::millis(100));
  const TargetId target = world.add_blob({4.5, 1.0});
  world.sim->run_for(Duration::seconds(15));
  const auto& stats = monitor.stats_for(target);
  EXPECT_TRUE(stats.coherent());
  EXPECT_GT(stats.tracked_fraction(), 0.6)
      << "sensing stays on; sleeping radios must not prevent detection";
}

TEST(DutyCycle, SavesListenEnergy) {
  auto listen_joules = [](bool cycled) {
    CycledWorld world(cycled ? 0.2 : 1.0, 9);
    world.sim->run_for(Duration::seconds(30));
    return metrics::measure_energy(*world.system).totals.listen_joules;
  };
  const double always_on = listen_joules(false);
  const double cycled = listen_joules(true);
  EXPECT_LT(cycled, always_on * 0.45)
      << "a 20% duty cycle must reclaim over half the listen budget";
}

TEST(DutyCycle, StatsCountSleptCycles) {
  CycledWorld world(0.5);
  world.sim->run_for(Duration::seconds(10));
  auto* controller = world.system->stack(NodeId{0}).duty_cycle();
  ASSERT_NE(controller, nullptr);
  EXPECT_GE(controller->stats().cycles, 9u);
  EXPECT_GE(controller->stats().slept_cycles, 8u);
}

TEST(DutyCycle, CycleBoundaryLeavesCrashedReceiverOff) {
  // Regression: begin_cycle() used to re-enable the receiver
  // unconditionally, so a mote that died mid-cycle came back on the air at
  // the next cycle boundary. Drive the raw mote-down state with the
  // controller still alive — the cycle timer must now leave the radio
  // alone.
  CycledWorld world(0.25);
  world.sim->run_for(Duration::seconds(2.5));  // mid-cycle
  const NodeId victim{0};
  world.system->network().mote(victim).set_down(true);
  world.system->medium().set_receiver_enabled(victim, false);
  const Duration off_before = world.system->medium().radio_off_total(victim);

  world.sim->run_for(Duration::seconds(5));  // several cycle boundaries
  EXPECT_FALSE(world.system->medium().receiver_enabled(victim))
      << "a cycle boundary must not wake a dead node's radio";
  const double slept =
      (world.system->medium().radio_off_total(victim) - off_before)
          .to_seconds();
  EXPECT_GT(slept, 4.99) << "no re-enable blips while down";
}

TEST(DutyCycle, CrashOwnsReceiverUntilReboot) {
  CycledWorld world(0.25);
  const NodeId victim{5};
  world.sim->run_for(Duration::seconds(3));

  world.system->crash_node(victim);
  EXPECT_FALSE(world.system->medium().receiver_enabled(victim));
  EXPECT_EQ(world.system->stack(victim).duty_cycle(), nullptr)
      << "crash must stop the cycle controller";
  const Duration off_at_crash =
      world.system->medium().radio_off_total(victim);
  world.sim->run_for(Duration::seconds(5));
  EXPECT_FALSE(world.system->medium().receiver_enabled(victim));
  EXPECT_GT((world.system->medium().radio_off_total(victim) - off_at_crash)
                .to_seconds(),
            4.99)
      << "receiver must stay dark across cycle boundaries while crashed";

  world.system->reboot_node(victim);
  EXPECT_TRUE(world.system->medium().receiver_enabled(victim));
  ASSERT_NE(world.system->stack(victim).duty_cycle(), nullptr)
      << "reboot must restart duty cycling";
  const Duration off_at_reboot =
      world.system->medium().radio_off_total(victim);
  world.sim->run_for(Duration::seconds(8));
  const double slept_after =
      (world.system->medium().radio_off_total(victim) - off_at_reboot)
          .to_seconds();
  EXPECT_GT(slept_after, 2.0) << "idle rebooted node resumes sleeping";
  EXPECT_LT(slept_after, 7.5) << "but wakes for its duty-cycle slots";
}

TEST(DutyCycle, DisabledByDefault) {
  TestWorld world(cycled_options(1.0));
  EXPECT_EQ(world.system().stack(NodeId{0}).duty_cycle(), nullptr);
  world.run(5);
  EXPECT_EQ(world.system().medium().radio_off_total(NodeId{0}),
            Duration::zero());
}

}  // namespace
}  // namespace et::test
