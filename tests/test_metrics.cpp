#include <gtest/gtest.h>

#include <cmath>

#include "metrics/channel_report.hpp"
#include "metrics/event_log.hpp"
#include "metrics/track_recorder.hpp"
#include "test_world.hpp"

namespace et::test {
namespace {

using core::GroupEvent;

// --- EventLog ---

TEST(EventLog, CountsByKind) {
  metrics::EventLog log;
  GroupEvent event{};
  event.kind = GroupEvent::Kind::kJoined;
  log.on_group_event(event);
  log.on_group_event(event);
  event.kind = GroupEvent::Kind::kLeft;
  log.on_group_event(event);

  EXPECT_EQ(log.count(GroupEvent::Kind::kJoined), 2u);
  EXPECT_EQ(log.count(GroupEvent::Kind::kLeft), 1u);
  EXPECT_EQ(log.count(GroupEvent::Kind::kYield), 0u);
  EXPECT_EQ(log.total(), 3u);
  EXPECT_EQ(log.events().size(), 3u);
  EXPECT_EQ(log.events_of(GroupEvent::Kind::kJoined).size(), 2u);
}

TEST(EventLog, BoundedRetention) {
  metrics::EventLog log(4);
  for (int i = 0; i < 10; ++i) {
    GroupEvent event{};
    event.kind = GroupEvent::Kind::kJoined;
    event.weight = static_cast<std::uint64_t>(i);
    log.on_group_event(event);
  }
  EXPECT_EQ(log.total(), 10u) << "counters keep counting past capacity";
  const auto events = log.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().weight, 6u) << "oldest retained is #6";
  EXPECT_EQ(events.back().weight, 9u);
}

TEST(EventLog, Clear) {
  metrics::EventLog log;
  GroupEvent event{};
  event.kind = GroupEvent::Kind::kJoined;
  log.on_group_event(event);
  log.clear();
  EXPECT_EQ(log.total(), 0u);
  EXPECT_TRUE(log.events().empty());
}

TEST(EventLog, EventToString) {
  GroupEvent event{};
  event.kind = GroupEvent::Kind::kTakeover;
  event.node = NodeId{7};
  event.label = LabelId::make(NodeId{1}, 2);
  event.time = Time::seconds(3);
  const std::string s = event.to_string();
  EXPECT_NE(s.find("takeover"), std::string::npos);
  EXPECT_NE(s.find("node 7"), std::string::npos);
}

// --- ChannelReport ---

TEST(ChannelReport, ComputedFromMediumStats) {
  radio::MediumStats stats;
  stats.bits_sent = 50'000;  // one full second of the 50 kb/s channel
  auto& hb = stats.of(radio::MsgType::kHeartbeat);
  hb.transmitted = 100;
  hb.pair_attempts = 200;
  hb.pair_delivered = 150;
  auto& rep = stats.of(radio::MsgType::kReport);
  rep.transmitted = 50;
  rep.pair_attempts = 50;
  rep.pair_delivered = 40;

  const auto report = metrics::ChannelReport::from(
      stats, Duration::seconds(2), 50'000.0);
  EXPECT_NEAR(report.heartbeat_loss_pct, 25.0, 1e-9);
  EXPECT_NEAR(report.report_loss_pct, 20.0, 1e-9);
  EXPECT_NEAR(report.link_utilization_pct, 50.0, 1e-9);
  EXPECT_NE(report.to_string().find("HB loss 25.00%"), std::string::npos);
}

TEST(ChannelReport, EmptyStatsReadZero) {
  const auto report = metrics::ChannelReport::from(
      radio::MediumStats{}, Duration::seconds(1), 50'000.0);
  EXPECT_EQ(report.heartbeat_loss_pct, 0.0);
  EXPECT_EQ(report.link_utilization_pct, 0.0);
}

// --- TrackRecorder ---

TEST(TrackRecorder, RecordsOnlyMatchingTag) {
  TestWorld::Options options;
  options.mutate_spec = [](core::ContextTypeSpec& spec) {
    core::ObjectSpec reporter;
    reporter.name = "r";
    core::MethodSpec good;
    good.name = "track";
    good.invocation.kind = core::InvocationSpec::Kind::kTimer;
    good.invocation.period = Duration::seconds(1);
    good.body = [](core::TrackingContext& ctx) {
      if (auto where = ctx.read_vector("where")) {
        ctx.send_to_node(NodeId{0}, "track", {where->x, where->y});
      }
    };
    core::MethodSpec noise;
    noise.name = "noise";
    noise.invocation.kind = core::InvocationSpec::Kind::kTimer;
    noise.invocation.period = Duration::seconds(1);
    noise.body = [](core::TrackingContext& ctx) {
      ctx.send_to_node(NodeId{0}, "chatter", {1.0});
    };
    reporter.methods.push_back(std::move(good));
    reporter.methods.push_back(std::move(noise));
    spec.objects.push_back(std::move(reporter));
  };
  TestWorld world(options);
  const TargetId target = world.add_blob({3.5, 1.0});
  metrics::TrackRecorder recorder(world.system(), NodeId{0}, target,
                                  "track");
  world.run(8);

  ASSERT_GE(recorder.report_count(), 5u);
  EXPECT_EQ(recorder.distinct_labels(), 1u);
  EXPECT_LT(recorder.mean_error(), 1.2);
  EXPECT_GE(recorder.max_error(), recorder.mean_error());
  for (const auto& point : recorder.points()) {
    EXPECT_NEAR(point.actual.x, 3.5, 1e-9) << "stationary ground truth";
  }
}

TEST(TrackRecorder, EmptyTrackErrorIsNaNNotZero) {
  // Regression: mean_error()/max_error() used to return 0.0 for an empty
  // track — indistinguishable from a perfect track, so a run where the
  // base station heard *nothing* graded as flawless. No data is NaN.
  TestWorld world;
  // A blob far off-grid: exists as ground truth, is never sensed, so the
  // base station never hears a single report.
  const TargetId target = world.add_blob({100.0, 100.0}, 0.01);
  metrics::TrackRecorder recorder(world.system(), NodeId{0}, target,
                                  "track");
  world.run(3);
  ASSERT_EQ(recorder.report_count(), 0u);
  EXPECT_TRUE(std::isnan(recorder.mean_error()))
      << "empty track must not grade as a perfect (0-error) track";
  EXPECT_TRUE(std::isnan(recorder.max_error()));
}

}  // namespace
}  // namespace et::test
