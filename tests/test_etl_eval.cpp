#include "etl/eval.hpp"

#include <gtest/gtest.h>

#include "etl/parser.hpp"

namespace et::etl {
namespace {

Value eval_src(std::string_view source, const EvalHooks& hooks = {}) {
  auto expr = parse_expression(source);
  EXPECT_TRUE(expr.ok()) << (expr.ok() ? "" : expr.error().to_string());
  if (!expr.ok()) return Value::null();
  return eval_expr(*expr.value(), hooks);
}

TEST(Eval, Arithmetic) {
  EXPECT_DOUBLE_EQ(eval_src("1 + 2 * 3").number(), 7.0);
  EXPECT_DOUBLE_EQ(eval_src("(1 + 2) * 3").number(), 9.0);
  EXPECT_DOUBLE_EQ(eval_src("10 / 4").number(), 2.5);
  EXPECT_DOUBLE_EQ(eval_src("-3 + 1").number(), -2.0);
  EXPECT_DOUBLE_EQ(eval_src("2 - 3 - 4").number(), -5.0)
      << "subtraction must associate left";
}

TEST(Eval, DivisionByZeroIsNull) {
  EXPECT_TRUE(eval_src("1 / 0").is_null());
}

TEST(Eval, Comparisons) {
  EXPECT_DOUBLE_EQ(eval_src("3 > 2").number(), 1.0);
  EXPECT_DOUBLE_EQ(eval_src("3 < 2").number(), 0.0);
  EXPECT_DOUBLE_EQ(eval_src("2 >= 2").number(), 1.0);
  EXPECT_DOUBLE_EQ(eval_src("2 != 2").number(), 0.0);
  EXPECT_DOUBLE_EQ(eval_src("2 == 2").number(), 1.0);
}

TEST(Eval, Logic) {
  EXPECT_TRUE(eval_src("true and true").truthy());
  EXPECT_FALSE(eval_src("true and false").truthy());
  EXPECT_TRUE(eval_src("false or true").truthy());
  EXPECT_TRUE(eval_src("not false").truthy());
  EXPECT_TRUE(eval_src("1 < 2 and 2 < 3").truthy());
}

TEST(Eval, ShortCircuit) {
  int calls = 0;
  EvalHooks hooks;
  hooks.call = [&](const std::string&, const std::vector<Value>&) {
    ++calls;
    return Value::of(true);
  };
  eval_src("false and probe()", hooks);
  EXPECT_EQ(calls, 0) << "rhs of short-circuited 'and' must not evaluate";
  eval_src("true or probe()", hooks);
  EXPECT_EQ(calls, 0) << "rhs of short-circuited 'or' must not evaluate";
}

TEST(Eval, NullPropagation) {
  EvalHooks hooks;
  hooks.ident = [](const std::string&) { return Value::null(); };
  EXPECT_TRUE(eval_src("missing + 1", hooks).is_null());
  EXPECT_TRUE(eval_src("missing > 0", hooks).is_null());
  EXPECT_FALSE(eval_src("missing > 0", hooks).truthy())
      << "null conditions read as false";
  EXPECT_TRUE(eval_src("not missing", hooks).truthy());
  EXPECT_FALSE(eval_src("missing and true", hooks).truthy());
}

TEST(Eval, IdentResolution) {
  EvalHooks hooks;
  hooks.ident = [](const std::string& name) {
    return name == "heat" ? Value::of(42.0) : Value::null();
  };
  EXPECT_DOUBLE_EQ(eval_src("heat + 1", hooks).number(), 43.0);
  EXPECT_TRUE(eval_src("heat > 40", hooks).truthy());
}

TEST(Eval, CallsReceiveEvaluatedArgs) {
  EvalHooks hooks;
  hooks.call = [](const std::string& callee,
                  const std::vector<Value>& args) {
    EXPECT_EQ(callee, "state");
    EXPECT_EQ(args.size(), 1u);
    EXPECT_TRUE(args[0].is_string());
    return Value::of(5.0);
  };
  EXPECT_DOUBLE_EQ(eval_src("state(\"x\") * 2", hooks).number(), 10.0);
}

TEST(Eval, SelfMember) {
  EvalHooks hooks;
  hooks.self_member = [](const std::string& member) {
    return member == "x" ? Value::of(3.5) : Value::null();
  };
  EXPECT_DOUBLE_EQ(eval_src("self.x", hooks).number(), 3.5);
}

TEST(Eval, StringEquality) {
  EXPECT_TRUE(eval_src("\"a\" == \"a\"").truthy());
  EXPECT_TRUE(eval_src("\"a\" != \"b\"").truthy());
  EXPECT_TRUE(eval_src("\"a\" + \"b\"").is_null())
      << "string arithmetic is not defined";
}

TEST(Eval, DurationsReadAsSeconds) {
  EXPECT_DOUBLE_EQ(eval_src("500ms + 1s").number(), 1.5);
}

TEST(Eval, Truthiness) {
  EXPECT_FALSE(Value::null().truthy());
  EXPECT_FALSE(Value::of(0.0).truthy());
  EXPECT_TRUE(Value::of(-1.0).truthy());
  EXPECT_FALSE(Value::of(std::string("")).truthy());
  EXPECT_TRUE(Value::of(std::string("x")).truthy());
  EXPECT_TRUE(Value::of(Vec2{0, 0}).truthy());
  EXPECT_FALSE(Value::of(LabelId{}).truthy());
  EXPECT_TRUE(Value::of(LabelId::make(NodeId{1}, 2)).truthy());
}

TEST(Eval, ValueToString) {
  EXPECT_EQ(Value::null().to_string(), "null");
  EXPECT_EQ(Value::of(2.5).to_string(), "2.5");
  EXPECT_EQ(Value::of(std::string("hi")).to_string(), "hi");
}

TEST(Eval, MissingHooksYieldNull) {
  EXPECT_TRUE(eval_src("anything").is_null());
  EXPECT_TRUE(eval_src("call()").is_null());
  EXPECT_TRUE(eval_src("self.label").is_null());
}

}  // namespace
}  // namespace et::etl
