#include <gtest/gtest.h>

#include "util/expected.hpp"
#include "util/ids.hpp"
#include "util/log.hpp"

namespace et {
namespace {

// --- Expected ---

Expected<int> parse_positive(int v) {
  if (v <= 0) return Expected<int>::failure("bad", "not positive");
  return v;
}

TEST(Expected, SuccessPath) {
  auto result = parse_positive(5);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(static_cast<bool>(result));
  EXPECT_EQ(result.value(), 5);
  EXPECT_EQ(result.value_or(-1), 5);
}

TEST(Expected, FailurePath) {
  auto result = parse_positive(-2);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "bad");
  EXPECT_EQ(result.error().message, "not positive");
  EXPECT_EQ(result.error().to_string(), "bad: not positive");
  EXPECT_EQ(result.value_or(-1), -1);
}

TEST(Expected, MoveOutValue) {
  Expected<std::string> result(std::string("payload"));
  const std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

// --- Ids ---

TEST(Ids, DefaultIsInvalid) {
  EXPECT_FALSE(NodeId{}.is_valid());
  EXPECT_FALSE(LabelId{}.is_valid());
  EXPECT_TRUE(NodeId{0}.is_valid());
}

TEST(Ids, Comparison) {
  EXPECT_EQ(NodeId{3}, NodeId{3});
  EXPECT_NE(NodeId{3}, NodeId{4});
  EXPECT_LT(NodeId{3}, NodeId{4});
}

TEST(Ids, LabelEncodesCreatorAndSequence) {
  const LabelId label = LabelId::make(NodeId{17}, 42);
  EXPECT_TRUE(label.is_valid());
  EXPECT_EQ(label.creator(), NodeId{17});
  EXPECT_EQ(label.sequence(), 42u);
}

TEST(Ids, LabelsFromDifferentCreatorsNeverCollide) {
  EXPECT_NE(LabelId::make(NodeId{1}, 0), LabelId::make(NodeId{2}, 0));
  EXPECT_NE(LabelId::make(NodeId{1}, 0), LabelId::make(NodeId{1}, 1));
}

TEST(Ids, Hashable) {
  std::unordered_map<LabelId, int> map;
  map[LabelId::make(NodeId{1}, 2)] = 7;
  EXPECT_EQ(map.at(LabelId::make(NodeId{1}, 2)), 7);
}

// --- Logger ---

TEST(Logger, RespectsLevel) {
  std::vector<std::string> lines;
  auto& logger = Logger::instance();
  const LogLevel saved = logger.level();
  logger.set_sink([&](LogLevel, std::string_view line) {
    lines.emplace_back(line);
  });
  logger.set_level(LogLevel::kWarn);

  ET_DEBUG("test", "hidden %d", 1);
  ET_WARN("test", "visible %d", 2);
  ET_ERROR("test", "also %s", "visible");

  EXPECT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("visible 2"), std::string::npos);
  EXPECT_NE(lines[0].find("[test]"), std::string::npos);

  logger.set_sink(nullptr);
  logger.set_level(saved);
}

TEST(Logger, ClockStampsLines) {
  std::vector<std::string> lines;
  auto& logger = Logger::instance();
  const LogLevel saved = logger.level();
  logger.set_sink([&](LogLevel, std::string_view line) {
    lines.emplace_back(line);
  });
  logger.set_level(LogLevel::kInfo);
  logger.set_clock([] { return Time::seconds(2.5); });

  ET_INFO("test", "stamped");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].rfind("2.500s", 0), 0u) << lines[0];

  logger.clear_clock();
  logger.set_sink(nullptr);
  logger.set_level(saved);
}

TEST(Logger, LevelNames) {
  EXPECT_STREQ(log_level_name(LogLevel::kTrace), "TRACE");
  EXPECT_STREQ(log_level_name(LogLevel::kError), "ERROR");
}

}  // namespace
}  // namespace et
