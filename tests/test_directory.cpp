#include "core/directory.hpp"

#include <gtest/gtest.h>

#include "test_world.hpp"

/// Directory service tests (§5.3): rendezvous hashing, leader updates,
/// queries, replication, and survival of directory-node failure.
namespace et::test {
namespace {

TEST(DirectoryHash, DeterministicAndInBounds) {
  const Rect bounds{{0, 0}, {10, 5}};
  const Vec2 a = core::directory_hash_point("fire", bounds);
  const Vec2 b = core::directory_hash_point("fire", bounds);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(bounds.contains(a));
  const Vec2 c = core::directory_hash_point("car", bounds);
  EXPECT_NE(a, c) << "different types should rendezvous differently";
}

TestWorld::Options directory_options() {
  TestWorld::Options options;
  options.rows = 5;
  options.cols = 10;
  options.enable_directory = true;
  options.enable_transport = false;
  return options;
}

TEST(Directory, LeaderRegistersAndQueryFindsLabel) {
  TestWorld world(directory_options());
  world.add_blob({2.0, 2.0});
  world.run(8);  // group forms, first directory update lands
  const auto leader = world.sole_leader();
  ASSERT_TRUE(leader.has_value());
  const LabelId label = world.groups(*leader).current_label(0);

  bool answered = false;
  std::vector<core::DirectoryEntry> entries;
  // Query from the far corner.
  const NodeId querier{world.system().node_count() - 1};
  world.system().stack(querier).directory()->query(
      0, [&](bool ok, const std::vector<core::DirectoryEntry>& result) {
        answered = ok;
        entries = result;
      });
  world.run(5);

  ASSERT_TRUE(answered);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].label, label);
  EXPECT_NEAR(entries[0].location.x, 2.0, 1.5);
  EXPECT_NEAR(entries[0].location.y, 2.0, 1.5);
}

TEST(Directory, QueryWithNoLabelsReturnsEmpty) {
  TestWorld world(directory_options());
  world.run(2);
  bool answered = false;
  std::size_t count = 99;
  world.system().stack(NodeId{0}).directory()->query(
      0, [&](bool ok, const std::vector<core::DirectoryEntry>& result) {
        answered = ok;
        count = result.size();
      });
  world.run(5);
  ASSERT_TRUE(answered);
  EXPECT_EQ(count, 0u);
}

TEST(Directory, MultipleLabelsListed) {
  TestWorld world(directory_options());
  world.add_blob({1.0, 1.0});
  world.add_blob({8.0, 3.0});
  world.run(8);
  ASSERT_EQ(world.leaders().size(), 2u);

  std::vector<core::DirectoryEntry> entries;
  world.system().stack(NodeId{0}).directory()->query(
      0, [&](bool ok, const std::vector<core::DirectoryEntry>& result) {
        if (ok) entries = result;
      });
  world.run(5);
  EXPECT_EQ(entries.size(), 2u);
}

TEST(Directory, EntriesExpireAfterTtl) {
  TestWorld::Options options = directory_options();
  options.group.relinquish_enabled = true;
  TestWorld world(options);
  const TargetId blob = world.add_blob({2.0, 2.0});
  world.run(8);
  world.env().remove_target_at(blob, world.sim().now());
  // Default entry TTL is 20 s; run past it.
  world.run(30);

  std::size_t count = 99;
  world.system().stack(NodeId{0}).directory()->query(
      0, [&](bool ok, const std::vector<core::DirectoryEntry>& result) {
        if (ok) count = result.size();
      });
  world.run(5);
  EXPECT_EQ(count, 0u) << "stale labels must age out of the directory";
}

TEST(Directory, ReplicationSurvivesDirectoryNodeCrash) {
  TestWorld world(directory_options());
  world.add_blob({2.0, 2.0});
  world.run(8);

  // Identify and kill the primary directory node (nearest to hash point).
  auto* dir0 = world.system().stack(NodeId{0}).directory();
  const Vec2 rendezvous = dir0->hash_point(0);
  const NodeId primary = world.field().nearest(rendezvous);
  world.system().crash_node(primary);
  world.run(7);  // next periodic update re-routes to a replica neighbour

  bool answered = false;
  std::size_t count = 0;
  const NodeId querier{world.system().node_count() - 1};
  ASSERT_NE(querier, primary);
  world.system().stack(querier).directory()->query(
      0, [&](bool ok, const std::vector<core::DirectoryEntry>& result) {
        answered = ok;
        count = result.size();
      });
  world.run(5);
  ASSERT_TRUE(answered) << "queries must be answerable after primary crash";
  EXPECT_EQ(count, 1u);
}

TEST(Directory, LocationUpdatesFollowMovingTarget) {
  TestWorld::Options options = directory_options();
  options.cols = 14;
  TestWorld world(options);
  world.add_moving_blob({0.0, 2.0}, {13.0, 2.0}, 0.25);
  world.run(10);

  auto query_x = [&]() -> double {
    double x = -100;
    world.system().stack(NodeId{0}).directory()->query(
        0, [&](bool ok, const std::vector<core::DirectoryEntry>& result) {
          if (ok && !result.empty()) x = result.front().location.x;
        });
    world.run(4);
    return x;
  };

  const double early = query_x();
  world.run(25);
  const double late = query_x();
  ASSERT_GT(early, -100);
  ASSERT_GT(late, -100);
  EXPECT_GT(late, early + 2.0)
      << "directory location must track the moving label";
}

}  // namespace
}  // namespace et::test
