/// Stress tests for the slab-backed EventQueue: cancellation-heavy churn,
/// slot reuse behind stale handles (generation checks), handle lifetime
/// beyond the queue, and eager release of cancelled callbacks' captures.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

namespace et {
namespace {

TEST(EventQueueStress, CancellationChurnReusesSlots) {
  sim::EventQueue queue;
  // Many rounds of schedule-everything / cancel-everything: the slab must
  // recycle slots instead of growing with total scheduled count.
  for (int round = 0; round < 50; ++round) {
    std::vector<sim::EventHandle> handles;
    handles.reserve(100);
    for (int i = 0; i < 100; ++i) {
      handles.push_back(queue.schedule(Time::seconds(i + 1), [] {}));
    }
    EXPECT_EQ(queue.size(), 100u);
    for (auto& h : handles) h.cancel();
    EXPECT_EQ(queue.size(), 0u);
    for (const auto& h : handles) EXPECT_FALSE(h.pending());
  }
  // 5000 events were scheduled in total; at most 100 were ever live.
  EXPECT_LE(queue.slot_capacity(), 100u);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueueStress, StaleHandleCannotCancelSlotSuccessor) {
  sim::EventQueue queue;
  sim::EventHandle first = queue.schedule(Time::seconds(1), [] {});
  first.cancel();
  ASSERT_FALSE(first.pending());

  // The freed slot is recycled; the old handle must miss the new occupant.
  int fired = 0;
  sim::EventHandle second =
      queue.schedule(Time::seconds(2), [&] { ++fired; });
  EXPECT_LE(queue.slot_capacity(), 1u);

  first.cancel();   // stale generation: must be a no-op
  EXPECT_FALSE(first.pending());
  EXPECT_TRUE(second.pending());

  ASSERT_FALSE(queue.empty());
  auto fired_event = queue.pop();
  fired_event.fn();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(fired_event.time, Time::seconds(2));
}

TEST(EventQueueStress, CancelAfterFireIsNoOp) {
  sim::EventQueue queue;
  sim::EventHandle h = queue.schedule(Time::seconds(1), [] {});
  queue.pop().fn();
  EXPECT_FALSE(h.pending());
  h.cancel();  // slot already recycled by pop

  // A successor in the reused slot is unaffected by the dead handle.
  sim::EventHandle next = queue.schedule(Time::seconds(2), [] {});
  h.cancel();
  EXPECT_TRUE(next.pending());
  EXPECT_EQ(queue.size(), 1u);
}

TEST(EventQueueStress, ClearInvalidatesAllHandles) {
  sim::EventQueue queue;
  std::vector<sim::EventHandle> handles;
  for (int i = 0; i < 32; ++i) {
    handles.push_back(queue.schedule(Time::seconds(i + 1), [] {}));
  }
  queue.clear();
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
  for (auto& h : handles) {
    EXPECT_FALSE(h.pending());
    h.cancel();  // must not throw or resurrect anything
  }
  // Slots freed by clear() are reusable.
  queue.schedule(Time::seconds(1), [] {});
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_LE(queue.slot_capacity(), 32u);
}

TEST(EventQueueStress, HandleOutlivesQueue) {
  std::optional<sim::EventQueue> queue;
  queue.emplace();
  sim::EventHandle h = queue->schedule(Time::seconds(1), [] {});
  EXPECT_TRUE(h.pending());
  queue.reset();
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not touch freed memory (liveness token expired)
}

TEST(EventQueueStress, CancelReleasesCapturedStateEagerly) {
  // Cancellation destroys the callback immediately, not lazily when the
  // stale heap entry surfaces — captured resources must not linger.
  sim::EventQueue queue;
  auto token = std::make_shared<int>(42);
  sim::EventHandle h =
      queue.schedule(Time::seconds(1), [token] { (void)*token; });
  EXPECT_EQ(token.use_count(), 2);
  h.cancel();
  EXPECT_EQ(token.use_count(), 1);
}

TEST(EventQueueStress, OversizedCallbacksFallBackToHeap) {
  // Callables larger than the inline buffer take the heap path; behavior
  // (fire, cancel, destruction) must be identical.
  sim::EventQueue queue;
  struct Big {
    std::uint64_t pad[12] = {};  // 96 bytes > 64-byte inline buffer
    std::shared_ptr<int> token;
    int* fired;
    void operator()() const { ++*fired; }
  };
  static_assert(sizeof(Big) > 64);

  auto token = std::make_shared<int>(0);
  int fired = 0;
  queue.schedule(Time::seconds(1), Big{{}, token, &fired});
  sim::EventHandle cancelled =
      queue.schedule(Time::seconds(2), Big{{}, token, &fired});
  EXPECT_EQ(token.use_count(), 3);
  cancelled.cancel();
  EXPECT_EQ(token.use_count(), 2);
  queue.pop().fn();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(token.use_count(), 1);
}

TEST(EventQueueStress, RandomizedChurnMatchesModel) {
  // Deterministic pseudo-random interleaving of schedule / cancel / fire,
  // checked against a simple reference model of which events must run.
  sim::EventQueue queue;
  std::uint64_t lcg = 99;
  auto rnd = [&lcg](std::uint64_t mod) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return (lcg >> 33) % mod;
  };

  std::vector<sim::EventHandle> handles;
  std::vector<bool> cancelled;
  std::vector<bool> fired;
  std::size_t max_live = 0;
  int next_id = 0;

  for (int step = 0; step < 20'000; ++step) {
    const std::uint64_t op = rnd(10);
    if (op < 5) {  // schedule
      const int id = next_id++;
      fired.push_back(false);
      cancelled.push_back(false);
      handles.push_back(queue.schedule(Time::seconds(step + 1),
                                       [&fired, id] { fired[id] = true; }));
    } else if (op < 8 && !handles.empty()) {  // cancel a random handle
      const std::size_t pick = rnd(handles.size());
      if (handles[pick].pending()) cancelled[pick] = true;
      handles[pick].cancel();
      EXPECT_FALSE(handles[pick].pending());
    } else if (!queue.empty()) {  // fire the earliest
      queue.pop().fn();
    }
    max_live = std::max(max_live, queue.size());
  }
  while (!queue.empty()) queue.pop().fn();

  for (std::size_t i = 0; i < handles.size(); ++i) {
    EXPECT_FALSE(handles[i].pending());
    EXPECT_NE(fired[i], cancelled[i])
        << "event " << i << " must fire exactly when not cancelled";
  }
  // The slab never needs more slots than the live-event watermark.
  EXPECT_LE(queue.slot_capacity(), max_live);
}

TEST(EventQueueStress, SimulatorCancellationHeavyTimerChurn) {
  // The pattern group management produces: timers constantly re-armed
  // (cancel + schedule) and only occasionally allowed to fire.
  sim::Simulator sim;
  int fired = 0;
  sim::EventHandle timer;
  std::uint64_t rearms = 0;

  // Every 10 ms, re-arm a 25 ms timeout; it only fires if left alone.
  std::function<void()> rearm = [&] {
    timer.cancel();
    timer = sim.schedule(Duration::millis(25), [&] { ++fired; });
    ++rearms;
  };
  sim.schedule_periodic(Duration::zero(), Duration::millis(10),
                        [&] { if (rearms < 1000) rearm(); });
  sim.run_until(Time::seconds(30));

  EXPECT_EQ(rearms, 1000u);
  // Exactly one timeout survives: the last re-arm.
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace et
