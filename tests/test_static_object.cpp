#include "core/static_object.hpp"

#include <gtest/gtest.h>

#include "test_world.hpp"

/// Static-object tests (§3.2): node-pinned objects running independently
/// of any context label.
namespace et::test {
namespace {

TEST(StaticObject, TimerMethodsRunWithoutAnyTarget) {
  TestWorld world;
  int ticks = 0;
  core::StaticObjectSpec spec;
  spec.name = "housekeeper";
  spec.methods.push_back(core::StaticObjectSpec::TimerMethod{
      "tick", Duration::seconds(1),
      [&ticks](core::StaticContext&) { ++ticks; }});
  world.system().stack(NodeId{0}).add_static_object(std::move(spec));
  world.run(10);
  EXPECT_GE(ticks, 9);
  EXPECT_TRUE(world.leaders().empty()) << "no context involved";
}

TEST(StaticObject, ContextExposesNodeAndSensors) {
  TestWorld world;
  world.add_blob({1.0, 0.0});
  std::optional<Vec2> seen_pos;
  double seen_reading = -1;
  bool seen_senses = false;
  core::StaticObjectSpec spec;
  spec.name = "observer";
  spec.methods.push_back(core::StaticObjectSpec::TimerMethod{
      "observe", Duration::seconds(1), [&](core::StaticContext& ctx) {
        seen_pos = ctx.node_position();
        seen_reading = ctx.read_sensor("magnetic");
        seen_senses = ctx.senses("blob");
      }});
  // Node 1 sits at (1, 0) — on top of the blob.
  world.system().stack(NodeId{1}).add_static_object(std::move(spec));
  world.run(3);
  ASSERT_TRUE(seen_pos.has_value());
  EXPECT_EQ(*seen_pos, (Vec2{1.0, 0.0}));
  EXPECT_GT(seen_reading, 0.0);
  EXPECT_TRUE(seen_senses);
}

TEST(StaticObject, NodeToNodeMessaging) {
  TestWorld::Options options;
  options.cols = 8;
  TestWorld world(options);

  // A sender static object on node 0 and a receiver on the far corner.
  std::vector<double> received;
  NodeId received_from;
  core::StaticObjectSpec receiver;
  receiver.name = "sink";
  receiver.on_message = [&](core::StaticContext&,
                            const core::UserMessagePayload& msg,
                            NodeId origin) {
    received = msg.data;
    received_from = origin;
  };
  const NodeId far{world.system().node_count() - 1};
  world.system().stack(far).add_static_object(std::move(receiver));

  core::StaticObjectSpec sender;
  sender.name = "beacon";
  sender.methods.push_back(core::StaticObjectSpec::TimerMethod{
      "send", Duration::seconds(2), [far](core::StaticContext& ctx) {
        ctx.send_to_node(far, "beacon", {ctx.now().to_seconds()});
      }});
  world.system().stack(NodeId{0}).add_static_object(std::move(sender));

  world.run(6);
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received_from, NodeId{0});
}

TEST(StaticObject, CoexistsWithUserHandler) {
  TestWorld world;
  int object_deliveries = 0;
  int handler_deliveries = 0;

  core::StaticObjectSpec sink;
  sink.name = "sink";
  sink.on_message = [&](core::StaticContext&,
                        const core::UserMessagePayload&,
                        NodeId) { ++object_deliveries; };
  auto& stack = world.system().stack(NodeId{0});
  stack.add_static_object(std::move(sink));
  stack.on_user_message(
      [&](const core::UserMessagePayload&, NodeId) {
        ++handler_deliveries;
      });

  core::StaticObjectSpec sender;
  sender.name = "beacon";
  sender.methods.push_back(core::StaticObjectSpec::TimerMethod{
      "send", Duration::seconds(1), [](core::StaticContext& ctx) {
        ctx.send_to_node(NodeId{0}, "x", {1.0});
      }});
  world.system().stack(NodeId{5}).add_static_object(std::move(sender));

  world.run(5);
  EXPECT_GE(object_deliveries, 3);
  EXPECT_EQ(object_deliveries, handler_deliveries)
      << "both consumers must see every message";
}

TEST(StaticObject, MultipleObjectsOnOneNode) {
  TestWorld world;
  int a_ticks = 0;
  int b_ticks = 0;
  core::StaticObjectSpec a;
  a.name = "a";
  a.methods.push_back(core::StaticObjectSpec::TimerMethod{
      "t", Duration::seconds(1), [&](core::StaticContext&) { ++a_ticks; }});
  core::StaticObjectSpec b;
  b.name = "b";
  b.methods.push_back(core::StaticObjectSpec::TimerMethod{
      "t", Duration::seconds(2), [&](core::StaticContext&) { ++b_ticks; }});
  auto& stack = world.system().stack(NodeId{3});
  auto& obj_a = stack.add_static_object(std::move(a));
  stack.add_static_object(std::move(b));
  world.run(8);
  EXPECT_GE(a_ticks, 7);
  EXPECT_GE(b_ticks, 3);
  EXPECT_LE(b_ticks, 4);
  EXPECT_EQ(obj_a.invocations(), static_cast<std::uint64_t>(a_ticks));
}

TEST(StaticObject, DiesWithItsNode) {
  TestWorld world;
  int ticks = 0;
  core::StaticObjectSpec spec;
  spec.name = "mortal";
  spec.methods.push_back(core::StaticObjectSpec::TimerMethod{
      "t", Duration::seconds(1), [&](core::StaticContext&) { ++ticks; }});
  world.system().stack(NodeId{0}).add_static_object(std::move(spec));
  world.run(3);
  const int before = ticks;
  world.system().crash_node(NodeId{0});
  world.run(5);
  // At most one already-queued CPU task may still drain at crash time.
  EXPECT_LE(ticks, before + 1);
}

}  // namespace
}  // namespace et::test
