#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace et {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ForkIsStableAcrossParentDraws) {
  Rng parent(7);
  Rng child1 = parent.fork("radio");
  parent.next_u64();
  parent.next_u64();
  Rng child2 = parent.fork("radio");
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(child1.next_u64(), child2.next_u64());
  }
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(7);
  Rng a = parent.fork("a");
  Rng b = parent.fork("b");
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.next_below(5);
    EXPECT_LT(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(-1, 1);
    EXPECT_GE(v, -1);
    EXPECT_LE(v, 1);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(19);
  const int n = 20000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(5.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng rng(23);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.exponential(0.5);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.05);
}

}  // namespace
}  // namespace et
