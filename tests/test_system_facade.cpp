#include <gtest/gtest.h>

#include "core/system.hpp"
#include "test_world.hpp"

/// EnviroTrackSystem facade and SenseRegistry builder tests.
namespace et::test {
namespace {

TEST(SenseRegistry, TargetBuilder) {
  TestWorld world;
  world.add_blob({2.0, 1.0});
  auto predicate = core::sense_target("blob");
  EXPECT_TRUE(predicate(world.system().network().mote(NodeId{2})));
  EXPECT_FALSE(predicate(
      world.system().network().mote(NodeId{world.system().node_count() - 1})));
}

TEST(SenseRegistry, ThresholdBuilder) {
  TestWorld world;
  world.add_blob({2.0, 1.0});  // magnetic emission 10
  auto hot = core::sense_threshold("magnetic", 5.0);
  auto impossible = core::sense_threshold("magnetic", 1e9);
  // Mote 10 sits at (2, 1): on top of the blob.
  auto& near = world.system().network().mote(world.field().nearest({2, 1}));
  EXPECT_TRUE(hot(near));
  EXPECT_FALSE(impossible(near));
}

TEST(SenseRegistry, AndBuilder) {
  TestWorld world;
  world.add_blob({2.0, 1.0});
  auto both = core::sense_and(core::sense_target("blob"),
                              core::sense_threshold("magnetic", 5.0));
  auto contradictory = core::sense_and(
      core::sense_target("blob"), core::sense_threshold("magnetic", 1e9));
  auto& near = world.system().network().mote(world.field().nearest({2, 1}));
  EXPECT_TRUE(both(near));
  EXPECT_FALSE(contradictory(near));
}

TEST(SenseRegistry, OrAndNotBuilders) {
  TestWorld world;
  world.add_blob({2.0, 1.0});
  auto& near = world.system().network().mote(world.field().nearest({2, 1}));
  auto& far = world.system().network().mote(
      NodeId{world.system().node_count() - 1});

  auto either = core::sense_or(core::sense_target("blob"),
                               core::sense_threshold("magnetic", 1e9));
  EXPECT_TRUE(either(near));
  EXPECT_FALSE(either(far));

  auto inverted = core::sense_not(core::sense_target("blob"));
  EXPECT_FALSE(inverted(near));
  EXPECT_TRUE(inverted(far));
}

TEST(SenseRegistry, ContainsAndReplace) {
  core::SenseRegistry registry;
  EXPECT_FALSE(registry.contains("x"));
  registry.add("x", [](const node::Mote&) { return false; });
  EXPECT_TRUE(registry.contains("x"));
  registry.add("x", [](const node::Mote&) { return true; });  // replace
  EXPECT_TRUE(registry.contains("x"));
}

TEST(SystemFacade, ConfigIsPlumbedThrough) {
  sim::Simulator sim(1);
  env::Environment environment(sim.make_rng("env"));
  const env::Field field = env::Field::grid(2, 3);
  core::SystemConfig config;
  config.radio.comm_radius = 2.5;
  config.radio.bitrate_bps = 19'200.0;
  core::EnviroTrackSystem system(sim, environment, field, config);
  EXPECT_DOUBLE_EQ(system.config().radio.comm_radius, 2.5);
  EXPECT_DOUBLE_EQ(system.medium().config().bitrate_bps, 19'200.0);
  EXPECT_EQ(system.node_count(), 6u);
  EXPECT_FALSE(system.started());
  system.start();
  EXPECT_TRUE(system.started());
}

TEST(SystemFacade, TypeIndicesAreDense) {
  sim::Simulator sim(1);
  env::Environment environment(sim.make_rng("env"));
  const env::Field field = env::Field::grid(2, 3);
  core::EnviroTrackSystem system(sim, environment, field);
  system.senses().add("a", [](const node::Mote&) { return false; });

  core::ContextTypeSpec first;
  first.name = "one";
  first.activation = "a";
  core::ContextTypeSpec second;
  second.name = "two";
  second.activation = "a";
  EXPECT_EQ(system.add_context_type(std::move(first)), 0);
  EXPECT_EQ(system.add_context_type(std::move(second)), 1);
  EXPECT_EQ(system.specs().size(), 2u);
  system.start();
  EXPECT_EQ(system.stack(NodeId{0}).groups().type_count(), 2u);
}

TEST(SystemFacade, ObserversSeeEventsFromEveryMote) {
  TestWorld world;  // already attaches one EventLog through its own path
  metrics::EventLog second_log;
  world.system().add_group_observer(&second_log);
  world.add_blob({3.5, 1.0});
  world.run(5);
  EXPECT_GT(second_log.total(), 0u);
  EXPECT_EQ(second_log.total(), world.events().total());
}

TEST(SystemFacade, AggregationRegistryPreloaded) {
  sim::Simulator sim(1);
  env::Environment environment(sim.make_rng("env"));
  const env::Field field = env::Field::grid(1, 2);
  core::EnviroTrackSystem system(sim, environment, field);
  EXPECT_TRUE(system.aggregations().contains("avg"));
  EXPECT_TRUE(system.aggregations().contains("centroid"));
}

}  // namespace
}  // namespace et::test
