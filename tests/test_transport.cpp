#include "core/transport.hpp"

#include <gtest/gtest.h>

#include "test_world.hpp"

/// MTP tests (§5.4): remote method invocation between context labels,
/// last-known-leader tables, directory fallback on first contact, and
/// forwarding chains as leadership migrates.
namespace et::test {
namespace {

/// World with two context types: "blob" (from TestWorld) and "station" —
/// a second tracked phenomenon whose object exposes a `ping` port that
/// counts invocations.
struct MtpWorld {
  explicit MtpWorld(std::size_t cols = 12) {
    TestWorld::Options options;
    options.rows = 5;
    options.cols = cols;
    options.enable_directory = true;
    options.enable_transport = true;

    core::ContextTypeSpec station;
    station.name = "station";
    station.activation = "station_sensor";
    station.variables.push_back(core::AggregateVarSpec{
        "level", "avg", "magnetic", Duration::seconds(2), 1});
    core::ObjectSpec sink;
    sink.name = "sink";
    core::MethodSpec ping;
    ping.name = "ping";
    ping.invocation.kind = core::InvocationSpec::Kind::kCondition;
    ping.invocation.condition = [](core::TrackingContext&) {
      return false;  // never self-invoked; port-only
    };
    ping.body = [this](core::TrackingContext& ctx) {
      ++pings;
      last_args = ctx.incoming_args();
    };
    sink.methods.push_back(std::move(ping));
    station.objects.push_back(std::move(sink));
    options.extra_specs.push_back(std::move(station));
    options.extra_senses.emplace_back("station_sensor",
                                      core::sense_target("station"));
    world.emplace(options);
  }

  TargetId add_station(Vec2 at) {
    env::Target t;
    t.type = "station";
    t.trajectory = std::make_unique<env::StationaryTrajectory>(at);
    t.radius = env::RadiusProfile::constant(1.2);
    t.emissions["magnetic"] = 5.0;
    return world->env().add_target(std::move(t));
  }

  /// Current leader of the station context.
  std::optional<NodeId> station_leader() {
    return world->sole_leader(1);
  }

  std::optional<TestWorld> world;
  int pings = 0;
  std::vector<double> last_args;
};

TEST(Transport, InvokeViaDirectoryFirstContact) {
  MtpWorld mtp;
  mtp.world->add_blob({2.0, 2.0});
  mtp.add_station({9.0, 2.0});
  mtp.world->run(8);  // groups form, directory entries registered

  const auto blob_leader = mtp.world->sole_leader(0);
  const auto station_leader = mtp.station_leader();
  ASSERT_TRUE(blob_leader && station_leader);
  const LabelId station_label =
      mtp.world->groups(*station_leader).current_label(1);

  // Invoke the station's ping port from the blob leader. Port 0 = "ping".
  mtp.world->system()
      .stack(*blob_leader)
      .transport()
      ->invoke(1, station_label, PortId{0}, {1.5, 2.5});
  mtp.world->run(5);

  ASSERT_EQ(mtp.pings, 1);
  ASSERT_EQ(mtp.last_args.size(), 2u);
  EXPECT_DOUBLE_EQ(mtp.last_args[0], 1.5);
  EXPECT_DOUBLE_EQ(mtp.last_args[1], 2.5);
  EXPECT_GE(mtp.world->system()
                .stack(*blob_leader)
                .transport()
                ->stats()
                .directory_lookups,
            1u);
}

TEST(Transport, SecondInvokeUsesLeaderTableNotDirectory) {
  MtpWorld mtp;
  mtp.world->add_blob({2.0, 2.0});
  mtp.add_station({9.0, 2.0});
  mtp.world->run(8);
  const auto blob_leader = mtp.world->sole_leader(0);
  const auto station_leader = mtp.station_leader();
  ASSERT_TRUE(blob_leader && station_leader);
  const LabelId label = mtp.world->groups(*station_leader).current_label(1);
  auto* transport = mtp.world->system().stack(*blob_leader).transport();

  transport->invoke(1, label, PortId{0}, {});
  mtp.world->run(5);
  const auto lookups_after_first = transport->stats().directory_lookups;
  transport->invoke(1, label, PortId{0}, {});
  mtp.world->run(5);
  EXPECT_EQ(mtp.pings, 2);
  EXPECT_EQ(transport->stats().directory_lookups, lookups_after_first)
      << "the last-known-leader table must satisfy repeat sends";
}

TEST(Transport, LocalShortcutWhenSenderLeadsDestination) {
  MtpWorld mtp;
  mtp.add_station({5.0, 2.0});
  mtp.world->run(5);
  const auto leader = mtp.station_leader();
  ASSERT_TRUE(leader.has_value());
  const LabelId label = mtp.world->groups(*leader).current_label(1);
  auto* transport = mtp.world->system().stack(*leader).transport();
  transport->invoke(1, label, PortId{0}, {7.0});
  mtp.world->run(1);
  EXPECT_EQ(mtp.pings, 1);
  EXPECT_EQ(transport->stats().delivered, 1u);
}

TEST(Transport, UnknownLabelDropsGracefully) {
  MtpWorld mtp;
  mtp.world->run(3);
  auto* transport = mtp.world->system().stack(NodeId{0}).transport();
  transport->invoke(1, LabelId::make(NodeId{42}, 9), PortId{0}, {});
  mtp.world->run(6);
  EXPECT_EQ(mtp.pings, 0);
  EXPECT_EQ(transport->stats().dropped_unknown, 1u);
}

TEST(Transport, HeartbeatSnoopingMaintainsLeaderInfo) {
  MtpWorld mtp;
  mtp.add_station({5.0, 2.0});
  mtp.world->run(5);
  const auto leader = mtp.station_leader();
  ASSERT_TRUE(leader.has_value());
  const LabelId label = mtp.world->groups(*leader).current_label(1);

  // A nearby node (in heartbeat range) learned the leader passively.
  auto* neighbor_transport =
      mtp.world->system().stack(NodeId{0}).transport();
  const auto* info = neighbor_transport->known_leader(label);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->node, *leader);
}

TEST(Transport, DeliveryFollowsLeadershipMigration) {
  // Invoke a moving label repeatedly: as leadership migrates, the sender's
  // stale table entries are corrected by forwarding + snooping.
  MtpWorld mtp(16);
  env::Target rover;
  rover.type = "station";
  rover.trajectory = std::make_unique<env::LinearTrajectory>(
      Vec2{1.0, 2.0}, Vec2{14.0, 2.0}, 0.25);
  rover.radius = env::RadiusProfile::constant(1.2);
  rover.emissions["magnetic"] = 5.0;
  mtp.world->env().add_target(std::move(rover));
  mtp.world->run(6);

  const auto first_leader = mtp.station_leader();
  ASSERT_TRUE(first_leader.has_value());
  const LabelId label = mtp.world->groups(*first_leader).current_label(1);

  const NodeId sender{0};
  auto* transport = mtp.world->system().stack(sender).transport();
  int sent = 0;
  for (int round = 0; round < 8; ++round) {
    transport->invoke(1, label, PortId{0}, {});
    ++sent;
    mtp.world->run(5);  // the label moves between sends
  }
  // Most invocations arrive despite repeated leadership changes.
  EXPECT_GE(mtp.pings, sent - 3)
      << "forwarding chains should mask leadership migration";
}

TEST(Transport, StaleSelfEntryReresolvesViaDirectory) {
  // Regression: a node whose cached LeaderInfo claimed *itself* as the
  // leader of a label it no longer leads used to count arriving messages
  // as dropped_unknown. It must instead drop the stale record and
  // re-resolve through the directory.
  MtpWorld mtp;
  mtp.add_station({9.0, 2.0});
  mtp.world->run(8);
  const auto leader = mtp.station_leader();
  ASSERT_TRUE(leader.has_value());
  const LabelId label = mtp.world->groups(*leader).current_label(1);

  // Plant the poisoned state: a bystander far from the station believes
  // it leads the label (as a node that yielded long ago would), and the
  // sender's table points at that bystander.
  const NodeId bystander{1};
  const NodeId sender{0};
  ASSERT_NE(bystander, *leader);
  ASSERT_NE(sender, *leader);
  const Vec2 bystander_pos =
      mtp.world->system().network().mote(bystander).position();
  auto* bystander_transport =
      mtp.world->system().stack(bystander).transport();
  auto* sender_transport = mtp.world->system().stack(sender).transport();
  bystander_transport->on_leader_observed(1, label, bystander,
                                          bystander_pos);
  sender_transport->on_leader_observed(1, label, bystander, bystander_pos);

  sender_transport->invoke(1, label, PortId{0}, {3.0});
  mtp.world->run(5);

  EXPECT_EQ(mtp.pings, 1)
      << "the message must survive the stale self-record detour";
  EXPECT_EQ(bystander_transport->stats().dropped_unknown, 0u);
  EXPECT_GE(bystander_transport->stats().directory_lookups, 1u)
      << "the bystander must re-resolve the label it does not lead";
  const auto* fixed = bystander_transport->known_leader(label);
  EXPECT_TRUE(fixed == nullptr || fixed->node != bystander)
      << "the self-record must have been invalidated";
}

TEST(Transport, LeadershipLossInvalidatesSelfEntry) {
  // The leader-stop edge (yield/relinquish/takeover-elsewhere) must clear
  // a cached "I am the leader" record so the ex-leader routes instead of
  // swallowing traffic.
  MtpWorld mtp;
  mtp.add_station({5.0, 2.0});
  mtp.world->run(5);
  const auto leader = mtp.station_leader();
  ASSERT_TRUE(leader.has_value());
  const LabelId label = mtp.world->groups(*leader).current_label(1);

  auto* transport = mtp.world->system().stack(*leader).transport();
  const Vec2 leader_pos =
      mtp.world->system().network().mote(*leader).position();
  transport->on_leader_observed(1, label, *leader, leader_pos);
  ASSERT_NE(transport->known_leader(label), nullptr);

  // Kill the leader's sensor: it relinquishes and stops leading. Check
  // the table at the step-down instant, before the successor's first
  // heartbeat could snoop-repair the entry and mask a missing hook.
  mtp.world->system().network().mote(*leader).set_sensor_down(true);
  bool stopped = false;
  for (int i = 0; i < 600 && !stopped; ++i) {
    mtp.world->run(0.01);
    stopped = mtp.world->groups(*leader).role(1) != core::Role::kLeader;
  }
  ASSERT_TRUE(stopped) << "a leader that cannot sense must step down";
  const auto* info = transport->known_leader(label);
  EXPECT_TRUE(info == nullptr || info->node != *leader)
      << "stopping leadership must drop the self-entry";
}

}  // namespace
}  // namespace et::test
