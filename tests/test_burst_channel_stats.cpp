#include <gtest/gtest.h>

#include <optional>

#include "radio/medium.hpp"
#include "sim/simulator.hpp"

/// Statistical validation of the Gilbert–Elliott burst-loss channel: the
/// long-run per-frame loss observed on a link must match the two-state
/// CTMC's stationary prediction
///
///   pi_bad = mean_bad / (mean_good + mean_bad)
///   E[loss] = (1 - pi_bad) * loss_good + pi_bad * loss_bad
///
/// across seeds, and losses must actually occur in both chain states.
namespace et::radio {
namespace {

class ProbePayload final : public Payload {
 public:
  std::size_t size_bytes() const override { return 16; }
};

struct BurstRun {
  double observed_loss = 0.0;
  std::uint64_t burst_losses = 0;
  std::uint64_t random_losses = 0;
};

/// One sender/receiver pair one grid unit apart; `frames` probes spaced
/// `spacing` apart, loss measured at the receiver.
BurstRun run_link(std::uint64_t seed, const BurstLossConfig& burst,
                  int frames, Duration spacing) {
  sim::Simulator sim(seed);
  RadioConfig config;
  config.loss_probability = 0.0;
  config.model_collisions = false;
  config.carrier_sense_miss = 0.0;
  config.burst_loss = burst;
  Medium medium(sim, config);

  int received = 0;
  medium.attach(NodeId{0}, {0.0, 0.0}, [](const Frame&) {});
  medium.attach(NodeId{1}, {1.0, 0.0},
                [&received](const Frame&) { ++received; });

  for (int i = 0; i < frames; ++i) {
    medium.send(Frame{NodeId{0}, NodeId{1}, MsgType::kUser,
                      std::make_shared<ProbePayload>()});
    sim.run_for(spacing);
  }

  BurstRun out;
  const TypeStats totals = medium.stats().totals();
  out.observed_loss =
      1.0 - static_cast<double>(received) / static_cast<double>(frames);
  out.burst_losses = totals.pair_lost_burst;
  out.random_losses = totals.pair_lost_random;
  return out;
}

TEST(BurstChannelStats, LossMatchesStationaryPrediction) {
  BurstLossConfig burst;
  burst.enabled = true;
  burst.mean_good = Duration::seconds(1);
  burst.mean_bad = Duration::millis(250);
  burst.loss_good = 0.05;
  burst.loss_bad = 0.8;

  const double pi_bad = 0.25 / (1.0 + 0.25);
  const double predicted =
      (1.0 - pi_bad) * burst.loss_good + pi_bad * burst.loss_bad;
  ASSERT_NEAR(predicted, 0.20, 1e-9);

  const std::uint64_t seeds[] = {11, 12, 13};
  double mean = 0.0;
  for (const std::uint64_t seed : seeds) {
    const BurstRun run =
        run_link(seed, burst, 12'000, Duration::millis(50));
    EXPECT_NEAR(run.observed_loss, predicted, 0.05)
        << "seed " << seed << " strays from the CTMC prediction";
    EXPECT_GT(run.burst_losses, 0u)
        << "losses must occur inside bursts (seed " << seed << ")";
    EXPECT_GT(run.random_losses, 0u)
        << "losses must occur outside bursts too (seed " << seed << ")";
    mean += run.observed_loss;
  }
  mean /= 3.0;
  EXPECT_NEAR(mean, predicted, 0.025)
      << "the cross-seed mean must sit tighter on the prediction";
}

TEST(BurstChannelStats, BurstsDominateLossWhenBadStateIsLossy) {
  // With a near-lossless Good state, essentially every loss should be
  // attributed to the Bad state — the accounting split must be faithful.
  BurstLossConfig burst;
  burst.enabled = true;
  burst.mean_good = Duration::seconds(1);
  burst.mean_bad = Duration::millis(400);
  burst.loss_good = 0.001;
  burst.loss_bad = 0.9;

  const BurstRun run = run_link(7, burst, 6'000, Duration::millis(50));
  EXPECT_GT(run.burst_losses, 10 * run.random_losses);
}

TEST(BurstChannelStats, DisabledModelFallsBackToIidLoss) {
  // Burst model off: the i.i.d. loss_probability path owns the draw and
  // no burst losses are ever recorded.
  sim::Simulator sim(5);
  RadioConfig config;
  config.loss_probability = 0.3;
  config.model_collisions = false;
  config.carrier_sense_miss = 0.0;
  Medium medium(sim, config);

  int received = 0;
  medium.attach(NodeId{0}, {0.0, 0.0}, [](const Frame&) {});
  medium.attach(NodeId{1}, {1.0, 0.0},
                [&received](const Frame&) { ++received; });
  const int frames = 4'000;
  for (int i = 0; i < frames; ++i) {
    medium.send(Frame{NodeId{0}, NodeId{1}, MsgType::kUser,
                      std::make_shared<ProbePayload>()});
    sim.run_for(Duration::millis(20));
  }

  const TypeStats totals = medium.stats().totals();
  EXPECT_EQ(totals.pair_lost_burst, 0u);
  EXPECT_NEAR(1.0 - static_cast<double>(received) / frames, 0.3, 0.03);
}

}  // namespace
}  // namespace et::radio
