#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "bench/bench_util.hpp"

/// The BENCH_*.json row writer. These files are the durable perf record
/// (they survive repo re-anchors), so malformed rows are silent data loss.
namespace et::test {
namespace {

TEST(JsonRows, LongConfigNamesAreNeverTruncated) {
  // Regression: rows used to be formatted into a fixed 256-byte snprintf
  // buffer. A sweep config long enough to overflow it (kernel + tile grid
  // + fault plan + knobs) was silently truncated — the row lost its
  // closing brace and the whole BENCH file stopped parsing.
  const std::string config(300, 'k');
  bench::JsonRows rows;
  rows.add(config, 7, "qps", 123456.0);

  const std::string out = rows.render();
  EXPECT_NE(out.find(config), std::string::npos)
      << "the full 300-char config string must survive into the row";
  EXPECT_NE(out.find("\"value\": 123456"), std::string::npos);
  EXPECT_NE(out.find("}"), std::string::npos);
  // Structurally complete JSON: one row object, closed array.
  EXPECT_EQ(out.front(), '[');
  EXPECT_EQ(out.substr(out.size() - 2), "]\n");
  EXPECT_NE(out.find("{\"config\": \"" + config + "\", \"seed\": 7"),
            std::string::npos);
}

TEST(JsonRows, NonFiniteValuesRenderAsNull) {
  // JSON has no NaN/Inf literal; a NaN metric (e.g. mean_error of a run
  // with zero reports) must render as null, not as the literal "nan"
  // (which breaks every JSON parser downstream).
  bench::JsonRows rows;
  rows.add("empty-track", 1, "mean_error",
           std::numeric_limits<double>::quiet_NaN());
  rows.add("overflow", 1, "ratio",
           std::numeric_limits<double>::infinity());
  rows.add("fine", 1, "qps", 2.5);

  const std::string out = rows.render();
  EXPECT_NE(out.find("\"metric\": \"mean_error\", \"value\": null"),
            std::string::npos);
  EXPECT_NE(out.find("\"metric\": \"ratio\", \"value\": null"),
            std::string::npos);
  EXPECT_NE(out.find("\"metric\": \"qps\", \"value\": 2.5"),
            std::string::npos);
  EXPECT_EQ(out.find("nan"), std::string::npos);
  EXPECT_EQ(out.find("inf"), std::string::npos);
}

TEST(JsonRows, RowsRenderInInsertionOrderWithCommas) {
  bench::JsonRows rows;
  EXPECT_TRUE(rows.empty());
  rows.add("a", 1, "m", 1.0);
  rows.add("b", 2, "m", 2.0);
  const std::string out = rows.render();
  const auto a = out.find("\"config\": \"a\"");
  const auto b = out.find("\"config\": \"b\"");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(b, std::string::npos);
  EXPECT_LT(a, b);
  EXPECT_NE(out.find("},\n"), std::string::npos)
      << "rows are comma-separated";
}

TEST(KernelSelector, AcceptsTheFourDocumentedForms) {
  sim::KernelConfig kernel;

  EXPECT_TRUE(bench::parse_kernel_selector("", &kernel));
  EXPECT_FALSE(kernel.canonical());

  EXPECT_TRUE(bench::parse_kernel_selector("legacy", &kernel));
  EXPECT_FALSE(kernel.canonical());

  EXPECT_TRUE(bench::parse_kernel_selector("serial", &kernel));
  EXPECT_TRUE(kernel.canonical_order);
  EXPECT_FALSE(kernel.use_parallel_kernel);

  EXPECT_TRUE(bench::parse_kernel_selector("parallel", &kernel));
  EXPECT_TRUE(kernel.use_parallel_kernel);
  EXPECT_EQ(kernel.threads, sim::KernelConfig{}.threads);

  EXPECT_TRUE(bench::parse_kernel_selector("parallel:8", &kernel));
  EXPECT_TRUE(kernel.use_parallel_kernel);
  EXPECT_EQ(kernel.threads, 8u);
}

TEST(KernelSelector, SelectorResetsStaleConfigState) {
  // The parser owns the whole config: a previous parallel selection must
  // not leak threads/flags into a later "serial" parse.
  sim::KernelConfig kernel;
  ASSERT_TRUE(bench::parse_kernel_selector("parallel:16", &kernel));
  ASSERT_TRUE(bench::parse_kernel_selector("serial", &kernel));
  EXPECT_FALSE(kernel.use_parallel_kernel);
  EXPECT_EQ(kernel.threads, sim::KernelConfig{}.threads);
}

TEST(KernelSelector, RejectsZeroNegativeAndGarbageThreadCounts) {
  // Regression: the old chaos_sweep-local parser accepted "parallel:0" and
  // "parallel:junk" by silently falling back to the default thread count —
  // the sweep then benchmarked a configuration nobody asked for.
  sim::KernelConfig kernel;
  for (const char* bad :
       {"parallel:0", "parallel:-3", "parallel:abc", "parallel:2junk",
        "parallel:", "parallel: 4", "parallel:4.5",
        "parallel:99999999999999999999"}) {
    std::string error;
    EXPECT_FALSE(bench::parse_kernel_selector(bad, &kernel, &error))
        << "'" << bad << "' must be rejected";
    EXPECT_NE(error.find("thread count"), std::string::npos)
        << "'" << bad << "' should explain what a valid count looks like, "
        << "got: " << error;
  }
}

TEST(KernelSelector, RejectsUnknownSelectorsWithTheValidList) {
  sim::KernelConfig kernel;
  for (const char* bad : {"seria", "PARALLEL:4", "tiled", "parallel4"}) {
    std::string error;
    EXPECT_FALSE(bench::parse_kernel_selector(bad, &kernel, &error))
        << "'" << bad << "' must be rejected";
    EXPECT_NE(error.find("expected legacy, serial, parallel"),
              std::string::npos)
        << "the error should list the valid selectors, got: " << error;
  }
}

}  // namespace
}  // namespace et::test
