#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "radio/medium.hpp"
#include "sim/simulator.hpp"

/// Property tests of the simulation substrate: total event ordering under
/// randomized schedules, cancellation storms, and bit-level determinism of
/// full radio runs.
namespace et {
namespace {

/// Randomized schedule: events must fire in nondecreasing time order, and
/// same-time events in insertion order, regardless of insertion pattern.
class EventOrderSweep : public ::testing::TestWithParam<int> {};

TEST_P(EventOrderSweep, FiringOrderIsTotal) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 7);
  sim::Simulator sim;
  struct Fired {
    std::int64_t time_us;
    int insertion;
  };
  std::vector<Fired> fired;
  int insertion = 0;
  for (int i = 0; i < 500; ++i) {
    const auto delay = Duration::micros(
        static_cast<std::int64_t>(rng.next_below(1000)));
    const int tag = insertion++;
    sim.schedule(delay, [&fired, &sim, tag] {
      fired.push_back({sim.now().to_micros(), tag});
    });
  }
  sim.run_all();
  ASSERT_EQ(fired.size(), 500u);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    ASSERT_GE(fired[i].time_us, fired[i - 1].time_us);
    if (fired[i].time_us == fired[i - 1].time_us) {
      ASSERT_GT(fired[i].insertion, fired[i - 1].insertion)
          << "same-time events must fire in insertion order";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventOrderSweep, ::testing::Range(0, 6));

TEST(SimProperties, CancellationStorm) {
  Rng rng(99);
  sim::Simulator sim;
  std::vector<sim::EventHandle> handles;
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    handles.push_back(sim.schedule(
        Duration::micros(static_cast<std::int64_t>(rng.next_below(500))),
        [&] { ++fired; }));
  }
  int cancelled = 0;
  for (auto& handle : handles) {
    if (rng.chance(0.5)) {
      handle.cancel();
      ++cancelled;
    }
  }
  sim.run_all();
  EXPECT_EQ(fired, 1000 - cancelled);
}

TEST(SimProperties, CancelFromWithinEarlierEvent) {
  sim::Simulator sim;
  bool second_fired = false;
  sim::EventHandle second = sim.schedule(Duration::millis(2),
                                         [&] { second_fired = true; });
  sim.schedule(Duration::millis(1), [&] { second.cancel(); });
  sim.run_all();
  EXPECT_FALSE(second_fired);
}

/// Determinism: two identical radio worlds with the same seed produce
/// bit-identical statistics; a different seed produces different loss
/// patterns.
TEST(SimProperties, RadioRunsAreDeterministic) {
  auto run = [](std::uint64_t seed) {
    sim::Simulator sim(seed);
    radio::RadioConfig config;
    config.loss_probability = 0.2;
    radio::Medium medium(sim, config);
    class P final : public radio::Payload {
     public:
      std::size_t size_bytes() const override { return 12; }
    };
    int received = 0;
    for (int i = 0; i < 10; ++i) {
      medium.attach(NodeId{static_cast<std::uint64_t>(i)},
                    {static_cast<double>(i % 5), static_cast<double>(i / 5)},
                    [&received](const radio::Frame&) { ++received; });
    }
    auto payload = std::make_shared<P>();
    for (int round = 0; round < 50; ++round) {
      medium.send(radio::Frame{NodeId{static_cast<std::uint64_t>(round % 10)},
                               std::nullopt, radio::MsgType::kUser, payload});
      sim.run_for(Duration::millis(20));
    }
    return std::pair{received, medium.stats().totals().pair_delivered};
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

TEST(SimProperties, HeavyPeriodicLoadKeepsClockMonotonic) {
  sim::Simulator sim;
  Time last = Time::origin();
  bool monotonic = true;
  for (int i = 0; i < 20; ++i) {
    sim.schedule_periodic(Duration::micros(70 + i), Duration::micros(90 + i),
                          [&] {
                            if (sim.now() < last) monotonic = false;
                            last = sim.now();
                          });
  }
  sim.run_until(Time::seconds(0.5));
  EXPECT_TRUE(monotonic);
  EXPECT_GT(sim.events_fired(), 50'000u);
}

}  // namespace
}  // namespace et
