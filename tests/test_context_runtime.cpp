#include "core/context_runtime.hpp"

#include <gtest/gtest.h>

#include "test_world.hpp"

/// Tracking-object runtime tests (§3.2.2): object code runs on the leader
/// only, follows leadership as it migrates, timer and condition invocation
/// semantics, and the TrackingContext surface.
namespace et::test {
namespace {

struct Probe {
  int timer_calls = 0;
  int condition_calls = 0;
  std::vector<NodeId> ran_on;
  std::vector<LabelId> labels;
  std::optional<Vec2> last_where;
};

TestWorld::Options probed_options(Probe* probe) {
  TestWorld::Options options;
  options.mutate_spec = [probe](core::ContextTypeSpec& spec) {
    core::ObjectSpec object;
    object.name = "probe";

    core::MethodSpec ticker;
    ticker.name = "tick";
    ticker.invocation.kind = core::InvocationSpec::Kind::kTimer;
    ticker.invocation.period = Duration::seconds(1);
    ticker.body = [probe](core::TrackingContext& ctx) {
      probe->timer_calls++;
      probe->ran_on.push_back(ctx.node());
      probe->labels.push_back(ctx.label());
      probe->last_where = ctx.read_vector("where");
    };
    object.methods.push_back(std::move(ticker));

    core::MethodSpec watcher;
    watcher.name = "watch";
    watcher.invocation.kind = core::InvocationSpec::Kind::kCondition;
    watcher.invocation.condition = [](core::TrackingContext& ctx) {
      auto strength = ctx.read_scalar("strength");
      return strength && *strength > 0.5;
    };
    watcher.body = [probe](core::TrackingContext&) {
      probe->condition_calls++;
    };
    object.methods.push_back(std::move(watcher));
    spec.objects.push_back(std::move(object));
  };
  return options;
}

TEST(ContextRuntime, ObjectRunsOnlyOnLeader) {
  Probe probe;
  TestWorld world(probed_options(&probe));
  world.add_blob({3.5, 1.0});
  world.run(6);

  ASSERT_GT(probe.timer_calls, 3);
  const auto leader = world.sole_leader();
  ASSERT_TRUE(leader.has_value());
  for (NodeId node : probe.ran_on) {
    EXPECT_EQ(node, *leader) << "object code must run on the group leader";
  }
}

TEST(ContextRuntime, NoInvocationsWithoutContext) {
  Probe probe;
  TestWorld world(probed_options(&probe));
  world.run(6);
  EXPECT_EQ(probe.timer_calls, 0);
  EXPECT_EQ(probe.condition_calls, 0);
}

TEST(ContextRuntime, InvocationsStopWhenContextDissolves) {
  Probe probe;
  TestWorld world(probed_options(&probe));
  const TargetId blob = world.add_blob({3.5, 1.0});
  world.run(5);
  const int calls_while_active = probe.timer_calls;
  ASSERT_GT(calls_while_active, 0);

  world.env().remove_target_at(blob, world.sim().now());
  world.run(1);  // dissolve
  const int calls_at_dissolve = probe.timer_calls;
  world.run(6);
  EXPECT_LE(probe.timer_calls, calls_at_dissolve + 1)
      << "timer methods must stop after the label dissolves";
}

TEST(ContextRuntime, ObjectMigratesWithLeadership) {
  Probe probe;
  auto options = probed_options(&probe);
  options.cols = 12;
  TestWorld world(options);
  world.add_moving_blob({-0.5, 1.0}, {12.0, 1.0}, 0.35);
  world.run(38);

  // The object executed on several different nodes, always under the same
  // context label.
  std::set<std::uint64_t> distinct_nodes;
  for (NodeId node : probe.ran_on) distinct_nodes.insert(node.value());
  EXPECT_GE(distinct_nodes.size(), 3u);
  std::set<std::uint64_t> distinct_labels;
  for (LabelId label : probe.labels) distinct_labels.insert(label.value());
  EXPECT_EQ(distinct_labels.size(), 1u)
      << "the tracking object's label must not change as nodes change";
}

TEST(ContextRuntime, AggregateReadsVisibleToObjects) {
  Probe probe;
  TestWorld world(probed_options(&probe));
  world.add_blob({3.5, 1.0});
  world.run(6);
  ASSERT_TRUE(probe.last_where.has_value());
  EXPECT_NEAR(probe.last_where->x, 3.5, 1.2);
  EXPECT_NEAR(probe.last_where->y, 1.0, 1.2);
}

TEST(ContextRuntime, ConditionFiresOncePerEdge) {
  Probe probe;
  TestWorld world(probed_options(&probe));
  world.add_blob({3.5, 1.0});
  world.run(8);
  // strength stays above threshold once the group forms: a single edge per
  // leadership tenure (relinquish-free stationary target => exactly one).
  EXPECT_EQ(probe.condition_calls, 1);
}

TEST(ContextRuntime, RuntimeStatsCount) {
  Probe probe;
  TestWorld world(probed_options(&probe));
  world.add_blob({3.5, 1.0});
  world.run(6);
  const auto leader = world.sole_leader();
  ASSERT_TRUE(leader.has_value());
  const auto& stats =
      world.system().stack(*leader).runtime().stats();
  EXPECT_EQ(stats.timer_invocations,
            static_cast<std::uint64_t>(probe.timer_calls));
  EXPECT_EQ(stats.condition_invocations,
            static_cast<std::uint64_t>(probe.condition_calls));
}

}  // namespace
}  // namespace et::test
