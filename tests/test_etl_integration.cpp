#include <gtest/gtest.h>

#include "etl/compiler.hpp"
#include "scenario/units.hpp"
#include "test_world.hpp"

/// End-to-end tests of language-declared contexts running on the live
/// middleware: the compiled spec must behave identically to a hand-built
/// one — activation, aggregation QoS, timer methods, condition methods,
/// setState persistence, send() delivery.
namespace et::test {
namespace {

struct EtlWorld {
  explicit EtlWorld(const char* program,
                    std::function<void(etl::CompileOptions&)> tweak = {}) {
    sim.emplace(31);
    env.emplace(sim->make_rng("env"));
    field.emplace(env::Field::grid(3, 10));
    core::SystemConfig config;
    config.radio.loss_probability = 0.0;
    config.radio.model_collisions = false;
    system.emplace(*sim, *env, *field, config);
    system->senses().add("blob_sensor", core::sense_target("blob"));

    etl::CompileOptions options;
    options.destinations["base"] = NodeId{0};
    options.log_sink = [this](const std::string& line) {
      logs.push_back(line);
    };
    if (tweak) tweak(options);
    auto specs = etl::compile_source(program, system->senses(),
                                     system->aggregations(), options);
    if (!specs.ok()) {
      ADD_FAILURE() << specs.error().to_string();
      std::abort();
    }
    for (auto& spec : specs.value()) {
      system->add_context_type(std::move(spec));
    }
    system->start();
    system->stack(NodeId{0}).on_user_message(
        [this](const core::UserMessagePayload& msg, NodeId) {
          messages.push_back(msg);
        });
  }

  TargetId add_blob(Vec2 at, double radius = 1.2) {
    env::Target blob;
    blob.type = "blob";
    blob.trajectory = std::make_unique<env::StationaryTrajectory>(at);
    blob.radius = env::RadiusProfile::constant(radius);
    blob.emissions["magnetic"] = 10.0;
    return env->add_target(std::move(blob));
  }

  void run(double seconds) { sim->run_for(Duration::seconds(seconds)); }

  std::optional<sim::Simulator> sim;
  std::optional<env::Environment> env;
  std::optional<env::Field> field;
  std::optional<core::EnviroTrackSystem> system;
  std::vector<core::UserMessagePayload> messages;
  std::vector<std::string> logs;
};

TEST(EtlIntegration, TimerMethodSendsAggregatedPosition) {
  EtlWorld world(R"(
    begin context blob
      activation: blob_sensor();
      location : avg(position) confidence=2, freshness=1s;
      begin object reporter
        invocation: TIMER(2s)
        report() { send(base, self.label, location); }
      end
    end context
  )");
  world.add_blob({5.0, 1.0});
  world.run(10);

  ASSERT_GE(world.messages.size(), 3u);
  for (const auto& msg : world.messages) {
    EXPECT_EQ(msg.tag, "report");
    ASSERT_EQ(msg.data.size(), 2u);  // label rides in the header, not data
    EXPECT_NEAR(msg.data[0], 5.0, 1.2);
    EXPECT_NEAR(msg.data[1], 1.0, 1.2);
    EXPECT_TRUE(msg.src_label.is_valid());
  }
}

TEST(EtlIntegration, NullAggregateSuppressesSend) {
  // confidence=99 can never be met on a 30-mote grid: the send's null
  // argument must abort the report (unconfirmed sitings stay silent).
  EtlWorld world(R"(
    begin context blob
      activation: blob_sensor();
      location : avg(position) confidence=99, freshness=1s;
      begin object reporter
        invocation: TIMER(1s)
        report() { send(base, location); }
      end
    end context
  )");
  world.add_blob({5.0, 1.0});
  world.run(8);
  EXPECT_TRUE(world.messages.empty());
}

TEST(EtlIntegration, ConditionMethodFiresOnEdge) {
  EtlWorld world(R"(
    begin context blob
      activation: blob_sensor();
      strength : avg(magnetic) confidence=2, freshness=1s;
      begin object watcher
        invocation: when (strength > 1)
        alarm() { log("alarm"); }
      end
    end context
  )");
  world.add_blob({5.0, 1.0});
  world.run(10);
  // Edge-triggered: one alarm per leadership tenure, not one per tick.
  ASSERT_GE(world.logs.size(), 1u);
  EXPECT_LE(world.logs.size(), 4u);
  EXPECT_EQ(world.logs[0], "alarm");
}

TEST(EtlIntegration, SetStateAndStateRoundTrip) {
  EtlWorld world(R"(
    begin context blob
      activation: blob_sensor();
      strength : avg(magnetic) confidence=1, freshness=1s;
      begin object counter
        invocation: TIMER(1s)
        bump() {
          setState("n", state("n") + 1);
          if (state("n") == 3) { log("third"); }
        }
      end
    end context
  )");
  world.add_blob({5.0, 1.0});
  world.run(10);
  // state("n") starts null; null + 1 is null, so setState skips until we
  // seed it... which never happens: verify the null-safety semantics held
  // (no "third" log, no crash).
  EXPECT_TRUE(world.logs.empty());
}

TEST(EtlIntegration, SetStateWithLiteralSeed) {
  EtlWorld world(R"(
    begin context blob
      activation: blob_sensor();
      strength : avg(magnetic) confidence=1, freshness=1s;
      begin object counter
        invocation: TIMER(1s)
        bump() {
          if (not state("seeded")) {
            setState("n", 0);
            setState("seeded", 1);
          } else {
            setState("n", state("n") + 1);
          }
          if (state("n") >= 3) { log("reached", state("n")); }
        }
      end
    end context
  )");
  world.add_blob({5.0, 1.0});
  world.run(10);
  ASSERT_GE(world.logs.size(), 1u);
  EXPECT_EQ(world.logs[0], "reached 3");
}

TEST(EtlIntegration, ThresholdActivationContext) {
  // No sense function at all: activation is a sensor-threshold expression
  // evaluated against the magnetometer channel.
  EtlWorld world(R"(
    begin context blob
      activation: magnetic > 5;
      strength : avg(magnetic) confidence=1, freshness=1s;
      begin object watcher
        invocation: TIMER(2s)
        tick() { log("tracking", strength); }
      end
    end context
  )");
  // Emission 10 at distance <= ~1.26 reads > 5 (1/d^3 falloff).
  world.add_blob({5.0, 1.0}, 0.1);  // tiny disc: only threshold matters
  world.run(10);
  EXPECT_GE(world.logs.size(), 2u);
}

TEST(EtlIntegration, TwoContextTypesCoexist) {
  EtlWorld world(R"(
    begin context blob
      activation: blob_sensor();
      location : avg(position) confidence=2, freshness=1s;
      begin object r
        invocation: TIMER(2s)
        blobreport() { send(base, location); }
      end
    end context
    begin context hotspot
      activation: magnetic > 5;
      level : max(magnetic) confidence=1, freshness=1s;
      begin object r
        invocation: TIMER(2s)
        hotreport() { send(base, level); }
      end
    end context
  )");
  world.add_blob({5.0, 1.0});
  world.run(10);
  bool saw_blob = false;
  bool saw_hotspot = false;
  for (const auto& msg : world.messages) {
    if (msg.tag == "blobreport") saw_blob = true;
    if (msg.tag == "hotreport") saw_hotspot = true;
  }
  EXPECT_TRUE(saw_blob);
  EXPECT_TRUE(saw_hotspot);
}

}  // namespace
}  // namespace et::test
