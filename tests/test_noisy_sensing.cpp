#include <gtest/gtest.h>

#include "metrics/coherence.hpp"
#include "test_world.hpp"

/// Threshold sensing with noisy hardware: activation conditions built on
/// raw scalar readings (temperature > T, magnetic > M) flap when sensors
/// are noisy. The middleware's spurious-label machinery — creation delay,
/// weights, wait memory — must keep false detections from becoming
/// established phantom tracks.
namespace et::test {
namespace {

/// A world whose context activates on a noisy magnetometer threshold
/// rather than the ground-truth disc.
struct NoisyWorld {
  explicit NoisyWorld(double noise_stddev, std::uint64_t seed) {
    sim.emplace(seed);
    env.emplace(sim->make_rng("env"));
    env::ChannelModel magnetic;
    magnetic.falloff = 3.0;
    magnetic.min_distance = 0.1;
    magnetic.noise_stddev = noise_stddev;
    env->set_channel("magnetic", magnetic);
    field.emplace(env::Field::grid(3, 10));

    core::SystemConfig config;
    config.radio.loss_probability = 0.0;
    config.radio.model_collisions = false;
    system.emplace(*sim, *env, *field, config);
    // Activation: reading above 4 (a target at distance <= ~1.35 of a
    // 10-unit emitter). Noise sigma up to 1.5 flaps this condition on
    // motes near the boundary and occasionally on empty motes.
    system->senses().add("hot", core::sense_threshold("magnetic", 4.0));
    core::ContextTypeSpec spec;
    spec.name = "blob";
    spec.activation = "hot";
    spec.variables.push_back(core::AggregateVarSpec{
        "where", "avg", "position", Duration::seconds(1), 2});
    system->add_context_type(std::move(spec));
    system->start();
  }

  TargetId add_emitter(Vec2 at) {
    env::Target blob;
    blob.type = "blob";
    blob.trajectory = std::make_unique<env::StationaryTrajectory>(at);
    blob.radius = env::RadiusProfile::constant(1.35);
    blob.emissions["magnetic"] = 10.0;
    return env->add_target(std::move(blob));
  }

  std::size_t established_leaders() {
    std::size_t n = 0;
    for (std::size_t i = 0; i < system->node_count(); ++i) {
      auto& groups = system->stack(NodeId{i}).groups();
      if (groups.role(0) == core::Role::kLeader &&
          groups.leader_weight(0) >= 3) {
        ++n;
      }
    }
    return n;
  }

  std::optional<sim::Simulator> sim;
  std::optional<env::Environment> env;
  std::optional<env::Field> field;
  std::optional<core::EnviroTrackSystem> system;
};

TEST(NoisySensing, QuietChannelNoPhantoms) {
  NoisyWorld world(0.0, 1);
  world.sim->run_for(Duration::seconds(20));
  EXPECT_EQ(world.established_leaders(), 0u);
}

TEST(NoisySensing, NoiseAloneRarelyEstablishesPhantomTracks) {
  // Noise sigma 1.5 against threshold 4: single-mote false positives
  // happen (P ~ 0.4% per poll) but establishing a label takes a *group*
  // of correlated detections reporting for seconds — the critical-mass
  // and weight machinery suppresses isolated flickers.
  int phantom_samples = 0;
  int samples = 0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    NoisyWorld world(1.5, seed);
    for (int s = 0; s < 40; ++s) {
      world.sim->run_for(Duration::seconds(0.5));
      ++samples;
      if (world.established_leaders() > 0) ++phantom_samples;
    }
  }
  EXPECT_LT(phantom_samples, samples / 10)
      << "phantom tracks from noise must be rare: " << phantom_samples
      << "/" << samples;
}

TEST(NoisySensing, RealTargetDetectedThroughNoise) {
  NoisyWorld world(1.0, 7);
  const TargetId target = world.add_emitter({4.5, 1.0});
  metrics::CoherenceMonitor monitor(*world.system, Duration::millis(100));
  world.sim->run_for(Duration::seconds(20));

  const auto& stats = monitor.stats_for(target);
  EXPECT_TRUE(stats.detected());
  EXPECT_LT(stats.detection_latency.to_seconds(), 5.0);
  EXPECT_GT(stats.tracked_fraction(), 0.5);
  // Boundary flapping may fork short-lived labels; established identity
  // must stay essentially unique.
  EXPECT_LE(stats.distinct_labels, 2u);
}

TEST(NoisySensing, DetectionLatencyIsMeasured) {
  NoisyWorld world(0.0, 9);
  metrics::CoherenceMonitor monitor(*world.system, Duration::millis(100));
  world.sim->run_for(Duration::seconds(5));
  // Appears mid-run: latency measured from appearance, not run start.
  env::Target late;
  late.type = "blob";
  late.trajectory =
      std::make_unique<env::StationaryTrajectory>(Vec2{4.5, 1.0});
  late.radius = env::RadiusProfile::constant(1.35);
  late.emissions["magnetic"] = 10.0;
  late.appears = world.sim->now();
  const TargetId target = world.env->add_target(std::move(late));
  world.sim->run_for(Duration::seconds(10));

  const auto& stats = monitor.stats_for(target);
  ASSERT_TRUE(stats.detected());
  EXPECT_GT(stats.detection_latency.to_seconds(), 0.0);
  EXPECT_LT(stats.detection_latency.to_seconds(), 4.0);
}

}  // namespace
}  // namespace et::test
