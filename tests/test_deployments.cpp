#include <gtest/gtest.h>

#include "metrics/coherence.hpp"
#include "scenario/tank.hpp"

/// Deployment-variation integration tests: the paper's premise is ad hoc
/// fields "dropped randomly over an area" — the middleware must not depend
/// on lattice geometry. These build systems directly on perturbed and
/// uniform-random fields.
namespace et::test {
namespace {

struct AdHocWorld {
  AdHocWorld(env::Field f, std::uint64_t seed)
      : sim(seed), env_(sim.make_rng("env")), field(std::move(f)) {
    core::SystemConfig config;
    config.radio.loss_probability = 0.05;
    system.emplace(sim, env_, field, config);
    system->senses().add("blob_sensor", core::sense_target("blob"));
    core::ContextTypeSpec spec;
    spec.name = "blob";
    spec.activation = "blob_sensor";
    spec.variables.push_back(core::AggregateVarSpec{
        "where", "avg", "position", Duration::seconds(1), 2});
    system->add_context_type(std::move(spec));
    system->start();
    monitor.emplace(*system, Duration::millis(100));
  }

  TargetId cross_with_target(Vec2 from, Vec2 to, double speed) {
    env::Target blob;
    blob.type = "blob";
    blob.trajectory = std::make_unique<env::LinearTrajectory>(from, to, speed);
    blob.radius = env::RadiusProfile::constant(1.3);
    blob.emissions["magnetic"] = 10.0;
    return env_.add_target(std::move(blob));
  }

  sim::Simulator sim;
  env::Environment env_;
  env::Field field;
  std::optional<core::EnviroTrackSystem> system;
  std::optional<metrics::CoherenceMonitor> monitor;
};

TEST(Deployments, PerturbedGridTracksCoherently) {
  sim::Simulator seed_source(555);
  AdHocWorld world(
      env::Field::perturbed_grid(4, 12, 0.35, seed_source.make_rng("f")),
      555);
  const TargetId target =
      world.cross_with_target({-1.0, 1.5}, {12.0, 1.5}, 0.25);
  world.sim.run_for(Duration::seconds(60));

  const auto& stats = world.monitor->stats_for(target);
  EXPECT_TRUE(stats.coherent()) << stats.distinct_labels << " labels";
  EXPECT_GT(stats.tracked_fraction(), 0.6);
}

TEST(Deployments, UniformRandomFieldTracks) {
  // 80 motes dropped uniformly over a 12 x 4 area — density ~1.7 motes per
  // sensing disc, comparable to the grid case.
  sim::Simulator seed_source(777);
  AdHocWorld world(env::Field::uniform_random(
                       80, Rect{{0, 0}, {12, 4}}, seed_source.make_rng("f")),
                   777);
  const TargetId target =
      world.cross_with_target({-1.0, 2.0}, {13.0, 2.0}, 0.2);
  world.sim.run_for(Duration::seconds(80));

  const auto& stats = world.monitor->stats_for(target);
  // Random fields can have sparse patches: allow brief gaps but demand
  // mostly-coherent tracking.
  EXPECT_LE(stats.distinct_labels, 2u);
  EXPECT_GT(stats.tracked_fraction(), 0.5);
}

TEST(Deployments, SparseFieldLosesTargetGracefully) {
  // 15 motes over the same area: coverage holes guaranteed. The system
  // must degrade (gaps, possibly several labels) without crashing or
  // deadlocking.
  sim::Simulator seed_source(999);
  AdHocWorld world(env::Field::uniform_random(
                       15, Rect{{0, 0}, {12, 4}}, seed_source.make_rng("f")),
                   999);
  const TargetId target =
      world.cross_with_target({-1.0, 2.0}, {13.0, 2.0}, 0.3);
  world.sim.run_for(Duration::seconds(60));
  const auto& stats = world.monitor->stats_for(target);
  EXPECT_GT(stats.total_samples, 0u);
  // No assertion on coherence — only liveness and sane accounting.
  EXPECT_LE(stats.tracked_samples, stats.total_samples);
}

TEST(Deployments, DenseFieldMeetsHighCriticalMass) {
  // Double-density grid: N_e = 6 becomes satisfiable.
  sim::Simulator seed_source(42);
  env::Field field = env::Field::perturbed_grid(8, 16, 0.1,
                                                seed_source.make_rng("f"));
  // Positions are on a half-unit effective spacing via 8 rows over y 0..7;
  // just verify the aggregate pipeline under many reporters.
  sim::Simulator sim(42);
  env::Environment environment(sim.make_rng("env"));
  core::SystemConfig config;
  core::EnviroTrackSystem system(sim, environment, field, config);
  system.senses().add("blob_sensor", core::sense_target("blob"));
  core::ContextTypeSpec spec;
  spec.name = "blob";
  spec.activation = "blob_sensor";
  spec.variables.push_back(core::AggregateVarSpec{
      "where", "avg", "position", Duration::seconds(1.5), 6});
  system.add_context_type(std::move(spec));
  system.start();

  env::Target blob;
  blob.type = "blob";
  blob.trajectory =
      std::make_unique<env::StationaryTrajectory>(Vec2{7.5, 3.5});
  blob.radius = env::RadiusProfile::constant(1.8);
  environment.add_target(std::move(blob));
  sim.run_for(Duration::seconds(8));

  bool read_ok = false;
  for (std::size_t i = 0; i < system.node_count(); ++i) {
    if (auto* agg = system.stack(NodeId{i}).groups().aggregates(0)) {
      read_ok |= agg->read("where", sim.now()).has_value();
    }
  }
  EXPECT_TRUE(read_ok) << "N_e = 6 must be met in a dense field";
}

}  // namespace
}  // namespace et::test
