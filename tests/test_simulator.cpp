#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace et::sim {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(Time::seconds(2), [&] { fired.push_back(2); });
  q.schedule(Time::seconds(1), [&] { fired.push_back(1); });
  q.schedule(Time::seconds(3), [&] { fired.push_back(3); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsFireFifo) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.schedule(Time::seconds(1), [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[i], i);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  EventHandle h = q.schedule(Time::seconds(1), [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelAfterFireIsNoop) {
  EventQueue q;
  EventHandle h = q.schedule(Time::seconds(1), [] {});
  q.pop().fn();
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not crash or corrupt
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  EventHandle a = q.schedule(Time::seconds(1), [] {});
  q.schedule(Time::seconds(2), [] {});
  EXPECT_EQ(q.size(), 2u);
  a.cancel();
  EXPECT_FALSE(q.empty());
  q.pop();
  EXPECT_TRUE(q.empty());
}

TEST(Simulator, AdvancesTimeToEvents) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule(Duration::seconds(1), [&] {
    times.push_back(sim.now().to_seconds());
  });
  sim.schedule(Duration::seconds(2.5), [&] {
    times.push_back(sim.now().to_seconds());
  });
  sim.run_until(Time::seconds(10));
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.5}));
  EXPECT_EQ(sim.now(), Time::seconds(10));  // clock advances to deadline
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule(Duration::seconds(1), recurse);
  };
  sim.schedule(Duration::seconds(1), recurse);
  sim.run_until(Time::seconds(100));
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.events_fired(), 5u);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule_periodic(Duration::seconds(1), Duration::seconds(1),
                        [&] { ++fired; });
  sim.run_until(Time::seconds(5));
  EXPECT_EQ(fired, 5);  // t = 1, 2, 3, 4, 5 (deadline inclusive)
  sim.run_for(Duration::seconds(3));
  EXPECT_EQ(fired, 8);
}

TEST(Simulator, PeriodicCancelStopsChain) {
  Simulator sim;
  int fired = 0;
  EventHandle h = sim.schedule_periodic(Duration::seconds(1),
                                        Duration::seconds(1), [&] { ++fired; });
  sim.run_until(Time::seconds(3));
  EXPECT_EQ(fired, 3);
  h.cancel();
  sim.run_until(Time::seconds(10));
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, PeriodicCancelFromWithinCallback) {
  Simulator sim;
  int fired = 0;
  EventHandle h;
  h = sim.schedule_periodic(Duration::seconds(1), Duration::seconds(1), [&] {
    if (++fired == 2) h.cancel();
  });
  sim.run_until(Time::seconds(10));
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunAllDrainsFiniteSchedules) {
  Simulator sim;
  int fired = 0;
  for (int i = 1; i <= 7; ++i) {
    sim.schedule(Duration::seconds(i), [&] { ++fired; });
  }
  EXPECT_EQ(sim.run_all(), 7u);
  EXPECT_EQ(fired, 7);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, MakeRngIsDeterministic) {
  Simulator a(99);
  Simulator b(99);
  Rng ra = a.make_rng("x");
  Rng rb = b.make_rng("x");
  for (int i = 0; i < 10; ++i) EXPECT_EQ(ra.next_u64(), rb.next_u64());
}

TEST(Simulator, ScheduleAtAbsoluteTime) {
  Simulator sim;
  double fired_at = -1;
  sim.schedule_at(Time::seconds(4),
                  [&] { fired_at = sim.now().to_seconds(); });
  sim.run_until(Time::seconds(10));
  EXPECT_DOUBLE_EQ(fired_at, 4.0);
}

}  // namespace
}  // namespace et::sim
