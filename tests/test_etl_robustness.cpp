#include <gtest/gtest.h>

#include "etl/compiler.hpp"
#include "etl/parser.hpp"
#include "util/rng.hpp"

/// Robustness fuzzing of the language pipeline: random garbage and
/// randomly truncated/mutated valid programs must produce diagnostics —
/// never crashes, hangs, or accepted-nonsense.
namespace et::etl {
namespace {

constexpr const char* kValid = R"(
begin context tracker
  activation: magnetic_sensor_reading();
  location : avg(position) confidence=2, freshness=1s;
  begin object reporter
    invocation: TIMER(5s)
    report() { send(pursuer, self.label, location); }
    invocation: when (location > 1)
    jump() { if (location > 2) { log("far", location); } }
  end
end context
)";

class TruncationSweep : public ::testing::TestWithParam<int> {};

TEST_P(TruncationSweep, TruncatedProgramsNeverCrash) {
  const std::string source = kValid;
  const std::size_t cut =
      source.size() * static_cast<std::size_t>(GetParam()) / 16;
  const auto result = parse(source.substr(0, cut));
  if (result.ok()) {
    // Only full prefixes that happen to be complete programs may parse.
    EXPECT_FALSE(result.value().contexts.empty());
  } else {
    EXPECT_FALSE(result.error().message.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Cuts, TruncationSweep, ::testing::Range(0, 16));

TEST(EtlRobustness, RandomBytesAreRejectedGracefully) {
  Rng rng(20240707);
  const char alphabet[] =
      "abcdefghijklmnopqrstuvwxyz0123456789(){}:;,.=<>+-*/\"\n \t";
  for (int round = 0; round < 200; ++round) {
    std::string garbage;
    const std::size_t length = 1 + rng.next_below(120);
    for (std::size_t i = 0; i < length; ++i) {
      garbage.push_back(
          alphabet[rng.next_below(sizeof(alphabet) - 1)]);
    }
    const auto result = parse(garbage);
    if (!result.ok()) {
      EXPECT_FALSE(result.error().message.empty());
    }
  }
}

TEST(EtlRobustness, TokenDeletionMutants) {
  // Delete each single character class occurrence; parser must diagnose.
  const std::string source = kValid;
  Rng rng(7);
  for (int round = 0; round < 100; ++round) {
    std::string mutant = source;
    const std::size_t at = rng.next_below(mutant.size());
    mutant.erase(at, 1 + rng.next_below(3));
    (void)parse(mutant);  // must not crash; outcome may be either
  }
  SUCCEED();
}

TEST(EtlRobustness, DeeplyNestedExpressionsParse) {
  std::string expr = "1";
  for (int i = 0; i < 200; ++i) expr = "(" + expr + " + 1)";
  const auto result = parse_expression(expr);
  ASSERT_TRUE(result.ok());
}

TEST(EtlRobustness, DeeplyNestedIfStatements) {
  std::string body = "log(\"x\");";
  for (int i = 0; i < 100; ++i) {
    body = "if (true) { " + body + " }";
  }
  const std::string program =
      "begin context c\n activation: s();\n begin object o\n"
      " invocation: TIMER(1s)\n m() { " +
      body + " }\n end\nend context";
  core::SenseRegistry senses;
  senses.add("s", [](const node::Mote&) { return false; });
  const auto registry = core::AggregationRegistry::with_builtins();
  const auto result = compile_source(program, senses, registry, {});
  EXPECT_TRUE(result.ok());
}

TEST(EtlRobustness, HugeProgramCompiles) {
  std::string program;
  for (int i = 0; i < 60; ++i) {
    program += "begin context ctx" + std::to_string(i) +
               "\n activation: s();\n v : avg(magnetic) confidence=1, "
               "freshness=1s;\nend context\n";
  }
  core::SenseRegistry senses;
  senses.add("s", [](const node::Mote&) { return false; });
  const auto registry = core::AggregationRegistry::with_builtins();
  const auto result = compile_source(program, senses, registry, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 60u);
}

}  // namespace
}  // namespace et::etl
