#include "core/aggregation.hpp"

#include <gtest/gtest.h>

namespace et::core {
namespace {

std::vector<Sample> make_samples(std::initializer_list<double> scalars) {
  std::vector<Sample> samples;
  std::size_t i = 0;
  for (double v : scalars) {
    samples.push_back(Sample{NodeId{i}, Time::origin(), v,
                             Vec2{static_cast<double>(i), 0.0}});
    ++i;
  }
  return samples;
}

class AggregationTest : public ::testing::Test {
 protected:
  AggregationRegistry registry = AggregationRegistry::with_builtins();
};

TEST_F(AggregationTest, BuiltinsRegistered) {
  for (const char* name :
       {"avg", "sum", "min", "max", "count", "centroid", "stddev",
        "median", "spread", "nearest"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
  }
  EXPECT_FALSE(registry.contains("mode"));
}

TEST_F(AggregationTest, AvgScalar) {
  const auto samples = make_samples({1.0, 2.0, 6.0});
  const auto value = registry.get("avg")(samples, false);
  EXPECT_EQ(value.kind, AggregateValue::Kind::kScalar);
  EXPECT_DOUBLE_EQ(value.scalar, 3.0);
}

TEST_F(AggregationTest, AvgPosition) {
  std::vector<Sample> samples{
      Sample{NodeId{0}, Time::origin(), 0.0, {0.0, 0.0}},
      Sample{NodeId{1}, Time::origin(), 0.0, {2.0, 4.0}},
  };
  const auto value = registry.get("avg")(samples, true);
  EXPECT_EQ(value.kind, AggregateValue::Kind::kVector);
  EXPECT_EQ(value.vector, (Vec2{1.0, 2.0}));
}

TEST_F(AggregationTest, SumScalarAndPosition) {
  const auto samples = make_samples({1.5, 2.5});
  EXPECT_DOUBLE_EQ(registry.get("sum")(samples, false).scalar, 4.0);
  const auto vec = registry.get("sum")(samples, true);
  EXPECT_EQ(vec.vector, (Vec2{1.0, 0.0}));  // positions (0,0) + (1,0)
}

TEST_F(AggregationTest, MinMax) {
  const auto samples = make_samples({3.0, -1.0, 7.0});
  EXPECT_DOUBLE_EQ(registry.get("min")(samples, false).scalar, -1.0);
  EXPECT_DOUBLE_EQ(registry.get("max")(samples, false).scalar, 7.0);
}

TEST_F(AggregationTest, Count) {
  const auto samples = make_samples({9.0, 9.0, 9.0, 9.0});
  EXPECT_DOUBLE_EQ(registry.get("count")(samples, false).scalar, 4.0);
}

TEST_F(AggregationTest, CentroidWeighsBySignal) {
  std::vector<Sample> samples{
      Sample{NodeId{0}, Time::origin(), 3.0, {0.0, 0.0}},
      Sample{NodeId{1}, Time::origin(), 1.0, {4.0, 0.0}},
  };
  const auto value = registry.get("centroid")(samples, false);
  EXPECT_EQ(value.kind, AggregateValue::Kind::kVector);
  EXPECT_DOUBLE_EQ(value.vector.x, 1.0);  // (3*0 + 1*4) / 4
  EXPECT_DOUBLE_EQ(value.vector.y, 0.0);
}

TEST_F(AggregationTest, CentroidFallsBackWhenWeightless) {
  std::vector<Sample> samples{
      Sample{NodeId{0}, Time::origin(), 0.0, {0.0, 0.0}},
      Sample{NodeId{1}, Time::origin(), 0.0, {4.0, 2.0}},
  };
  const auto value = registry.get("centroid")(samples, false);
  EXPECT_EQ(value.vector, (Vec2{2.0, 1.0}));  // unweighted centroid
}

TEST_F(AggregationTest, CustomAggregation) {
  registry.add("range", [](std::span<const Sample> samples, bool) {
    double lo = samples.front().scalar;
    double hi = lo;
    for (const Sample& s : samples) {
      lo = std::min(lo, s.scalar);
      hi = std::max(hi, s.scalar);
    }
    return AggregateValue::of(hi - lo);
  });
  const auto samples = make_samples({2.0, 9.0, 5.0});
  EXPECT_DOUBLE_EQ(registry.get("range")(samples, false).scalar, 7.0);
}

TEST_F(AggregationTest, Stddev) {
  const auto samples = make_samples({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(registry.get("stddev")(samples, false).scalar, 2.0);
  const auto constant = make_samples({3.0, 3.0, 3.0});
  EXPECT_DOUBLE_EQ(registry.get("stddev")(constant, false).scalar, 0.0);
}

TEST_F(AggregationTest, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(
      registry.get("median")(make_samples({9.0, 1.0, 5.0}), false).scalar,
      5.0);
  EXPECT_DOUBLE_EQ(
      registry.get("median")(make_samples({1.0, 9.0, 3.0, 5.0}), false)
          .scalar,
      4.0);
  // Robust to one wild outlier.
  EXPECT_DOUBLE_EQ(
      registry.get("median")(make_samples({4.0, 5.0, 1000.0}), false)
          .scalar,
      5.0);
}

TEST_F(AggregationTest, SpreadIsReporterDiameter) {
  // Reporters sit at x = 0, 1, 2 (make_samples places them on a line).
  const auto samples = make_samples({1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(registry.get("spread")(samples, false).scalar, 2.0);
  const auto single = make_samples({1.0});
  EXPECT_DOUBLE_EQ(registry.get("spread")(single, false).scalar, 0.0);
}

TEST_F(AggregationTest, NearestPicksStrongestReporter) {
  // Reporter i sits at (i, 0); strongest is reporter 1.
  const auto samples = make_samples({1.0, 8.0, 3.0});
  const auto value = registry.get("nearest")(samples, false);
  EXPECT_EQ(value.kind, AggregateValue::Kind::kVector);
  EXPECT_EQ(value.vector, (Vec2{1.0, 0.0}));
}

TEST_F(AggregationTest, ValueToString) {
  EXPECT_EQ(AggregateValue::of(2.5).to_string(), "2.5000");
  EXPECT_EQ(AggregateValue::of(Vec2{1, 2}).to_string(), "(1.000, 2.000)");
}

}  // namespace
}  // namespace et::core
