#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "env/environment.hpp"
#include "env/field.hpp"
#include "net/geo_routing.hpp"
#include "node/network.hpp"
#include "radio/medium.hpp"
#include "sim/simulator.hpp"

/// Baseline: direct centralized reporting (no EnviroTrack).
///
/// The conventional architecture EnviroTrack's in-network aggregation is
/// implicitly compared against: every mote that senses a target streams
/// its raw readings straight to a base station, which performs all
/// aggregation and track formation centrally. There are no groups, no
/// leaders, no labels — and therefore no coherent entity identity in the
/// network: the base station must cluster reports spatially to guess which
/// detections belong to which target. The benches compare this baseline's
/// traffic, energy, and track quality against the middleware's.
namespace et::baseline {

struct DirectReportingConfig {
  /// Period at which every sensing mote reports to the base station
  /// (matched to EnviroTrack's member-report period for fairness).
  Duration report_period = Duration::millis(700);
  /// The mote acting as base station.
  NodeId base_station{0};
  /// How often motes evaluate their sense predicate.
  Duration sense_poll_period = Duration::millis(250);
  /// Spatial clustering distance for central track formation: reports
  /// within this distance of a track's last position extend that track.
  double association_radius = 2.0;
  /// Tracks without reports for this long are closed.
  Duration track_timeout = Duration::seconds(3);
};

/// One sensing report: the mote's position and signal reading.
class DirectReportPayload final : public radio::Payload {
 public:
  DirectReportPayload(NodeId reporter, Vec2 position, double signal,
                      Time measured_at)
      : reporter(reporter),
        position(position),
        signal(signal),
        measured_at(measured_at) {}

  std::size_t size_bytes() const override { return 22; }

  NodeId reporter;
  Vec2 position;
  double signal;
  Time measured_at;
};

/// A centrally-formed track.
struct CentralTrack {
  std::uint64_t id = 0;
  std::vector<std::pair<Time, Vec2>> positions;  // estimated path
  Time last_update;
  bool open = true;
};

/// The whole baseline system: per-mote reporters + the central tracker.
class DirectReportingSystem {
 public:
  DirectReportingSystem(sim::Simulator& sim, env::Environment& env,
                        const env::Field& field, std::string target_type,
                        radio::RadioConfig radio_config = {},
                        DirectReportingConfig config = {});

  DirectReportingSystem(const DirectReportingSystem&) = delete;
  DirectReportingSystem& operator=(const DirectReportingSystem&) = delete;

  /// Tracks formed so far (open and closed).
  const std::vector<CentralTrack>& tracks() const { return tracks_; }
  std::size_t open_track_count() const;

  /// Reports received at the base station.
  std::uint64_t reports_received() const { return reports_received_; }

  radio::Medium& medium() { return medium_; }
  node::MoteNetwork& network() { return network_; }
  sim::Simulator& sim() { return sim_; }

  /// Estimated position of the track nearest `truth` at its last update,
  /// or nullopt if no track is open.
  std::optional<Vec2> nearest_track_estimate(Vec2 truth) const;

 private:
  void poll(NodeId id);
  void on_report(const DirectReportPayload& report);
  void associate(Vec2 estimate, Time now);

  /// Per-report instantaneous estimate: cluster fresh reports around the
  /// new one and average their positions (what the leader did in-network).
  Vec2 cluster_estimate(const DirectReportPayload& report);

  sim::Simulator& sim_;
  env::Environment& env_;
  std::string target_type_;
  DirectReportingConfig config_;
  radio::Medium medium_;
  node::MoteNetwork network_;
  std::vector<std::unique_ptr<net::GeoRouting>> routers_;
  std::vector<bool> reporting_;  // per mote: report timer armed
  std::vector<sim::EventHandle> report_timers_;

  /// Recent raw reports at the base station (for clustering).
  std::vector<DirectReportPayload> recent_;
  std::vector<CentralTrack> tracks_;
  std::uint64_t next_track_id_ = 1;
  std::uint64_t reports_received_ = 0;
};

}  // namespace et::baseline
