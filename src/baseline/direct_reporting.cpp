#include "baseline/direct_reporting.hpp"

#include <algorithm>
#include <limits>

namespace et::baseline {

DirectReportingSystem::DirectReportingSystem(sim::Simulator& sim,
                                             env::Environment& env,
                                             const env::Field& field,
                                             std::string target_type,
                                             radio::RadioConfig radio_config,
                                             DirectReportingConfig config)
    : sim_(sim),
      env_(env),
      target_type_(std::move(target_type)),
      config_(config),
      medium_(sim, radio_config),
      network_(sim, medium_, env, field),
      reporting_(field.size(), false),
      report_timers_(field.size()) {
  routers_.reserve(field.size());
  for (std::size_t i = 0; i < field.size(); ++i) {
    routers_.push_back(
        std::make_unique<net::GeoRouting>(network_.mote(NodeId{i})));
  }
  // The base station consumes kUser envelopes carrying raw reports.
  routers_[config_.base_station.value()]->on_delivery(
      radio::MsgType::kUser, [this](const net::RouteEnvelope& envelope) {
        on_report(*static_cast<const DirectReportPayload*>(
            envelope.inner.get()));
      });

  // Housekeeping at the base station: close tracks that stopped receiving
  // reports even when no new report triggers the association pass.
  sim_.schedule_periodic(
      Duration::seconds(1), Duration::seconds(1), [this] {
        const Time now = sim_.now();
        for (CentralTrack& track : tracks_) {
          if (track.open && now - track.last_update > config_.track_timeout) {
            track.open = false;
          }
        }
      });

  // Sense polling on every mote, phase-staggered.
  for (std::size_t i = 0; i < field.size(); ++i) {
    const NodeId id{i};
    auto& mote = network_.mote(id);
    const Duration phase =
        config_.sense_poll_period * mote.rng().next_double();
    mote.every(config_.sense_poll_period + phase, config_.sense_poll_period,
               [this, id] { poll(id); });
  }
}

void DirectReportingSystem::poll(NodeId id) {
  auto& mote = network_.mote(id);
  const bool senses = mote.senses(target_type_);
  const std::size_t i = id.value();
  if (senses && !reporting_[i]) {
    reporting_[i] = true;
    report_timers_[i] = mote.every(
        Duration::zero() + config_.report_period * 0.1,
        config_.report_period, [this, id] {
          auto& m = network_.mote(id);
          if (!m.senses(target_type_)) return;
          auto payload = std::make_shared<DirectReportPayload>(
              id, m.position(), m.read_sensor("magnetic"), m.now());
          routers_[id.value()]->send(
              medium_.position_of(config_.base_station),
              radio::MsgType::kUser, std::move(payload),
              config_.base_station);
        });
  } else if (!senses && reporting_[i]) {
    reporting_[i] = false;
    report_timers_[i].cancel();
  }
}

Vec2 DirectReportingSystem::cluster_estimate(
    const DirectReportPayload& report) {
  // Average the fresh reports spatially near the new one (the same
  // computation EnviroTrack's leader does in-network, performed centrally
  // on raw data).
  const Time horizon = sim_.now() - Duration::seconds(1);
  Vec2 sum{};
  int count = 0;
  std::map<std::uint64_t, Vec2> newest;  // newest position per reporter
  for (const auto& r : recent_) {
    if (r.measured_at < horizon) continue;
    if (distance(r.position, report.position) >
        config_.association_radius) {
      continue;
    }
    newest[r.reporter.value()] = r.position;
  }
  newest[report.reporter.value()] = report.position;
  for (const auto& [reporter, pos] : newest) {
    sum += pos;
    ++count;
  }
  return sum / static_cast<double>(count);
}

void DirectReportingSystem::on_report(const DirectReportPayload& report) {
  ++reports_received_;
  // Prune stale raw reports.
  const Time horizon = sim_.now() - Duration::seconds(2);
  std::erase_if(recent_, [horizon](const DirectReportPayload& r) {
    return r.measured_at < horizon;
  });
  recent_.push_back(report);
  associate(cluster_estimate(report), sim_.now());
}

void DirectReportingSystem::associate(Vec2 estimate, Time now) {
  // Close timed-out tracks first.
  for (CentralTrack& track : tracks_) {
    if (track.open && now - track.last_update > config_.track_timeout) {
      track.open = false;
    }
  }
  // Extend the nearest open track, else open a new one.
  CentralTrack* best = nullptr;
  double best_d = config_.association_radius;
  for (CentralTrack& track : tracks_) {
    if (!track.open) continue;
    const double d = distance(track.positions.back().second, estimate);
    if (d <= best_d) {
      best_d = d;
      best = &track;
    }
  }
  if (!best) {
    tracks_.push_back(CentralTrack{next_track_id_++, {}, now, true});
    best = &tracks_.back();
  }
  best->positions.emplace_back(now, estimate);
  best->last_update = now;
}

std::size_t DirectReportingSystem::open_track_count() const {
  std::size_t open = 0;
  for (const CentralTrack& track : tracks_) {
    if (track.open) ++open;
  }
  return open;
}

std::optional<Vec2> DirectReportingSystem::nearest_track_estimate(
    Vec2 truth) const {
  std::optional<Vec2> best;
  double best_d = std::numeric_limits<double>::max();
  for (const CentralTrack& track : tracks_) {
    if (!track.open || track.positions.empty()) continue;
    const Vec2 last = track.positions.back().second;
    const double d = distance(last, truth);
    if (d < best_d) {
      best_d = d;
      best = last;
    }
  }
  return best;
}

}  // namespace et::baseline
