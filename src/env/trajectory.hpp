#pragma once

#include <memory>
#include <vector>

#include "util/geometry.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

/// Motion models for physical targets.
///
/// A trajectory maps simulated time to a position in field coordinates
/// (grid units). Speeds are given in grid units (hops) per second — the unit
/// the paper's §6.2 stress tests use ("maximum trackable speed is 1-3
/// hops/s").
namespace et::env {

class Trajectory {
 public:
  virtual ~Trajectory() = default;

  /// Position at time `t`. Must be defined for all t >= 0; trajectories
  /// clamp at their endpoint rather than extrapolate.
  virtual Vec2 position_at(Time t) const = 0;

  /// True once the motion has reached its terminal point (always false for
  /// unbounded motions). Used by scenarios to decide when a traverse ends.
  virtual bool finished(Time t) const = 0;

  /// Materialises any lazily generated state needed to answer position_at
  /// for every time <= `t`. The parallel kernel calls this while still
  /// single-threaded (before each tile window), so position_at stays a pure
  /// read afterwards. Default: nothing to prepare.
  virtual void prepare(Time /*t*/) const {}
};

/// Stands still at a fixed point (e.g. a fire's seat).
class StationaryTrajectory final : public Trajectory {
 public:
  explicit StationaryTrajectory(Vec2 point) : point_(point) {}
  Vec2 position_at(Time) const override { return point_; }
  bool finished(Time) const override { return false; }

 private:
  Vec2 point_;
};

/// Straight line from `from` to `to` at constant `speed` (grid units per
/// second), then stops at `to`.
class LinearTrajectory final : public Trajectory {
 public:
  LinearTrajectory(Vec2 from, Vec2 to, double speed);

  Vec2 position_at(Time t) const override;
  bool finished(Time t) const override { return t >= arrival_; }

  /// Time at which the endpoint is reached.
  Time arrival_time() const { return arrival_; }
  double speed() const { return speed_; }

 private:
  Vec2 from_;
  Vec2 to_;
  double speed_;
  Time arrival_;
};

/// Piecewise-linear motion through an ordered list of waypoints at constant
/// speed, stopping at the last.
class WaypointTrajectory final : public Trajectory {
 public:
  /// `waypoints` must contain at least one point; `speed` > 0.
  WaypointTrajectory(std::vector<Vec2> waypoints, double speed);

  Vec2 position_at(Time t) const override;
  bool finished(Time t) const override { return t >= arrival_; }
  Time arrival_time() const { return arrival_; }

 private:
  std::vector<Vec2> waypoints_;
  std::vector<Time> arrivals_;  // arrival time at each waypoint
  double speed_;
  Time arrival_;
};

/// Constant-speed circular motion around a center (unbounded).
class CircularTrajectory final : public Trajectory {
 public:
  CircularTrajectory(Vec2 center, double radius, double speed,
                     double start_angle_rad = 0.0);

  Vec2 position_at(Time t) const override;
  bool finished(Time) const override { return false; }

 private:
  Vec2 center_;
  double radius_;
  double angular_speed_;  // rad/s
  double start_angle_;
};

/// Random walk inside a bounding rectangle: picks a uniformly random
/// waypoint, moves to it at constant speed, repeats. Segments are generated
/// lazily but deterministically from the supplied RNG stream.
class RandomWalkTrajectory final : public Trajectory {
 public:
  RandomWalkTrajectory(Rect bounds, Vec2 start, double speed, Rng rng);

  Vec2 position_at(Time t) const override;
  bool finished(Time) const override { return false; }
  /// Segment generation is append-only and consumes only this trajectory's
  /// private RNG, so preparing up front yields the same walk as extending
  /// lazily from position_at.
  void prepare(Time t) const override { extend_to(t); }

 private:
  /// Extends the precomputed segment list to cover time `t`.
  void extend_to(Time t) const;

  Rect bounds_;
  double speed_;
  mutable Rng rng_;
  mutable std::vector<Vec2> points_;   // visited waypoints
  mutable std::vector<Time> arrivals_; // arrival times at points_
};

}  // namespace et::env
