#pragma once

#include <map>
#include <memory>
#include <string>

#include "env/trajectory.hpp"
#include "util/ids.hpp"

/// Physical entities tracked by the sensor network.
///
/// A target carries a *type* (matched against context-type activation
/// conditions: "car", "fire", ...), a motion model, and a sensory signature:
/// the radius within which motes sense it (the paper's detection radius —
/// 100 m ≈ 0.7 hop for the T-72 tank) plus per-channel emission strengths
/// used by scalar sensors (magnetometer, thermometer, ...).
namespace et::env {

/// How a target's detection radius evolves. Constant for vehicles; growing
/// for spreading phenomena such as fires.
class RadiusProfile {
 public:
  /// Fixed radius.
  static RadiusProfile constant(double radius) {
    return RadiusProfile{radius, 0.0, radius};
  }
  /// Radius growing linearly at `rate` grid-units/s from `initial`,
  /// saturating at `cap`.
  static RadiusProfile growing(double initial, double rate, double cap) {
    return RadiusProfile{initial, rate, cap};
  }

  double at(Time t) const {
    const double r = initial_ + rate_ * t.to_seconds();
    return r > cap_ ? cap_ : r;
  }

 private:
  RadiusProfile(double initial, double rate, double cap)
      : initial_(initial), rate_(rate), cap_(cap) {}
  double initial_;
  double rate_;
  double cap_;
};

struct Target {
  TargetId id;
  std::string type;
  std::unique_ptr<Trajectory> trajectory;
  RadiusProfile radius = RadiusProfile::constant(1.0);

  /// Emission strength per scalar sensor channel, at distance 1 grid unit.
  /// E.g. {"magnetic", 40.0} for a tank with 40× the ferrous mass of an
  /// average vehicle.
  std::map<std::string, double> emissions;

  /// Targets exist during [appears, disappears). `disappears` of Time::max()
  /// means the target never leaves the scenario.
  Time appears = Time::origin();
  Time disappears = Time::max();

  bool active_at(Time t) const { return t >= appears && t < disappears; }

  /// Trajectory and radius profiles run on the target's *local* clock,
  /// which starts when it appears: a vehicle entering at t = 60 s starts
  /// its path then, and a fire ignited at t = 40 s starts growing then.
  Time local_time(Time t) const {
    return t >= appears ? Time::origin() + (t - appears) : Time::origin();
  }
  Vec2 position_at(Time t) const {
    return trajectory->position_at(local_time(t));
  }
  double radius_at(Time t) const { return radius.at(local_time(t)); }

  /// True when a mote at `pos` senses this target at time `t` (binary-disc
  /// detection model).
  bool sensed_from(Vec2 pos, Time t) const {
    return active_at(t) && within_radius(position_at(t), pos, radius_at(t));
  }
};

}  // namespace et::env
