#include "env/field.hpp"

#include <cassert>
#include <limits>

namespace et::env {

Field::Field(std::vector<Vec2> positions) : positions_(std::move(positions)) {
  assert(!positions_.empty());
  Vec2 lo{std::numeric_limits<double>::max(),
          std::numeric_limits<double>::max()};
  Vec2 hi{std::numeric_limits<double>::lowest(),
          std::numeric_limits<double>::lowest()};
  for (const Vec2& p : positions_) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
  }
  bounds_ = Rect{lo, hi};
}

Field Field::grid(std::size_t rows, std::size_t cols) {
  assert(rows > 0 && cols > 0);
  std::vector<Vec2> positions;
  positions.reserve(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      positions.push_back(
          Vec2{static_cast<double>(c), static_cast<double>(r)});
    }
  }
  return Field(std::move(positions));
}

Field Field::perturbed_grid(std::size_t rows, std::size_t cols, double jitter,
                            Rng rng) {
  assert(rows > 0 && cols > 0);
  assert(jitter >= 0.0);
  std::vector<Vec2> positions;
  positions.reserve(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      positions.push_back(Vec2{
          static_cast<double>(c) + rng.uniform(-jitter, jitter),
          static_cast<double>(r) + rng.uniform(-jitter, jitter)});
    }
  }
  return Field(std::move(positions));
}

Field Field::uniform_random(std::size_t count, Rect bounds, Rng rng) {
  assert(count > 0);
  std::vector<Vec2> positions;
  positions.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    positions.push_back(Vec2{rng.uniform(bounds.min.x, bounds.max.x),
                             rng.uniform(bounds.min.y, bounds.max.y)});
  }
  return Field(std::move(positions));
}

std::vector<NodeId> Field::nodes_within(Vec2 center, double radius) const {
  std::vector<NodeId> result;
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    if (within_radius(center, positions_[i], radius)) {
      result.push_back(NodeId{i});
    }
  }
  return result;
}

NodeId Field::nearest(Vec2 point) const {
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::max();
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    const double d = distance_sq(point, positions_[i]);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return NodeId{best};
}

}  // namespace et::env
