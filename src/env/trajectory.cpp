#include "env/trajectory.hpp"

#include <cassert>
#include <cmath>

namespace et::env {

LinearTrajectory::LinearTrajectory(Vec2 from, Vec2 to, double speed)
    : from_(from), to_(to), speed_(speed) {
  assert(speed > 0.0);
  arrival_ = Time::origin() + Duration::seconds(distance(from, to) / speed);
}

Vec2 LinearTrajectory::position_at(Time t) const {
  if (t >= arrival_) return to_;
  if (t <= Time::origin()) return from_;
  const double frac = (t - Time::origin()).to_seconds() /
                      (arrival_ - Time::origin()).to_seconds();
  return lerp(from_, to_, frac);
}

WaypointTrajectory::WaypointTrajectory(std::vector<Vec2> waypoints,
                                       double speed)
    : waypoints_(std::move(waypoints)), speed_(speed) {
  assert(!waypoints_.empty());
  assert(speed_ > 0.0);
  arrivals_.reserve(waypoints_.size());
  Time t = Time::origin();
  arrivals_.push_back(t);
  for (std::size_t i = 1; i < waypoints_.size(); ++i) {
    t += Duration::seconds(distance(waypoints_[i - 1], waypoints_[i]) /
                           speed_);
    arrivals_.push_back(t);
  }
  arrival_ = t;
}

Vec2 WaypointTrajectory::position_at(Time t) const {
  if (t <= arrivals_.front()) return waypoints_.front();
  if (t >= arrival_) return waypoints_.back();
  // Find the segment containing t (arrivals_ is sorted).
  std::size_t hi = 1;
  while (arrivals_[hi] < t) ++hi;
  const Time seg_start = arrivals_[hi - 1];
  const Time seg_end = arrivals_[hi];
  if (seg_end == seg_start) return waypoints_[hi];
  const double frac =
      (t - seg_start).to_seconds() / (seg_end - seg_start).to_seconds();
  return lerp(waypoints_[hi - 1], waypoints_[hi], frac);
}

CircularTrajectory::CircularTrajectory(Vec2 center, double radius,
                                       double speed, double start_angle_rad)
    : center_(center),
      radius_(radius),
      angular_speed_(radius > 0.0 ? speed / radius : 0.0),
      start_angle_(start_angle_rad) {
  assert(radius >= 0.0);
}

Vec2 CircularTrajectory::position_at(Time t) const {
  const double angle = start_angle_ + angular_speed_ * t.to_seconds();
  return {center_.x + radius_ * std::cos(angle),
          center_.y + radius_ * std::sin(angle)};
}

RandomWalkTrajectory::RandomWalkTrajectory(Rect bounds, Vec2 start,
                                           double speed, Rng rng)
    : bounds_(bounds), speed_(speed), rng_(rng) {
  assert(speed_ > 0.0);
  points_.push_back(bounds_.clamp(start));
  arrivals_.push_back(Time::origin());
}

void RandomWalkTrajectory::extend_to(Time t) const {
  while (arrivals_.back() < t) {
    const Vec2 next{rng_.uniform(bounds_.min.x, bounds_.max.x),
                    rng_.uniform(bounds_.min.y, bounds_.max.y)};
    const double dist = distance(points_.back(), next);
    // Skip degenerate hops that would stall the walk.
    if (dist < 1e-9) continue;
    arrivals_.push_back(arrivals_.back() + Duration::seconds(dist / speed_));
    points_.push_back(next);
  }
}

Vec2 RandomWalkTrajectory::position_at(Time t) const {
  if (t <= Time::origin()) return points_.front();
  extend_to(t);
  std::size_t hi = 1;
  while (arrivals_[hi] < t) ++hi;
  const Time seg_start = arrivals_[hi - 1];
  const Time seg_end = arrivals_[hi];
  const double frac =
      (t - seg_start).to_seconds() / (seg_end - seg_start).to_seconds();
  return lerp(points_[hi - 1], points_[hi], frac);
}

}  // namespace et::env
