#pragma once

#include <cstddef>
#include <vector>

#include "util/geometry.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"

/// Mote deployment geometry.
///
/// A `Field` is the static layout of the sensor deployment: how many motes,
/// where each sits, and the field bounds. The paper's case study (§6.1) uses
/// a rectangular grid with per-hop spacing of one grid unit (140 m at full
/// scale); ad hoc deployments are modelled by uniform-random or perturbed
/// placement.
namespace et::env {

class Field {
 public:
  /// Regular rows × cols grid with unit spacing; mote (r, c) sits at
  /// (c, r). This mirrors the testbed where "motes were put at integer
  /// (x, y) coordinates".
  static Field grid(std::size_t rows, std::size_t cols);

  /// Grid with each mote displaced by a uniform offset in
  /// [-jitter, +jitter] on each axis — a deployment dropped roughly on a
  /// grid.
  static Field perturbed_grid(std::size_t rows, std::size_t cols,
                              double jitter, Rng rng);

  /// `count` motes placed uniformly at random in `bounds` — the paper's
  /// "dropped randomly over an area" deployment.
  static Field uniform_random(std::size_t count, Rect bounds, Rng rng);

  std::size_t size() const { return positions_.size(); }
  Vec2 position(NodeId id) const { return positions_[id.value()]; }
  const std::vector<Vec2>& positions() const { return positions_; }
  Rect bounds() const { return bounds_; }

  /// All motes within `radius` of `center` (inclusive). O(n); fields in the
  /// paper's experiments are a few hundred motes.
  std::vector<NodeId> nodes_within(Vec2 center, double radius) const;

  /// The mote closest to `point` (ties broken by lowest id). Field must be
  /// non-empty.
  NodeId nearest(Vec2 point) const;

 private:
  explicit Field(std::vector<Vec2> positions);

  std::vector<Vec2> positions_;
  Rect bounds_;
};

}  // namespace et::env
