#include "env/environment.hpp"

#include <cassert>
#include <cmath>

namespace et::env {

Environment::Environment(Rng rng) : rng_(rng) {
  channels_["magnetic"] = ChannelModel{3.0, 0.1, 0.0, 0.0};
  channels_["light"] = ChannelModel{2.0, 0.1, 0.0, 0.0};
  channels_["temperature"] = ChannelModel{2.0, 0.1, 20.0, 0.0};
}

void Environment::set_channel(std::string name, ChannelModel model) {
  channels_[std::move(name)] = model;
}

TargetId Environment::add_target(Target target) {
  const TargetId id{targets_.size()};
  target.id = id;
  assert(target.trajectory != nullptr);
  targets_.push_back(std::make_unique<Target>(std::move(target)));
  return id;
}

void Environment::remove_target_at(TargetId id, Time t) {
  assert(id.value() < targets_.size());
  targets_[id.value()]->disappears = t;
}

const Target& Environment::target(TargetId id) const {
  assert(id.value() < targets_.size());
  return *targets_[id.value()];
}

void Environment::prepare(Time t) const {
  for (const auto& tgt : targets_) {
    tgt->trajectory->prepare(tgt->local_time(t));
  }
}

std::vector<TargetId> Environment::active_targets(Time t) const {
  std::vector<TargetId> out;
  for (const auto& tgt : targets_) {
    if (tgt->active_at(t)) out.push_back(tgt->id);
  }
  return out;
}

std::vector<TargetId> Environment::active_targets_of(std::string_view type,
                                                     Time t) const {
  std::vector<TargetId> out;
  for (const auto& tgt : targets_) {
    if (tgt->type == type && tgt->active_at(t)) out.push_back(tgt->id);
  }
  return out;
}

bool Environment::senses(std::string_view type, Vec2 pos, Time t) const {
  for (const auto& tgt : targets_) {
    if (tgt->type == type && tgt->sensed_from(pos, t)) return true;
  }
  return false;
}

std::vector<TargetId> Environment::sensed_targets(Vec2 pos, Time t) const {
  std::vector<TargetId> out;
  for (const auto& tgt : targets_) {
    if (tgt->sensed_from(pos, t)) out.push_back(tgt->id);
  }
  return out;
}

double Environment::reading(std::string_view channel, Vec2 pos,
                            Time t) const {
  auto it = channels_.find(channel);
  const ChannelModel model =
      it == channels_.end() ? ChannelModel{} : it->second;
  double value = model.ambient;
  for (const auto& tgt : targets_) {
    if (!tgt->active_at(t)) continue;
    auto em = tgt->emissions.find(std::string(channel));
    if (em == tgt->emissions.end()) continue;
    const double d =
        std::max(distance(tgt->position_at(t), pos), model.min_distance);
    value += em->second / std::pow(d, model.falloff);
  }
  if (model.noise_stddev > 0.0) {
    value += rng_.normal(0.0, model.noise_stddev);
  }
  return value;
}

}  // namespace et::env
