#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "env/field.hpp"
#include "env/target.hpp"
#include "util/rng.hpp"

/// Ground truth of the physical world.
///
/// The `Environment` owns the set of targets and answers the two questions
/// mote sensing hardware would: (1) does a mote at position p currently
/// sense an entity of type T — the `sense_e()` predicate of §3.1 — and
/// (2) what scalar value does sensor channel c read at p. It also serves as
/// ground truth for the metrics layer (real target trajectories, who should
/// belong to which sensor group).
namespace et::env {

/// Attenuation model of a scalar channel: reading contribution of a target
/// is emission / max(d, d_min)^falloff. Magnetic effects attenuate with the
/// cube of the distance (§6.1).
struct ChannelModel {
  double falloff = 2.0;
  double min_distance = 0.1;
  double ambient = 0.0;
  double noise_stddev = 0.0;
};

class Environment {
 public:
  /// `rng` drives sensor noise only.
  explicit Environment(Rng rng = Rng{0});

  /// Registers/overrides a scalar channel model. "magnetic" (falloff 3),
  /// "light", and "temperature" (falloff 2) are pre-registered.
  void set_channel(std::string name, ChannelModel model);

  /// Adds a target; the environment takes ownership and assigns the id.
  TargetId add_target(Target target);

  /// Marks a target as gone from `t` onwards (e.g. fire extinguished).
  void remove_target_at(TargetId id, Time t);

  const Target& target(TargetId id) const;
  std::size_t target_count() const { return targets_.size(); }

  /// Ids of targets active at `t`, in creation order.
  std::vector<TargetId> active_targets(Time t) const;

  /// Ids of active targets of `type` at `t`.
  std::vector<TargetId> active_targets_of(std::string_view type,
                                          Time t) const;

  /// The sense_e() predicate: true when a mote at `pos` senses some active
  /// target of `type` at time `t`.
  bool senses(std::string_view type, Vec2 pos, Time t) const;

  /// All active targets (any type) sensed from `pos` at `t`.
  std::vector<TargetId> sensed_targets(Vec2 pos, Time t) const;

  /// Scalar reading of `channel` at `pos`, time `t`: ambient + per-target
  /// contributions + Gaussian noise. Unknown channels read as pure noise
  /// around zero.
  double reading(std::string_view channel, Vec2 pos, Time t) const;

  /// Materialises lazily generated trajectory state (random-walk segments)
  /// for every query time <= `t`. The parallel kernel calls this before
  /// each tile window so concurrent position_at/senses/reading calls are
  /// pure reads. Note: channels with noise_stddev > 0 draw from a shared
  /// RNG per reading and are not usable under canonical/parallel order
  /// (every built-in scenario leaves noise at 0).
  void prepare(Time t) const;

 private:
  std::vector<std::unique_ptr<Target>> targets_;
  std::map<std::string, ChannelModel, std::less<>> channels_;
  mutable Rng rng_;
};

}  // namespace et::env
