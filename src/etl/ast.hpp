#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "util/time.hpp"

/// Abstract syntax of the EnviroTrack language (Appendix A).
namespace et::etl {

// --- Expressions -----------------------------------------------------------

enum class BinaryOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

enum class UnaryOp { kNeg, kNot };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// A numeric literal.
struct NumberExpr {
  double value;
};

/// A string literal (arguments to log()/state()).
struct StringExpr {
  std::string value;
};

/// true / false.
struct BoolExpr {
  bool value;
};

/// A bare identifier. Meaning is resolved by context at compile time:
/// inside activation conditions it names a sensor channel or sense
/// function; inside object bodies it names an aggregate state variable or
/// a method parameter.
struct IdentExpr {
  std::string name;
};

/// A call: sense functions in activation conditions
/// (magnetic_sensor_reading()) and the built-ins state("key"), now().
struct CallExpr {
  std::string callee;
  std::vector<ExprPtr> args;
};

/// self.<member>: self.label, self.x, self.y.
struct SelfExpr {
  std::string member;
};

struct UnaryExpr {
  UnaryOp op;
  ExprPtr operand;
};

struct BinaryExpr {
  BinaryOp op;
  ExprPtr lhs;
  ExprPtr rhs;
};

struct Expr {
  /// Exactly one alternative is set.
  std::optional<NumberExpr> number;
  std::optional<StringExpr> string;
  std::optional<BoolExpr> boolean;
  std::optional<IdentExpr> ident;
  std::optional<CallExpr> call;
  std::optional<SelfExpr> self;
  std::optional<UnaryExpr> unary;
  std::optional<BinaryExpr> binary;
  int line = 0;
};

// --- Statements --------------------------------------------------------------

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// send(destination, arg, ...): ship a report to a named node (resolved at
/// compile time, like the paper's compile-time pursuer identity).
struct SendStmt {
  std::string destination;
  std::vector<ExprPtr> args;
};

/// log("message", expr...): diagnostic output through a compile-time hook.
struct LogStmt {
  std::vector<ExprPtr> args;
};

/// setState("key", expr): commit persistent context state (rides in
/// heartbeats, survives leader handoff).
struct SetStateStmt {
  std::string key;
  ExprPtr value;
};

/// if (cond) { ... } [else { ... }]
struct IfStmt {
  ExprPtr condition;
  std::vector<StmtPtr> then_body;
  std::vector<StmtPtr> else_body;
};

struct Stmt {
  std::optional<SendStmt> send;
  std::optional<LogStmt> log;
  std::optional<SetStateStmt> set_state;
  std::optional<IfStmt> if_stmt;
  int line = 0;
};

// --- Declarations -------------------------------------------------------------

/// One aggregate variable:
///   location : avg(position) confidence=2, freshness=1s;
struct AggVarDecl {
  std::string name;
  std::string aggregation;
  std::vector<std::string> sensors;  // grammar allows a list; first is used
  std::optional<double> confidence;  // critical mass N_e
  std::optional<Duration> freshness; // L_e
  int line = 0;
};

/// How a method is invoked.
struct InvocationDecl {
  enum class Kind {
    kTimer,      // TIMER(p)
    kCondition,  // when (expr)
    kMessage     // message: a transport port, run on remote invocation
  };
  Kind kind = Kind::kTimer;
  Duration period;   // kTimer
  ExprPtr condition; // kCondition
};

struct MethodDecl {
  std::string name;
  InvocationDecl invocation;
  std::vector<StmtPtr> body;
  int line = 0;
};

struct ObjectDecl {
  std::string name;
  std::vector<MethodDecl> methods;
  int line = 0;
};

struct ContextDecl {
  std::string name;
  ExprPtr activation;
  ExprPtr deactivation;  // optional extension
  std::vector<AggVarDecl> variables;
  std::vector<ObjectDecl> objects;
  int line = 0;
};

struct Program {
  std::vector<ContextDecl> contexts;
};

}  // namespace et::etl
