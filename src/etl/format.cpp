#include "etl/format.hpp"

#include <cstdio>

namespace et::etl {

namespace {

/// Operator precedence levels matching the parser's grammar (higher binds
/// tighter). Used to parenthesize only where necessary.
int precedence(BinaryOp op) {
  switch (op) {
    case BinaryOp::kOr:
      return 1;
    case BinaryOp::kAnd:
      return 2;
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return 3;
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
      return 4;
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
      return 5;
  }
  return 0;
}

const char* op_token(BinaryOp op) {
  switch (op) {
    case BinaryOp::kOr:
      return "or";
    case BinaryOp::kAnd:
      return "and";
    case BinaryOp::kEq:
      return "==";
    case BinaryOp::kNe:
      return "!=";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
  }
  return "?";
}

std::string number_text(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

std::string duration_text(Duration d) {
  const std::int64_t us = d.to_micros();
  if (us % 1'000'000 == 0) return std::to_string(us / 1'000'000) + "s";
  if (us % 1'000 == 0) return std::to_string(us / 1'000) + "ms";
  return std::to_string(us) + "us";
}

/// Formats `expr`, parenthesizing it when its precedence is below
/// `min_prec` (the binding strength of the enclosing operator position).
std::string expr_text(const Expr& expr, int min_prec) {
  if (expr.number) return number_text(expr.number->value);
  if (expr.string) return "\"" + expr.string->value + "\"";
  if (expr.boolean) return expr.boolean->value ? "true" : "false";
  if (expr.ident) return expr.ident->name;
  if (expr.self) return "self." + expr.self->member;
  if (expr.call) {
    std::string out = expr.call->callee + "(";
    bool first = true;
    for (const ExprPtr& arg : expr.call->args) {
      if (!first) out += ", ";
      first = false;
      out += expr_text(*arg, 0);
    }
    return out + ")";
  }
  if (expr.unary) {
    const char* prefix = expr.unary->op == UnaryOp::kNot ? "not " : "-";
    // Unary binds tighter than every binary operator.
    return std::string(prefix) + expr_text(*expr.unary->operand, 6);
  }
  if (expr.binary) {
    const int prec = precedence(expr.binary->op);
    // Left-associative: the right operand needs strictly higher binding.
    std::string out = expr_text(*expr.binary->lhs, prec);
    out += " ";
    out += op_token(expr.binary->op);
    out += " ";
    out += expr_text(*expr.binary->rhs, prec + 1);
    if (prec < min_prec) return "(" + out + ")";
    return out;
  }
  return "<?>";
}

void format_stmts(const std::vector<StmtPtr>& stmts, int indent,
                  std::string& out);

void format_stmt(const Stmt& stmt, int indent, std::string& out) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  if (stmt.send) {
    out += pad + "send(" + stmt.send->destination;
    for (const ExprPtr& arg : stmt.send->args) {
      out += ", " + expr_text(*arg, 0);
    }
    out += ");\n";
    return;
  }
  if (stmt.log) {
    out += pad + "log(";
    bool first = true;
    for (const ExprPtr& arg : stmt.log->args) {
      if (!first) out += ", ";
      first = false;
      out += expr_text(*arg, 0);
    }
    out += ");\n";
    return;
  }
  if (stmt.set_state) {
    out += pad + "setState(\"" + stmt.set_state->key + "\", " +
           expr_text(*stmt.set_state->value, 0) + ");\n";
    return;
  }
  if (stmt.if_stmt) {
    out += pad + "if (" + expr_text(*stmt.if_stmt->condition, 0) + ") {\n";
    format_stmts(stmt.if_stmt->then_body, indent + 2, out);
    const auto& else_body = stmt.if_stmt->else_body;
    // Re-sugar a single nested if back into an `else if` chain.
    if (else_body.size() == 1 && else_body[0]->if_stmt) {
      out += pad + "} else ";
      std::string nested;
      format_stmt(*else_body[0], indent, nested);
      // Splice: drop the nested statement's leading indentation.
      out += nested.substr(pad.size());
      return;
    }
    if (!else_body.empty()) {
      out += pad + "} else {\n";
      format_stmts(else_body, indent + 2, out);
    }
    out += pad + "}\n";
    return;
  }
}

void format_stmts(const std::vector<StmtPtr>& stmts, int indent,
                  std::string& out) {
  for (const StmtPtr& stmt : stmts) format_stmt(*stmt, indent, out);
}

}  // namespace

std::string format_expr(const Expr& expr) { return expr_text(expr, 0); }

std::string format_program(const Program& program) {
  std::string out;
  bool first_context = true;
  for (const ContextDecl& context : program.contexts) {
    if (!first_context) out += "\n";
    first_context = false;
    out += "begin context " + context.name + "\n";
    out += "  activation: " + expr_text(*context.activation, 0) + ";\n";
    if (context.deactivation) {
      out += "  deactivation: " + expr_text(*context.deactivation, 0) +
             ";\n";
    }
    for (const AggVarDecl& var : context.variables) {
      out += "  " + var.name + " : " + var.aggregation + "(";
      bool first = true;
      for (const std::string& sensor : var.sensors) {
        if (!first) out += ", ";
        first = false;
        out += sensor;
      }
      out += ")";
      bool has_attr = false;
      if (var.confidence) {
        out += " confidence=" + number_text(*var.confidence);
        has_attr = true;
      }
      if (var.freshness) {
        out += has_attr ? ", " : " ";
        out += "freshness=" + duration_text(*var.freshness);
      }
      out += ";\n";
    }
    for (const ObjectDecl& object : context.objects) {
      out += "\n  begin object " + object.name + "\n";
      for (const MethodDecl& method : object.methods) {
        out += "    invocation: ";
        switch (method.invocation.kind) {
          case InvocationDecl::Kind::kTimer:
            out += "TIMER(" + duration_text(method.invocation.period) + ")";
            break;
          case InvocationDecl::Kind::kCondition:
            out += "when (" + expr_text(*method.invocation.condition, 0) +
                   ")";
            break;
          case InvocationDecl::Kind::kMessage:
            out += "message";
            break;
        }
        out += "\n    " + method.name + "() {\n";
        format_stmts(method.body, 6, out);
        out += "    }\n";
      }
      out += "  end\n";
    }
    out += "end context\n";
  }
  return out;
}

}  // namespace et::etl
