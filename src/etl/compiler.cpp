#include "etl/compiler.hpp"

#include <cmath>
#include <cstdio>
#include <memory>
#include <set>

#include "core/tracking_context.hpp"
#include "etl/eval.hpp"
#include "etl/parser.hpp"
#include "util/log.hpp"

namespace et::etl {

namespace {

Error semantic_error(int line, const std::string& message) {
  char prefix[32];
  std::snprintf(prefix, sizeof(prefix), "line %d: ", line);
  return Error{"semantic-error", prefix + message};
}

/// Shared compile-time context captured by all emitted closures.
struct CompiledUnit {
  Program program;  // owns every Expr/Stmt the closures point into
  CompileOptions options;
  const core::SenseRegistry* senses = nullptr;
};

// ---------------------------------------------------------------------------
// Activation-condition environment: names resolve against a mote's sensors.
// ---------------------------------------------------------------------------

EvalHooks sense_hooks(const node::Mote& mote, const CompiledUnit& unit) {
  EvalHooks hooks;
  hooks.ident = [&mote](const std::string& name) {
    // A bare identifier in an activation condition reads the sensor
    // channel, e.g. (temperature > 180).
    return Value::of(mote.read_sensor(name));
  };
  hooks.call = [&mote, &unit](const std::string& callee,
                              const std::vector<Value>&) {
    // Calls name registered sense_e() predicates, e.g.
    // magnetic_sensor_reading().
    return Value::of(unit.senses->get(callee)(mote));
  };
  return hooks;
}

// ---------------------------------------------------------------------------
// Object-body environment: names resolve against the live TrackingContext.
// ---------------------------------------------------------------------------

EvalHooks body_hooks(core::TrackingContext& ctx) {
  EvalHooks hooks;
  hooks.ident = [&ctx](const std::string& name) {
    // Aggregate state variable read under its declared QoS.
    auto value = ctx.read(name);
    if (!value) return Value::null();
    return value->kind == core::AggregateValue::Kind::kVector
               ? Value::of(value->vector)
               : Value::of(value->scalar);
  };
  hooks.call = [&ctx](const std::string& callee,
                      const std::vector<Value>& args) {
    if (callee == "state" && args.size() == 1 && args[0].is_string()) {
      auto value = ctx.get_state(args[0].string());
      return value ? Value::of(*value) : Value::null();
    }
    if (callee == "now" && args.empty()) {
      return Value::of(ctx.now().to_seconds());
    }
    if (callee == "arg" && args.size() == 1 && args[0].is_number()) {
      // Message-invoked methods: the invocation's positional arguments.
      const auto index = static_cast<std::size_t>(args[0].number());
      const auto& incoming = ctx.incoming_args();
      return index < incoming.size() ? Value::of(incoming[index])
                                     : Value::null();
    }
    return Value::null();
  };
  hooks.self_member = [&ctx](const std::string& member) {
    if (member == "label") return Value::of(ctx.label());
    if (member == "x") return Value::of(ctx.node_position().x);
    if (member == "y") return Value::of(ctx.node_position().y);
    if (member == "type") return Value::of(std::string(ctx.type_name()));
    return Value::null();
  };
  return hooks;
}

// ---------------------------------------------------------------------------
// Statement execution
// ---------------------------------------------------------------------------

void exec_stmts(const std::vector<StmtPtr>& stmts, core::TrackingContext& ctx,
                const CompiledUnit& unit, const std::string& method_name);

void exec_stmt(const Stmt& stmt, core::TrackingContext& ctx,
               const CompiledUnit& unit, const std::string& method_name) {
  const EvalHooks hooks = body_hooks(ctx);

  if (stmt.send) {
    // send(dest, self.label, location, ...): labels ride in the message
    // header; vectors flatten to (x, y); null arguments abort the send —
    // an unconfirmed siting is not reported.
    auto dest = unit.options.destinations.find(stmt.send->destination);
    if (dest == unit.options.destinations.end()) return;  // checked at compile
    std::vector<double> data;
    for (const ExprPtr& arg : stmt.send->args) {
      const Value value = eval_expr(*arg, hooks);
      if (value.is_null()) return;
      if (value.is_number()) {
        data.push_back(value.number());
      } else if (value.is_vector()) {
        data.push_back(value.vector().x);
        data.push_back(value.vector().y);
      }
      // Labels and strings are carried by the envelope/tag, not the data.
    }
    ctx.send_to_node(dest->second, method_name, std::move(data));
    return;
  }

  if (stmt.log) {
    std::string line;
    for (const ExprPtr& arg : stmt.log->args) {
      if (!line.empty()) line += " ";
      line += eval_expr(*arg, hooks).to_string();
    }
    if (unit.options.log_sink) {
      unit.options.log_sink(line);
    } else {
      ET_INFO("etl", "%s", line.c_str());
    }
    return;
  }

  if (stmt.set_state) {
    const Value value = eval_expr(*stmt.set_state->value, hooks);
    if (value.is_number()) {
      ctx.set_state(stmt.set_state->key, value.number());
    }
    return;
  }

  if (stmt.if_stmt) {
    if (eval_expr(*stmt.if_stmt->condition, hooks).truthy()) {
      exec_stmts(stmt.if_stmt->then_body, ctx, unit, method_name);
    } else {
      exec_stmts(stmt.if_stmt->else_body, ctx, unit, method_name);
    }
    return;
  }
}

void exec_stmts(const std::vector<StmtPtr>& stmts, core::TrackingContext& ctx,
                const CompiledUnit& unit, const std::string& method_name) {
  for (const StmtPtr& stmt : stmts) {
    exec_stmt(*stmt, ctx, unit, method_name);
  }
}

// ---------------------------------------------------------------------------
// Semantic validation
// ---------------------------------------------------------------------------

/// Checks an expression used in an activation condition: idents are sensor
/// channels (always allowed), calls must name registered sense functions,
/// self/state are meaningless outside object bodies.
std::optional<Error> validate_sense_expr(const Expr& expr,
                                         const core::SenseRegistry& senses) {
  if (expr.self) {
    return semantic_error(expr.line,
                          "'self' is not available in sensing conditions");
  }
  if (expr.call) {
    if (!senses.contains(expr.call->callee)) {
      return semantic_error(expr.line, "unknown sense function '" +
                                           expr.call->callee + "()'");
    }
    if (!expr.call->args.empty()) {
      return semantic_error(expr.line, "sense functions take no arguments");
    }
    return std::nullopt;
  }
  if (expr.unary) return validate_sense_expr(*expr.unary->operand, senses);
  if (expr.binary) {
    if (auto err = validate_sense_expr(*expr.binary->lhs, senses)) return err;
    return validate_sense_expr(*expr.binary->rhs, senses);
  }
  return std::nullopt;
}

/// Checks an expression used in an object body against the declared
/// aggregate variables.
std::optional<Error> validate_body_expr(const Expr& expr,
                                        const std::set<std::string>& vars) {
  if (expr.ident) {
    if (!vars.count(expr.ident->name)) {
      return semantic_error(expr.line, "unknown aggregate variable '" +
                                           expr.ident->name + "'");
    }
    return std::nullopt;
  }
  if (expr.call) {
    const std::string& callee = expr.call->callee;
    if (callee == "state") {
      if (expr.call->args.size() != 1 || !(*expr.call->args[0]).string) {
        return semantic_error(expr.line,
                              "state(...) takes one string argument");
      }
      return std::nullopt;
    }
    if (callee == "now") {
      if (!expr.call->args.empty()) {
        return semantic_error(expr.line, "now() takes no arguments");
      }
      return std::nullopt;
    }
    if (callee == "arg") {
      if (expr.call->args.size() != 1 || !(*expr.call->args[0]).number) {
        return semantic_error(expr.line,
                              "arg(...) takes one numeric index");
      }
      return std::nullopt;
    }
    return semantic_error(expr.line,
                          "unknown function '" + callee +
                              "' in object body (expected state/now/arg)");
  }
  if (expr.self) {
    const std::string& member = expr.self->member;
    if (member != "label" && member != "x" && member != "y" &&
        member != "type") {
      return semantic_error(expr.line, "unknown self member '" + member +
                                           "' (label/x/y/type)");
    }
    return std::nullopt;
  }
  if (expr.unary) return validate_body_expr(*expr.unary->operand, vars);
  if (expr.binary) {
    if (auto err = validate_body_expr(*expr.binary->lhs, vars)) return err;
    return validate_body_expr(*expr.binary->rhs, vars);
  }
  return std::nullopt;
}

std::optional<Error> validate_stmts(const std::vector<StmtPtr>& stmts,
                                    const std::set<std::string>& vars,
                                    const CompileOptions& options);

std::optional<Error> validate_stmt(const Stmt& stmt,
                                   const std::set<std::string>& vars,
                                   const CompileOptions& options) {
  if (stmt.send) {
    if (!options.destinations.count(stmt.send->destination)) {
      return semantic_error(stmt.line,
                            "unknown send destination '" +
                                stmt.send->destination +
                                "' (declare it in CompileOptions)");
    }
    for (const ExprPtr& arg : stmt.send->args) {
      if (auto err = validate_body_expr(*arg, vars)) return err;
    }
    return std::nullopt;
  }
  if (stmt.log) {
    for (const ExprPtr& arg : stmt.log->args) {
      if (auto err = validate_body_expr(*arg, vars)) return err;
    }
    return std::nullopt;
  }
  if (stmt.set_state) {
    return validate_body_expr(*stmt.set_state->value, vars);
  }
  if (stmt.if_stmt) {
    if (auto err = validate_body_expr(*stmt.if_stmt->condition, vars)) {
      return err;
    }
    if (auto err = validate_stmts(stmt.if_stmt->then_body, vars, options)) {
      return err;
    }
    return validate_stmts(stmt.if_stmt->else_body, vars, options);
  }
  return std::nullopt;
}

std::optional<Error> validate_stmts(const std::vector<StmtPtr>& stmts,
                                    const std::set<std::string>& vars,
                                    const CompileOptions& options) {
  for (const StmtPtr& stmt : stmts) {
    if (auto err = validate_stmt(*stmt, vars, options)) return err;
  }
  return std::nullopt;
}

}  // namespace

Expected<std::vector<core::ContextTypeSpec>> compile(
    Program program, core::SenseRegistry& senses,
    const core::AggregationRegistry& aggregations,
    const CompileOptions& options) {
  auto unit = std::make_shared<CompiledUnit>();
  unit->program = std::move(program);
  unit->options = options;
  unit->senses = &senses;

  std::vector<core::ContextTypeSpec> specs;
  std::set<std::string> context_names;

  for (const ContextDecl& context : unit->program.contexts) {
    if (!context_names.insert(context.name).second) {
      return semantic_error(context.line,
                            "duplicate context type '" + context.name + "'");
    }

    core::ContextTypeSpec spec;
    spec.name = context.name;

    // Activation / deactivation predicates.
    if (auto err = validate_sense_expr(*context.activation, senses)) {
      return *err;
    }
    const std::string activation_name = "__" + context.name + "_activation";
    const Expr* activation_expr = context.activation.get();
    senses.add(activation_name,
               [unit, activation_expr](const node::Mote& mote) {
                 return eval_expr(*activation_expr, sense_hooks(mote, *unit))
                     .truthy();
               });
    spec.activation = activation_name;

    if (context.deactivation) {
      if (auto err = validate_sense_expr(*context.deactivation, senses)) {
        return *err;
      }
      const std::string deactivation_name =
          "__" + context.name + "_deactivation";
      const Expr* deactivation_expr = context.deactivation.get();
      senses.add(deactivation_name,
                 [unit, deactivation_expr](const node::Mote& mote) {
                   return eval_expr(*deactivation_expr,
                                    sense_hooks(mote, *unit))
                       .truthy();
                 });
      spec.deactivation = deactivation_name;
    }

    // Aggregate variables.
    std::set<std::string> var_names;
    for (const AggVarDecl& var : context.variables) {
      if (!var_names.insert(var.name).second) {
        return semantic_error(var.line, "duplicate aggregate variable '" +
                                            var.name + "'");
      }
      if (!aggregations.contains(var.aggregation)) {
        return semantic_error(var.line, "unknown aggregation function '" +
                                            var.aggregation + "'");
      }
      core::AggregateVarSpec var_spec;
      var_spec.name = var.name;
      var_spec.aggregation = var.aggregation;
      var_spec.sensor = var.sensors.front();
      if (var.freshness) {
        if (!var.freshness->is_positive()) {
          return semantic_error(var.line, "freshness must be positive");
        }
        var_spec.freshness = *var.freshness;
      } else {
        var_spec.freshness = options.default_freshness;
      }
      if (var.confidence) {
        if (*var.confidence < 1.0 ||
            *var.confidence != std::floor(*var.confidence)) {
          return semantic_error(var.line,
                                "confidence must be a positive integer");
        }
        var_spec.critical_mass = static_cast<std::size_t>(*var.confidence);
      } else {
        var_spec.critical_mass = options.default_confidence;
      }
      spec.variables.push_back(std::move(var_spec));
    }

    // Attached objects.
    std::set<std::string> object_names;
    for (const ObjectDecl& object : context.objects) {
      if (!object_names.insert(object.name).second) {
        return semantic_error(object.line,
                              "duplicate object '" + object.name + "'");
      }
      core::ObjectSpec object_spec;
      object_spec.name = object.name;

      std::set<std::string> method_names;
      for (const MethodDecl& method : object.methods) {
        if (!method_names.insert(method.name).second) {
          return semantic_error(method.line,
                                "duplicate method '" + method.name + "'");
        }
        if (auto err = validate_stmts(method.body, var_names, options)) {
          return *err;
        }

        core::MethodSpec method_spec;
        method_spec.name = method.name;
        if (method.invocation.kind == InvocationDecl::Kind::kTimer) {
          if (!method.invocation.period.is_positive()) {
            return semantic_error(method.line,
                                  "TIMER period must be positive");
          }
          method_spec.invocation.kind = core::InvocationSpec::Kind::kTimer;
          method_spec.invocation.period = method.invocation.period;
        } else if (method.invocation.kind == InvocationDecl::Kind::kMessage) {
          method_spec.invocation.kind = core::InvocationSpec::Kind::kMessage;
        } else {
          if (auto err = validate_body_expr(*method.invocation.condition,
                                            var_names)) {
            return *err;
          }
          method_spec.invocation.kind =
              core::InvocationSpec::Kind::kCondition;
          const Expr* condition = method.invocation.condition.get();
          method_spec.invocation.condition =
              [unit, condition](core::TrackingContext& ctx) {
                return eval_expr(*condition, body_hooks(ctx)).truthy();
              };
        }

        const std::vector<StmtPtr>* body = &method.body;
        method_spec.body = [unit, body,
                            name = method.name](core::TrackingContext& ctx) {
          exec_stmts(*body, ctx, *unit, name);
        };
        object_spec.methods.push_back(std::move(method_spec));
      }
      spec.objects.push_back(std::move(object_spec));
    }

    specs.push_back(std::move(spec));
  }
  return specs;
}

Expected<std::vector<core::ContextTypeSpec>> compile_source(
    std::string_view source, core::SenseRegistry& senses,
    const core::AggregationRegistry& aggregations,
    const CompileOptions& options) {
  auto program = parse(source);
  if (!program.ok()) return program.error();
  return compile(std::move(program).value(), senses, aggregations, options);
}

}  // namespace et::etl
