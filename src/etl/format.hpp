#pragma once

#include <string>

#include "etl/ast.hpp"

/// Canonical formatting of EnviroTrack programs.
///
/// Renders an AST back to language text in a normalized style (one
/// canonical spacing/indentation, explicit attributes). Formatting then
/// re-parsing yields a structurally identical AST — the round-trip
/// property the tests pin down — which makes the formatter usable for
/// tooling (the `etlc` checker uses it for `--format`).
namespace et::etl {

std::string format_program(const Program& program);
std::string format_expr(const Expr& expr);

}  // namespace et::etl
