#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/expected.hpp"
#include "util/time.hpp"

/// Lexical analysis for the EnviroTrack context-definition language.
///
/// The language (paper §4 and Appendix A) declares context types: an
/// activation condition, aggregate state variables with QoS attributes, and
/// attached objects whose methods carry invocation conditions and small
/// imperative bodies. The paper implemented it as a NesC preprocessor; here
/// it compiles to runtime ContextTypeSpecs.
namespace et::etl {

enum class TokenKind : std::uint8_t {
  // Structure keywords.
  kBegin,
  kEnd,
  kContext,
  kObject,
  kActivation,
  kDeactivation,  // extension: explicit deactivation condition (footnote 1)
  kInvocation,
  kTimer,   // TIMER
  kWhen,    // when (condition)
  kSelf,    // self.<member>
  kAnd,
  kOr,
  kNot,
  kTrue,
  kFalse,

  // Literals and names.
  kIdent,
  kNumber,    // 42, 3.5
  kDuration,  // 1s, 250ms, 10us
  kString,    // "track"

  // Punctuation.
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kColon,
  kSemicolon,
  kComma,
  kDot,
  kAssign,  // =
  kEq,      // ==
  kNe,      // !=
  kLt,
  kLe,
  kGt,
  kGe,
  kPlus,
  kMinus,
  kStar,
  kSlash,

  kEndOfFile,
};

const char* token_kind_name(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEndOfFile;
  std::string text;       // identifier / string contents
  double number = 0.0;    // kNumber
  Duration duration;      // kDuration
  int line = 1;
  int column = 1;
};

/// Tokenizes `source`. Comments run from '#' or "//" to end of line.
/// Returns a lexical Error (with line/column in the message) on bad input.
Expected<std::vector<Token>> tokenize(std::string_view source);

}  // namespace et::etl
