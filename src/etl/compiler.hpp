#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/aggregation.hpp"
#include "core/context_type.hpp"
#include "core/sense_registry.hpp"
#include "etl/ast.hpp"
#include "util/expected.hpp"

/// Compiles EnviroTrack-language programs to runtime ContextTypeSpecs.
///
/// The paper's preprocessor "patches a set of NesC program templates" and
/// replaces aggregate-variable references with middleware calls; this
/// compiler does the same against the C++ middleware: activation conditions
/// become registered sense predicates, QoS attributes land in the variable
/// specs, and object bodies become interpreter closures over the live
/// TrackingContext.
namespace et::etl {

struct CompileOptions {
  /// Resolution of send() destinations — the paper's example "assumes the
  /// identity of the pursuer is known at compile time".
  std::map<std::string, NodeId> destinations;
  /// Receives log() output; default prints via the logging subsystem.
  std::function<void(const std::string& line)> log_sink;
  /// Defaults for omitted QoS attributes.
  Duration default_freshness = Duration::seconds(1);
  std::size_t default_confidence = 1;
};

/// Compiles a parsed program; takes ownership of the AST (the emitted
/// closures reference it). Synthesized activation/deactivation predicates
/// are registered into `senses` under "__<context>_activation" /
/// "__<context>_deactivation"; sense functions called by activation
/// conditions must already be registered. Fails with a diagnostic on
/// semantic errors: unknown aggregation or sense function, unknown send
/// destination, body references to undeclared aggregate variables, bad
/// attribute values, duplicate names.
Expected<std::vector<core::ContextTypeSpec>> compile(
    Program program, core::SenseRegistry& senses,
    const core::AggregationRegistry& aggregations,
    const CompileOptions& options = {});

/// Convenience: parse + compile.
Expected<std::vector<core::ContextTypeSpec>> compile_source(
    std::string_view source, core::SenseRegistry& senses,
    const core::AggregationRegistry& aggregations,
    const CompileOptions& options = {});

}  // namespace et::etl
