#include "etl/eval.hpp"

#include <cmath>
#include <cstdio>

namespace et::etl {

std::string Value::to_string() const {
  switch (kind_) {
    case Kind::kNull:
      return "null";
    case Kind::kNumber: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", number_);
      return buf;
    }
    case Kind::kString:
      return string_;
    case Kind::kVector:
      return vector_.to_string();
    case Kind::kLabel:
      return "label:" + label_.to_string();
  }
  return "?";
}

namespace {

Value numeric_binary(BinaryOp op, const Value& lhs, const Value& rhs) {
  if (!lhs.is_number() || !rhs.is_number()) return Value::null();
  const double a = lhs.number();
  const double b = rhs.number();
  switch (op) {
    case BinaryOp::kAdd:
      return Value::of(a + b);
    case BinaryOp::kSub:
      return Value::of(a - b);
    case BinaryOp::kMul:
      return Value::of(a * b);
    case BinaryOp::kDiv:
      return b == 0.0 ? Value::null() : Value::of(a / b);
    case BinaryOp::kEq:
      return Value::of(a == b);
    case BinaryOp::kNe:
      return Value::of(a != b);
    case BinaryOp::kLt:
      return Value::of(a < b);
    case BinaryOp::kLe:
      return Value::of(a <= b);
    case BinaryOp::kGt:
      return Value::of(a > b);
    case BinaryOp::kGe:
      return Value::of(a >= b);
    default:
      return Value::null();
  }
}

}  // namespace

Value eval_expr(const Expr& expr, const EvalHooks& hooks) {
  if (expr.number) return Value::of(expr.number->value);
  if (expr.string) return Value::of(expr.string->value);
  if (expr.boolean) return Value::of(expr.boolean->value);
  if (expr.ident) {
    return hooks.ident ? hooks.ident(expr.ident->name) : Value::null();
  }
  if (expr.self) {
    return hooks.self_member ? hooks.self_member(expr.self->member)
                             : Value::null();
  }
  if (expr.call) {
    if (!hooks.call) return Value::null();
    std::vector<Value> args;
    args.reserve(expr.call->args.size());
    for (const ExprPtr& arg : expr.call->args) {
      args.push_back(eval_expr(*arg, hooks));
    }
    return hooks.call(expr.call->callee, args);
  }
  if (expr.unary) {
    const Value operand = eval_expr(*expr.unary->operand, hooks);
    switch (expr.unary->op) {
      case UnaryOp::kNeg:
        return operand.is_number() ? Value::of(-operand.number())
                                   : Value::null();
      case UnaryOp::kNot:
        return Value::of(!operand.truthy());
    }
    return Value::null();
  }
  if (expr.binary) {
    const BinaryExpr& binary = *expr.binary;
    // Logical operators short-circuit on truthiness.
    if (binary.op == BinaryOp::kAnd) {
      const Value lhs = eval_expr(*binary.lhs, hooks);
      if (!lhs.truthy()) return Value::of(false);
      return Value::of(eval_expr(*binary.rhs, hooks).truthy());
    }
    if (binary.op == BinaryOp::kOr) {
      const Value lhs = eval_expr(*binary.lhs, hooks);
      if (lhs.truthy()) return Value::of(true);
      return Value::of(eval_expr(*binary.rhs, hooks).truthy());
    }
    const Value lhs = eval_expr(*binary.lhs, hooks);
    const Value rhs = eval_expr(*binary.rhs, hooks);
    // String equality is supported; everything else is numeric.
    if (lhs.is_string() && rhs.is_string()) {
      if (binary.op == BinaryOp::kEq) {
        return Value::of(lhs.string() == rhs.string());
      }
      if (binary.op == BinaryOp::kNe) {
        return Value::of(lhs.string() != rhs.string());
      }
      return Value::null();
    }
    return numeric_binary(binary.op, lhs, rhs);
  }
  return Value::null();
}

}  // namespace et::etl
