#pragma once

#include <functional>
#include <vector>

#include "etl/ast.hpp"
#include "etl/value.hpp"

/// Expression evaluation, parameterized over an environment.
///
/// The same expression grammar appears in two environments with different
/// name resolution: activation conditions run against a mote's sensors,
/// object bodies run against a live context label's aggregate state. The
/// hooks below abstract the difference.
namespace et::etl {

struct EvalHooks {
  /// Resolves a bare identifier (sensor channel or aggregate variable).
  std::function<Value(const std::string& name)> ident;
  /// Resolves a call (sense function, state("key"), now(), ...).
  std::function<Value(const std::string& callee,
                      const std::vector<Value>& args)>
      call;
  /// Resolves self.<member> (label, x, y); null outside object bodies.
  std::function<Value(const std::string& member)> self_member;
};

/// Evaluates `expr`. Null operands propagate: arithmetic or comparison with
/// a null yields null; `and`/`or` use truthiness with short-circuiting;
/// `not null` is true (null is falsy).
Value eval_expr(const Expr& expr, const EvalHooks& hooks);

}  // namespace et::etl
