#pragma once

#include <string_view>

#include "etl/ast.hpp"
#include "etl/token.hpp"
#include "util/expected.hpp"

/// Recursive-descent parser for the EnviroTrack language.
///
/// Grammar (Appendix A, with the body/statement extensions this
/// implementation interprets instead of emitting NesC):
///
///   program        := context_decl+
///   context_decl   := 'begin' 'context' IDENT context_stmt* 'end' 'context'
///   context_stmt   := activation | deactivation | aggr_var | object_decl
///   activation     := 'activation' ':' expr ';'
///   deactivation   := 'deactivation' ':' expr ';'
///   aggr_var       := IDENT ':' IDENT '(' IDENT (',' IDENT)* ')' attrs ';'
///   attrs          := attr (',' attr)*
///   attr           := 'confidence' '=' NUMBER | 'freshness' '=' DURATION
///   object_decl    := 'begin' 'object' IDENT method+ 'end'
///   method         := 'invocation' ':' invocation IDENT '(' ')'
///                     '{' stmt* '}'
///   invocation     := 'TIMER' '(' DURATION ')' | 'when' '(' expr ')'
///   stmt           := send | log | setState | if
///   send           := 'send' '(' IDENT (',' expr)* ')' ';'
///   log            := 'log' '(' expr (',' expr)* ')' ';'
///   setState       := 'setState' '(' STRING ',' expr ')' ';'
///   if             := 'if' '(' expr ')' '{' stmt* '}'
///                     ('else' '{' stmt* '}')?
///   expr           := or-chain of comparisons over + - * / terms; terms are
///                     numbers, durations (as seconds), strings, true/false,
///                     identifiers, calls, 'self' '.' IDENT, parenthesized
///                     exprs, and unary '-' / 'not'.
namespace et::etl {

/// Parses source text to an AST. Errors carry line:column positions.
Expected<Program> parse(std::string_view source);

/// Parses a single expression (used by tests and the condition compiler).
Expected<ExprPtr> parse_expression(std::string_view source);

}  // namespace et::etl
