#include "etl/parser.hpp"

#include <cstdio>

namespace et::etl {

namespace {

Error parse_error(const Token& at, const std::string& message) {
  char prefix[64];
  std::snprintf(prefix, sizeof(prefix), "line %d:%d: ", at.line, at.column);
  return Error{"parse-error", prefix + message};
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Expected<Program> parse_program() {
    Program program;
    while (!check(TokenKind::kEndOfFile)) {
      auto context = parse_context();
      if (!context.ok()) return context.error();
      program.contexts.push_back(std::move(context).value());
    }
    if (program.contexts.empty()) {
      return parse_error(peek(), "empty program: expected 'begin context'");
    }
    return program;
  }

  Expected<ExprPtr> parse_single_expression() {
    auto expr = parse_expr();
    if (!expr.ok()) return expr.error();
    if (!check(TokenKind::kEndOfFile)) {
      return parse_error(peek(), "trailing input after expression");
    }
    return expr;
  }

 private:
  // --- Token plumbing ---
  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool check(TokenKind kind) const { return peek().kind == kind; }
  bool match(TokenKind kind) {
    if (!check(kind)) return false;
    advance();
    return true;
  }
  Expected<Token> expect(TokenKind kind, const char* what) {
    if (!check(kind)) {
      return parse_error(peek(), std::string("expected ") + what + " (" +
                                     token_kind_name(kind) + "), found " +
                                     token_kind_name(peek().kind));
    }
    return advance();
  }

  // --- Declarations ---
  Expected<ContextDecl> parse_context() {
    auto begin = expect(TokenKind::kBegin, "'begin'");
    if (!begin.ok()) return begin.error();
    if (auto t = expect(TokenKind::kContext, "'context'"); !t.ok()) {
      return t.error();
    }
    auto name = expect(TokenKind::kIdent, "context name");
    if (!name.ok()) return name.error();

    ContextDecl context;
    context.name = name.value().text;
    context.line = name.value().line;

    while (!check(TokenKind::kEnd)) {
      if (check(TokenKind::kEndOfFile)) {
        return parse_error(peek(), "unterminated context declaration");
      }
      if (match(TokenKind::kActivation)) {
        if (auto t = expect(TokenKind::kColon, "':'"); !t.ok()) {
          return t.error();
        }
        auto expr = parse_expr();
        if (!expr.ok()) return expr.error();
        if (context.activation) {
          return parse_error(peek(), "duplicate activation condition");
        }
        context.activation = std::move(expr).value();
        if (auto t = expect(TokenKind::kSemicolon, "';'"); !t.ok()) {
          return t.error();
        }
        continue;
      }
      if (match(TokenKind::kDeactivation)) {
        if (auto t = expect(TokenKind::kColon, "':'"); !t.ok()) {
          return t.error();
        }
        auto expr = parse_expr();
        if (!expr.ok()) return expr.error();
        if (context.deactivation) {
          return parse_error(peek(), "duplicate deactivation condition");
        }
        context.deactivation = std::move(expr).value();
        if (auto t = expect(TokenKind::kSemicolon, "';'"); !t.ok()) {
          return t.error();
        }
        continue;
      }
      if (check(TokenKind::kBegin)) {
        auto object = parse_object();
        if (!object.ok()) return object.error();
        context.objects.push_back(std::move(object).value());
        continue;
      }
      auto var = parse_agg_var();
      if (!var.ok()) return var.error();
      context.variables.push_back(std::move(var).value());
    }
    advance();  // 'end'
    if (auto t = expect(TokenKind::kContext, "'context'"); !t.ok()) {
      return t.error();
    }
    if (!context.activation) {
      return parse_error(peek(), "context '" + context.name +
                                     "' has no activation condition");
    }
    return context;
  }

  Expected<AggVarDecl> parse_agg_var() {
    auto name = expect(TokenKind::kIdent, "aggregate variable name");
    if (!name.ok()) return name.error();
    AggVarDecl var;
    var.name = name.value().text;
    var.line = name.value().line;
    if (auto t = expect(TokenKind::kColon, "':'"); !t.ok()) return t.error();
    auto agg = expect(TokenKind::kIdent, "aggregation function");
    if (!agg.ok()) return agg.error();
    var.aggregation = agg.value().text;
    if (auto t = expect(TokenKind::kLParen, "'('"); !t.ok()) return t.error();
    do {
      auto sensor = expect(TokenKind::kIdent, "sensor name");
      if (!sensor.ok()) return sensor.error();
      var.sensors.push_back(sensor.value().text);
    } while (match(TokenKind::kComma));
    if (auto t = expect(TokenKind::kRParen, "')'"); !t.ok()) return t.error();

    // Attributes until ';'.
    while (!match(TokenKind::kSemicolon)) {
      auto attr = expect(TokenKind::kIdent, "attribute name");
      if (!attr.ok()) return attr.error();
      if (auto t = expect(TokenKind::kAssign, "'='"); !t.ok()) {
        return t.error();
      }
      if (attr.value().text == "confidence") {
        auto value = expect(TokenKind::kNumber, "confidence value");
        if (!value.ok()) return value.error();
        var.confidence = value.value().number;
      } else if (attr.value().text == "freshness") {
        auto value = expect(TokenKind::kDuration, "freshness duration");
        if (!value.ok()) return value.error();
        var.freshness = value.value().duration;
      } else {
        return parse_error(attr.value(),
                           "unknown attribute '" + attr.value().text +
                               "' (expected confidence or freshness)");
      }
      if (!check(TokenKind::kSemicolon)) {
        if (auto t = expect(TokenKind::kComma, "','"); !t.ok()) {
          return t.error();
        }
      }
    }
    return var;
  }

  Expected<ObjectDecl> parse_object() {
    advance();  // 'begin'
    if (auto t = expect(TokenKind::kObject, "'object'"); !t.ok()) {
      return t.error();
    }
    auto name = expect(TokenKind::kIdent, "object name");
    if (!name.ok()) return name.error();
    ObjectDecl object;
    object.name = name.value().text;
    object.line = name.value().line;

    while (!check(TokenKind::kEnd)) {
      if (check(TokenKind::kEndOfFile)) {
        return parse_error(peek(), "unterminated object declaration");
      }
      auto method = parse_method();
      if (!method.ok()) return method.error();
      object.methods.push_back(std::move(method).value());
    }
    advance();  // 'end'
    if (object.methods.empty()) {
      return parse_error(peek(),
                         "object '" + object.name + "' has no methods");
    }
    return object;
  }

  Expected<MethodDecl> parse_method() {
    if (auto t = expect(TokenKind::kInvocation, "'invocation'"); !t.ok()) {
      return t.error();
    }
    if (auto t = expect(TokenKind::kColon, "':'"); !t.ok()) return t.error();

    MethodDecl method;
    if (match(TokenKind::kTimer)) {
      if (auto t = expect(TokenKind::kLParen, "'('"); !t.ok()) {
        return t.error();
      }
      auto period = expect(TokenKind::kDuration, "timer period");
      if (!period.ok()) return period.error();
      method.invocation.kind = InvocationDecl::Kind::kTimer;
      method.invocation.period = period.value().duration;
      if (auto t = expect(TokenKind::kRParen, "')'"); !t.ok()) {
        return t.error();
      }
    } else if (match(TokenKind::kWhen)) {
      if (auto t = expect(TokenKind::kLParen, "'('"); !t.ok()) {
        return t.error();
      }
      auto condition = parse_expr();
      if (!condition.ok()) return condition.error();
      method.invocation.kind = InvocationDecl::Kind::kCondition;
      method.invocation.condition = std::move(condition).value();
      if (auto t = expect(TokenKind::kRParen, "')'"); !t.ok()) {
        return t.error();
      }
    } else if (check(TokenKind::kIdent) && peek().text == "message") {
      advance();
      method.invocation.kind = InvocationDecl::Kind::kMessage;
    } else {
      return parse_error(peek(),
                         "expected TIMER(...), when (...), or message");
    }

    auto name = expect(TokenKind::kIdent, "method name");
    if (!name.ok()) return name.error();
    method.name = name.value().text;
    method.line = name.value().line;
    if (auto t = expect(TokenKind::kLParen, "'('"); !t.ok()) return t.error();
    if (auto t = expect(TokenKind::kRParen, "')'"); !t.ok()) return t.error();
    if (auto t = expect(TokenKind::kLBrace, "'{'"); !t.ok()) return t.error();
    while (!match(TokenKind::kRBrace)) {
      if (check(TokenKind::kEndOfFile)) {
        return parse_error(peek(), "unterminated method body");
      }
      auto stmt = parse_stmt();
      if (!stmt.ok()) return stmt.error();
      method.body.push_back(std::move(stmt).value());
    }
    return method;
  }

  // --- Statements ---
  Expected<StmtPtr> parse_stmt() {
    const Token& head = peek();
    if (head.kind == TokenKind::kIdent) {
      if (head.text == "send") return parse_send();
      if (head.text == "log") return parse_log();
      if (head.text == "setState") return parse_set_state();
      if (head.text == "if") return parse_if();
    }
    return parse_error(head, "expected a statement (send/log/setState/if)");
  }

  Expected<StmtPtr> parse_send() {
    const int line = peek().line;
    advance();  // 'send'
    if (auto t = expect(TokenKind::kLParen, "'('"); !t.ok()) return t.error();
    auto dest = expect(TokenKind::kIdent, "destination name");
    if (!dest.ok()) return dest.error();
    SendStmt send;
    send.destination = dest.value().text;
    while (match(TokenKind::kComma)) {
      auto arg = parse_expr();
      if (!arg.ok()) return arg.error();
      send.args.push_back(std::move(arg).value());
    }
    if (auto t = expect(TokenKind::kRParen, "')'"); !t.ok()) return t.error();
    if (auto t = expect(TokenKind::kSemicolon, "';'"); !t.ok()) {
      return t.error();
    }
    auto stmt = std::make_unique<Stmt>();
    stmt->send = std::move(send);
    stmt->line = line;
    return stmt;
  }

  Expected<StmtPtr> parse_log() {
    const int line = peek().line;
    advance();  // 'log'
    if (auto t = expect(TokenKind::kLParen, "'('"); !t.ok()) return t.error();
    LogStmt log;
    do {
      auto arg = parse_expr();
      if (!arg.ok()) return arg.error();
      log.args.push_back(std::move(arg).value());
    } while (match(TokenKind::kComma));
    if (auto t = expect(TokenKind::kRParen, "')'"); !t.ok()) return t.error();
    if (auto t = expect(TokenKind::kSemicolon, "';'"); !t.ok()) {
      return t.error();
    }
    auto stmt = std::make_unique<Stmt>();
    stmt->log = std::move(log);
    stmt->line = line;
    return stmt;
  }

  Expected<StmtPtr> parse_set_state() {
    const int line = peek().line;
    advance();  // 'setState'
    if (auto t = expect(TokenKind::kLParen, "'('"); !t.ok()) return t.error();
    auto key = expect(TokenKind::kString, "state key string");
    if (!key.ok()) return key.error();
    if (auto t = expect(TokenKind::kComma, "','"); !t.ok()) return t.error();
    auto value = parse_expr();
    if (!value.ok()) return value.error();
    if (auto t = expect(TokenKind::kRParen, "')'"); !t.ok()) return t.error();
    if (auto t = expect(TokenKind::kSemicolon, "';'"); !t.ok()) {
      return t.error();
    }
    auto stmt = std::make_unique<Stmt>();
    stmt->set_state = SetStateStmt{key.value().text, std::move(value).value()};
    stmt->line = line;
    return stmt;
  }

  Expected<StmtPtr> parse_if() {
    const int line = peek().line;
    advance();  // 'if'
    if (auto t = expect(TokenKind::kLParen, "'('"); !t.ok()) return t.error();
    auto condition = parse_expr();
    if (!condition.ok()) return condition.error();
    if (auto t = expect(TokenKind::kRParen, "')'"); !t.ok()) return t.error();
    if (auto t = expect(TokenKind::kLBrace, "'{'"); !t.ok()) return t.error();
    IfStmt if_stmt;
    if_stmt.condition = std::move(condition).value();
    while (!match(TokenKind::kRBrace)) {
      auto stmt = parse_stmt();
      if (!stmt.ok()) return stmt.error();
      if_stmt.then_body.push_back(std::move(stmt).value());
    }
    if (check(TokenKind::kIdent) && peek().text == "else") {
      advance();
      // `else if (...) { ... }` chains nest as a single-statement else.
      if (check(TokenKind::kIdent) && peek().text == "if") {
        auto nested = parse_if();
        if (!nested.ok()) return nested.error();
        if_stmt.else_body.push_back(std::move(nested).value());
      } else {
        if (auto t = expect(TokenKind::kLBrace, "'{'"); !t.ok()) {
          return t.error();
        }
        while (!match(TokenKind::kRBrace)) {
          auto stmt = parse_stmt();
          if (!stmt.ok()) return stmt.error();
          if_stmt.else_body.push_back(std::move(stmt).value());
        }
      }
    }
    auto stmt = std::make_unique<Stmt>();
    stmt->if_stmt = std::move(if_stmt);
    stmt->line = line;
    return stmt;
  }

  // --- Expressions (precedence climbing) ---
  Expected<ExprPtr> parse_expr() { return parse_or(); }

  Expected<ExprPtr> parse_or() {
    auto lhs = parse_and();
    if (!lhs.ok()) return lhs;
    while (match(TokenKind::kOr)) {
      auto rhs = parse_and();
      if (!rhs.ok()) return rhs;
      lhs = make_binary(BinaryOp::kOr, std::move(lhs).value(),
                        std::move(rhs).value());
    }
    return lhs;
  }

  Expected<ExprPtr> parse_and() {
    auto lhs = parse_comparison();
    if (!lhs.ok()) return lhs;
    while (match(TokenKind::kAnd)) {
      auto rhs = parse_comparison();
      if (!rhs.ok()) return rhs;
      lhs = make_binary(BinaryOp::kAnd, std::move(lhs).value(),
                        std::move(rhs).value());
    }
    return lhs;
  }

  Expected<ExprPtr> parse_comparison() {
    auto lhs = parse_additive();
    if (!lhs.ok()) return lhs;
    for (;;) {
      BinaryOp op;
      if (match(TokenKind::kEq)) {
        op = BinaryOp::kEq;
      } else if (match(TokenKind::kNe)) {
        op = BinaryOp::kNe;
      } else if (match(TokenKind::kLt)) {
        op = BinaryOp::kLt;
      } else if (match(TokenKind::kLe)) {
        op = BinaryOp::kLe;
      } else if (match(TokenKind::kGt)) {
        op = BinaryOp::kGt;
      } else if (match(TokenKind::kGe)) {
        op = BinaryOp::kGe;
      } else {
        return lhs;
      }
      auto rhs = parse_additive();
      if (!rhs.ok()) return rhs;
      lhs = make_binary(op, std::move(lhs).value(), std::move(rhs).value());
    }
  }

  Expected<ExprPtr> parse_additive() {
    auto lhs = parse_multiplicative();
    if (!lhs.ok()) return lhs;
    for (;;) {
      BinaryOp op;
      if (match(TokenKind::kPlus)) {
        op = BinaryOp::kAdd;
      } else if (match(TokenKind::kMinus)) {
        op = BinaryOp::kSub;
      } else {
        return lhs;
      }
      auto rhs = parse_multiplicative();
      if (!rhs.ok()) return rhs;
      lhs = make_binary(op, std::move(lhs).value(), std::move(rhs).value());
    }
  }

  Expected<ExprPtr> parse_multiplicative() {
    auto lhs = parse_unary();
    if (!lhs.ok()) return lhs;
    for (;;) {
      BinaryOp op;
      if (match(TokenKind::kStar)) {
        op = BinaryOp::kMul;
      } else if (match(TokenKind::kSlash)) {
        op = BinaryOp::kDiv;
      } else {
        return lhs;
      }
      auto rhs = parse_unary();
      if (!rhs.ok()) return rhs;
      lhs = make_binary(op, std::move(lhs).value(), std::move(rhs).value());
    }
  }

  Expected<ExprPtr> parse_unary() {
    if (match(TokenKind::kMinus)) {
      auto operand = parse_unary();
      if (!operand.ok()) return operand;
      auto expr = std::make_unique<Expr>();
      expr->unary = UnaryExpr{UnaryOp::kNeg, std::move(operand).value()};
      return ExprPtr(std::move(expr));
    }
    if (match(TokenKind::kNot)) {
      auto operand = parse_unary();
      if (!operand.ok()) return operand;
      auto expr = std::make_unique<Expr>();
      expr->unary = UnaryExpr{UnaryOp::kNot, std::move(operand).value()};
      return ExprPtr(std::move(expr));
    }
    return parse_primary();
  }

  Expected<ExprPtr> parse_primary() {
    const Token& token = peek();
    auto expr = std::make_unique<Expr>();
    expr->line = token.line;

    switch (token.kind) {
      case TokenKind::kNumber:
        expr->number = NumberExpr{token.number};
        advance();
        return ExprPtr(std::move(expr));
      case TokenKind::kDuration:
        // Durations in expressions read as seconds.
        expr->number = NumberExpr{token.duration.to_seconds()};
        advance();
        return ExprPtr(std::move(expr));
      case TokenKind::kString:
        expr->string = StringExpr{token.text};
        advance();
        return ExprPtr(std::move(expr));
      case TokenKind::kTrue:
        expr->boolean = BoolExpr{true};
        advance();
        return ExprPtr(std::move(expr));
      case TokenKind::kFalse:
        expr->boolean = BoolExpr{false};
        advance();
        return ExprPtr(std::move(expr));
      case TokenKind::kSelf: {
        advance();
        if (auto t = expect(TokenKind::kDot, "'.'"); !t.ok()) {
          return t.error();
        }
        auto member = expect(TokenKind::kIdent, "self member");
        if (!member.ok()) return member.error();
        expr->self = SelfExpr{member.value().text};
        return ExprPtr(std::move(expr));
      }
      case TokenKind::kLParen: {
        advance();
        auto inner = parse_expr();
        if (!inner.ok()) return inner;
        if (auto t = expect(TokenKind::kRParen, "')'"); !t.ok()) {
          return t.error();
        }
        return inner;
      }
      case TokenKind::kIdent: {
        const std::string name = token.text;
        advance();
        if (match(TokenKind::kLParen)) {
          CallExpr call;
          call.callee = name;
          if (!check(TokenKind::kRParen)) {
            do {
              auto arg = parse_expr();
              if (!arg.ok()) return arg;
              call.args.push_back(std::move(arg).value());
            } while (match(TokenKind::kComma));
          }
          if (auto t = expect(TokenKind::kRParen, "')'"); !t.ok()) {
            return t.error();
          }
          expr->call = std::move(call);
        } else {
          expr->ident = IdentExpr{name};
        }
        return ExprPtr(std::move(expr));
      }
      default:
        return parse_error(token, std::string("expected an expression, found ") +
                                      token_kind_name(token.kind));
    }
  }

  static ExprPtr make_binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
    auto expr = std::make_unique<Expr>();
    expr->line = lhs->line;
    expr->binary = BinaryExpr{op, std::move(lhs), std::move(rhs)};
    return expr;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Expected<Program> parse(std::string_view source) {
  auto tokens = tokenize(source);
  if (!tokens.ok()) return tokens.error();
  return Parser(std::move(tokens).value()).parse_program();
}

Expected<ExprPtr> parse_expression(std::string_view source) {
  auto tokens = tokenize(source);
  if (!tokens.ok()) return tokens.error();
  return Parser(std::move(tokens).value()).parse_single_expression();
}

}  // namespace et::etl
