#include <cctype>
#include <cstdio>
#include <map>

#include "etl/token.hpp"

namespace et::etl {

const char* token_kind_name(TokenKind kind) {
  switch (kind) {
    case TokenKind::kBegin: return "'begin'";
    case TokenKind::kEnd: return "'end'";
    case TokenKind::kContext: return "'context'";
    case TokenKind::kObject: return "'object'";
    case TokenKind::kActivation: return "'activation'";
    case TokenKind::kDeactivation: return "'deactivation'";
    case TokenKind::kInvocation: return "'invocation'";
    case TokenKind::kTimer: return "'TIMER'";
    case TokenKind::kWhen: return "'when'";
    case TokenKind::kSelf: return "'self'";
    case TokenKind::kAnd: return "'and'";
    case TokenKind::kOr: return "'or'";
    case TokenKind::kNot: return "'not'";
    case TokenKind::kTrue: return "'true'";
    case TokenKind::kFalse: return "'false'";
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kNumber: return "number";
    case TokenKind::kDuration: return "duration";
    case TokenKind::kString: return "string";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kColon: return "':'";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kComma: return "','";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kAssign: return "'='";
    case TokenKind::kEq: return "'=='";
    case TokenKind::kNe: return "'!='";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kEndOfFile: return "end of file";
  }
  return "?";
}

namespace {

const std::map<std::string, TokenKind, std::less<>>& keywords() {
  static const std::map<std::string, TokenKind, std::less<>> kKeywords = {
      {"begin", TokenKind::kBegin},
      {"end", TokenKind::kEnd},
      {"context", TokenKind::kContext},
      {"object", TokenKind::kObject},
      {"activation", TokenKind::kActivation},
      {"deactivation", TokenKind::kDeactivation},
      {"invocation", TokenKind::kInvocation},
      {"TIMER", TokenKind::kTimer},
      {"when", TokenKind::kWhen},
      {"self", TokenKind::kSelf},
      {"and", TokenKind::kAnd},
      {"or", TokenKind::kOr},
      {"not", TokenKind::kNot},
      {"true", TokenKind::kTrue},
      {"false", TokenKind::kFalse},
  };
  return kKeywords;
}

Error lex_error(int line, int column, const std::string& message) {
  char prefix[64];
  std::snprintf(prefix, sizeof(prefix), "line %d:%d: ", line, column);
  return Error{"lex-error", prefix + message};
}

class Lexer {
 public:
  explicit Lexer(std::string_view source) : src_(source) {}

  Expected<std::vector<Token>> run() {
    std::vector<Token> tokens;
    for (;;) {
      skip_trivia();
      if (at_end()) break;
      const int line = line_;
      const int column = column_;
      const char c = peek();

      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        tokens.push_back(lex_word(line, column));
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
        auto tok = lex_number(line, column);
        if (!tok.ok()) return tok.error();
        tokens.push_back(std::move(tok).value());
        continue;
      }
      if (c == '"') {
        auto tok = lex_string(line, column);
        if (!tok.ok()) return tok.error();
        tokens.push_back(std::move(tok).value());
        continue;
      }
      auto tok = lex_punct(line, column);
      if (!tok.ok()) return tok.error();
      tokens.push_back(std::move(tok).value());
    }
    tokens.push_back(Token{TokenKind::kEndOfFile, "", 0.0, {}, line_, column_});
    return tokens;
  }

 private:
  bool at_end() const { return pos_ >= src_.size(); }
  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void skip_trivia() {
    for (;;) {
      while (!at_end() &&
             std::isspace(static_cast<unsigned char>(peek()))) {
        advance();
      }
      if (peek() == '#' || (peek() == '/' && peek(1) == '/')) {
        while (!at_end() && peek() != '\n') advance();
        continue;
      }
      return;
    }
  }

  Token lex_word(int line, int column) {
    std::string word;
    while (!at_end() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                         peek() == '_')) {
      word.push_back(advance());
    }
    auto it = keywords().find(word);
    Token token;
    token.kind = it == keywords().end() ? TokenKind::kIdent : it->second;
    token.text = std::move(word);
    token.line = line;
    token.column = column;
    return token;
  }

  Expected<Token> lex_number(int line, int column) {
    std::string digits;
    while (!at_end() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                         peek() == '.')) {
      digits.push_back(advance());
    }
    double value = 0.0;
    try {
      std::size_t consumed = 0;
      value = std::stod(digits, &consumed);
      if (consumed != digits.size()) {
        return lex_error(line, column, "malformed number '" + digits + "'");
      }
    } catch (...) {
      return lex_error(line, column, "malformed number '" + digits + "'");
    }

    Token token;
    token.line = line;
    token.column = column;
    // Duration suffix: s, ms, us.
    if (peek() == 'm' && peek(1) == 's') {
      advance();
      advance();
      token.kind = TokenKind::kDuration;
      token.duration = Duration::micros(
          static_cast<std::int64_t>(value * 1000.0));
      return token;
    }
    if (peek() == 'u' && peek(1) == 's') {
      advance();
      advance();
      token.kind = TokenKind::kDuration;
      token.duration = Duration::micros(static_cast<std::int64_t>(value));
      return token;
    }
    if (peek() == 's' &&
        !std::isalnum(static_cast<unsigned char>(peek(1))) && peek(1) != '_') {
      advance();
      token.kind = TokenKind::kDuration;
      token.duration = Duration::seconds(value);
      return token;
    }
    token.kind = TokenKind::kNumber;
    token.number = value;
    return token;
  }

  Expected<Token> lex_string(int line, int column) {
    advance();  // opening quote
    std::string contents;
    while (!at_end() && peek() != '"') {
      if (peek() == '\n') {
        return lex_error(line, column, "unterminated string literal");
      }
      contents.push_back(advance());
    }
    if (at_end()) {
      return lex_error(line, column, "unterminated string literal");
    }
    advance();  // closing quote
    Token token;
    token.kind = TokenKind::kString;
    token.text = std::move(contents);
    token.line = line;
    token.column = column;
    return token;
  }

  Expected<Token> lex_punct(int line, int column) {
    const char c = advance();
    Token token;
    token.line = line;
    token.column = column;
    switch (c) {
      case '(': token.kind = TokenKind::kLParen; return token;
      case ')': token.kind = TokenKind::kRParen; return token;
      case '{': token.kind = TokenKind::kLBrace; return token;
      case '}': token.kind = TokenKind::kRBrace; return token;
      case ':': token.kind = TokenKind::kColon; return token;
      case ';': token.kind = TokenKind::kSemicolon; return token;
      case ',': token.kind = TokenKind::kComma; return token;
      case '.': token.kind = TokenKind::kDot; return token;
      case '+': token.kind = TokenKind::kPlus; return token;
      case '-': token.kind = TokenKind::kMinus; return token;
      case '*': token.kind = TokenKind::kStar; return token;
      case '/': token.kind = TokenKind::kSlash; return token;
      case '=':
        if (peek() == '=') {
          advance();
          token.kind = TokenKind::kEq;
        } else {
          token.kind = TokenKind::kAssign;
        }
        return token;
      case '!':
        if (peek() == '=') {
          advance();
          token.kind = TokenKind::kNe;
          return token;
        }
        return lex_error(line, column, "stray '!' (use 'not' or '!=')");
      case '<':
        if (peek() == '=') {
          advance();
          token.kind = TokenKind::kLe;
        } else {
          token.kind = TokenKind::kLt;
        }
        return token;
      case '>':
        if (peek() == '=') {
          advance();
          token.kind = TokenKind::kGe;
        } else {
          token.kind = TokenKind::kGt;
        }
        return token;
      default:
        return lex_error(line, column,
                         std::string("unexpected character '") + c + "'");
    }
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

Expected<std::vector<Token>> tokenize(std::string_view source) {
  return Lexer(source).run();
}

}  // namespace et::etl
