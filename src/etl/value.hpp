#pragma once

#include <string>

#include "util/geometry.hpp"
#include "util/ids.hpp"

/// Runtime values of the EnviroTrack language.
///
/// Aggregate reads can fail (null flag, §3.2.3); the language makes that a
/// first-class Null value that propagates through arithmetic and renders
/// conditions false, so programs degrade gracefully when critical mass is
/// not met.
namespace et::etl {

class Value {
 public:
  enum class Kind { kNull, kNumber, kString, kVector, kLabel };

  Value() = default;  // null

  static Value null() { return Value(); }
  static Value of(double v) {
    Value value;
    value.kind_ = Kind::kNumber;
    value.number_ = v;
    return value;
  }
  static Value of(bool v) { return of(v ? 1.0 : 0.0); }
  static Value of(std::string v) {
    Value value;
    value.kind_ = Kind::kString;
    value.string_ = std::move(v);
    return value;
  }
  static Value of(Vec2 v) {
    Value value;
    value.kind_ = Kind::kVector;
    value.vector_ = v;
    return value;
  }
  static Value of(LabelId v) {
    Value value;
    value.kind_ = Kind::kLabel;
    value.label_ = v;
    return value;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_vector() const { return kind_ == Kind::kVector; }
  bool is_label() const { return kind_ == Kind::kLabel; }

  double number() const { return number_; }
  const std::string& string() const { return string_; }
  Vec2 vector() const { return vector_; }
  LabelId label() const { return label_; }

  /// Truthiness: null is false; numbers by non-zero; strings by
  /// non-emptiness; vectors and labels are true.
  bool truthy() const {
    switch (kind_) {
      case Kind::kNull:
        return false;
      case Kind::kNumber:
        return number_ != 0.0;
      case Kind::kString:
        return !string_.empty();
      case Kind::kVector:
        return true;
      case Kind::kLabel:
        return label_.is_valid();
    }
    return false;
  }

  std::string to_string() const;

 private:
  Kind kind_ = Kind::kNull;
  double number_ = 0.0;
  std::string string_;
  Vec2 vector_;
  LabelId label_;
};

}  // namespace et::etl
