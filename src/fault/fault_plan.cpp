#include "fault/fault_plan.hpp"

#include <set>

namespace et::fault {

namespace {

std::string time_str(Time t) {
  return std::to_string(t.to_seconds()) + "s";
}

/// Problems with a partition spec itself (membership ambiguity, empty
/// components); range checks against the deployment happen in validate().
void check_partition_spec(const PartitionSpec& spec, std::size_t index,
                          std::vector<std::string>* out) {
  std::set<std::uint64_t> seen;
  for (std::size_t c = 0; c < spec.components.size(); ++c) {
    if (spec.components[c].empty()) {
      out->push_back("partition " + std::to_string(index) + " component " +
                     std::to_string(c + 1) + " is empty");
    }
    for (NodeId node : spec.components[c]) {
      if (!node.is_valid()) {
        out->push_back("partition " + std::to_string(index) +
                       " lists an invalid node id");
        continue;
      }
      if (!seen.insert(node.value()).second) {
        out->push_back("partition " + std::to_string(index) + " names mote " +
                       node.to_string() +
                       " in more than one component (membership would be "
                       "ambiguous)");
      }
    }
  }
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kReboot:
      return "reboot";
    case FaultKind::kRadioBlackoutStart:
      return "blackout-start";
    case FaultKind::kRadioBlackoutEnd:
      return "blackout-end";
    case FaultKind::kSensorDropStart:
      return "sensor-drop-start";
    case FaultKind::kSensorDropEnd:
      return "sensor-drop-end";
    case FaultKind::kPartitionStart:
      return "partition-start";
    case FaultKind::kPartitionHeal:
      return "partition-heal";
  }
  return "?";
}

bool fault_kind_from_name(std::string_view name, FaultKind* kind) {
  for (const FaultKind candidate :
       {FaultKind::kCrash, FaultKind::kReboot, FaultKind::kRadioBlackoutStart,
        FaultKind::kRadioBlackoutEnd, FaultKind::kSensorDropStart,
        FaultKind::kSensorDropEnd, FaultKind::kPartitionStart,
        FaultKind::kPartitionHeal}) {
    if (name == fault_kind_name(candidate)) {
      *kind = candidate;
      return true;
    }
  }
  return false;
}

bool fault_kind_is_per_node(FaultKind kind) {
  return kind != FaultKind::kPartitionStart &&
         kind != FaultKind::kPartitionHeal;
}

bool FaultPlan::check_event(Time at, NodeId node, FaultKind kind) {
  bool ok = true;
  if (at < Time::origin()) {
    problem(std::string(fault_kind_name(kind)) + " at " + time_str(at) +
            ": fault times must not be negative");
    ok = false;
  }
  if (fault_kind_is_per_node(kind) && !node.is_valid()) {
    problem(std::string(fault_kind_name(kind)) + " at " + time_str(at) +
            ": per-node fault needs a valid victim id");
    ok = false;
  }
  return ok;
}

FaultPlan& FaultPlan::add(Time at, NodeId node, FaultKind kind) {
  if (kind == FaultKind::kPartitionStart) {
    // A raw partition-start has no spec to reference; route through
    // partition_start() instead.
    problem("partition-start added without a spec (use partition_start)");
    return *this;
  }
  if (!check_event(at, node, kind)) return *this;
  events_.push_back(FaultEvent{at, node, kind});
  return *this;
}

FaultPlan& FaultPlan::crash_for(Time at, NodeId node, Duration downtime) {
  if (!downtime.is_positive()) {
    problem("crash_for node " + node.to_string() + " at " + time_str(at) +
            ": downtime must be positive (got " + downtime.to_string() + ")");
    return *this;
  }
  crash(at, node);
  return reboot(at + downtime, node);
}

FaultPlan& FaultPlan::radio_blackout(Time at, NodeId node, Duration length) {
  if (!length.is_positive()) {
    problem("radio_blackout node " + node.to_string() + " at " +
            time_str(at) + ": window must be positive (got " +
            length.to_string() + ")");
    return *this;
  }
  add(at, node, FaultKind::kRadioBlackoutStart);
  return add(at + length, node, FaultKind::kRadioBlackoutEnd);
}

FaultPlan& FaultPlan::sensor_dropout(Time at, NodeId node, Duration length) {
  if (!length.is_positive()) {
    problem("sensor_dropout node " + node.to_string() + " at " +
            time_str(at) + ": window must be positive (got " +
            length.to_string() + ")");
    return *this;
  }
  add(at, node, FaultKind::kSensorDropStart);
  return add(at + length, node, FaultKind::kSensorDropEnd);
}

FaultPlan& FaultPlan::partition_start(Time at, PartitionSpec spec) {
  const bool time_ok = check_event(at, NodeId{}, FaultKind::kPartitionStart);
  check_partition_spec(spec, partitions_.size(), &problems_);
  FaultEvent event{at, NodeId{}, FaultKind::kPartitionStart,
                   partitions_.size()};
  // The spec is kept even when the event is dropped for a bad time, so
  // problem messages can keep referring to it by index.
  partitions_.push_back(std::move(spec));
  if (time_ok) events_.push_back(event);
  return *this;
}

FaultPlan& FaultPlan::partition(Time at, PartitionSpec spec,
                                Duration length) {
  if (!length.is_positive()) {
    problem("partition at " + time_str(at) +
            ": window must be positive (got " + length.to_string() + ")");
    return *this;
  }
  partition_start(at, std::move(spec));
  return partition_heal(at + length);
}

FaultPlan& FaultPlan::burst_partition(Time at, PartitionSpec spec,
                                      Duration down, Duration up,
                                      int cycles) {
  if (!down.is_positive() || !up.is_positive() || cycles < 1) {
    problem("burst_partition at " + time_str(at) +
            ": down/up must be positive and cycles >= 1 (got down=" +
            down.to_string() + " up=" + up.to_string() +
            " cycles=" + std::to_string(cycles) + ")");
    return *this;
  }
  Time t = at;
  for (int i = 0; i < cycles; ++i) {
    partition(t, spec, down);
    t = t + down + up;
  }
  return *this;
}

std::vector<std::string> FaultPlan::validate(std::size_t node_count) const {
  std::vector<std::string> out = problems_;
  for (const FaultEvent& event : events_) {
    if (fault_kind_is_per_node(event.kind) && event.node.is_valid() &&
        event.node.value() >= node_count) {
      out.push_back(std::string(fault_kind_name(event.kind)) + " at " +
                    time_str(event.at) + ": victim " +
                    event.node.to_string() +
                    " is out of range for a deployment of " +
                    std::to_string(node_count) + " motes");
    }
    if (event.kind == FaultKind::kPartitionStart &&
        event.partition >= partitions_.size()) {
      out.push_back("partition-start at " + time_str(event.at) +
                    " references missing spec " +
                    std::to_string(event.partition));
    }
  }
  for (std::size_t i = 0; i < partitions_.size(); ++i) {
    for (const auto& component : partitions_[i].components) {
      for (NodeId node : component) {
        if (node.is_valid() && node.value() >= node_count) {
          out.push_back("partition " + std::to_string(i) + " names mote " +
                        node.to_string() +
                        ", out of range for a deployment of " +
                        std::to_string(node_count) + " motes");
        }
      }
    }
  }
  return out;
}

util::Json FaultPlan::to_json() const {
  util::Json doc = util::Json::object();
  util::Json events = util::Json::array();
  for (const FaultEvent& event : events_) {
    util::Json e = util::Json::object();
    e.set("at_us", event.at.to_micros());
    e.set("kind", fault_kind_name(event.kind));
    if (fault_kind_is_per_node(event.kind)) {
      e.set("node", static_cast<std::int64_t>(event.node.value()));
    }
    if (event.kind == FaultKind::kPartitionStart) {
      e.set("partition", static_cast<std::int64_t>(event.partition));
    }
    events.push_back(std::move(e));
  }
  doc.set("events", std::move(events));
  util::Json partitions = util::Json::array();
  for (const PartitionSpec& spec : partitions_) {
    util::Json components = util::Json::array();
    for (const auto& component : spec.components) {
      util::Json ids = util::Json::array();
      for (NodeId node : component) {
        ids.push_back(static_cast<std::int64_t>(node.value()));
      }
      components.push_back(std::move(ids));
    }
    util::Json s = util::Json::object();
    s.set("components", std::move(components));
    partitions.push_back(std::move(s));
  }
  doc.set("partitions", std::move(partitions));
  return doc;
}

Expected<FaultPlan> FaultPlan::from_json(const util::Json& doc) {
  const auto fail = [](std::string message) {
    return Expected<FaultPlan>::failure("fault_plan_json",
                                        std::move(message));
  };
  if (!doc.is_object()) return fail("fault plan must be a JSON object");
  const util::Json& events = doc["events"];
  const util::Json& partitions = doc["partitions"];
  if (!events.is_array()) return fail("'events' must be an array");
  if (!doc["partitions"].is_null() && !partitions.is_array()) {
    return fail("'partitions' must be an array");
  }

  FaultPlan plan;
  for (std::size_t i = 0; i < partitions.size(); ++i) {
    const util::Json& components = partitions.items()[i]["components"];
    if (!components.is_array()) {
      return fail("partition " + std::to_string(i) +
                  ": 'components' must be an array");
    }
    PartitionSpec spec;
    for (const util::Json& component : components.items()) {
      if (!component.is_array()) {
        return fail("partition " + std::to_string(i) +
                    ": each component must be an array of node ids");
      }
      std::vector<NodeId> ids;
      for (const util::Json& id : component.items()) {
        if (!id.is_int() || id.as_int() < 0) {
          return fail("partition " + std::to_string(i) +
                      ": node ids must be non-negative integers");
        }
        ids.push_back(NodeId{static_cast<std::uint64_t>(id.as_int())});
      }
      spec.components.push_back(std::move(ids));
    }
    check_partition_spec(spec, plan.partitions_.size(), &plan.problems_);
    plan.partitions_.push_back(std::move(spec));
  }

  for (std::size_t i = 0; i < events.size(); ++i) {
    const util::Json& e = events.items()[i];
    if (!e.is_object()) {
      return fail("event " + std::to_string(i) + " must be an object");
    }
    if (!e["at_us"].is_int()) {
      return fail("event " + std::to_string(i) +
                  ": 'at_us' must be an integer microsecond timestamp");
    }
    FaultKind kind;
    if (!e["kind"].is_string() ||
        !fault_kind_from_name(e["kind"].as_string(), &kind)) {
      return fail("event " + std::to_string(i) + ": unknown kind '" +
                  e["kind"].as_string() + "'");
    }
    const Time at = Time::micros(e["at_us"].as_int());
    if (kind == FaultKind::kPartitionStart) {
      if (!e["partition"].is_int() || e["partition"].as_int() < 0 ||
          static_cast<std::size_t>(e["partition"].as_int()) >=
              plan.partitions_.size()) {
        return fail("event " + std::to_string(i) +
                    ": 'partition' must index a declared spec");
      }
      if (plan.check_event(at, NodeId{}, kind)) {
        plan.events_.push_back(FaultEvent{
            at, NodeId{}, kind,
            static_cast<std::size_t>(e["partition"].as_int())});
      }
    } else if (fault_kind_is_per_node(kind)) {
      if (!e["node"].is_int() || e["node"].as_int() < 0) {
        return fail("event " + std::to_string(i) +
                    ": 'node' must be a non-negative integer");
      }
      plan.add(at, NodeId{static_cast<std::uint64_t>(e["node"].as_int())},
               kind);
    } else {
      plan.add(at, NodeId{}, kind);
    }
  }
  return plan;
}

}  // namespace et::fault
