#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/system.hpp"
#include "fault/fault_plan.hpp"

/// Drives fault events through a running EnviroTrack deployment.
///
/// The injector is the paper's missing chaos harness: §2 claims that
/// "applications must not depend on the correctness or availability of any
/// particular node", and the injector is what turns that claim into a
/// measurable experiment — crash/reboot cycles, transient RF blackouts,
/// sensor dropouts, all scheduled deterministically inside the simulator so
/// a seeded run replays exactly. Recovery metrics (time-to-takeover, label
/// continuity) subscribe as listeners and correlate each fault with the
/// protocol's response.
namespace et::fault {

/// One applied fault, annotated with the victim's pre-fault protocol role
/// so listeners can tell "crashed a leader" from "crashed a bystander".
struct FaultRecord {
  Time at;
  NodeId node;
  FaultKind kind;
  /// Did the victim lead any context label when the fault hit?
  bool was_leader = false;
  /// Type/label it led (first leading type wins; invalid when !was_leader).
  core::TypeIndex type_index = 0;
  LabelId label;
};

struct FaultStats {
  std::uint64_t crashes = 0;
  std::uint64_t reboots = 0;
  std::uint64_t blackouts = 0;
  std::uint64_t sensor_dropouts = 0;
  /// Crashes that hit a current group leader.
  std::uint64_t leader_crashes = 0;
  std::uint64_t partitions = 0;
  std::uint64_t partition_heals = 0;
};

class FaultInjector {
 public:
  using Listener = std::function<void(const FaultRecord&)>;

  explicit FaultInjector(core::EnviroTrackSystem& system) : system_(system) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Registers a fault observer; invoked synchronously, after the fault has
  /// been applied, with the victim's *pre-fault* role in the record.
  void add_listener(Listener listener) {
    listeners_.push_back(std::move(listener));
  }

  /// Schedules every event of `plan` on the simulator. Events in the past
  /// (at <= now) fire on the next simulator step. The plan is validated
  /// against the deployment first (see FaultPlan::validate); an invalid
  /// plan schedules *nothing* and returns a failure naming every problem —
  /// no silent skips. Returns the number of events scheduled.
  Expected<std::size_t> schedule(const FaultPlan& plan);

  /// Periodic leader harassment: every `period`, crash the current leader
  /// of `type` (heaviest weight, ties to the lowest node id) and reboot it
  /// `downtime` later. This is the chaos-sweep workhorse — it guarantees
  /// the faults track the group as the target moves, instead of hitting
  /// whichever node happened to lead at plan-construction time. `period`
  /// and `downtime` must be positive (a zero-period harassment timer would
  /// livelock the simulator); rejected otherwise. Returns the index of the
  /// armed harassment timer.
  Expected<std::size_t> harass_leaders(core::TypeIndex type, Duration period,
                                       Duration downtime);

  // --- Immediate faults (also used by the scheduled paths) ---
  void crash(NodeId node);
  void reboot(NodeId node);
  void set_radio_blackout(NodeId node, bool blackout);
  void set_sensor_dropout(NodeId node, bool dropout);
  /// Splits the medium per `spec` (replacing any current split).
  void set_partition(const PartitionSpec& spec);
  /// Restores full reachability.
  void heal_partition();

  const FaultStats& stats() const { return stats_; }
  /// Every applied fault, in application order.
  const std::vector<FaultRecord>& records() const { return records_; }

 private:
  void apply(NodeId node, FaultKind kind);
  void record_network_fault(FaultKind kind);
  /// Current leader of `type` across the deployment, heaviest weight first,
  /// ties to the lowest id. Invalid NodeId when the type has no leader.
  NodeId find_leader(core::TypeIndex type) const;

  core::EnviroTrackSystem& system_;
  std::vector<Listener> listeners_;
  std::vector<FaultRecord> records_;
  std::vector<sim::EventHandle> harass_timers_;
  FaultStats stats_;
};

}  // namespace et::fault
