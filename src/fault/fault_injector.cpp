#include "fault/fault_injector.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace et::fault {

namespace {
constexpr const char* kComponent = "fault";
}

Expected<std::size_t> FaultInjector::schedule(const FaultPlan& plan) {
  const std::vector<std::string> problems =
      plan.validate(system_.node_count());
  if (!problems.empty()) {
    std::string message = "fault plan rejected:";
    for (const std::string& p : problems) {
      message += "\n  - " + p;
    }
    ET_WARN(kComponent, "%s", message.c_str());
    return Expected<std::size_t>::failure("invalid_fault_plan",
                                          std::move(message));
  }
  std::vector<FaultEvent> events = plan.events();
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  const Time now = system_.sim().now();
  for (const FaultEvent& event : events) {
    const Duration delay =
        event.at > now ? event.at - now : Duration::zero();
    if (event.kind == FaultKind::kPartitionStart) {
      // The spec lives in the plan, which need not outlive the schedule
      // call — copy it into the closure.
      PartitionSpec spec = plan.partitions()[event.partition];
      system_.sim().schedule(delay, [this, spec = std::move(spec)] {
        set_partition(spec);
      });
    } else if (event.kind == FaultKind::kPartitionHeal) {
      system_.sim().schedule(delay, [this] { heal_partition(); });
    } else {
      system_.sim().schedule(delay, [this, event] {
        apply(event.node, event.kind);
      });
    }
  }
  return events.size();
}

void FaultInjector::set_partition(const PartitionSpec& spec) {
  std::vector<std::uint32_t> component_of(system_.node_count(), 0);
  for (std::size_t i = 0; i < spec.components.size(); ++i) {
    for (NodeId node : spec.components[i]) {
      component_of[node.value()] = static_cast<std::uint32_t>(i + 1);
    }
  }
  system_.medium().set_partition(std::move(component_of));
  stats_.partitions++;
  record_network_fault(FaultKind::kPartitionStart);
}

void FaultInjector::heal_partition() {
  if (!system_.medium().partitioned()) return;
  system_.medium().clear_partition();
  stats_.partition_heals++;
  record_network_fault(FaultKind::kPartitionHeal);
}

void FaultInjector::record_network_fault(FaultKind kind) {
  FaultRecord record;
  record.at = system_.sim().now();
  record.kind = kind;
  ET_DEBUG(kComponent, "network %s", fault_kind_name(kind));
  records_.push_back(record);
  for (const Listener& listener : listeners_) listener(record);
}

Expected<std::size_t> FaultInjector::harass_leaders(core::TypeIndex type,
                                                    Duration period,
                                                    Duration downtime) {
  if (!period.is_positive() || !downtime.is_positive()) {
    const std::string message =
        "leader harassment needs positive period and downtime (got period=" +
        period.to_string() + " downtime=" + downtime.to_string() +
        "); a zero-period timer would livelock the simulator";
    ET_WARN(kComponent, "%s", message.c_str());
    return Expected<std::size_t>::failure("invalid_harassment", message);
  }
  harass_timers_.push_back(system_.sim().schedule_periodic(
      period, period, [this, type, downtime] {
        const NodeId victim = find_leader(type);
        if (!victim.is_valid()) return;
        apply(victim, FaultKind::kCrash);
        system_.sim().schedule(downtime, [this, victim] {
          apply(victim, FaultKind::kReboot);
        });
      }));
  return harass_timers_.size() - 1;
}

NodeId FaultInjector::find_leader(core::TypeIndex type) const {
  NodeId best;
  std::uint64_t best_weight = 0;
  for (std::size_t i = 0; i < system_.node_count(); ++i) {
    const NodeId id{i};
    core::GroupManager& groups = system_.stack(id).groups();
    if (type >= groups.type_count()) continue;
    if (groups.role(type) != core::Role::kLeader) continue;
    const std::uint64_t weight = groups.leader_weight(type);
    // Heaviest leader first; ascending scan order makes ties go to the
    // lowest id, keeping the pick deterministic.
    if (!best.is_valid() || weight > best_weight) {
      best = id;
      best_weight = weight;
    }
  }
  return best;
}

void FaultInjector::crash(NodeId node) { apply(node, FaultKind::kCrash); }
void FaultInjector::reboot(NodeId node) { apply(node, FaultKind::kReboot); }

void FaultInjector::set_radio_blackout(NodeId node, bool blackout) {
  apply(node, blackout ? FaultKind::kRadioBlackoutStart
                       : FaultKind::kRadioBlackoutEnd);
}

void FaultInjector::set_sensor_dropout(NodeId node, bool dropout) {
  apply(node, dropout ? FaultKind::kSensorDropStart
                      : FaultKind::kSensorDropEnd);
}

void FaultInjector::apply(NodeId node, FaultKind kind) {
  core::MiddlewareStack& stack = system_.stack(node);

  // Snapshot the victim's role *before* the fault lands, so listeners can
  // correlate "leader of label L crashed at t" with the takeover that
  // follows.
  FaultRecord record;
  record.at = system_.sim().now();
  record.node = node;
  record.kind = kind;
  core::GroupManager& groups = stack.groups();
  for (std::size_t t = 0; t < groups.type_count(); ++t) {
    const auto type = static_cast<core::TypeIndex>(t);
    if (groups.role(type) != core::Role::kLeader) continue;
    record.was_leader = true;
    record.type_index = type;
    record.label = groups.current_label(type);
    break;
  }

  switch (kind) {
    case FaultKind::kCrash:
      if (stack.mote().is_down()) return;  // already dead: not a new fault
      stats_.crashes++;
      if (record.was_leader) stats_.leader_crashes++;
      // Through the system facade, which attributes the stack's scheduling
      // to the affected mote (canonical order).
      system_.crash_node(node);
      break;
    case FaultKind::kReboot:
      if (!stack.mote().is_down()) return;
      stats_.reboots++;
      system_.reboot_node(node);
      break;
    case FaultKind::kRadioBlackoutStart:
      stats_.blackouts++;
      system_.medium().set_node_blackout(node, true);
      break;
    case FaultKind::kRadioBlackoutEnd:
      system_.medium().set_node_blackout(node, false);
      break;
    case FaultKind::kSensorDropStart:
      stats_.sensor_dropouts++;
      stack.mote().set_sensor_down(true);
      break;
    case FaultKind::kSensorDropEnd:
      stack.mote().set_sensor_down(false);
      break;
    case FaultKind::kPartitionStart:
    case FaultKind::kPartitionHeal:
      // Network-wide faults route through set_partition/heal_partition.
      return;
  }

  ET_DEBUG(kComponent, "node %llu %s (leader=%d)",
           static_cast<unsigned long long>(node.value()),
           fault_kind_name(kind), record.was_leader ? 1 : 0);
  records_.push_back(record);
  for (const Listener& listener : listeners_) listener(record);
}

}  // namespace et::fault
