#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "util/expected.hpp"
#include "util/ids.hpp"
#include "util/json.hpp"
#include "util/time.hpp"

/// Fault schedules for chaos experiments.
///
/// A `FaultPlan` is a declarative list of timed fault events — who breaks,
/// how, and when — that a `FaultInjector` replays through the simulator.
/// Plans are plain data: they can be built up-front (deterministic chaos
/// runs) or generated programmatically (the chaos fuzzer samples them), and
/// the same plan replayed against the same seed reproduces the run bit for
/// bit. Plans round-trip through JSON (`to_json` / `from_json`) so a
/// failing chaos trial can be written out as a self-contained repro
/// artifact and replayed later.
///
/// Malformed inputs — negative times, inverted/zero fault windows, invalid
/// victims, a partition listing one mote in two components — are recorded
/// as construction problems instead of silently skipped: `validate()`
/// reports them, and `FaultInjector::schedule` refuses the whole plan.
namespace et::fault {

enum class FaultKind {
  /// Crash-stop: the node goes silent, timers die, the receiver powers off.
  kCrash,
  /// Revives a crashed node with factory-fresh volatile state.
  kReboot,
  /// RF outage begins: the radio neither transmits nor receives, but CPU,
  /// timers, and sensors keep running.
  kRadioBlackoutStart,
  kRadioBlackoutEnd,
  /// Sensor dropout begins: sense predicates read false / sensors read 0,
  /// while the node keeps computing and communicating.
  kSensorDropStart,
  kSensorDropEnd,
  /// Network partition begins: the medium is split into reachability
  /// components (see PartitionSpec); no RF crosses a component boundary.
  kPartitionStart,
  /// The current partition heals: full reachability is restored.
  kPartitionHeal,
};

const char* fault_kind_name(FaultKind kind);

/// Inverse of fault_kind_name (JSON parsing); false on an unknown name.
bool fault_kind_from_name(std::string_view name, FaultKind* kind);

/// True for fault kinds that act on a single mote (and therefore require a
/// valid, in-range victim id).
bool fault_kind_is_per_node(FaultKind kind);

/// A network split, described by its non-default reachability components:
/// every node listed in components[i] lands in component i+1, everything
/// unlisted stays in component 0 (a node listed twice takes its last
/// listing). Radio frames cross component boundaries in no direction —
/// delivery, interference, and carrier sense are all confined.
struct PartitionSpec {
  std::vector<std::vector<NodeId>> components;
};

struct FaultEvent {
  Time at;
  /// Victim for per-node faults; invalid for network-wide ones
  /// (partitions).
  NodeId node;
  FaultKind kind;
  /// Index into FaultPlan::partitions() for kPartitionStart; unused
  /// otherwise.
  std::size_t partition = 0;
};

/// Builder for fault schedules. Events may be added in any order; the
/// injector sorts by time before scheduling. Bad inputs are recorded as
/// problems (and the bogus event is not appended): the plan still builds,
/// but validate() fails and the injector rejects it with a clear message.
class FaultPlan {
 public:
  FaultPlan& add(Time at, NodeId node, FaultKind kind);

  FaultPlan& crash(Time at, NodeId node) {
    return add(at, node, FaultKind::kCrash);
  }
  FaultPlan& reboot(Time at, NodeId node) {
    return add(at, node, FaultKind::kReboot);
  }
  /// Crash at `at`, reboot after `downtime` (> 0).
  FaultPlan& crash_for(Time at, NodeId node, Duration downtime);
  /// RF outage over [at, at + length), length > 0.
  FaultPlan& radio_blackout(Time at, NodeId node, Duration length);
  /// Sensor dropout over [at, at + length), length > 0.
  FaultPlan& sensor_dropout(Time at, NodeId node, Duration length);

  /// Network split at `at`. A later partition_heal (or partition with a
  /// new spec) replaces it — splits do not compose. The spec must not name
  /// one mote in two components (ambiguous membership) and every component
  /// must be non-empty.
  FaultPlan& partition_start(Time at, PartitionSpec spec);
  FaultPlan& partition_heal(Time at) {
    return add(at, NodeId{}, FaultKind::kPartitionHeal);
  }
  /// Split over [at, at + length), healed afterwards; length > 0.
  FaultPlan& partition(Time at, PartitionSpec spec, Duration length);
  /// Burst partition: `cycles` (>= 1) deterministic square-wave repetitions
  /// of (split for `down`, healed for `up`), starting at `at`. Composes
  /// with a lossy/burst channel — the partition gates reachability while
  /// the channel keeps corrupting whatever still gets through.
  FaultPlan& burst_partition(Time at, PartitionSpec spec, Duration down,
                             Duration up, int cycles);

  const std::vector<FaultEvent>& events() const { return events_; }
  const std::vector<PartitionSpec>& partitions() const { return partitions_; }
  bool empty() const { return events_.empty(); }

  /// Structural problems recorded while building (negative times, inverted
  /// windows, invalid victims, overlapping partition components).
  const std::vector<std::string>& construction_problems() const {
    return problems_;
  }

  /// Every problem with this plan: construction problems plus range checks
  /// against a deployment of `node_count` motes (victims and partition
  /// members must have id < node_count). Empty means the plan is safe to
  /// schedule.
  std::vector<std::string> validate(std::size_t node_count) const;

  /// JSON round-trip. The document carries every event (time in integer
  /// microseconds, so the trip is exact) and every partition spec;
  /// from_json re-validates structure and rejects malformed documents with
  /// a positioned error instead of building a broken plan.
  util::Json to_json() const;
  static Expected<FaultPlan> from_json(const util::Json& doc);

 private:
  void problem(std::string what) { problems_.push_back(std::move(what)); }
  /// Shared input screening for add(); true when the event may be appended.
  bool check_event(Time at, NodeId node, FaultKind kind);

  std::vector<FaultEvent> events_;
  std::vector<PartitionSpec> partitions_;
  std::vector<std::string> problems_;
};

}  // namespace et::fault
