#pragma once

#include <vector>

#include "util/ids.hpp"
#include "util/time.hpp"

/// Fault schedules for chaos experiments.
///
/// A `FaultPlan` is a declarative list of timed fault events — who breaks,
/// how, and when — that a `FaultInjector` replays through the simulator.
/// Plans are plain data: they can be built up-front (deterministic chaos
/// runs) or generated programmatically, and the same plan replayed against
/// the same seed reproduces the run bit for bit.
namespace et::fault {

enum class FaultKind {
  /// Crash-stop: the node goes silent, timers die, the receiver powers off.
  kCrash,
  /// Revives a crashed node with factory-fresh volatile state.
  kReboot,
  /// RF outage begins: the radio neither transmits nor receives, but CPU,
  /// timers, and sensors keep running.
  kRadioBlackoutStart,
  kRadioBlackoutEnd,
  /// Sensor dropout begins: sense predicates read false / sensors read 0,
  /// while the node keeps computing and communicating.
  kSensorDropStart,
  kSensorDropEnd,
  /// Network partition begins: the medium is split into reachability
  /// components (see PartitionSpec); no RF crosses a component boundary.
  kPartitionStart,
  /// The current partition heals: full reachability is restored.
  kPartitionHeal,
};

const char* fault_kind_name(FaultKind kind);

/// A network split, described by its non-default reachability components:
/// every node listed in components[i] lands in component i+1, everything
/// unlisted stays in component 0 (a node listed twice takes its last
/// listing). Radio frames cross component boundaries in no direction —
/// delivery, interference, and carrier sense are all confined.
struct PartitionSpec {
  std::vector<std::vector<NodeId>> components;
};

struct FaultEvent {
  Time at;
  /// Victim for per-node faults; invalid for network-wide ones
  /// (partitions).
  NodeId node;
  FaultKind kind;
  /// Index into FaultPlan::partitions() for kPartitionStart; unused
  /// otherwise.
  std::size_t partition = 0;
};

/// Builder for fault schedules. Events may be added in any order; the
/// injector sorts by time before scheduling.
class FaultPlan {
 public:
  FaultPlan& add(Time at, NodeId node, FaultKind kind) {
    events_.push_back(FaultEvent{at, node, kind});
    return *this;
  }

  FaultPlan& crash(Time at, NodeId node) {
    return add(at, node, FaultKind::kCrash);
  }
  FaultPlan& reboot(Time at, NodeId node) {
    return add(at, node, FaultKind::kReboot);
  }
  /// Crash at `at`, reboot after `downtime`.
  FaultPlan& crash_for(Time at, NodeId node, Duration downtime) {
    crash(at, node);
    return reboot(at + downtime, node);
  }
  /// RF outage over [at, at + length).
  FaultPlan& radio_blackout(Time at, NodeId node, Duration length) {
    add(at, node, FaultKind::kRadioBlackoutStart);
    return add(at + length, node, FaultKind::kRadioBlackoutEnd);
  }
  /// Sensor dropout over [at, at + length).
  FaultPlan& sensor_dropout(Time at, NodeId node, Duration length) {
    add(at, node, FaultKind::kSensorDropStart);
    return add(at + length, node, FaultKind::kSensorDropEnd);
  }

  /// Network split at `at`. A later partition_heal (or partition with a
  /// new spec) replaces it — splits do not compose.
  FaultPlan& partition_start(Time at, PartitionSpec spec) {
    FaultEvent event{at, NodeId{}, FaultKind::kPartitionStart,
                     partitions_.size()};
    partitions_.push_back(std::move(spec));
    events_.push_back(event);
    return *this;
  }
  FaultPlan& partition_heal(Time at) {
    return add(at, NodeId{}, FaultKind::kPartitionHeal);
  }
  /// Split over [at, at + length), healed afterwards.
  FaultPlan& partition(Time at, PartitionSpec spec, Duration length) {
    partition_start(at, std::move(spec));
    return partition_heal(at + length);
  }
  /// Burst partition: `cycles` deterministic square-wave repetitions of
  /// (split for `down`, healed for `up`), starting at `at`. Composes with
  /// a lossy/burst channel — the partition gates reachability while the
  /// channel keeps corrupting whatever still gets through.
  FaultPlan& burst_partition(Time at, PartitionSpec spec, Duration down,
                             Duration up, int cycles) {
    Time t = at;
    for (int i = 0; i < cycles; ++i) {
      partition(t, spec, down);
      t = t + down + up;
    }
    return *this;
  }

  const std::vector<FaultEvent>& events() const { return events_; }
  const std::vector<PartitionSpec>& partitions() const { return partitions_; }
  bool empty() const { return events_.empty(); }

 private:
  std::vector<FaultEvent> events_;
  std::vector<PartitionSpec> partitions_;
};

}  // namespace et::fault
