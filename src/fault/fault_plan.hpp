#pragma once

#include <vector>

#include "util/ids.hpp"
#include "util/time.hpp"

/// Fault schedules for chaos experiments.
///
/// A `FaultPlan` is a declarative list of timed fault events — who breaks,
/// how, and when — that a `FaultInjector` replays through the simulator.
/// Plans are plain data: they can be built up-front (deterministic chaos
/// runs) or generated programmatically, and the same plan replayed against
/// the same seed reproduces the run bit for bit.
namespace et::fault {

enum class FaultKind {
  /// Crash-stop: the node goes silent, timers die, the receiver powers off.
  kCrash,
  /// Revives a crashed node with factory-fresh volatile state.
  kReboot,
  /// RF outage begins: the radio neither transmits nor receives, but CPU,
  /// timers, and sensors keep running.
  kRadioBlackoutStart,
  kRadioBlackoutEnd,
  /// Sensor dropout begins: sense predicates read false / sensors read 0,
  /// while the node keeps computing and communicating.
  kSensorDropStart,
  kSensorDropEnd,
};

const char* fault_kind_name(FaultKind kind);

struct FaultEvent {
  Time at;
  NodeId node;
  FaultKind kind;
};

/// Builder for fault schedules. Events may be added in any order; the
/// injector sorts by time before scheduling.
class FaultPlan {
 public:
  FaultPlan& add(Time at, NodeId node, FaultKind kind) {
    events_.push_back(FaultEvent{at, node, kind});
    return *this;
  }

  FaultPlan& crash(Time at, NodeId node) {
    return add(at, node, FaultKind::kCrash);
  }
  FaultPlan& reboot(Time at, NodeId node) {
    return add(at, node, FaultKind::kReboot);
  }
  /// Crash at `at`, reboot after `downtime`.
  FaultPlan& crash_for(Time at, NodeId node, Duration downtime) {
    crash(at, node);
    return reboot(at + downtime, node);
  }
  /// RF outage over [at, at + length).
  FaultPlan& radio_blackout(Time at, NodeId node, Duration length) {
    add(at, node, FaultKind::kRadioBlackoutStart);
    return add(at + length, node, FaultKind::kRadioBlackoutEnd);
  }
  /// Sensor dropout over [at, at + length).
  FaultPlan& sensor_dropout(Time at, NodeId node, Duration length) {
    add(at, node, FaultKind::kSensorDropStart);
    return add(at + length, node, FaultKind::kSensorDropEnd);
  }

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace et::fault
