#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "env/field.hpp"
#include "node/mote.hpp"

/// The deployed mote population.
///
/// Builds one `Mote` per field position (attached to the shared medium in
/// id order) and provides indexed access for scenario assembly, metrics,
/// and failure injection.
namespace et::node {

class MoteNetwork {
 public:
  /// Picks the simulator driving a mote's events; the parallel kernel maps
  /// positions to spatial tiles here. Null = every mote runs on `sim`.
  using SimSelector = std::function<sim::Simulator&(NodeId, Vec2)>;

  MoteNetwork(sim::Simulator& sim, radio::Medium& medium,
              env::Environment& env, const env::Field& field,
              CpuConfig cpu_config = {}, const SimSelector& selector = {});

  MoteNetwork(const MoteNetwork&) = delete;
  MoteNetwork& operator=(const MoteNetwork&) = delete;

  std::size_t size() const { return motes_.size(); }
  Mote& mote(NodeId id) { return *motes_[id.value()]; }
  const Mote& mote(NodeId id) const { return *motes_[id.value()]; }

  template <typename Fn>
  void for_each(Fn&& fn) {
    for (auto& m : motes_) fn(*m);
  }

 private:
  std::vector<std::unique_ptr<Mote>> motes_;
};

}  // namespace et::node
