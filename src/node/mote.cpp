#include "node/mote.hpp"

#include <cassert>
#include <string>

namespace et::node {

Mote::Mote(sim::Simulator& sim, radio::Medium& medium, env::Environment& env,
           NodeId id, Vec2 position, CpuConfig cpu_config)
    : sim_(sim),
      medium_(medium),
      env_(env),
      id_(id),
      position_(position),
      cpu_(sim, cpu_config),
      rng_(sim.make_rng("mote-" + std::to_string(id.value()))) {
  medium_.attach(id, position,
                 [this](const radio::Frame& frame) { on_frame(frame); });
}

void Mote::broadcast(radio::MsgType type,
                     std::shared_ptr<const radio::Payload> payload,
                     std::optional<double> range_limit) {
  medium_.send(
      radio::Frame{id_, std::nullopt, type, std::move(payload), range_limit});
}

void Mote::unicast(NodeId dst, radio::MsgType type,
                   std::shared_ptr<const radio::Payload> payload) {
  medium_.send(radio::Frame{id_, dst, type, std::move(payload)});
}

void Mote::set_handler(radio::MsgType type, FrameHandler handler) {
  auto& slot = handlers_[static_cast<std::size_t>(type)];
  assert(!slot && "each message type has exactly one owning service");
  slot = std::move(handler);
}

void Mote::on_frame(const radio::Frame& frame) {
  if (down_) return;
  const auto& handler = handlers_[static_cast<std::size_t>(frame.type)];
  if (!handler) return;  // no service interested: drop silently
  // Frame processing costs CPU; under overload the post fails and the frame
  // is effectively lost inside the node.
  cpu_.post_rx([handler, frame] { handler(frame); });
}

sim::EventHandle Mote::after(Duration delay, std::function<void()> fn) {
  // Timers are mote-owned events: stamping the id keeps canonical keys
  // identical no matter which engine (serial, or this mote's tile) runs the
  // scheduling code.
  return sim_.schedule_owned(static_cast<std::uint32_t>(id_.value()), delay,
                             [this, fn = std::move(fn)] {
                               if (!down_) cpu_.post_timer(fn);
                             });
}

sim::EventHandle Mote::every(Duration first_delay, Duration period,
                             std::function<void()> fn) {
  return sim_.schedule_periodic_owned(static_cast<std::uint32_t>(id_.value()),
                                      first_delay, period,
                                      [this, fn = std::move(fn)] {
                                        if (!down_) cpu_.post_timer(fn);
                                      });
}

}  // namespace et::node
