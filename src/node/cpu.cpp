#include "node/cpu.hpp"

#include <cassert>
#include <utility>

namespace et::node {

bool Cpu::post(Duration cost, std::function<void()> fn) {
  assert(!cost.is_negative());
  stats_.posted++;
  if (queue_.size() >= config_.queue_capacity) {
    stats_.dropped++;
    return false;
  }
  queue_.push_back(Task{cost, std::move(fn)});
  if (!running_) start_next();
  return true;
}

void Cpu::start_next() {
  if (queue_.empty()) {
    running_ = false;
    return;
  }
  running_ = true;
  Task task = std::move(queue_.front());
  queue_.pop_front();
  stats_.busy += task.cost;
  // The task's effects become visible when its service time elapses; the
  // next task then starts immediately (run-to-completion scheduling).
  sim_.schedule(task.cost, [this, fn = std::move(task.fn)]() {
    stats_.executed++;
    fn();
    start_next();
  });
}

}  // namespace et::node
