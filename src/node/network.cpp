#include "node/network.hpp"

namespace et::node {

MoteNetwork::MoteNetwork(sim::Simulator& sim, radio::Medium& medium,
                         env::Environment& env, const env::Field& field,
                         CpuConfig cpu_config, const SimSelector& selector) {
  motes_.reserve(field.size());
  for (std::size_t i = 0; i < field.size(); ++i) {
    const NodeId id{i};
    const Vec2 pos = field.position(id);
    sim::Simulator& mote_sim = selector ? selector(id, pos) : sim;
    motes_.push_back(
        std::make_unique<Mote>(mote_sim, medium, env, id, pos, cpu_config));
  }
}

}  // namespace et::node
