#include "node/network.hpp"

namespace et::node {

MoteNetwork::MoteNetwork(sim::Simulator& sim, radio::Medium& medium,
                         env::Environment& env, const env::Field& field,
                         CpuConfig cpu_config) {
  motes_.reserve(field.size());
  for (std::size_t i = 0; i < field.size(); ++i) {
    const NodeId id{i};
    motes_.push_back(std::make_unique<Mote>(sim, medium, env, id,
                                            field.position(id), cpu_config));
  }
}

}  // namespace et::node
