#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "sim/simulator.hpp"
#include "util/time.hpp"

/// The mote's processor, modelled after the TinyOS run-to-completion task
/// scheduler.
///
/// Every handler invocation (received frame, timer firing) is posted as a
/// task with a service-time cost; tasks execute sequentially from a bounded
/// queue. When load exceeds the processor's capacity the queue overflows and
/// tasks are dropped — this is the bottleneck the paper identifies in §6.2:
/// at very small heartbeat periods the maximum trackable speed *declines*,
/// and cross-traffic experiments show the cause is CPU processing, not
/// channel bandwidth.
namespace et::node {

struct CpuConfig {
  /// Service time for handling one received frame (protocol stack
  /// processing on a 4 MHz ATmega-class MCU is on the order of
  /// milliseconds).
  Duration rx_task_cost = Duration::millis(4);
  /// Service time for a timer-driven task (sensing + protocol step).
  Duration timer_task_cost = Duration::millis(2);
  /// TinyOS's task queue is small; overflow silently drops the post.
  std::size_t queue_capacity = 12;
};

class Cpu {
 public:
  struct Stats {
    std::uint64_t posted = 0;
    std::uint64_t executed = 0;
    std::uint64_t dropped = 0;  // queue overflow
    Duration busy = Duration::zero();
  };

  Cpu(sim::Simulator& sim, CpuConfig config)
      : sim_(sim), config_(config) {}

  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;

  /// Posts a task costing `cost` of CPU time. Returns false (and drops the
  /// task) when the queue is full.
  bool post(Duration cost, std::function<void()> fn);

  /// Convenience posts using the configured costs.
  bool post_rx(std::function<void()> fn) {
    return post(config_.rx_task_cost, std::move(fn));
  }
  bool post_timer(std::function<void()> fn) {
    return post(config_.timer_task_cost, std::move(fn));
  }

  bool busy() const { return running_; }
  std::size_t queue_depth() const { return queue_.size(); }
  const Stats& stats() const { return stats_; }
  const CpuConfig& config() const { return config_; }

 private:
  struct Task {
    Duration cost;
    std::function<void()> fn;
  };

  void start_next();

  sim::Simulator& sim_;
  CpuConfig config_;
  std::deque<Task> queue_;
  bool running_ = false;
  Stats stats_;
};

}  // namespace et::node
