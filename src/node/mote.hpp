#pragma once

#include <array>
#include <functional>
#include <string_view>

#include "env/environment.hpp"
#include "node/cpu.hpp"
#include "radio/medium.hpp"
#include "radio/packet.hpp"
#include "sim/simulator.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"

/// One sensor node.
///
/// A `Mote` wires together the substrate a middleware stack runs on: the
/// shared radio (frames in/out), the CPU task queue (every handler pays a
/// service-time cost), timers, the sensing hardware (delegating to the
/// `Environment` ground truth), and a per-node RNG stream. Middleware
/// services (group management, transport, directory) register one frame
/// handler per message type.
namespace et::node {

class Mote {
 public:
  using FrameHandler = std::function<void(const radio::Frame&)>;

  Mote(sim::Simulator& sim, radio::Medium& medium, env::Environment& env,
       NodeId id, Vec2 position, CpuConfig cpu_config = {});

  Mote(const Mote&) = delete;
  Mote& operator=(const Mote&) = delete;

  NodeId id() const { return id_; }
  Vec2 position() const { return position_; }
  /// Ambient virtual time: under the parallel kernel this mote's code can
  /// be driven either by its tile simulator or (for crash/reboot and other
  /// world-initiated calls) by the master, so "now" is whichever engine is
  /// executing on the calling thread.
  Time now() const { return sim::Simulator::ambient_now(sim_); }
  sim::Simulator& sim() { return sim_; }
  Cpu& cpu() { return cpu_; }
  const Cpu& cpu() const { return cpu_; }
  Rng& rng() { return rng_; }
  radio::Medium& medium() { return medium_; }
  env::Environment& environment() { return env_; }

  // --- Sensing hardware ---

  /// The sense_e() predicate evaluated against local hardware: does this
  /// mote currently sense a target of `type`?
  bool senses(std::string_view type) const {
    return !sensor_down_ && env_.senses(type, position_, now());
  }

  /// Scalar sensor reading ("magnetic", "temperature", ...).
  double read_sensor(std::string_view channel) const {
    return sensor_down_ ? 0.0 : env_.reading(channel, position_, now());
  }

  /// Fault injection: a dropped-out sensor reads zero and senses nothing,
  /// while the CPU and radio keep running — the mote behaves like one that
  /// simply stopped seeing its targets.
  void set_sensor_down(bool down) { sensor_down_ = down; }
  bool sensor_down() const { return sensor_down_; }

  // --- Radio ---

  /// Broadcasts `payload` to everyone in range. A `range_limit` below the
  /// medium's communication radius models reduced transmit power.
  void broadcast(radio::MsgType type,
                 std::shared_ptr<const radio::Payload> payload,
                 std::optional<double> range_limit = std::nullopt);

  /// Sends `payload` addressed to `dst` (must be a direct neighbour to be
  /// received; multi-hop delivery is the routing layer's job).
  void unicast(NodeId dst, radio::MsgType type,
               std::shared_ptr<const radio::Payload> payload);

  /// Registers the handler for one message type. At most one service owns
  /// each type.
  void set_handler(radio::MsgType type, FrameHandler handler);

  // --- Timers (all handler executions go through the CPU model) ---

  /// Runs `fn` as a timer task after `delay`.
  sim::EventHandle after(Duration delay, std::function<void()> fn);

  /// Runs `fn` as a timer task every `period` after `first_delay`.
  sim::EventHandle every(Duration first_delay, Duration period,
                         std::function<void()> fn);

  /// Entry point the medium calls on frame arrival; posts an rx task.
  void on_frame(const radio::Frame& frame);

  /// Failure injection: a down mote neither receives frames nor fires
  /// timer tasks. (Its already-transmitted frames are unaffected.)
  void set_down(bool down) { down_ = down; }
  bool is_down() const { return down_; }

  /// Brings a crashed mote back up. Frame handlers survive (they are the
  /// node's program image, not volatile state); it is the middleware's
  /// reboot path that resets service state and re-arms timers.
  void reboot() { down_ = false; }

 private:
  sim::Simulator& sim_;
  radio::Medium& medium_;
  env::Environment& env_;
  NodeId id_;
  Vec2 position_;
  Cpu cpu_;
  Rng rng_;
  bool down_ = false;
  bool sensor_down_ = false;
  std::array<FrameHandler, radio::kMsgTypeCount> handlers_{};
};

}  // namespace et::node
