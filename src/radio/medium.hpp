#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "radio/packet.hpp"
#include "radio/stats.hpp"
#include "sim/simulator.hpp"
#include "util/geometry.hpp"
#include "util/rng.hpp"

/// The shared wireless channel.
///
/// Models the MICA mote radio as the paper's experiments exercised it:
///  - local broadcast within a fixed communication radius,
///  - a single shared 50 kb/s channel,
///  - CSMA with random backoff and *no* link-layer reliability ("no
///    reliability is implemented in the MAC layer of the MICA motes"),
///  - losses from both collisions (overlapping audible transmissions,
///    hidden terminals included) and independent per-receiver noise,
///  - half-duplex endpoints (a transmitting node hears nothing).
///
/// Performance: endpoint positions are indexed in a uniform grid with cell
/// size = comm_radius, so broadcast delivery, neighbour queries and carrier
/// sense visit only the 3x3 cell neighbourhood around a point — O(nodes in
/// range), independent of network size. Carrier sense additionally scans
/// only the currently-airing transmissions, and the interference history is
/// pruned by the longest observed frame airtime. Results are bit-identical
/// to the brute-force path (`RadioConfig::use_spatial_index = false`):
/// candidate receivers are visited in ascending node-id order either way,
/// so the RNG stream is consumed identically.
namespace et::radio {

/// Gilbert–Elliott burst-loss channel model: every receiver carries a
/// two-state (Good/Bad) continuous-time Markov chain, sampled at each
/// delivery attempt, and the random-loss probability depends on the
/// state. Real MICA-class links lose frames in bursts (interference,
/// fading, a neighbour walking past), which stresses heartbeat timeouts
/// far harder than the same average loss spread i.i.d. — a burst longer
/// than the receive timeout looks exactly like a dead leader. When
/// disabled the i.i.d. `loss_probability` path is used and no extra RNG
/// draws are consumed, so existing runs are bit-identical.
struct BurstLossConfig {
  bool enabled = false;
  /// Mean sojourn time in the Good (quiet) state.
  Duration mean_good = Duration::seconds(4);
  /// Mean sojourn time in the Bad (burst) state. Bursts approaching the
  /// receive timeout (2.1 x heartbeat period) are what break takeover.
  Duration mean_bad = Duration::millis(400);
  /// Per-frame loss probability while the receiver's chain is Good.
  double loss_good = 0.01;
  /// Per-frame loss probability while the chain is Bad.
  double loss_bad = 0.6;
};

struct RadioConfig {
  /// Communication radius in grid units (paper stress tests fix it at 6).
  double comm_radius = 6.0;
  /// Channel capacity; 50 kb/s for MICA motes.
  double bitrate_bps = 50'000.0;
  /// Independent per-(receiver, frame) loss probability, modelling ambient
  /// noise / fading the collision model does not capture. Ignored when the
  /// burst-loss model is enabled (it owns the random-loss draw then).
  double loss_probability = 0.05;
  /// Optional bursty replacement for the i.i.d. random loss above.
  BurstLossConfig burst_loss;
  /// Link-layer header added to every payload (TinyOS AM-style).
  std::size_t header_bytes = 7;
  /// CSMA backoff slot; actual backoff is uniform over an exponentially
  /// growing window of slots.
  Duration backoff_slot = Duration::millis(2);
  /// Probability that a sender misses an ongoing transmission during
  /// carrier sense (the MICA radio's CSMA is imperfect); a missed sense
  /// transmits anyway and collides at shared receivers. Protocol churn —
  /// e.g. handover bursts at higher target speeds — therefore translates
  /// into collision loss.
  double carrier_sense_miss = 0.1;
  /// Backoff attempts before the MAC drops the frame.
  int max_backoff_attempts = 8;
  /// Outgoing frame queue per node; overflow drops the newest frame.
  std::size_t tx_queue_capacity = 16;
  /// Wide-window canonical semantics (see KernelConfig::wide_windows): the
  /// latency between a mote handing a frame to the radio stack and the MAC
  /// taking it over (serialising the frame into the transceiver FIFO), as a
  /// multiple of the minimum frame airtime. Only applied in canonical
  /// order with wide windows on; the serial oracle and the parallel kernel
  /// apply it identically.
  double mac_handoff_airtimes = 2.0;
  /// Completion-to-receiver handoff latency (FIFO drain + rx dispatch) as a
  /// multiple of the minimum frame airtime, wide-window canonical mode.
  /// Narrow canonical mode always uses exactly one airtime (the original
  /// conservative lookahead); values below 1 are clamped to 1.
  double rx_handoff_airtimes = 3.0;
  /// Broadcasts with at least this many candidate receivers are sampled on
  /// the parallel kernel's worker pool (sharded by receiving tile) instead
  /// of serially on the master. Outcomes are identical either way — the
  /// threshold only trades barrier overhead against fan-out width.
  std::size_t fanout_min_receivers = 64;
  /// Disable to study the pure random-loss channel.
  bool model_collisions = true;
  /// Route geometric queries through the uniform grid index. The
  /// brute-force O(N)-scan path is kept as the reference for equivalence
  /// tests; both produce bit-identical runs.
  bool use_spatial_index = true;
};

class Medium {
 public:
  /// Invoked when a frame is successfully received by a node. In the legacy
  /// event order it runs at the simulated instant the last bit arrives; in
  /// canonical order (see enable_canonical) it runs one minimum airtime
  /// later — the fixed rx-handoff latency that gives the parallel kernel
  /// its conservative lookahead.
  using Receiver = std::function<void(const Frame&)>;

  Medium(sim::Simulator& sim, RadioConfig config);

  Medium(const Medium&) = delete;
  Medium& operator=(const Medium&) = delete;

  /// Airtime of the smallest possible frame (bare link-layer header). This
  /// is the kernel's lookahead bound: no transmission handed to the MAC at
  /// time t can be heard before t + min_airtime().
  Duration min_airtime() const;

  /// Switches the medium to canonical event order: sends and receiver
  /// toggles issued from mote context are deferred as channel ops, medium
  /// internals are channel-owned events, and successful receptions are
  /// handed to the receiver's simulator (`sim_of`) rx_latency() after the
  /// transmission completes. Used by both the serial canonical oracle
  /// (sim_of returns the master) and the parallel kernel (sim_of returns
  /// the receiver's tile). With `wide_windows` the MAC-handoff and
  /// rx-handoff latencies from RadioConfig apply (identically on both
  /// engines); off keeps the original semantics: zero MAC entry latency
  /// and exactly one min_airtime() of rx handoff.
  void enable_canonical(std::function<sim::Simulator&(NodeId)> sim_of,
                        bool wide_windows = false);

  /// Latency between a mote-context send() and the MAC accepting the frame
  /// (canonical order; zero unless wide windows are on).
  Duration tx_handoff() const { return tx_handoff_; }
  /// Completion-to-receiver handoff latency (canonical order).
  Duration rx_latency() const { return rx_latency_; }

  /// Parallel fan-out hook. When set, canonical broadcast deliveries with
  /// at least RadioConfig::fanout_min_receivers candidates are sharded into
  /// per-tile groups and `exec(n_groups, n_receivers, body)` must invoke
  /// `body(g)` exactly once for every g in [0, n_groups) — concurrently if
  /// it likes; groups touch disjoint endpoint and tile-queue state, and
  /// outcomes are order-independent by construction (per-receiver RNG
  /// streams, pre-assigned reception keys).
  using FanoutExec = std::function<void(
      std::size_t n_groups, std::size_t n_receivers,
      const std::function<void(std::size_t)>& body)>;
  void set_fanout_executor(FanoutExec exec) { fanout_exec_ = std::move(exec); }

  /// Window-planner feed (canonical order): appends one (earliest possible
  /// completion time, source position) entry per transmission currently on
  /// the air and per scheduled MAC wakeup (pending backoff retry or
  /// post-frame turnaround — either may start a new transmission when it
  /// fires, which cannot complete before wakeup + min_airtime()). Together
  /// with the pending radio ops tracked by the kernel these are every
  /// source from which a future reception can originate.
  void collect_channel_constraints(
      std::vector<std::pair<Time, Vec2>>& out) const;

  /// Registers a node. Ids must be dense from 0 and attached in order.
  void attach(NodeId id, Vec2 position, Receiver receiver);

  std::size_t node_count() const { return endpoints_.size(); }
  Vec2 position_of(NodeId id) const { return endpoints_[id.value()].pos; }

  /// Per-node radio activity, the basis of energy accounting.
  struct EndpointStats {
    std::uint64_t frames_sent = 0;
    std::uint64_t frames_received = 0;
    std::uint64_t bits_sent = 0;
    std::uint64_t bits_received = 0;
    /// Time spent with the receiver powered down (duty cycling).
    Duration radio_off = Duration::zero();
  };
  const EndpointStats& endpoint_stats(NodeId id) const {
    return endpoints_[id.value()].stats;
  }

  /// Powers a node's receiver down/up (duty cycling). A sleeping receiver
  /// hears nothing — frames addressed to it are lost like any other — but
  /// the node can still transmit (the radio wakes for the send).
  void set_receiver_enabled(NodeId id, bool enabled);
  bool receiver_enabled(NodeId id) const {
    return endpoints_[id.value()].receiver_enabled;
  }

  /// Fault injection: a blacked-out radio neither transmits (frames handed
  /// to the MAC are dropped) nor receives, while the node's CPU, timers and
  /// sensors keep running — a transient RF outage rather than a node crash.
  /// A frame already on the air when the blackout starts still completes.
  void set_node_blackout(NodeId id, bool blackout) {
    endpoints_[id.value()].blackout = blackout;
  }
  bool node_blackout(NodeId id) const {
    return endpoints_[id.value()].blackout;
  }

  /// Fault injection: splits the network into isolated reachability
  /// components. `component_of[node]` assigns each node a component id;
  /// frames (and interference, and carrier sense) cross component
  /// boundaries in neither direction — RF isolation, as if a wall dropped
  /// between the groups. An empty vector heals the partition.
  void set_partition(std::vector<std::uint32_t> component_of);
  void clear_partition() { set_partition({}); }
  bool partitioned() const { return !partition_of_.empty(); }
  /// Component id of `id` (0 for every node when unpartitioned).
  std::uint32_t partition_component(NodeId id) const {
    return partition_of_.empty() ? 0u : partition_of_[id.value()];
  }
  bool same_partition(NodeId a, NodeId b) const {
    return partition_of_.empty() ||
           partition_of_[a.value()] == partition_of_[b.value()];
  }
  /// Bumped on every set_partition/clear_partition; lets observers (the
  /// invariant oracle) cheaply detect topology changes.
  std::uint64_t partition_version() const { return partition_version_; }

  /// Total receiver-off time including a currently-open sleep interval.
  Duration radio_off_total(NodeId id) const {
    const Endpoint& ep = endpoints_[id.value()];
    Duration off = ep.stats.radio_off;
    if (!ep.receiver_enabled) off += sim_.now() - ep.receiver_off_since;
    return off;
  }

  /// Hands a frame to the sender's MAC. May transmit immediately, back off,
  /// or drop (queue overflow / backoff exhaustion).
  void send(Frame frame);

  /// Carrier sense at `id`: is any transmission currently audible?
  bool channel_busy_at(NodeId id) const;

  /// Nodes within the communication radius of `id`, excluding `id`, in
  /// ascending id order.
  std::vector<NodeId> neighbors(NodeId id) const;

  bool in_range(NodeId a, NodeId b) const {
    return within_radius(endpoints_[a.value()].pos, endpoints_[b.value()].pos,
                         config_.comm_radius);
  }

  const RadioConfig& config() const { return config_; }
  const MediumStats& stats() const { return stats_; }
  void reset_stats() { stats_ = MediumStats{}; }

  /// Transmissions currently on the air (diagnostics / tests).
  std::size_t active_transmissions() const { return active_.size(); }
  /// Completed-transmission records retained for interference checks
  /// (diagnostics / tests; see prune_history()).
  std::size_t history_size() const { return history_.size(); }

 private:
  struct Endpoint {
    Vec2 pos;
    Receiver recv;
    std::deque<Frame> queue;
    /// The frame currently on the air, parked here so the completion event
    /// closure stays small enough for the event queue's inline storage.
    std::optional<Frame> in_flight;
    bool transmitting = false;
    bool backoff_pending = false;
    int backoff_attempts = 0;
    bool receiver_enabled = true;
    Time receiver_off_since;
    bool blackout = false;
    /// Gilbert–Elliott burst-loss chain (per receiver): current state and
    /// when it was last sampled.
    bool burst_bad = false;
    Time burst_sampled_at;
    /// Canonical order: this receiver's private loss stream (burst chain
    /// and loss draws), forked per node so delivery outcomes do not depend
    /// on the order receivers are sampled in — the property that makes the
    /// parallel fan-out trivially equivalent to the serial loop. Legacy
    /// order keeps the medium-wide stream for seed compatibility.
    Rng rx_rng{0};
    EndpointStats stats;
  };

  /// One on-air (or recently completed) transmission, kept for overlap
  /// checks against later-starting transmissions.
  struct Transmission {
    std::uint64_t tx_id;
    NodeId src;
    Vec2 pos;
    Time start;
    Time end;
  };

  Duration airtime_of(const Frame& frame) const;
  void send_now(Frame frame);
  void set_receiver_enabled_now(NodeId id, bool enabled);
  void try_send(NodeId id);
  void begin_transmission(NodeId id);
  void complete_transmission(NodeId id, Time start, Time end,
                             std::uint64_t tx_id);
  void deliver(const Frame& frame, Time start, Time end, std::uint64_t tx_id);
  bool audible_at(Vec2 receiver_pos, Vec2 tx_pos) const {
    return within_radius(tx_pos, receiver_pos, config_.comm_radius);
  }
  /// True when some other transmission overlapping [start, end] is audible
  /// at `pos` (collision), or the receiver itself transmitted then.
  bool corrupted_at(NodeId receiver, Time start, Time end,
                    std::uint64_t tx_id) const;
  /// Advances `receiver`'s Gilbert–Elliott chain to now() (exact two-state
  /// CTMC transition over the elapsed interval, one draw from `rng`) and
  /// returns whether the chain is in the Bad state. Burst loss must be
  /// enabled. Canonical order passes the receiver's own stream; legacy
  /// passes the shared medium stream.
  bool sample_burst_state(NodeId receiver, Rng& rng);
  void prune_history();

  /// Per-delivery outcome tallies, accumulated per fan-out group and summed
  /// into MediumStats afterwards so concurrent groups never touch shared
  /// counters.
  struct ScatterStats {
    std::uint64_t attempts = 0;
    std::uint64_t delivered = 0;
    std::uint64_t lost_collision = 0;
    std::uint64_t lost_random = 0;
    std::uint64_t lost_burst = 0;
    std::uint64_t blocked_partition = 0;
  };
  /// Canonical delivery attempt for candidate `k` of the current batch:
  /// samples the receiver's own RNG stream, and on success schedules the
  /// reception into the receiver's simulator at the pre-assigned key
  /// (handoff, kChannelRank, seq_base + k). Touches only the receiver's
  /// endpoint, the receiver's tile queue and `acc` — safe to run
  /// concurrently for receivers on different tiles.
  void attempt_canonical(std::uint32_t k,
                         const std::vector<std::uint32_t>& candidates,
                         const Frame& frame, Time start, Time end,
                         std::uint64_t tx_id, Time handoff,
                         std::uint64_t seq_base, ScatterStats& acc);

  /// Pending MAC wakeups (backoff expiries, post-frame turnarounds),
  /// maintained only in canonical order for collect_channel_constraints().
  void note_mac_wakeup(Time at, NodeId id);
  void clear_mac_wakeup(NodeId id);

  // --- Spatial index (uniform grid, cell size = comm_radius) ---

  static std::uint64_t cell_key(std::int32_t cx, std::int32_t cy) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
           static_cast<std::uint32_t>(cy);
  }
  std::int32_t cell_coord(double v) const;
  /// Invokes `fn(endpoint index)` for every node in the 3x3 cell block
  /// around `center` — a superset of every disc of radius <= comm_radius.
  template <typename Fn>
  void for_each_nearby(Vec2 center, Fn&& fn) const;
  /// Collects ids within `radius` of `center` (excluding `exclude`) into
  /// `out`, ascending. `out` is cleared first.
  void gather_in_radius(Vec2 center, double radius, std::uint64_t exclude,
                        std::vector<std::uint32_t>& out) const;

  sim::Simulator& sim_;
  RadioConfig config_;
  Rng rng_;
  /// Canonical order: routes receptions to the owning simulator. Unset in
  /// legacy mode.
  std::function<sim::Simulator&(NodeId)> sim_of_;
  bool canonical_ = false;
  /// Completion-to-receiver handoff latency in canonical order
  /// (>= min_airtime(); zero in legacy mode).
  Duration rx_latency_ = Duration::zero();
  /// Mote-send to MAC-entry latency (wide-window canonical order only).
  Duration tx_handoff_ = Duration::zero();
  FanoutExec fanout_exec_;
  /// Scheduled backoff/turnaround wakeups as (fire time, endpoint index);
  /// unsorted, removed when they fire. Canonical order only. At most one
  /// per endpoint (the MAC is idle-or-backing-off per node).
  std::vector<std::pair<Time, std::uint32_t>> mac_wakeups_;
  /// Fan-out scratch (capacity recycled): candidate indices grouped by
  /// receiving simulator, the group -> simulator map, and per-group stats.
  std::vector<std::vector<std::uint32_t>> fanout_groups_;
  std::vector<sim::Simulator*> fanout_group_sims_;
  std::vector<ScatterStats> fanout_stats_;
  std::vector<Endpoint> endpoints_;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> grid_;
  /// Capacity-recycled candidate buffer for deliver(): swapped into a local
  /// so re-entrant queries from receiver callbacks cannot clobber the list
  /// it is iterating. neighbors() uses a thread-local buffer instead, since
  /// motes on different tiles of the parallel kernel query concurrently.
  std::vector<std::uint32_t> deliver_scratch_;
  std::vector<Transmission> active_;   // currently airing
  std::vector<Transmission> history_;  // recent + active transmissions
  /// Longest airtime ever put on the air; bounds how far back a future
  /// delivery's interference window can reach (prune cutoff).
  Duration max_airtime_ = Duration::zero();
  std::uint64_t next_tx_id_ = 0;
  /// Partition component per node; empty = fully connected.
  std::vector<std::uint32_t> partition_of_;
  std::uint64_t partition_version_ = 0;
  MediumStats stats_;
};

}  // namespace et::radio
