#pragma once

#include <deque>
#include <functional>
#include <vector>

#include "radio/packet.hpp"
#include "radio/stats.hpp"
#include "sim/simulator.hpp"
#include "util/geometry.hpp"
#include "util/rng.hpp"

/// The shared wireless channel.
///
/// Models the MICA mote radio as the paper's experiments exercised it:
///  - local broadcast within a fixed communication radius,
///  - a single shared 50 kb/s channel,
///  - CSMA with random backoff and *no* link-layer reliability ("no
///    reliability is implemented in the MAC layer of the MICA motes"),
///  - losses from both collisions (overlapping audible transmissions,
///    hidden terminals included) and independent per-receiver noise,
///  - half-duplex endpoints (a transmitting node hears nothing).
namespace et::radio {

struct RadioConfig {
  /// Communication radius in grid units (paper stress tests fix it at 6).
  double comm_radius = 6.0;
  /// Channel capacity; 50 kb/s for MICA motes.
  double bitrate_bps = 50'000.0;
  /// Independent per-(receiver, frame) loss probability, modelling ambient
  /// noise / fading the collision model does not capture.
  double loss_probability = 0.05;
  /// Link-layer header added to every payload (TinyOS AM-style).
  std::size_t header_bytes = 7;
  /// CSMA backoff slot; actual backoff is uniform over an exponentially
  /// growing window of slots.
  Duration backoff_slot = Duration::millis(2);
  /// Probability that a sender misses an ongoing transmission during
  /// carrier sense (the MICA radio's CSMA is imperfect); a missed sense
  /// transmits anyway and collides at shared receivers. Protocol churn —
  /// e.g. handover bursts at higher target speeds — therefore translates
  /// into collision loss.
  double carrier_sense_miss = 0.1;
  /// Backoff attempts before the MAC drops the frame.
  int max_backoff_attempts = 8;
  /// Outgoing frame queue per node; overflow drops the newest frame.
  std::size_t tx_queue_capacity = 16;
  /// Disable to study the pure random-loss channel.
  bool model_collisions = true;
};

class Medium {
 public:
  /// Invoked when a frame is successfully received by a node. Runs at the
  /// simulated instant the last bit arrives.
  using Receiver = std::function<void(const Frame&)>;

  Medium(sim::Simulator& sim, RadioConfig config);

  Medium(const Medium&) = delete;
  Medium& operator=(const Medium&) = delete;

  /// Registers a node. Ids must be dense from 0 and attached in order.
  void attach(NodeId id, Vec2 position, Receiver receiver);

  std::size_t node_count() const { return endpoints_.size(); }
  Vec2 position_of(NodeId id) const { return endpoints_[id.value()].pos; }

  /// Per-node radio activity, the basis of energy accounting.
  struct EndpointStats {
    std::uint64_t frames_sent = 0;
    std::uint64_t frames_received = 0;
    std::uint64_t bits_sent = 0;
    std::uint64_t bits_received = 0;
    /// Time spent with the receiver powered down (duty cycling).
    Duration radio_off = Duration::zero();
  };
  const EndpointStats& endpoint_stats(NodeId id) const {
    return endpoints_[id.value()].stats;
  }

  /// Powers a node's receiver down/up (duty cycling). A sleeping receiver
  /// hears nothing — frames addressed to it are lost like any other — but
  /// the node can still transmit (the radio wakes for the send).
  void set_receiver_enabled(NodeId id, bool enabled);
  bool receiver_enabled(NodeId id) const {
    return endpoints_[id.value()].receiver_enabled;
  }

  /// Total receiver-off time including a currently-open sleep interval.
  Duration radio_off_total(NodeId id) const {
    const Endpoint& ep = endpoints_[id.value()];
    Duration off = ep.stats.radio_off;
    if (!ep.receiver_enabled) off += sim_.now() - ep.receiver_off_since;
    return off;
  }

  /// Hands a frame to the sender's MAC. May transmit immediately, back off,
  /// or drop (queue overflow / backoff exhaustion).
  void send(Frame frame);

  /// Carrier sense at `id`: is any transmission currently audible?
  bool channel_busy_at(NodeId id) const;

  /// Nodes within the communication radius of `id`, excluding `id`.
  std::vector<NodeId> neighbors(NodeId id) const;

  bool in_range(NodeId a, NodeId b) const {
    return within_radius(endpoints_[a.value()].pos, endpoints_[b.value()].pos,
                         config_.comm_radius);
  }

  const RadioConfig& config() const { return config_; }
  const MediumStats& stats() const { return stats_; }
  void reset_stats() { stats_ = MediumStats{}; }

 private:
  struct Endpoint {
    Vec2 pos;
    Receiver recv;
    std::deque<Frame> queue;
    bool transmitting = false;
    bool backoff_pending = false;
    int backoff_attempts = 0;
    bool receiver_enabled = true;
    Time receiver_off_since;
    EndpointStats stats;
  };

  /// One on-air (or recently completed) transmission, kept for overlap
  /// checks against later-starting transmissions.
  struct Transmission {
    std::uint64_t tx_id;
    NodeId src;
    Vec2 pos;
    Time start;
    Time end;
  };

  Duration airtime_of(const Frame& frame) const;
  void try_send(NodeId id);
  void begin_transmission(NodeId id);
  void complete_transmission(NodeId id, Frame frame, Time start, Time end,
                             std::uint64_t tx_id);
  void deliver(const Frame& frame, Time start, Time end, std::uint64_t tx_id);
  bool audible_at(Vec2 receiver_pos, Vec2 tx_pos) const {
    return within_radius(tx_pos, receiver_pos, config_.comm_radius);
  }
  /// True when some other transmission overlapping [start, end] is audible
  /// at `pos` (collision), or the receiver itself transmitted then.
  bool corrupted_at(NodeId receiver, Time start, Time end,
                    std::uint64_t tx_id) const;
  void prune_history();

  sim::Simulator& sim_;
  RadioConfig config_;
  Rng rng_;
  std::vector<Endpoint> endpoints_;
  std::vector<Transmission> history_;  // recent + active transmissions
  std::uint64_t next_tx_id_ = 0;
  MediumStats stats_;
};

}  // namespace et::radio
