#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "util/ids.hpp"

/// Frames exchanged over the wireless medium.
///
/// The simulator does not serialize protocol messages to bytes; payloads are
/// shared immutable C++ objects carrying a self-reported wire size used for
/// airtime and utilization accounting (MICA motes: 50 kb/s shared channel).
namespace et::radio {

/// Message type tags, used for handler dispatch and per-type loss
/// statistics (Table 1 reports heartbeat loss and data-message loss
/// separately).
enum class MsgType : std::uint16_t {
  kHeartbeat,     // group-management leader heartbeat (§5.2)
  kReport,        // member -> leader sensor reading (§3.2.3)
  kRelinquish,    // leader gives up leadership (§5.2)
  kDirUpdate,     // context label -> directory location update (§5.3)
  kDirQuery,      // "where are all the fires?" (§5.3)
  kDirReply,      // directory answer
  kDirFence,      // directory -> stale leader: a higher epoch is registered
  kMtpData,       // transport-layer remote method invocation (§5.4)
  kMtpAck,        // end-to-end acknowledgement of kMtpData (reliable mode)
  kRoute,         // geographic-routing encapsulation (multi-hop relay)
  kRouteAck,      // per-hop acknowledgement of kRoute
  kCrossTraffic,  // background noise generator (§6.2 bottleneck test)
  kUser,          // application-defined
};

inline constexpr std::size_t kMsgTypeCount = 13;

const char* msg_type_name(MsgType type);

/// Base class of every protocol payload. Payloads are immutable once sent;
/// the medium shares one instance among all receivers.
class Payload {
 public:
  virtual ~Payload() = default;

  /// Serialized size this message would have on the air, excluding the
  /// link-layer header (added by the medium). Drives airtime/utilization.
  virtual std::size_t size_bytes() const = 0;
};

/// A link-layer frame: one local-broadcast transmission. `dst` filters
/// which receivers hand the frame up their stack; physically every node in
/// range hears it (and the group-management layer exploits that for
/// perimeter snooping).
struct Frame {
  NodeId src;
  std::optional<NodeId> dst;  // nullopt = broadcast
  MsgType type = MsgType::kUser;
  std::shared_ptr<const Payload> payload = nullptr;
  /// Transmit-power control: when set, receivers beyond this distance do
  /// not hear the frame (used to study heartbeat propagation ranges,
  /// Fig. 4). Never exceeds the medium's communication radius.
  std::optional<double> range_limit = std::nullopt;

  bool is_broadcast() const { return !dst.has_value(); }
};

}  // namespace et::radio
