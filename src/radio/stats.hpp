#pragma once

#include <array>
#include <cstdint>

#include "radio/packet.hpp"
#include "util/time.hpp"

/// Channel statistics backing Table 1 of the paper (% HB loss, % msg loss,
/// % link utilization).
namespace et::radio {

/// Counters for one message type.
struct TypeStats {
  /// Frames handed to the MAC by the application stack.
  std::uint64_t offered = 0;
  /// Frames that made it onto the air (survived CSMA backoff limits).
  std::uint64_t transmitted = 0;
  /// Frames dropped by the MAC (queue overflow or backoff exhaustion).
  std::uint64_t mac_dropped = 0;
  /// Broadcast frames received by nobody / unicast frames not received by
  /// their destination — the paper's "sent but never received on any other
  /// mote" loss measure.
  std::uint64_t lost = 0;
  /// (receiver, frame) pairs where the receiver was in range.
  std::uint64_t pair_attempts = 0;
  std::uint64_t pair_delivered = 0;
  std::uint64_t pair_lost_collision = 0;
  std::uint64_t pair_lost_random = 0;
  /// Losses drawn while the receiver's Gilbert–Elliott chain was in the Bad
  /// (burst) state; Good-state losses count as pair_lost_random.
  std::uint64_t pair_lost_burst = 0;
  /// In-range (receiver, frame) pairs suppressed because the two nodes were
  /// in different partition components (fault injection). Not counted as
  /// pair_attempts: a partitioned pair is effectively out of range.
  std::uint64_t pair_blocked_partition = 0;

  /// Fraction of sent frames that were lost (never received where it
  /// mattered). Returns 0 when nothing was sent.
  double loss_rate() const {
    const std::uint64_t sent = transmitted;
    return sent == 0 ? 0.0
                     : static_cast<double>(lost) / static_cast<double>(sent);
  }

  /// Per-(receiver, frame) loss fraction — the per-link loss a given
  /// receiver experiences. For unicast traffic this equals loss_rate().
  double pair_loss_rate() const {
    return pair_attempts == 0
               ? 0.0
               : static_cast<double>(pair_attempts - pair_delivered) /
                     static_cast<double>(pair_attempts);
  }
};

struct MediumStats {
  /// Total payload+header bits put on the air.
  std::uint64_t bits_sent = 0;
  /// Aggregate airtime of all transmissions.
  Duration airtime = Duration::zero();

  std::array<TypeStats, kMsgTypeCount> by_type{};

  TypeStats& of(MsgType type) { return by_type[static_cast<std::size_t>(type)]; }
  const TypeStats& of(MsgType type) const {
    return by_type[static_cast<std::size_t>(type)];
  }

  TypeStats totals() const {
    TypeStats t;
    for (const auto& s : by_type) {
      t.offered += s.offered;
      t.transmitted += s.transmitted;
      t.mac_dropped += s.mac_dropped;
      t.lost += s.lost;
      t.pair_attempts += s.pair_attempts;
      t.pair_delivered += s.pair_delivered;
      t.pair_lost_collision += s.pair_lost_collision;
      t.pair_lost_random += s.pair_lost_random;
      t.pair_lost_burst += s.pair_lost_burst;
      t.pair_blocked_partition += s.pair_blocked_partition;
    }
    return t;
  }

  /// Worst-case link utilization over `elapsed`: total bits sent divided by
  /// channel capacity, assuming a pure broadcast model in which no two
  /// messages can be sent concurrently — exactly how the paper computes its
  /// "Link Util" column.
  double link_utilization(Duration elapsed, double bitrate_bps) const {
    const double secs = elapsed.to_seconds();
    if (secs <= 0.0) return 0.0;
    return static_cast<double>(bits_sent) / (bitrate_bps * secs);
  }
};

}  // namespace et::radio
