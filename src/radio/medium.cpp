#include "radio/medium.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>

#include "util/log.hpp"

namespace et::radio {

namespace {
constexpr const char* kComponent = "radio";
}

const char* msg_type_name(MsgType type) {
  switch (type) {
    case MsgType::kHeartbeat:
      return "heartbeat";
    case MsgType::kReport:
      return "report";
    case MsgType::kRelinquish:
      return "relinquish";
    case MsgType::kDirUpdate:
      return "dir-update";
    case MsgType::kDirQuery:
      return "dir-query";
    case MsgType::kDirReply:
      return "dir-reply";
    case MsgType::kDirFence:
      return "dir-fence";
    case MsgType::kMtpData:
      return "mtp-data";
    case MsgType::kMtpAck:
      return "mtp-ack";
    case MsgType::kRoute:
      return "route";
    case MsgType::kRouteAck:
      return "route-ack";
    case MsgType::kCrossTraffic:
      return "cross-traffic";
    case MsgType::kUser:
      return "user";
  }
  return "?";
}

Medium::Medium(sim::Simulator& sim, RadioConfig config)
    : sim_(sim), config_(config), rng_(sim.make_rng("radio-medium")) {
  assert(config_.comm_radius > 0.0);
  assert(config_.bitrate_bps > 0.0);
}

Duration Medium::min_airtime() const {
  return Duration::seconds(static_cast<double>(config_.header_bytes) * 8.0 /
                           config_.bitrate_bps);
}

void Medium::enable_canonical(std::function<sim::Simulator&(NodeId)> sim_of,
                              bool wide_windows) {
  assert(sim_of);
  canonical_ = true;
  sim_of_ = std::move(sim_of);
  const Duration airtime = min_airtime();
  if (wide_windows) {
    // Wide-window semantics: both latencies are multiples of the minimum
    // airtime. rx below one airtime would break the kernel's conservative
    // floor, so it clamps; a negative MAC handoff is meaningless.
    rx_latency_ = airtime * std::max(1.0, config_.rx_handoff_airtimes);
    tx_handoff_ = airtime * std::max(0.0, config_.mac_handoff_airtimes);
  } else {
    rx_latency_ = airtime;
    tx_handoff_ = Duration::zero();
  }
  assert(rx_latency_.is_positive());
}

std::int32_t Medium::cell_coord(double v) const {
  return static_cast<std::int32_t>(std::floor(v / config_.comm_radius));
}

template <typename Fn>
void Medium::for_each_nearby(Vec2 center, Fn&& fn) const {
  const std::int32_t cx = cell_coord(center.x);
  const std::int32_t cy = cell_coord(center.y);
  for (std::int32_t dx = -1; dx <= 1; ++dx) {
    for (std::int32_t dy = -1; dy <= 1; ++dy) {
      const auto it = grid_.find(cell_key(cx + dx, cy + dy));
      if (it == grid_.end()) continue;
      for (std::uint32_t idx : it->second) fn(idx);
    }
  }
}

void Medium::gather_in_radius(Vec2 center, double radius,
                              std::uint64_t exclude,
                              std::vector<std::uint32_t>& out) const {
  out.clear();
  // Resolve the 3x3 cell block once, so the candidate count is known before
  // the scan and `out` grows in a single reserve instead of doubling
  // through push_back.
  const std::int32_t cx = cell_coord(center.x);
  const std::int32_t cy = cell_coord(center.y);
  const std::vector<std::uint32_t>* cells[9];
  int n_cells = 0;
  std::size_t candidates = 0;
  for (std::int32_t dx = -1; dx <= 1; ++dx) {
    for (std::int32_t dy = -1; dy <= 1; ++dy) {
      const auto it = grid_.find(cell_key(cx + dx, cy + dy));
      if (it == grid_.end()) continue;
      cells[n_cells++] = &it->second;
      candidates += it->second.size();
    }
  }
  out.reserve(candidates);
  for (int c = 0; c < n_cells; ++c) {
    for (std::uint32_t idx : *cells[c]) {
      if (idx == exclude) continue;
      if (within_radius(center, endpoints_[idx].pos, radius)) {
        out.push_back(idx);
      }
    }
  }
  // Ascending id order keeps delivery — and therefore per-receiver RNG
  // consumption — bit-identical with the brute-force scan.
  std::sort(out.begin(), out.end());
}

void Medium::attach(NodeId id, Vec2 position, Receiver receiver) {
  assert(id.value() == endpoints_.size() &&
         "nodes must be attached densely in id order");
  Endpoint endpoint;
  endpoint.pos = position;
  endpoint.recv = std::move(receiver);
  endpoint.rx_rng = sim_.make_rng("radio-rx-" + std::to_string(id.value()));
  endpoints_.push_back(std::move(endpoint));
  grid_[cell_key(cell_coord(position.x), cell_coord(position.y))].push_back(
      static_cast<std::uint32_t>(id.value()));
}

Duration Medium::airtime_of(const Frame& frame) const {
  const std::size_t bytes =
      config_.header_bytes + (frame.payload ? frame.payload->size_bytes() : 0);
  return Duration::seconds(static_cast<double>(bytes) * 8.0 /
                           config_.bitrate_bps);
}

void Medium::send(Frame frame) {
  assert(frame.src.value() < endpoints_.size());
  assert(frame.payload != nullptr);
  if (canonical_) {
    // Mote context may be running on a tile thread; hand the whole MAC
    // entry (stats included) over as a channel op so all medium state stays
    // master-confined and ops replay in canonical issue order. The op is
    // keyed tx_handoff() after the send — the wide-window MAC-entry
    // latency (zero in narrow mode) — and flagged as a send so the window
    // planner can track it as a pending transmission source.
    sim_.post_radio_op(tx_handoff_, [this, frame = std::move(frame)]() mutable {
      send_now(std::move(frame));
    });
    return;
  }
  send_now(std::move(frame));
}

void Medium::send_now(Frame frame) {
  const NodeId src = frame.src;
  Endpoint& ep = endpoints_[src.value()];
  stats_.of(frame.type).offered++;
  if (ep.blackout) {
    // The RF front-end is out; the MAC accepts the frame and it goes
    // nowhere, exactly like a backoff-exhausted drop.
    stats_.of(frame.type).mac_dropped++;
    return;
  }
  if (ep.queue.size() >= config_.tx_queue_capacity) {
    stats_.of(frame.type).mac_dropped++;
    ET_DEBUG(kComponent, "node %llu tx queue overflow, dropping %s",
             static_cast<unsigned long long>(src.value()),
             msg_type_name(frame.type));
    return;
  }
  ep.queue.push_back(std::move(frame));
  try_send(src);
}

bool Medium::channel_busy_at(NodeId id) const {
  const Vec2 pos = endpoints_[id.value()].pos;
  const Time now = sim_.now();
  // The index path scans only frames still on the air; the reference path
  // scans the full history. Both apply the same predicate, so a completed
  // transmission whose end-event has not fired yet (end == now) is excluded
  // either way and the verdicts agree exactly.
  const std::vector<Transmission>& haystack =
      config_.use_spatial_index ? active_ : history_;
  for (const Transmission& tx : haystack) {
    if (tx.end > now && tx.start <= now &&
        (tx.src == id ||
         (same_partition(tx.src, id) && audible_at(pos, tx.pos)))) {
      return true;
    }
  }
  return false;
}

std::vector<NodeId> Medium::neighbors(NodeId id) const {
  std::vector<NodeId> out;
  const Vec2 pos = endpoints_[id.value()].pos;
  if (config_.use_spatial_index) {
    // Thread-local scratch: motes on different tiles of the parallel
    // kernel query neighbours concurrently (grid/positions are immutable
    // after setup, so the reads themselves are safe).
    thread_local std::vector<std::uint32_t> scratch;
    gather_in_radius(pos, config_.comm_radius, id.value(), scratch);
    out.reserve(scratch.size());
    for (std::uint32_t idx : scratch) out.push_back(NodeId{idx});
    return out;
  }
  for (std::size_t i = 0; i < endpoints_.size(); ++i) {
    if (i == id.value()) continue;
    if (audible_at(endpoints_[i].pos, pos)) out.push_back(NodeId{i});
  }
  return out;
}

void Medium::try_send(NodeId id) {
  Endpoint& ep = endpoints_[id.value()];
  if (ep.transmitting || ep.backoff_pending || ep.queue.empty()) return;

  const bool sensed_busy =
      channel_busy_at(id) && !rng_.chance(config_.carrier_sense_miss);
  if (sensed_busy) {
    // Carrier sensed busy: exponential backoff, no retransmission after the
    // attempt limit (frame silently dropped, as on the real MAC).
    ep.backoff_attempts++;
    if (ep.backoff_attempts > config_.max_backoff_attempts) {
      Frame dropped = std::move(ep.queue.front());
      ep.queue.pop_front();
      ep.backoff_attempts = 0;
      stats_.of(dropped.type).mac_dropped++;
      ET_DEBUG(kComponent, "node %llu backoff exhausted, dropping %s",
               static_cast<unsigned long long>(id.value()),
               msg_type_name(dropped.type));
      // Try the next queued frame, if any.
      if (!ep.queue.empty()) try_send(id);
      return;
    }
    const int window = 1 << std::min(ep.backoff_attempts, 5);
    const double slots = rng_.uniform(1.0, static_cast<double>(window));
    ep.backoff_pending = true;
    const Duration delay = config_.backoff_slot * slots;
    if (canonical_) note_mac_wakeup(sim_.now() + delay, id);
    sim_.schedule_owned(sim::kChannelRank, delay, [this, id] {
      if (canonical_) clear_mac_wakeup(id);
      endpoints_[id.value()].backoff_pending = false;
      try_send(id);
    });
    return;
  }

  begin_transmission(id);
}

void Medium::begin_transmission(NodeId id) {
  Endpoint& ep = endpoints_[id.value()];
  assert(!ep.queue.empty());
  Frame frame = std::move(ep.queue.front());
  ep.queue.pop_front();
  ep.backoff_attempts = 0;
  ep.transmitting = true;

  const Duration airtime = airtime_of(frame);
  const Time start = sim_.now();
  const Time end = start + airtime;
  const std::uint64_t tx_id = next_tx_id_++;
  if (airtime > max_airtime_) max_airtime_ = airtime;
  active_.push_back(Transmission{tx_id, id, ep.pos, start, end});
  history_.push_back(Transmission{tx_id, id, ep.pos, start, end});

  const std::size_t bytes =
      config_.header_bytes + frame.payload->size_bytes();
  stats_.bits_sent += bytes * 8;
  stats_.airtime += airtime;
  stats_.of(frame.type).transmitted++;
  ep.stats.frames_sent++;
  ep.stats.bits_sent += bytes * 8;

  ep.in_flight = std::move(frame);
  sim_.schedule_owned(sim::kChannelRank, airtime, [this, id, start, end, tx_id] {
    complete_transmission(id, start, end, tx_id);
  });
}

void Medium::complete_transmission(NodeId id, Time start, Time end,
                                   std::uint64_t tx_id) {
  Endpoint& ep = endpoints_[id.value()];
  assert(ep.in_flight.has_value());
  const Frame frame = std::move(*ep.in_flight);
  ep.in_flight.reset();
  ep.transmitting = false;
  std::erase_if(active_,
                [tx_id](const Transmission& tx) { return tx.tx_id == tx_id; });
  deliver(frame, start, end, tx_id);
  prune_history();
  // Move on to the next queued frame after a short turnaround gap so two
  // frames from the same node cannot overlap.
  if (!ep.queue.empty()) {
    if (canonical_) note_mac_wakeup(sim_.now() + Duration::micros(100), id);
    sim_.schedule_owned(sim::kChannelRank, Duration::micros(100), [this, id] {
      if (canonical_) clear_mac_wakeup(id);
      try_send(id);
    });
  }
}

bool Medium::corrupted_at(NodeId receiver, Time start, Time end,
                          std::uint64_t tx_id) const {
  const Vec2 pos = endpoints_[receiver.value()].pos;
  for (const Transmission& tx : history_) {
    if (tx.tx_id == tx_id) continue;
    const bool overlaps = tx.start < end && tx.end > start;
    if (!overlaps) continue;
    // Half-duplex: the receiver's own transmission always interferes.
    // Transmissions from other partition components do not (RF isolation).
    if (tx.src == receiver ||
        (same_partition(tx.src, receiver) && audible_at(pos, tx.pos))) {
      return true;
    }
  }
  return false;
}

bool Medium::sample_burst_state(NodeId receiver, Rng& rng) {
  Endpoint& ep = endpoints_[receiver.value()];
  // Exact transition of the two-state CTMC over the (arbitrarily long)
  // interval since the chain was last sampled: with G->B rate a = 1/mean_good
  // and B->G rate b = 1/mean_bad,
  //   P(bad at t+dt | bad at t)  = pi_bad + (1 - pi_bad) * e^{-(a+b) dt}
  //   P(bad at t+dt | good at t) = pi_bad * (1 - e^{-(a+b) dt})
  // where pi_bad = a / (a + b) is the stationary burst fraction. Sampling
  // only at delivery attempts is exact because the chain is memoryless.
  const double a = 1.0 / config_.burst_loss.mean_good.to_seconds();
  const double b = 1.0 / config_.burst_loss.mean_bad.to_seconds();
  const double rate = a + b;
  const double pi_bad = a / rate;
  const double dt = (sim_.now() - ep.burst_sampled_at).to_seconds();
  const double decay = std::exp(-rate * dt);
  const double p_bad =
      ep.burst_bad ? pi_bad + (1.0 - pi_bad) * decay : pi_bad * (1.0 - decay);
  ep.burst_bad = rng.chance(p_bad);
  ep.burst_sampled_at = sim_.now();
  return ep.burst_bad;
}

void Medium::attempt_canonical(std::uint32_t k,
                               const std::vector<std::uint32_t>& candidates,
                               const Frame& frame, Time start, Time end,
                               std::uint64_t tx_id, Time handoff,
                               std::uint64_t seq_base, ScatterStats& acc) {
  const NodeId receiver{candidates[k]};
  Endpoint& rx = endpoints_[receiver.value()];
  if (!rx.receiver_enabled || rx.blackout) return;
  if (!same_partition(frame.src, receiver)) {
    // Checked before any RNG draw so partitioned and unpartitioned code
    // paths consume the stream identically for the surviving receivers.
    acc.blocked_partition++;
    return;
  }
  acc.attempts++;
  if (config_.model_collisions && corrupted_at(receiver, start, end, tx_id)) {
    acc.lost_collision++;
    return;
  }
  if (config_.burst_loss.enabled) {
    const bool bad = sample_burst_state(receiver, rx.rx_rng);
    const double p =
        bad ? config_.burst_loss.loss_bad : config_.burst_loss.loss_good;
    if (rx.rx_rng.chance(p)) {
      if (bad) {
        acc.lost_burst++;
      } else {
        acc.lost_random++;
      }
      return;
    }
  } else if (rx.rx_rng.chance(config_.loss_probability)) {
    acc.lost_random++;
    return;
  }
  acc.delivered++;
  rx.stats.frames_received++;
  rx.stats.bits_received +=
      (config_.header_bytes + frame.payload->size_bytes()) * 8;
  // Hand the frame to the receiver's simulator rx_latency() after
  // completion at the key pre-assigned to this candidate slot. The latency
  // is what lets tiles run a whole lookahead window without hearing from
  // the channel; the serial canonical oracle applies the same latency, so
  // the two engines stay bit-exact.
  sim_of_(receiver).schedule_at_key(
      sim::EventKey{handoff, sim::kChannelRank, seq_base + k},
      static_cast<std::uint32_t>(receiver.value()),
      [this, receiver, frame] {
        const Endpoint& rx_ep = endpoints_[receiver.value()];
        if (rx_ep.recv) rx_ep.recv(frame);
      });
}

void Medium::deliver(const Frame& frame, Time start, Time end,
                     std::uint64_t tx_id) {
  TypeStats& ts = stats_.of(frame.type);

  // Candidate receivers in ascending id order — the same set in every mode
  // and for both geometry paths. The buffer is swapped into a local
  // (capacity recycled through deliver_scratch_) so receiver callbacks that
  // re-enter the medium cannot clobber the iteration.
  std::vector<std::uint32_t> candidates = std::move(deliver_scratch_);
  const double reach =
      frame.range_limit ? std::min(*frame.range_limit, config_.comm_radius)
                        : config_.comm_radius;
  const Vec2 src_pos = endpoints_[frame.src.value()].pos;
  if (frame.is_broadcast()) {
    if (config_.use_spatial_index) {
      // reach <= comm_radius, so the 3x3 cell block covers every receiver;
      // gather_in_radius yields them in ascending id order, matching the
      // brute-force scan below frame for frame.
      gather_in_radius(src_pos, reach, frame.src.value(), candidates);
    } else {
      candidates.clear();
      for (std::size_t i = 0; i < endpoints_.size(); ++i) {
        if (i == frame.src.value()) continue;
        if (within_radius(src_pos, endpoints_[i].pos, reach)) {
          candidates.push_back(static_cast<std::uint32_t>(i));
        }
      }
    }
  } else {
    candidates.clear();
    const NodeId dst = *frame.dst;
    if (dst.value() < endpoints_.size() &&
        within_radius(src_pos, endpoints_[dst.value()].pos, reach)) {
      candidates.push_back(static_cast<std::uint32_t>(dst.value()));
    }
  }

  std::size_t delivered = 0;
  if (!canonical_) {
    // Legacy order: shared RNG stream consumed in ascending id order,
    // receivers invoked inline at the completion instant — byte-identical
    // to the seed.
    for (std::uint32_t idx : candidates) {
      const NodeId receiver{idx};
      const Endpoint& rx = endpoints_[idx];
      if (!rx.receiver_enabled || rx.blackout) continue;
      if (!same_partition(frame.src, receiver)) {
        ts.pair_blocked_partition++;
        continue;
      }
      ts.pair_attempts++;
      if (config_.model_collisions &&
          corrupted_at(receiver, start, end, tx_id)) {
        ts.pair_lost_collision++;
        continue;
      }
      if (config_.burst_loss.enabled) {
        const bool bad = sample_burst_state(receiver, rng_);
        const double p =
            bad ? config_.burst_loss.loss_bad : config_.burst_loss.loss_good;
        if (rng_.chance(p)) {
          if (bad) {
            ts.pair_lost_burst++;
          } else {
            ts.pair_lost_random++;
          }
          continue;
        }
      } else if (rng_.chance(config_.loss_probability)) {
        ts.pair_lost_random++;
        continue;
      }
      ts.pair_delivered++;
      ++delivered;
      Endpoint& ep = endpoints_[idx];
      ep.stats.frames_received++;
      ep.stats.bits_received +=
          (config_.header_bytes + frame.payload->size_bytes()) * 8;
      if (ep.recv) ep.recv(frame);
    }
  } else {
    // Canonical order: one pre-assigned reception key and one private RNG
    // stream per candidate, so every receiver's outcome is independent of
    // the order receivers are sampled in. The serial loop and the sharded
    // fan-out below therefore produce the same simulation, bit for bit —
    // parallelism never rides on the sampling order.
    const std::uint64_t seq_base =
        sim_.alloc_seq_block(sim::kChannelRank, candidates.size());
    const Time handoff = end + rx_latency_;
    ScatterStats totals;
    if (fanout_exec_ && candidates.size() >= config_.fanout_min_receivers) {
      // Shard by receiving simulator (tile): groups touch disjoint endpoint
      // state and tile queues, so the kernel may run them concurrently.
      fanout_group_sims_.clear();
      for (auto& group : fanout_groups_) group.clear();
      for (std::uint32_t k = 0;
           k < static_cast<std::uint32_t>(candidates.size()); ++k) {
        sim::Simulator* tile = &sim_of_(NodeId{candidates[k]});
        std::size_t g = 0;
        while (g < fanout_group_sims_.size() && fanout_group_sims_[g] != tile)
          ++g;
        if (g == fanout_group_sims_.size()) {
          fanout_group_sims_.push_back(tile);
          if (fanout_groups_.size() < fanout_group_sims_.size())
            fanout_groups_.emplace_back();
        }
        fanout_groups_[g].push_back(k);
      }
      const std::size_t n_groups = fanout_group_sims_.size();
      fanout_stats_.assign(n_groups, ScatterStats{});
      fanout_exec_(n_groups, candidates.size(), [&](std::size_t g) {
        for (std::uint32_t k : fanout_groups_[g]) {
          attempt_canonical(k, candidates, frame, start, end, tx_id, handoff,
                            seq_base, fanout_stats_[g]);
        }
      });
      for (const ScatterStats& s : fanout_stats_) {
        totals.attempts += s.attempts;
        totals.delivered += s.delivered;
        totals.lost_collision += s.lost_collision;
        totals.lost_random += s.lost_random;
        totals.lost_burst += s.lost_burst;
        totals.blocked_partition += s.blocked_partition;
      }
    } else {
      for (std::uint32_t k = 0;
           k < static_cast<std::uint32_t>(candidates.size()); ++k) {
        attempt_canonical(k, candidates, frame, start, end, tx_id, handoff,
                          seq_base, totals);
      }
    }
    ts.pair_attempts += totals.attempts;
    ts.pair_delivered += totals.delivered;
    ts.pair_lost_collision += totals.lost_collision;
    ts.pair_lost_random += totals.lost_random;
    ts.pair_lost_burst += totals.lost_burst;
    ts.pair_blocked_partition += totals.blocked_partition;
    delivered = totals.delivered;
  }

  candidates.clear();
  deliver_scratch_ = std::move(candidates);
  if (delivered == 0) ts.lost++;
}

void Medium::note_mac_wakeup(Time at, NodeId id) {
  mac_wakeups_.emplace_back(at, static_cast<std::uint32_t>(id.value()));
}

void Medium::clear_mac_wakeup(NodeId id) {
  const auto idx = static_cast<std::uint32_t>(id.value());
  for (auto& entry : mac_wakeups_) {
    if (entry.second == idx) {
      entry = mac_wakeups_.back();
      mac_wakeups_.pop_back();
      return;
    }
  }
  assert(false && "clearing a MAC wakeup that was never noted");
}

void Medium::collect_channel_constraints(
    std::vector<std::pair<Time, Vec2>>& out) const {
  // A transmission on the air completes (and can trigger receptions) no
  // earlier than tx.end. A pending MAC wakeup may start a new transmission
  // the instant it fires; that frame cannot complete before the wakeup
  // plus one minimum airtime.
  for (const Transmission& tx : active_) out.emplace_back(tx.end, tx.pos);
  const Duration airtime = min_airtime();
  for (const auto& [at, idx] : mac_wakeups_) {
    out.emplace_back(at + airtime, endpoints_[idx].pos);
  }
}

void Medium::set_partition(std::vector<std::uint32_t> component_of) {
  assert(component_of.empty() || component_of.size() == endpoints_.size());
  partition_of_ = std::move(component_of);
  partition_version_++;
}

void Medium::set_receiver_enabled(NodeId id, bool enabled) {
  if (canonical_) {
    // Duty cycling toggles from mote context; defer like any channel op.
    sim_.post_op([this, id, enabled] { set_receiver_enabled_now(id, enabled); });
    return;
  }
  set_receiver_enabled_now(id, enabled);
}

void Medium::set_receiver_enabled_now(NodeId id, bool enabled) {
  Endpoint& ep = endpoints_[id.value()];
  if (ep.receiver_enabled == enabled) return;
  if (enabled) {
    ep.stats.radio_off += sim_.now() - ep.receiver_off_since;
  } else {
    ep.receiver_off_since = sim_.now();
  }
  ep.receiver_enabled = enabled;
}

void Medium::prune_history() {
  // Transmissions can only collide with others overlapping their airtime.
  // A future delivery's window [start, end] satisfies start >= now -
  // max_airtime_ (the longest frame ever transmitted — tracked, not a
  // hard-coded constant, so slow-bitrate configs cannot miss collisions),
  // and overlap requires tx.end > start; anything ending before the cutoff
  // is therefore unreachable by any future query.
  const Time cutoff = sim_.now() - max_airtime_;
  std::erase_if(history_,
                [cutoff](const Transmission& tx) { return tx.end < cutoff; });
}

}  // namespace et::radio
