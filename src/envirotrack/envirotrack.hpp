#pragma once

/// Umbrella header: the EnviroTrack public API in one include.
///
///   #include "envirotrack/envirotrack.hpp"
///
/// brings in the deployment facade (core::EnviroTrackSystem), context-type
/// declarations, the language compiler, the environment/world model, the
/// metrics suite, and the scenario harnesses. Fine-grained headers remain
/// available for targeted includes.

// Simulation substrate.
#include "sim/simulator.hpp"          // IWYU pragma: export
#include "util/geometry.hpp"          // IWYU pragma: export
#include "util/ids.hpp"               // IWYU pragma: export
#include "util/time.hpp"              // IWYU pragma: export

// Physical world.
#include "env/environment.hpp"        // IWYU pragma: export
#include "env/field.hpp"              // IWYU pragma: export
#include "env/target.hpp"             // IWYU pragma: export
#include "env/trajectory.hpp"         // IWYU pragma: export

// The middleware.
#include "core/aggregation.hpp"       // IWYU pragma: export
#include "core/context_type.hpp"      // IWYU pragma: export
#include "core/directory.hpp"         // IWYU pragma: export
#include "core/duty_cycle.hpp"        // IWYU pragma: export
#include "core/group_manager.hpp"     // IWYU pragma: export
#include "core/sense_registry.hpp"    // IWYU pragma: export
#include "core/static_object.hpp"     // IWYU pragma: export
#include "core/system.hpp"            // IWYU pragma: export
#include "core/tracking_context.hpp"  // IWYU pragma: export
#include "core/transport.hpp"         // IWYU pragma: export

// The language.
#include "etl/compiler.hpp"           // IWYU pragma: export
#include "etl/format.hpp"             // IWYU pragma: export
#include "etl/parser.hpp"             // IWYU pragma: export

// Instrumentation.
#include "metrics/channel_report.hpp" // IWYU pragma: export
#include "metrics/coherence.hpp"      // IWYU pragma: export
#include "metrics/energy.hpp"         // IWYU pragma: export
#include "metrics/event_log.hpp"      // IWYU pragma: export
#include "metrics/trace.hpp"          // IWYU pragma: export
#include "metrics/track_recorder.hpp" // IWYU pragma: export
