#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace et::sim {

std::uint32_t EventQueue::alloc_slot(Callback fn, std::uint32_t fire_owner) {
  std::uint32_t index;
  if (!free_slots_.empty()) {
    index = free_slots_.back();
    free_slots_.pop_back();
  } else {
    index = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& slot = slots_[index];
  slot.fn = std::move(fn);
  slot.fire_owner = fire_owner;
  slot.live = true;
  ++live_count_;
  return index;
}

EventHandle EventQueue::schedule(Time at, Callback fn) {
  const std::uint32_t index = alloc_slot(std::move(fn), 0);
  heap_.push(Entry{at, 0, next_seq_++, index, slots_[index].generation});
  return EventHandle{alive_, this, index, slots_[index].generation};
}

EventHandle EventQueue::schedule_key(EventKey key, std::uint32_t fire_owner,
                                     Callback fn) {
  const std::uint32_t index = alloc_slot(std::move(fn), fire_owner);
  const Entry entry{key.time, key.rank, key.seq, index,
                    slots_[index].generation};
  heap_.push(entry);
  if (key.rank == kWorldRank) world_heap_.push(entry);
  return EventHandle{alive_, this, index, slots_[index].generation};
}

void EventQueue::release_slot(std::uint32_t index) {
  Slot& slot = slots_[index];
  assert(slot.live);
  slot.fn = nullptr;
  slot.live = false;
  ++slot.generation;
  free_slots_.push_back(index);
  --live_count_;
}

void EventQueue::handle_cancel(std::uint32_t slot, std::uint32_t generation) {
  if (!handle_pending(slot, generation)) return;
  // The heap entry stays behind; its generation no longer matches and
  // skip_cancelled() drops it when it surfaces.
  release_slot(slot);
}

void EventQueue::skip_cancelled() const {
  while (!heap_.empty()) {
    const Entry& top = heap_.top();
    const Slot& slot = slots_[top.slot];
    if (slot.live && slot.generation == top.generation) return;
    heap_.pop();
  }
}

bool EventQueue::empty() const {
  skip_cancelled();
  return heap_.empty();
}

Time EventQueue::next_time() const {
  skip_cancelled();
  assert(!heap_.empty());
  return heap_.top().time;
}

EventKey EventQueue::next_key() const {
  skip_cancelled();
  assert(!heap_.empty());
  const Entry& top = heap_.top();
  return EventKey{top.time, top.rank, top.seq};
}

Time EventQueue::next_world_time() const {
  while (!world_heap_.empty()) {
    const Entry& top = world_heap_.top();
    const Slot& slot = slots_[top.slot];
    if (slot.live && slot.generation == top.generation) return top.time;
    world_heap_.pop();
  }
  return Time::max();
}

EventQueue::Fired EventQueue::pop() {
  skip_cancelled();
  assert(!heap_.empty());
  const Entry top = heap_.top();
  heap_.pop();
  Fired fired{top.time, top.rank, top.seq, slots_[top.slot].fire_owner,
              std::move(slots_[top.slot].fn)};
  release_slot(top.slot);
  return fired;
}

void EventQueue::clear() {
  while (!heap_.empty()) heap_.pop();
  while (!world_heap_.empty()) world_heap_.pop();
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].live) release_slot(i);
  }
  assert(live_count_ == 0);
}

}  // namespace et::sim
