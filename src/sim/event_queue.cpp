#include "sim/event_queue.hpp"

#include <cassert>

namespace et::sim {

EventHandle EventQueue::schedule(Time at, Callback fn) {
  auto cancelled = std::make_shared<bool>(false);
  auto fired = std::make_shared<bool>(false);
  heap_.push(Entry{at, next_seq_++, std::move(fn), cancelled, fired});
  ++live_count_;
  return EventHandle{std::move(cancelled), std::move(fired)};
}

void EventQueue::skip_cancelled() const {
  while (!heap_.empty() && *heap_.top().cancelled) {
    heap_.pop();
    --live_count_;
  }
}

bool EventQueue::empty() const {
  skip_cancelled();
  return heap_.empty();
}

Time EventQueue::next_time() const {
  skip_cancelled();
  assert(!heap_.empty());
  return heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
  skip_cancelled();
  assert(!heap_.empty());
  // priority_queue::top() is const; the entry is moved out via const_cast,
  // which is safe because the element is popped immediately after.
  Entry& top = const_cast<Entry&>(heap_.top());
  Fired fired{top.time, std::move(top.fn)};
  *top.fired = true;
  heap_.pop();
  --live_count_;
  return fired;
}

void EventQueue::clear() {
  while (!heap_.empty()) heap_.pop();
  live_count_ = 0;
}

}  // namespace et::sim
