#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "sim/kernel_config.hpp"
#include "sim/simulator.hpp"
#include "util/geometry.hpp"
#include "util/time.hpp"

/// Conservative parallel discrete-event kernel.
///
/// Motes are partitioned into spatial tiles: the world rectangle is split
/// into a rows x cols block grid (the factorization of the tile count whose
/// cells best match the world's aspect ratio), one tile per block. Each
/// tile is a logical process: a private `Simulator` holding that tile's
/// mote-owned events (timers, CPU tasks, frame receptions). The radio
/// medium and all world machinery (scenario drivers, environment, fault
/// injection, monitors) stay on the master simulator.
///
/// Synchronization is a barrier-window scheme. With wide windows off the
/// lookahead is the global minimum frame airtime `δ` — every window is cut
/// `δ` after its floor (see the correctness argument below). With wide
/// windows on, the planner instead derives one bound per tile and per
/// round from the actual constraint sources:
///
///   - every other tile's earliest pending event, pushed through the
///     tile-pair lookahead matrix δ(i, j): anything tile i does this round
///     stems from an event no earlier than its next-event time, and its
///     effects need at least hops(i, j) MAC-entry + airtime + rx-handoff
///     cycles to travel the gap between the tile rectangles;
///   - pending radio-entry ops (sends already issued but not yet executed
///     by the master), which cannot be heard before their key plus one
///     airtime plus the rx handoff;
///   - transmissions currently on the air and scheduled MAC wakeups
///     (backoff expiries, turnaround gaps), positioned point sources the
///     medium reports each round.
///
/// The per-tile bound is the minimum over those sources, never below the
/// `δ` floor (the old proof is the safety net) and never past the next
/// world event, the run deadline, or a configurable cap. The master runs
/// to the *minimum* tile bound — it must not outrun any tile, or ops
/// replayed later could land in its past. Tiles whose bound regressed
/// simply no-op for a round. Each window runs in three steps:
///
///   1. tile phase (parallel): every tile runs its events up to its own
///      bound, buffering channel ops (sends, receiver toggles, journal
///      appends) into a per-tile outbox keyed by canonical (time, owner,
///      seq) keys;
///   2. op flush + master phase (serial): outboxes are replayed into the
///      master queue where they execute in canonical key order together
///      with medium-internal events (backoff, completions, deliveries);
///   3. world events, if the window was cut at one (windows never span a
///      world event, so cross-cutting machinery like fault injection and
///      scenario drivers observes exactly the serial prefix — tiles are
///      individually capped at the world event's timestamp too).
///
/// During the master phase, broadcast deliveries with a large candidate
/// set are fanned back out to the worker pool (run_fanout), sharded by
/// receiving tile; per-receiver RNG streams and pre-assigned reception
/// keys make the outcome independent of sampling order.
///
/// Because every event carries the same canonical key it would have on the
/// serial canonical engine, and windows are cut so that no event can
/// observe state from events with larger keys, the interleaved execution
/// is a permutation-free replay of the serial order: same seed ⇒ identical
/// per-mote event order, RNG draws, metrics, and bench rows, for any
/// thread or tile count, with wide windows on or off.
namespace et::sim {

/// Measured behaviour of one parallel run: how many barrier windows were
/// executed, how wide they were, where the wall-clock time went, and how
/// much work the delivery fan-out offloaded. This is how the Amdahl serial
/// fraction stops being a guess: `serial_fraction()` is the measured share
/// of kernel wall time spent in the single-threaded master phase.
struct ParallelKernelStats {
  /// Barrier rounds executed (each round = one tile phase + one master
  /// phase, i.e. two barrier crossings).
  std::uint64_t windows = 0;
  /// Rounds cut short at a world event (fault injection, monitors, ...).
  std::uint64_t windows_cut_world = 0;
  /// Rounds that ran a full planner-bounded window.
  std::uint64_t windows_full = 0;
  /// Rounds cut at the run_until() deadline.
  std::uint64_t windows_final = 0;
  /// Sum and max of executed master-window widths (floor to master bound).
  Duration window_width_total = Duration::zero();
  Duration window_width_max = Duration::zero();
  /// Wall-clock nanoseconds the master spent blocked at the two barriers
  /// (publishing work + waiting for the last tile worker).
  std::uint64_t barrier_wait_ns = 0;
  /// Wall-clock nanoseconds of the parallel tile phase (publish to join).
  std::uint64_t tile_phase_ns = 0;
  /// Wall-clock nanoseconds of the serial master phase (op replay + channel
  /// + world events).
  std::uint64_t serial_phase_ns = 0;
  /// Delivery fan-out batches dispatched to the worker pool, and the total
  /// receiver attempts they carried (see radio::Medium parallel delivery).
  std::uint64_t fanout_batches = 0;
  std::uint64_t fanout_receivers = 0;

  double mean_window_width_us() const {
    return windows == 0 ? 0.0
                        : window_width_total.to_seconds() * 1e6 /
                              static_cast<double>(windows);
  }
  /// Fraction of accounted kernel wall time spent in the serial master
  /// phase — the Amdahl ceiling on speedup is 1 / serial_fraction().
  double serial_fraction() const {
    const double total =
        static_cast<double>(tile_phase_ns + serial_phase_ns);
    return total == 0.0 ? 0.0 : static_cast<double>(serial_phase_ns) / total;
  }
};

/// Everything the window planner needs, wired up by the system facade once
/// the medium exists. All latencies must match what the medium actually
/// applies (the kernel asserts the basics).
struct WindowPlan {
  /// Minimum frame airtime `δ` — the narrow-mode lookahead and the wide
  /// mode's safety floor. Strictly positive.
  Duration min_airtime = Duration::zero();
  /// Plan adaptive per-tile bounds (KernelConfig::wide_windows). Off
  /// reproduces the fixed `floor + δ` windows exactly.
  bool wide = false;
  /// Mote-send to MAC-entry latency (Medium::tx_handoff()).
  Duration tx_handoff = Duration::zero();
  /// Completion-to-receiver handoff latency (Medium::rx_latency()).
  Duration rx_handoff = Duration::zero();
  /// Radio communication radius: one transmission travels at most this far,
  /// which is what turns tile-rectangle gaps into hop counts.
  double hop_radius = 0.0;
  /// Hard cap on how far past the floor any tile may be planned (bounds
  /// planner optimism and keeps world state preparation cheap).
  Duration window_cap = Duration::millis(250);
  /// Owner ranks below this are motes with a position (pos_of applies);
  /// pending sends from other ranks constrain every tile globally.
  std::uint32_t n_motes = 0;
  /// Appends (earliest completion time, source position) pairs for every
  /// active transmission and pending MAC wakeup
  /// (Medium::collect_channel_constraints).
  std::function<void(std::vector<std::pair<Time, Vec2>>&)> collect_channel;
  /// Position of a mote rank (Medium::position_of).
  std::function<Vec2(std::uint32_t)> pos_of;
  /// Called with each round's maximum bound time before the tile phase so
  /// shared read-only world state (trajectories) can be extended while
  /// still single-threaded.
  std::function<void(Time)> prepare;
};

class ParallelKernel {
 public:
  /// `world_bounds` is the field rectangle the motes live in; tiles are
  /// contiguous blocks of it, so the planner can reason about how far
  /// apart two tiles' motes are.
  ParallelKernel(Simulator& master, const KernelConfig& config,
                 Rect world_bounds);
  ~ParallelKernel();

  ParallelKernel(const ParallelKernel&) = delete;
  ParallelKernel& operator=(const ParallelKernel&) = delete;

  /// The tile simulator owning the mote at position (x, y). Pure function
  /// of position: the enclosing block of the rows x cols grid (positions
  /// outside the world rectangle clamp to the nearest tile).
  Simulator& sim_for(double x, double y);

  /// Every simulator of this run, master first. System uses this to switch
  /// them all to canonical order with one shared counter table.
  std::vector<Simulator*> all_sims();

  /// Arms the window scheme. Must be called exactly once, after the medium
  /// exists and before run_until().
  void finalize(WindowPlan plan);

  /// Runs the world up to and including `deadline` in conservative
  /// windows. Returns the number of events fired across all simulators.
  std::size_t run_until(Time deadline);

  /// Executes `body(g)` for every group in [0, n_groups) on the worker
  /// pool (master participates). Groups must be mutually independent; the
  /// call returns after all have run. Used by the medium to fan large
  /// broadcast deliveries out by receiving tile; `n_receivers` is telemetry
  /// only.
  void run_fanout(std::size_t n_groups, std::size_t n_receivers,
                  const std::function<void(std::size_t)>& body);

  unsigned tile_count() const { return static_cast<unsigned>(tiles_.size()); }
  unsigned tile_rows() const { return rows_; }
  unsigned tile_cols() const { return cols_; }

  /// Telemetry accumulated since construction (or the last reset).
  const ParallelKernelStats& stats() const { return stats_; }
  void reset_stats() { stats_ = ParallelKernelStats{}; }

 private:
  struct Tile {
    std::unique_ptr<Simulator> sim;
    OpOutbox outbox;
  };
  /// A radio-entry op the master has not executed yet: a transmission that
  /// will enter some MAC at `key.time` (or later, if bumped behind a
  /// blocker) — a constraint source for every tile its frame could reach.
  struct SendOp {
    EventKey key;
    std::uint32_t owner;
  };
  enum class PhaseKind : std::uint8_t { kTiles, kFanout };

  void worker_main(unsigned worker_index);
  /// Runs every tile with events in the window up to its entry in
  /// tile_bounds_ (parallel), then replays their op outboxes into the
  /// master queue in tile order.
  void run_tile_phase();
  /// Fills tile_ends_ with each tile's exclusive window end for the next
  /// round (wide mode: adaptive from the constraint sources; narrow mode:
  /// floor + δ for everyone), clamped to [floor + δ, floor + cap] and to
  /// the deadline. Returns the minimum end.
  Time plan_tile_ends(Time deadline);
  /// Publishes a phase to the pool and joins it (shared by the tile phase
  /// and run_fanout). The caller has set up tile_bounds_ or the fanout
  /// fields and phase_kind_ beforehand.
  void run_pool_phase();
  void drain_fanout();

  Simulator& master_;
  Rect world_;
  unsigned rows_ = 1;
  unsigned cols_ = 1;
  unsigned n_workers_;
  /// Spin iterations before a barrier waiter parks on its cv; 1 (park at
  /// once) when the host has no spare core per participant.
  int spin_limit_ = 1;
  std::vector<Tile> tiles_;
  std::vector<Rect> tile_rects_;
  WindowPlan plan_;
  bool plan_valid_ = false;
  /// One full source-to-heard cycle: MAC entry + minimum airtime + rx
  /// handoff. The per-hop cost of the lookahead matrix.
  Duration hop_cycle_ = Duration::zero();
  /// hops(i, j): minimum number of transmissions for an effect to travel
  /// from tile i's rectangle into tile j's (>= 1). Row-major n x n.
  std::vector<unsigned> tile_hops_;
  /// Pending radio-entry ops, pruned once the master executes past them.
  std::vector<SendOp> send_ops_;
  /// Scratch: per-round channel constraints and planned bounds.
  std::vector<std::pair<Time, Vec2>> channel_scratch_;
  std::vector<Time> tile_ends_;
  std::vector<EventKey> tile_bounds_;
  /// Lower edge of the current window; every event with time <= floor_ has
  /// been executed.
  Time floor_ = Time::origin();
  ParallelKernelStats stats_;

  /// Barrier state. Windows are milliseconds of simulated time, so the
  /// kernel crosses two barriers per window at up to ~kHz rates; the fast
  /// path is lock-free (spin on `phase_` / `running_` with a bounded spin
  /// before sleeping), the mutex/cv pair is only the parked-thread fallback.
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::atomic<std::uint64_t> phase_{0};
  /// What the published phase asks workers to do; written (with the fanout
  /// fields or tile_bounds_) before the phase_ release-bump.
  PhaseKind phase_kind_ = PhaseKind::kTiles;
  const std::function<void(std::size_t)>* fanout_body_ = nullptr;
  std::size_t fanout_count_ = 0;
  std::atomic<std::size_t> fanout_next_{0};
  std::atomic<unsigned> running_{0};
  std::atomic<unsigned> sleepers_{0};
  std::atomic<bool> master_waiting_{false};
  std::atomic<bool> shutdown_{false};
  std::vector<std::thread> workers_;
};

}  // namespace et::sim
