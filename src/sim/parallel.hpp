#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/kernel_config.hpp"
#include "sim/simulator.hpp"
#include "util/time.hpp"

/// Conservative parallel discrete-event kernel.
///
/// Motes are partitioned into spatial tiles (square cells of the world,
/// hashed onto `threads * tiles_per_thread` tiles, aligned with the radio
/// medium's hash grid). Each tile is a logical process: a private
/// `Simulator` holding that tile's mote-owned events (timers, CPU tasks,
/// frame receptions). The radio medium and all world machinery (scenario
/// drivers, environment, fault injection, monitors) stay on the master
/// simulator.
///
/// Synchronization is a barrier-window scheme. The lookahead `δ` is the
/// minimum frame airtime of the medium (plus zero propagation delay): a
/// mote-initiated transmission started at `t` cannot complete — and hence
/// cannot be heard by anyone — before `t + δ`, and frame receptions are
/// handed to the receiving tile at completion `+ δ` as timestamped
/// inter-LP events. Therefore events a tile executes in the window
/// `(floor, floor + δ]` can only depend on channel state already committed
/// before `floor`, and every tile can run its slice of the window without
/// seeing the others. Each window runs in three steps:
///
///   1. tile phase (parallel): every tile runs its events up to the window
///      bound, buffering channel ops (sends, receiver toggles, journal
///      appends) into a per-tile outbox keyed by canonical (time, owner,
///      seq) keys;
///   2. op flush + master phase (serial): outboxes are replayed into the
///      master queue where they execute in canonical key order together
///      with medium-internal events (backoff, completions, deliveries);
///   3. world events, if the window was cut at one (windows never span a
///      world event, so cross-cutting machinery like fault injection and
///      scenario drivers observes exactly the serial prefix).
///
/// Because every event carries the same canonical key it would have on the
/// serial canonical engine, and windows are cut so that no event can
/// observe state from events with larger keys, the interleaved execution
/// is a permutation-free replay of the serial order: same seed ⇒ identical
/// per-mote event order, RNG draws, metrics, and bench rows, for any
/// thread or tile count.
namespace et::sim {

class ParallelKernel {
 public:
  /// `cell_size` is the tile-cell edge (SystemConfig derives it from the
  /// radio communication radius when the config leaves it at 0).
  ParallelKernel(Simulator& master, const KernelConfig& config,
                 double cell_size);
  ~ParallelKernel();

  ParallelKernel(const ParallelKernel&) = delete;
  ParallelKernel& operator=(const ParallelKernel&) = delete;

  /// The tile simulator owning the mote at position (x, y). Pure function
  /// of position: stable across calls, aligned with the medium hash grid.
  Simulator& sim_for(double x, double y);

  /// Every simulator of this run, master first. System uses this to switch
  /// them all to canonical order with one shared counter table.
  std::vector<Simulator*> all_sims();

  /// Arms the window scheme: `lookahead` must be the medium's minimum
  /// airtime (strictly positive); `prepare` is called with each window's
  /// end time before the tile phase so shared read-only world state
  /// (trajectories) can be extended while still single-threaded.
  void finalize(Duration lookahead, std::function<void(Time)> prepare);

  /// Runs the world up to and including `deadline` in conservative
  /// windows. Returns the number of events fired across all simulators.
  std::size_t run_until(Time deadline);

  unsigned tile_count() const { return static_cast<unsigned>(tiles_.size()); }

 private:
  struct Tile {
    std::unique_ptr<Simulator> sim;
    OpOutbox outbox;
  };

  void worker_main(unsigned worker_index);
  /// Runs every tile with events in the window up to `bound` (parallel),
  /// then replays their op outboxes into the master queue in tile order.
  void run_tile_phase(EventKey bound);

  Simulator& master_;
  double cell_size_;
  unsigned n_workers_;
  /// Spin iterations before a barrier waiter parks on its cv; 1 (park at
  /// once) when the host has no spare core per participant.
  int spin_limit_ = 1;
  std::vector<Tile> tiles_;
  Duration lookahead_ = Duration::zero();
  std::function<void(Time)> prepare_;
  /// Lower edge of the current window; every event with time <= floor_ has
  /// been executed.
  Time floor_ = Time::origin();

  /// Barrier state. Windows are ~a millisecond of simulated time, so the
  /// kernel crosses two barriers per window at up to ~kHz rates; the fast
  /// path is lock-free (spin on `phase_` / `running_` with a bounded spin
  /// before sleeping), the mutex/cv pair is only the parked-thread fallback.
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::atomic<std::uint64_t> phase_{0};
  EventKey phase_bound_{};  // written before the phase_ release-bump
  std::atomic<unsigned> running_{0};
  std::atomic<unsigned> sleepers_{0};
  std::atomic<bool> master_waiting_{false};
  std::atomic<bool> shutdown_{false};
  std::vector<std::thread> workers_;
};

}  // namespace et::sim
