#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/event_queue.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

/// The discrete-event simulator driving every experiment in this repo.
///
/// One Simulator instance is single-threaded: components schedule
/// callbacks; the simulator advances virtual time to the next event and
/// fires it. Independent runs may execute on different threads concurrently
/// (see bench/sweep_runner.hpp) — a Simulator instance shares no mutable
/// state with any other.
///
/// Two event orders are supported:
///
///  - *Legacy* (default): events fire in (time, global FIFO) order, exactly
///    as this kernel always behaved. Bit-identical to the seed.
///  - *Canonical*: every event carries an (time, owner rank, per-owner seq)
///    key; mote-owned events rank below medium-internal (channel) events,
///    which rank below world events (scenario drivers, fault injection,
///    monitors). The canonical order is a pure function of the schedule
///    calls, independent of which queue an event sits in — which is what
///    lets the parallel kernel (sim/parallel.hpp) partition motes into
///    per-tile Simulators and still reproduce the serial oracle's event
///    order bit for bit.
namespace et::sim {

class Simulator;

/// No-progress / livelock watchdog budgets. A wedged MAC retry storm or a
/// zero-delay event loop shows up as virtual time crawling while the event
/// count (or wall clock) explodes; with budgets armed, the run loop trips
/// the watchdog and stops firing events instead of wedging the process —
/// chaos harnesses then fail the trial loudly (see WatchdogReport). A
/// budget of 0 disables that check.
struct WatchdogConfig {
  bool enabled = false;
  /// Max events fired inside any one simulated second.
  std::uint64_t max_events_per_sim_second = 0;
  /// Max wall-clock milliseconds spent inside any one simulated second
  /// (checked every 1024 events, so the budget should be >> 1 ms).
  std::uint64_t max_wall_ms_per_sim_second = 0;
};

/// Watchdog outcome plus progress counters for telemetry.
struct WatchdogReport {
  bool tripped = false;
  /// Virtual time at the trip (meaningless unless tripped).
  Time at;
  std::string reason;
  std::uint64_t events_in_window = 0;
  double wall_ms_in_window = 0.0;
  /// Progress counter: the most events fired inside any completed
  /// simulated second so far (maintained whenever the watchdog is armed).
  std::uint64_t peak_events_per_sim_second = 0;
};

/// Channel-op record buffered by a tile during a parallel window and
/// replayed into the master queue at the barrier (see Simulator::post_op).
struct PendingOp {
  EventKey key;
  std::uint32_t fire_owner;
  EventQueue::Callback fn;
  /// True for radio-entry ops (Medium sends posted via post_radio_op): the
  /// parallel kernel's window planner tracks them as pending transmission
  /// sources until the master executes them.
  bool is_send = false;
};
using OpOutbox = std::vector<PendingOp>;

/// Declares "the code on this thread is currently acting on behalf of
/// `owner` under engine `fallback_engine`". Used to attribute setup-time
/// and cross-layer calls (stack construction, crash/reboot, directory
/// queries issued from test code) to the mote they act on, so canonical
/// keys come out identical whether the call happens in the serial or the
/// parallel engine. When a run loop is already active on this thread, its
/// engine wins and only the owner is overridden. No-op side effects in
/// legacy mode beyond the (ignored) owner bookkeeping.
class ExecutingOwnerScope {
 public:
  ExecutingOwnerScope(Simulator& fallback_engine, std::uint32_t owner);
  ~ExecutingOwnerScope();
  ExecutingOwnerScope(const ExecutingOwnerScope&) = delete;
  ExecutingOwnerScope& operator=(const ExecutingOwnerScope&) = delete;

 private:
  Simulator* engine_;
  Simulator* prev_engine_;
  std::uint32_t prev_owner_;
};

class Simulator {
 public:
  /// Move-only small-buffer callback (see EventQueue::Callback); any
  /// lambda or `std::function` converts implicitly.
  using Callback = EventQueue::Callback;

  /// `register_log_clock = false` skips installing this simulator as the
  /// calling thread's log-timestamp source (per-tile simulators of the
  /// parallel kernel must not displace the master's clock).
  explicit Simulator(std::uint64_t seed = 1, bool register_log_clock = true);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator();

  /// Current virtual time.
  Time now() const { return now_; }

  /// Virtual time as seen by the code currently executing on this thread:
  /// the running engine's clock if a run loop is active (master or tile),
  /// otherwise `fallback.now()`. Always equals `fallback.now()` in legacy
  /// single-engine runs.
  static Time ambient_now(const Simulator& fallback);

  /// Master seed for this run.
  std::uint64_t seed() const { return seed_; }

  /// Derives a deterministic RNG stream for a named component.
  Rng make_rng(std::string_view component) const {
    return root_rng_.fork(component);
  }

  // --- Canonical order ---

  /// Switches this simulator to canonical event order. `counters` holds one
  /// per-owner sequence counter per rank (size = mote count + 2; the last
  /// two are the channel and world ranks) and is shared between the master
  /// and every tile simulator of a run so keys are allocated from one
  /// namespace. Must be called before anything is scheduled.
  void enable_canonical(
      std::shared_ptr<std::vector<std::uint64_t>> counters);
  bool canonical() const { return canonical_; }

  /// Tile simulators never hold world-ranked events; this arms an assert.
  void forbid_world_rank() { forbid_world_rank_ = true; }

  /// Schedules `fn` to run after `delay` (>= 0) of virtual time. In
  /// canonical mode the event is owned by the currently executing owner
  /// (events inherit their scheduler's owner).
  EventHandle schedule(Duration delay, Callback fn);

  /// Schedules `fn` at an absolute virtual time (>= now()).
  EventHandle schedule_at(Time at, Callback fn);

  /// Schedules `fn` with an explicit owner rank (mote timers stamp their
  /// mote id, medium internals stamp kChannelRank). Identical to schedule()
  /// in legacy mode.
  EventHandle schedule_owned(std::uint32_t owner, Duration delay,
                             Callback fn);

  /// Schedules `fn` every `period`, starting after `first_delay`. The
  /// returned handle cancels the *entire* periodic chain. Re-arms inherit
  /// the owner of the firing event, so the whole chain stays owned by
  /// `owner` (or by the scheduling owner for the unstamped overload).
  EventHandle schedule_periodic(Duration first_delay, Duration period,
                                Callback fn);
  EventHandle schedule_periodic_owned(std::uint32_t owner,
                                      Duration first_delay, Duration period,
                                      Callback fn);

  /// Inserts an event at a pre-assigned canonical key (parallel-kernel
  /// plumbing: op replay and cross-engine injections). Canonical mode only.
  EventHandle schedule_at_key(EventKey key, std::uint32_t fire_owner,
                              Callback fn);

  /// Allocates the next per-owner sequence number for `rank` (canonical
  /// mode; used by the medium to key receive-handoff injections).
  std::uint64_t alloc_seq(std::uint32_t rank);

  /// Allocates `count` consecutive sequence numbers for `rank` and returns
  /// the first. The medium pre-assigns one per delivery candidate so the
  /// reception keys of a fan-out batch are known before (and independent
  /// of) the per-receiver loss draws — receivers can then be sampled in any
  /// order, including concurrently, without perturbing canonical order.
  std::uint64_t alloc_seq_block(std::uint32_t rank, std::uint64_t count);

  /// Defers `fn` as a *channel op*: in legacy mode it runs inline, in
  /// canonical mode it is keyed with (ambient now, executing owner, next
  /// per-owner seq) and replayed through this (master) queue in key order —
  /// from a tile thread it is buffered in the tile's outbox and flushed at
  /// the window barrier. This is how mote-context side effects that touch
  /// shared state (medium sends, receiver toggles, metrics journaling)
  /// stay deterministic and thread-confined under the parallel kernel.
  void post_op(Callback fn);

  /// post_op() for radio-entry side effects: the op is keyed `entry_delay`
  /// after the ambient now (the MAC-handoff latency of wide-window
  /// canonical mode) and marked `is_send`, so the parallel kernel's window
  /// planner can treat it as a pending-transmission constraint source. In
  /// legacy mode it runs inline like post_op().
  void post_radio_op(Duration entry_delay, Callback fn);

  /// Master-side notification for radio ops that bypass the tile outboxes
  /// (sends issued from world/setup context). The parallel kernel installs
  /// this to keep its pending-send constraint set complete.
  void set_send_op_hook(std::function<void(EventKey, std::uint32_t)> hook) {
    send_op_hook_ = std::move(hook);
  }

  /// Times a schedule_at_key() landed at or below this engine's processed
  /// bound — i.e. in its executed past. Always zero when the parallel
  /// kernel's window bounds are correct (the conservative-synchronization
  /// precondition); exposed so tests can assert exactly that.
  std::uint64_t late_insertions() const { return late_insertions_; }

  // --- Livelock watchdog ---

  /// Arms (or disarms) the no-progress watchdog on this engine. Once
  /// tripped, the run loops stop firing events: run_until() still advances
  /// the clock to its deadline so driving loops terminate, but the
  /// simulation is effectively frozen — callers must check
  /// watchdog_report().tripped and fail the run. Budgets apply to the
  /// engine the config is set on (the master engine in parallel runs; tile
  /// engines can be armed by the kernel separately).
  void set_watchdog(WatchdogConfig config);
  const WatchdogConfig& watchdog_config() const { return watchdog_config_; }
  const WatchdogReport& watchdog_report() const { return watchdog_; }

  /// Runs events until the queue drains or `deadline` is passed. Events at
  /// exactly `deadline` still fire; time never advances beyond it. Returns
  /// the number of events fired.
  std::size_t run_until(Time deadline);

  /// Runs every event whose canonical key is <= `bound` (parallel-kernel
  /// windows). Does not advance now_ past the last fired event.
  std::size_t run_until_key(EventKey bound);

  /// Runs for `span` of virtual time from now().
  std::size_t run_for(Duration span) { return run_until(now_ + span); }

  /// Runs until the event queue is empty. Returns events fired. Use only in
  /// tests with finite schedules (periodic events never drain).
  std::size_t run_all();

  /// Seals a run segment at `deadline`: advances now() and, in canonical
  /// mode, sets the processed bound so later schedule calls (between run
  /// segments) key identically in the serial and parallel engines.
  void finish_run(Time deadline);

  void advance_to(Time t) {
    if (now_ < t) now_ = t;
  }

  bool queue_empty() const { return queue_.empty(); }
  Time next_event_time() const {
    return queue_.empty() ? Time::max() : queue_.next_time();
  }
  /// Earliest pending world-ranked event (canonical; Time::max() if none).
  Time next_world_time() const { return queue_.next_world_time(); }

  /// Total events fired since construction.
  std::uint64_t events_fired() const { return events_fired_; }

  std::size_t pending_events() const { return queue_.size(); }

  /// Installs/clears the calling thread's op outbox (parallel kernel only).
  static void set_thread_outbox(OpOutbox* outbox);

 private:
  friend class ExecutingOwnerScope;

  /// Rolls the watchdog window to now_'s simulated second and charges one
  /// event against the budgets. Returns false when the watchdog trips (the
  /// run loop must stop).
  bool watchdog_charge();
  void watchdog_trip(std::string reason);

  std::size_t counter_index(std::uint32_t rank) const;
  /// Builds the canonical key for (at, owner), applying the bump rule: a
  /// key that would not sort strictly after the engine's processed bound is
  /// moved to bound.time + 1us. Consumes the owner's sequence counter.
  EventKey make_key(Time at, std::uint32_t owner);
  EventHandle schedule_canonical(std::uint32_t owner, Time at, Callback fn);
  void post_op_impl(Duration delay, bool is_send, Callback fn);
  std::size_t run_loop(Time deadline, bool use_key_bound, EventKey bound,
                       bool drain);

  Time now_ = Time::origin();
  EventQueue queue_;
  std::uint64_t seed_;
  Rng root_rng_;
  std::uint64_t events_fired_ = 0;
  bool registered_log_clock_ = false;

  // Canonical-order state.
  bool canonical_ = false;
  bool forbid_world_rank_ = false;
  std::uint32_t executing_owner_ = kWorldRank;
  /// Key of the last event this engine fired (or the seal of the last run
  /// segment); schedules that would not sort after it are bumped.
  EventKey bound_{};
  bool bound_valid_ = false;
  std::shared_ptr<std::vector<std::uint64_t>> counters_;
  std::uint64_t late_insertions_ = 0;
  std::function<void(EventKey, std::uint32_t)> send_op_hook_;

  // Watchdog state (cold unless armed).
  WatchdogConfig watchdog_config_;
  WatchdogReport watchdog_;
  std::int64_t watchdog_window_sec_ = -1;
  std::chrono::steady_clock::time_point watchdog_wall_start_;
};

}  // namespace et::sim
