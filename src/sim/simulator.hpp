#pragma once

#include <cstdint>
#include <string_view>

#include "sim/event_queue.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

/// The discrete-event simulator driving every experiment in this repo.
///
/// Single-threaded by design: a sensor-network run is a deterministic
/// function of (scenario parameters, seed). Components schedule callbacks;
/// the simulator advances virtual time to the next event and fires it.
/// Independent runs may execute on different threads concurrently (see
/// bench/sweep_runner.hpp) — a Simulator instance shares no mutable state
/// with any other.
namespace et::sim {

class Simulator {
 public:
  /// Move-only small-buffer callback (see EventQueue::Callback); any
  /// lambda or `std::function` converts implicitly.
  using Callback = EventQueue::Callback;

  explicit Simulator(std::uint64_t seed = 1);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator();

  /// Current virtual time.
  Time now() const { return now_; }

  /// Master seed for this run.
  std::uint64_t seed() const { return seed_; }

  /// Derives a deterministic RNG stream for a named component.
  Rng make_rng(std::string_view component) const {
    return root_rng_.fork(component);
  }

  /// Schedules `fn` to run after `delay` (>= 0) of virtual time.
  EventHandle schedule(Duration delay, Callback fn);

  /// Schedules `fn` at an absolute virtual time (>= now()).
  EventHandle schedule_at(Time at, Callback fn);

  /// Schedules `fn` every `period`, starting after `first_delay`. The
  /// returned handle cancels the *entire* periodic chain.
  EventHandle schedule_periodic(Duration first_delay, Duration period,
                                Callback fn);

  /// Runs events until the queue drains or `deadline` is passed. Events at
  /// exactly `deadline` still fire; time never advances beyond it. Returns
  /// the number of events fired.
  std::size_t run_until(Time deadline);

  /// Runs for `span` of virtual time from now().
  std::size_t run_for(Duration span) { return run_until(now_ + span); }

  /// Runs until the event queue is empty. Returns events fired. Use only in
  /// tests with finite schedules (periodic events never drain).
  std::size_t run_all();

  /// Total events fired since construction.
  std::uint64_t events_fired() const { return events_fired_; }

  std::size_t pending_events() const { return queue_.size(); }

 private:
  Time now_ = Time::origin();
  EventQueue queue_;
  std::uint64_t seed_;
  Rng root_rng_;
  std::uint64_t events_fired_ = 0;
};

}  // namespace et::sim
