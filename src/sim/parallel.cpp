#include "sim/parallel.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <limits>
#include <utility>

namespace et::sim {

namespace {

constexpr std::uint64_t kMaxSeq = ~std::uint64_t{0};

/// Separation between two axis-aligned intervals (0 when they overlap).
double axis_gap(double a_min, double a_max, double b_min, double b_max) {
  if (a_max < b_min) return b_min - a_max;
  if (b_max < a_min) return a_min - b_max;
  return 0.0;
}

double rect_gap(const Rect& a, const Rect& b) {
  const double gx = axis_gap(a.min.x, a.max.x, b.min.x, b.max.x);
  const double gy = axis_gap(a.min.y, a.max.y, b.min.y, b.max.y);
  return std::hypot(gx, gy);
}

double point_rect_gap(Vec2 p, const Rect& r) {
  return distance(p, r.clamp(p));
}

/// Minimum transmissions for an effect to travel `gap`: each covers at most
/// `radius`. The epsilon rounds borderline gaps *down* — underestimating
/// hops narrows windows (safe), overestimating would widen them (unsafe).
unsigned hops_for(double gap, double radius) {
  if (gap <= 0.0 || radius <= 0.0) return 1;
  const double h = std::ceil(gap / radius - 1e-9);
  return h < 1.0 ? 1u : static_cast<unsigned>(h);
}

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

inline std::uint64_t wall_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ParallelKernel::ParallelKernel(Simulator& master, const KernelConfig& config,
                               Rect world_bounds)
    : master_(master),
      world_(world_bounds),
      n_workers_(std::max(1u, config.threads)) {
  // Barrier waiters spin briefly before parking — but only when the host
  // actually has a core per participant (workers + the master). On an
  // oversubscribed host a spinning waiter steals the core the worker it is
  // waiting for needs, so park immediately instead.
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  spin_limit_ = cores > n_workers_ ? 16384 : 1;
  const unsigned n_tiles =
      n_workers_ * std::max(1u, config.tiles_per_thread);
  // Factor the tile count into the rows x cols grid whose cells best match
  // the world's aspect ratio (squarest cells -> fewest cross-tile
  // neighbour pairs and the most honest hop distances).
  const double w = std::max(1e-9, world_.width());
  const double h = std::max(1e-9, world_.height());
  double best_score = std::numeric_limits<double>::infinity();
  for (unsigned r = 1; r <= n_tiles; ++r) {
    if (n_tiles % r != 0) continue;
    const unsigned c = n_tiles / r;
    const double score = std::abs(std::log((w / c) / (h / r)));
    if (score < best_score) {
      best_score = score;
      rows_ = r;
      cols_ = c;
    }
  }
  tiles_.resize(n_tiles);
  tile_rects_.reserve(n_tiles);
  for (unsigned r = 0; r < rows_; ++r) {
    for (unsigned c = 0; c < cols_; ++c) {
      tile_rects_.push_back(
          Rect{{world_.min.x + world_.width() * c / cols_,
                world_.min.y + world_.height() * r / rows_},
               {world_.min.x + world_.width() * (c + 1) / cols_,
                world_.min.y + world_.height() * (r + 1) / rows_}});
    }
  }
  for (auto& tile : tiles_) {
    // Tile simulators share the master seed so `make_rng` forks the same
    // per-mote streams; they never own the calling thread's log clock and
    // never hold world-ranked events.
    tile.sim =
        std::make_unique<Simulator>(master.seed(), /*register_log_clock=*/false);
    tile.sim->forbid_world_rank();
  }
  tile_ends_.resize(n_tiles);
  tile_bounds_.resize(n_tiles);
  // Radio-entry ops that bypass the tile outboxes (sends issued from
  // world/setup context go straight into the master queue) still have to
  // reach the window planner's pending-send set.
  master_.set_send_op_hook([this](EventKey key, std::uint32_t owner) {
    send_ops_.push_back(SendOp{key, owner});
  });
  workers_.reserve(n_workers_);
  for (unsigned w_idx = 0; w_idx < n_workers_; ++w_idx) {
    workers_.emplace_back([this, w_idx] { worker_main(w_idx); });
  }
}

ParallelKernel::~ParallelKernel() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_.store(true, std::memory_order_release);
    // Bump the phase so spinning workers notice without a wakeup.
    phase_.fetch_add(1, std::memory_order_release);
  }
  cv_work_.notify_all();
  for (auto& worker : workers_) worker.join();
  master_.set_send_op_hook({});
}

Simulator& ParallelKernel::sim_for(double x, double y) {
  const double w = world_.width();
  const double h = world_.height();
  auto clamp_idx = [](double v, unsigned n) {
    if (!(v > 0.0)) return 0u;
    const auto i = static_cast<long long>(v);
    return i >= static_cast<long long>(n) ? n - 1
                                          : static_cast<unsigned>(i);
  };
  const unsigned c =
      w > 0.0 ? clamp_idx((x - world_.min.x) / w * cols_, cols_) : 0u;
  const unsigned r =
      h > 0.0 ? clamp_idx((y - world_.min.y) / h * rows_, rows_) : 0u;
  return *tiles_[static_cast<std::size_t>(r) * cols_ + c].sim;
}

std::vector<Simulator*> ParallelKernel::all_sims() {
  std::vector<Simulator*> sims;
  sims.reserve(tiles_.size() + 1);
  sims.push_back(&master_);
  for (auto& tile : tiles_) sims.push_back(tile.sim.get());
  return sims;
}

void ParallelKernel::finalize(WindowPlan plan) {
  assert(plan.min_airtime.is_positive() &&
         "lookahead must come from the medium");
  assert(!plan.wide || plan.rx_handoff >= plan.min_airtime);
  plan_ = std::move(plan);
  plan_valid_ = true;
  hop_cycle_ = plan_.tx_handoff + plan_.min_airtime + plan_.rx_handoff;
  // Tile-pair lookahead matrix: hops(i, j) transmissions to get from tile
  // i's rectangle into tile j's, each costing one hop cycle.
  const std::size_t n = tiles_.size();
  tile_hops_.assign(n * n, 1u);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      tile_hops_[i * n + j] =
          hops_for(rect_gap(tile_rects_[i], tile_rects_[j]), plan_.hop_radius);
    }
  }
}

void ParallelKernel::worker_main(unsigned worker_index) {
  std::uint64_t seen_phase = 0;
  for (;;) {
    // Wait for a new phase: bounded spin, then park.
    int spins = 0;
    while (phase_.load(std::memory_order_acquire) == seen_phase) {
      if (++spins < spin_limit_) {
        cpu_relax();
        continue;
      }
      std::unique_lock<std::mutex> lk(mu_);
      // Dekker pairing with the publisher: the sleeper count is raised
      // before the final phase check; the publisher bumps the phase before
      // reading the count. All four accesses are seq_cst, so one side
      // always sees the other.
      sleepers_.fetch_add(1, std::memory_order_seq_cst);
      cv_work_.wait(lk, [&] {
        return phase_.load(std::memory_order_seq_cst) != seen_phase;
      });
      sleepers_.fetch_sub(1, std::memory_order_seq_cst);
      break;
    }
    if (shutdown_.load(std::memory_order_acquire)) return;
    seen_phase = phase_.load(std::memory_order_acquire);
    // phase_kind_, tile_bounds_ and the fanout fields are all written
    // before the phase_ bump (happens-before via the seq_cst bump/load).
    if (phase_kind_ == PhaseKind::kFanout) {
      drain_fanout();
    } else {
      for (std::size_t t = worker_index; t < tiles_.size(); t += n_workers_) {
        Simulator::set_thread_outbox(&tiles_[t].outbox);
        tiles_[t].sim->run_until_key(tile_bounds_[t]);
      }
      Simulator::set_thread_outbox(nullptr);
    }
    if (running_.fetch_sub(1, std::memory_order_seq_cst) == 1 &&
        master_waiting_.load(std::memory_order_seq_cst)) {
      std::lock_guard<std::mutex> lk(mu_);
      cv_done_.notify_one();
    }
  }
}

void ParallelKernel::drain_fanout() {
  const auto* body = fanout_body_;
  for (;;) {
    const std::size_t g = fanout_next_.fetch_add(1, std::memory_order_seq_cst);
    if (g >= fanout_count_) return;
    (*body)(g);
  }
}

void ParallelKernel::run_pool_phase() {
  running_.store(n_workers_, std::memory_order_relaxed);
  phase_.fetch_add(1, std::memory_order_seq_cst);
  if (sleepers_.load(std::memory_order_seq_cst) > 0) {
    // Parked workers re-check the phase under the lock, so pairing the
    // bump with lock+notify closes the lost-wakeup window.
    std::lock_guard<std::mutex> lk(mu_);
    cv_work_.notify_all();
  }
  // The master helps drain fan-out batches instead of idling at the join.
  if (phase_kind_ == PhaseKind::kFanout) drain_fanout();
  // Completion: bounded spin on the worker count, then park on cv_done_.
  int spins = 0;
  while (running_.load(std::memory_order_acquire) != 0) {
    if (++spins < spin_limit_) {
      cpu_relax();
      continue;
    }
    master_waiting_.store(true, std::memory_order_seq_cst);
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] {
      return running_.load(std::memory_order_seq_cst) == 0;
    });
    master_waiting_.store(false, std::memory_order_seq_cst);
    break;
  }
}

void ParallelKernel::run_fanout(std::size_t n_groups, std::size_t n_receivers,
                                const std::function<void(std::size_t)>& body) {
  stats_.fanout_batches++;
  stats_.fanout_receivers += n_receivers;
  if (n_groups <= 1) {
    for (std::size_t g = 0; g < n_groups; ++g) body(g);
    return;
  }
  fanout_body_ = &body;
  fanout_count_ = n_groups;
  fanout_next_.store(0, std::memory_order_relaxed);
  phase_kind_ = PhaseKind::kFanout;
  run_pool_phase();
  phase_kind_ = PhaseKind::kTiles;
  fanout_body_ = nullptr;
}

void ParallelKernel::run_tile_phase() {
  // Tile keys always rank below the bound's channel/world rank, so a tile
  // has work in this window iff its next event time is within its bound.
  bool any_work = false;
  for (std::size_t t = 0; t < tiles_.size(); ++t) {
    if (!tiles_[t].sim->queue_empty() &&
        tiles_[t].sim->next_event_time() <= tile_bounds_[t].time) {
      any_work = true;
      break;
    }
  }
  if (any_work) {
    const std::uint64_t t0 = wall_ns();
    run_pool_phase();
    const std::uint64_t t1 = wall_ns();
    // The master is blocked for the whole publish-to-join span; tile work
    // proceeds in parallel during it, so the span is both the tile-phase
    // wall time and the master's barrier wait.
    stats_.tile_phase_ns += t1 - t0;
    stats_.barrier_wait_ns += t1 - t0;
  }
  // Replay buffered channel ops into the master queue; the heap orders
  // them by canonical key, reproducing serial execution order exactly.
  // Radio-entry ops double as pending-send constraints for the planner.
  const std::uint64_t t2 = wall_ns();
  for (auto& tile : tiles_) {
    for (auto& op : tile.outbox) {
      if (op.is_send) send_ops_.push_back(SendOp{op.key, op.fire_owner});
      master_.schedule_at_key(op.key, op.fire_owner, std::move(op.fn));
    }
    tile.outbox.clear();
  }
  stats_.serial_phase_ns += wall_ns() - t2;
}

Time ParallelKernel::plan_tile_ends(Time deadline) {
  const std::size_t n = tiles_.size();
  const Time hard_cap = deadline + Duration::micros(1);
  if (!plan_.wide) {
    // Narrow mode: the original global-min-airtime window for everyone.
    const Time end = std::min(floor_ + plan_.min_airtime, hard_cap);
    for (std::size_t j = 0; j < n; ++j) tile_ends_[j] = end;
    return end;
  }

  Time cap = floor_ + plan_.window_cap;
  if (cap > hard_cap) cap = hard_cap;
  for (std::size_t j = 0; j < n; ++j) tile_ends_[j] = cap;
  auto constrain = [&](std::size_t j, Time at) {
    if (at < tile_ends_[j]) tile_ends_[j] = at;
  };

  // (1) Tile sources: everything tile i does this round stems from events
  // no earlier than its next pending one, and needs hops(i, j) full hop
  // cycles to be heard inside tile j.
  for (std::size_t i = 0; i < n; ++i) {
    const Time next_i = tiles_[i].sim->next_event_time();
    if (next_i > deadline) continue;
    for (std::size_t j = 0; j < n; ++j) {
      constrain(j, next_i + hop_cycle_ * static_cast<double>(
                                             tile_hops_[i * n + j]));
    }
  }

  // (2) Pending radio-entry ops: the frame enters the MAC no earlier than
  // the op's key, completes one airtime later at the earliest, and is
  // heard rx_handoff after that — within hop_radius of the sending mote.
  for (const SendOp& op : send_ops_) {
    if (op.key.time > deadline) continue;
    const Time base = op.key.time + plan_.min_airtime + plan_.rx_handoff;
    if (op.owner < plan_.n_motes && plan_.pos_of) {
      const Vec2 pos = plan_.pos_of(op.owner);
      for (std::size_t j = 0; j < n; ++j) {
        const unsigned hops =
            hops_for(point_rect_gap(pos, tile_rects_[j]), plan_.hop_radius);
        constrain(j, base + hop_cycle_ * static_cast<double>(hops - 1));
      }
    } else {
      // Sends from world/setup context have no reliable position; treat
      // them as global.
      for (std::size_t j = 0; j < n; ++j) constrain(j, base);
    }
  }

  // (3) Channel state: active transmissions and pending MAC wakeups, as
  // (earliest completion, position) pairs. Heard rx_handoff after the
  // completion, hop_radius from the source.
  channel_scratch_.clear();
  if (plan_.collect_channel) plan_.collect_channel(channel_scratch_);
  for (const auto& [done, pos] : channel_scratch_) {
    if (done > deadline) continue;
    const Time base = done + plan_.rx_handoff;
    for (std::size_t j = 0; j < n; ++j) {
      const unsigned hops =
          hops_for(point_rect_gap(pos, tile_rects_[j]), plan_.hop_radius);
      constrain(j, base + hop_cycle_ * static_cast<double>(hops - 1));
    }
  }

  // Safety floor: the fixed-lookahead window is always admissible, so the
  // planner never does worse than the narrow kernel.
  const Time safety = floor_ + plan_.min_airtime;
  Time e_min = hard_cap;
  for (std::size_t j = 0; j < n; ++j) {
    if (tile_ends_[j] < safety) tile_ends_[j] = safety;
    if (tile_ends_[j] > hard_cap) tile_ends_[j] = hard_cap;
    if (tile_ends_[j] < e_min) e_min = tile_ends_[j];
  }
  return e_min;
}

std::size_t ParallelKernel::run_until(Time deadline) {
  assert(plan_valid_ && "finalize() before run_until()");
  auto total_fired = [this] {
    std::uint64_t total = master_.events_fired();
    for (auto& tile : tiles_) total += tile.sim->events_fired();
    return total;
  };
  const std::uint64_t fired_before = total_fired();
  const std::size_t n = tiles_.size();

  for (;;) {
    // Fast-forward: jump the window floor to the earliest pending event
    // anywhere, so idle stretches cost one scan instead of many windows.
    Time next = master_.next_event_time();
    for (auto& tile : tiles_) {
      const Time tile_next = tile.sim->next_event_time();
      if (tile_next < next) next = tile_next;
    }
    if (next > deadline) break;
    if (next > floor_) floor_ = next;

    const Time e_min = plan_tile_ends(deadline);
    const Time world_time = master_.next_world_time();
    const bool world_in_range = world_time <= deadline;

    // Per-tile bounds, individually capped at the next world event: world
    // events may touch any mote's state (fault injection, scenario
    // drivers), so no tile may pass one — tiles already past their bound
    // simply no-op this round.
    for (std::size_t j = 0; j < n; ++j) {
      tile_bounds_[j] =
          world_in_range && world_time < tile_ends_[j]
              ? EventKey{world_time, kChannelRank, kMaxSeq}
              : EventKey{tile_ends_[j] - Duration::micros(1), kWorldRank,
                         kMaxSeq};
    }

    enum class Mode { kCutAtWorld, kFullWindow, kFinal } mode;
    EventKey master_bound;
    if (world_in_range && world_time < e_min) {
      // Every tile is stopped at the world event's timestamp: run motes
      // and the channel up to (and including) it, then the world event
      // itself, so cross-cutting machinery observes exactly the serial
      // prefix.
      mode = Mode::kCutAtWorld;
      master_bound = EventKey{world_time, kChannelRank, kMaxSeq};
    } else if (e_min <= deadline) {
      mode = Mode::kFullWindow;
      master_bound =
          EventKey{e_min - Duration::micros(1), kWorldRank, kMaxSeq};
    } else {
      mode = Mode::kFinal;
      master_bound = EventKey{deadline, kWorldRank, kMaxSeq};
    }

    // Prepare shared world state out to the furthest bound any engine will
    // reach this round, while still single-threaded.
    if (plan_.prepare) {
      Time prep = master_bound.time;
      for (std::size_t j = 0; j < n; ++j) {
        if (tile_bounds_[j].time > prep) prep = tile_bounds_[j].time;
      }
      plan_.prepare(prep);
    }

    stats_.windows++;
    const Duration width = master_bound.time - floor_;
    stats_.window_width_total += width;
    if (width > stats_.window_width_max) stats_.window_width_max = width;

    run_tile_phase();
    const std::uint64_t master_t0 = wall_ns();
    master_.run_until_key(master_bound);
    if (mode == Mode::kCutAtWorld) {
      master_.run_until_key(EventKey{world_time, kWorldRank, kMaxSeq});
      stats_.windows_cut_world++;
      floor_ = world_time;
    } else if (mode == Mode::kFullWindow) {
      stats_.windows_full++;
      floor_ = e_min;
    } else {
      stats_.windows_final++;
    }
    // Executed radio-entry ops are no longer *pending* — their frames are
    // now active transmissions, queued behind one, or backoff wakeups, all
    // covered by the channel constraints.
    const Time executed =
        mode == Mode::kCutAtWorld ? world_time : master_bound.time;
    std::erase_if(send_ops_, [executed](const SendOp& op) {
      return op.key.time <= executed;
    });
    stats_.serial_phase_ns += wall_ns() - master_t0;
    if (mode == Mode::kFinal) break;
  }

  master_.finish_run(deadline);
  for (auto& tile : tiles_) tile.sim->finish_run(deadline);
  if (floor_ < deadline) floor_ = deadline;
  return static_cast<std::size_t>(total_fired() - fired_before);
}

}  // namespace et::sim
