#include "sim/parallel.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace et::sim {

namespace {

constexpr std::uint64_t kMaxSeq = ~std::uint64_t{0};

/// Deterministic, platform-independent cell hash (splitmix-style mix); the
/// tile assignment must not depend on std::hash or pointer values.
std::uint64_t cell_hash(std::int64_t cx, std::int64_t cy) {
  std::uint64_t h = static_cast<std::uint64_t>(cx) * 0x9E3779B97F4A7C15ull;
  h ^= static_cast<std::uint64_t>(cy) + 0x9E3779B97F4A7C15ull + (h << 6) +
       (h >> 2);
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 31;
  return h;
}

}  // namespace

ParallelKernel::ParallelKernel(Simulator& master, const KernelConfig& config,
                               double cell_size)
    : master_(master),
      cell_size_(cell_size),
      n_workers_(std::max(1u, config.threads)) {
  assert(cell_size_ > 0.0);
  // Barrier waiters spin briefly before parking — but only when the host
  // actually has a core per participant (workers + the master). On an
  // oversubscribed host a spinning waiter steals the core the worker it is
  // waiting for needs, so park immediately instead.
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  spin_limit_ = cores > n_workers_ ? 16384 : 1;
  const unsigned n_tiles =
      n_workers_ * std::max(1u, config.tiles_per_thread);
  tiles_.resize(n_tiles);
  for (auto& tile : tiles_) {
    // Tile simulators share the master seed so `make_rng` forks the same
    // per-mote streams; they never own the calling thread's log clock and
    // never hold world-ranked events.
    tile.sim =
        std::make_unique<Simulator>(master.seed(), /*register_log_clock=*/false);
    tile.sim->forbid_world_rank();
  }
  workers_.reserve(n_workers_);
  for (unsigned w = 0; w < n_workers_; ++w) {
    workers_.emplace_back([this, w] { worker_main(w); });
  }
}

ParallelKernel::~ParallelKernel() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_.store(true, std::memory_order_release);
    // Bump the phase so spinning workers notice without a wakeup.
    phase_.fetch_add(1, std::memory_order_release);
  }
  cv_work_.notify_all();
  for (auto& worker : workers_) worker.join();
}

Simulator& ParallelKernel::sim_for(double x, double y) {
  const auto cx = static_cast<std::int64_t>(std::floor(x / cell_size_));
  const auto cy = static_cast<std::int64_t>(std::floor(y / cell_size_));
  return *tiles_[cell_hash(cx, cy) % tiles_.size()].sim;
}

std::vector<Simulator*> ParallelKernel::all_sims() {
  std::vector<Simulator*> sims;
  sims.reserve(tiles_.size() + 1);
  sims.push_back(&master_);
  for (auto& tile : tiles_) sims.push_back(tile.sim.get());
  return sims;
}

void ParallelKernel::finalize(Duration lookahead,
                              std::function<void(Time)> prepare) {
  assert(lookahead.is_positive() && "lookahead must come from the medium");
  lookahead_ = lookahead;
  prepare_ = std::move(prepare);
}

namespace {
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}
}  // namespace

void ParallelKernel::worker_main(unsigned worker_index) {
  std::uint64_t seen_phase = 0;
  for (;;) {
    // Wait for a new phase: bounded spin, then park.
    int spins = 0;
    while (phase_.load(std::memory_order_acquire) == seen_phase) {
      if (++spins < spin_limit_) {
        cpu_relax();
        continue;
      }
      std::unique_lock<std::mutex> lk(mu_);
      // Dekker pairing with the publisher: the sleeper count is raised
      // before the final phase check; the publisher bumps the phase before
      // reading the count. All four accesses are seq_cst, so one side
      // always sees the other.
      sleepers_.fetch_add(1, std::memory_order_seq_cst);
      cv_work_.wait(lk, [&] {
        return phase_.load(std::memory_order_seq_cst) != seen_phase;
      });
      sleepers_.fetch_sub(1, std::memory_order_seq_cst);
      break;
    }
    if (shutdown_.load(std::memory_order_acquire)) return;
    seen_phase = phase_.load(std::memory_order_acquire);
    const EventKey bound = phase_bound_;  // happens-before via phase_

    for (std::size_t t = worker_index; t < tiles_.size(); t += n_workers_) {
      Simulator::set_thread_outbox(&tiles_[t].outbox);
      tiles_[t].sim->run_until_key(bound);
    }
    Simulator::set_thread_outbox(nullptr);
    if (running_.fetch_sub(1, std::memory_order_seq_cst) == 1 &&
        master_waiting_.load(std::memory_order_seq_cst)) {
      std::lock_guard<std::mutex> lk(mu_);
      cv_done_.notify_one();
    }
  }
}

void ParallelKernel::run_tile_phase(EventKey bound) {
  // Tile keys always rank below the bound's channel/world rank, so a tile
  // has work in this window iff its next event time is within the bound.
  bool any_work = false;
  for (auto& tile : tiles_) {
    if (!tile.sim->queue_empty() &&
        tile.sim->next_event_time() <= bound.time) {
      any_work = true;
      break;
    }
  }
  if (any_work) {
    phase_bound_ = bound;
    running_.store(n_workers_, std::memory_order_relaxed);
    phase_.fetch_add(1, std::memory_order_seq_cst);  // publishes phase_bound_
    if (sleepers_.load(std::memory_order_seq_cst) > 0) {
      // Parked workers re-check the phase under the lock, so pairing the
      // bump with lock+notify closes the lost-wakeup window.
      std::lock_guard<std::mutex> lk(mu_);
      cv_work_.notify_all();
    }
    // Completion: bounded spin on the worker count, then park on cv_done_.
    int spins = 0;
    while (running_.load(std::memory_order_acquire) != 0) {
      if (++spins < spin_limit_) {
        cpu_relax();
        continue;
      }
      master_waiting_.store(true, std::memory_order_seq_cst);
      std::unique_lock<std::mutex> lk(mu_);
      cv_done_.wait(lk, [&] {
        return running_.load(std::memory_order_seq_cst) == 0;
      });
      master_waiting_.store(false, std::memory_order_seq_cst);
      break;
    }
  }
  // Replay buffered channel ops into the master queue; the heap orders
  // them by canonical key, reproducing serial execution order exactly.
  for (auto& tile : tiles_) {
    for (auto& op : tile.outbox) {
      master_.schedule_at_key(op.key, op.fire_owner, std::move(op.fn));
    }
    tile.outbox.clear();
  }
}

std::size_t ParallelKernel::run_until(Time deadline) {
  assert(lookahead_.is_positive() && "finalize() before run_until()");
  auto total_fired = [this] {
    std::uint64_t total = master_.events_fired();
    for (auto& tile : tiles_) total += tile.sim->events_fired();
    return total;
  };
  const std::uint64_t fired_before = total_fired();

  for (;;) {
    // Fast-forward: jump the window floor to the earliest pending event
    // anywhere, so idle stretches cost one scan instead of many windows.
    Time next = master_.next_event_time();
    for (auto& tile : tiles_) {
      const Time tile_next = tile.sim->next_event_time();
      if (tile_next < next) next = tile_next;
    }
    if (next > deadline) break;
    if (next > floor_) floor_ = next;

    const Time window_end = floor_ + lookahead_;
    const Time world_time = master_.next_world_time();
    enum class Mode { kCutAtWorld, kFullWindow, kFinal } mode;
    EventKey bound;
    if (world_time <= deadline && world_time < window_end) {
      // Windows never span a world event: run motes and the channel up to
      // (and including) the world event's timestamp, then the world event
      // itself, so cross-cutting machinery (faults, scenario drivers,
      // monitors) observes exactly the serial prefix.
      bound = EventKey{world_time, kChannelRank, kMaxSeq};
      mode = Mode::kCutAtWorld;
    } else if (window_end <= deadline) {
      bound = EventKey{window_end - Duration::micros(1), kWorldRank, kMaxSeq};
      mode = Mode::kFullWindow;
    } else {
      bound = EventKey{deadline, kWorldRank, kMaxSeq};
      mode = Mode::kFinal;
    }

    if (prepare_) prepare_(bound.time);
    run_tile_phase(bound);
    master_.run_until_key(bound);
    if (mode == Mode::kCutAtWorld) {
      master_.run_until_key(EventKey{world_time, kWorldRank, kMaxSeq});
      floor_ = world_time;
    } else if (mode == Mode::kFullWindow) {
      floor_ = window_end;
    } else {
      break;
    }
  }

  master_.finish_run(deadline);
  for (auto& tile : tiles_) tile.sim->finish_run(deadline);
  if (floor_ < deadline) floor_ = deadline;
  return static_cast<std::size_t>(total_fired() - fired_before);
}

}  // namespace et::sim
