#pragma once

/// Kernel selection knobs, shared by scenario params and SystemConfig.
/// Lives apart from sim/parallel.hpp so configs don't drag in <thread>.
namespace et::sim {

struct KernelConfig {
  /// Run the simulation on the parallel tiled kernel (sim/parallel.hpp).
  /// Implies canonical event order.
  bool use_parallel_kernel = false;
  /// Use the canonical (time, owner, seq) event order on the serial kernel.
  /// This is the serial oracle the parallel kernel is bit-exact against;
  /// off (default) keeps the legacy (time, FIFO) order byte-identical to
  /// the seed.
  bool canonical_order = false;
  /// Worker threads for the parallel kernel.
  unsigned threads = 4;
  /// Spatial tiles per worker thread (more tiles -> finer load balance,
  /// more barrier bookkeeping).
  unsigned tiles_per_thread = 1;
  /// Edge length of the square tile cells used to assign motes to tiles.
  /// 0 = derive from the radio communication radius.
  double tile_cell_size = 0.0;

  bool canonical() const { return use_parallel_kernel || canonical_order; }
};

}  // namespace et::sim
