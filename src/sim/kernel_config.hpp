#pragma once

/// Kernel selection knobs, shared by scenario params and SystemConfig.
/// Lives apart from sim/parallel.hpp so configs don't drag in <thread>.
namespace et::sim {

struct KernelConfig {
  /// Run the simulation on the parallel tiled kernel (sim/parallel.hpp).
  /// Implies canonical event order.
  bool use_parallel_kernel = false;
  /// Use the canonical (time, owner, seq) event order on the serial kernel.
  /// This is the serial oracle the parallel kernel is bit-exact against;
  /// off (default) keeps the legacy (time, FIFO) order byte-identical to
  /// the seed.
  bool canonical_order = false;
  /// Worker threads for the parallel kernel.
  unsigned threads = 4;
  /// Spatial tiles per worker thread (more tiles -> finer load balance,
  /// more barrier bookkeeping).
  unsigned tiles_per_thread = 1;
  /// Unused since tiles became contiguous blocks of the field rectangle
  /// (the planner needs real tile geometry); kept so existing configs keep
  /// compiling. Tile count is still threads * tiles_per_thread.
  double tile_cell_size = 0.0;
  /// Wide-window canonical semantics: sends issued from mote context pay an
  /// explicit MAC-entry (handoff) latency and receptions pay a longer
  /// completion-to-receiver handoff (both multiples of the minimum frame
  /// airtime, see RadioConfig), and the parallel kernel plans adaptive
  /// per-tile window bounds from a tile-pair lookahead matrix instead of
  /// cutting every window at the global minimum airtime. The serial
  /// canonical oracle applies the identical latencies, so serial and
  /// parallel stay bit-exact either way. Off reproduces the original
  /// fixed-lookahead windows (the global-min-airtime baseline).
  bool wide_windows = true;

  bool canonical() const { return use_parallel_kernel || canonical_order; }
};

}  // namespace et::sim
