#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "util/time.hpp"

/// The pending-event set of the discrete-event simulator.
///
/// Events are totally ordered by (time, insertion sequence) so that
/// simultaneous events fire in a deterministic FIFO order — essential for
/// reproducible distributed-protocol runs. Cancellation is O(1) via a shared
/// tombstone flag; cancelled events are skipped at pop time.
namespace et::sim {

/// Handle used to cancel a scheduled event. Default-constructed handles are
/// inert; cancelling an already-fired event is a harmless no-op.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevents the event from firing. Safe to call repeatedly.
  void cancel() {
    if (cancelled_) *cancelled_ = true;
  }

  /// True when the handle refers to an event that has neither fired nor
  /// been cancelled.
  bool pending() const { return cancelled_ && !*cancelled_ && !*fired_; }

 private:
  friend class EventQueue;
  friend class Simulator;
  EventHandle(std::shared_ptr<bool> cancelled, std::shared_ptr<bool> fired)
      : cancelled_(std::move(cancelled)), fired_(std::move(fired)) {}

  std::shared_ptr<bool> cancelled_;
  std::shared_ptr<bool> fired_;
};

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `fn` at absolute time `at`. Scheduling in the past is the
  /// caller's bug; the queue itself only orders what it is given.
  EventHandle schedule(Time at, Callback fn);

  bool empty() const;
  std::size_t size() const { return live_count_; }

  /// Time of the earliest live event. Undefined when empty().
  Time next_time() const;

  /// Removes and returns the earliest live event. Undefined when empty().
  struct Fired {
    Time time;
    Callback fn;
  };
  Fired pop();

  /// Drops every pending event.
  void clear();

 private:
  struct Entry {
    Time time;
    std::uint64_t seq;
    Callback fn;
    std::shared_ptr<bool> cancelled;
    std::shared_ptr<bool> fired;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Discards cancelled entries at the head.
  void skip_cancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  mutable std::size_t live_count_ = 0;
};

}  // namespace et::sim
