#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "util/inline_function.hpp"
#include "util/time.hpp"

/// The pending-event set of the discrete-event simulator.
///
/// Events are totally ordered by (time, owner rank, insertion sequence) so
/// that simultaneous events fire in a deterministic order — essential for
/// reproducible distributed-protocol runs. In the default (legacy) mode the
/// rank is always 0 and the sequence is a queue-global insertion counter,
/// which reduces to the classic (time, FIFO) order. The canonical mode used
/// by the parallel kernel (see sim/parallel.hpp) assigns ranks per owner
/// (mote id < channel < world) and per-owner sequence numbers, producing a
/// total order that is reproducible even when events are partitioned across
/// per-tile queues.
///
/// Storage is allocation-light: callbacks live in a slab of pooled slots
/// (small closures inline, see util::InlineFunction) addressed by
/// {index, generation} handles; the heap orders plain POD entries.
/// Cancellation is O(1) — it releases the slot and bumps its generation, so
/// the stale heap entry and any stale handles are recognised and skipped.
namespace et::sim {

class EventQueue;

/// Owner rank of medium-internal events (backoff, completion, delivery) in
/// canonical order. Greater than any mote id, below world events.
inline constexpr std::uint32_t kChannelRank = 0xFFFFFFFEu;
/// Owner rank of world events (scenario drivers, fault injector, monitors).
inline constexpr std::uint32_t kWorldRank = 0xFFFFFFFFu;

/// Canonical position of an event in the run's total order.
struct EventKey {
  Time time;
  std::uint32_t rank = 0;
  std::uint64_t seq = 0;
  friend constexpr auto operator<=>(const EventKey&, const EventKey&) =
      default;
};

namespace detail {
/// Control block shared between a periodic chain and its handle (the chain
/// is a Simulator concept, but the handle type lives here).
struct ChainControl {
  bool stopped = false;
};
}  // namespace detail

/// Handle used to cancel a scheduled event. Default-constructed handles are
/// inert; cancelling an already-fired event is a harmless no-op, as is any
/// use after the owning queue was destroyed.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevents the event from firing. Safe to call repeatedly.
  inline void cancel();

  /// True when the handle refers to an event that has neither fired nor
  /// been cancelled.
  inline bool pending() const;

 private:
  friend class EventQueue;
  friend class Simulator;

  EventHandle(std::weak_ptr<const void> alive, EventQueue* queue,
              std::uint32_t slot, std::uint32_t generation)
      : alive_(std::move(alive)),
        queue_(queue),
        slot_(slot),
        generation_(generation) {}
  explicit EventHandle(std::shared_ptr<detail::ChainControl> chain)
      : chain_(std::move(chain)) {}

  /// Liveness token of the owning queue; expires when the queue dies.
  std::weak_ptr<const void> alive_;
  EventQueue* queue_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t generation_ = 0;
  /// Set only for periodic-chain handles (see Simulator::schedule_periodic).
  std::shared_ptr<detail::ChainControl> chain_;
};

class EventQueue {
 public:
  using Callback = util::InlineFunction<64>;

  /// Schedules `fn` at absolute time `at` (legacy order: rank 0, global
  /// FIFO sequence). Scheduling in the past is the caller's bug; the queue
  /// itself only orders what it is given.
  EventHandle schedule(Time at, Callback fn);

  /// Schedules `fn` at an explicit canonical key. The caller owns key
  /// uniqueness; `fire_owner` is reported back on pop so the simulator can
  /// track the executing owner. World-ranked keys are additionally indexed
  /// for next_world_time().
  EventHandle schedule_key(EventKey key, std::uint32_t fire_owner,
                           Callback fn);

  bool empty() const;
  std::size_t size() const { return live_count_; }

  /// Time of the earliest live event. Undefined when empty().
  Time next_time() const;

  /// Canonical key of the earliest live event. Undefined when empty().
  EventKey next_key() const;

  /// Earliest live world-ranked (kWorldRank) event, or Time::max() if none.
  Time next_world_time() const;

  /// Removes and returns the earliest live event. Undefined when empty().
  struct Fired {
    Time time;
    std::uint32_t rank;
    std::uint64_t seq;
    std::uint32_t fire_owner;
    Callback fn;
    EventKey key() const { return EventKey{time, rank, seq}; }
  };
  Fired pop();

  /// Drops every pending event (and invalidates their handles).
  void clear();

  /// Slots currently allocated in the slab (capacity watermark, for tests).
  std::size_t slot_capacity() const { return slots_.size(); }

 private:
  friend class EventHandle;

  struct Entry {
    Time time;
    std::uint32_t rank;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t generation;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.rank != b.rank) return a.rank > b.rank;
      return a.seq > b.seq;
    }
  };
  struct Slot {
    Callback fn;
    std::uint32_t generation = 0;
    std::uint32_t fire_owner = 0;
    bool live = false;
  };

  bool handle_pending(std::uint32_t slot, std::uint32_t generation) const {
    return slot < slots_.size() && slots_[slot].live &&
           slots_[slot].generation == generation;
  }
  void handle_cancel(std::uint32_t slot, std::uint32_t generation);

  std::uint32_t alloc_slot(Callback fn, std::uint32_t fire_owner);

  /// Frees a live slot: destroys the callback now (releasing captured
  /// state), bumps the generation so stale heap entries and handles miss,
  /// and recycles the index.
  void release_slot(std::uint32_t index);

  /// Discards cancelled entries at the head.
  void skip_cancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  /// Secondary index over live world-ranked events; entries are validated
  /// lazily against the slab (slot liveness + generation), so cancellation
  /// needs no bookkeeping here.
  mutable std::priority_queue<Entry, std::vector<Entry>, Later> world_heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_count_ = 0;
  /// Expires with the queue; handles check it before dereferencing queue_.
  std::shared_ptr<const void> alive_ = std::make_shared<int>(0);
};

inline void EventHandle::cancel() {
  if (chain_) {
    chain_->stopped = true;
  } else if (queue_ && !alive_.expired()) {
    queue_->handle_cancel(slot_, generation_);
  }
}

inline bool EventHandle::pending() const {
  if (chain_) return !chain_->stopped;
  return queue_ && !alive_.expired() &&
         queue_->handle_pending(slot_, generation_);
}

}  // namespace et::sim
