#include "sim/simulator.hpp"

#include <cassert>
#include <memory>
#include <utility>

#include "util/log.hpp"

namespace et::sim {

Simulator::Simulator(std::uint64_t seed) : seed_(seed), root_rng_(seed) {
  Logger::instance().set_clock([this] { return now_; });
}

Simulator::~Simulator() { Logger::instance().clear_clock(); }

EventHandle Simulator::schedule(Duration delay, std::function<void()> fn) {
  assert(!delay.is_negative());
  return queue_.schedule(now_ + delay, std::move(fn));
}

EventHandle Simulator::schedule_at(Time at, std::function<void()> fn) {
  assert(at >= now_);
  return queue_.schedule(at, std::move(fn));
}

EventHandle Simulator::schedule_periodic(Duration first_delay, Duration period,
                                         std::function<void()> fn) {
  assert(period.is_positive());
  // The chain's tombstone: the returned handle flips it, every subsequent
  // firing checks it. `fired` stays false for the chain's lifetime so
  // pending() reports true until cancellation.
  auto stopped = std::make_shared<bool>(false);
  auto fired = std::make_shared<bool>(false);

  auto loop = std::make_shared<std::function<void()>>();
  auto shared_fn = std::make_shared<std::function<void()>>(std::move(fn));
  *loop = [this, stopped, loop, shared_fn, period]() {
    if (*stopped) return;
    (*shared_fn)();
    if (*stopped) return;
    schedule(period, *loop);
  };
  schedule(first_delay, *loop);
  return EventHandle{std::move(stopped), std::move(fired)};
}

std::size_t Simulator::run_until(Time deadline) {
  std::size_t fired = 0;
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    auto ev = queue_.pop();
    assert(ev.time >= now_);
    now_ = ev.time;
    ev.fn();
    ++fired;
    ++events_fired_;
  }
  if (now_ < deadline) now_ = deadline;
  return fired;
}

std::size_t Simulator::run_all() {
  std::size_t fired = 0;
  while (!queue_.empty()) {
    auto ev = queue_.pop();
    assert(ev.time >= now_);
    now_ = ev.time;
    ev.fn();
    ++fired;
    ++events_fired_;
  }
  return fired;
}

}  // namespace et::sim
