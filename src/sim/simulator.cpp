#include "sim/simulator.hpp"

#include <cassert>
#include <memory>
#include <utility>

#include "util/log.hpp"

namespace et::sim {

namespace {

/// One periodic chain: a single control block holds the user callback and
/// the stop flag; each firing re-arms by scheduling a lambda that captures
/// only the shared_ptr (16 bytes — always inline in the event slot).
struct PeriodicChain : detail::ChainControl {
  Simulator* sim = nullptr;
  Duration period;
  Simulator::Callback fn;

  void fire(const std::shared_ptr<PeriodicChain>& self) {
    if (stopped) return;
    fn();
    if (stopped) return;
    sim->schedule(period, [self] { self->fire(self); });
  }
};

}  // namespace

Simulator::Simulator(std::uint64_t seed) : seed_(seed), root_rng_(seed) {
  Logger::instance().set_clock([this] { return now_; });
}

Simulator::~Simulator() { Logger::instance().clear_clock(); }

EventHandle Simulator::schedule(Duration delay, Callback fn) {
  assert(!delay.is_negative());
  return queue_.schedule(now_ + delay, std::move(fn));
}

EventHandle Simulator::schedule_at(Time at, Callback fn) {
  assert(at >= now_);
  return queue_.schedule(at, std::move(fn));
}

EventHandle Simulator::schedule_periodic(Duration first_delay, Duration period,
                                         Callback fn) {
  assert(period.is_positive());
  auto chain = std::make_shared<PeriodicChain>();
  chain->sim = this;
  chain->period = period;
  chain->fn = std::move(fn);
  schedule(first_delay, [chain] { chain->fire(chain); });
  // The chain handle flips the stop flag; the next firing observes it and
  // does not re-arm. pending() reports true until cancellation.
  return EventHandle{
      std::static_pointer_cast<detail::ChainControl>(std::move(chain))};
}

std::size_t Simulator::run_until(Time deadline) {
  std::size_t fired = 0;
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    auto ev = queue_.pop();
    assert(ev.time >= now_);
    now_ = ev.time;
    ev.fn();
    ++fired;
    ++events_fired_;
  }
  if (now_ < deadline) now_ = deadline;
  return fired;
}

std::size_t Simulator::run_all() {
  std::size_t fired = 0;
  while (!queue_.empty()) {
    auto ev = queue_.pop();
    assert(ev.time >= now_);
    now_ = ev.time;
    ev.fn();
    ++fired;
    ++events_fired_;
  }
  return fired;
}

}  // namespace et::sim
