#include "sim/simulator.hpp"

#include <cassert>
#include <memory>
#include <utility>

#include "util/log.hpp"

namespace et::sim {

namespace {

/// Engine currently executing events on this thread (master or tile).
thread_local Simulator* g_engine = nullptr;
/// Op outbox of the tile this thread is currently running (parallel only).
thread_local OpOutbox* g_outbox = nullptr;

/// RAII: marks `sim` as this thread's running engine for a run loop.
struct EngineScope {
  Simulator* prev;
  explicit EngineScope(Simulator* sim) : prev(g_engine) { g_engine = sim; }
  ~EngineScope() { g_engine = prev; }
  EngineScope(const EngineScope&) = delete;
  EngineScope& operator=(const EngineScope&) = delete;
};

/// One periodic chain: a single control block holds the user callback and
/// the stop flag; each firing re-arms by scheduling a lambda that captures
/// only the shared_ptr (16 bytes — always inline in the event slot).
/// Re-arming goes through Simulator::schedule, so in canonical mode every
/// link of the chain inherits the owner of the firing event.
struct PeriodicChain : detail::ChainControl {
  Simulator* sim = nullptr;
  Duration period;
  Simulator::Callback fn;

  void fire(const std::shared_ptr<PeriodicChain>& self) {
    if (stopped) return;
    fn();
    if (stopped) return;
    sim->schedule(period, [self] { self->fire(self); });
  }
};

}  // namespace

ExecutingOwnerScope::ExecutingOwnerScope(Simulator& fallback_engine,
                                         std::uint32_t owner) {
  engine_ = g_engine ? g_engine : &fallback_engine;
  prev_engine_ = g_engine;
  g_engine = engine_;
  prev_owner_ = engine_->executing_owner_;
  engine_->executing_owner_ = owner;
}

ExecutingOwnerScope::~ExecutingOwnerScope() {
  engine_->executing_owner_ = prev_owner_;
  g_engine = prev_engine_;
}

Simulator::Simulator(std::uint64_t seed, bool register_log_clock)
    : seed_(seed), root_rng_(seed) {
  if (register_log_clock) {
    Logger::instance().set_clock([this] { return now_; });
    registered_log_clock_ = true;
  }
}

Simulator::~Simulator() {
  if (registered_log_clock_) Logger::instance().clear_clock();
}

Time Simulator::ambient_now(const Simulator& fallback) {
  return g_engine ? g_engine->now_ : fallback.now_;
}

void Simulator::enable_canonical(
    std::shared_ptr<std::vector<std::uint64_t>> counters) {
  assert(queue_.empty() && "enable_canonical before scheduling anything");
  assert(counters && counters->size() >= 2);
  canonical_ = true;
  counters_ = std::move(counters);
}

std::size_t Simulator::counter_index(std::uint32_t rank) const {
  const std::size_t motes = counters_->size() - 2;
  if (rank == kChannelRank) return motes;
  if (rank == kWorldRank) return motes + 1;
  assert(rank < motes);
  return rank;
}

EventKey Simulator::make_key(Time at, std::uint32_t owner) {
  std::uint64_t& counter = (*counters_)[counter_index(owner)];
  EventKey key{at, owner, counter};
  // Bump rule: a schedule issued while (or after) event `bound_` executed
  // must sort strictly after it, or the new event would land in this
  // engine's past. Since bound_ tracks the *currently executing* event on
  // whichever engine runs this code, the bump decision is identical in the
  // serial and parallel engines.
  if (bound_valid_ && key <= bound_) key.time = bound_.time + Duration::micros(1);
  ++counter;
  return key;
}

std::uint64_t Simulator::alloc_seq(std::uint32_t rank) {
  assert(canonical_);
  Simulator& eng = g_engine ? *g_engine : *this;
  return (*eng.counters_)[eng.counter_index(rank)]++;
}

std::uint64_t Simulator::alloc_seq_block(std::uint32_t rank,
                                         std::uint64_t count) {
  assert(canonical_);
  Simulator& eng = g_engine ? *g_engine : *this;
  std::uint64_t& counter = (*eng.counters_)[eng.counter_index(rank)];
  const std::uint64_t first = counter;
  counter += count;
  return first;
}

EventHandle Simulator::schedule_canonical(std::uint32_t owner, Time at,
                                          Callback fn) {
  assert(!(forbid_world_rank_ && owner == kWorldRank));
  Simulator& eng = g_engine ? *g_engine : *this;
  const EventKey key = eng.make_key(at, owner);
  return queue_.schedule_key(key, owner, std::move(fn));
}

EventHandle Simulator::schedule(Duration delay, Callback fn) {
  assert(!delay.is_negative());
  if (!canonical_) return queue_.schedule(now_ + delay, std::move(fn));
  Simulator& eng = g_engine ? *g_engine : *this;
  return schedule_canonical(eng.executing_owner_, eng.now_ + delay,
                            std::move(fn));
}

EventHandle Simulator::schedule_at(Time at, Callback fn) {
  if (!canonical_) {
    assert(at >= now_);
    return queue_.schedule(at, std::move(fn));
  }
  Simulator& eng = g_engine ? *g_engine : *this;
  assert(at >= eng.now_);
  return schedule_canonical(eng.executing_owner_, at, std::move(fn));
}

EventHandle Simulator::schedule_owned(std::uint32_t owner, Duration delay,
                                      Callback fn) {
  assert(!delay.is_negative());
  if (!canonical_) return queue_.schedule(now_ + delay, std::move(fn));
  Simulator& eng = g_engine ? *g_engine : *this;
  return schedule_canonical(owner, eng.now_ + delay, std::move(fn));
}

EventHandle Simulator::schedule_at_key(EventKey key, std::uint32_t fire_owner,
                                       Callback fn) {
  assert(canonical_);
  assert(!(forbid_world_rank_ && key.rank == kWorldRank));
  // A key at or below the processed bound is an insertion into this
  // engine's executed past — a conservative-window violation if it ever
  // happens. Counted (and asserted on by tests) rather than silently
  // reordered.
  if (bound_valid_ && key <= bound_) ++late_insertions_;
  return queue_.schedule_key(key, fire_owner, std::move(fn));
}

EventHandle Simulator::schedule_periodic(Duration first_delay, Duration period,
                                         Callback fn) {
  assert(period.is_positive());
  auto chain = std::make_shared<PeriodicChain>();
  chain->sim = this;
  chain->period = period;
  chain->fn = std::move(fn);
  schedule(first_delay, [chain] { chain->fire(chain); });
  // The chain handle flips the stop flag; the next firing observes it and
  // does not re-arm. pending() reports true until cancellation.
  return EventHandle{
      std::static_pointer_cast<detail::ChainControl>(std::move(chain))};
}

EventHandle Simulator::schedule_periodic_owned(std::uint32_t owner,
                                               Duration first_delay,
                                               Duration period, Callback fn) {
  assert(period.is_positive());
  auto chain = std::make_shared<PeriodicChain>();
  chain->sim = this;
  chain->period = period;
  chain->fn = std::move(fn);
  // Only the first link needs the explicit stamp; once it fires, re-arms
  // inherit `owner` as the executing owner.
  schedule_owned(owner, first_delay, [chain] { chain->fire(chain); });
  return EventHandle{
      std::static_pointer_cast<detail::ChainControl>(std::move(chain))};
}

void Simulator::post_op(Callback fn) {
  post_op_impl(Duration::zero(), /*is_send=*/false, std::move(fn));
}

void Simulator::post_radio_op(Duration entry_delay, Callback fn) {
  assert(!entry_delay.is_negative());
  post_op_impl(entry_delay, /*is_send=*/true, std::move(fn));
}

void Simulator::post_op_impl(Duration delay, bool is_send, Callback fn) {
  if (!canonical_) {
    fn();
    return;
  }
  Simulator& eng = g_engine ? *g_engine : *this;
  const std::uint32_t owner = eng.executing_owner_;
  const EventKey key = eng.make_key(eng.now_ + delay, owner);
  if (g_outbox) {
    // Tile phase: buffer; the kernel replays into the master queue at the
    // window barrier. Key order == issue order (sends shifted by the same
    // MAC-handoff everywhere), so the replayed execution order matches the
    // serial-canonical engine exactly.
    g_outbox->push_back(PendingOp{key, owner, std::move(fn), is_send});
  } else {
    // Master/setup context: radio ops skip the outbox, so the kernel's
    // pending-send tracking is fed through the hook instead.
    if (is_send && send_op_hook_) send_op_hook_(key, owner);
    queue_.schedule_key(key, owner, std::move(fn));
  }
}

void Simulator::set_watchdog(WatchdogConfig config) {
  watchdog_config_ = config;
  watchdog_ = WatchdogReport{};
  watchdog_window_sec_ = now_.to_micros() / 1'000'000;
  watchdog_wall_start_ = std::chrono::steady_clock::now();
}

void Simulator::watchdog_trip(std::string reason) {
  watchdog_.tripped = true;
  watchdog_.at = now_;
  watchdog_.reason = std::move(reason);
  ET_WARN("sim", "watchdog tripped at %s: %s",
          now_.to_string().c_str(), watchdog_.reason.c_str());
}

bool Simulator::watchdog_charge() {
  if (watchdog_.tripped) return false;
  const std::int64_t sec = now_.to_micros() / 1'000'000;
  if (sec != watchdog_window_sec_) {
    if (watchdog_.events_in_window > watchdog_.peak_events_per_sim_second) {
      watchdog_.peak_events_per_sim_second = watchdog_.events_in_window;
    }
    watchdog_window_sec_ = sec;
    watchdog_.events_in_window = 0;
    watchdog_wall_start_ = std::chrono::steady_clock::now();
  }
  ++watchdog_.events_in_window;
  const WatchdogConfig& cfg = watchdog_config_;
  if (cfg.max_events_per_sim_second != 0 &&
      watchdog_.events_in_window > cfg.max_events_per_sim_second) {
    watchdog_trip("event budget exceeded: " +
                  std::to_string(watchdog_.events_in_window) +
                  " events inside simulated second " +
                  std::to_string(watchdog_window_sec_) + " (budget " +
                  std::to_string(cfg.max_events_per_sim_second) + ")");
    return false;
  }
  // The wall-clock read is a syscall; amortize it over 1024 events. An
  // event storm reaches 1024 events quickly, and a storm-free slow second
  // is a host-load problem, not a livelock.
  if (cfg.max_wall_ms_per_sim_second != 0 &&
      (watchdog_.events_in_window & 1023u) == 0) {
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - watchdog_wall_start_)
            .count();
    watchdog_.wall_ms_in_window = wall_ms;
    if (wall_ms > static_cast<double>(cfg.max_wall_ms_per_sim_second)) {
      watchdog_trip("wall-clock budget exceeded: " +
                    std::to_string(wall_ms) +
                    " ms inside simulated second " +
                    std::to_string(watchdog_window_sec_) + " (budget " +
                    std::to_string(cfg.max_wall_ms_per_sim_second) + " ms)");
      return false;
    }
  }
  return true;
}

std::size_t Simulator::run_until(Time deadline) {
  EngineScope scope(this);
  std::size_t fired = 0;
  const bool guarded = watchdog_config_.enabled;
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    if (guarded && watchdog_.tripped) break;
    auto ev = queue_.pop();
    assert(ev.time >= now_);
    now_ = ev.time;
    if (guarded && !watchdog_charge()) break;
    if (canonical_) {
      bound_ = ev.key();
      bound_valid_ = true;
      executing_owner_ = ev.fire_owner;
    }
    ev.fn();
    ++fired;
    ++events_fired_;
  }
  // A tripped watchdog still advances the clock: drivers that loop on
  // run_for() must keep making (virtual-time) progress so the run winds
  // down instead of spinning on a frozen queue.
  if (now_ < deadline) now_ = deadline;
  if (canonical_) executing_owner_ = kWorldRank;
  return fired;
}

std::size_t Simulator::run_until_key(EventKey bound) {
  assert(canonical_);
  EngineScope scope(this);
  std::size_t fired = 0;
  const bool guarded = watchdog_config_.enabled;
  while (!queue_.empty() && queue_.next_key() <= bound) {
    if (guarded && watchdog_.tripped) break;
    auto ev = queue_.pop();
    assert(ev.time >= now_);
    now_ = ev.time;
    if (guarded && !watchdog_charge()) break;
    bound_ = ev.key();
    bound_valid_ = true;
    executing_owner_ = ev.fire_owner;
    ev.fn();
    ++fired;
    ++events_fired_;
  }
  executing_owner_ = kWorldRank;
  return fired;
}

std::size_t Simulator::run_all() {
  EngineScope scope(this);
  std::size_t fired = 0;
  const bool guarded = watchdog_config_.enabled;
  while (!queue_.empty()) {
    if (guarded && watchdog_.tripped) break;
    auto ev = queue_.pop();
    assert(ev.time >= now_);
    now_ = ev.time;
    if (guarded && !watchdog_charge()) break;
    if (canonical_) {
      bound_ = ev.key();
      bound_valid_ = true;
      executing_owner_ = ev.fire_owner;
    }
    ev.fn();
    ++fired;
    ++events_fired_;
  }
  if (canonical_) executing_owner_ = kWorldRank;
  return fired;
}

void Simulator::finish_run(Time deadline) {
  advance_to(deadline);
  if (!canonical_) return;
  // Seal the segment: everything up to and including `deadline` is in the
  // past on every engine, so schedules issued between run segments (from
  // scenario or test code) bump identically everywhere.
  bound_ = EventKey{deadline, kWorldRank, ~std::uint64_t{0}};
  bound_valid_ = true;
  executing_owner_ = kWorldRank;
}

void Simulator::set_thread_outbox(OpOutbox* outbox) { g_outbox = outbox; }

}  // namespace et::sim
