#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "metrics/track_decode.hpp"
#include "serve/track_store.hpp"

/// Ingest path of the serving tier: base-station reports -> track store.
///
/// Subscribes to the base station's kUser message stream, decodes `track`
/// reports with the shared decoder, applies the TrackRecorder's
/// leadership-epoch fence (a stale pre-partition leader must not regress a
/// served track), and batches admitted reports into the store — flushing
/// when the batch fills or on a periodic timer, whichever comes first.
///
/// Determinism across kernels: the message handler runs in mote context
/// (the base station's tile thread under the parallel kernel), but the
/// fence and batch state are master-owned. Each decoded report is handed
/// over via `Simulator::post_op`, which replays it on the master engine in
/// canonical key order — so batch composition, fencing decisions, and the
/// store's final contents are byte-identical under `serial` and
/// `parallel:N` kernels (enforced by tests/test_serve_equivalence.cpp).
namespace et::serve {

struct IngestConfig {
  std::string tag = "track";
  /// Flush to the store once this many admitted reports are pending.
  std::size_t max_batch = 32;
  /// Timer-driven flush bound: a trickle of reports reaches the store at
  /// most this late.
  Duration flush_period = Duration::millis(50);
  /// Keep every admitted report in an in-order tape (bench replay input).
  bool record_tape = false;
};

struct IngestStats {
  /// Reports that decoded as track reports (tag matched, payload valid).
  std::uint64_t reports_seen = 0;
  /// Admitted reports discarded by the leadership-epoch fence.
  std::uint64_t stale_discarded = 0;
  std::uint64_t batches_flushed = 0;
  std::uint64_t reports_stored = 0;
};

class TrackIngest {
 public:
  /// Attaches to `base_station`'s middleware stack. `store` must outlive
  /// the ingest object.
  TrackIngest(core::EnviroTrackSystem& system, NodeId base_station,
              ShardedTrackStore& store, IngestConfig config = {});
  ~TrackIngest();

  TrackIngest(const TrackIngest&) = delete;
  TrackIngest& operator=(const TrackIngest&) = delete;

  /// Drains any pending sub-batch into the store immediately (call before
  /// reading the store at the end of a run).
  void flush();

  IngestStats stats() const {
    IngestStats s = stats_;
    s.stale_discarded = fence_.stale_discarded();
    return s;
  }

  /// Admitted reports in ingest order; empty unless `record_tape` is set.
  const std::vector<metrics::DecodedTrack>& tape() const { return tape_; }

 private:
  void enqueue(const metrics::DecodedTrack& decoded);

  core::EnviroTrackSystem& system_;
  ShardedTrackStore& store_;
  IngestConfig config_;
  metrics::EpochFence fence_;
  std::vector<metrics::DecodedTrack> pending_;
  std::vector<metrics::DecodedTrack> tape_;
  IngestStats stats_;
  sim::EventHandle tick_;
};

}  // namespace et::serve
