#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "metrics/track_decode.hpp"
#include "util/geometry.hpp"
#include "util/ids.hpp"
#include "util/time.hpp"

/// Sharded in-memory track store — the serving tier's data plane.
///
/// The base station stops being a log and becomes a service: the ingest
/// path (serve/ingest.hpp) applies batches of decoded track reports from
/// the simulation side, while any number of client threads answer queries
/// concurrently — `latest(label)`, `history(label, window)`,
/// `tracks_in_region(rect)`. Tracks are sharded by context label (a label's
/// whole history lives in one shard, so a query touches exactly one shard
/// and ingest batches amortize one lock acquisition across all reports
/// that hash to it). Each label keeps a latest-position snapshot slot,
/// updated in place, plus a ring of recent points for history queries.
///
/// Concurrency contract: one writer (apply_batch, called from the ingest
/// path) and any number of reader threads. Shards are guarded by
/// shared_mutexes — readers take a shard's shared lock for the duration of
/// one query, the writer takes the exclusive lock once per (shard, batch).
/// A snapshot read copies the fixed-size latest slot only; it never walks
/// or copies the ring.
namespace et::serve {

/// The latest-position snapshot of one label. `seq` counts updates to the
/// label (1-based), so pollers can cheaply detect "no change since last
/// read" and tests can assert a served track never regresses.
struct TrackSnapshot {
  LabelId label;
  Vec2 position;
  Time time;              // simulation time of the report
  std::uint64_t epoch = 0;
  std::uint64_t seq = 0;
};

struct StoreConfig {
  /// Number of shards; rounded up to a power of two. Sized for the reader
  /// fleet, not the data: more shards = less reader/writer contention.
  std::size_t shard_count = 16;
  /// Recent points retained per label for history queries; older points
  /// are evicted ring-wise.
  std::size_t ring_capacity = 256;
};

struct StoreStats {
  std::uint64_t reports_applied = 0;
  std::uint64_t batches_applied = 0;
  std::uint64_t points_evicted = 0;
  std::uint64_t labels = 0;
};

class ShardedTrackStore {
 public:
  explicit ShardedTrackStore(StoreConfig config = {});

  ShardedTrackStore(const ShardedTrackStore&) = delete;
  ShardedTrackStore& operator=(const ShardedTrackStore&) = delete;

  // --- Writer side (the ingest path; single-threaded) ---

  /// Applies one batch of decoded reports in order. Reports are grouped by
  /// shard so each shard's exclusive lock is taken at most once per batch.
  void apply_batch(const std::vector<metrics::DecodedTrack>& batch);

  // --- Reader side (safe concurrently with apply_batch) ---

  /// Latest-position snapshot of `label`; nullopt for an unknown label.
  std::optional<TrackSnapshot> latest(LabelId label) const;

  /// Points of `label` no older than `window` before its newest point,
  /// oldest first (bounded by the ring capacity). Empty for unknown labels.
  std::vector<TrackSnapshot> history(LabelId label, Duration window) const;

  /// Latest snapshots of every label currently inside `region`, sorted by
  /// label id (deterministic answer for a given store state).
  std::vector<TrackSnapshot> tracks_in_region(Rect region) const;

  std::size_t shard_count() const { return shards_.size(); }
  StoreStats stats() const;

 private:
  struct Entry {
    TrackSnapshot latest;
    /// Ring of recent points: `ring[(start + i) % cap]` for i < size.
    std::vector<TrackSnapshot> ring;
    std::size_t ring_start = 0;
  };

  struct Shard {
    mutable std::shared_mutex mutex;
    std::unordered_map<LabelId, Entry> entries;
    std::uint64_t reports = 0;
    std::uint64_t batches = 0;
    std::uint64_t evicted = 0;
  };

  std::size_t shard_index(LabelId label) const;
  void apply_locked(Shard& shard, const metrics::DecodedTrack& report);

  std::size_t ring_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace et::serve
