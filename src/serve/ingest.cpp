#include "serve/ingest.hpp"

namespace et::serve {

TrackIngest::TrackIngest(core::EnviroTrackSystem& system, NodeId base_station,
                         ShardedTrackStore& store, IngestConfig config)
    : system_(system), store_(store), config_(std::move(config)) {
  pending_.reserve(config_.max_batch);
  system_.stack(base_station)
      .on_user_message([this](const core::UserMessagePayload& msg, NodeId) {
        // Mote context: decode here (read-only), then hand the report to
        // the master engine as a channel op — fence and batch state are
        // single-threaded and canonically ordered there.
        const Time now = sim::Simulator::ambient_now(system_.sim());
        const auto decoded = metrics::decode_track_report(msg, config_.tag, now);
        if (!decoded) return;
        system_.sim().post_op([this, d = *decoded] { enqueue(d); });
      });
  tick_ = system_.sim().schedule_periodic(config_.flush_period,
                                          config_.flush_period,
                                          [this] { flush(); });
}

TrackIngest::~TrackIngest() {
  tick_.cancel();
  flush();
}

void TrackIngest::enqueue(const metrics::DecodedTrack& decoded) {
  stats_.reports_seen++;
  if (!fence_.admit(decoded.label, decoded.epoch)) return;
  pending_.push_back(decoded);
  if (pending_.size() >= config_.max_batch) flush();
}

void TrackIngest::flush() {
  if (pending_.empty()) return;
  store_.apply_batch(pending_);
  stats_.batches_flushed++;
  stats_.reports_stored += pending_.size();
  if (config_.record_tape) {
    tape_.insert(tape_.end(), pending_.begin(), pending_.end());
  }
  pending_.clear();
}

}  // namespace et::serve
