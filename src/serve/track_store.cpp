#include "serve/track_store.hpp"

#include <algorithm>
#include <mutex>

namespace et::serve {

namespace {

/// splitmix64 finalizer: LabelId packs (creator node << 32 | seq), so the
/// low bits alone would send every label minted by the same mote to the
/// same shard.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

ShardedTrackStore::ShardedTrackStore(StoreConfig config)
    : ring_capacity_(std::max<std::size_t>(1, config.ring_capacity)) {
  const std::size_t count =
      round_up_pow2(std::max<std::size_t>(1, config.shard_count));
  shards_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::size_t ShardedTrackStore::shard_index(LabelId label) const {
  return static_cast<std::size_t>(mix(label.value())) &
         (shards_.size() - 1);
}

void ShardedTrackStore::apply_locked(Shard& shard,
                                     const metrics::DecodedTrack& report) {
  Entry& entry = shard.entries[report.label];
  entry.latest.label = report.label;
  entry.latest.position = report.position;
  entry.latest.time = report.time;
  entry.latest.epoch = report.epoch;
  entry.latest.seq++;
  if (entry.ring.size() < ring_capacity_) {
    entry.ring.push_back(entry.latest);
  } else {
    entry.ring[entry.ring_start] = entry.latest;
    entry.ring_start = (entry.ring_start + 1) % ring_capacity_;
    shard.evicted++;
  }
  shard.reports++;
}

void ShardedTrackStore::apply_batch(
    const std::vector<metrics::DecodedTrack>& batch) {
  if (batch.empty()) return;
  // Group by shard so each shard's exclusive lock is taken at most once
  // per batch, preserving the batch's internal order within each shard.
  std::vector<std::vector<const metrics::DecodedTrack*>> per_shard(
      shards_.size());
  for (const metrics::DecodedTrack& report : batch) {
    per_shard[shard_index(report.label)].push_back(&report);
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (per_shard[s].empty()) continue;
    Shard& shard = *shards_[s];
    std::unique_lock lock(shard.mutex);
    shard.batches++;
    for (const metrics::DecodedTrack* report : per_shard[s]) {
      apply_locked(shard, *report);
    }
  }
}

std::optional<TrackSnapshot> ShardedTrackStore::latest(LabelId label) const {
  const Shard& shard = *shards_[shard_index(label)];
  std::shared_lock lock(shard.mutex);
  const auto it = shard.entries.find(label);
  if (it == shard.entries.end()) return std::nullopt;
  return it->second.latest;
}

std::vector<TrackSnapshot> ShardedTrackStore::history(LabelId label,
                                                      Duration window) const {
  std::vector<TrackSnapshot> out;
  const Shard& shard = *shards_[shard_index(label)];
  std::shared_lock lock(shard.mutex);
  const auto it = shard.entries.find(label);
  if (it == shard.entries.end()) return out;
  const Entry& entry = it->second;
  const Time cutoff = entry.latest.time - window;
  out.reserve(entry.ring.size());
  for (std::size_t i = 0; i < entry.ring.size(); ++i) {
    const TrackSnapshot& p =
        entry.ring[(entry.ring_start + i) % entry.ring.size()];
    if (p.time >= cutoff) out.push_back(p);
  }
  return out;
}

std::vector<TrackSnapshot> ShardedTrackStore::tracks_in_region(
    Rect region) const {
  std::vector<TrackSnapshot> out;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mutex);
    for (const auto& [label, entry] : shard->entries) {
      if (region.contains(entry.latest.position)) {
        out.push_back(entry.latest);
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TrackSnapshot& a, const TrackSnapshot& b) {
              return a.label < b.label;
            });
  return out;
}

StoreStats ShardedTrackStore::stats() const {
  StoreStats stats;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mutex);
    stats.reports_applied += shard->reports;
    stats.batches_applied += shard->batches;
    stats.points_evicted += shard->evicted;
    stats.labels += shard->entries.size();
  }
  return stats;
}

}  // namespace et::serve
