#include "util/time.hpp"

#include <cmath>
#include <cstdio>

namespace et {

namespace {

std::string format_us(std::int64_t us) {
  char buf[64];
  const std::int64_t abs_us = us < 0 ? -us : us;
  if (abs_us >= 1000000) {
    std::snprintf(buf, sizeof(buf), "%.3fs", static_cast<double>(us) / 1e6);
  } else if (abs_us >= 1000) {
    std::snprintf(buf, sizeof(buf), "%.3fms", static_cast<double>(us) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(us));
  }
  return buf;
}

}  // namespace

std::string Duration::to_string() const { return format_us(us_); }

std::string Time::to_string() const { return format_us(us_); }

}  // namespace et
