#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

/// Strong identifier types.
///
/// The simulator and middleware juggle several id spaces (motes, targets,
/// context labels, connections). Wrapping each in a distinct type prevents
/// accidental cross-assignment at compile time.
namespace et {

namespace detail {

/// CRTP base providing comparison, hashing, and formatting for a
/// 64-bit-backed identifier.
template <typename Tag>
class IdBase {
 public:
  constexpr IdBase() = default;
  constexpr explicit IdBase(std::uint64_t v) : value_(v) {}

  constexpr std::uint64_t value() const { return value_; }
  constexpr bool is_valid() const { return value_ != kInvalid; }

  friend constexpr auto operator<=>(IdBase, IdBase) = default;

  std::string to_string() const { return std::to_string(value_); }

  static constexpr std::uint64_t kInvalid = ~0ull;

 private:
  std::uint64_t value_ = kInvalid;
};

}  // namespace detail

/// Identifies a mote (sensor node). Assigned densely from 0 at deployment.
struct NodeId : detail::IdBase<NodeId> {
  using IdBase::IdBase;
};

/// Identifies a physical target/phenomenon in the environment.
struct TargetId : detail::IdBase<TargetId> {
  using IdBase::IdBase;
};

/// Identifies a context label — the persistent logical address of a tracked
/// entity. Encodes (creator node, per-node sequence number) so labels minted
/// concurrently on different motes never collide.
struct LabelId : detail::IdBase<LabelId> {
  using IdBase::IdBase;

  static constexpr LabelId make(NodeId creator, std::uint32_t seq) {
    return LabelId{(creator.value() << 32) | seq};
  }
  constexpr NodeId creator() const { return NodeId{value() >> 32}; }
  constexpr std::uint32_t sequence() const {
    return static_cast<std::uint32_t>(value() & 0xffffffffull);
  }
};

/// Identifies a transport-layer port (a method of an attached object).
struct PortId : detail::IdBase<PortId> {
  using IdBase::IdBase;
};

}  // namespace et

namespace std {

template <>
struct hash<et::NodeId> {
  size_t operator()(et::NodeId id) const noexcept {
    return std::hash<uint64_t>{}(id.value());
  }
};
template <>
struct hash<et::TargetId> {
  size_t operator()(et::TargetId id) const noexcept {
    return std::hash<uint64_t>{}(id.value());
  }
};
template <>
struct hash<et::LabelId> {
  size_t operator()(et::LabelId id) const noexcept {
    return std::hash<uint64_t>{}(id.value());
  }
};
template <>
struct hash<et::PortId> {
  size_t operator()(et::PortId id) const noexcept {
    return std::hash<uint64_t>{}(id.value());
  }
};

}  // namespace std
