#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace et::util {

namespace {

const Json& null_sentinel() {
  static const Json kNull;
  return kNull;
}

constexpr int kMaxDepth = 64;

struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  Error error(const std::string& what) const {
    return Error{"json_parse",
                 what + " at offset " + std::to_string(pos)};
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool consume(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool consume_word(std::string_view word) {
    if (text.substr(pos, word.size()) == word) {
      pos += word.size();
      return true;
    }
    return false;
  }

  Expected<Json> parse_value(int depth) {
    if (depth > kMaxDepth) return error("nesting too deep");
    skip_ws();
    if (pos >= text.size()) return error("unexpected end of input");
    const char c = text[pos];
    if (c == '{') return parse_object(depth);
    if (c == '[') return parse_array(depth);
    if (c == '"') {
      auto s = parse_string();
      if (!s) return s.error();
      return Json(std::move(s).value());
    }
    if (consume_word("null")) return Json();
    if (consume_word("true")) return Json(true);
    if (consume_word("false")) return Json(false);
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    return error(std::string("unexpected character '") + c + "'");
  }

  Expected<Json> parse_number() {
    const std::size_t start = pos;
    if (consume('-')) {
    }
    while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    bool integral = true;
    if (consume('.')) {
      integral = false;
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos]))) {
        ++pos;
      }
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      integral = false;
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos]))) {
        ++pos;
      }
    }
    const std::string lexeme(text.substr(start, pos - start));
    if (lexeme.empty() || lexeme == "-") return error("malformed number");
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(lexeme.c_str(), &end, 10);
      if (errno == 0 && end && *end == '\0') {
        return Json(static_cast<std::int64_t>(v));
      }
      // Out of int64 range: fall through to the double view.
    }
    char* end = nullptr;
    const double d = std::strtod(lexeme.c_str(), &end);
    if (!end || *end != '\0') return error("malformed number");
    return Json(d);
  }

  Expected<std::string> parse_string() {
    if (!consume('"')) return error("expected '\"'");
    std::string out;
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos >= text.size()) break;
        const char esc = text[pos++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos + 4 > text.size()) return error("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return error("bad \\u escape digit");
            }
            // UTF-8 encode the BMP code point (surrogate pairs are not
            // needed by any artifact this repo writes).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return error("unknown escape");
        }
      } else {
        out += c;
      }
    }
    return error("unterminated string");
  }

  Expected<Json> parse_array(int depth) {
    consume('[');
    Json out = Json::array();
    skip_ws();
    if (consume(']')) return out;
    while (true) {
      auto v = parse_value(depth + 1);
      if (!v) return v.error();
      out.push_back(std::move(v).value());
      skip_ws();
      if (consume(']')) return out;
      if (!consume(',')) return error("expected ',' or ']'");
    }
  }

  Expected<Json> parse_object(int depth) {
    consume('{');
    Json out = Json::object();
    skip_ws();
    if (consume('}')) return out;
    while (true) {
      skip_ws();
      auto key = parse_string();
      if (!key) return key.error();
      skip_ws();
      if (!consume(':')) return error("expected ':'");
      auto v = parse_value(depth + 1);
      if (!v) return v.error();
      out.set(key.value(), std::move(v).value());
      skip_ws();
      if (consume('}')) return out;
      if (!consume(',')) return error("expected ',' or '}'");
    }
  }
};

}  // namespace

const Json& Json::operator[](std::string_view key) const {
  if (type_ == Type::kObject) {
    for (const Member& m : object_) {
      if (m.first == key) return m.second;
    }
  }
  return null_sentinel();
}

bool Json::contains(std::string_view key) const {
  if (type_ != Type::kObject) return false;
  for (const Member& m : object_) {
    if (m.first == key) return true;
  }
  return false;
}

Json& Json::push_back(Json value) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  array_.push_back(std::move(value));
  return *this;
}

Json& Json::set(std::string_view key, Json value) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  for (Member& m : object_) {
    if (m.first == key) {
      m.second = std::move(value);
      return *this;
    }
  }
  object_.emplace_back(std::string(key), std::move(value));
  return *this;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int level) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * level), ' ');
  };
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      if (is_int_) {
        out += std::to_string(int_);
      } else if (std::isfinite(double_)) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", double_);
        out += buf;
      } else {
        out += "null";  // JSON has no NaN/Inf literal
      }
      break;
    case Type::kString:
      out += '"';
      out += json_escape(string_);
      out += '"';
      break;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i) out += ',';
        newline(depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i) out += ',';
        newline(depth + 1);
        out += '"';
        out += json_escape(object_[i].first);
        out += "\":";
        if (indent > 0) out += ' ';
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  if (indent > 0) out += '\n';
  return out;
}

bool operator==(const Json& a, const Json& b) {
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case Json::Type::kNull:
      return true;
    case Json::Type::kBool:
      return a.bool_ == b.bool_;
    case Json::Type::kNumber:
      if (a.is_int_ && b.is_int_) return a.int_ == b.int_;
      return a.double_ == b.double_;
    case Json::Type::kString:
      return a.string_ == b.string_;
    case Json::Type::kArray:
      return a.array_ == b.array_;
    case Json::Type::kObject:
      return a.object_ == b.object_;
  }
  return false;
}

Expected<Json> parse_json(std::string_view text) {
  Parser parser{text};
  auto value = parser.parse_value(0);
  if (!value) return value.error();
  parser.skip_ws();
  if (parser.pos != text.size()) {
    return parser.error("trailing garbage after document");
  }
  return value;
}

}  // namespace et::util
