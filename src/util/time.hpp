#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

/// Simulated-time primitives.
///
/// All simulation time is kept as integer microsecond ticks to make event
/// ordering exact and runs bit-reproducible across platforms. `Duration` is a
/// signed span; `Time` is a point on the simulation clock (t = 0 is the start
/// of the run). Helpers convert to/from floating-point seconds at the API
/// boundary only.
namespace et {

/// A signed span of simulated time, in microseconds.
class Duration {
 public:
  constexpr Duration() = default;

  /// Constructs from raw microsecond ticks.
  static constexpr Duration micros(std::int64_t us) { return Duration{us}; }
  static constexpr Duration millis(std::int64_t ms) {
    return Duration{ms * 1000};
  }
  static constexpr Duration seconds(double s) {
    return Duration{static_cast<std::int64_t>(s * 1e6)};
  }
  static constexpr Duration zero() { return Duration{0}; }
  static constexpr Duration max() {
    return Duration{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr std::int64_t to_micros() const { return us_; }
  constexpr double to_seconds() const { return static_cast<double>(us_) / 1e6; }
  constexpr double to_millis() const { return static_cast<double>(us_) / 1e3; }

  constexpr bool is_zero() const { return us_ == 0; }
  constexpr bool is_negative() const { return us_ < 0; }
  constexpr bool is_positive() const { return us_ > 0; }

  friend constexpr Duration operator+(Duration a, Duration b) {
    return Duration{a.us_ + b.us_};
  }
  friend constexpr Duration operator-(Duration a, Duration b) {
    return Duration{a.us_ - b.us_};
  }
  friend constexpr Duration operator*(Duration a, double k) {
    return Duration{static_cast<std::int64_t>(static_cast<double>(a.us_) * k)};
  }
  friend constexpr Duration operator*(double k, Duration a) { return a * k; }
  friend constexpr Duration operator/(Duration a, double k) {
    return Duration{static_cast<std::int64_t>(static_cast<double>(a.us_) / k)};
  }
  /// Ratio of two spans (e.g. utilization computations).
  friend constexpr double operator/(Duration a, Duration b) {
    return static_cast<double>(a.us_) / static_cast<double>(b.us_);
  }
  constexpr Duration operator-() const { return Duration{-us_}; }
  Duration& operator+=(Duration o) {
    us_ += o.us_;
    return *this;
  }
  Duration& operator-=(Duration o) {
    us_ -= o.us_;
    return *this;
  }

  friend constexpr auto operator<=>(Duration, Duration) = default;

  /// Human-readable rendering, e.g. "1.500s" or "250ms".
  std::string to_string() const;

 private:
  constexpr explicit Duration(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

/// A point on the simulation clock.
class Time {
 public:
  constexpr Time() = default;

  static constexpr Time origin() { return Time{0}; }
  static constexpr Time micros(std::int64_t us) { return Time{us}; }
  static constexpr Time seconds(double s) {
    return Time{static_cast<std::int64_t>(s * 1e6)};
  }
  static constexpr Time max() {
    return Time{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr std::int64_t to_micros() const { return us_; }
  constexpr double to_seconds() const { return static_cast<double>(us_) / 1e6; }

  friend constexpr Time operator+(Time t, Duration d) {
    return Time{t.us_ + d.to_micros()};
  }
  friend constexpr Time operator+(Duration d, Time t) { return t + d; }
  friend constexpr Time operator-(Time t, Duration d) {
    return Time{t.us_ - d.to_micros()};
  }
  friend constexpr Duration operator-(Time a, Time b) {
    return Duration::micros(a.us_ - b.us_);
  }
  Time& operator+=(Duration d) {
    us_ += d.to_micros();
    return *this;
  }

  friend constexpr auto operator<=>(Time, Time) = default;

  std::string to_string() const;

 private:
  constexpr explicit Time(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

}  // namespace et
