#pragma once

#include <cstdarg>
#include <functional>
#include <string>
#include <string_view>

#include "util/time.hpp"

/// Lightweight leveled logging.
///
/// The sink is process-global (each simulator run is single-threaded by
/// design) and can be redirected in tests. The simulator installs a clock
/// hook so every line carries the simulated timestamp, which is what one
/// wants when debugging a distributed protocol trace. The clock hook is
/// *thread-local*: parallel sweeps run one Simulator per worker thread, and
/// each worker's log lines are stamped with its own run's virtual time.
namespace et {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError, kOff };

const char* log_level_name(LogLevel level);

/// Global logging configuration. Level and sink are adjusted only at test
/// fixture setup / program start; the clock hook is per-thread.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view line)>;
  using ClockFn = std::function<Time()>;

  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  /// Replaces the output sink (default: stderr). Pass nullptr to restore.
  void set_sink(Sink sink);

  /// Installs a simulated-clock source used to timestamp lines emitted by
  /// the *calling thread* (one Simulator per thread during sweeps).
  void set_clock(ClockFn clock);
  void clear_clock();

  bool enabled(LogLevel level) const { return level >= level_; }

  /// printf-style logging. `component` names the subsystem ("radio",
  /// "group-mgmt", ...).
  void logf(LogLevel level, std::string_view component, const char* fmt, ...)
      __attribute__((format(printf, 4, 5)));

 private:
  Logger();
  LogLevel level_ = LogLevel::kWarn;
  Sink sink_;
};

#define ET_LOG(level, component, ...)                              \
  do {                                                             \
    if (::et::Logger::instance().enabled(level)) {                 \
      ::et::Logger::instance().logf(level, component, __VA_ARGS__); \
    }                                                              \
  } while (0)

#define ET_TRACE(component, ...) \
  ET_LOG(::et::LogLevel::kTrace, component, __VA_ARGS__)
#define ET_DEBUG(component, ...) \
  ET_LOG(::et::LogLevel::kDebug, component, __VA_ARGS__)
#define ET_INFO(component, ...) \
  ET_LOG(::et::LogLevel::kInfo, component, __VA_ARGS__)
#define ET_WARN(component, ...) \
  ET_LOG(::et::LogLevel::kWarn, component, __VA_ARGS__)
#define ET_ERROR(component, ...) \
  ET_LOG(::et::LogLevel::kError, component, __VA_ARGS__)

}  // namespace et
