#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

/// A move-only `void()` callable with small-buffer storage.
///
/// `std::function` heap-allocates any callable larger than its tiny internal
/// buffer (16 bytes on common ABIs) and requires copyability. Simulation
/// events are scheduled millions of times per run and their closures
/// routinely capture `this` plus a handful of ids and timestamps, so the
/// event queue uses this type instead: callables up to `Capacity` bytes live
/// inline in the queue's slot slab and never touch the allocator; larger
/// ones fall back to a single heap cell.
namespace et::util {

template <std::size_t Capacity = 64>
class InlineFunction {
  static_assert(Capacity >= sizeof(void*));

  struct VTable {
    void (*invoke)(void* storage);
    /// Move-constructs `dst` from `src`'s payload and destroys `src`'s.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* storage);
  };

  template <typename F>
  static constexpr bool fits_inline =
      sizeof(F) <= Capacity && alignof(F) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<F>;

  template <typename F>
  struct InlineOps {
    static F* get(void* s) { return std::launder(reinterpret_cast<F*>(s)); }
    static void invoke(void* s) { (*get(s))(); }
    static void relocate(void* dst, void* src) {
      ::new (dst) F(std::move(*get(src)));
      get(src)->~F();
    }
    static void destroy(void* s) { get(s)->~F(); }
    static constexpr VTable vtable{&invoke, &relocate, &destroy};
  };

  template <typename F>
  struct HeapOps {
    static F* get(void* s) {
      return *std::launder(reinterpret_cast<F**>(s));
    }
    static void invoke(void* s) { (*get(s))(); }
    static void relocate(void* dst, void* src) {
      ::new (dst) F*(get(src));
    }
    static void destroy(void* s) { delete get(s); }
    static constexpr VTable vtable{&invoke, &relocate, &destroy};
  };

 public:
  InlineFunction() = default;
  InlineFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, InlineFunction> &&
                std::is_invocable_r_v<void, D&>>>
  InlineFunction(F&& fn) {  // NOLINT(google-explicit-constructor)
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      vtable_ = &InlineOps<D>::vtable;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(fn)));
      vtable_ = &HeapOps<D>::vtable;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { steal(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  InlineFunction& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  void operator()() { vtable_->invoke(storage_); }

  explicit operator bool() const { return vtable_ != nullptr; }

 private:
  void reset() {
    if (vtable_) {
      vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }
  void steal(InlineFunction& other) noexcept {
    if (other.vtable_) {
      vtable_ = other.vtable_;
      vtable_->relocate(storage_, other.storage_);
      other.vtable_ = nullptr;
    }
  }

  const VTable* vtable_ = nullptr;
  alignas(std::max_align_t) std::byte storage_[Capacity];
};

}  // namespace et::util
