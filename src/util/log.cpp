#include "util/log.hpp"

#include <cstdio>
#include <vector>

namespace et {

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

namespace {
/// Per-thread virtual-clock hook; each worker thread's Simulator installs
/// its own, so parallel sweep runs never race on the logger.
thread_local Logger::ClockFn tls_clock;
}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_clock(ClockFn clock) { tls_clock = std::move(clock); }

void Logger::clear_clock() { tls_clock = nullptr; }

Logger::Logger() {
  sink_ = [](LogLevel level, std::string_view line) {
    std::fprintf(stderr, "[%s] %.*s\n", log_level_name(level),
                 static_cast<int>(line.size()), line.data());
  };
}

void Logger::set_sink(Sink sink) {
  if (sink) {
    sink_ = std::move(sink);
  } else {
    sink_ = [](LogLevel level, std::string_view line) {
      std::fprintf(stderr, "[%s] %.*s\n", log_level_name(level),
                   static_cast<int>(line.size()), line.data());
    };
  }
}

void Logger::logf(LogLevel level, std::string_view component, const char* fmt,
                  ...) {
  if (!enabled(level)) return;

  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
  va_end(args_copy);

  std::string body(needed > 0 ? static_cast<std::size_t>(needed) : 0, '\0');
  if (needed > 0) {
    std::vsnprintf(body.data(), body.size() + 1, fmt, args);
  }
  va_end(args);

  std::string line;
  if (tls_clock) {
    line += tls_clock().to_string();
    line += " ";
  }
  line += "[";
  line.append(component.data(), component.size());
  line += "] ";
  line += body;
  sink_(level, line);
}

}  // namespace et
