#include "util/geometry.hpp"

#include <cstdio>

namespace et {

std::string Vec2::to_string() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "(%.3f, %.3f)", x, y);
  return buf;
}

}  // namespace et
