#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/expected.hpp"

/// A minimal JSON document model: parse, navigate, serialize.
///
/// Built for the repo's machine-readable interchange files — chaos repro
/// artifacts, fault-plan round-trips, fuzzer summaries — where the full
/// grammar is enough and an external dependency is not wanted. Design
/// points:
///
///  - Objects preserve insertion order (serialization is deterministic, so
///    artifact files byte-diff cleanly across runs).
///  - Integral numbers are kept as exact int64 alongside the double view:
///    microsecond timestamps and node ids survive a round-trip bit-for-bit
///    instead of drifting through a double.
///  - Parsing is recursive descent with a depth cap and positioned errors
///    (`Expected`), so malformed artifacts are rejected loudly.
namespace et::util {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Json>;
  using Member = std::pair<std::string, Json>;
  using Object = std::vector<Member>;

  Json() : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}  // NOLINT: implicit by design
  Json(double d) : type_(Type::kNumber), double_(d) {}          // NOLINT
  Json(std::int64_t i)                                          // NOLINT
      : type_(Type::kNumber), double_(static_cast<double>(i)), int_(i),
        is_int_(true) {}
  Json(int i) : Json(static_cast<std::int64_t>(i)) {}           // NOLINT
  Json(std::uint64_t u)                                         // NOLINT
      : Json(static_cast<std::int64_t>(u)) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT
  Json(const char* s) : Json(std::string(s)) {}                 // NOLINT

  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  /// Number parsed from (or constructed as) an exact integer.
  bool is_int() const { return type_ == Type::kNumber && is_int_; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  double as_double(double fallback = 0.0) const {
    return is_number() ? double_ : fallback;
  }
  std::int64_t as_int(std::int64_t fallback = 0) const {
    if (!is_number()) return fallback;
    return is_int_ ? int_ : static_cast<std::int64_t>(double_);
  }
  const std::string& as_string() const { return string_; }

  const Array& items() const { return array_; }
  Array& items() { return array_; }
  const Object& members() const { return object_; }

  /// Object member by key; a shared null sentinel when absent (or when this
  /// value is not an object), so lookups chain without null checks.
  const Json& operator[](std::string_view key) const;
  bool contains(std::string_view key) const;

  /// Appends to an array value (converts a null to an array first).
  Json& push_back(Json value);
  /// Sets an object member (converts a null to an object first; replaces an
  /// existing key in place, preserving its position).
  Json& set(std::string_view key, Json value);

  std::size_t size() const {
    if (is_array()) return array_.size();
    if (is_object()) return object_.size();
    return 0;
  }

  /// Serializes the document. `indent` > 0 pretty-prints with that many
  /// spaces per level; 0 renders compact. Key order is insertion order, and
  /// a given document always renders to the same bytes.
  std::string dump(int indent = 0) const;

  friend bool operator==(const Json& a, const Json& b);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double double_ = 0.0;
  std::int64_t int_ = 0;
  bool is_int_ = false;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected). Errors carry a byte offset and a short description.
Expected<Json> parse_json(std::string_view text);

/// Escapes `s` as the *contents* of a JSON string literal (no quotes).
std::string json_escape(std::string_view s);

}  // namespace et::util
