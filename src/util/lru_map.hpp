#pragma once

#include <cassert>
#include <cstddef>
#include <list>
#include <optional>
#include <unordered_map>

/// A fixed-capacity map with least-recently-used eviction.
///
/// Used by the transport layer (§5.4) for its table of last-known context
/// leaders: "Leadership information is retained for as long as possible,
/// given limited table sizes. Replacement is done on a least-recently-used
/// basis."
namespace et {

template <typename K, typename V>
class LruMap {
 public:
  /// `capacity` must be >= 1.
  explicit LruMap(std::size_t capacity) : capacity_(capacity) {
    assert(capacity_ >= 1);
  }

  std::size_t size() const { return index_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return index_.empty(); }

  /// Inserts or overwrites, marking the key most-recently-used. Returns the
  /// evicted entry, if the insertion pushed one out.
  std::optional<std::pair<K, V>> put(const K& key, V value) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      touch(it->second);
      return std::nullopt;
    }
    order_.emplace_front(key, std::move(value));
    index_[key] = order_.begin();
    if (index_.size() > capacity_) {
      auto last = std::prev(order_.end());
      std::pair<K, V> evicted = std::move(*last);
      index_.erase(evicted.first);
      order_.erase(last);
      return evicted;
    }
    return std::nullopt;
  }

  /// Looks up and refreshes recency. Returns nullptr when absent. The
  /// pointer is invalidated by the next mutating call.
  V* get(const K& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    touch(it->second);
    return &it->second->second;
  }

  /// Looks up without refreshing recency.
  const V* peek(const K& key) const {
    auto it = index_.find(key);
    return it == index_.end() ? nullptr : &it->second->second;
  }

  bool contains(const K& key) const { return index_.count(key) > 0; }

  bool erase(const K& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return false;
    order_.erase(it->second);
    index_.erase(it);
    return true;
  }

  void clear() {
    order_.clear();
    index_.clear();
  }

  /// Iterates entries from most- to least-recently used.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [k, v] : order_) fn(k, v);
  }

 private:
  using Entry = std::pair<K, V>;
  using Order = std::list<Entry>;

  void touch(typename Order::iterator it) {
    order_.splice(order_.begin(), order_, it);
  }

  std::size_t capacity_;
  Order order_;  // front = most recently used
  std::unordered_map<K, typename Order::iterator> index_;
};

}  // namespace et
