#pragma once

#include <cstdint>
#include <string_view>

/// Deterministic random-number generation.
///
/// Every stochastic component of the simulator (radio loss, CSMA backoff,
/// trajectory jitter, placement perturbation) draws from its own `Rng`
/// stream, derived from the run seed and a component label. This keeps runs
/// bit-reproducible while letting components evolve independently: adding a
/// draw in one component does not shift the sequence seen by another.
namespace et {

/// xoshiro256** PRNG. Small, fast, and statistically strong; entirely
/// self-contained so results do not depend on the standard library's
/// distribution implementations.
class Rng {
 public:
  /// Seeds the generator via SplitMix64 expansion of `seed`.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Derives an independent child stream for a named component. The child's
  /// sequence is a pure function of (parent seed, label), not of how many
  /// values the parent has produced so far.
  Rng fork(std::string_view label) const;

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). `n` must be > 0.
  std::uint64_t next_below(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability `p` (clamped to [0, 1]).
  bool chance(double p);

  /// Standard normal via Box–Muller (no state caching; two draws per call).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

 private:
  explicit Rng(const std::uint64_t (&state)[4]);
  std::uint64_t s_[4];
  std::uint64_t seed_;  // retained for fork()
};

}  // namespace et
