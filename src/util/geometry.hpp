#pragma once

#include <cmath>
#include <compare>
#include <string>

/// 2-D geometry used throughout the sensor field model.
///
/// Field coordinates are in *grid units*: in the paper's tank case study one
/// grid unit corresponds to the 140 m per-hop spacing of the deployed motes
/// (§6.1). All geometric reasoning (sensing radii, communication radii,
/// trajectories) happens in this unit system.
namespace et {

/// A 2-D point / vector in grid units.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  friend constexpr Vec2 operator+(Vec2 a, Vec2 b) {
    return {a.x + b.x, a.y + b.y};
  }
  friend constexpr Vec2 operator-(Vec2 a, Vec2 b) {
    return {a.x - b.x, a.y - b.y};
  }
  friend constexpr Vec2 operator*(Vec2 a, double k) {
    return {a.x * k, a.y * k};
  }
  friend constexpr Vec2 operator*(double k, Vec2 a) { return a * k; }
  friend constexpr Vec2 operator/(Vec2 a, double k) {
    return {a.x / k, a.y / k};
  }
  Vec2& operator+=(Vec2 o) {
    x += o.x;
    y += o.y;
    return *this;
  }

  friend constexpr bool operator==(Vec2, Vec2) = default;

  constexpr double dot(Vec2 o) const { return x * o.x + y * o.y; }
  constexpr double norm_sq() const { return x * x + y * y; }
  double norm() const { return std::sqrt(norm_sq()); }

  /// Unit vector in the same direction; the zero vector maps to itself.
  Vec2 normalized() const {
    const double n = norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
  }

  std::string to_string() const;
};

/// Euclidean distance between two points.
inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }

/// Squared distance — cheaper when only comparisons are needed.
inline constexpr double distance_sq(Vec2 a, Vec2 b) {
  return (a - b).norm_sq();
}

/// True when `p` lies within (or on) the disc of radius `r` around `center`.
inline constexpr bool within_radius(Vec2 center, Vec2 p, double r) {
  return distance_sq(center, p) <= r * r;
}

/// Linear interpolation: `a` at t=0, `b` at t=1.
inline constexpr Vec2 lerp(Vec2 a, Vec2 b, double t) {
  return a + (b - a) * t;
}

/// An axis-aligned rectangle, used for field bounds.
struct Rect {
  Vec2 min;
  Vec2 max;

  constexpr double width() const { return max.x - min.x; }
  constexpr double height() const { return max.y - min.y; }
  constexpr bool contains(Vec2 p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }
  /// Clamps `p` to the rectangle.
  constexpr Vec2 clamp(Vec2 p) const {
    return {p.x < min.x ? min.x : (p.x > max.x ? max.x : p.x),
            p.y < min.y ? min.y : (p.y > max.y ? max.y : p.y)};
  }
};

}  // namespace et
