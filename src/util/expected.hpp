#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

/// A minimal result type for recoverable failures.
///
/// Used where an operation can fail for a reason the caller is expected to
/// handle (parsing, directory lookups, aggregate reads below critical mass).
/// Exceptions remain reserved for programming errors.
namespace et {

/// Error payload: a machine-readable code plus a human-readable message.
struct Error {
  std::string code;
  std::string message;

  std::string to_string() const { return code + ": " + message; }
};

template <typename T>
class Expected {
 public:
  Expected(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Expected(Error error) : value_(std::move(error)) {}  // NOLINT

  static Expected failure(std::string code, std::string message) {
    return Expected(Error{std::move(code), std::move(message)});
  }

  bool ok() const { return std::holds_alternative<T>(value_); }
  explicit operator bool() const { return ok(); }

  T& value() & {
    assert(ok());
    return std::get<T>(value_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(value_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(value_));
  }

  T value_or(T fallback) const {
    return ok() ? std::get<T>(value_) : std::move(fallback);
  }

  const Error& error() const {
    assert(!ok());
    return std::get<Error>(value_);
  }

 private:
  std::variant<T, Error> value_;
};

}  // namespace et
