#include "util/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace et {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t v, int k) {
  return (v << k) | (v >> (64 - k));
}

/// FNV-1a over a label, used to mix component names into fork seeds.
std::uint64_t hash_label(std::string_view label) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : label) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

Rng::Rng(const std::uint64_t (&state)[4]) : seed_(state[0]) {
  for (int i = 0; i < 4; ++i) s_[i] = state[i];
}

Rng Rng::fork(std::string_view label) const {
  // The child's seed mixes the parent's original seed with the label so that
  // fork("radio") is stable regardless of draws made on the parent.
  return Rng(seed_ ^ rotl(hash_label(label), 17));
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

std::uint64_t Rng::next_below(std::uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t v = next_u64();
    if (v >= threshold) return v % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next_u64()
                                                  : next_below(span));
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::normal(double mean, double stddev) {
  // Box–Muller; guard the log against a zero draw.
  double u1 = next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

}  // namespace et
