#include "core/aggregate_state.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace et::core {

AggregateStateTable::AggregateStateTable(const ContextTypeSpec& spec,
                                         const AggregationRegistry& registry) {
  vars_.reserve(spec.variables.size());
  for (const AggregateVarSpec& var : spec.variables) {
    vars_.push_back(VarWindow{&var, &registry.get(var.aggregation),
                              var.sensor == "position",
                              {}});
  }
}

void AggregateStateTable::add_report(NodeId reporter, Vec2 reporter_pos,
                                     Time measured_at,
                                     const std::vector<double>& scalars) {
  assert(scalars.size() == vars_.size());
  ++reports_received_;
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    Sample sample{reporter, measured_at, scalars[i], reporter_pos};
    auto& samples = vars_[i].samples;
    // Reports can arrive out of order across reporters; keep the deque
    // sorted by measurement time so pruning stays O(expired).
    auto it = std::upper_bound(
        samples.begin(), samples.end(), sample,
        [](const Sample& a, const Sample& b) {
          return a.measured_at < b.measured_at;
        });
    samples.insert(it, std::move(sample));
  }
}

void AggregateStateTable::prune(VarWindow& w, Time now) const {
  const Time horizon = now - w.spec->freshness;
  while (!w.samples.empty() && w.samples.front().measured_at < horizon) {
    w.samples.pop_front();
  }
}

std::vector<Sample> AggregateStateTable::fresh_samples(
    const VarWindow& w) const {
  // Iterate newest-first, keeping the newest sample per reporter; all
  // samples in the window already satisfy the freshness bound after prune.
  std::vector<Sample> fresh;
  std::unordered_set<NodeId> seen;
  for (auto it = w.samples.rbegin(); it != w.samples.rend(); ++it) {
    if (seen.insert(it->reporter).second) fresh.push_back(*it);
  }
  return fresh;
}

std::optional<AggregateValue> AggregateStateTable::read(std::size_t index,
                                                        Time now) const {
  if (index >= vars_.size()) return std::nullopt;
  VarWindow& w = vars_[index];
  prune(w, now);
  const std::vector<Sample> fresh = fresh_samples(w);
  if (fresh.size() < w.spec->critical_mass || fresh.empty()) {
    return std::nullopt;  // null flag: siting not positively confirmed
  }
  return (*w.fn)(fresh, w.is_position);
}

std::optional<AggregateValue> AggregateStateTable::read(std::string_view name,
                                                        Time now) const {
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    if (vars_[i].spec->name == name) return read(i, now);
  }
  return std::nullopt;
}

bool AggregateStateTable::valid(std::size_t index, Time now) const {
  return fresh_reporter_count(index, now) >=
         (index < vars_.size() ? vars_[index].spec->critical_mass : 1);
}

std::size_t AggregateStateTable::fresh_reporter_count(std::size_t index,
                                                      Time now) const {
  if (index >= vars_.size()) return 0;
  VarWindow& w = vars_[index];
  prune(w, now);
  return fresh_samples(w).size();
}

void AggregateStateTable::clear() {
  for (VarWindow& w : vars_) w.samples.clear();
}

}  // namespace et::core
