#include "core/sense_registry.hpp"

#include <cstdio>
#include <cstdlib>

namespace et::core {

const SensePredicate& SenseRegistry::get(std::string_view name) const {
  auto it = predicates_.find(name);
  if (it == predicates_.end()) {
    std::fprintf(stderr, "SenseRegistry: unknown predicate '%.*s'\n",
                 static_cast<int>(name.size()), name.data());
    std::abort();
  }
  return it->second;
}

SensePredicate sense_target(std::string target_type) {
  return [type = std::move(target_type)](const node::Mote& mote) {
    return mote.senses(type);
  };
}

SensePredicate sense_threshold(std::string channel, double threshold) {
  return [channel = std::move(channel), threshold](const node::Mote& mote) {
    return mote.read_sensor(channel) > threshold;
  };
}

SensePredicate sense_and(SensePredicate a, SensePredicate b) {
  return [a = std::move(a), b = std::move(b)](const node::Mote& mote) {
    return a(mote) && b(mote);
  };
}

SensePredicate sense_or(SensePredicate a, SensePredicate b) {
  return [a = std::move(a), b = std::move(b)](const node::Mote& mote) {
    return a(mote) || b(mote);
  };
}

SensePredicate sense_not(SensePredicate a) {
  return [a = std::move(a)](const node::Mote& mote) { return !a(mote); };
}

}  // namespace et::core
