#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/app_messages.hpp"
#include "net/geo_routing.hpp"
#include "node/mote.hpp"

/// Conventional static objects (§3.2).
///
/// "For completeness, EnviroTrack also supports conventional static
/// objects that are not attached to context labels." A static object is
/// pinned to one mote: its timer methods run for the node's lifetime
/// (independent of any tracked entity), and it can receive application
/// messages and send them to other nodes. Base stations, gateways, and
/// periodic housekeeping are written as static objects.
namespace et::core {

/// Execution interface handed to static-object methods.
class StaticContext {
 public:
  StaticContext(node::Mote& mote, net::GeoRouting* routing)
      : mote_(mote), routing_(routing) {}

  NodeId node() const { return mote_.id(); }
  Vec2 node_position() const { return mote_.position(); }
  Time now() const { return mote_.now(); }

  /// Local sensing — static objects observe their own locale.
  double read_sensor(std::string_view channel) const {
    return mote_.read_sensor(channel);
  }
  bool senses(std::string_view type) const { return mote_.senses(type); }

  /// Geo-routed application message to another node.
  void send_to_node(NodeId dst, std::string tag, std::vector<double> data) {
    if (!routing_) return;
    auto payload = std::make_shared<UserMessagePayload>(
        std::move(tag), LabelId{}, mote_.id(), std::move(data));
    routing_->send(mote_.medium().position_of(dst), radio::MsgType::kUser,
                   std::move(payload), dst);
  }

 private:
  node::Mote& mote_;
  net::GeoRouting* routing_;
};

/// A static object's declaration: named timer methods plus an optional
/// message handler for kUser envelopes consumed at the hosting node.
struct StaticObjectSpec {
  std::string name;

  struct TimerMethod {
    std::string name;
    Duration period = Duration::seconds(1);
    std::function<void(StaticContext&)> body;
  };
  std::vector<TimerMethod> methods;

  /// Invoked for every application message consumed at the hosting node.
  std::function<void(StaticContext&, const UserMessagePayload&,
                     NodeId origin)>
      on_message;
};

/// Runs one static object on its hosting mote. Owned by the middleware
/// stack; lives as long as the node.
class StaticObject {
 public:
  StaticObject(node::Mote& mote, net::GeoRouting* routing,
               StaticObjectSpec spec);

  StaticObject(const StaticObject&) = delete;
  StaticObject& operator=(const StaticObject&) = delete;
  ~StaticObject();

  const std::string& name() const { return spec_.name; }
  std::uint64_t invocations() const { return invocations_; }

  /// Message entry point (wired by the stack's kUser consumer).
  void deliver(const UserMessagePayload& message, NodeId origin);

 private:
  node::Mote& mote_;
  net::GeoRouting* routing_;
  StaticObjectSpec spec_;
  std::vector<sim::EventHandle> timers_;
  std::uint64_t invocations_ = 0;
};

}  // namespace et::core
