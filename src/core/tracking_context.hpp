#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/aggregation.hpp"
#include "core/context_type.hpp"
#include "util/geometry.hpp"
#include "util/ids.hpp"
#include "util/time.hpp"

/// The programmer's window into a live context label (§3.2.2).
///
/// An instance is handed to every attached-object method invocation. It
/// exposes the label identity (`self.label` in the language), reads of the
/// approximate aggregate state under the declared QoS, the committed
/// persistent state (setState), and communication primitives: sending
/// application messages to a known node (e.g. the pursuer base station) and
/// remote method invocation on other context labels via MTP.
namespace et::core {

class ContextRuntime;  // implementation backend

class TrackingContext {
 public:
  TrackingContext(ContextRuntime& runtime, TypeIndex type, LabelId label,
                  const std::vector<double>* incoming_args,
                  NodeId incoming_src)
      : runtime_(runtime),
        type_(type),
        label_(label),
        incoming_args_(incoming_args),
        incoming_src_(incoming_src) {}

  /// The enclosing context label (`self.label`).
  LabelId label() const { return label_; }
  TypeIndex type_index() const { return type_; }
  std::string_view type_name() const;

  /// The node currently executing the object (the group leader).
  NodeId node() const;
  Vec2 node_position() const;
  Time now() const;

  /// Reads an aggregate state variable under its freshness / critical-mass
  /// QoS. Null when the siting is not positively confirmed (§3.2.3).
  std::optional<AggregateValue> read(std::string_view var) const;

  /// Scalar shorthand; null for vector variables or failed reads.
  std::optional<double> read_scalar(std::string_view var) const;
  /// Vector shorthand; null for scalar variables or failed reads.
  std::optional<Vec2> read_vector(std::string_view var) const;

  /// Commits a key to the persistent state that rides in heartbeats so a
  /// successor leader resumes from it (the paper's setState()).
  void set_state(const std::string& key, double value);
  std::optional<double> get_state(std::string_view key) const;

  /// Sends an application message to a fixed node (known at compile time in
  /// the paper's example — the pursuer). Geo-routed across the field.
  void send_to_node(NodeId dst, std::string tag, std::vector<double> data);

  /// Remote method invocation on another context label via MTP (§5.4).
  /// Delivery is best-effort: the transport resolves the destination
  /// leader via its last-known-leader table, forwarding chains, or the
  /// directory.
  void invoke_remote(TypeIndex dst_type, LabelId dst_label, PortId port,
                     std::vector<double> args);

  /// For message-invoked methods: the arguments and originating context
  /// leader of the invocation being processed. Empty for timer/condition
  /// invocations.
  const std::vector<double>& incoming_args() const {
    static const std::vector<double> kEmpty;
    return incoming_args_ ? *incoming_args_ : kEmpty;
  }
  NodeId incoming_src() const { return incoming_src_; }

 private:
  ContextRuntime& runtime_;
  TypeIndex type_;
  LabelId label_;
  const std::vector<double>* incoming_args_;
  NodeId incoming_src_;
};

}  // namespace et::core
