#pragma once

#include <cstdint>

#include "core/group_manager.hpp"

/// Radio duty cycling — an energy extension beyond the paper's prototype.
///
/// Idle listening dominates a mote's energy budget: a CC1000-class
/// receiver draws tens of milliwatts just waiting for frames, and in a
/// surveillance field most motes are nowhere near any target most of the
/// time. This controller sleeps the receiver of *unengaged* motes (no
/// group role, no wait-timer memory, no pending label creation) for a
/// fraction of every cycle. Sensing hardware and the CPU stay on, so the
/// sense_e() poll still fires and an appearing target still activates the
/// node — what is sacrificed is third-party awareness (heartbeats from
/// groups the node has no stake in may be missed during sleep, delaying
/// wait-memory formation at first contact).
namespace et::core {

struct DutyCycleConfig {
  Duration cycle_period = Duration::seconds(1);
  /// Fraction of each cycle the receiver stays on while unengaged.
  /// 1.0 disables sleeping entirely.
  double awake_fraction = 0.25;
};

class DutyCycleController {
 public:
  /// Starts cycling immediately. Phases are staggered per mote so the
  /// deployment is never collectively deaf.
  DutyCycleController(node::Mote& mote, GroupManager& groups,
                      DutyCycleConfig config = {});

  DutyCycleController(const DutyCycleController&) = delete;
  DutyCycleController& operator=(const DutyCycleController&) = delete;
  ~DutyCycleController();

  struct Stats {
    std::uint64_t cycles = 0;
    std::uint64_t slept_cycles = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  void begin_cycle();

  node::Mote& mote_;
  GroupManager& groups_;
  DutyCycleConfig config_;
  sim::EventHandle cycle_timer_;
  sim::EventHandle sleep_timer_;
  Stats stats_;
};

}  // namespace et::core
