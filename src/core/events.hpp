#pragma once

#include <cstdint>
#include <string>

#include "core/context_type.hpp"
#include "util/ids.hpp"
#include "util/time.hpp"

/// Group-management lifecycle events, published by every GroupManager.
///
/// The middleware itself does not need these; they exist for the metrics
/// layer (coherence monitoring, handover accounting — Fig. 4) and for tests
/// asserting protocol behaviour.
namespace et::core {

struct GroupEvent {
  enum class Kind {
    kLabelCreated,        // node minted a fresh context label (new leader)
    kBecameLeader,        // node assumed leadership of an existing label
    kLostLeadership,      // node stopped leading (yield or relinquish)
    kTakeover,            // leadership assumed after receive-timer expiry
    kRelinquish,          // leader announced it stopped sensing
    kYield,               // leader deferred to a peer leader of same label
    kLabelSuppressed,     // spurious label deleted on higher-weight evidence
    kJoined,              // node joined a group as member
    kLeft,                // member stopped sensing and left
    kFenced,              // stale leader stepped down on higher-epoch evidence
  };

  Kind kind;
  Time time;
  NodeId node;        // the node the event happened on
  TypeIndex type_index = 0;
  LabelId label;      // the label involved
  NodeId peer;        // other party (new leader, suppressor), when relevant
  std::uint64_t weight = 0;
  /// Leadership epoch in effect for the event (0 when not applicable).
  std::uint64_t epoch = 0;

  std::string to_string() const;
};

class GroupObserver {
 public:
  virtual ~GroupObserver() = default;
  virtual void on_group_event(const GroupEvent& event) = 0;
};

const char* group_event_kind_name(GroupEvent::Kind kind);

}  // namespace et::core
