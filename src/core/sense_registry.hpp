#pragma once

#include <functional>
#include <map>
#include <string>
#include <string_view>

#include "node/mote.hpp"

/// Registry of sense_e() predicates (§3.1).
///
/// Activation conditions in context declarations name boolean functions of
/// local sensory measurements; "EnviroTrack contains a library of such
/// functions for the programmer to choose from. New user-defined functions
/// can be easily added." The registry holds both: built-ins constructed by
/// the helpers below and arbitrary user lambdas.
namespace et::core {

using SensePredicate = std::function<bool(const node::Mote&)>;

class SenseRegistry {
 public:
  /// Registers (or replaces) a named predicate.
  void add(std::string name, SensePredicate predicate) {
    predicates_[std::move(name)] = std::move(predicate);
  }

  bool contains(std::string_view name) const {
    return predicates_.find(name) != predicates_.end();
  }

  /// Looks up a predicate; aborts on unknown names (a spec referencing an
  /// unregistered function is a programming error caught at install time).
  const SensePredicate& get(std::string_view name) const;

 private:
  std::map<std::string, SensePredicate, std::less<>> predicates_;
};

/// Built-in predicate: the mote's detector for targets of `target_type`
/// fires (binary-disc sensing model).
SensePredicate sense_target(std::string target_type);

/// Built-in predicate: scalar `channel` reading exceeds `threshold` —
/// e.g. sense_fire() = (temperature > 180).
SensePredicate sense_threshold(std::string channel, double threshold);

/// Conjunction of two predicates — e.g. (temperature > 180) and (light).
SensePredicate sense_and(SensePredicate a, SensePredicate b);

/// Disjunction — e.g. a target detectable magnetically or acoustically.
SensePredicate sense_or(SensePredicate a, SensePredicate b);

/// Negation — e.g. deactivation conditions expressed as "no longer ...".
SensePredicate sense_not(SensePredicate a);

}  // namespace et::core
