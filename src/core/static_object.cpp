#include "core/static_object.hpp"

namespace et::core {

StaticObject::StaticObject(node::Mote& mote, net::GeoRouting* routing,
                           StaticObjectSpec spec)
    : mote_(mote), routing_(routing), spec_(std::move(spec)) {
  timers_.reserve(spec_.methods.size());
  for (const StaticObjectSpec::TimerMethod& method : spec_.methods) {
    const auto* m = &method;
    timers_.push_back(
        mote_.every(method.period, method.period, [this, m] {
          ++invocations_;
          StaticContext ctx(mote_, routing_);
          if (m->body) m->body(ctx);
        }));
  }
}

StaticObject::~StaticObject() {
  for (auto& timer : timers_) timer.cancel();
}

void StaticObject::deliver(const UserMessagePayload& message,
                           NodeId origin) {
  if (!spec_.on_message) return;
  ++invocations_;
  StaticContext ctx(mote_, routing_);
  spec_.on_message(ctx, message, origin);
}

}  // namespace et::core
