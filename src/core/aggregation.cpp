#include "core/aggregation.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace et::core {

std::string AggregateValue::to_string() const {
  if (kind == Kind::kVector) return vector.to_string();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", scalar);
  return buf;
}

const AggregationFn& AggregationRegistry::get(std::string_view name) const {
  auto it = fns_.find(name);
  if (it == fns_.end()) {
    std::fprintf(stderr, "AggregationRegistry: unknown aggregation '%.*s'\n",
                 static_cast<int>(name.size()), name.data());
    std::abort();
  }
  return it->second;
}

AggregationRegistry AggregationRegistry::with_builtins() {
  AggregationRegistry reg;

  // avg: arithmetic mean. For the pseudo-sensor "position" it averages
  // member locations — the target-position estimator of the Fig. 2 example.
  reg.add("avg", [](std::span<const Sample> samples, bool is_position) {
    if (is_position) {
      Vec2 sum;
      for (const Sample& s : samples) sum += s.position;
      return AggregateValue::of(sum / static_cast<double>(samples.size()));
    }
    double sum = 0.0;
    for (const Sample& s : samples) sum += s.scalar;
    return AggregateValue::of(sum / static_cast<double>(samples.size()));
  });

  reg.add("sum", [](std::span<const Sample> samples, bool is_position) {
    if (is_position) {
      Vec2 sum;
      for (const Sample& s : samples) sum += s.position;
      return AggregateValue::of(sum);
    }
    double sum = 0.0;
    for (const Sample& s : samples) sum += s.scalar;
    return AggregateValue::of(sum);
  });

  reg.add("min", [](std::span<const Sample> samples, bool) {
    double m = samples.front().scalar;
    for (const Sample& s : samples) m = std::min(m, s.scalar);
    return AggregateValue::of(m);
  });

  reg.add("max", [](std::span<const Sample> samples, bool) {
    double m = samples.front().scalar;
    for (const Sample& s : samples) m = std::max(m, s.scalar);
    return AggregateValue::of(m);
  });

  reg.add("count", [](std::span<const Sample> samples, bool) {
    return AggregateValue::of(static_cast<double>(samples.size()));
  });

  // stddev: population standard deviation of the scalar readings —
  // useful for detecting disagreement among detectors (e.g. a target on
  // the group's edge).
  reg.add("stddev", [](std::span<const Sample> samples, bool) {
    double sum = 0.0;
    for (const Sample& s : samples) sum += s.scalar;
    const double mean = sum / static_cast<double>(samples.size());
    double var = 0.0;
    for (const Sample& s : samples) {
      var += (s.scalar - mean) * (s.scalar - mean);
    }
    return AggregateValue::of(
        std::sqrt(var / static_cast<double>(samples.size())));
  });

  // median: robust central reading, insensitive to one faulty sensor.
  reg.add("median", [](std::span<const Sample> samples, bool) {
    std::vector<double> values;
    values.reserve(samples.size());
    for (const Sample& s : samples) values.push_back(s.scalar);
    const std::size_t mid = values.size() / 2;
    std::nth_element(values.begin(), values.begin() + mid, values.end());
    if (values.size() % 2 == 1) return AggregateValue::of(values[mid]);
    const double upper = values[mid];
    std::nth_element(values.begin(), values.begin() + mid - 1,
                     values.end());
    return AggregateValue::of(0.5 * (values[mid - 1] + upper));
  });

  // spread: the diameter of the reporting set's positions — a proxy for
  // the tracked phenomenon's spatial extent (fire growth, convoy length).
  reg.add("spread", [](std::span<const Sample> samples, bool) {
    double max_d = 0.0;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      for (std::size_t j = i + 1; j < samples.size(); ++j) {
        max_d = std::max(max_d,
                         distance(samples[i].position, samples[j].position));
      }
    }
    return AggregateValue::of(max_d);
  });

  // nearest: position of the reporter with the strongest signal — a
  // better single-point estimate than avg when falloff is steep.
  reg.add("nearest", [](std::span<const Sample> samples, bool) {
    const Sample* best = &samples.front();
    for (const Sample& s : samples) {
      if (s.scalar > best->scalar) best = &s;
    }
    return AggregateValue::of(best->position);
  });

  // centroid: center of gravity of member positions weighted by signal
  // strength; falls back to the unweighted centroid when all weights
  // vanish.
  reg.add("centroid", [](std::span<const Sample> samples, bool) {
    Vec2 weighted;
    double total = 0.0;
    for (const Sample& s : samples) {
      const double w = std::max(s.scalar, 0.0);
      weighted += s.position * w;
      total += w;
    }
    if (total <= 0.0) {
      Vec2 sum;
      for (const Sample& s : samples) sum += s.position;
      return AggregateValue::of(sum / static_cast<double>(samples.size()));
    }
    return AggregateValue::of(weighted / total);
  });

  return reg;
}

}  // namespace et::core
