#pragma once

#include <string>
#include <vector>

#include "radio/packet.hpp"
#include "util/geometry.hpp"
#include "util/ids.hpp"

/// Application-level messages produced by tracking objects.
namespace et::core {

/// A message from a tracking object to a fixed node (e.g. the pursuer base
/// station of §4): a tag plus a small numeric record. Carried inside
/// geo-routed kUser envelopes.
class UserMessagePayload final : public radio::Payload {
 public:
  UserMessagePayload(std::string tag, LabelId src_label, NodeId src_node,
                     std::vector<double> data)
      : tag(std::move(tag)),
        src_label(src_label),
        src_node(src_node),
        data(std::move(data)) {}

  std::size_t size_bytes() const override {
    return tag.size() + 14 + data.size() * 4;
  }

  std::string tag;
  LabelId src_label;
  NodeId src_node;
  std::vector<double> data;
  /// Leadership epoch of the sending leader (0 when the sender is not a
  /// group leader, e.g. static objects). Base-station consumers fence
  /// reports from epochs older than the highest seen per label.
  std::uint64_t epoch = 0;
};

}  // namespace et::core
