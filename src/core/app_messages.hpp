#pragma once

#include <string>
#include <vector>

#include "radio/packet.hpp"
#include "util/geometry.hpp"
#include "util/ids.hpp"

/// Application-level messages produced by tracking objects.
namespace et::core {

/// A message from a tracking object to a fixed node (e.g. the pursuer base
/// station of §4): a tag plus a small numeric record. Carried inside
/// geo-routed kUser envelopes.
class UserMessagePayload final : public radio::Payload {
 public:
  UserMessagePayload(std::string tag, LabelId src_label, NodeId src_node,
                     std::vector<double> data)
      : tag(std::move(tag)),
        src_label(src_label),
        src_node(src_node),
        data(std::move(data)) {}

  std::size_t size_bytes() const override {
    return tag.size() + 10 + data.size() * 4;
  }

  std::string tag;
  LabelId src_label;
  NodeId src_node;
  std::vector<double> data;
};

}  // namespace et::core
