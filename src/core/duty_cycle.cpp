#include "core/duty_cycle.hpp"

#include <cassert>

namespace et::core {

DutyCycleController::DutyCycleController(node::Mote& mote,
                                         GroupManager& groups,
                                         DutyCycleConfig config)
    : mote_(mote), groups_(groups), config_(config) {
  assert(config_.awake_fraction > 0.0 && config_.awake_fraction <= 1.0);
  assert(config_.cycle_period.is_positive());
  const Duration phase = config_.cycle_period * mote_.rng().next_double();
  cycle_timer_ = mote_.sim().schedule_periodic(
      phase, config_.cycle_period, [this] { begin_cycle(); });
}

DutyCycleController::~DutyCycleController() {
  cycle_timer_.cancel();
  sleep_timer_.cancel();
  mote_.medium().set_receiver_enabled(mote_.id(), true);
}

void DutyCycleController::begin_cycle() {
  // A crashed mote owns no radio state: the crash/reboot path decides when
  // the receiver powers up again. Without this guard the cycle boundary
  // would re-enable a dead node's receiver every period.
  if (mote_.is_down()) return;
  stats_.cycles++;
  // Always start the cycle awake so engaged checks observe fresh traffic.
  mote_.medium().set_receiver_enabled(mote_.id(), true);
  if (config_.awake_fraction >= 1.0) return;

  sleep_timer_.cancel();
  const Duration awake = config_.cycle_period * config_.awake_fraction;
  sleep_timer_ = mote_.sim().schedule(awake, [this] {
    // Re-check engagement at sleep time: joining a group mid-cycle (or
    // merely hearing a neighbour's heartbeat) keeps the radio on.
    if (groups_.engaged() || mote_.is_down()) return;
    stats_.slept_cycles++;
    mote_.medium().set_receiver_enabled(mote_.id(), false);
  });
}

}  // namespace et::core
