#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/app_messages.hpp"
#include "core/context_runtime.hpp"
#include "core/directory.hpp"
#include "core/duty_cycle.hpp"
#include "core/group_manager.hpp"
#include "core/static_object.hpp"
#include "core/transport.hpp"
#include "net/geo_routing.hpp"

/// The full per-mote EnviroTrack middleware stack.
///
/// Assembles and wires the services each sensor node runs: geographic
/// routing, group management, the tracking-object runtime, the directory,
/// and MTP. Leadership edges from the group manager fan out to the runtime
/// (attach/detach objects) and the directory (register/refresh the label);
/// heartbeat observations feed the transport's last-known-leader table.
namespace et::core {

struct MiddlewareConfig {
  GroupConfig group;
  net::RoutingConfig routing;
  DirectoryConfig directory;
  TransportConfig transport;
  DutyCycleConfig duty_cycle;
  /// Disable to study the group layer in isolation (saves directory /
  /// transport traffic).
  bool enable_directory = true;
  bool enable_transport = true;
  /// Sleep the receiver of unengaged motes (energy extension; off by
  /// default — the paper's prototype keeps radios on).
  bool enable_duty_cycle = false;
};

class MiddlewareStack {
 public:
  /// Handler for application messages (tracking-object reports) consumed at
  /// this node — the base-station role.
  using UserHandler =
      std::function<void(const UserMessagePayload&, NodeId origin)>;

  MiddlewareStack(node::Mote& mote, const std::vector<ContextTypeSpec>& specs,
                  const SenseRegistry& senses,
                  const AggregationRegistry& aggregations, Rect field_bounds,
                  const MiddlewareConfig& config);

  MiddlewareStack(const MiddlewareStack&) = delete;
  MiddlewareStack& operator=(const MiddlewareStack&) = delete;

  /// Starts sense polling (and with it the whole protocol machinery).
  void start() { groups_.start(); }

  /// Failure injection: silences this node entirely. The receiver is
  /// powered down until reboot(); repeated calls are no-ops.
  void crash();

  /// Brings a crashed node back up: the mote revives, the receiver powers
  /// on, every service wipes its volatile state (roles, caches, pending
  /// queries) and the group manager resumes sense polling. Persistent
  /// tracking state is NOT restored locally — the §5.2 handoff must come
  /// from surviving peers. No-op unless the node is down.
  void reboot();

  /// Registers an application consumer of kUser envelopes at this node.
  /// Handlers accumulate: each registered handler sees every message, in
  /// registration order — the base station can feed the Fig. 3 track
  /// recorder and the serving tier's ingest path at the same time.
  void on_user_message(UserHandler handler);

  /// Hosts a static object (§3.2) on this node: its timer methods run for
  /// the node's lifetime and it receives application messages consumed
  /// here. Returns a stable reference owned by the stack.
  StaticObject& add_static_object(StaticObjectSpec spec);

  node::Mote& mote() { return mote_; }
  net::GeoRouting& routing() { return routing_; }
  GroupManager& groups() { return groups_; }
  ContextRuntime& runtime() { return runtime_; }
  Directory* directory() { return directory_.get(); }
  Transport* transport() { return transport_.get(); }
  DutyCycleController* duty_cycle() { return duty_cycle_.get(); }

 private:
  void ensure_user_consumer();

  node::Mote& mote_;
  /// Kept for reboot(): the duty-cycle controller is destroyed on crash and
  /// rebuilt from this config when the node comes back.
  MiddlewareConfig config_;
  net::GeoRouting routing_;
  GroupManager groups_;
  ContextRuntime runtime_;
  std::unique_ptr<Directory> directory_;
  std::unique_ptr<Transport> transport_;
  std::unique_ptr<DutyCycleController> duty_cycle_;
  std::vector<UserHandler> user_handlers_;
  std::vector<std::unique_ptr<StaticObject>> static_objects_;
  bool user_consumer_registered_ = false;
};

}  // namespace et::core
