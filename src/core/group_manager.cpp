#include "core/group_manager.hpp"

#include <algorithm>
#include <cassert>

#include "util/log.hpp"

namespace et::core {

namespace {

constexpr const char* kComponent = "group-mgmt";

/// Dedup key for one heartbeat instance.
std::uint64_t hb_key(LabelId label, std::uint32_t seq) {
  return label.value() * 0x9e3779b97f4a7c15ull ^ seq;
}

/// Dedup key for one member measurement (reporter + timestamp + label).
std::uint64_t report_key(const ReportPayload& report) {
  std::uint64_t h = report.label.value() * 0x9e3779b97f4a7c15ull;
  h ^= report.reporter.value() * 0xff51afd7ed558ccdull;
  h ^= static_cast<std::uint64_t>(report.measured_at.to_micros());
  return h;
}

}  // namespace

const char* role_name(Role role) {
  switch (role) {
    case Role::kIdle:
      return "idle";
    case Role::kMember:
      return "member";
    case Role::kLeader:
      return "leader";
  }
  return "?";
}

const char* group_event_kind_name(GroupEvent::Kind kind) {
  switch (kind) {
    case GroupEvent::Kind::kLabelCreated:
      return "label-created";
    case GroupEvent::Kind::kBecameLeader:
      return "became-leader";
    case GroupEvent::Kind::kLostLeadership:
      return "lost-leadership";
    case GroupEvent::Kind::kTakeover:
      return "takeover";
    case GroupEvent::Kind::kRelinquish:
      return "relinquish";
    case GroupEvent::Kind::kYield:
      return "yield";
    case GroupEvent::Kind::kLabelSuppressed:
      return "label-suppressed";
    case GroupEvent::Kind::kJoined:
      return "joined";
    case GroupEvent::Kind::kLeft:
      return "left";
    case GroupEvent::Kind::kFenced:
      return "fenced";
  }
  return "?";
}

std::string GroupEvent::to_string() const {
  std::string s = time.to_string();
  s += " node ";
  s += std::to_string(node.value());
  s += " ";
  s += group_event_kind_name(kind);
  s += " label ";
  s += label.to_string();
  return s;
}

GroupManager::GroupManager(node::Mote& mote,
                           const std::vector<ContextTypeSpec>& specs,
                           const SenseRegistry& senses,
                           const AggregationRegistry& aggregations,
                           GroupConfig config)
    : mote_(mote),
      specs_(&specs),
      aggregations_(&aggregations),
      config_(config),
      state_(specs.size()),
      hb_seen_(256),
      report_seen_(256) {
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const ContextTypeSpec& spec = specs[i];
    TypeState& ts = state_[i];
    ts.activation = &senses.get(spec.activation);
    if (spec.deactivation) ts.deactivation = &senses.get(*spec.deactivation);

    // P_e = L_e - d, from the tightest variable (§3.2.3), floored.
    Duration period = Duration::max();
    for (const AggregateVarSpec& var : spec.variables) {
      period = std::min(period, var.freshness - config_.max_message_delay);
    }
    if (spec.variables.empty()) period = Duration::seconds(1);
    ts.report_period = std::max(period, config_.min_report_period);
  }

  mote_.set_handler(radio::MsgType::kHeartbeat,
                    [this](const radio::Frame& f) { handle_heartbeat(f); });
  mote_.set_handler(radio::MsgType::kReport,
                    [this](const radio::Frame& f) { handle_report(f); });
  mote_.set_handler(radio::MsgType::kRelinquish,
                    [this](const radio::Frame& f) { handle_relinquish(f); });
}

void GroupManager::start() {
  assert(!started_);
  started_ = true;
  arm_poll_timer();
}

void GroupManager::arm_poll_timer() {
  poll_timer_.cancel();
  // Stagger poll phases across motes so the deployment's sensing (and the
  // traffic it triggers) does not synchronize.
  const Duration phase =
      config_.sense_poll_period * mote_.rng().next_double();
  poll_timer_ = mote_.every(config_.sense_poll_period + phase,
                            config_.sense_poll_period,
                            [this] { poll_senses(); });
}

void GroupManager::crash() {
  alive_ = false;
  poll_timer_.cancel();
  for (std::size_t i = 0; i < state_.size(); ++i) {
    TypeState& ts = state_[i];
    if (ts.role == Role::kLeader && leader_stop_) {
      leader_stop_(static_cast<TypeIndex>(i), ts.label);
    }
    ts.heartbeat_timer.cancel();
    ts.receive_timer.cancel();
    ts.report_timer.cancel();
    ts.wait_timer.cancel();
    ts.candidacy_timer.cancel();
    ts.creation_timer.cancel();
    ts.creation_pending = false;
    ts.role = Role::kIdle;
    ts.waiting = false;
    ts.agg.reset();
  }
}

void GroupManager::reboot() {
  assert(started_ && "reboot() requires a started service");
  assert(!alive_ && "reboot() is only valid after crash()");
  for (TypeState& ts : state_) {
    // crash() already cancelled every timer and dropped the role; wipe the
    // remaining volatile protocol memory so the node rejoins like a
    // factory-new mote. The resolved predicates and report period are the
    // program image and survive.
    ts.label = LabelId{};
    ts.weight = 0;
    ts.hb_seq = 0;
    ts.epoch = 0;
    ts.state.clear();
    ts.leader = NodeId{};
    ts.leader_pos = Vec2{};
    ts.leader_weight_seen = 0;
    ts.leader_epoch_seen = 0;
    ts.last_hb_heard = Time{};
    ts.last_state_seen.clear();
    ts.wait_label = LabelId{};
    ts.wait_leader = NodeId{};
    ts.wait_leader_pos = Vec2{};
    ts.wait_weight = 0;
    ts.wait_epoch = 0;
    ts.wait_state.clear();
    ts.relinquish_heard = Time{};
    ts.cand_weight = 0;
    ts.cand_epoch = 0;
    ts.cand_state.clear();
  }
  hb_seen_.clear();
  report_seen_.clear();
  alive_ = true;
  arm_poll_timer();
}

NodeId GroupManager::known_leader(TypeIndex type) const {
  const TypeState& ts = state_[type];
  switch (ts.role) {
    case Role::kLeader:
      return mote_.id();
    case Role::kMember:
      return ts.leader;
    case Role::kIdle:
      return NodeId{};
  }
  return NodeId{};
}

AggregateStateTable* GroupManager::aggregates(TypeIndex type) {
  TypeState& ts = state_[type];
  return ts.role == Role::kLeader ? ts.agg.get() : nullptr;
}

void GroupManager::emit(GroupEvent::Kind kind, TypeIndex type, LabelId label,
                        NodeId peer, std::uint64_t weight,
                        std::uint64_t epoch) {
  if (observers_.empty()) return;
  GroupEvent event{kind,  mote_.now(), mote_.id(), type,
                   label, peer,        weight,     epoch};
  for (GroupObserver* obs : observers_) obs->on_group_event(event);
}

bool GroupManager::is_sensing(const TypeState& ts) const {
  if (ts.role == Role::kIdle) return (*ts.activation)(mote_);
  // Active nodes leave on the deactivation condition, which defaults to the
  // inverse of the activation condition (§3.2.1, footnote 1).
  if (ts.deactivation) return !(*ts.deactivation)(mote_);
  return (*ts.activation)(mote_);
}

// ---------------------------------------------------------------------------
// Sense polling and role transitions
// ---------------------------------------------------------------------------

void GroupManager::poll_senses() {
  if (!alive_) return;
  for (std::size_t i = 0; i < state_.size(); ++i) {
    const TypeIndex type = static_cast<TypeIndex>(i);
    TypeState& ts = state_[i];
    const bool sensing = is_sensing(ts);
    switch (ts.role) {
      case Role::kIdle:
        if (sensing) {
          if (ts.waiting) {
            // A live group was heard nearby: join it instead of minting a
            // spurious label.
            ts.creation_pending = false;
            ts.creation_timer.cancel();
            become_member(type, ts.wait_label, ts.wait_leader,
                          ts.wait_leader_pos, ts.wait_weight, ts.wait_epoch,
                          ts.wait_state);
          } else if (!ts.creation_pending) {
            // No group known: defer creation briefly; if a heartbeat
            // arrives meanwhile we join instead of forking a new label.
            ts.creation_pending = true;
            const Duration delay =
                config_.creation_delay_max *
                (0.1 + 0.9 * mote_.rng().next_double());
            ts.creation_timer = mote_.after(delay, [this, type] {
              TypeState& st = state_[type];
              st.creation_pending = false;
              if (!alive_ || st.role != Role::kIdle) return;
              if (!is_sensing(st)) return;
              if (st.waiting) {
                become_member(type, st.wait_label, st.wait_leader,
                              st.wait_leader_pos, st.wait_weight,
                              st.wait_epoch, st.wait_state);
              } else {
                create_label(type);
              }
            });
          }
        } else if (ts.creation_pending) {
          ts.creation_pending = false;
          ts.creation_timer.cancel();
        }
        break;
      case Role::kMember:
        if (!sensing) leave_group(type);
        break;
      case Role::kLeader:
        if (!sensing) {
          if (config_.relinquish_enabled) {
            relinquish(type);
          } else {
            // Worst-case mode: the leader goes silent and the group must
            // recover through receive-timer takeover.
            stop_leading(type, GroupEvent::Kind::kLostLeadership, mote_.id());
          }
        }
        break;
    }
  }
}

void GroupManager::create_label(TypeIndex type) {
  const LabelId label = LabelId::make(mote_.id(), next_label_seq_++);
  stats_.labels_created++;
  emit(GroupEvent::Kind::kLabelCreated, type, label, mote_.id(), 0, 1);
  ET_DEBUG(kComponent, "node %llu creates label %llu (type %u)",
           static_cast<unsigned long long>(mote_.id().value()),
           static_cast<unsigned long long>(label.value()), type);
  become_leader(type, label, 0, 1, {}, GroupEvent::Kind::kBecameLeader);
}

void GroupManager::become_leader(TypeIndex type, LabelId label,
                                 std::uint64_t weight, std::uint64_t epoch,
                                 PersistentState inherited,
                                 GroupEvent::Kind cause) {
  TypeState& ts = state_[type];
  ts.receive_timer.cancel();
  ts.candidacy_timer.cancel();
  ts.wait_timer.cancel();
  ts.report_timer.cancel();
  ts.creation_timer.cancel();
  ts.creation_pending = false;
  ts.waiting = false;

  ts.role = Role::kLeader;
  ts.label = label;
  ts.weight = weight;
  ts.epoch = epoch;
  ts.state = std::move(inherited);
  // Random sequence start so a successor's heartbeats are never confused
  // with the predecessor's in peers' dedup caches.
  ts.hb_seq = static_cast<std::uint32_t>(mote_.rng().next_u64());
  ts.agg = std::make_unique<AggregateStateTable>((*specs_)[type],
                                                 *aggregations_);

  if (cause != GroupEvent::Kind::kBecameLeader) {
    emit(cause, type, label, mote_.id(), weight, epoch);
  }
  emit(GroupEvent::Kind::kBecameLeader, type, label, mote_.id(), weight,
       epoch);

  send_heartbeat(type);
  ts.heartbeat_timer =
      mote_.every(config_.heartbeat_period, config_.heartbeat_period,
                  [this, type] {
                    if (state_[type].role == Role::kLeader) {
                      send_heartbeat(type);
                    }
                  });
  start_report_timer(type);
  if (leader_start_) leader_start_(type, label, state_[type].state);
}

void GroupManager::on_directory_fence(TypeIndex type, LabelId label,
                                      std::uint64_t epoch, NodeId incumbent,
                                      Vec2 incumbent_pos) {
  if (!alive_ || type >= state_.size()) return;
  if (!config_.epoch_fencing_enabled) return;
  TypeState& ts = state_[type];
  // The notice races against local progress: leadership may have lapsed,
  // moved to another label, or absorbed an epoch at least as new.
  if (ts.role != Role::kLeader || ts.label != label) return;
  if (epoch < ts.epoch || incumbent == mote_.id()) return;
  // Equal epochs carry the heartbeat duel's tie-break: the lower-id
  // incarnation is the incumbent, so only a lower-id rival can fence us.
  if (epoch == ts.epoch && incumbent.value() > mote_.id().value()) return;
  // An incumbent within duel range is the heartbeat duel's problem: the
  // next heartbeat exchange yields or absorbs far faster (and with group
  // continuity) than a fence, which dissolves the whole local group.
  // Fences exist for the incarnation the duel can never reach.
  const double duel_range =
      std::min(config_.heartbeat_range.value_or(
                   mote_.medium().config().comm_radius),
               mote_.medium().config().comm_radius);
  if (distance(mote_.position(), incumbent_pos) <= duel_range) return;
  stats_.fenced++;
  stop_leading(type, GroupEvent::Kind::kFenced, incumbent);
}

void GroupManager::stop_leading(TypeIndex type, GroupEvent::Kind cause,
                                NodeId peer) {
  TypeState& ts = state_[type];
  assert(ts.role == Role::kLeader);
  ts.heartbeat_timer.cancel();
  ts.report_timer.cancel();
  const LabelId label = ts.label;
  if (leader_stop_) leader_stop_(type, label);
  if (cause == GroupEvent::Kind::kLabelSuppressed && label_retired_) {
    // Suppression kills the label for good (the group merges into the
    // heavier one) — withdraw its directory entry instead of letting it
    // linger until the TTL.
    label_retired_(type, label, ts.epoch);
  }
  if (cause == GroupEvent::Kind::kFenced) {
    // The label belongs to a remote incarnation we cannot hear. Dissolve
    // the local group: if members instead took over, the label would be
    // resurrected here at epoch + 1, out-epoch the incumbent at the
    // directory, and the two clusters would fence each other forever.
    // Dissolved members re-sense and mint a fresh label for the local
    // entity.
    auto payload = std::make_shared<RelinquishPayload>(
        type, label, mote_.id(), ts.weight, ts.hb_seq, PersistentState{});
    payload->epoch = ts.epoch;
    payload->dissolve = true;
    mote_.broadcast(radio::MsgType::kRelinquish, std::move(payload),
                    config_.heartbeat_range);
  }
  if (cause != GroupEvent::Kind::kLostLeadership) {
    emit(cause, type, label, peer, ts.weight, ts.epoch);
  }
  emit(GroupEvent::Kind::kLostLeadership, type, label, peer, ts.weight,
       ts.epoch);
  ts.role = Role::kIdle;
  ts.agg.reset();
  ts.weight = 0;
  ts.state.clear();
}

void GroupManager::become_member(TypeIndex type, LabelId label, NodeId leader,
                                 Vec2 leader_pos, std::uint64_t leader_weight,
                                 std::uint64_t leader_epoch,
                                 PersistentState state_seen) {
  TypeState& ts = state_[type];
  ts.wait_timer.cancel();
  ts.creation_timer.cancel();
  ts.creation_pending = false;
  ts.waiting = false;
  ts.role = Role::kMember;
  ts.label = label;
  ts.leader = leader;
  ts.leader_pos = leader_pos;
  ts.leader_weight_seen = leader_weight;
  ts.leader_epoch_seen = leader_epoch;
  ts.last_hb_heard = mote_.now();
  // Seed with the state that came alongside the join trigger (heartbeat or
  // wait-path memory): a member that must take over before hearing another
  // heartbeat restores this, not an empty table (§5.2 state handoff).
  ts.last_state_seen = std::move(state_seen);
  stats_.joins++;
  emit(GroupEvent::Kind::kJoined, type, label, leader, leader_weight,
       leader_epoch);
  arm_receive_timer(type);
  start_report_timer(type);
}

void GroupManager::leave_group(TypeIndex type) {
  TypeState& ts = state_[type];
  assert(ts.role == Role::kMember);
  ts.receive_timer.cancel();
  ts.report_timer.cancel();
  ts.candidacy_timer.cancel();
  emit(GroupEvent::Kind::kLeft, type, ts.label, ts.leader, 0,
       ts.leader_epoch_seen);
  ts.role = Role::kIdle;
}

void GroupManager::relinquish(TypeIndex type) {
  TypeState& ts = state_[type];
  assert(ts.role == Role::kLeader);
  stats_.relinquishes++;
  auto payload = std::make_shared<RelinquishPayload>(
      type, ts.label, mote_.id(), ts.weight, ts.hb_seq, ts.state);
  payload->epoch = ts.epoch;
  mote_.broadcast(radio::MsgType::kRelinquish, std::move(payload),
                  config_.heartbeat_range);
  stop_leading(type, GroupEvent::Kind::kRelinquish, mote_.id());
}

// ---------------------------------------------------------------------------
// Timers
// ---------------------------------------------------------------------------

void GroupManager::arm_receive_timer(TypeIndex type) {
  TypeState& ts = state_[type];
  ts.receive_timer.cancel();
  ts.receive_timer = mote_.after(receive_timeout(),
                                 [this, type] { on_receive_timeout(type); });
}

void GroupManager::on_receive_timeout(TypeIndex type) {
  TypeState& ts = state_[type];
  if (!alive_ || ts.role != Role::kMember) return;
  // Guard against the CPU-queue race: a heartbeat may have been processed
  // after this timeout was posted.
  if (mote_.now() - ts.last_hb_heard < receive_timeout()) {
    arm_receive_timer(type);
    return;
  }
  if (is_sensing(ts)) {
    // Leadership takeover: continue the same label, carrying the last known
    // weight and committed state (§5.2).
    stats_.takeovers++;
    ET_DEBUG(kComponent, "node %llu takes over label %llu",
             static_cast<unsigned long long>(mote_.id().value()),
             static_cast<unsigned long long>(ts.label.value()));
    become_leader(type, ts.label, ts.leader_weight_seen,
                  ts.leader_epoch_seen + 1, ts.last_state_seen,
                  GroupEvent::Kind::kTakeover);
  } else {
    leave_group(type);
  }
}

void GroupManager::start_report_timer(TypeIndex type) {
  TypeState& ts = state_[type];
  ts.report_timer.cancel();
  if ((*specs_)[type].variables.empty()) return;
  ts.report_timer = mote_.every(ts.report_period, ts.report_period,
                                [this, type] { send_report(type); });
}

// ---------------------------------------------------------------------------
// Protocol sends
// ---------------------------------------------------------------------------

Vec2 GroupManager::entity_estimate(TypeIndex type) const {
  const TypeState& ts = state_[type];
  if (ts.role == Role::kLeader && ts.agg) {
    const ContextTypeSpec& spec = (*specs_)[type];
    for (std::size_t i = 0; i < spec.variables.size(); ++i) {
      if (spec.variables[i].sensor != "position") continue;
      if (auto value = ts.agg->read(i, mote_.now());
          value && value->kind == AggregateValue::Kind::kVector) {
        return value->vector;
      }
    }
  }
  // No confirmed aggregate yet: the leader itself senses the entity, so
  // its own location is the best available estimate.
  return mote_.position();
}

void GroupManager::send_heartbeat(TypeIndex type) {
  TypeState& ts = state_[type];
  assert(ts.role == Role::kLeader);
  stats_.heartbeats_sent++;
  auto payload = std::make_shared<HeartbeatPayload>(
      type, ts.label, mote_.id(), mote_.position(), entity_estimate(type),
      ts.weight, ++ts.hb_seq, config_.perimeter_hops, ts.state);
  payload->epoch = ts.epoch;
  // Our own heartbeats must not be re-processed when relayed back.
  hb_seen_.put(hb_key(ts.label, ts.hb_seq), true);
  mote_.broadcast(radio::MsgType::kHeartbeat, std::move(payload),
                  config_.heartbeat_range);
}

void GroupManager::send_report(TypeIndex type) {
  TypeState& ts = state_[type];
  if (!alive_ || ts.role == Role::kIdle) return;
  const ContextTypeSpec& spec = (*specs_)[type];

  std::vector<double> scalars;
  scalars.reserve(spec.variables.size());
  for (const AggregateVarSpec& var : spec.variables) {
    scalars.push_back(var.sensor == "position" ? 0.0
                                               : mote_.read_sensor(var.sensor));
  }

  if (ts.role == Role::kLeader) {
    // The leader is itself a group member; its readings enter the window
    // directly (no radio, and no weight increment — weight counts messages
    // received from members).
    ts.agg->add_report(mote_.id(), mote_.position(), mote_.now(), scalars);
    return;
  }
  if (!ts.leader.is_valid()) return;
  stats_.reports_sent++;
  auto payload = std::make_shared<ReportPayload>(
      type, ts.label, mote_.id(), mote_.position(), mote_.now(),
      std::move(scalars));
  payload->epoch = ts.leader_epoch_seen;
  // Leaders beyond direct radio range are reached by flooding the report
  // through fellow group members (§3.2.1's multi-hop connectivity).
  const double leader_distance = distance(mote_.position(), ts.leader_pos);
  if (leader_distance <= mote_.medium().config().comm_radius ||
      config_.report_relay_hops == 0) {
    mote_.unicast(ts.leader, radio::MsgType::kReport, std::move(payload));
  } else {
    payload->relay_budget = config_.report_relay_hops;
    report_seen_.put(report_key(*payload), true);
    mote_.broadcast(radio::MsgType::kReport, std::move(payload));
  }
}

// ---------------------------------------------------------------------------
// Message handlers
// ---------------------------------------------------------------------------

void GroupManager::handle_heartbeat(const radio::Frame& frame) {
  if (!alive_) return;
  const auto* hp = static_cast<const HeartbeatPayload*>(frame.payload.get());
  if (hp->type_index >= state_.size()) return;
  const TypeIndex type = hp->type_index;
  TypeState& ts = state_[type];

  if (leader_observed_) {
    leader_observed_(type, hp->label, hp->leader, hp->leader_pos);
  }

  const std::uint64_t key = hb_key(hp->label, hp->seq);
  const bool already_seen = hb_seen_.contains(key);
  hb_seen_.put(key, true);

  switch (ts.role) {
    case Role::kLeader: {
      if (hp->leader == mote_.id()) break;  // our own relayed heartbeat
      if (hp->label == ts.label) {
        // Two leaders inside one context label group (§5.2: "the leader
        // immediately yields to this leader"). The winner must be a
        // *stable* function of the pair: deciding by weight livelocks,
        // because duplicate leaders each keep absorbing reports from
        // disjoint member subsets and leapfrog each other indefinitely —
        // and deciding by epoch is destabilizing too: under plain radio
        // loss, takeovers fire on unlucky heartbeat gaps, and
        // higher-epoch-wins would keep handing the group to whichever
        // node just lost packets. Lower node id wins, always; epochs are
        // reconciled by absorption below, and a genuinely stale leader
        // that never hears its successor is fenced via member reports in
        // handle_report.
        const bool other_wins = hp->leader.value() < mote_.id().value();
        if (other_wins) {
          stats_.yields++;
          stop_leading(type, GroupEvent::Kind::kYield, hp->leader);
          become_member(type, hp->label, hp->leader, hp->leader_pos,
                        hp->weight, hp->epoch, hp->state);
        } else if (config_.epoch_fencing_enabled && hp->epoch > ts.epoch) {
          // We win the duel but the rival incarnation is newer: adopt its
          // epoch (Raft-style term absorption) so our heartbeats, reports
          // and directory refreshes are not fenced as stale downstream,
          // and so the rival sees an equal epoch and settles on id.
          stats_.epochs_absorbed++;
          ts.epoch = hp->epoch;
          if (epoch_changed_) epoch_changed_(type, ts.epoch);
        }
      } else if (config_.weight_suppression_enabled &&
                 hp->weight > ts.weight &&
                 distance(entity_estimate(type), hp->estimate) <=
                     config_.suppression_radius) {
        // A heavier label of the same type tracking (by its estimate) the
        // same stimulus: ours is spurious. "They delete their context
        // label and become regular members of the other leader's group."
        // Labels whose estimates are far apart track physically separated
        // entities and must coexist (§3.2.1).
        stats_.suppressions++;
        stop_leading(type, GroupEvent::Kind::kLabelSuppressed, hp->leader);
        become_member(type, hp->label, hp->leader, hp->leader_pos,
                      hp->weight, hp->epoch, hp->state);
      }
      break;
    }
    case Role::kMember: {
      if (hp->label == ts.label) {
        if (config_.epoch_fencing_enabled &&
            hp->epoch < ts.leader_epoch_seen) {
          // A stale incarnation (pre-partition leader) is still
          // heartbeating; refusing to follow it keeps the member bound to
          // the newest leader until fencing silences the old one.
          stats_.stale_heartbeats_ignored++;
          break;
        }
        ts.last_hb_heard = mote_.now();
        ts.leader = hp->leader;
        ts.leader_pos = hp->leader_pos;
        ts.leader_weight_seen = hp->weight;
        ts.leader_epoch_seen = hp->epoch;
        ts.last_state_seen = hp->state;
        arm_receive_timer(type);
        if (config_.member_relay_heartbeats && !already_seen) {
          stats_.heartbeats_relayed++;
          auto relay = std::make_shared<HeartbeatPayload>(*hp);
          relay->perimeter_budget = config_.perimeter_hops;
          mote_.broadcast(radio::MsgType::kHeartbeat, std::move(relay),
                          config_.heartbeat_range);
        }
      }
      break;
    }
    case Role::kIdle: {
      // Remember the nearby group so that if we sense the entity before the
      // wait timer expires we join it instead of minting a new label. Only
      // labels whose entity could plausibly reach us matter — a label
      // tracking something far away must not swallow a fresh local
      // detection.
      if (distance(mote_.position(), hp->estimate) <= config_.wait_radius) {
        if (!ts.waiting || hp->weight >= ts.wait_weight) {
          ts.wait_label = hp->label;
          ts.wait_leader = hp->leader;
          ts.wait_leader_pos = hp->leader_pos;
          ts.wait_weight = hp->weight;
          ts.wait_epoch = hp->epoch;
          ts.wait_state = hp->state;
        }
        ts.waiting = true;
        ts.wait_timer.cancel();
        ts.wait_timer = mote_.after(wait_timeout(), [this, type] {
          state_[type].waiting = false;
        });
      }
      if (hp->perimeter_budget > 0 && !already_seen) {
        stats_.heartbeats_relayed++;
        auto relay = std::make_shared<HeartbeatPayload>(*hp);
        relay->perimeter_budget = static_cast<std::uint8_t>(
            hp->perimeter_budget - 1);
        mote_.broadcast(radio::MsgType::kHeartbeat, std::move(relay),
                        config_.heartbeat_range);
      }
      break;
    }
  }
}

void GroupManager::handle_report(const radio::Frame& frame) {
  if (!alive_) return;
  const auto* rp = static_cast<const ReportPayload*>(frame.payload.get());
  if (rp->type_index >= state_.size()) return;
  TypeState& ts = state_[rp->type_index];
  if (ts.label != rp->label || ts.role == Role::kIdle) return;

  // Relayed reports may reach the leader along several member paths;
  // consume/relay each measurement once.
  const std::uint64_t key = report_key(*rp);
  const bool already_seen = report_seen_.contains(key);
  report_seen_.put(key, true);
  if (already_seen) return;

  if (ts.role == Role::kLeader) {
    if (config_.epoch_fencing_enabled && rp->epoch > ts.epoch) {
      // A member is reporting to a newer incarnation of this label: a
      // successor was elected while we were unreachable (partition). We
      // are the stale leader; step down instead of absorbing the foreign
      // group's data. This path fences leaders that never hear the
      // successor's heartbeats directly (out of radio range) but do
      // overhear its members' relayed reports.
      stats_.fenced++;
      stop_leading(rp->type_index, GroupEvent::Kind::kFenced, rp->reporter);
      return;
    }
    stats_.reports_received++;
    // "This counter increases as sensors report their measurements" — the
    // leader weight used for spurious-label suppression.
    ts.weight++;
    ts.agg->add_report(rp->reporter, rp->reporter_pos, rp->measured_at,
                       rp->scalars);
    return;
  }

  // Member overhearing an in-group flooded report: relay it toward the
  // leader (directly when in range, else re-flood while budget remains).
  if (!frame.is_broadcast() || rp->relay_budget == 0) return;
  auto relay = std::make_shared<ReportPayload>(*rp);
  const double leader_distance = distance(mote_.position(), ts.leader_pos);
  if (ts.leader.is_valid() &&
      leader_distance <= mote_.medium().config().comm_radius) {
    relay->relay_budget = 0;
    mote_.unicast(ts.leader, radio::MsgType::kReport, std::move(relay));
  } else {
    relay->relay_budget = static_cast<std::uint8_t>(rp->relay_budget - 1);
    mote_.broadcast(radio::MsgType::kReport, std::move(relay));
  }
}

void GroupManager::handle_relinquish(const radio::Frame& frame) {
  if (!alive_) return;
  const auto* rp =
      static_cast<const RelinquishPayload*>(frame.payload.get());
  if (rp->type_index >= state_.size()) return;
  const TypeIndex type = rp->type_index;
  TypeState& ts = state_[type];
  if (rp->dissolve) {
    // A fenced leader is tearing the local group down (see stop_leading):
    // drop membership and any wait-memory of the label so re-detection
    // mints a fresh one instead of resurrecting the fenced label.
    if (ts.waiting && ts.wait_label == rp->label) ts.waiting = false;
    if (ts.role == Role::kMember && ts.label == rp->label) {
      leave_group(type);
    }
    return;
  }
  if (ts.role != Role::kMember || ts.label != rp->label) return;
  if (!is_sensing(ts)) return;  // we are about to leave anyway

  // Candidate election: wait a small random slice; whoever fires first and
  // heartbeats wins, later candidates hear it and stand down.
  ts.relinquish_heard = mote_.now();
  ts.cand_weight = rp->weight;
  ts.cand_epoch = rp->epoch + 1;
  ts.cand_state = rp->state;
  ts.candidacy_timer.cancel();
  const Duration delay =
      config_.heartbeat_period * (0.05 + 0.20 * mote_.rng().next_double());
  ts.candidacy_timer = mote_.after(delay, [this, type] {
    TypeState& st = state_[type];
    if (!alive_ || st.role != Role::kMember) return;
    if (st.last_hb_heard >= st.relinquish_heard) return;  // successor exists
    if (!is_sensing(st)) return;
    become_leader(type, st.label, st.cand_weight, st.cand_epoch,
                  st.cand_state, GroupEvent::Kind::kBecameLeader);
  });
}

}  // namespace et::core
