#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/context_type.hpp"
#include "radio/packet.hpp"
#include "util/geometry.hpp"
#include "util/ids.hpp"
#include "util/time.hpp"

/// Group-management and data-collection protocol messages (§5.2, §3.2.3).
namespace et::core {

/// Small persistent state a tracking object may commit via setState(); it
/// rides in heartbeats so a takeover continues from the last committed
/// state (§5.2 — listed as a trivial extension in the paper's prototype,
/// implemented here).
using PersistentState = std::map<std::string, double>;

/// Leader heartbeat: floods the group to assert leadership, carries the
/// leader's weight for spurious-label suppression and the committed object
/// state for takeover continuity.
class HeartbeatPayload final : public radio::Payload {
 public:
  HeartbeatPayload(TypeIndex type_index, LabelId label, NodeId leader,
                   Vec2 leader_pos, Vec2 estimate, std::uint64_t weight,
                   std::uint32_t seq, std::uint8_t perimeter_budget,
                   PersistentState state)
      : type_index(type_index),
        label(label),
        leader(leader),
        leader_pos(leader_pos),
        estimate(estimate),
        weight(weight),
        seq(seq),
        perimeter_budget(perimeter_budget),
        state(std::move(state)) {}

  std::size_t size_bytes() const override {
    // type (2) + label (8) + leader (2) + pos (8) + estimate (8)
    // + weight (4) + seq (4) + budget (1) + state entries (9B each).
    return 37 + state.size() * 9;
  }

  TypeIndex type_index;
  LabelId label;
  NodeId leader;
  Vec2 leader_pos;
  /// The label's best estimate of its tracked entity's position (the
  /// first position-type aggregate when valid, else the leader's own
  /// location). Receivers use it to tell "another label for *my*
  /// stimulus" (suppress/join) apart from "a label for a different,
  /// physically separated entity" (coexist).
  Vec2 estimate;
  std::uint64_t weight;
  std::uint32_t seq;
  /// Remaining hops past the group perimeter this heartbeat may travel
  /// (the parameter h of §5.2); non-members decrement and rebroadcast.
  std::uint8_t perimeter_budget;
  PersistentState state;
};

/// Member -> leader sensor report: one scalar per aggregate variable of the
/// context type, plus the reporter's position (consumed by position
/// aggregates).
class ReportPayload final : public radio::Payload {
 public:
  ReportPayload(TypeIndex type_index, LabelId label, NodeId reporter,
                Vec2 reporter_pos, Time measured_at,
                std::vector<double> scalars)
      : type_index(type_index),
        label(label),
        reporter(reporter),
        reporter_pos(reporter_pos),
        measured_at(measured_at),
        scalars(std::move(scalars)) {}

  std::size_t size_bytes() const override {
    // type (2) + label (8) + reporter (2) + pos (8) + timestamp (4)
    // + ttl (1) + 4B per reading.
    return 25 + scalars.size() * 4;
  }

  TypeIndex type_index;
  LabelId label;
  NodeId reporter;
  Vec2 reporter_pos;
  Time measured_at;
  std::vector<double> scalars;
  /// Remaining in-group relay hops when the leader is out of direct radio
  /// range (§3.2.1: members communicate "possibly using multiple hops
  /// through other members of the same group").
  std::uint8_t relay_budget = 0;
};

/// Leader relinquish: the leader no longer senses the entity and asks the
/// group to elect a successor, passing its weight and committed state on.
class RelinquishPayload final : public radio::Payload {
 public:
  RelinquishPayload(TypeIndex type_index, LabelId label, NodeId leader,
                    std::uint64_t weight, std::uint32_t last_seq,
                    PersistentState state)
      : type_index(type_index),
        label(label),
        leader(leader),
        weight(weight),
        last_seq(last_seq),
        state(std::move(state)) {}

  std::size_t size_bytes() const override { return 21 + state.size() * 9; }

  TypeIndex type_index;
  LabelId label;
  NodeId leader;
  std::uint64_t weight;
  std::uint32_t last_seq;
  PersistentState state;
};

}  // namespace et::core
