#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/context_type.hpp"
#include "radio/packet.hpp"
#include "util/geometry.hpp"
#include "util/ids.hpp"
#include "util/time.hpp"

/// Group-management and data-collection protocol messages (§5.2, §3.2.3).
namespace et::core {

/// Small persistent state a tracking object may commit via setState(); it
/// rides in heartbeats so a takeover continues from the last committed
/// state (§5.2 — listed as a trivial extension in the paper's prototype,
/// implemented here).
using PersistentState = std::map<std::string, double>;

/// Leader heartbeat: floods the group to assert leadership, carries the
/// leader's weight for spurious-label suppression and the committed object
/// state for takeover continuity.
class HeartbeatPayload final : public radio::Payload {
 public:
  HeartbeatPayload(TypeIndex type_index, LabelId label, NodeId leader,
                   Vec2 leader_pos, Vec2 estimate, std::uint64_t weight,
                   std::uint32_t seq, std::uint8_t perimeter_budget,
                   PersistentState state)
      : type_index(type_index),
        label(label),
        leader(leader),
        leader_pos(leader_pos),
        estimate(estimate),
        weight(weight),
        seq(seq),
        perimeter_budget(perimeter_budget),
        state(std::move(state)) {}

  std::size_t size_bytes() const override {
    // type (2) + label (8) + leader (2) + pos (8) + estimate (8)
    // + weight (4) + seq (4) + epoch (4) + budget (1) + state (9B each).
    return 41 + state.size() * 9;
  }

  TypeIndex type_index;
  LabelId label;
  NodeId leader;
  Vec2 leader_pos;
  /// The label's best estimate of its tracked entity's position (the
  /// first position-type aggregate when valid, else the leader's own
  /// location). Receivers use it to tell "another label for *my*
  /// stimulus" (suppress/join) apart from "a label for a different,
  /// physically separated entity" (coexist).
  Vec2 estimate;
  std::uint64_t weight;
  std::uint32_t seq;
  /// Remaining hops past the group perimeter this heartbeat may travel
  /// (the parameter h of §5.2); non-members decrement and rebroadcast.
  std::uint8_t perimeter_budget;
  PersistentState state;
  /// Leadership epoch of this label: bumped on every takeover/succession.
  /// Receivers fence stale incarnations (a partitioned ex-leader) by
  /// preferring the higher epoch. Set by the sender after construction.
  std::uint64_t epoch = 0;
};

/// Member -> leader sensor report: one scalar per aggregate variable of the
/// context type, plus the reporter's position (consumed by position
/// aggregates).
class ReportPayload final : public radio::Payload {
 public:
  ReportPayload(TypeIndex type_index, LabelId label, NodeId reporter,
                Vec2 reporter_pos, Time measured_at,
                std::vector<double> scalars)
      : type_index(type_index),
        label(label),
        reporter(reporter),
        reporter_pos(reporter_pos),
        measured_at(measured_at),
        scalars(std::move(scalars)) {}

  std::size_t size_bytes() const override {
    // type (2) + label (8) + reporter (2) + pos (8) + timestamp (4)
    // + ttl (1) + epoch (4) + 4B per reading.
    return 29 + scalars.size() * 4;
  }

  TypeIndex type_index;
  LabelId label;
  NodeId reporter;
  Vec2 reporter_pos;
  Time measured_at;
  std::vector<double> scalars;
  /// Remaining in-group relay hops when the leader is out of direct radio
  /// range (§3.2.1: members communicate "possibly using multiple hops
  /// through other members of the same group").
  std::uint8_t relay_budget = 0;
  /// The leadership epoch this member last saw for its label. A leader
  /// that overhears a same-label report with a higher epoch knows a newer
  /// incarnation exists and steps down (partition-heal fencing).
  std::uint64_t epoch = 0;
};

/// Leader relinquish: the leader no longer senses the entity and asks the
/// group to elect a successor, passing its weight and committed state on.
class RelinquishPayload final : public radio::Payload {
 public:
  RelinquishPayload(TypeIndex type_index, LabelId label, NodeId leader,
                    std::uint64_t weight, std::uint32_t last_seq,
                    PersistentState state)
      : type_index(type_index),
        label(label),
        leader(leader),
        weight(weight),
        last_seq(last_seq),
        state(std::move(state)) {}

  std::size_t size_bytes() const override { return 25 + state.size() * 9; }

  TypeIndex type_index;
  LabelId label;
  NodeId leader;
  std::uint64_t weight;
  std::uint32_t last_seq;
  PersistentState state;
  /// The relinquishing leader's epoch; the elected successor leads at
  /// epoch + 1.
  std::uint64_t epoch = 0;
  /// Dissolve instead of electing a successor: the label now belongs to a
  /// remote incarnation (this leader was epoch-fenced), so local members
  /// must leave and let a fresh label form for the locally sensed entity.
  /// Electing a successor would resurrect the fenced label at epoch + 1
  /// and out-epoch the legitimate incumbent, ping-ponging forever.
  bool dissolve = false;
};

}  // namespace et::core
