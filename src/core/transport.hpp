#pragma once

#include <cstdint>
#include <vector>

#include "core/context_runtime.hpp"
#include "core/directory.hpp"
#include "core/group_manager.hpp"
#include "net/geo_routing.hpp"
#include "util/lru_map.hpp"

/// The mote transport protocol — MTP (§5.4).
///
/// Context labels are akin to IP addresses; the group leader oversees all
/// communication with the label. Remote method invocation between labels:
/// the source leader resolves the destination label to a last-known leader
/// (bounded LRU table, refreshed from headers of incoming traffic and
/// overheard heartbeats), geo-routes the invocation there, and past leaders
/// forward along the chain toward the current leader. First contact falls
/// back to a directory lookup.
namespace et::core {

struct TransportConfig {
  /// "Leadership information is retained for as long as possible, given
  /// limited table sizes. Replacement is done on a least-recently-used
  /// basis."
  std::size_t leader_table_capacity = 32;
  /// Forwarding hops an invocation may take past its first landing point
  /// before being dropped as undeliverable.
  std::uint8_t max_forwards = 8;
  /// Consult the directory when the destination label is unknown.
  bool directory_fallback = true;
};

struct TransportStats {
  std::uint64_t invocations_sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t directory_lookups = 0;
  std::uint64_t dropped_unknown = 0;
  std::uint64_t dropped_forward_limit = 0;
};

/// MTP invocation message (inner payload of kMtpData envelopes).
class MtpPayload final : public radio::Payload {
 public:
  MtpPayload(LabelId src_label, NodeId src_leader, Vec2 src_leader_pos,
             TypeIndex dst_type, LabelId dst_label, PortId port,
             std::vector<double> args)
      : src_label(src_label),
        src_leader(src_leader),
        src_leader_pos(src_leader_pos),
        dst_type(dst_type),
        dst_label(dst_label),
        port(port),
        args(std::move(args)) {}

  std::size_t size_bytes() const override { return 32 + args.size() * 4; }

  LabelId src_label;
  /// "Each message contains the current leader of the group, so that
  /// future return messages are forwarded as close to the group as
  /// possible."
  NodeId src_leader;
  Vec2 src_leader_pos;
  TypeIndex dst_type;
  LabelId dst_label;
  PortId port;
  std::vector<double> args;
  std::uint8_t forwards = 0;
};

class Transport {
 public:
  Transport(node::Mote& mote, net::GeoRouting& routing, GroupManager& groups,
            ContextRuntime& runtime, Directory* directory,
            TransportConfig config = {});

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Invokes `port` on the object attached to `dst_label`. `src_label` is
  /// the originating context (invalid when called from plain node code).
  void invoke(TypeIndex dst_type, LabelId dst_label, PortId port,
              std::vector<double> args, LabelId src_label = LabelId{});

  /// Heartbeat snooping (wired from the GroupManager): every observed
  /// heartbeat refreshes the last-known-leader table, which is what lets
  /// past leaders act as forwarding routers after the group moves on.
  void on_leader_observed(TypeIndex type, LabelId label, NodeId leader,
                          Vec2 leader_pos);

  /// Leadership-change hook (wired from the GroupManager's leader-stop
  /// edge): drops a cached self-entry for `label` so messages that arrive
  /// after yield/relinquish/takeover re-resolve via the directory instead
  /// of dying as dropped_unknown against a stale "I am the leader" record.
  void on_leader_stop(TypeIndex type, LabelId label);

  /// Clears volatile routing state (the last-known-leader table) after a
  /// node reboot; the program image (handlers, wiring) survives.
  void reboot() { leaders_.clear(); }

  /// Last-known leader of a label, if cached.
  struct LeaderInfo {
    NodeId node;
    Vec2 pos;
    Time at;
  };
  const LeaderInfo* known_leader(LabelId label) const {
    return leaders_.peek(label);
  }

  const TransportStats& stats() const { return stats_; }

 private:
  void handle_delivery(const net::RouteEnvelope& envelope);
  void send_to(const LeaderInfo& info, std::shared_ptr<MtpPayload> payload);
  void resolve_and_send(std::shared_ptr<MtpPayload> payload);

  node::Mote& mote_;
  net::GeoRouting& routing_;
  GroupManager& groups_;
  ContextRuntime& runtime_;
  Directory* directory_;
  TransportConfig config_;
  LruMap<LabelId, LeaderInfo> leaders_;
  TransportStats stats_;
};

}  // namespace et::core
