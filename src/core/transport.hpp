#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "core/context_runtime.hpp"
#include "core/directory.hpp"
#include "core/group_manager.hpp"
#include "net/geo_routing.hpp"
#include "util/lru_map.hpp"

/// The mote transport protocol — MTP (§5.4).
///
/// Context labels are akin to IP addresses; the group leader oversees all
/// communication with the label. Remote method invocation between labels:
/// the source leader resolves the destination label to a last-known leader
/// (bounded LRU table, refreshed from headers of incoming traffic and
/// overheard heartbeats), geo-routes the invocation there, and past leaders
/// forward along the chain toward the current leader. First contact falls
/// back to a directory lookup.
///
/// Reliability layer (enabled by default): every invocation carries a
/// per-destination sequence number; the delivering leader acks end-to-end,
/// the origin retransmits on an exponential-backoff timer until acked or
/// the retry budget runs out, and receivers suppress duplicates through a
/// bounded dedup window. Delivery is exactly-once per receiving node;
/// across a leadership migration the same invocation can reach the old and
/// the new leader (at-least-once), which the invariant oracle accounts for.
namespace et::core {

struct TransportConfig {
  /// "Leadership information is retained for as long as possible, given
  /// limited table sizes. Replacement is done on a least-recently-used
  /// basis."
  std::size_t leader_table_capacity = 32;
  /// Forwarding hops an invocation may take past its first landing point
  /// before being dropped as undeliverable.
  std::uint8_t max_forwards = 8;
  /// Consult the directory when the destination label is unknown.
  bool directory_fallback = true;
  /// Acked end-to-end delivery with retransmits. When false the transport
  /// is the original fire-and-forget MTP (kept for ablation: the chaos
  /// sweep compares the two under burst loss).
  bool reliable = true;
  /// Retransmissions after the initial send before the transfer fails.
  int max_retries = 4;
  /// Initial retransmit timeout; doubles on every retry. Must exceed the
  /// worst-case geo-routed round trip INCLUDING the per-hop ARQ backoff
  /// ladder (~0.6 s per lossy hop), or the end-to-end layer retransmits
  /// while the network layer is still trying — every premature copy is a
  /// fresh routed envelope, and under burst loss that amplification
  /// congests the channel the original frame needed to get through.
  Duration retry_timeout = Duration::millis(1200);
  /// Uniform jitter fraction added to every retransmit delay (timeout *
  /// [1, 1 + jitter]), drawn from the mote's deterministic RNG stream so
  /// synchronized senders desynchronize without breaking reproducibility.
  double retry_jitter = 0.25;
  /// Receiver-side duplicate-suppression window: completed transfers
  /// remembered per node. Retransmits of an already-delivered invocation
  /// are re-acked but not re-dispatched.
  std::size_t dedup_capacity = 128;
  /// A destination label that just failed resolution is negative-cached
  /// for this long: repeat sends fail fast instead of re-querying the
  /// directory every time (the unbounded-re-resolution fix).
  Duration negative_cache_ttl = Duration::seconds(2);
  std::size_t negative_cache_capacity = 32;
};

struct TransportStats {
  std::uint64_t invocations_sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t directory_lookups = 0;
  std::uint64_t dropped_unknown = 0;
  std::uint64_t dropped_forward_limit = 0;
  // Reliability layer.
  std::uint64_t acks_sent = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t retransmits = 0;
  /// Transfers abandoned after the retry budget (delivery_failed fired).
  std::uint64_t delivery_failures = 0;
  /// Retransmitted invocations the dedup window stopped from dispatching
  /// twice.
  std::uint64_t duplicates_suppressed = 0;
  /// Sends suppressed by the negative cache (label recently unresolvable).
  std::uint64_t resolve_failed = 0;
};

/// Reliability-layer lifecycle events, consumed by the invariant oracle
/// and tests. `origin` + `dst_label` + `seq` identify one transfer.
struct TransportEvent {
  enum class Kind {
    kSend,           // reliable transfer created at the origin
    kRetransmit,     // origin re-sent after an ack timeout
    kAcked,          // origin settled the transfer on an ack
    kDelivered,      // receiver dispatched the invocation
    kDuplicate,      // receiver suppressed an already-delivered transfer
    kFailed,         // origin gave up (retry budget exhausted)
    kResolveFailed,  // origin could not resolve the destination label
  };

  Kind kind;
  Time time;
  NodeId node;  // where the event happened
  LabelId dst_label;
  NodeId origin;
  std::uint32_t seq = 0;
  /// Retransmits performed so far on the transfer (0 on first send).
  int attempt = 0;
};

const char* transport_event_kind_name(TransportEvent::Kind kind);

/// MTP invocation message (inner payload of kMtpData envelopes).
class MtpPayload final : public radio::Payload {
 public:
  MtpPayload(LabelId src_label, NodeId src_leader, Vec2 src_leader_pos,
             TypeIndex dst_type, LabelId dst_label, PortId port,
             std::vector<double> args)
      : src_label(src_label),
        src_leader(src_leader),
        src_leader_pos(src_leader_pos),
        dst_type(dst_type),
        dst_label(dst_label),
        port(port),
        args(std::move(args)) {}

  std::size_t size_bytes() const override { return 37 + args.size() * 4; }

  LabelId src_label;
  /// "Each message contains the current leader of the group, so that
  /// future return messages are forwarded as close to the group as
  /// possible." Doubles as the transfer origin the end-to-end ack routes
  /// back to.
  NodeId src_leader;
  Vec2 src_leader_pos;
  TypeIndex dst_type;
  LabelId dst_label;
  PortId port;
  std::vector<double> args;
  std::uint8_t forwards = 0;
  /// Per-destination sequence number (reliable mode); 0 on
  /// fire-and-forget sends.
  std::uint32_t seq = 0;
  /// Ask the delivering leader for an end-to-end ack.
  bool want_ack = false;
};

/// End-to-end acknowledgement, geo-routed back to the transfer origin.
class MtpAckPayload final : public radio::Payload {
 public:
  MtpAckPayload(NodeId origin, LabelId dst_label, std::uint32_t seq)
      : origin(origin), dst_label(dst_label), seq(seq) {}
  std::size_t size_bytes() const override { return 14; }

  NodeId origin;
  LabelId dst_label;
  std::uint32_t seq;
};

class Transport {
 public:
  /// Fired once per reliable transfer whose retry budget is exhausted,
  /// with the failed invocation so callers can degrade gracefully (drop,
  /// reroute, raise an application alarm) instead of silently losing it.
  /// May fire synchronously from within invoke() when the destination is
  /// immediately unresolvable.
  using DeliveryFailedFn = std::function<void(
      TypeIndex, LabelId dst_label, PortId, const std::vector<double>& args)>;
  using Listener = std::function<void(const TransportEvent&)>;

  Transport(node::Mote& mote, net::GeoRouting& routing, GroupManager& groups,
            ContextRuntime& runtime, Directory* directory,
            TransportConfig config = {});

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Invokes `port` on the object attached to `dst_label`. `src_label` is
  /// the originating context (invalid when called from plain node code).
  void invoke(TypeIndex dst_type, LabelId dst_label, PortId port,
              std::vector<double> args, LabelId src_label = LabelId{});

  /// Heartbeat snooping (wired from the GroupManager): every observed
  /// heartbeat refreshes the last-known-leader table, which is what lets
  /// past leaders act as forwarding routers after the group moves on.
  void on_leader_observed(TypeIndex type, LabelId label, NodeId leader,
                          Vec2 leader_pos);

  /// Leadership-change hook (wired from the GroupManager's leader-stop
  /// edge): drops a cached self-entry for `label` so messages that arrive
  /// after yield/relinquish/takeover re-resolve via the directory instead
  /// of dying as dropped_unknown against a stale "I am the leader" record.
  void on_leader_stop(TypeIndex type, LabelId label);

  /// Clears volatile state (leader table, in-flight transfers, dedup and
  /// negative caches) after a node reboot; the program image survives.
  void reboot();

  void set_delivery_failed(DeliveryFailedFn fn) {
    delivery_failed_ = std::move(fn);
  }
  void add_listener(Listener fn) { listeners_.push_back(std::move(fn)); }

  /// Last-known leader of a label, if cached.
  struct LeaderInfo {
    NodeId node;
    Vec2 pos;
    Time at;
  };
  const LeaderInfo* known_leader(LabelId label) const {
    return leaders_.peek(label);
  }

  /// Reliable transfers awaiting an ack at this origin.
  std::size_t pending_transfers() const { return pending_.size(); }

  const TransportConfig& config() const { return config_; }
  const TransportStats& stats() const { return stats_; }

 private:
  struct PendingTransfer {
    std::shared_ptr<MtpPayload> payload;
    int attempts = 0;  // retransmits performed
    sim::EventHandle retry_timer;
  };

  /// Key of a transfer at its origin (per-destination seq + label).
  static std::uint64_t transfer_key(LabelId label, std::uint32_t seq) {
    return label.value() * 0x9e3779b97f4a7c15ull ^ seq;
  }
  /// Receiver-side dedup key; includes the origin so two origins' streams
  /// never collide.
  static std::uint64_t dedup_key(NodeId origin, LabelId label,
                                 std::uint32_t seq) {
    std::uint64_t h = label.value() * 0x9e3779b97f4a7c15ull;
    h ^= origin.value() * 0xff51afd7ed558ccdull;
    return h ^ seq;
  }

  void handle_delivery(const net::RouteEnvelope& envelope);
  void handle_ack(const net::RouteEnvelope& envelope);
  void send_to(const LeaderInfo& info, std::shared_ptr<MtpPayload> payload);
  void resolve_and_send(std::shared_ptr<MtpPayload> payload);
  /// Dispatch at the destination leader: dedup, ack, deliver.
  void deliver_local(const MtpPayload& payload);
  void send_ack(const MtpPayload& payload);
  void arm_retry(std::uint64_t key);
  void on_retry_timeout(std::uint64_t key);
  /// Cancels the retry timer and forgets the transfer. Returns false when
  /// the key was not pending (already settled or failed).
  bool settle(std::uint64_t key);
  void fail_transfer(std::uint64_t key);
  /// Origin-side abort when resolution fails: a reliable transfer fails
  /// immediately (no point retrying into a void), fire-and-forget is a
  /// silent drop either way.
  void abort_unresolvable(const MtpPayload& payload);
  void note_resolve_failure(LabelId label);
  void emit(TransportEvent::Kind kind, LabelId dst_label, NodeId origin,
            std::uint32_t seq, int attempt);

  node::Mote& mote_;
  net::GeoRouting& routing_;
  GroupManager& groups_;
  ContextRuntime& runtime_;
  Directory* directory_;
  TransportConfig config_;
  LruMap<LabelId, LeaderInfo> leaders_;
  /// Per-destination sequence counters (reliable mode).
  LruMap<LabelId, std::uint32_t> next_seq_;
  /// Origin-side transfers awaiting an ack, keyed by transfer_key().
  std::unordered_map<std::uint64_t, PendingTransfer> pending_;
  /// Receiver-side dedup window, keyed by dedup_key().
  LruMap<std::uint64_t, bool> delivered_seen_;
  /// Labels with a directory query in flight, each with the payloads
  /// waiting on its answer. Coalescing keeps retransmits (and concurrent
  /// sends) from issuing one query per attempt.
  std::unordered_map<std::uint64_t, std::vector<std::shared_ptr<MtpPayload>>>
      resolving_;
  /// Negative cache: label -> expiry of its "unresolvable" verdict.
  LruMap<LabelId, Time> resolve_failed_until_;
  DeliveryFailedFn delivery_failed_;
  std::vector<Listener> listeners_;
  TransportStats stats_;
};

}  // namespace et::core
