#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/context_type.hpp"
#include "net/geo_routing.hpp"
#include "util/geometry.hpp"

/// Object naming and directory services (§5.3).
///
/// The type name of a context is hashed to an (x, y) coordinate in the
/// field; the nodes around that coordinate form the *directory object* for
/// the type, maintaining a mapping from context label to last-reported
/// location. Leaders push periodic location updates; any node can query
/// ("where are all the fires?") and receives the label list routed back.
/// The primary directory node replicates entries to its one-hop neighbours
/// so the directory survives individual node failures.
namespace et::core {

struct DirectoryEntry {
  LabelId label;
  NodeId leader;
  Vec2 location;
  Time updated;
  /// Leadership epoch of the reporting leader; the store keeps the highest
  /// epoch seen per label so a stale (pre-partition) leader's refreshes
  /// cannot overwrite its successor's entry.
  std::uint64_t epoch = 0;
};

struct DirectoryConfig {
  /// How often a leader refreshes its label's directory entry.
  Duration update_period = Duration::seconds(5);
  /// Entries older than this are dropped ("occasional updates ... keep the
  /// location information up to date").
  Duration entry_ttl = Duration::seconds(20);
  /// Unanswered queries fail after this long.
  Duration query_timeout = Duration::seconds(3);
  /// Primary directory nodes replicate entries one hop around the hash
  /// point; replicas within this distance of the hash point store them.
  double replica_radius = 6.0;
  /// Disable replication (ablation / traffic comparison).
  bool replicate = true;
  /// A stale refresh only triggers a fence notice when its registered
  /// location is farther than this from the incumbent's — closer rivals
  /// are resolved by the heartbeat duel, not the directory. 0 (default)
  /// means "use the radio's comm radius".
  double fence_min_separation = 0.0;
};

struct DirectoryStats {
  std::uint64_t updates_sent = 0;
  std::uint64_t updates_stored = 0;
  std::uint64_t replicas_stored = 0;
  std::uint64_t queries_sent = 0;
  std::uint64_t queries_answered = 0;
  std::uint64_t replies_received = 0;
  std::uint64_t query_timeouts = 0;
  /// Updates rejected because a higher-epoch entry for the label exists.
  std::uint64_t updates_fenced = 0;
  /// Fence notices routed back to the stale updater (primary view).
  std::uint64_t fences_sent = 0;
  /// Fence notices this node received about a label it claimed to lead.
  std::uint64_t fences_received = 0;
  /// Withdrawal updates sent for labels that died by suppression.
  std::uint64_t retires_sent = 0;
  /// Entries erased by a withdrawal (primary or replica view).
  std::uint64_t entries_retired = 0;
};

/// Hashes a context type name to a coordinate inside `bounds`. Pure
/// function of the name — every node computes the same rendezvous point.
Vec2 directory_hash_point(std::string_view type_name, Rect bounds);

/// Per-mote directory service. Consumes kDirUpdate / kDirQuery / kDirReply
/// envelopes delivered by the routing layer.
class Directory {
 public:
  using QueryCallback =
      std::function<void(bool ok, const std::vector<DirectoryEntry>&)>;
  /// (type, label, high-water epoch, incumbent leader, incumbent position):
  /// the directory rejected this node's refresh because a newer incarnation
  /// of the label is registered.
  using FencedCallback =
      std::function<void(TypeIndex, LabelId, std::uint64_t, NodeId, Vec2)>;

  Directory(node::Mote& mote, net::GeoRouting& routing,
            const std::vector<ContextTypeSpec>& specs, Rect field_bounds,
            DirectoryConfig config = {});

  Directory(const Directory&) = delete;
  Directory& operator=(const Directory&) = delete;

  /// Leadership edges, wired by the middleware stack: while this node
  /// leads `label` it refreshes the directory entry periodically, stamping
  /// each update with the leadership `epoch` it leads under.
  void on_leader_start(TypeIndex type, LabelId label, std::uint64_t epoch);
  void on_leader_stop(TypeIndex type, LabelId label);
  /// The sitting leader absorbed a higher epoch mid-leadership; later
  /// refreshes must carry it or they would be fenced as stale.
  void on_epoch_change(TypeIndex type, std::uint64_t epoch) {
    if (current_label_[type].is_valid()) current_epoch_[type] = epoch;
  }

  /// Withdraws `label`'s registration (it died by suppression): a retire
  /// update routes to the directory object and erases the entry unless a
  /// newer incarnation (higher epoch) has registered since.
  void retire_label(TypeIndex type, LabelId label, std::uint64_t epoch);

  /// Node-reboot hook: cancels refresh timers and in-flight queries
  /// (callbacks are dropped, not invoked) and wipes the local entry store —
  /// replicas repopulate it from peers' periodic updates.
  void reboot();

  /// Wired by the middleware into the group layer: fires when a kDirFence
  /// notice arrives, i.e. the directory holds a higher-epoch registration
  /// for a label this node refreshes as leader. The group manager uses it
  /// to step a stale (post-partition) leader down even when the successor
  /// is out of heartbeat range — the directory is the one rendezvous both
  /// incarnations still share.
  void set_leader_fenced(FencedCallback callback) {
    fenced_cb_ = std::move(callback);
  }

  /// Asks the directory object of `type` for all active labels. The
  /// callback fires exactly once: with the reply, or with ok=false on
  /// timeout.
  void query(TypeIndex type, QueryCallback callback);

  /// Entries this node stores for `type` (primary or replica view).
  std::vector<DirectoryEntry> local_entries(TypeIndex type) const;

  /// The rendezvous point for a type in this deployment.
  Vec2 hash_point(TypeIndex type) const { return hash_points_[type]; }

  const DirectoryStats& stats() const { return stats_; }

 private:
  struct PendingQuery {
    QueryCallback callback;
    sim::EventHandle timeout;
  };

  void send_update(TypeIndex type);
  void handle_update(const net::RouteEnvelope& envelope);
  void handle_query(const net::RouteEnvelope& envelope);
  void handle_reply(const net::RouteEnvelope& envelope);
  void handle_fence(const net::RouteEnvelope& envelope);
  /// Returns false when the update was fenced by a higher-epoch entry.
  bool store(TypeIndex type, const DirectoryEntry& entry, bool replica);
  void remove(TypeIndex type, const DirectoryEntry& entry);
  void prune(TypeIndex type) const;

  node::Mote& mote_;
  net::GeoRouting& routing_;
  const std::vector<ContextTypeSpec>* specs_;
  DirectoryConfig config_;
  std::vector<Vec2> hash_points_;

  /// type -> label -> entry (primary + replicated).
  mutable std::vector<std::map<LabelId, DirectoryEntry>> store_;
  /// Labels this node currently leads, with their refresh timers.
  std::vector<sim::EventHandle> update_timers_;  // per type
  std::vector<LabelId> current_label_;           // per type; invalid if none
  std::vector<std::uint64_t> current_epoch_;     // per type; 0 if not leading
  std::unordered_map<std::uint32_t, PendingQuery> pending_;
  std::uint32_t next_query_id_ = 1;
  FencedCallback fenced_cb_;
  DirectoryStats stats_;
};

}  // namespace et::core
