#include "core/directory.hpp"

#include <cassert>

#include "util/log.hpp"

namespace et::core {

namespace {

constexpr const char* kComponent = "directory";

class DirUpdatePayload final : public radio::Payload {
 public:
  DirUpdatePayload(TypeIndex type, DirectoryEntry entry, bool retire = false)
      : type(type), entry(entry), retire(retire) {}
  std::size_t size_bytes() const override { return 29; }

  TypeIndex type;
  DirectoryEntry entry;
  /// Withdrawal: erase the entry (label died) instead of refreshing it.
  bool retire;
};

class DirFencePayload final : public radio::Payload {
 public:
  DirFencePayload(TypeIndex type, LabelId label, std::uint64_t epoch,
                  NodeId incumbent, Vec2 incumbent_pos)
      : type(type), label(label), epoch(epoch), incumbent(incumbent),
        incumbent_pos(incumbent_pos) {}
  std::size_t size_bytes() const override { return 29; }

  TypeIndex type;
  LabelId label;
  /// High-water epoch registered for the label.
  std::uint64_t epoch;
  /// The leader registered under that epoch, and where it registered
  /// from — the fenced leader uses the position to tell a genuinely
  /// unreachable incumbent from a nearby duel rival.
  NodeId incumbent;
  Vec2 incumbent_pos;
};

class DirQueryPayload final : public radio::Payload {
 public:
  DirQueryPayload(TypeIndex type, std::uint32_t query_id, NodeId origin,
                  Vec2 origin_pos)
      : type(type), query_id(query_id), origin(origin),
        origin_pos(origin_pos) {}
  std::size_t size_bytes() const override { return 16; }

  TypeIndex type;
  std::uint32_t query_id;
  NodeId origin;
  Vec2 origin_pos;
};

class DirReplyPayload final : public radio::Payload {
 public:
  DirReplyPayload(std::uint32_t query_id, std::vector<DirectoryEntry> entries)
      : query_id(query_id), entries(std::move(entries)) {}
  std::size_t size_bytes() const override { return 6 + entries.size() * 20; }

  std::uint32_t query_id;
  std::vector<DirectoryEntry> entries;
};

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

Vec2 directory_hash_point(std::string_view type_name, Rect bounds) {
  const std::uint64_t h = fnv1a(type_name);
  const double fx = static_cast<double>(h & 0xffffffffu) / 4294967296.0;
  const double fy = static_cast<double>(h >> 32) / 4294967296.0;
  return {bounds.min.x + fx * bounds.width(),
          bounds.min.y + fy * bounds.height()};
}

Directory::Directory(node::Mote& mote, net::GeoRouting& routing,
                     const std::vector<ContextTypeSpec>& specs,
                     Rect field_bounds, DirectoryConfig config)
    : mote_(mote),
      routing_(routing),
      specs_(&specs),
      config_(config),
      store_(specs.size()),
      update_timers_(specs.size()),
      current_label_(specs.size()),
      current_epoch_(specs.size(), 0) {
  hash_points_.reserve(specs.size());
  for (const ContextTypeSpec& spec : specs) {
    hash_points_.push_back(directory_hash_point(spec.name, field_bounds));
  }
  routing_.on_delivery(radio::MsgType::kDirUpdate,
                       [this](const net::RouteEnvelope& e) {
                         handle_update(e);
                       });
  routing_.on_delivery(radio::MsgType::kDirQuery,
                       [this](const net::RouteEnvelope& e) {
                         handle_query(e);
                       });
  routing_.on_delivery(radio::MsgType::kDirReply,
                       [this](const net::RouteEnvelope& e) {
                         handle_reply(e);
                       });
  routing_.on_delivery(radio::MsgType::kDirFence,
                       [this](const net::RouteEnvelope& e) {
                         handle_fence(e);
                       });
  // Replica path: primaries rebroadcast stored updates one hop.
  mote_.set_handler(radio::MsgType::kDirUpdate,
                    [this](const radio::Frame& frame) {
                      const auto* payload = static_cast<const DirUpdatePayload*>(
                          frame.payload.get());
                      if (distance(mote_.position(),
                                   hash_points_[payload->type]) <=
                          config_.replica_radius) {
                        if (payload->retire) {
                          remove(payload->type, payload->entry);
                        } else {
                          stats_.replicas_stored++;
                          store(payload->type, payload->entry, true);
                        }
                      }
                    });
}

void Directory::on_leader_start(TypeIndex type, LabelId label,
                                std::uint64_t epoch) {
  current_label_[type] = label;
  current_epoch_[type] = epoch;
  send_update(type);
  update_timers_[type].cancel();
  update_timers_[type] =
      mote_.every(config_.update_period, config_.update_period,
                  [this, type] { send_update(type); });
}

void Directory::on_leader_stop(TypeIndex type, LabelId label) {
  (void)label;
  current_label_[type] = LabelId{};
  current_epoch_[type] = 0;
  update_timers_[type].cancel();
}

void Directory::reboot() {
  for (std::size_t t = 0; t < store_.size(); ++t) {
    update_timers_[t].cancel();
    current_label_[t] = LabelId{};
    current_epoch_[t] = 0;
    store_[t].clear();
  }
  for (auto& [id, pending] : pending_) pending.timeout.cancel();
  pending_.clear();
}

void Directory::send_update(TypeIndex type) {
  // Guard: leadership may have lapsed between the timer post and execution.
  const DirectoryEntry entry{current_label_[type], mote_.id(),
                             mote_.position(), mote_.now(),
                             current_epoch_[type]};
  if (!entry.label.is_valid()) return;
  stats_.updates_sent++;
  routing_.send(hash_points_[type], radio::MsgType::kDirUpdate,
                std::make_shared<DirUpdatePayload>(type, entry));
}

void Directory::handle_update(const net::RouteEnvelope& envelope) {
  const auto* payload =
      static_cast<const DirUpdatePayload*>(envelope.inner.get());
  if (payload->retire) {
    remove(payload->type, payload->entry);
  } else {
    stats_.updates_stored++;
    if (!store(payload->type, payload->entry, false)) {
      // The refresh came from a stale incarnation of the label (a leader
      // that missed its own succession, typically across a partition).
      // Unlike heartbeats and member reports, the directory rendezvous is
      // reachable from anywhere the routing layer can reach, so a fence
      // notice routed back retires stale leaders that no radio-local
      // evidence would ever catch. Rivals within radio range of the
      // incumbent are NOT fenced: the heartbeat duel resolves those in one
      // beat with group continuity, and takeover races would otherwise
      // flood the field with parasitic fence traffic.
      const DirectoryEntry& incumbent =
          store_[payload->type].at(payload->entry.label);
      const double duel_range = config_.fence_min_separation > 0.0
                                    ? config_.fence_min_separation
                                    : mote_.medium().config().comm_radius;
      if (distance(payload->entry.location, incumbent.location) >
          duel_range) {
        stats_.fences_sent++;
        routing_.send(payload->entry.location, radio::MsgType::kDirFence,
                      std::make_shared<DirFencePayload>(
                          payload->type, payload->entry.label,
                          incumbent.epoch, incumbent.leader,
                          incumbent.location),
                      payload->entry.leader);
      }
    }
  }
  if (config_.replicate) {
    mote_.broadcast(radio::MsgType::kDirUpdate, envelope.inner);
  }
}

void Directory::handle_fence(const net::RouteEnvelope& envelope) {
  const auto* payload =
      static_cast<const DirFencePayload*>(envelope.inner.get());
  stats_.fences_received++;
  if (fenced_cb_) {
    fenced_cb_(payload->type, payload->label, payload->epoch,
               payload->incumbent, payload->incumbent_pos);
  }
}

void Directory::retire_label(TypeIndex type, LabelId label,
                             std::uint64_t epoch) {
  const DirectoryEntry entry{label, mote_.id(), mote_.position(), mote_.now(),
                             epoch};
  stats_.retires_sent++;
  routing_.send(hash_points_[type], radio::MsgType::kDirUpdate,
                std::make_shared<DirUpdatePayload>(type, entry, true));
}

void Directory::remove(TypeIndex type, const DirectoryEntry& entry) {
  auto& entries = store_[type];
  auto it = entries.find(entry.label);
  // A stale incarnation cannot withdraw its successor's registration.
  if (it == entries.end() || it->second.epoch > entry.epoch) return;
  entries.erase(it);
  stats_.entries_retired++;
}

bool Directory::store(TypeIndex type, const DirectoryEntry& entry,
                      bool replica) {
  (void)replica;
  auto& entries = store_[type];
  auto it = entries.find(entry.label);
  if (it == entries.end()) {
    entries[entry.label] = entry;
    return true;
  }
  // Epoch fencing: a stale incarnation's refresh must never displace the
  // successor's entry, no matter how fresh its timestamp is. Within one
  // epoch the newest timestamp wins as before — unless it comes from a
  // *different* leader: two incarnations at the same epoch (e.g. a label
  // fissioned by a migrating stimulus) are resolved with the heartbeat
  // duel's tie-break, lower node id wins, so the directory converges on
  // the same incumbent the duel would pick.
  if (entry.epoch < it->second.epoch ||
      (entry.epoch == it->second.epoch && entry.leader != it->second.leader &&
       entry.leader.value() > it->second.leader.value())) {
    stats_.updates_fenced++;
    return false;
  }
  if (entry.epoch > it->second.epoch ||
      entry.leader.value() < it->second.leader.value() ||
      it->second.updated <= entry.updated) {
    it->second = entry;
  }
  return true;
}

void Directory::prune(TypeIndex type) const {
  const Time horizon = mote_.now() - config_.entry_ttl;
  auto& entries = store_[type];
  for (auto it = entries.begin(); it != entries.end();) {
    if (it->second.updated < horizon) {
      it = entries.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<DirectoryEntry> Directory::local_entries(TypeIndex type) const {
  prune(type);
  std::vector<DirectoryEntry> out;
  out.reserve(store_[type].size());
  for (const auto& [label, entry] : store_[type]) out.push_back(entry);
  return out;
}

void Directory::query(TypeIndex type, QueryCallback callback) {
  const std::uint32_t id = next_query_id_++;
  stats_.queries_sent++;
  PendingQuery pending;
  pending.callback = std::move(callback);
  pending.timeout = mote_.sim().schedule(config_.query_timeout, [this, id] {
    auto it = pending_.find(id);
    if (it == pending_.end()) return;
    stats_.query_timeouts++;
    QueryCallback cb = std::move(it->second.callback);
    pending_.erase(it);
    cb(false, {});
  });
  pending_[id] = std::move(pending);
  routing_.send(hash_points_[type], radio::MsgType::kDirQuery,
                std::make_shared<DirQueryPayload>(type, id, mote_.id(),
                                                  mote_.position()));
}

void Directory::handle_query(const net::RouteEnvelope& envelope) {
  const auto* payload =
      static_cast<const DirQueryPayload*>(envelope.inner.get());
  stats_.queries_answered++;
  routing_.send(payload->origin_pos, radio::MsgType::kDirReply,
                std::make_shared<DirReplyPayload>(
                    payload->query_id, local_entries(payload->type)),
                payload->origin);
}

void Directory::handle_reply(const net::RouteEnvelope& envelope) {
  const auto* payload =
      static_cast<const DirReplyPayload*>(envelope.inner.get());
  auto it = pending_.find(payload->query_id);
  if (it == pending_.end()) return;  // timed out already
  it->second.timeout.cancel();
  stats_.replies_received++;
  QueryCallback cb = std::move(it->second.callback);
  pending_.erase(it);
  cb(true, payload->entries);
}

}  // namespace et::core
