#pragma once

#include <functional>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/geometry.hpp"
#include "util/ids.hpp"
#include "util/time.hpp"

/// Distributed aggregation functions (§3.2.3).
///
/// "Several aggregation functions are provided in the system, such as
/// average, sum, and center of gravity", plus "mechanisms for programming
/// custom aggregation functions". An aggregation maps the fresh samples of
/// a sensor group onto a scalar or a 2-D vector (positions).
namespace et::core {

/// One member's contribution to one aggregate variable.
struct Sample {
  NodeId reporter;
  Time measured_at;
  /// Scalar sensor reading; 0 for the pseudo-sensor "position".
  double scalar = 0.0;
  /// The reporter's location (used by position aggregates and by
  /// signal-weighted centroids).
  Vec2 position;
};

/// Result of an aggregation: either a scalar or a position.
struct AggregateValue {
  enum class Kind { kScalar, kVector };
  Kind kind = Kind::kScalar;
  double scalar = 0.0;
  Vec2 vector;

  static AggregateValue of(double v) {
    return AggregateValue{Kind::kScalar, v, {}};
  }
  static AggregateValue of(Vec2 v) {
    return AggregateValue{Kind::kVector, 0.0, v};
  }

  std::string to_string() const;
};

/// Aggregations receive only samples already filtered for freshness and
/// deduplicated per reporter; they never see an empty span (critical mass
/// is checked by the caller and is >= 1).
using AggregationFn =
    std::function<AggregateValue(std::span<const Sample>, bool is_position)>;

class AggregationRegistry {
 public:
  /// Constructs a registry pre-loaded with the built-ins: "avg", "sum",
  /// "min", "max", "count", "centroid" (signal-weighted center of
  /// gravity), "stddev", "median", "spread" (reporter-set diameter), and
  /// "nearest" (strongest reporter's position).
  static AggregationRegistry with_builtins();

  void add(std::string name, AggregationFn fn) {
    fns_[std::move(name)] = std::move(fn);
  }
  bool contains(std::string_view name) const {
    return fns_.find(name) != fns_.end();
  }
  const AggregationFn& get(std::string_view name) const;

 private:
  std::map<std::string, AggregationFn, std::less<>> fns_;
};

}  // namespace et::core
