#pragma once

#include <deque>
#include <optional>
#include <vector>

#include "core/aggregation.hpp"
#include "core/context_type.hpp"

/// Leader-side approximate aggregate state (§3.2.3).
///
/// The leader accumulates member reports in a sliding window per aggregate
/// variable. A read succeeds — returning a value with the paper's three
/// guarantees (group membership, freshness L_e, critical mass N_e) — only
/// when at least N_e distinct reporters contributed samples no older than
/// L_e; otherwise the read is null and the application handles the
/// unconfirmed siting.
namespace et::core {

class AggregateStateTable {
 public:
  /// `spec` must outlive the table. The registry resolves each variable's
  /// aggregation function once, up front.
  AggregateStateTable(const ContextTypeSpec& spec,
                      const AggregationRegistry& registry);

  /// Records one report: `scalars[i]` feeds variable i. Samples older than
  /// the variable's freshness horizon are pruned lazily on read.
  void add_report(NodeId reporter, Vec2 reporter_pos, Time measured_at,
                  const std::vector<double>& scalars);

  /// Reads variable `index` at time `now`. Null when the critical-mass /
  /// freshness QoS cannot be met ("valid flag" clear).
  std::optional<AggregateValue> read(std::size_t index, Time now) const;

  /// Reads a variable by name. Null also for unknown names.
  std::optional<AggregateValue> read(std::string_view name, Time now) const;

  /// True when a read of variable `index` would currently succeed.
  bool valid(std::size_t index, Time now) const;

  /// Number of fresh distinct reporters currently backing variable `index`.
  std::size_t fresh_reporter_count(std::size_t index, Time now) const;

  /// Total reports absorbed (drives the leader weight of §5.2).
  std::uint64_t reports_received() const { return reports_received_; }

  /// Drops all samples (used when leadership moves between nodes; the new
  /// leader builds its own window).
  void clear();

  std::size_t variable_count() const { return vars_.size(); }

 private:
  struct VarWindow {
    const AggregateVarSpec* spec;
    const AggregationFn* fn;
    bool is_position;
    std::deque<Sample> samples;  // ordered by measured_at
  };

  /// Fresh samples of an already-pruned window, newest per reporter.
  std::vector<Sample> fresh_samples(const VarWindow& w) const;
  void prune(VarWindow& w, Time now) const;

  mutable std::vector<VarWindow> vars_;
  std::uint64_t reports_received_ = 0;
};

}  // namespace et::core
