#include "core/transport.hpp"

#include "util/log.hpp"

namespace et::core {

namespace {
constexpr const char* kComponent = "mtp";
}

Transport::Transport(node::Mote& mote, net::GeoRouting& routing,
                     GroupManager& groups, ContextRuntime& runtime,
                     Directory* directory, TransportConfig config)
    : mote_(mote),
      routing_(routing),
      groups_(groups),
      runtime_(runtime),
      directory_(directory),
      config_(config),
      leaders_(config.leader_table_capacity) {
  routing_.on_delivery(radio::MsgType::kMtpData,
                       [this](const net::RouteEnvelope& envelope) {
                         handle_delivery(envelope);
                       });
  runtime_.set_transport(this);
}

void Transport::on_leader_observed(TypeIndex type, LabelId label,
                                   NodeId leader, Vec2 leader_pos) {
  (void)type;
  leaders_.put(label, LeaderInfo{leader, leader_pos, mote_.now()});
}

void Transport::on_leader_stop(TypeIndex type, LabelId label) {
  (void)type;
  const LeaderInfo* info = leaders_.peek(label);
  if (info && info->node == mote_.id()) leaders_.erase(label);
}

void Transport::invoke(TypeIndex dst_type, LabelId dst_label, PortId port,
                       std::vector<double> args, LabelId src_label) {
  stats_.invocations_sent++;
  auto payload = std::make_shared<MtpPayload>(
      src_label, mote_.id(), mote_.position(), dst_type, dst_label, port,
      std::move(args));
  resolve_and_send(std::move(payload));
}

void Transport::resolve_and_send(std::shared_ptr<MtpPayload> payload) {
  // Local shortcut: we may lead the destination label ourselves.
  if (groups_.role(payload->dst_type) == Role::kLeader &&
      groups_.current_label(payload->dst_type) == payload->dst_label) {
    stats_.delivered++;
    runtime_.dispatch_port(payload->dst_type, payload->dst_label,
                           payload->port, payload->args, mote_.id());
    return;
  }

  if (const LeaderInfo* info = leaders_.get(payload->dst_label)) {
    send_to(*info, std::move(payload));
    return;
  }

  if (directory_ && config_.directory_fallback) {
    // First contact: look the label up in the directory object of its
    // type, then send. Later messages use the (faster) leader table.
    stats_.directory_lookups++;
    directory_->query(
        payload->dst_type,
        [this, payload](bool ok, const std::vector<DirectoryEntry>& entries) {
          if (ok) {
            for (const DirectoryEntry& entry : entries) {
              if (entry.label != payload->dst_label) continue;
              // A directory record naming *us* as the leader is stale by
              // construction here (the local-leader shortcut already
              // missed); sending to ourselves would just loop the message
              // back into handle_delivery.
              if (entry.leader == mote_.id()) continue;
              const LeaderInfo info{entry.leader, entry.location,
                                    mote_.now()};
              leaders_.put(payload->dst_label, info);
              send_to(info, payload);
              return;
            }
          }
          stats_.dropped_unknown++;
          ET_DEBUG(kComponent, "node %llu: label %llu unresolvable",
                   static_cast<unsigned long long>(mote_.id().value()),
                   static_cast<unsigned long long>(
                       payload->dst_label.value()));
        });
    return;
  }

  stats_.dropped_unknown++;
}

void Transport::send_to(const LeaderInfo& info,
                        std::shared_ptr<MtpPayload> payload) {
  routing_.send(info.pos, radio::MsgType::kMtpData, std::move(payload),
                info.node);
}

void Transport::handle_delivery(const net::RouteEnvelope& envelope) {
  const auto* incoming =
      static_cast<const MtpPayload*>(envelope.inner.get());

  // Header piggybacking: learn where the source context's leader is, so
  // replies skip the directory.
  if (incoming->src_label.is_valid()) {
    leaders_.put(incoming->src_label,
                 LeaderInfo{incoming->src_leader, incoming->src_leader_pos,
                            mote_.now()});
  }

  if (groups_.role(incoming->dst_type) == Role::kLeader &&
      groups_.current_label(incoming->dst_type) == incoming->dst_label) {
    stats_.delivered++;
    runtime_.dispatch_port(incoming->dst_type, incoming->dst_label,
                           incoming->port, incoming->args,
                           incoming->src_leader);
    return;
  }

  // Not (or no longer) the leader: act as a forwarding router along the
  // chain of past leaders.
  if (incoming->forwards >= config_.max_forwards) {
    stats_.dropped_forward_limit++;
    return;
  }
  if (const LeaderInfo* info = leaders_.get(incoming->dst_label)) {
    if (info->node != mote_.id()) {
      auto copy = std::make_shared<MtpPayload>(*incoming);
      copy->forwards = static_cast<std::uint8_t>(incoming->forwards + 1);
      stats_.forwarded++;
      send_to(*info, std::move(copy));
      return;
    }
    // Stale self-entry: the table says we lead this label but the group
    // moved on (yield/relinquish/takeover raced the on_leader_stop hook, or
    // the entry was learned from old traffic). Drop the poisoned record and
    // re-resolve — the directory or a fresher table entry finds the current
    // leader instead of the message dying here.
    leaders_.erase(incoming->dst_label);
    auto copy = std::make_shared<MtpPayload>(*incoming);
    copy->forwards = static_cast<std::uint8_t>(incoming->forwards + 1);
    resolve_and_send(std::move(copy));
    return;
  }
  stats_.dropped_unknown++;
}

}  // namespace et::core
