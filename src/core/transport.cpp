#include "core/transport.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace et::core {

namespace {
constexpr const char* kComponent = "mtp";
}

const char* transport_event_kind_name(TransportEvent::Kind kind) {
  switch (kind) {
    case TransportEvent::Kind::kSend:
      return "send";
    case TransportEvent::Kind::kRetransmit:
      return "retransmit";
    case TransportEvent::Kind::kAcked:
      return "acked";
    case TransportEvent::Kind::kDelivered:
      return "delivered";
    case TransportEvent::Kind::kDuplicate:
      return "duplicate";
    case TransportEvent::Kind::kFailed:
      return "failed";
    case TransportEvent::Kind::kResolveFailed:
      return "resolve-failed";
  }
  return "?";
}

Transport::Transport(node::Mote& mote, net::GeoRouting& routing,
                     GroupManager& groups, ContextRuntime& runtime,
                     Directory* directory, TransportConfig config)
    : mote_(mote),
      routing_(routing),
      groups_(groups),
      runtime_(runtime),
      directory_(directory),
      config_(config),
      leaders_(config.leader_table_capacity),
      next_seq_(config.leader_table_capacity),
      delivered_seen_(std::max<std::size_t>(config.dedup_capacity, 1)),
      resolve_failed_until_(
          std::max<std::size_t>(config.negative_cache_capacity, 1)) {
  routing_.on_delivery(radio::MsgType::kMtpData,
                       [this](const net::RouteEnvelope& envelope) {
                         handle_delivery(envelope);
                       });
  routing_.on_delivery(radio::MsgType::kMtpAck,
                       [this](const net::RouteEnvelope& envelope) {
                         handle_ack(envelope);
                       });
  runtime_.set_transport(this);
}

void Transport::emit(TransportEvent::Kind kind, LabelId dst_label,
                     NodeId origin, std::uint32_t seq, int attempt) {
  if (listeners_.empty()) return;
  TransportEvent event{kind,   mote_.now(), mote_.id(), dst_label,
                       origin, seq,         attempt};
  for (const Listener& fn : listeners_) fn(event);
}

void Transport::on_leader_observed(TypeIndex type, LabelId label,
                                   NodeId leader, Vec2 leader_pos) {
  (void)type;
  leaders_.put(label, LeaderInfo{leader, leader_pos, mote_.now()});
}

void Transport::on_leader_stop(TypeIndex type, LabelId label) {
  (void)type;
  const LeaderInfo* info = leaders_.peek(label);
  if (info && info->node == mote_.id()) leaders_.erase(label);
}

void Transport::reboot() {
  leaders_.clear();
  next_seq_.clear();
  for (auto& [key, transfer] : pending_) transfer.retry_timer.cancel();
  pending_.clear();
  delivered_seen_.clear();
  resolve_failed_until_.clear();
  // The directory reboot drops in-flight query callbacks without invoking
  // them; matching state here must go too or the label would be stuck
  // "resolving" forever.
  resolving_.clear();
}

void Transport::invoke(TypeIndex dst_type, LabelId dst_label, PortId port,
                       std::vector<double> args, LabelId src_label) {
  stats_.invocations_sent++;
  auto payload = std::make_shared<MtpPayload>(
      src_label, mote_.id(), mote_.position(), dst_type, dst_label, port,
      std::move(args));
  if (config_.reliable) {
    payload->want_ack = true;
    std::uint32_t* seq = next_seq_.get(dst_label);
    if (seq == nullptr) {
      next_seq_.put(dst_label, 1);
      seq = next_seq_.get(dst_label);
    }
    payload->seq = (*seq)++;
    const std::uint64_t key = transfer_key(dst_label, payload->seq);
    PendingTransfer transfer;
    transfer.payload = payload;
    pending_.emplace(key, std::move(transfer));
    emit(TransportEvent::Kind::kSend, dst_label, mote_.id(), payload->seq, 0);
    // Armed before the send: a synchronous local delivery or resolution
    // failure settles/fails the transfer and cancels this timer.
    arm_retry(key);
  }
  resolve_and_send(std::move(payload));
}

void Transport::arm_retry(std::uint64_t key) {
  auto it = pending_.find(key);
  if (it == pending_.end()) return;
  PendingTransfer& transfer = it->second;
  // Exponential backoff with uniform jitter. Driven by the simulation
  // clock and this mote's RNG stream — never the wall clock — so chaos
  // runs stay bit-reproducible (serial == parallel sweep output).
  const double backoff =
      static_cast<double>(1u << std::min(transfer.attempts, 16));
  const double jitter =
      1.0 + config_.retry_jitter * mote_.rng().next_double();
  transfer.retry_timer =
      mote_.after(config_.retry_timeout * (backoff * jitter),
                  [this, key] { on_retry_timeout(key); });
}

void Transport::on_retry_timeout(std::uint64_t key) {
  auto it = pending_.find(key);
  if (it == pending_.end()) return;
  PendingTransfer& transfer = it->second;
  if (transfer.attempts >= config_.max_retries) {
    fail_transfer(key);
    return;
  }
  transfer.attempts++;
  stats_.retransmits++;
  emit(TransportEvent::Kind::kRetransmit, transfer.payload->dst_label,
       mote_.id(), transfer.payload->seq, transfer.attempts);
  arm_retry(key);
  // Re-resolve on every attempt: the leader table may have been repaired
  // by snooping since the last send, which is exactly what routes the
  // retransmit around a migrated leader.
  resolve_and_send(std::make_shared<MtpPayload>(*transfer.payload));
}

bool Transport::settle(std::uint64_t key) {
  auto it = pending_.find(key);
  if (it == pending_.end()) return false;
  it->second.retry_timer.cancel();
  pending_.erase(it);
  return true;
}

void Transport::fail_transfer(std::uint64_t key) {
  auto it = pending_.find(key);
  if (it == pending_.end()) return;
  PendingTransfer transfer = std::move(it->second);
  pending_.erase(it);
  transfer.retry_timer.cancel();
  stats_.delivery_failures++;
  emit(TransportEvent::Kind::kFailed, transfer.payload->dst_label,
       mote_.id(), transfer.payload->seq, transfer.attempts);
  ET_DEBUG(kComponent, "node %llu: transfer to label %llu failed after %d "
           "retries",
           static_cast<unsigned long long>(mote_.id().value()),
           static_cast<unsigned long long>(
               transfer.payload->dst_label.value()),
           transfer.attempts);
  if (delivery_failed_) {
    delivery_failed_(transfer.payload->dst_type, transfer.payload->dst_label,
                     transfer.payload->port, transfer.payload->args);
  }
}

void Transport::abort_unresolvable(const MtpPayload& payload) {
  if (!payload.want_ack || payload.src_leader != mote_.id()) return;
  fail_transfer(transfer_key(payload.dst_label, payload.seq));
}

void Transport::note_resolve_failure(LabelId label) {
  resolve_failed_until_.put(label, mote_.now() + config_.negative_cache_ttl);
}

void Transport::resolve_and_send(std::shared_ptr<MtpPayload> payload) {
  // Local shortcut: we may lead the destination label ourselves.
  if (groups_.role(payload->dst_type) == Role::kLeader &&
      groups_.current_label(payload->dst_type) == payload->dst_label) {
    deliver_local(*payload);
    return;
  }

  if (const LeaderInfo* info = leaders_.get(payload->dst_label)) {
    send_to(*info, std::move(payload));
    return;
  }

  // Negative cache: a label that just proved unresolvable fails fast
  // instead of re-querying the directory on every send.
  if (const Time* until = resolve_failed_until_.peek(payload->dst_label)) {
    if (mote_.now() < *until) {
      stats_.resolve_failed++;
      emit(TransportEvent::Kind::kResolveFailed, payload->dst_label,
           payload->src_leader, payload->seq, 0);
      abort_unresolvable(*payload);
      return;
    }
    resolve_failed_until_.erase(payload->dst_label);
  }

  if (directory_ && config_.directory_fallback) {
    // First contact: look the label up in the directory object of its
    // type, then send. Later messages use the (faster) leader table.
    // One query per label at a time — retransmits and concurrent sends
    // queue behind the in-flight lookup instead of re-querying.
    const LabelId label = payload->dst_label;
    const TypeIndex dst_type = payload->dst_type;
    auto [it, first] = resolving_.try_emplace(label.value());
    it->second.push_back(std::move(payload));
    if (!first) return;
    stats_.directory_lookups++;
    directory_->query(
        dst_type,
        [this, label](bool ok, const std::vector<DirectoryEntry>& entries) {
          auto rit = resolving_.find(label.value());
          if (rit == resolving_.end()) return;  // reboot raced the reply
          std::vector<std::shared_ptr<MtpPayload>> waiting =
              std::move(rit->second);
          resolving_.erase(rit);
          if (ok) {
            for (const DirectoryEntry& entry : entries) {
              if (entry.label != label) continue;
              // A directory record naming *us* as the leader is stale by
              // construction here (the local-leader shortcut already
              // missed); sending to ourselves would just loop the message
              // back into handle_delivery.
              if (entry.leader == mote_.id()) continue;
              const LeaderInfo info{entry.leader, entry.location,
                                    mote_.now()};
              leaders_.put(label, info);
              for (auto& p : waiting) send_to(info, std::move(p));
              return;
            }
          }
          stats_.dropped_unknown++;
          note_resolve_failure(label);
          for (const auto& p : waiting) {
            emit(TransportEvent::Kind::kResolveFailed, p->dst_label,
                 p->src_leader, p->seq, 0);
            abort_unresolvable(*p);
          }
          ET_DEBUG(kComponent, "node %llu: label %llu unresolvable",
                   static_cast<unsigned long long>(mote_.id().value()),
                   static_cast<unsigned long long>(label.value()));
        });
    return;
  }

  stats_.dropped_unknown++;
  abort_unresolvable(*payload);
}

void Transport::send_to(const LeaderInfo& info,
                        std::shared_ptr<MtpPayload> payload) {
  routing_.send(info.pos, radio::MsgType::kMtpData, std::move(payload),
                info.node);
}

void Transport::send_ack(const MtpPayload& payload) {
  stats_.acks_sent++;
  routing_.send(payload.src_leader_pos, radio::MsgType::kMtpAck,
                std::make_shared<MtpAckPayload>(payload.src_leader,
                                                payload.dst_label,
                                                payload.seq),
                payload.src_leader);
}

void Transport::deliver_local(const MtpPayload& payload) {
  if (payload.want_ack) {
    const bool self_origin = payload.src_leader == mote_.id();
    const std::uint64_t dkey =
        dedup_key(payload.src_leader, payload.dst_label, payload.seq);
    const bool duplicate = delivered_seen_.contains(dkey);
    delivered_seen_.put(dkey, true);
    if (self_origin) {
      // The origin leads the destination itself: settle without a radio
      // ack.
      settle(transfer_key(payload.dst_label, payload.seq));
    } else {
      // Ack duplicates too — the retransmit means our previous ack was
      // lost.
      send_ack(payload);
    }
    if (duplicate) {
      stats_.duplicates_suppressed++;
      emit(TransportEvent::Kind::kDuplicate, payload.dst_label,
           payload.src_leader, payload.seq, 0);
      return;
    }
  }
  stats_.delivered++;
  emit(TransportEvent::Kind::kDelivered, payload.dst_label,
       payload.src_leader, payload.seq, 0);
  runtime_.dispatch_port(payload.dst_type, payload.dst_label, payload.port,
                         payload.args,
                         payload.src_leader.is_valid() ? payload.src_leader
                                                       : mote_.id());
}

void Transport::handle_ack(const net::RouteEnvelope& envelope) {
  const auto* ack = static_cast<const MtpAckPayload*>(envelope.inner.get());
  if (ack->origin != mote_.id()) return;  // routed near, not for us
  if (settle(transfer_key(ack->dst_label, ack->seq))) {
    stats_.acks_received++;
    emit(TransportEvent::Kind::kAcked, ack->dst_label, mote_.id(), ack->seq,
         0);
  }
}

void Transport::handle_delivery(const net::RouteEnvelope& envelope) {
  const auto* incoming =
      static_cast<const MtpPayload*>(envelope.inner.get());

  // Header piggybacking: learn where the source context's leader is, so
  // replies skip the directory.
  if (incoming->src_label.is_valid()) {
    leaders_.put(incoming->src_label,
                 LeaderInfo{incoming->src_leader, incoming->src_leader_pos,
                            mote_.now()});
  }

  if (groups_.role(incoming->dst_type) == Role::kLeader &&
      groups_.current_label(incoming->dst_type) == incoming->dst_label) {
    deliver_local(*incoming);
    return;
  }

  // Not (or no longer) the leader: act as a forwarding router along the
  // chain of past leaders.
  if (incoming->forwards >= config_.max_forwards) {
    stats_.dropped_forward_limit++;
    return;
  }
  if (const LeaderInfo* info = leaders_.get(incoming->dst_label)) {
    if (info->node != mote_.id()) {
      auto copy = std::make_shared<MtpPayload>(*incoming);
      copy->forwards = static_cast<std::uint8_t>(incoming->forwards + 1);
      stats_.forwarded++;
      send_to(*info, std::move(copy));
      return;
    }
    // Stale self-entry: the table says we lead this label but the group
    // moved on (yield/relinquish/takeover raced the on_leader_stop hook, or
    // the entry was learned from old traffic). Drop the poisoned record and
    // re-resolve — the directory or a fresher table entry finds the current
    // leader instead of the message dying here.
    leaders_.erase(incoming->dst_label);
    auto copy = std::make_shared<MtpPayload>(*incoming);
    copy->forwards = static_cast<std::uint8_t>(incoming->forwards + 1);
    resolve_and_send(std::move(copy));
    return;
  }
  stats_.dropped_unknown++;
}

}  // namespace et::core
