#pragma once

#include <memory>
#include <vector>

#include "core/middleware.hpp"
#include "env/environment.hpp"
#include "env/field.hpp"
#include "node/network.hpp"
#include "radio/medium.hpp"
#include "sim/simulator.hpp"

/// Deployment-level facade: "the sensor network, with EnviroTrack on it".
///
/// This is the library's top-level entry point. A user constructs the
/// simulator, the environment, and a field layout; registers sense
/// predicates and (optionally) custom aggregations; declares context types
/// (directly or via the EnviroTrack language, src/etl); and starts the
/// system. The facade owns the medium, the mote population, and one
/// middleware stack per mote.
namespace et::core {

struct SystemConfig {
  radio::RadioConfig radio;
  node::CpuConfig cpu;
  MiddlewareConfig middleware;
};

class EnviroTrackSystem {
 public:
  EnviroTrackSystem(sim::Simulator& sim, env::Environment& env,
                    const env::Field& field, SystemConfig config = {});

  EnviroTrackSystem(const EnviroTrackSystem&) = delete;
  EnviroTrackSystem& operator=(const EnviroTrackSystem&) = delete;

  /// Registries to populate before start(). The aggregation registry comes
  /// pre-loaded with the built-ins.
  SenseRegistry& senses() { return senses_; }
  AggregationRegistry& aggregations() { return aggregations_; }

  /// Declares a context type. All declarations must precede start().
  /// Returns the type's index.
  TypeIndex add_context_type(ContextTypeSpec spec);

  /// Installs middleware on every mote and begins operation.
  void start();
  bool started() const { return started_; }

  // --- Access ---
  sim::Simulator& sim() { return sim_; }
  radio::Medium& medium() { return medium_; }
  node::MoteNetwork& network() { return network_; }
  env::Environment& environment() { return env_; }
  const env::Field& field() const { return field_; }
  const std::vector<ContextTypeSpec>& specs() const { return specs_; }
  const SystemConfig& config() const { return config_; }

  MiddlewareStack& stack(NodeId id) { return *stacks_[id.value()]; }
  std::size_t node_count() const { return network_.size(); }

  /// Subscribes `observer` to group events on every mote (metrics layer).
  /// Must be called after start().
  void add_group_observer(GroupObserver* observer);

  /// Failure injection: crash-stops one node.
  void crash_node(NodeId id) { stacks_[id.value()]->crash(); }

  /// Brings a crashed node back up with factory-fresh middleware state.
  void reboot_node(NodeId id) { stacks_[id.value()]->reboot(); }

 private:
  sim::Simulator& sim_;
  env::Environment& env_;
  const env::Field& field_;
  SystemConfig config_;
  radio::Medium medium_;
  node::MoteNetwork network_;
  SenseRegistry senses_;
  AggregationRegistry aggregations_;
  std::vector<ContextTypeSpec> specs_;
  std::vector<std::unique_ptr<MiddlewareStack>> stacks_;
  bool started_ = false;
};

}  // namespace et::core
