#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/middleware.hpp"
#include "env/environment.hpp"
#include "env/field.hpp"
#include "node/network.hpp"
#include "radio/medium.hpp"
#include "sim/kernel_config.hpp"
#include "sim/parallel.hpp"
#include "sim/simulator.hpp"

/// Deployment-level facade: "the sensor network, with EnviroTrack on it".
///
/// This is the library's top-level entry point. A user constructs the
/// simulator, the environment, and a field layout; registers sense
/// predicates and (optionally) custom aggregations; declares context types
/// (directly or via the EnviroTrack language, src/etl); and starts the
/// system. The facade owns the medium, the mote population, one middleware
/// stack per mote, and — when `SystemConfig::kernel` asks for it — the
/// parallel tiled kernel that drives them all. Callers should advance time
/// through `run_until`/`run_for` on the system rather than on the raw
/// simulator, so the same scenario code runs on every kernel.
namespace et::core {

struct SystemConfig {
  radio::RadioConfig radio;
  node::CpuConfig cpu;
  MiddlewareConfig middleware;
  sim::KernelConfig kernel;
};

class EnviroTrackSystem {
 public:
  EnviroTrackSystem(sim::Simulator& sim, env::Environment& env,
                    const env::Field& field, SystemConfig config = {});

  EnviroTrackSystem(const EnviroTrackSystem&) = delete;
  EnviroTrackSystem& operator=(const EnviroTrackSystem&) = delete;

  /// Registries to populate before start(). The aggregation registry comes
  /// pre-loaded with the built-ins.
  SenseRegistry& senses() { return senses_; }
  AggregationRegistry& aggregations() { return aggregations_; }

  /// Declares a context type. All declarations must precede start().
  /// Returns the type's index.
  TypeIndex add_context_type(ContextTypeSpec spec);

  /// Installs middleware on every mote and begins operation.
  void start();
  bool started() const { return started_; }

  /// Advances the world to `deadline` on whichever kernel this system was
  /// configured with. Returns events fired.
  std::size_t run_until(Time deadline);
  std::size_t run_for(Duration span) { return run_until(sim_.now() + span); }

  // --- Access ---
  sim::Simulator& sim() { return sim_; }
  radio::Medium& medium() { return medium_; }
  node::MoteNetwork& network() { return network_; }
  env::Environment& environment() { return env_; }
  const env::Field& field() const { return field_; }
  const std::vector<ContextTypeSpec>& specs() const { return specs_; }
  const SystemConfig& config() const { return config_; }
  /// Non-null when running on the parallel kernel.
  sim::ParallelKernel* kernel() { return kernel_.get(); }

  MiddlewareStack& stack(NodeId id) { return *stacks_[id.value()]; }
  std::size_t node_count() const { return network_.size(); }

  /// Subscribes `observer` to group events on every mote (metrics layer).
  /// Must be called after start(). In canonical order the events are
  /// journaled through the master simulator as channel ops, so observers
  /// run single-threaded and in canonical event order even when the
  /// emitting motes execute on tile threads.
  void add_group_observer(GroupObserver* observer);

  /// Subscribes to transport events on every mote that runs a transport,
  /// journaled exactly like group events. `fn` receives the reporting node.
  using TransportListener = std::function<void(NodeId, const TransportEvent&)>;
  void add_transport_listener(TransportListener fn);

  /// Failure injection: crash-stops one node.
  void crash_node(NodeId id);

  /// Brings a crashed node back up with factory-fresh middleware state.
  void reboot_node(NodeId id);

 private:
  sim::Simulator& sim_;
  env::Environment& env_;
  const env::Field& field_;
  SystemConfig config_;
  /// Constructed before the network so mote construction can ask it for
  /// tile assignment; null on the serial kernels.
  std::unique_ptr<sim::ParallelKernel> kernel_;
  radio::Medium medium_;
  node::MoteNetwork network_;
  SenseRegistry senses_;
  AggregationRegistry aggregations_;
  std::vector<ContextTypeSpec> specs_;
  std::vector<std::unique_ptr<MiddlewareStack>> stacks_;
  /// Journaling proxies handed to the group managers (canonical order).
  std::vector<std::unique_ptr<GroupObserver>> journaled_observers_;
  /// Shared listener fan-in targets (kept alive for the stacks' lambdas).
  std::vector<std::shared_ptr<TransportListener>> transport_listeners_;
  bool canonical_ = false;
  bool started_ = false;
};

}  // namespace et::core
