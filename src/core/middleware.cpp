#include "core/middleware.hpp"

namespace et::core {

MiddlewareStack::MiddlewareStack(node::Mote& mote,
                                 const std::vector<ContextTypeSpec>& specs,
                                 const SenseRegistry& senses,
                                 const AggregationRegistry& aggregations,
                                 Rect field_bounds,
                                 const MiddlewareConfig& config)
    : mote_(mote),
      config_(config),
      routing_(mote, config.routing),
      groups_(mote, specs, senses, aggregations, config.group),
      runtime_(mote, specs, groups_) {
  runtime_.set_routing(&routing_);

  if (config.enable_directory) {
    directory_ = std::make_unique<Directory>(mote, routing_, specs,
                                             field_bounds, config.directory);
  }
  if (config.enable_transport) {
    transport_ = std::make_unique<Transport>(
        mote, routing_, groups_, runtime_, directory_.get(),
        config.transport);
  }
  if (config.enable_duty_cycle) {
    duty_cycle_ = std::make_unique<DutyCycleController>(mote, groups_,
                                                        config.duty_cycle);
  }

  groups_.set_leader_start(
      [this](TypeIndex type, LabelId label, const PersistentState& state) {
        runtime_.on_leader_start(type, label, state);
        // become_leader records the epoch before firing this callback, so
        // current_epoch() is already the epoch this node leads under.
        if (directory_) {
          directory_->on_leader_start(type, label, groups_.current_epoch(type));
        }
      });
  groups_.set_leader_stop([this](TypeIndex type, LabelId label) {
    runtime_.on_leader_stop(type, label);
    if (directory_) directory_->on_leader_stop(type, label);
    if (transport_) transport_->on_leader_stop(type, label);
  });
  if (directory_) {
    groups_.set_epoch_changed([this](TypeIndex type, std::uint64_t epoch) {
      directory_->on_epoch_change(type, epoch);
    });
    groups_.set_label_retired(
        [this](TypeIndex type, LabelId label, std::uint64_t epoch) {
          directory_->retire_label(type, label, epoch);
        });
    directory_->set_leader_fenced(
        [this](TypeIndex type, LabelId label, std::uint64_t epoch,
               NodeId incumbent, Vec2 incumbent_pos) {
          groups_.on_directory_fence(type, label, epoch, incumbent,
                                     incumbent_pos);
        });
  }
  if (transport_) {
    groups_.set_leader_observed(
        [this](TypeIndex type, LabelId label, NodeId leader, Vec2 pos) {
          transport_->on_leader_observed(type, label, leader, pos);
        });
  }
}

void MiddlewareStack::crash() {
  if (mote_.is_down()) return;
  groups_.crash();
  duty_cycle_.reset();  // stop toggling the (now dead) radio
  mote_.set_down(true);
  // A crashed node draws no receive power and hears nothing; reboot() is
  // the only path that turns the receiver back on. (The controller's
  // destructor above re-enabled it, so order matters.)
  mote_.medium().set_receiver_enabled(mote_.id(), false);
}

void MiddlewareStack::reboot() {
  if (!mote_.is_down()) return;
  mote_.reboot();
  mote_.medium().set_receiver_enabled(mote_.id(), true);
  routing_.reboot();
  if (directory_) directory_->reboot();
  if (transport_) transport_->reboot();
  groups_.reboot();
  if (config_.enable_duty_cycle) {
    duty_cycle_ = std::make_unique<DutyCycleController>(mote_, groups_,
                                                        config_.duty_cycle);
  }
}

void MiddlewareStack::ensure_user_consumer() {
  if (user_consumer_registered_) return;
  user_consumer_registered_ = true;
  routing_.on_delivery(
      radio::MsgType::kUser, [this](const net::RouteEnvelope& envelope) {
        const auto* payload =
            static_cast<const UserMessagePayload*>(envelope.inner.get());
        for (auto& handler : user_handlers_) {
          handler(*payload, envelope.origin);
        }
        for (auto& object : static_objects_) {
          object->deliver(*payload, envelope.origin);
        }
      });
}

void MiddlewareStack::on_user_message(UserHandler handler) {
  ensure_user_consumer();
  user_handlers_.push_back(std::move(handler));
}

StaticObject& MiddlewareStack::add_static_object(StaticObjectSpec spec) {
  ensure_user_consumer();
  static_objects_.push_back(
      std::make_unique<StaticObject>(mote_, &routing_, std::move(spec)));
  return *static_objects_.back();
}

}  // namespace et::core
