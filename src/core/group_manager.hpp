#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/aggregate_state.hpp"
#include "core/context_type.hpp"
#include "core/events.hpp"
#include "core/messages.hpp"
#include "core/sense_registry.hpp"
#include "node/mote.hpp"
#include "util/lru_map.hpp"

/// Group management services (§5.2): maintains context-label coherence.
///
/// Design constraints from the paper: "group management services must be
/// very lightweight and dynamic... no single entity has to know the current
/// group membership and no consistent distributed state is assumed." The
/// protocol keeps a single majority leader per tracked entity through:
///  - periodic leader heartbeats flooding the group (and `h` hops past its
///    perimeter) carrying the leader's weight and committed object state,
///  - a member *receive timer* (2.1 x heartbeat period) triggering
///    leadership takeover on leader failure,
///  - a non-member *wait timer* (4.2 x heartbeat period) suppressing
///    spurious labels near a known group,
///  - leader weights (count of member reports absorbed) that let heavier
///    labels suppress spurious lighter ones,
///  - an explicit relinquish handoff when a leader stops sensing.
namespace et::core {

enum class Role : std::uint8_t { kIdle, kMember, kLeader };

const char* role_name(Role role);

struct GroupConfig {
  /// Leader heartbeat period; the central knob of Fig. 5.
  Duration heartbeat_period = Duration::seconds(0.5);
  /// Receive timer = factor x heartbeat period ("more than twice longer
  /// ... to allow for message loss"; best results at 2.1 per §6.2).
  double receive_timer_factor = 2.1;
  /// Wait timer = factor x heartbeat period ("must be longer than the
  /// receive timer"; best results at 4.2 per §6.2).
  double wait_timer_factor = 4.2;
  /// Hops past the group perimeter that heartbeats travel (h): non-members
  /// rebroadcast heartbeats while budget remains. "If the communication
  /// radius is large enough, h may be zero, since neighboring non-member
  /// nodes would hear the leader's broadcast anyway" — the default here,
  /// since CR (6) far exceeds the sensing radii under study.
  std::uint8_t perimeter_hops = 0;
  /// A node that starts sensing with no memory of a nearby group defers
  /// label creation by a uniform random delay in (0, this]; hearing any
  /// heartbeat meanwhile converts it into a joiner. Approximates the
  /// paper's creation rule ("no neighbors detecting the same condition")
  /// without consistent membership knowledge.
  Duration creation_delay_max = Duration::millis(200);
  /// Transmit-power limit for heartbeat frames, in grid units. Models the
  /// Fig. 4 settings ("heartbeats only within [sensing] radius" vs
  /// "propagate past sensing radius"). Unset = full radio range.
  std::optional<double> heartbeat_range;
  /// How often each mote evaluates its sense_e() predicates.
  Duration sense_poll_period = Duration::millis(250);
  /// When true a leader that stops sensing hands leadership off explicitly
  /// (the "relinquish" optimisation of §6.2); when false it goes silent and
  /// the group recovers via receive-timer takeover — the paper's worst-case
  /// leader-failure mode.
  bool relinquish_enabled = true;
  /// Estimated max in-group message delay d; member report period is
  /// P_e = L_e - d (§3.2.3).
  Duration max_message_delay = Duration::millis(300);
  /// Floor for the report period, so tiny freshness values cannot melt the
  /// channel.
  Duration min_report_period = Duration::millis(100);
  /// When true, members re-flood heartbeats once per sequence number so
  /// groups wider than one radio hop stay connected.
  bool member_relay_heartbeats = false;
  /// In-group relay hops for member reports whose leader is out of direct
  /// radio range (0 disables the multi-hop data-collection path).
  std::uint8_t report_relay_hops = 3;
  /// Disable leader-weight based suppression of spurious labels (ablation).
  bool weight_suppression_enabled = true;
  /// Leadership-epoch fencing: every takeover/succession bumps a per-label
  /// epoch carried in heartbeats and reports. Members ignore heartbeats
  /// from stale (lower-epoch) incarnations; a leader never yields to one
  /// and absorbs a newer rival's epoch when it wins a duel; a leader that
  /// receives member reports carrying a higher epoch steps down (the only
  /// way to fence a stale leader that is out of heartbeat range of its
  /// successor). Without all this, a partitioned ex-leader and the
  /// successor elected on the other side can both report under one label
  /// after the partition heals (the id tiebreak only resolves pairs that
  /// hear each other's heartbeats). Disable only to demonstrate that
  /// failure mode (the invariant-oracle regression tests do).
  bool epoch_fencing_enabled = true;
  /// A lighter label yields to a heavier same-type label only when their
  /// tracked-entity position estimates are within this distance — i.e.
  /// they plausibly track the same stimulus. Physically separated entities
  /// keep distinct labels (§3.2.1). Scale with the sensing radius
  /// (~2 x SR).
  double suppression_radius = 2.0;
  /// Non-members remember a nearby label (wait timer) only when its
  /// estimate is within this distance of them — the label could be for an
  /// entity they are about to sense. Scale with the sensing radius
  /// (~2 x SR + 1).
  double wait_radius = 3.0;
};

struct GroupStats {
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t heartbeats_relayed = 0;
  std::uint64_t reports_sent = 0;
  std::uint64_t reports_received = 0;
  std::uint64_t labels_created = 0;
  std::uint64_t takeovers = 0;
  std::uint64_t relinquishes = 0;
  std::uint64_t yields = 0;
  std::uint64_t suppressions = 0;
  std::uint64_t joins = 0;
  /// Leaders that stepped down on higher-epoch evidence (stale incarnation
  /// fenced after a partition heal).
  std::uint64_t fenced = 0;
  /// Heartbeats from a stale (lower-epoch) leader incarnation that a member
  /// refused to follow, or that a same-label leader refused to yield to.
  std::uint64_t stale_heartbeats_ignored = 0;
  /// Same-label duels won against a newer incarnation (the rival's higher
  /// epoch was adopted so downstream fencing keeps accepting this leader).
  std::uint64_t epochs_absorbed = 0;
};

/// Per-mote group-management service. Owns the kHeartbeat, kReport, and
/// kRelinquish message types on its mote.
class GroupManager {
 public:
  /// Invoked when this node starts leading a label (with the inherited
  /// persistent state) and when it stops — the context runtime attaches /
  /// detaches tracking objects on these edges.
  using LeaderStartFn =
      std::function<void(TypeIndex, LabelId, const PersistentState&)>;
  using LeaderStopFn = std::function<void(TypeIndex, LabelId)>;
  /// Invoked whenever a heartbeat reveals the current leader of a label;
  /// the transport layer uses this to maintain forwarding pointers.
  using LeaderObservedFn =
      std::function<void(TypeIndex, LabelId, NodeId leader, Vec2 leader_pos)>;
  /// Invoked when a sitting leader's epoch changes without a leadership
  /// edge (it absorbed a higher rival epoch in a same-label duel); the
  /// directory re-stamps its refresh entries from this.
  using EpochChangedFn = std::function<void(TypeIndex, std::uint64_t epoch)>;
  /// Invoked when this node's label dies permanently (suppressed into a
  /// heavier label); the directory withdraws the entry.
  using LabelRetiredFn =
      std::function<void(TypeIndex, LabelId, std::uint64_t epoch)>;

  /// `specs`, `senses`, and `aggregations` are deployment-wide and must
  /// outlive the manager.
  GroupManager(node::Mote& mote, const std::vector<ContextTypeSpec>& specs,
               const SenseRegistry& senses,
               const AggregationRegistry& aggregations, GroupConfig config);

  GroupManager(const GroupManager&) = delete;
  GroupManager& operator=(const GroupManager&) = delete;

  /// Begins sense polling. Call once after all callbacks are wired.
  void start();

  /// Crash-stops the service: cancels all timers and goes silent without
  /// notifying anybody. Models node failure for fault-injection tests.
  void crash();

  /// Restarts a crashed service: wipes all volatile protocol state (roles,
  /// labels, wait memory, dedup caches) and resumes sense polling with a
  /// fresh random phase. The rebooted node rejoins groups like a factory-new
  /// mote — any state handoff must come from peers' heartbeats.
  void reboot();

  bool alive() const { return alive_; }

  void add_observer(GroupObserver* observer) {
    observers_.push_back(observer);
  }
  void set_leader_start(LeaderStartFn fn) { leader_start_ = std::move(fn); }
  void set_leader_stop(LeaderStopFn fn) { leader_stop_ = std::move(fn); }
  void set_leader_observed(LeaderObservedFn fn) {
    leader_observed_ = std::move(fn);
  }
  void set_epoch_changed(EpochChangedFn fn) {
    epoch_changed_ = std::move(fn);
  }
  void set_label_retired(LabelRetiredFn fn) {
    label_retired_ = std::move(fn);
  }

  /// Directory fence notice (see Directory::set_leader_fenced): the
  /// directory rendezvous holds a registration for `label` at `epoch`,
  /// above the epoch this node leads it under. Steps down iff this node
  /// still leads that label at a lower epoch and fencing is enabled —
  /// the long-range complement to the member-report fence, for stale
  /// leaders whose successor is beyond every heartbeat path.
  void on_directory_fence(TypeIndex type, LabelId label,
                          std::uint64_t epoch, NodeId incumbent,
                          Vec2 incumbent_pos);

  // --- Introspection ---
  Role role(TypeIndex type) const { return state_[type].role; }
  /// Label this node is involved with (member or leader); invalid if idle.
  LabelId current_label(TypeIndex type) const { return state_[type].label; }
  /// Leader this node believes the label has (self when leading).
  NodeId known_leader(TypeIndex type) const;
  std::uint64_t leader_weight(TypeIndex type) const {
    return state_[type].weight;
  }
  /// Leadership epoch this node currently operates under: its own epoch
  /// when leading, the last one seen from its leader when a member, 0 when
  /// idle. Stamped onto directory updates and outbound user messages so
  /// downstream consumers can fence stale incarnations.
  std::uint64_t current_epoch(TypeIndex type) const {
    const TypeState& ts = state_[type];
    switch (ts.role) {
      case Role::kLeader:
        return ts.epoch;
      case Role::kMember:
        return ts.leader_epoch_seen;
      case Role::kIdle:
        return 0;
    }
    return 0;
  }
  /// Leader-side aggregate state; nullptr unless this node leads `type`.
  AggregateStateTable* aggregates(TypeIndex type);
  /// Leader-side persistent object state (rides in heartbeats).
  PersistentState& persistent_state(TypeIndex type) {
    return state_[type].state;
  }
  /// This leader's best estimate of where its tracked entity is: the first
  /// valid position aggregate, else the leader's own location. Carried in
  /// heartbeats for estimate-gated label identity.
  Vec2 entity_estimate(TypeIndex type) const;
  const GroupConfig& config() const { return config_; }
  const GroupStats& stats() const { return stats_; }
  node::Mote& mote() { return mote_; }
  std::size_t type_count() const { return specs_->size(); }

  /// True when this node has any stake in a context: it leads or belongs
  /// to a group, remembers a nearby one (wait timer), or is deciding
  /// whether to create a label. Duty cycling keeps engaged nodes awake.
  bool engaged() const {
    for (const TypeState& ts : state_) {
      if (ts.role != Role::kIdle || ts.waiting || ts.creation_pending) {
        return true;
      }
    }
    return false;
  }

  Duration receive_timeout() const {
    return config_.heartbeat_period * config_.receive_timer_factor;
  }
  Duration wait_timeout() const {
    return config_.heartbeat_period * config_.wait_timer_factor;
  }

 private:
  struct TypeState {
    Role role = Role::kIdle;
    LabelId label;

    // Leader side.
    std::uint64_t weight = 0;
    std::uint32_t hb_seq = 0;
    /// Monotonically increasing leadership epoch of this label (1 at
    /// creation, +1 on every takeover/succession).
    std::uint64_t epoch = 0;
    PersistentState state;
    std::unique_ptr<AggregateStateTable> agg;
    sim::EventHandle heartbeat_timer;

    // Member side.
    NodeId leader;
    Vec2 leader_pos;
    std::uint64_t leader_weight_seen = 0;
    std::uint64_t leader_epoch_seen = 0;
    Time last_hb_heard;
    PersistentState last_state_seen;
    sim::EventHandle receive_timer;

    // Member + leader: periodic sensing reports.
    sim::EventHandle report_timer;

    // Idle side: memory of a nearby group (wait timer, §5.2).
    bool waiting = false;
    LabelId wait_label;
    NodeId wait_leader;
    Vec2 wait_leader_pos;
    std::uint64_t wait_weight = 0;
    std::uint64_t wait_epoch = 0;
    PersistentState wait_state;
    sim::EventHandle wait_timer;

    // Deferred label creation.
    bool creation_pending = false;
    sim::EventHandle creation_timer;

    // Relinquish candidacy.
    sim::EventHandle candidacy_timer;
    Time relinquish_heard;
    std::uint64_t cand_weight = 0;
    std::uint64_t cand_epoch = 0;
    PersistentState cand_state;

    // Resolved predicates.
    const SensePredicate* activation = nullptr;
    const SensePredicate* deactivation = nullptr;  // null: !activation
    Duration report_period = Duration::seconds(1);
  };

  void poll_senses();
  /// (Re)starts the periodic sense poll with a fresh random phase.
  void arm_poll_timer();
  bool is_sensing(const TypeState& ts) const;

  // Role transitions.
  void create_label(TypeIndex type);
  void become_leader(TypeIndex type, LabelId label, std::uint64_t weight,
                     std::uint64_t epoch, PersistentState inherited,
                     GroupEvent::Kind cause);
  void stop_leading(TypeIndex type, GroupEvent::Kind cause, NodeId peer);
  /// `state_seen` is the joined label's last known persistent state (from
  /// the heartbeat or wait-path memory that triggered the join); it seeds
  /// `last_state_seen` so a member that takes over before hearing another
  /// heartbeat still restores the §5.2 handoff state. Taken by value: call
  /// sites pass fields of the TypeState this method mutates.
  void become_member(TypeIndex type, LabelId label, NodeId leader,
                     Vec2 leader_pos, std::uint64_t leader_weight,
                     std::uint64_t leader_epoch, PersistentState state_seen);
  void leave_group(TypeIndex type);

  // Protocol actions.
  void send_heartbeat(TypeIndex type);
  void send_report(TypeIndex type);
  void start_report_timer(TypeIndex type);
  void arm_receive_timer(TypeIndex type);
  void on_receive_timeout(TypeIndex type);
  void relinquish(TypeIndex type);

  // Message handlers.
  void handle_heartbeat(const radio::Frame& frame);
  void handle_report(const radio::Frame& frame);
  void handle_relinquish(const radio::Frame& frame);

  void emit(GroupEvent::Kind kind, TypeIndex type, LabelId label, NodeId peer,
            std::uint64_t weight, std::uint64_t epoch);

  node::Mote& mote_;
  const std::vector<ContextTypeSpec>* specs_;
  const AggregationRegistry* aggregations_;
  GroupConfig config_;
  std::vector<TypeState> state_;
  std::vector<GroupObserver*> observers_;
  LeaderStartFn leader_start_;
  LeaderStopFn leader_stop_;
  LeaderObservedFn leader_observed_;
  EpochChangedFn epoch_changed_;
  LabelRetiredFn label_retired_;
  LruMap<std::uint64_t, bool> hb_seen_;  // heartbeat (label, seq) dedup
  LruMap<std::uint64_t, bool> report_seen_;  // relayed-report dedup
  sim::EventHandle poll_timer_;
  std::uint32_t next_label_seq_ = 0;
  bool alive_ = true;
  bool started_ = false;
  GroupStats stats_;
};

}  // namespace et::core
