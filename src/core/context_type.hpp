#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "util/time.hpp"

/// Declarative description of a context type (§3.2, §4).
///
/// A context type names an environmental entity class ("tracker", "fire"),
/// the sensing condition that activates it, the aggregate state variables
/// maintained for it (each with freshness and critical-mass QoS), and the
/// tracking objects attached to it. Specs are produced either directly in
/// C++ or by compiling an EnviroTrack-language declaration (src/etl).
namespace et::core {

class TrackingContext;  // the API handed to attached-object methods

/// One aggregate state variable (§3.2.3), e.g.
///   location : avg(position) confidence=2, freshness=1s
struct AggregateVarSpec {
  std::string name;            // "location"
  std::string aggregation;     // registered aggregation fn: "avg", "sum", ...
  std::string sensor;          // sensed input: "position", "magnetic", ...
  Duration freshness = Duration::seconds(1);  // L_e
  std::size_t critical_mass = 1;              // N_e
};

/// When an attached-object method runs.
struct InvocationSpec {
  enum class Kind {
    kTimer,      // TIMER(p): periodically while this node leads the context
    kCondition,  // when a predicate over aggregate state becomes true
    kMessage     // only via its transport port (remote method invocation)
  };
  Kind kind = Kind::kTimer;
  /// kTimer: the period.
  Duration period = Duration::seconds(1);
  /// kTimer: also fire once immediately when objects attach (i.e. when
  /// this node assumes leadership). Without it, a timer whose period
  /// exceeds the typical leader tenure may never fire: the phase restarts
  /// on every handover.
  bool immediate = false;
  /// kCondition: evaluated on every middleware tick on the leader; the
  /// method fires on false->true edges.
  std::function<bool(TrackingContext&)> condition;
};

/// One method of an attached object. The body receives the live
/// `TrackingContext` of the enclosing context label.
struct MethodSpec {
  std::string name;
  InvocationSpec invocation;
  std::function<void(TrackingContext&)> body;
};

/// An object attached to a context type (§3.2.2). Methods are also the
/// transport layer's ports: port ids are assigned in declaration order
/// across all objects of the type.
struct ObjectSpec {
  std::string name;
  std::vector<MethodSpec> methods;
};

/// A full context-type declaration.
struct ContextTypeSpec {
  std::string name;  // "tracker", "fire", ...
  /// Name of the registered sense_e() predicate that activates the context.
  std::string activation;
  /// Optional separate deactivation predicate; by default a node leaves the
  /// group when the activation predicate turns false (footnote 1, §3.2.1).
  std::optional<std::string> deactivation;
  std::vector<AggregateVarSpec> variables;
  std::vector<ObjectSpec> objects;

  /// Index of a variable by name, or nullopt.
  std::optional<std::size_t> variable_index(std::string_view var) const {
    for (std::size_t i = 0; i < variables.size(); ++i) {
      if (variables[i].name == var) return i;
    }
    return std::nullopt;
  }

  /// Transport ports: methods are numbered in declaration order across all
  /// attached objects (§5.4: "Port IDs are associated with methods of
  /// individual objects").
  std::size_t method_count() const {
    std::size_t n = 0;
    for (const ObjectSpec& obj : objects) n += obj.methods.size();
    return n;
  }

  const MethodSpec* method_at(std::size_t port) const {
    for (const ObjectSpec& obj : objects) {
      if (port < obj.methods.size()) return &obj.methods[port];
      port -= obj.methods.size();
    }
    return nullptr;
  }

  std::optional<std::size_t> port_of(std::string_view object,
                                     std::string_view method) const {
    std::size_t port = 0;
    for (const ObjectSpec& obj : objects) {
      for (const MethodSpec& m : obj.methods) {
        if (obj.name == object && m.name == method) return port;
        ++port;
      }
    }
    return std::nullopt;
  }
};

/// Context types are referenced in protocol messages by their dense index
/// in the deployment-wide spec list.
using TypeIndex = std::uint16_t;

}  // namespace et::core
