#include "core/context_runtime.hpp"

#include <cassert>

#include "core/app_messages.hpp"
#include "core/transport.hpp"
#include "util/log.hpp"

namespace et::core {

namespace {
constexpr const char* kComponent = "ctx-runtime";
}

ContextRuntime::ContextRuntime(node::Mote& mote,
                               const std::vector<ContextTypeSpec>& specs,
                               GroupManager& groups)
    : mote_(mote), specs_(&specs), groups_(groups), active_(specs.size()) {}

void ContextRuntime::on_leader_start(TypeIndex type, LabelId label,
                                     const PersistentState& inherited) {
  (void)inherited;  // state rides in GroupManager; methods read it there
  const ContextTypeSpec& spec = (*specs_)[type];
  Active active;
  active.label = label;

  std::size_t method_index = 0;
  for (const ObjectSpec& object : spec.objects) {
    for (const MethodSpec& method : object.methods) {
      if (method.invocation.kind == InvocationSpec::Kind::kTimer) {
        const MethodSpec* m = &method;
        const Duration first = method.invocation.immediate
                                   ? Duration::millis(1)
                                   : method.invocation.period;
        active.timers.push_back(mote_.every(
            first, method.invocation.period, [this, type, label, m] {
              // Leadership may have moved between the timer post and now.
              if (!active_[type] || active_[type]->label != label) return;
              stats_.timer_invocations++;
              run_method(type, label, *m, nullptr, NodeId{});
            }));
      }
      ++method_index;
    }
  }
  active.condition_state.assign(method_index, false);

  // Condition-invoked methods piggyback on the middleware tick cadence.
  const Duration tick = groups_.config().sense_poll_period;
  active.condition_tick = mote_.every(tick, tick, [this, type, label] {
    if (!active_[type] || active_[type]->label != label) return;
    evaluate_conditions(type);
  });

  active_[type] = std::move(active);
  ET_DEBUG(kComponent, "node %llu attaches objects of type %u (label %llu)",
           static_cast<unsigned long long>(mote_.id().value()), type,
           static_cast<unsigned long long>(label.value()));
}

void ContextRuntime::on_leader_stop(TypeIndex type, LabelId label) {
  (void)label;
  if (!active_[type]) return;
  for (auto& timer : active_[type]->timers) timer.cancel();
  active_[type]->condition_tick.cancel();
  active_[type].reset();
}

void ContextRuntime::evaluate_conditions(TypeIndex type) {
  const ContextTypeSpec& spec = (*specs_)[type];
  // A method body may detach this very context (e.g. by crashing the node,
  // as the minesweeper's detonation does), so re-validate `active_[type]`
  // after every invocation instead of holding a reference across them.
  const LabelId label = active_[type]->label;
  std::size_t method_index = 0;
  for (const ObjectSpec& object : spec.objects) {
    for (const MethodSpec& method : object.methods) {
      if (!active_[type] || active_[type]->label != label) return;
      if (method.invocation.kind == InvocationSpec::Kind::kCondition &&
          method.invocation.condition) {
        TrackingContext ctx(*this, type, label, nullptr, NodeId{});
        const bool now_true = method.invocation.condition(ctx);
        const bool was_true = active_[type]->condition_state[method_index];
        active_[type]->condition_state[method_index] = now_true;
        if (now_true && !was_true) {
          stats_.condition_invocations++;
          run_method(type, label, method, nullptr, NodeId{});
        }
      }
      ++method_index;
    }
  }
}

void ContextRuntime::run_method(TypeIndex type, LabelId label,
                                const MethodSpec& method,
                                const std::vector<double>* args, NodeId src) {
  if (!method.body) return;
  TrackingContext ctx(*this, type, label, args, src);
  method.body(ctx);
}

void ContextRuntime::dispatch_port(TypeIndex type, LabelId label, PortId port,
                                   const std::vector<double>& args,
                                   NodeId src) {
  if (!active_[type] || active_[type]->label != label) return;
  const MethodSpec* method =
      (*specs_)[type].method_at(static_cast<std::size_t>(port.value()));
  if (!method) return;
  stats_.remote_invocations++;
  run_method(type, label, *method, &args, src);
}

void ContextRuntime::context_send_to_node(TypeIndex type, LabelId label,
                                          NodeId dst, std::string tag,
                                          std::vector<double> data) {
  if (!routing_) return;
  stats_.reports_to_nodes++;
  auto payload = std::make_shared<UserMessagePayload>(
      std::move(tag), label, mote_.id(), std::move(data));
  payload->epoch = groups_.current_epoch(type);
  routing_->send(mote_.medium().position_of(dst), radio::MsgType::kUser,
                 std::move(payload), dst);
}

void ContextRuntime::context_invoke_remote(LabelId src_label,
                                           TypeIndex dst_type,
                                           LabelId dst_label, PortId port,
                                           std::vector<double> args) {
  if (!transport_) return;
  transport_->invoke(dst_type, dst_label, port, std::move(args), src_label);
}

// ---------------------------------------------------------------------------
// TrackingContext facade
// ---------------------------------------------------------------------------

std::string_view TrackingContext::type_name() const {
  return runtime_.spec(type_).name;
}

NodeId TrackingContext::node() const { return runtime_.mote().id(); }

Vec2 TrackingContext::node_position() const {
  return runtime_.mote().position();
}

Time TrackingContext::now() const { return runtime_.mote().now(); }

std::optional<AggregateValue> TrackingContext::read(
    std::string_view var) const {
  AggregateStateTable* table = runtime_.groups().aggregates(type_);
  if (!table) return std::nullopt;
  return table->read(var, now());
}

std::optional<double> TrackingContext::read_scalar(
    std::string_view var) const {
  auto value = read(var);
  if (!value || value->kind != AggregateValue::Kind::kScalar) {
    return std::nullopt;
  }
  return value->scalar;
}

std::optional<Vec2> TrackingContext::read_vector(std::string_view var) const {
  auto value = read(var);
  if (!value || value->kind != AggregateValue::Kind::kVector) {
    return std::nullopt;
  }
  return value->vector;
}

void TrackingContext::set_state(const std::string& key, double value) {
  runtime_.groups().persistent_state(type_)[key] = value;
}

std::optional<double> TrackingContext::get_state(std::string_view key) const {
  const PersistentState& state = runtime_.groups().persistent_state(type_);
  auto it = state.find(std::string(key));
  if (it == state.end()) return std::nullopt;
  return it->second;
}

void TrackingContext::send_to_node(NodeId dst, std::string tag,
                                   std::vector<double> data) {
  runtime_.context_send_to_node(type_, label_, dst, std::move(tag),
                                std::move(data));
}

void TrackingContext::invoke_remote(TypeIndex dst_type, LabelId dst_label,
                                    PortId port, std::vector<double> args) {
  runtime_.context_invoke_remote(label_, dst_type, dst_label, port,
                                 std::move(args));
}

}  // namespace et::core
