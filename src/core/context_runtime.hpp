#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/context_type.hpp"
#include "core/group_manager.hpp"
#include "core/tracking_context.hpp"
#include "net/geo_routing.hpp"

/// Executes attached tracking objects on the group leader (§3.2.2).
///
/// "Object code is executed on a single node. In the current
/// implementation, this node is the sensor group leader of the enclosing
/// context." The runtime attaches objects when its mote assumes leadership
/// of a label and detaches them when leadership moves on: timer-invoked
/// methods run on their declared periods, condition-invoked methods fire on
/// false->true edges of their aggregate-state predicates, and
/// message-invoked methods (transport ports) run when MTP delivers a remote
/// invocation.
namespace et::core {

class Transport;  // forward: remote invocation backend

struct RuntimeStats {
  std::uint64_t timer_invocations = 0;
  std::uint64_t condition_invocations = 0;
  std::uint64_t remote_invocations = 0;
  std::uint64_t reports_to_nodes = 0;
};

class ContextRuntime {
 public:
  ContextRuntime(node::Mote& mote, const std::vector<ContextTypeSpec>& specs,
                 GroupManager& groups);

  ContextRuntime(const ContextRuntime&) = delete;
  ContextRuntime& operator=(const ContextRuntime&) = delete;

  /// Communication backends (optional; sends are dropped without them).
  void set_routing(net::GeoRouting* routing) { routing_ = routing; }
  void set_transport(Transport* transport) { transport_ = transport; }

  /// Leadership edges — wired to the GroupManager by the middleware stack.
  void on_leader_start(TypeIndex type, LabelId label,
                       const PersistentState& inherited);
  void on_leader_stop(TypeIndex type, LabelId label);

  /// Remote method invocation arriving over MTP for a label this node
  /// leads.
  void dispatch_port(TypeIndex type, LabelId label, PortId port,
                     const std::vector<double>& args, NodeId src);

  /// True when objects of `type` are currently attached here.
  bool active(TypeIndex type) const { return active_[type].has_value(); }

  const RuntimeStats& stats() const { return stats_; }

  // --- Backend for TrackingContext ---
  node::Mote& mote() { return mote_; }
  GroupManager& groups() { return groups_; }
  const ContextTypeSpec& spec(TypeIndex type) const { return (*specs_)[type]; }
  void context_send_to_node(TypeIndex type, LabelId label, NodeId dst,
                            std::string tag, std::vector<double> data);
  void context_invoke_remote(LabelId src_label, TypeIndex dst_type,
                             LabelId dst_label, PortId port,
                             std::vector<double> args);

 private:
  struct Active {
    LabelId label;
    std::vector<sim::EventHandle> timers;
    /// Edge state per method index (condition methods only).
    std::vector<bool> condition_state;
    sim::EventHandle condition_tick;
  };

  void run_method(TypeIndex type, LabelId label, const MethodSpec& method,
                  const std::vector<double>* args, NodeId src);
  void evaluate_conditions(TypeIndex type);

  node::Mote& mote_;
  const std::vector<ContextTypeSpec>* specs_;
  GroupManager& groups_;
  net::GeoRouting* routing_ = nullptr;
  Transport* transport_ = nullptr;
  std::vector<std::optional<Active>> active_;
  RuntimeStats stats_;
};

}  // namespace et::core
