#include "core/system.hpp"

#include <cassert>
#include <utility>

namespace et::core {

namespace {

/// Re-emits group events through the master simulator's op path so the real
/// observer runs on the master thread, in canonical key order — the same
/// order the serial canonical oracle calls it in.
class JournaledObserver final : public GroupObserver {
 public:
  JournaledObserver(sim::Simulator& sim, GroupObserver* target)
      : sim_(sim), target_(target) {}

  void on_group_event(const GroupEvent& event) override {
    sim_.post_op([target = target_, event] { target->on_group_event(event); });
  }

 private:
  sim::Simulator& sim_;
  GroupObserver* target_;
};

}  // namespace

EnviroTrackSystem::EnviroTrackSystem(sim::Simulator& sim,
                                     env::Environment& env,
                                     const env::Field& field,
                                     SystemConfig config)
    : sim_(sim),
      env_(env),
      field_(field),
      config_(config),
      kernel_(config.kernel.use_parallel_kernel
                  ? std::make_unique<sim::ParallelKernel>(sim, config.kernel,
                                                          field.bounds())
                  : nullptr),
      medium_(sim, config.radio),
      network_(sim, medium_, env, field, config.cpu,
               kernel_ ? node::MoteNetwork::SimSelector(
                             [this](NodeId, Vec2 pos) -> sim::Simulator& {
                               return kernel_->sim_for(pos.x, pos.y);
                             })
                       : node::MoteNetwork::SimSelector{}),
      aggregations_(AggregationRegistry::with_builtins()) {
  if (config_.kernel.canonical()) {
    canonical_ = true;
    // One sequence counter per owner: every mote, the channel, the world.
    auto counters = std::make_shared<std::vector<std::uint64_t>>(
        network_.size() + 2, 0);
    if (kernel_) {
      for (sim::Simulator* engine : kernel_->all_sims()) {
        engine->enable_canonical(counters);
      }
    } else {
      sim_.enable_canonical(std::move(counters));
    }
    // The medium resolves the handoff latencies (they depend on the
    // wide-window flag); the kernel's window plan then mirrors them.
    medium_.enable_canonical(
        [this](NodeId id) -> sim::Simulator& {
          return network_.mote(id).sim();
        },
        config_.kernel.wide_windows);
    if (kernel_) {
      sim::WindowPlan plan;
      plan.min_airtime = medium_.min_airtime();
      plan.wide = config_.kernel.wide_windows;
      plan.tx_handoff = medium_.tx_handoff();
      plan.rx_handoff = medium_.rx_latency();
      plan.hop_radius = config_.radio.comm_radius;
      plan.n_motes = static_cast<std::uint32_t>(network_.size());
      plan.collect_channel =
          [this](std::vector<std::pair<Time, Vec2>>& out) {
            medium_.collect_channel_constraints(out);
          };
      plan.pos_of = [this](std::uint32_t rank) {
        return medium_.position_of(NodeId{rank});
      };
      plan.prepare = [this](Time t) { env_.prepare(t); };
      kernel_->finalize(std::move(plan));
      medium_.set_fanout_executor(
          [this](std::size_t n_groups, std::size_t n_receivers,
                 const std::function<void(std::size_t)>& body) {
            kernel_->run_fanout(n_groups, n_receivers, body);
          });
    }
  }
}

TypeIndex EnviroTrackSystem::add_context_type(ContextTypeSpec spec) {
  assert(!started_ && "context types must be declared before start()");
  specs_.push_back(std::move(spec));
  return static_cast<TypeIndex>(specs_.size() - 1);
}

void EnviroTrackSystem::start() {
  assert(!started_);
  started_ = true;
  stacks_.reserve(network_.size());
  for (std::size_t i = 0; i < network_.size(); ++i) {
    // Stack construction and start-up schedule per-mote timers (heartbeat
    // phases, duty cycles); attribute them to the mote so canonical keys
    // are engine-independent.
    sim::ExecutingOwnerScope scope(sim_, static_cast<std::uint32_t>(i));
    stacks_.push_back(std::make_unique<MiddlewareStack>(
        network_.mote(NodeId{i}), specs_, senses_, aggregations_,
        field_.bounds(), config_.middleware));
  }
  for (std::size_t i = 0; i < stacks_.size(); ++i) {
    sim::ExecutingOwnerScope scope(sim_, static_cast<std::uint32_t>(i));
    stacks_[i]->start();
  }
}

std::size_t EnviroTrackSystem::run_until(Time deadline) {
  if (kernel_) return kernel_->run_until(deadline);
  const std::size_t fired = sim_.run_until(deadline);
  sim_.finish_run(deadline);
  return fired;
}

void EnviroTrackSystem::add_group_observer(GroupObserver* observer) {
  assert(started_);
  if (canonical_) {
    journaled_observers_.push_back(
        std::make_unique<JournaledObserver>(sim_, observer));
    observer = journaled_observers_.back().get();
  }
  for (auto& stack : stacks_) stack->groups().add_observer(observer);
}

void EnviroTrackSystem::add_transport_listener(TransportListener fn) {
  assert(started_);
  auto shared = std::make_shared<TransportListener>(std::move(fn));
  transport_listeners_.push_back(shared);
  for (std::size_t i = 0; i < stacks_.size(); ++i) {
    Transport* transport = stacks_[i]->transport();
    if (!transport) continue;
    const NodeId id{i};
    if (canonical_) {
      transport->add_listener([this, shared, id](const TransportEvent& event) {
        sim_.post_op([shared, id, event] { (*shared)(id, event); });
      });
    } else {
      transport->add_listener(
          [shared, id](const TransportEvent& event) { (*shared)(id, event); });
    }
  }
}

void EnviroTrackSystem::crash_node(NodeId id) {
  // Crash/reboot arrive from world context (fault injector, tests); the
  // scope attributes the stack's scheduling and ops to the affected mote.
  sim::ExecutingOwnerScope scope(sim_, static_cast<std::uint32_t>(id.value()));
  stacks_[id.value()]->crash();
}

void EnviroTrackSystem::reboot_node(NodeId id) {
  sim::ExecutingOwnerScope scope(sim_, static_cast<std::uint32_t>(id.value()));
  stacks_[id.value()]->reboot();
}

}  // namespace et::core
