#include "core/system.hpp"

#include <cassert>

namespace et::core {

EnviroTrackSystem::EnviroTrackSystem(sim::Simulator& sim,
                                     env::Environment& env,
                                     const env::Field& field,
                                     SystemConfig config)
    : sim_(sim),
      env_(env),
      field_(field),
      config_(config),
      medium_(sim, config.radio),
      network_(sim, medium_, env, field, config.cpu),
      aggregations_(AggregationRegistry::with_builtins()) {}

TypeIndex EnviroTrackSystem::add_context_type(ContextTypeSpec spec) {
  assert(!started_ && "context types must be declared before start()");
  specs_.push_back(std::move(spec));
  return static_cast<TypeIndex>(specs_.size() - 1);
}

void EnviroTrackSystem::start() {
  assert(!started_);
  started_ = true;
  stacks_.reserve(network_.size());
  for (std::size_t i = 0; i < network_.size(); ++i) {
    stacks_.push_back(std::make_unique<MiddlewareStack>(
        network_.mote(NodeId{i}), specs_, senses_, aggregations_,
        field_.bounds(), config_.middleware));
  }
  for (auto& stack : stacks_) stack->start();
}

void EnviroTrackSystem::add_group_observer(GroupObserver* observer) {
  assert(started_);
  for (auto& stack : stacks_) stack->groups().add_observer(observer);
}

}  // namespace et::core
