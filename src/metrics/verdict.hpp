#pragma once

#include <string>
#include <vector>

#include "util/json.hpp"

/// Machine-readable verdict of a chaos trial's stacked oracles.
///
/// A chaos run is judged by several independent oracles — the runtime
/// protocol-invariant oracle, the serial-vs-parallel differential diff, the
/// serve-answer validation, the simulator livelock watchdog. Each reports
/// into one ChaosVerdict, which records both what ran (so "clean" is
/// distinguishable from "never checked") and every failure with enough
/// detail to act on. The JSON rendering is what the chaos fuzzer writes
/// into repro artifacts and what CI surfaces in step summaries.
namespace et::metrics {

struct OracleFinding {
  /// Which oracle failed, e.g. "invariant:dual-leader", "differential",
  /// "serve-validate", "watchdog".
  std::string oracle;
  std::string detail;
  /// Simulated seconds at the first offending observation; negative when
  /// the oracle has no meaningful time (e.g. an end-of-run diff).
  double at_seconds = -1.0;
};

class ChaosVerdict {
 public:
  /// Records that `oracle` ran and found nothing.
  void pass(std::string oracle);
  /// Records a failure. The oracle is also added to the ran set.
  void fail(std::string oracle, std::string detail, double at_seconds = -1.0);
  /// Merges another verdict (e.g. one per kernel run) under a prefix:
  /// oracle names become "<prefix>/<name>".
  void merge(const ChaosVerdict& other, const std::string& prefix);

  bool ok() const { return failures_.empty(); }
  const std::vector<OracleFinding>& failures() const { return failures_; }
  const std::vector<std::string>& oracles_run() const { return oracles_run_; }
  /// First failure in report order; nullptr when ok().
  const OracleFinding* first_failure() const {
    return failures_.empty() ? nullptr : &failures_.front();
  }

  /// {"ok": bool, "oracles_run": [...], "failures": [{oracle, detail,
  /// at_seconds}]} — deterministic member order.
  util::Json to_json() const;

  /// One line: "ok (4 oracles)" or "FAIL invariant:dual-leader: <detail>".
  std::string summary() const;

 private:
  void note_ran(const std::string& oracle);

  std::vector<std::string> oracles_run_;
  std::vector<OracleFinding> failures_;
};

}  // namespace et::metrics
