#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "core/events.hpp"

/// A bounded recorder of group-management events.
///
/// Attach to an EnviroTrackSystem to collect the protocol's lifecycle
/// stream for assertions (tests) and post-run accounting (benches).
namespace et::metrics {

class EventLog final : public core::GroupObserver {
 public:
  explicit EventLog(std::size_t capacity = 100000) : capacity_(capacity) {}

  void on_group_event(const core::GroupEvent& event) override {
    counts_[static_cast<std::size_t>(event.kind)]++;
    total_++;
    if (events_.size() == capacity_) events_.pop_front();
    events_.push_back(event);
  }

  std::uint64_t count(core::GroupEvent::Kind kind) const {
    return counts_[static_cast<std::size_t>(kind)];
  }
  std::uint64_t total() const { return total_; }

  /// Retained events, oldest first (may be truncated to capacity).
  std::vector<core::GroupEvent> events() const {
    return {events_.begin(), events_.end()};
  }

  /// Events of one kind, oldest first.
  std::vector<core::GroupEvent> events_of(core::GroupEvent::Kind kind) const {
    std::vector<core::GroupEvent> out;
    for (const auto& e : events_) {
      if (e.kind == kind) out.push_back(e);
    }
    return out;
  }

  void clear() {
    events_.clear();
    counts_ = {};
    total_ = 0;
  }

 private:
  std::size_t capacity_;
  std::deque<core::GroupEvent> events_;
  std::array<std::uint64_t, 16> counts_{};
  std::uint64_t total_ = 0;
};

}  // namespace et::metrics
