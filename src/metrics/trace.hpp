#pragma once

#include <string>
#include <vector>

#include "core/events.hpp"
#include "metrics/track_recorder.hpp"

/// Run-artifact writers: plain CSV, ready for gnuplot/pandas.
///
/// Benches and examples can persist what they measured; the formats are
/// stable, documented here, and round-trip tested.
namespace et::metrics {

/// Track CSV: `time_s,label,reported_x,reported_y,actual_x,actual_y,error`
/// — one row per base-station report (Fig. 3's data).
std::string track_csv(const std::vector<TrackPoint>& points);

/// Event CSV: `time_s,node,kind,label,peer,weight` — the group-management
/// lifecycle stream.
std::string events_csv(const std::vector<core::GroupEvent>& events);

/// Series CSV from parallel vectors: `x,<name>` per column set. `xs` and
/// every series must have equal lengths.
struct Series {
  std::string name;
  std::vector<double> values;
};
std::string series_csv(const std::string& x_name,
                       const std::vector<double>& xs,
                       const std::vector<Series>& series);

/// Writes `contents` to `path`; returns false (and logs) on failure.
bool write_file(const std::string& path, const std::string& contents);

}  // namespace et::metrics
